#include "serve/session_table.h"

#include "io/file_ops.h"
#include "journal/snapshot.h"

namespace qpf::serve {

namespace {

/// Hex rendering of a session id for stable on-disk file names.
std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0; v >>= 4) {
    out[i] = digits[v & 0xf];
  }
  return out;
}

}  // namespace

std::string SessionTable::park_path(const std::string& name) const {
  return state_dir_ + "/" + hex64(session_id_for(name)) + ".session";
}

SessionTable::Opened SessionTable::open(const SessionConfig& config,
                                        std::uint64_t now_ms) {
  const std::uint64_t id = session_id_for(config.name);
  if (auto it = sessions_.find(id); it != sessions_.end()) {
    if (it->second.attached) {
      throw StackConfigError(
          "session-busy", "session '" + config.name +
                              "' is attached to another connection");
    }
    // Warm re-attach: the stack never left memory.  The presented
    // config must match the live one — same contract as unpark(), so a
    // client cannot silently inherit a stack built from different
    // parameters just because it stayed warm.
    const SessionConfig& live = it->second.session->config();
    if (live.seed != config.seed || live.qubits != config.qubits ||
        live.pauli_frame != config.pauli_frame ||
        live.supervise != config.supervise) {
      throw CheckpointError(
          "session config does not match the live session", config.name);
    }
    it->second.attached = true;
    it->second.last_active_ms = now_ms;
    return Opened{it->second.session.get(), true};
  }

  if (sessions_.size() >= max_sessions_) {
    throw StackConfigError(
        "session-limit",
        "session table is full (" + std::to_string(max_sessions_) + ")");
  }

  Opened opened;
  if (config.resume && !state_dir_.empty()) {
    const std::string path = park_path(config.name);
    if (journal::file_exists(path)) {
      const std::vector<std::uint8_t> payload =
          journal::read_checkpoint_file(path);
      auto session = Session::unpark(config, payload);
      opened.session = session.get();
      opened.restored = true;
      sessions_.emplace(id, Entry{std::move(session), now_ms, true});
      io::ops().unlink(path.c_str());
      return opened;
    }
  }

  auto session = std::make_unique<Session>(config);
  opened.session = session.get();
  sessions_.emplace(id, Entry{std::move(session), now_ms, true});
  return opened;
}

Session* SessionTable::find(std::uint64_t id, std::uint64_t now_ms) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return nullptr;
  }
  it->second.last_active_ms = now_ms;
  return it->second.session.get();
}

void SessionTable::detach(std::uint64_t id, std::uint64_t now_ms) {
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    it->second.attached = false;
    it->second.last_active_ms = now_ms;
  }
}

SessionTable::ParkOutcome SessionTable::park_entry(const Entry& entry) const {
  if (state_dir_.empty() || entry.session->escalated()) {
    return ParkOutcome::kSkipped;
  }
  const std::string path = park_path(entry.session->config().name);
  try {
    journal::write_checkpoint_file(path, entry.session->park());
  } catch (const Error&) {
    // The write-tmp/rename protocol failed partway (ENOSPC, EIO, ...).
    // write_checkpoint_file never renames a bad file into place, so the
    // worst on disk is a stale .tmp; remove it and report the failure
    // instead of letting a CheckpointError unwind the reactor loop.
    io::ops().unlink((path + ".tmp").c_str());
    return ParkOutcome::kFailed;
  }
  return ParkOutcome::kParked;
}

std::size_t SessionTable::checkpoint_all(std::size_t* failed) {
  std::size_t parked = 0;
  std::size_t bad = 0;
  for (const auto& [id, entry] : sessions_) {
    switch (park_entry(entry)) {
      case ParkOutcome::kParked:
        ++parked;
        break;
      case ParkOutcome::kFailed:
        ++bad;
        break;
      case ParkOutcome::kSkipped:
        break;
    }
  }
  sessions_.clear();
  if (failed != nullptr) {
    *failed = bad;
  }
  return parked;
}

SessionTable::ParkOutcome SessionTable::park_session(std::uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second.attached) {
    return ParkOutcome::kSkipped;
  }
  const ParkOutcome outcome = park_entry(it->second);
  if (outcome != ParkOutcome::kSkipped) {
    sessions_.erase(it);
  }
  return outcome;
}

void SessionTable::evict(std::uint64_t id) { sessions_.erase(id); }

}  // namespace qpf::serve

// Exactly-once qpf_serve client (protocol v2).
//
// The plain Client is a witness: one socket, no retries, pinned to
// protocol v1 so its byte streams never change.  RetryClient is the
// opposite end of the robustness bargain — it assumes the network WILL
// fail (FaultNet makes sure of it under test) and turns at-least-once
// delivery into exactly-once execution:
//
//   * every session request carries a monotonically increasing request
//     id that survives reconnects, so the server's per-session dedup
//     window can replay a lost reply byte-identically instead of
//     re-executing gates;
//
//   * a send failure, read timeout (SO_RCVTIMEO), peer reset, or
//     malformed reply tears the socket down and re-runs the handshake —
//     hello, then open-session with resume=true — under a seeded,
//     capped exponential backoff, then RESENDS the same frame with the
//     same id;
//
//   * a retried close never re-opens the session first (re-opening
//     after the close executed would build a fresh stack and erase the
//     server's close tombstone): it resends the close as-is, backing
//     off on `session-busy` (the half-open connection still owns the
//     session until the lease reaper frees it) and re-opening with
//     resume only on `unknown-session` (the close never ran and the
//     session was parked meanwhile);
//
//   * optional heartbeats (kPing) keep the server-side lease alive
//     across think time, using request ids in a reserved transient
//     space (high bit set) so they can never collide with session ids.
//
// The transcript records only the replies handed back to the caller
// (submit/measure/snapshot/close), re-encoded — so a run that needed
// seventeen reconnects compares byte-identical to a fault-free one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"

namespace qpf::serve {

struct RetryOptions {
  std::string client_name = "qpf-retry";
  std::uint64_t seed = 1;            ///< backoff jitter stream
  std::size_t max_attempts = 16;     ///< per request, then IoError
  std::uint64_t backoff_base_ms = 2;
  std::uint64_t backoff_cap_ms = 250;
  std::uint64_t recv_timeout_ms = 2000;  ///< SO_RCVTIMEO; expiry = retry
  std::uint64_t heartbeat_ms = 0;        ///< 0 disables the ping thread
  std::uint64_t connect_budget_ms = 3000;
};

class RetryClient {
 public:
  /// Remembers the target and session config; the first request dials.
  RetryClient(std::uint16_t port, SessionConfig config,
              RetryOptions options = {});
  ~RetryClient();

  RetryClient(const RetryClient&) = delete;
  RetryClient& operator=(const RetryClient&) = delete;

  struct Result {
    Frame reply;
    std::optional<ErrorReply> error;  ///< set when reply.type == kError
  };

  // Session operations.  Each retries through faults until a reply for
  // its request id arrives or the attempt budget is spent (IoError).
  // A server-side kError for the id is a RESULT, not a retry trigger.
  [[nodiscard]] Result submit_qasm(const std::string& qasm);
  [[nodiscard]] Result measure();
  [[nodiscard]] Result snapshot();
  [[nodiscard]] Result close();

  /// Replies returned to the caller, re-encoded in arrival order.
  [[nodiscard]] std::vector<std::uint8_t> transcript() const;

  /// Frames resent after a fault (not counting the first send).
  [[nodiscard]] std::uint64_t retries() const;
  /// Socket re-dials after the initial connect.
  [[nodiscard]] std::uint64_t reconnects() const;

  /// One-shot server counter query on a fresh throwaway connection.
  [[nodiscard]] static StatsReply query_stats(
      std::uint16_t port, std::uint64_t recv_timeout_ms = 2000);

 private:
  // All take mutex_ held.
  void dial_locked();
  void drop_socket_locked() noexcept;
  void open_session_locked(bool resume);
  [[nodiscard]] Frame send_and_match_locked(const Frame& frame);
  [[nodiscard]] Result run_session_request_locked(Frame frame);
  void backoff_locked(std::size_t attempt);
  [[nodiscard]] std::uint32_t transient_id_locked();

  void heartbeat_main();

  std::uint16_t port_;
  SessionConfig config_;
  RetryOptions options_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  FrameDecoder decoder_;
  bool ever_connected_ = false;
  bool session_open_ = false;
  bool session_closed_ = false;
  std::uint64_t session_id_ = 0;
  std::uint32_t next_request_id_ = 1;
  std::uint32_t next_transient_ = 1;
  std::uint64_t rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  std::vector<std::uint8_t> transcript_;

  std::thread heartbeat_;
  std::condition_variable heartbeat_cv_;
  bool stopping_ = false;
};

}  // namespace qpf::serve

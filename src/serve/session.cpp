#include "serve/session.h"

#include <algorithm>

#include "circuit/qasm.h"
#include "journal/snapshot.h"

namespace qpf::serve {

namespace {

// Seed salts mirror the CLI runner's, so a session behaves like one
// long-lived shot of the same stack.
constexpr std::uint64_t kFaultSalt = 0xfa017ull;
constexpr std::uint64_t kSupervisorSalt = 0xa24baed4963ee407ull;

}  // namespace

Session::Session(SessionConfig config)
    : config_(std::move(config)), id_(session_id_for(config_.name)) {
  if (config_.name.empty()) {
    throw StackConfigError("session", "session name must not be empty");
  }
  if (config_.qubits == 0) {
    throw StackConfigError("session", "session needs at least one qubit");
  }
  build_stack();
  top_->create_qubits(static_cast<std::size_t>(config_.qubits));
}

void Session::build_stack() {
  core_ = std::make_unique<arch::ChpCore>(config_.seed);
  top_ = core_.get();
  if (config_.chaos.any()) {
    faults_ = std::make_unique<arch::ClassicalFaultLayer>(
        top_, arch::ClassicalFaultRates::uniform(0.0),
        config_.seed ^ kFaultSalt, config_.chaos);
    top_ = faults_.get();
  }
  if (config_.pauli_frame) {
    frame_ = std::make_unique<arch::PauliFrameLayer>(top_);
    top_ = frame_.get();
  }
  if (config_.supervise) {
    arch::SupervisorOptions policy;
    policy.max_retries = static_cast<std::size_t>(config_.max_retries);
    policy.escalate_after = static_cast<std::size_t>(config_.escalate_after);
    policy.seed = config_.seed ^ kSupervisorSalt;
    supervisor_ = std::make_unique<arch::SupervisorLayer>(top_, policy);
    supervisor_->set_frame(frame_.get());
    top_ = supervisor_.get();
  }
}

RunReply Session::submit_qasm(const std::string& qasm) {
  if (escalated_) {
    throw StackConfigError("session",
                           "session '" + config_.name + "' is escalated");
  }
  const Circuit circuit = from_qasm(qasm);
  if (circuit.min_register_size() > static_cast<std::size_t>(config_.qubits)) {
    throw StackConfigError(
        "session", "program touches qubit beyond the session register (" +
                       std::to_string(circuit.min_register_size()) + " > " +
                       std::to_string(config_.qubits) + ")");
  }
  try {
    top_->add(circuit);
    top_->execute();
  } catch (const SupervisionError&) {
    escalated_ = true;
    throw;
  }
  ++requests_served_;
  RunReply reply;
  reply.bits = measure();
  reply.operations = circuit.num_operations();
  reply.supervisor_state = supervisor_state();
  return reply;
}

std::string Session::measure() const {
  const arch::BinaryState state = top_->get_state();
  std::string bits;
  bits.reserve(state.size());
  for (std::size_t q = state.size(); q-- > 0;) {
    bits += arch::to_char(state[q]);
  }
  return bits;
}

std::uint8_t Session::supervisor_state() const noexcept {
  if (escalated_) {
    return static_cast<std::uint8_t>(arch::SupervisionState::kEscalated);
  }
  return supervisor_
             ? static_cast<std::uint8_t>(supervisor_->state())
             : static_cast<std::uint8_t>(arch::SupervisionState::kNormal);
}

std::vector<std::uint8_t> Session::park() const {
  if (escalated_) {
    throw CheckpointError("cannot park an escalated session",
                          config_.name);
  }
  journal::SnapshotWriter w;
  w.tag("serve-session");
  write_session_config(w, config_);
  w.write_u64(requests_served_);
  w.write_u64(bytes_received_);
  w.write_u32(last_request_id_);
  w.write_u64(static_cast<std::uint64_t>(replies_.size()));
  for (const RecordedReply& reply : replies_) {
    w.write_u32(reply.request);
    w.write_u8(static_cast<std::uint8_t>(reply.type));
    w.write_u64(static_cast<std::uint64_t>(reply.payload.size()));
    w.write_bytes(reply.payload.data(), reply.payload.size());
  }
  top_->save_state(w);
  return w.bytes();
}

std::unique_ptr<Session> Session::unpark(
    const SessionConfig& config, const std::vector<std::uint8_t>& payload) {
  journal::SnapshotReader r(payload);
  r.expect_tag("serve-session");
  const SessionConfig parked = read_session_config(r);
  if (parked.name != config.name || parked.seed != config.seed ||
      parked.qubits != config.qubits ||
      parked.pauli_frame != config.pauli_frame ||
      parked.supervise != config.supervise) {
    throw CheckpointError(
        "session config does not match the parked snapshot", config.name);
  }
  auto session = std::make_unique<Session>(parked);
  session->requests_served_ = r.read_u64();
  session->bytes_received_ = r.read_u64();
  session->last_request_id_ = r.read_u32();
  const std::uint64_t reply_count = r.read_u64();
  if (reply_count > kDedupWindow) {
    throw CheckpointError("parked dedup window larger than the cap",
                          config.name);
  }
  for (std::uint64_t i = 0; i < reply_count; ++i) {
    RecordedReply reply;
    reply.request = r.read_u32();
    reply.type = static_cast<MsgType>(r.read_u8());
    reply.payload.resize(static_cast<std::size_t>(r.read_u64()));
    r.read_bytes(reply.payload.data(), reply.payload.size());
    session->replies_.push_back(std::move(reply));
  }
  session->top_->load_state(r);
  if (!r.exhausted()) {
    throw CheckpointError("trailing bytes after session snapshot",
                          config.name);
  }
  return session;
}

void Session::record_reply(std::uint32_t request, MsgType type,
                           std::vector<std::uint8_t> payload) {
  RecordedReply reply;
  reply.request = request;
  reply.type = type;
  reply.payload = std::move(payload);
  replies_.push_back(std::move(reply));
  while (replies_.size() > kDedupWindow) {
    replies_.pop_front();
  }
  last_request_id_ = std::max(last_request_id_, request);
}

const Session::RecordedReply* Session::find_reply(
    std::uint32_t request) const noexcept {
  for (const RecordedReply& reply : replies_) {
    if (reply.request == request) {
      return &reply;
    }
  }
  return nullptr;
}

bool Session::charge(const SessionQuota& quota,
                     std::uint64_t payload_bytes) noexcept {
  if (quota.max_requests != 0 && requests_served_ >= quota.max_requests) {
    return false;
  }
  if (quota.max_bytes != 0 &&
      bytes_received_ + payload_bytes > quota.max_bytes) {
    return false;
  }
  bytes_received_ += payload_bytes;
  return true;
}

}  // namespace qpf::serve

#include "serve/retry_client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "io/file_ops.h"
#include "serve/client.h"

namespace qpf::serve {

namespace {

/// Request ids with the high bit set are transient — hello, open,
/// heartbeat pings, stats — and can never collide with the monotonic
/// session-request id stream the dedup window keys on.
constexpr std::uint32_t kTransientBit = 0x80000000u;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void set_recv_timeout(int fd, std::uint64_t timeout_ms) {
  if (timeout_ms == 0) {
    return;
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// Blocking lockstep exchange on a bare fd (handshake helper for
/// query_stats, which has no RetryClient around it).
Frame exchange(int fd, FrameDecoder& decoder, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = io::send_retry(fd, bytes.data() + off,
                                     bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      throw IoError("retry-client",
                    "send() failed: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  while (true) {
    if (std::optional<Frame> reply = decoder.next()) {
      if (reply->request == frame.request) {
        return *reply;
      }
      if ((reply->request & kTransientBit) != 0) {
        continue;  // stale pong from before a reconnect-in-progress
      }
      throw ProtocolError("reply for request id " +
                          std::to_string(reply->request) +
                          " while waiting on id " +
                          std::to_string(frame.request));
    }
    char buffer[65536];
    const ssize_t n = io::read_retry(fd, buffer, sizeof buffer);
    if (n == 0) {
      throw IoError("retry-client", "server closed the connection");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw IoError("retry-client", "receive timed out");
      }
      throw IoError("retry-client",
                    "read() failed: " + std::string(std::strerror(errno)));
    }
    decoder.feed(buffer, static_cast<std::size_t>(n));
  }
}

}  // namespace

RetryClient::RetryClient(std::uint16_t port, SessionConfig config,
                         RetryOptions options)
    : port_(port),
      config_(std::move(config)),
      options_(std::move(options)),
      rng_(options_.seed ^ 0x5e77full) {
  if (options_.heartbeat_ms > 0) {
    heartbeat_ = std::thread([this] { heartbeat_main(); });
  }
}

RetryClient::~RetryClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_.joinable()) {
    heartbeat_.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  drop_socket_locked();
}

std::uint32_t RetryClient::transient_id_locked() {
  return kTransientBit | next_transient_++;
}

void RetryClient::drop_socket_locked() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_open_ = false;
}

void RetryClient::dial_locked() {
  drop_socket_locked();
  fd_ = connect_with_retry(port_, options_.seed ^ 0xd1a1ull,
                           options_.connect_budget_ms);
  set_recv_timeout(fd_, options_.recv_timeout_ms);
  decoder_ = FrameDecoder();
  if (ever_connected_) {
    ++reconnects_;
  }
  ever_connected_ = true;

  Frame f;
  f.type = MsgType::kHello;
  f.request = transient_id_locked();
  f.payload = encode_hello(Hello{1, 2, options_.client_name});
  const Frame reply = send_and_match_locked(f);
  if (reply.type == MsgType::kError) {
    const ErrorReply err = decode_error_reply(reply.payload);
    throw StackConfigError(
        "retry-client", "hello refused: " + err.code + ": " + err.message);
  }
  (void)decode_welcome(reply.payload);
}

void RetryClient::open_session_locked(bool resume) {
  SessionConfig config = config_;
  config.resume = config.resume || resume;
  Frame f;
  f.type = MsgType::kOpenSession;
  f.request = transient_id_locked();
  f.payload = encode_session_config(config);
  const Frame reply = send_and_match_locked(f);
  if (reply.type == MsgType::kError) {
    const ErrorReply err = decode_error_reply(reply.payload);
    if (err.code == "session-busy") {
      // Our own half-open predecessor still owns the session; the
      // server's lease reaper will free it.  Retriable.
      throw TransientFaultError("retry-client", err.message);
    }
    throw StackConfigError(
        "retry-client",
        "open-session failed: " + err.code + ": " + err.message);
  }
  const SessionOpened opened = decode_session_opened(reply.payload);
  session_id_ = opened.session;
  session_open_ = true;
  // Never mint an id the session has already executed: replayed ids
  // dedup, fresh ids must start past the window's high-water mark.
  next_request_id_ =
      std::max(next_request_id_, opened.last_request_id + 1);
}

Frame RetryClient::send_and_match_locked(const Frame& frame) {
  return exchange(fd_, decoder_, frame);
}

void RetryClient::backoff_locked(std::size_t attempt) {
  const std::uint64_t shift =
      std::min<std::size_t>(attempt, std::size_t{16});
  std::uint64_t nap = options_.backoff_base_ms << shift;
  nap = std::min(nap, options_.backoff_cap_ms);
  nap += splitmix64(rng_) % (nap + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(nap));
}

RetryClient::Result RetryClient::run_session_request_locked(Frame frame) {
  frame.request = next_request_id_++;
  const bool is_close = frame.type == MsgType::kClose;
  bool sent_once = false;
  bool reopen_for_close = false;
  for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    try {
      if (fd_ < 0) {
        dial_locked();
      }
      // A retried close must NOT re-open first: if the close already
      // executed, re-opening would build a fresh session and erase the
      // server's close tombstone — resending as-is replays the recorded
      // kClosed instead.  The one exception: the server answered
      // `unknown-session` (the close never ran and the session was
      // parked meanwhile), where a resume-open restores it.
      if (!session_open_ && (!is_close || !sent_once || reopen_for_close)) {
        open_session_locked(sent_once || reopen_for_close);
        reopen_for_close = false;
      }
      frame.session = session_id_;
      if (sent_once) {
        ++retries_;
      }
      sent_once = true;
      const Frame reply = send_and_match_locked(frame);
      if (reply.type == MsgType::kError) {
        const ErrorReply err = decode_error_reply(reply.payload);
        if (is_close &&
            (err.code == "session-busy" || err.code == "unknown-session")) {
          // Either way the close never executed — an executed close
          // always evicts the session (and leaves a tombstone that
          // would have answered us), so the session still exists
          // detached/held (`session-busy`) or was parked meanwhile
          // (`unknown-session`).  Re-attach with resume and resend; if
          // a half-open predecessor still holds it, the open itself
          // reports busy and we back off until the lease reaper frees
          // it.
          reopen_for_close = true;
          session_open_ = false;
          backoff_locked(attempt);
          continue;
        }
        Result result;
        result.reply = reply;
        result.error = err;
        const std::vector<std::uint8_t> bytes = encode_frame(reply);
        transcript_.insert(transcript_.end(), bytes.begin(), bytes.end());
        return result;
      }
      if (is_close) {
        session_open_ = false;
        session_closed_ = true;
      }
      Result result;
      result.reply = reply;
      const std::vector<std::uint8_t> bytes = encode_frame(reply);
      transcript_.insert(transcript_.end(), bytes.begin(), bytes.end());
      return result;
    } catch (const TransientFaultError&) {
      backoff_locked(attempt);
    } catch (const IoError&) {
      drop_socket_locked();
      backoff_locked(attempt);
    } catch (const ProtocolError&) {
      drop_socket_locked();
      backoff_locked(attempt);
    }
  }
  throw IoError("retry-client",
                "request id " + std::to_string(frame.request) + " (" +
                    type_name(frame.type) + ") gave up after " +
                    std::to_string(options_.max_attempts) + " attempts");
}

RetryClient::Result RetryClient::submit_qasm(const std::string& qasm) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame f;
  f.type = MsgType::kSubmitQasm;
  f.payload = encode_submit_qasm(qasm);
  return run_session_request_locked(std::move(f));
}

RetryClient::Result RetryClient::measure() {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame f;
  f.type = MsgType::kMeasure;
  return run_session_request_locked(std::move(f));
}

RetryClient::Result RetryClient::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame f;
  f.type = MsgType::kSnapshot;
  return run_session_request_locked(std::move(f));
}

RetryClient::Result RetryClient::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame f;
  f.type = MsgType::kClose;
  return run_session_request_locked(std::move(f));
}

std::vector<std::uint8_t> RetryClient::transcript() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transcript_;
}

std::uint64_t RetryClient::retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

std::uint64_t RetryClient::reconnects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reconnects_;
}

void RetryClient::heartbeat_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    heartbeat_cv_.wait_for(lock,
                           std::chrono::milliseconds(options_.heartbeat_ms),
                           [this] { return stopping_; });
    if (stopping_) {
      return;
    }
    if (fd_ < 0 || !session_open_) {
      continue;  // nothing to keep alive; the next request dials
    }
    try {
      Frame f;
      f.type = MsgType::kPing;
      f.session = session_id_;
      f.request = transient_id_locked();
      (void)send_and_match_locked(f);
    } catch (const Error&) {
      // A failed heartbeat is not an error the caller sees: drop the
      // socket so the next session request (or ping) re-dials.
      drop_socket_locked();
    }
  }
}

StatsReply RetryClient::query_stats(std::uint16_t port,
                                    std::uint64_t recv_timeout_ms) {
  const int fd = connect_with_retry(port, 0xface5ull);
  set_recv_timeout(fd, recv_timeout_ms);
  FrameDecoder decoder;
  try {
    Frame hello;
    hello.type = MsgType::kHello;
    hello.request = kTransientBit | 1;
    hello.payload = encode_hello(Hello{1, 2, "qpf-stats"});
    const Frame welcome = exchange(fd, decoder, hello);
    if (welcome.type == MsgType::kError) {
      const ErrorReply err = decode_error_reply(welcome.payload);
      throw StackConfigError(
          "retry-client", "hello refused: " + err.code + ": " + err.message);
    }
    Frame stats;
    stats.type = MsgType::kStats;
    stats.request = kTransientBit | 2;
    const Frame reply = exchange(fd, decoder, stats);
    if (reply.type != MsgType::kStatsReply) {
      throw ProtocolError(std::string("expected stats_reply, got ") +
                          type_name(reply.type));
    }
    const StatsReply decoded = decode_stats_reply(reply.payload);
    ::close(fd);
    return decoded;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace qpf::serve

// Name-keyed table of live sessions plus the parking lot on disk.
//
// The table is the single authority for session lifecycle:
//
//   open    — admit a new session (bounded by max_sessions), re-attach
//             a live detached one, or transparently unpark an evicted
//             one from `state_dir` when the client asks to resume;
//   detach  — the owning connection went away; the stack stays warm
//             until the idle deadline;
//   park_idle — serialize detached sessions idle past `idle_ms` into
//             `state_dir` (PR 2 checkpoint armor) and free the stack;
//   checkpoint_all — the SIGTERM drain: park every live session so a
//             restart can resume all of them bit-identically;
//   evict   — drop an escalated session (its stack is untrustworthy;
//             nothing is parked).
//
// Time is always an explicit `now_ms` parameter — the table never reads
// a clock — so eviction behavior is deterministic under test.  The
// table is not itself thread-safe; the server serializes access under
// its state mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/session.h"

namespace qpf::serve {

class SessionTable {
 public:
  /// `state_dir` empty disables parking (idle sessions are dropped).
  SessionTable(std::size_t max_sessions, std::string state_dir)
      : max_sessions_(max_sessions), state_dir_(std::move(state_dir)) {}

  struct Opened {
    Session* session = nullptr;
    bool restored = false;
  };

  /// Admit / re-attach / unpark.  Throws:
  ///   StackConfigError  — table full ("session-limit") or the name is
  ///                       attached to another live connection
  ///                       ("session-busy" — message prefix tells the
  ///                       server which code to reply),
  ///   CheckpointError   — the presented config does not match the live
  ///                       (warm re-attach) or parked session, or the
  ///                       parked snapshot is corrupt.
  [[nodiscard]] Opened open(const SessionConfig& config,
                            std::uint64_t now_ms);

  /// Live session by id, nullptr when unknown.  Touches last-active.
  [[nodiscard]] Session* find(std::uint64_t id, std::uint64_t now_ms);

  /// The owning connection dropped; keep the stack warm for re-attach.
  void detach(std::uint64_t id, std::uint64_t now_ms);

  /// One park attempt's result: parked to disk, skipped by policy
  /// (parking disabled / escalated stack), or failed on I/O — the
  /// checkpoint write threw, the state dir is unwritable.
  enum class ParkOutcome { kParked, kSkipped, kFailed };

  /// Park detached sessions idle for >= idle_ms, skipping any for which
  /// `busy(id)` is true (queued or running work — parking would free a
  /// stack an executor still references).  Returns how many were parked.
  /// A session whose park attempt FAILS is still removed — keeping it
  /// would leak stacks for as long as the disk stays full — and its id
  /// is appended to `failed_ids` (when non-null) so the server can mark
  /// it `io-degraded` instead of `unknown-session`.
  template <typename Busy>
  std::size_t park_idle(std::uint64_t now_ms, std::uint64_t idle_ms,
                        Busy busy,
                        std::vector<std::uint64_t>* failed_ids = nullptr) {
    if (idle_ms == 0) {
      return 0;
    }
    std::size_t parked = 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const Entry& entry = it->second;
      if (!entry.attached && now_ms >= entry.last_active_ms + idle_ms &&
          !busy(it->first)) {
        const ParkOutcome outcome = park_entry(entry);
        if (outcome == ParkOutcome::kParked) {
          ++parked;
        } else if (outcome == ParkOutcome::kFailed &&
                   failed_ids != nullptr) {
          failed_ids->push_back(it->first);
        }
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    return parked;
  }

  /// Drain: park every live, non-escalated session.  Returns how many
  /// checkpoint files were written; `failed` (when non-null) receives
  /// the number of park attempts that failed on I/O.
  std::size_t checkpoint_all(std::size_t* failed = nullptr);

  /// Park one detached session now (the lease-reaping path: its owning
  /// connection went half-open and was just dropped).  kSkipped when
  /// the id is unknown, still attached, or parking is disabled /
  /// escalated — in those cases the entry stays warm for re-attach.
  /// kParked and kFailed both remove the entry (kFailed leaks nothing
  /// but loses the stack; the caller records it as io-degraded).
  ParkOutcome park_session(std::uint64_t id);

  /// Remove a session outright (escalation, close, quota kill).
  void evict(std::uint64_t id);

  /// Whether `id` is live, without touching its last-active time.
  [[nodiscard]] bool contains(std::uint64_t id) const noexcept {
    return sessions_.find(id) != sessions_.end();
  }

  [[nodiscard]] std::size_t live_sessions() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] const std::string& state_dir() const noexcept {
    return state_dir_;
  }

  /// Path of the parking file for a session name.
  [[nodiscard]] std::string park_path(const std::string& name) const;

 private:
  struct Entry {
    std::unique_ptr<Session> session;
    std::uint64_t last_active_ms = 0;
    bool attached = true;
  };

  [[nodiscard]] ParkOutcome park_entry(const Entry& entry) const;

  std::size_t max_sessions_;
  std::string state_dir_;
  std::map<std::uint64_t, Entry> sessions_;
};

}  // namespace qpf::serve

#include "serve/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "circuit/bug_plant.h"
#include "io/file_ops.h"
#include "journal/snapshot.h"

namespace qpf::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw IoError("socket", "fcntl(O_NONBLOCK) failed: " +
                                std::string(std::strerror(errno)));
  }
}

void make_pipe(int fds[2]) {
  if (::pipe(fds) != 0) {
    throw IoError("pipe",
                  "pipe() failed: " + std::string(std::strerror(errno)));
  }
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
}

void drain_pipe(int fd) {
  char sink[256];
  while (io::read_retry(fd, sink, sizeof sink) > 0) {
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      table_(options_.max_sessions, options_.state_dir) {}

Server::~Server() {
  close_fd(listen_fd_);
  close_fd(shutdown_pipe_[0]);
  close_fd(shutdown_pipe_[1]);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

std::uint64_t Server::now_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Server::start() {
  make_pipe(shutdown_pipe_);
  make_pipe(wake_pipe_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("socket",
                  "socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw IoError("socket",
                  "bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw IoError("socket",
                  "listen() failed: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw IoError("socket",
                  "getsockname() failed: " + std::string(std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
}

void Server::shutdown() {
  const char byte = 'S';
  [[maybe_unused]] const ssize_t n =
      io::write_retry(shutdown_pipe_[1], &byte, 1);
}

void Server::wake_reactor() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = io::write_retry(wake_pipe_[1], &byte, 1);
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::serve() {
  if (listen_fd_ < 0) {
    throw IoError("server", "serve() called before start()");
  }
  executor_ = std::make_unique<exec::Executor>(
      std::max<std::size_t>(options_.executor_threads, 1));

  try {
    poll_loop();
  } catch (...) {
    // The reactor died (poll/fcntl IoError).  Retire the executor pool
    // (drain queued session turns, join) before the typed error
    // propagates.
    executor_->shutdown();
    executor_.reset();
    throw;
  }

  // Drain finished: every queue is idle and every flushable reply has
  // been flushed.  Retire the executor, then checkpoint what is left.
  executor_->shutdown();
  executor_.reset();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t failed = 0;
    stats_.sessions_parked += table_.checkpoint_all(&failed);
    stats_.park_failures += failed;
    for (auto& [id, conn] : connections_) {
      ::close(conn.fd);
    }
    connections_.clear();
    conn_by_fd_.clear();
  }
}

bool Server::all_queues_idle() const {
  for (const auto& [id, st] : exec_) {
    if (st.running || !st.pending.empty()) {
      return false;
    }
  }
  return true;
}

void Server::poll_loop() {
  while (true) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{shutdown_pipe_[0], POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    bool drain_candidate;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!draining_) {
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      }
      for (const auto& [id, conn] : connections_) {
        short events = 0;
        if (!conn.doomed) {
          events |= POLLIN;
        }
        if (conn.tx_offset < conn.tx.size()) {
          events |= POLLOUT;
        }
        if (events != 0) {
          fds.push_back(pollfd{conn.fd, events, 0});
        }
      }
      drain_candidate = draining_ && all_queues_idle();
    }

    const int timeout_ms = drain_candidate ? 10 : 100;
    const int rc = io::poll_retry(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      throw IoError("server",
                    "poll() failed: " + std::string(std::strerror(errno)));
    }

    if (fds[0].revents & POLLIN) {
      drain_pipe(shutdown_pipe_[0]);
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    if (fds[1].revents & POLLIN) {
      drain_pipe(wake_pipe_[0]);
    }

    const std::uint64_t now = now_ms();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.fd == listen_fd_) {
        if (p.revents & POLLIN) {
          accept_clients();
        }
        continue;
      }
      std::uint64_t conn_id = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = conn_by_fd_.find(p.fd);
        if (it == conn_by_fd_.end()) {
          continue;
        }
        conn_id = it->second;
      }
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        drop_connection(conn_id, now);
        continue;
      }
      if (p.revents & POLLOUT) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = connections_.find(conn_id);
        if (it != connections_.end()) {
          write_client(it->second, now);
        }
      }
      if (p.revents & POLLIN) {
        read_client_by_id(conn_id, now);
      }
    }

    // Housekeeping: slow readers, lease-expired half-open connections,
    // doomed-and-flushed connections, idle parking, drain completion.
    std::vector<std::uint64_t> to_drop;
    std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> to_reap;
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& [id, conn] : connections_) {
        const bool tx_pending = conn.tx_offset < conn.tx.size();
        if (conn.doomed && !tx_pending) {
          to_drop.push_back(id);
        } else if (tx_pending && options_.write_timeout_ms > 0 &&
                   now > conn.last_write_progress_ms +
                             options_.write_timeout_ms) {
          ++stats_.connections_dropped;
          to_drop.push_back(id);
        } else if (options_.lease_ms > 0 && !conn.doomed &&
                   now > conn.last_rx_ms + options_.lease_ms) {
          // The peer has sent nothing — not even a heartbeat — for a
          // whole lease.  Treat the connection as half-open (the TCP
          // peer may be gone without a FIN ever arriving) and reap it.
          // Its sessions are parked, not evicted: a reconnect with
          // resume=true restores them with the dedup window intact.
          ++stats_.lease_expired;
          to_reap.emplace_back(id, conn.sessions);
        }
      }
      if (options_.idle_evict_ms > 0) {
        std::vector<std::uint64_t> park_failed;
        stats_.sessions_parked += table_.park_idle(
            now, options_.idle_evict_ms,
            [this](std::uint64_t id) {
              auto it = exec_.find(id);
              return it != exec_.end() &&
                     (it->second.running || !it->second.pending.empty());
            },
            &park_failed);
        // Graceful degradation under a full/unwritable state dir: the
        // session could not be parked, so its stack was dropped.  Mark
        // the id so later requests get a typed `io-degraded` refusal;
        // every healthy tenant is untouched.
        for (const std::uint64_t id : park_failed) {
          note_evicted(id, "io-degraded");
          ++stats_.park_failures;
        }
      }
      // Retire execution state for sessions that are gone (closed,
      // evicted, or parked) once their queue has drained — otherwise
      // exec_ keeps one entry per session id for the life of the
      // server.  A running/queued entry is never touched; reopening a
      // name simply recreates the entry from the session accounting.
      for (auto it = exec_.begin(); it != exec_.end();) {
        if (!it->second.running && it->second.pending.empty() &&
            !table_.contains(it->first)) {
          it = exec_.erase(it);
        } else {
          ++it;
        }
      }
      if (draining_ && all_queues_idle()) {
        bool flushed = true;
        for (const auto& [id, conn] : connections_) {
          if (conn.tx_offset < conn.tx.size()) {
            flushed = false;
            break;
          }
        }
        drained = flushed;
      }
    }
    for (const std::uint64_t id : to_drop) {
      drop_connection(id, now);
    }
    for (const auto& [conn_id, session_ids] : to_reap) {
      drop_connection(conn_id, now);  // detaches the sessions
      std::lock_guard<std::mutex> lock(mutex_);
      for (const std::uint64_t sid : session_ids) {
        // A session with queued or running work stays warm — parking
        // would free a stack an executor still references; it will be
        // parked by the idle sweep once its queue drains.
        auto it = exec_.find(sid);
        if (it != exec_.end() &&
            (it->second.running || !it->second.pending.empty())) {
          continue;
        }
        switch (table_.park_session(sid)) {
          case SessionTable::ParkOutcome::kParked:
            ++stats_.sessions_parked;
            break;
          case SessionTable::ParkOutcome::kFailed:
            note_evicted(sid, "io-degraded");
            ++stats_.park_failures;
            break;
          case SessionTable::ParkOutcome::kSkipped:
            break;
        }
      }
    }
    if (drained) {
      return;
    }
  }
}

void Server::accept_clients() {
  while (true) {
    const int fd = io::accept_retry(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or transient accept failure: poll again
    }
    set_nonblocking(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.decoder = FrameDecoder(options_.max_frame_bytes);
    conn.last_write_progress_ms = now_ms();
    conn.last_rx_ms = conn.last_write_progress_ms;
    conn_by_fd_[fd] = conn.id;
    ++stats_.connections_accepted;
    connections_.emplace(conn.id, std::move(conn));
  }
}

void Server::read_client_by_id(std::uint64_t conn_id, std::uint64_t now) {
  char buffer[65536];
  while (true) {
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = connections_.find(conn_id);
      if (it == connections_.end() || it->second.doomed) {
        return;
      }
      fd = it->second.fd;
    }
    // read_retry absorbs EINTR: before this audit a stray signal here
    // looked like a dead peer and dropped a healthy connection.
    const ssize_t n = io::read_retry(fd, buffer, sizeof buffer);
    if (n == 0) {
      drop_connection(conn_id, now);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      drop_connection(conn_id, now);
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
      return;
    }
    Connection& conn = it->second;
    conn.last_rx_ms = now;
    try {
      conn.decoder.feed(buffer, static_cast<std::size_t>(n));
      while (std::optional<Frame> frame = conn.decoder.next()) {
        handle_frame(conn, std::move(*frame), now);
      }
    } catch (const ProtocolError& e) {
      // The stream is desynchronized: answer with a typed error frame
      // and close once it flushes.  Only this connection is affected.
      Frame request;  // no trustworthy ids at this point
      send_error(conn.id, request, "protocol", e.what());
      conn.doomed = true;
      ++stats_.connections_dropped;
      return;
    }
    if (static_cast<std::size_t>(n) < sizeof buffer) {
      return;
    }
  }
}

void Server::write_client(Connection& conn, std::uint64_t now) {
  while (conn.tx_offset < conn.tx.size()) {
    const ssize_t n =
        io::send_retry(conn.fd, conn.tx.data() + conn.tx_offset,
                       conn.tx.size() - conn.tx_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      // Peer is gone; stop flushing and let housekeeping reap us.
      conn.tx.clear();
      conn.tx_offset = 0;
      conn.doomed = true;
      return;
    }
    conn.tx_offset += static_cast<std::size_t>(n);
    conn.last_write_progress_ms = now;
  }
  conn.tx.clear();
  conn.tx_offset = 0;
}

void Server::drop_connection(std::uint64_t conn_id, std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  Connection& conn = it->second;
  for (const std::uint64_t session : conn.sessions) {
    table_.detach(session, now);
  }
  conn_by_fd_.erase(conn.fd);
  ::close(conn.fd);
  connections_.erase(it);
}

void Server::enqueue_reply(std::uint64_t conn_id, const Frame& reply) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end() || it->second.doomed) {
    return;  // client left; the reply evaporates
  }
  Connection& conn = it->second;
  const std::vector<std::uint8_t> bytes = encode_frame(reply);
  if (conn.tx.size() - conn.tx_offset + bytes.size() >
      options_.write_buffer_cap) {
    // The client has stopped reading; buffering more would let one
    // slow reader hold server memory hostage.
    conn.tx.clear();
    conn.tx_offset = 0;
    conn.doomed = true;
    ++stats_.connections_dropped;
    return;
  }
  // The write-stall clock starts when the buffer goes from idle to
  // pending: a connection that sat idle longer than write_timeout_ms
  // must not be reaped before the very first write is even attempted.
  if (conn.tx_offset >= conn.tx.size()) {
    conn.last_write_progress_ms = now_ms();
  }
  conn.tx.insert(conn.tx.end(), bytes.begin(), bytes.end());
  wake_reactor();
}

void Server::note_evicted(std::uint64_t session_id, std::string reason) {
  // Bounded memory of evicted ids (better refusal messages); the
  // oldest are forgotten once the ring is full.
  static constexpr std::size_t kEvictedCap = 1024;
  if (evicted_.emplace(session_id, std::move(reason)).second) {
    evicted_order_.push_back(session_id);
    while (evicted_order_.size() > kEvictedCap) {
      evicted_.erase(evicted_order_.front());
      evicted_order_.pop_front();
    }
  }
}

void Server::send_evicted_error(std::uint64_t conn_id, const Frame& request,
                                const std::string& reason) {
  send_error(conn_id, request, reason,
             reason == "io-degraded"
                 ? "session was evicted: parking failed, state dir is "
                   "unwritable (reopen to rebuild)"
                 : "session was evicted after escalation");
}

void Server::forget_evicted(std::uint64_t session_id) {
  if (evicted_.erase(session_id) != 0) {
    evicted_order_.erase(std::find(evicted_order_.begin(),
                                   evicted_order_.end(), session_id));
  }
}

void Server::note_closed(std::uint64_t session_id, std::uint32_t request,
                         std::vector<std::uint8_t> payload) {
  static constexpr std::size_t kClosedCap = 1024;
  if (closed_.emplace(session_id, ClosedTombstone{request,
                                                  std::move(payload)})
          .second) {
    closed_order_.push_back(session_id);
    while (closed_order_.size() > kClosedCap) {
      closed_.erase(closed_order_.front());
      closed_order_.pop_front();
    }
  }
}

void Server::forget_closed(std::uint64_t session_id) {
  if (closed_.erase(session_id) != 0) {
    closed_order_.erase(std::find(closed_order_.begin(),
                                  closed_order_.end(), session_id));
  }
}

bool Server::reply_closed_tombstone(std::uint64_t conn_id,
                                    const Frame& frame) {
  if (frame.type != MsgType::kClose) {
    return false;
  }
  const auto it = closed_.find(frame.session);
  if (it == closed_.end() || it->second.request != frame.request) {
    return false;
  }
  Frame reply;
  reply.version = frame.version;
  reply.type = MsgType::kClosed;
  reply.session = frame.session;
  reply.request = frame.request;
  reply.payload = it->second.payload;
  ++stats_.duplicate_requests;
  ++stats_.dedup_hits;
  enqueue_reply(conn_id, reply);
  return true;
}

void Server::refund_admission(std::uint64_t session_id,
                              std::size_t payload_bytes) {
  auto it = exec_.find(session_id);
  if (it == exec_.end()) {
    return;
  }
  ExecState& st = it->second;
  if (st.requests_admitted > 0) {
    --st.requests_admitted;
  }
  st.bytes_admitted -=
      std::min<std::uint64_t>(st.bytes_admitted, payload_bytes);
}

StatsReply Server::stats_reply_locked() const {
  StatsReply m;
  m.connections_accepted = stats_.connections_accepted;
  m.connections_dropped = stats_.connections_dropped;
  m.requests_executed = stats_.requests_executed;
  m.requests_shed = stats_.requests_shed;
  m.sessions_evicted = stats_.sessions_evicted;
  m.sessions_parked = stats_.sessions_parked;
  m.sessions_restored = stats_.sessions_restored;
  m.lease_expired = stats_.lease_expired;
  m.duplicate_requests = stats_.duplicate_requests;
  m.dedup_hits = stats_.dedup_hits;
  return m;
}

void Server::release_session(std::uint64_t conn_id,
                             std::uint64_t session_id) {
  auto it = connections_.find(conn_id);
  if (it != connections_.end()) {
    auto& owned = it->second.sessions;
    owned.erase(std::remove(owned.begin(), owned.end(), session_id),
                owned.end());
  }
}

void Server::send_error(std::uint64_t conn_id, const Frame& request,
                        const std::string& code, const std::string& message) {
  Frame reply;
  reply.version = request.version;
  reply.type = MsgType::kError;
  reply.session = request.session;
  reply.request = request.request;
  reply.payload = encode_error_reply(ErrorReply{code, message});
  enqueue_reply(conn_id, reply);
}

void Server::handle_frame(Connection& conn, Frame frame, std::uint64_t now) {
  if (!is_client_message(frame.type)) {
    send_error(conn.id, frame, "protocol",
               std::string("unexpected ") + type_name(frame.type) +
                   " from a client");
    conn.doomed = true;
    return;
  }
  if (!conn.hello_done && frame.type != MsgType::kHello) {
    send_error(conn.id, frame, "protocol",
               "first message on a connection must be hello");
    conn.doomed = true;
    return;
  }
  switch (frame.type) {
    case MsgType::kHello:
      handle_hello(conn, frame);
      return;
    case MsgType::kOpenSession:
      handle_open_session(conn, frame, now);
      return;
    case MsgType::kPing: {
      // Heartbeat: receiving the frame already refreshed the lease
      // clock (last_rx_ms); touch the session's last-active time too so
      // heartbeats also hold off idle parking, and answer even while
      // draining — a drain must not look like a dead server.
      if (frame.session != 0) {
        (void)table_.find(frame.session, now);
      }
      Frame reply;
      reply.version = frame.version;
      reply.type = MsgType::kPong;
      reply.session = frame.session;
      reply.request = frame.request;
      enqueue_reply(conn.id, reply);
      return;
    }
    case MsgType::kStats: {
      Frame reply;
      reply.version = frame.version;
      reply.type = MsgType::kStatsReply;
      reply.request = frame.request;
      reply.payload = encode_stats_reply(stats_reply_locked());
      enqueue_reply(conn.id, reply);
      return;
    }
    default:
      break;
  }

  // Session-scoped request: admission control happens here, before the
  // stack is touched, so refusals never perturb session state.
  Session* session = table_.find(frame.session, now);
  if (session == nullptr) {
    if (frame.version >= 2 && !plant::bug(14) &&
        reply_closed_tombstone(conn.id, frame)) {
      return;
    }
    const auto ev = evicted_.find(frame.session);
    if (ev != evicted_.end()) {
      send_evicted_error(conn.id, frame, ev->second);
    } else {
      send_error(conn.id, frame, "unknown-session", "no such session");
    }
    return;
  }
  // Session ids are deterministic (FNV-1a of the public name), so
  // knowing an id must not grant access: only the connection the
  // session is attached to may drive it.
  if (std::find(conn.sessions.begin(), conn.sessions.end(),
                frame.session) == conn.sessions.end()) {
    send_error(conn.id, frame, "session-busy",
               "session is not attached to this connection");
    return;
  }
  if (draining_) {
    send_error(conn.id, frame, "draining",
               "server is draining; queued work will finish");
    return;
  }
  ExecState& st = exec_[frame.session];
  const SessionQuota& quota = options_.quota;
  if ((quota.max_requests != 0 && st.requests_admitted >= quota.max_requests) ||
      (quota.max_bytes != 0 &&
       st.bytes_admitted + frame.payload.size() > quota.max_bytes)) {
    ++stats_.quota_refusals;
    send_error(conn.id, frame, "quota", "session budget exhausted");
    return;
  }
  if (st.pending.size() >= options_.queue_depth) {
    // Deterministic reject-newest: everything already admitted keeps
    // its order, so healthy reply streams stay reproducible.
    ++stats_.requests_shed;
    send_error(conn.id, frame, "overloaded",
               "session queue is full (" +
                   std::to_string(options_.queue_depth) + ")");
    return;
  }
  const std::uint64_t sid = frame.session;
  ++st.requests_admitted;
  st.bytes_admitted += frame.payload.size();
  st.pending.push_back(Job{conn.id, std::move(frame)});
  if (!st.running && st.pending.size() == 1) {
    schedule_session(sid);
  }
}

void Server::handle_hello(Connection& conn, const Frame& frame) {
  Hello hello;
  try {
    hello = decode_hello(frame.payload);
  } catch (const ProtocolError& e) {
    send_error(conn.id, frame, "protocol", e.what());
    conn.doomed = true;
    return;
  }
  if (hello.min_version > kProtocolVersion ||
      hello.max_version < kMinProtocolVersion) {
    send_error(conn.id, frame, "version",
               "server speaks protocol versions " +
                   std::to_string(kMinProtocolVersion) + ".." +
                   std::to_string(kProtocolVersion));
    conn.doomed = true;
    return;
  }
  // Serve the newest version both sides speak; version-1 clients keep
  // getting version-1 frames (replies always echo the request frame's
  // version), so their byte streams are unchanged.
  const std::uint32_t chosen =
      std::min<std::uint32_t>(kProtocolVersion, hello.max_version);
  conn.hello_done = true;
  Frame reply;
  reply.version = frame.version;
  reply.type = MsgType::kWelcome;
  reply.request = frame.request;
  reply.payload = encode_welcome(
      Welcome{chosen, options_.server_name,
              options_.max_frame_bytes, options_.queue_depth});
  enqueue_reply(conn.id, reply);
}

void Server::handle_open_session(Connection& conn, const Frame& frame,
                                 std::uint64_t now) {
  if (draining_) {
    send_error(conn.id, frame, "draining", "server is draining");
    return;
  }
  SessionConfig config;
  try {
    config = decode_session_config(frame.payload);
  } catch (const ProtocolError& e) {
    send_error(conn.id, frame, "protocol", e.what());
    return;
  }
  try {
    const SessionTable::Opened opened = table_.open(config, now);
    const std::uint64_t id = opened.session->id();
    conn.sessions.push_back(id);
    forget_evicted(id);
    forget_closed(id);
    ExecState& st = exec_[id];
    st.requests_admitted = opened.session->requests_served();
    st.bytes_admitted = opened.session->bytes_received();
    if (opened.restored) {
      ++stats_.sessions_restored;
    }
    Frame reply;
    reply.version = frame.version;
    reply.type = MsgType::kSessionOpened;
    reply.session = id;
    reply.request = frame.request;
    reply.payload = encode_session_opened(
        SessionOpened{id, opened.restored, opened.session->last_request_id()},
        frame.version);
    enqueue_reply(conn.id, reply);
  } catch (const StackConfigError& e) {
    const std::string& component = e.context().component;
    const std::string code =
        (component == "session-busy" || component == "session-limit")
            ? component
            : "stack-config";
    send_error(conn.id, frame, code, e.message());
  } catch (const CheckpointError& e) {
    send_error(conn.id, frame, "checkpoint", e.what());
  }
}

void Server::schedule_session(std::uint64_t session_id) {
  // Caller holds mutex_; the executor's queue lock nests inside it
  // (workers take mutex_ only after releasing the queue lock, so the
  // order is acyclic).  Scheduling happens only on the empty->nonempty
  // queue transition and on turn re-arm, so at most one turn per
  // session is ever in flight — the per-session serialization the
  // fault-isolation contract depends on.
  executor_->submit([this, session_id] { session_turn(session_id); });
}

void Server::session_turn(std::uint64_t session_id) {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = exec_.find(session_id);
    if (it == exec_.end() || it->second.running ||
        it->second.pending.empty()) {
      return;  // session retired (closed/evicted) before its turn
    }
    job = std::move(it->second.pending.front());
    it->second.pending.pop_front();
    it->second.running = true;
  }

  execute_job(job);

  std::lock_guard<std::mutex> lock(mutex_);
  ExecState& st = exec_[session_id];
  st.running = false;
  ++stats_.requests_executed;
  if (!st.pending.empty()) {
    schedule_session(session_id);
  }
}

void Server::execute_job(const Job& job) {
  const Frame& frame = job.frame;
  const std::uint64_t sid = frame.session;
  // Exactly-once (protocol v2): a retried request id whose reply is
  // still in the session's window is answered by replaying the recorded
  // bytes — the stack never sees the duplicate, so at-least-once
  // delivery cannot double-execute gates.  The check happens at
  // execution time, not admission, so a retry queued behind its own
  // original still dedups.  Planted bug 14 silently bypasses the
  // window (and the close tombstones): duplicates re-execute and the
  // final requests_served count diverges.
  const bool dedupe = frame.version >= 2 && !plant::bug(14);
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session = table_.find(sid, now_ms());
    if (session == nullptr) {
      if (dedupe && reply_closed_tombstone(job.conn_id, frame)) {
        return;
      }
      const auto ev = evicted_.find(sid);
      if (ev != evicted_.end()) {
        send_evicted_error(job.conn_id, frame, ev->second);
      } else {
        send_error(job.conn_id, frame, "unknown-session",
                   "session closed before the request ran");
      }
      return;
    }
    if (dedupe) {
      if (const Session::RecordedReply* recorded =
              session->find_reply(frame.request)) {
        Frame reply;
        reply.version = frame.version;
        reply.type = recorded->type;
        reply.session = sid;
        reply.request = frame.request;
        reply.payload = recorded->payload;
        ++stats_.duplicate_requests;
        ++stats_.dedup_hits;
        // The duplicate was admitted (and charged) a second time at
        // handle_frame; refund it so quotas bill each id once.
        refund_admission(sid, frame.payload.size());
        enqueue_reply(job.conn_id, reply);
        return;
      }
      if (frame.request != 0 && frame.request <= session->last_request_id()) {
        // Executed, but the reply has left the bounded window: refuse
        // rather than silently re-execute — a typed error is visible,
        // a double-executed gate sequence is not.
        ++stats_.duplicate_requests;
        send_error(job.conn_id, frame, "dedup",
                   "request id " + std::to_string(frame.request) +
                       " was already executed and its reply has left the "
                       "replay window");
        return;
      }
    }
  }

  // Enqueue a reply and — for v2 frames — record it in the session's
  // window so a retry of this id replays the same bytes.  Error replies
  // are recorded too: a deterministic failure must stay the same
  // failure when retried, not re-run.
  const auto reply_recorded = [&](Frame reply) {
    reply.version = frame.version;
    std::lock_guard<std::mutex> lock(mutex_);
    if (dedupe) {
      if (Session* live = table_.find(sid, now_ms())) {
        live->record_reply(frame.request, reply.type, reply.payload);
      }
    }
    enqueue_reply(job.conn_id, reply);
  };
  const auto error_frame = [&](const std::string& code,
                               const std::string& message) {
    Frame reply;
    reply.type = MsgType::kError;
    reply.session = sid;
    reply.request = frame.request;
    reply.payload = encode_error_reply(ErrorReply{code, message});
    return reply;
  };

  // The stack runs OUTSIDE the lock: per-session serialization (the
  // running flag) is the only execution ordering, and the reactor never
  // touches a stack — so one slow or faulting tenant cannot block the
  // accept path or any other session.
  try {
    switch (frame.type) {
      case MsgType::kSubmitQasm: {
        const std::string qasm = decode_submit_qasm(frame.payload);
        (void)session->charge(SessionQuota{}, frame.payload.size());
        const RunReply result = session->submit_qasm(qasm);
        Frame reply;
        reply.type = MsgType::kRunReply;
        reply.session = sid;
        reply.request = frame.request;
        reply.payload = encode_run_reply(result);
        reply_recorded(std::move(reply));
        return;
      }
      case MsgType::kMeasure: {
        Frame reply;
        reply.type = MsgType::kMeasureReply;
        reply.session = sid;
        reply.request = frame.request;
        reply.payload = encode_measure_reply(session->measure());
        reply_recorded(std::move(reply));
        return;
      }
      case MsgType::kSnapshot: {
        const std::vector<std::uint8_t> snapshot = session->park();
        Frame reply;
        reply.type = MsgType::kSnapshotReply;
        reply.session = sid;
        reply.request = frame.request;
        reply.payload = encode_snapshot_reply(SnapshotReply{
            snapshot.size(),
            journal::crc32(snapshot.data(), snapshot.size())});
        reply_recorded(std::move(reply));
        return;
      }
      case MsgType::kClose: {
        Frame reply;
        reply.version = frame.version;
        reply.type = MsgType::kClosed;
        reply.session = sid;
        reply.request = frame.request;
        reply.payload =
            encode_closed(Closed{session->requests_served()});
        std::lock_guard<std::mutex> lock(mutex_);
        // The session is gone after this; a tombstone keeps the Closed
        // bytes around so a retried close still replays them.
        if (dedupe) {
          note_closed(sid, frame.request, reply.payload);
        }
        table_.evict(sid);
        release_session(job.conn_id, sid);
        enqueue_reply(job.conn_id, reply);
        return;
      }
      default: {
        std::lock_guard<std::mutex> lock(mutex_);
        send_error(job.conn_id, frame, "internal",
                   "unroutable message type");
        return;
      }
    }
  } catch (const SupervisionError& e) {
    // The session's recovery budget is spent; its stack can no longer
    // be trusted.  Evict it — every other session is untouched.  No
    // reply is recorded: the session (and its window) die here.
    std::lock_guard<std::mutex> lock(mutex_);
    table_.evict(sid);
    release_session(job.conn_id, sid);
    note_evicted(sid, "evicted");
    ++stats_.sessions_evicted;
    send_error(job.conn_id, frame, "supervision", e.what());
  } catch (const QasmParseError& e) {
    reply_recorded(error_frame("qasm-parse", e.what()));
  } catch (const ProtocolError& e) {
    reply_recorded(error_frame("protocol", e.what()));
  } catch (const TransientFaultError& e) {
    reply_recorded(error_frame("transient", e.what()));
  } catch (const CheckpointError& e) {
    reply_recorded(error_frame("checkpoint", e.what()));
  } catch (const StackConfigError& e) {
    reply_recorded(error_frame("stack-config", e.what()));
  } catch (const Error& e) {
    reply_recorded(error_frame("internal", e.what()));
  } catch (const std::exception& e) {
    reply_recorded(error_frame("internal", e.what()));
  }
}

}  // namespace qpf::serve

// Blocking qpf_serve client, used by the load generator, the serve
// test suite, and check_serve.sh.
//
// The client is deliberately simple — one socket, synchronous
// send/recv, no retries — because its second job is to be a *witness*:
// every byte received is appended to an in-memory transcript, and the
// chaos isolation test compares healthy sessions' transcripts across a
// fault-free and a poisoned server run byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace qpf::serve {

/// Dial 127.0.0.1:port through the io seam with a bounded, seeded retry
/// on ECONNREFUSED / ECONNABORTED / ETIMEDOUT — a freshly exec'd server
/// may not have reached listen(2) yet, and losing that race is not an
/// error worth surfacing.  Any other errno throws immediately.  Returns
/// the connected fd; throws IoError once `budget_ms` is exhausted.
[[nodiscard]] int connect_with_retry(std::uint16_t port,
                                     std::uint64_t seed = 1,
                                     std::uint64_t budget_ms = 3000);

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:port.  Throws IoError.
  void connect(std::uint16_t port);
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one frame (blocking until fully written).  Throws IoError.
  void send(const Frame& frame);

  /// Receive the next frame (blocking).  Returns nullopt on a clean
  /// peer close; throws IoError on socket errors and ProtocolError on
  /// malformed server bytes.
  [[nodiscard]] std::optional<Frame> recv();

  /// Send `request` and wait for the reply carrying the same request
  /// id.  Out-of-band replies for other ids (pipelined traffic) are an
  /// IoError here — the lockstep helpers are for lockstep clients.
  [[nodiscard]] Frame transact(const Frame& request);

  // Lockstep helpers.  Each returns the server's error reply when one
  // came back, encoded as an ErrorReply, or performs the happy path.
  struct Result {
    Frame reply;
    std::optional<ErrorReply> error;  ///< set when reply.type == kError
  };
  [[nodiscard]] Result hello(const std::string& client_name);
  [[nodiscard]] Result open_session(const SessionConfig& config);
  [[nodiscard]] Result submit_qasm(std::uint64_t session,
                                   const std::string& qasm);
  [[nodiscard]] Result measure(std::uint64_t session);
  [[nodiscard]] Result snapshot(std::uint64_t session);
  [[nodiscard]] Result close_session(std::uint64_t session);

  /// Every byte received so far, in arrival order — the reply stream
  /// this connection witnessed.
  [[nodiscard]] const std::vector<std::uint8_t>& transcript() const noexcept {
    return transcript_;
  }

 private:
  [[nodiscard]] Result run_request(Frame request);

  int fd_ = -1;
  std::uint32_t next_request_ = 1;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> transcript_;
};

}  // namespace qpf::serve

// One tenant of qpf_serve: a persistent, independently supervised
// control stack plus the accounting the robustness contract needs.
//
// A Session owns its own ChpCore + optional ClassicalFaultLayer (chaos
// schedule) + optional PauliFrameLayer + optional SupervisorLayer —
// the same assembly order as the CLI runner, so a session is exactly
// one long-lived shot.  Every request is a pure function of
// (SessionConfig, request history): nothing in the stack reads the
// clock or a shared RNG, which is what makes healthy-session reply
// streams byte-identical whether or not a neighbor session is being
// poisoned (check_serve.sh asserts this).
//
// Fault semantics per request:
//   - QasmParseError / StackConfigError / TransientFaultError leave the
//     session alive (the supervisor absorbed what it could); the server
//     renders a typed error reply and the next request proceeds.
//   - SupervisionError marks the session escalated: the stack is no
//     longer trustworthy, the server evicts it, and every later request
//     for the id gets an `evicted` reply.
//
// park()/unpark() are the idle-eviction / SIGTERM-drain path: the whole
// stack serializes through the PR 2 snapshot machinery (plus the config
// and accounting), and a reconnect with resume=true restores it
// bit-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "arch/chp_core.h"
#include "arch/classical_fault_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/supervisor_layer.h"
#include "serve/protocol.h"

namespace qpf::serve {

/// Per-session resource quotas (0 = unlimited).
struct SessionQuota {
  std::uint64_t max_requests = 0;  ///< lifetime request budget
  std::uint64_t max_bytes = 0;     ///< lifetime received-payload budget
};

class Session {
 public:
  explicit Session(SessionConfig config);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const SessionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Parse, add, and execute one QASM program on the persistent stack.
  /// Throws typed qpf::Errors; a SupervisionError additionally marks
  /// the session escalated.
  [[nodiscard]] RunReply submit_qasm(const std::string& qasm);

  /// Render the register state q_{n-1}..q_0 without executing anything.
  [[nodiscard]] std::string measure() const;

  /// Serialize the full session (config + accounting + stack) into a
  /// snapshot payload; also the idle-eviction / drain format.
  [[nodiscard]] std::vector<std::uint8_t> park() const;

  /// Rebuild a parked session.  The caller's `config` must match the
  /// parked one (name/seed/topology); throws CheckpointError otherwise.
  [[nodiscard]] static std::unique_ptr<Session> unpark(
      const SessionConfig& config, const std::vector<std::uint8_t>& payload);

  /// Charge `payload_bytes` against the quota; false once the budget is
  /// exhausted (the request must be refused *before* touching the
  /// stack, so a quota refusal never perturbs the state).
  [[nodiscard]] bool charge(const SessionQuota& quota,
                            std::uint64_t payload_bytes) noexcept;

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }
  /// True after a SupervisionError: the stack refuses further traffic.
  [[nodiscard]] bool escalated() const noexcept { return escalated_; }
  [[nodiscard]] std::uint8_t supervisor_state() const noexcept;

  // --- Idempotency window (protocol v2) -------------------------------
  // The last kDedupWindow replies, keyed by request id.  A retried
  // request id whose reply is still in the window is answered by
  // replaying the recorded bytes instead of re-executing gates, which
  // is what makes RetryClient's at-least-once delivery exactly-once at
  // the stack.  The window parks and unparks with the session, so a
  // retry that straddles a reap/restore cycle still replays.

  struct RecordedReply {
    std::uint32_t request = 0;
    MsgType type = MsgType::kError;
    std::vector<std::uint8_t> payload;
  };

  /// Replies retained for replay; bounds the per-session memory.
  static constexpr std::size_t kDedupWindow = 16;

  /// Remember the reply for `request` and advance last_request_id().
  void record_reply(std::uint32_t request, MsgType type,
                    std::vector<std::uint8_t> payload);

  /// The recorded reply for `request`, or nullptr if it has left the
  /// window (or was never executed).
  [[nodiscard]] const RecordedReply* find_reply(
      std::uint32_t request) const noexcept;

  /// Highest request id ever executed on this session (0 = none).
  [[nodiscard]] std::uint32_t last_request_id() const noexcept {
    return last_request_id_;
  }

 private:
  void build_stack();

  SessionConfig config_;
  std::uint64_t id_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t bytes_received_ = 0;
  bool escalated_ = false;
  std::uint32_t last_request_id_ = 0;
  std::deque<RecordedReply> replies_;

  std::unique_ptr<arch::ChpCore> core_;
  std::unique_ptr<arch::ClassicalFaultLayer> faults_;
  std::unique_ptr<arch::PauliFrameLayer> frame_;
  std::unique_ptr<arch::SupervisorLayer> supervisor_;
  arch::Core* top_ = nullptr;
};

}  // namespace qpf::serve

// qpf_serve core: a poll(2) reactor plus the shared deterministic
// executor (qpf::exec::Executor, service mode) running session turns,
// built so the robustness contract is enforceable by construction:
//
//   * ONE state mutex guards the connection map, the session table, and
//     every per-session queue.  The reactor thread does all socket I/O;
//     executor workers only run stack requests and append reply bytes
//     to a connection's TX buffer under the mutex, then poke the wake
//     pipe.  No lock-free cleverness — the suite must be TSan-clean.
//
//   * Fault isolation: each session's stack lives in the SessionTable
//     and is driven serially (a per-session run flag), so a poisoned
//     session can only ever corrupt itself.  Typed qpf::Errors become
//     structured kError replies; SupervisionError evicts the session;
//     a ProtocolError poisons only that connection.
//
//   * Backpressure: per-session pending queues are bounded at
//     `queue_depth`; the newest request is rejected with an immediate
//     `overloaded` reply (deterministic reject-newest — the requests
//     already admitted keep their ordering, so healthy reply streams
//     stay reproducible).  Byte/request quotas refuse with `quota`
//     before the stack is touched.  A client that stops reading
//     (TX buffer past `write_buffer_cap`, or no write progress for
//     `write_timeout_ms`) is dropped; its sessions detach and later
//     park — the accept and execute paths never block on one reader.
//
//   * Lifecycle: detached sessions idle past `idle_evict_ms` are parked
//     to `state_dir` through the PR 2 checkpoint armor and transparently
//     restored when a client reconnects with resume=true.  A shutdown
//     request (SIGTERM via the self-pipe) drains: stop accepting,
//     finish queued work, flush replies, checkpoint every live session,
//     then return from serve().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "serve/session_table.h"

namespace qpf::serve {

struct ServeOptions {
  std::uint16_t port = 0;           ///< 0 = ephemeral (report via port())
  std::string state_dir;            ///< parking lot; empty disables parking
  std::size_t max_sessions = 1024;
  std::size_t queue_depth = 16;     ///< pending requests per session
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  SessionQuota quota;               ///< per-session budgets (0 = unlimited)
  std::size_t executor_threads = 2;
  std::uint64_t idle_evict_ms = 0;  ///< 0 disables idle parking
  std::uint64_t write_timeout_ms = 10000;  ///< slow-reader eviction
  std::size_t write_buffer_cap = 8u << 20;
  /// Session lease: a connection that has sent nothing (not even a
  /// kPing heartbeat) for this long is considered half-open and reaped;
  /// its sessions are parked — not evicted — so a reconnect with
  /// resume=true restores them transparently.  0 disables leases.
  std::uint64_t lease_ms = 0;
  std::string server_name = "qpf_serve";
};

/// Counters exported for the ops runbook / load generator.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;  ///< protocol / slow-reader drops
  std::uint64_t requests_executed = 0;
  std::uint64_t requests_shed = 0;        ///< `overloaded` replies
  std::uint64_t quota_refusals = 0;
  std::uint64_t sessions_evicted = 0;     ///< supervision escalations
  std::uint64_t sessions_parked = 0;
  std::uint64_t sessions_restored = 0;
  std::uint64_t park_failures = 0;        ///< `io-degraded` evictions
  std::uint64_t lease_expired = 0;        ///< half-open connections reaped
  std::uint64_t duplicate_requests = 0;   ///< retried request ids observed
  std::uint64_t dedup_hits = 0;           ///< replies replayed, not re-run
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen; after this port() is the real port.  Throws IoError.
  void start();

  /// Run the reactor loop in the calling thread until a shutdown is
  /// requested; drains (finish queued work, flush, checkpoint all
  /// sessions) before returning.
  void serve();

  /// Request an orderly drain from any thread.
  void shutdown();

  /// Async-signal-safe shutdown: write one byte to this fd from a
  /// signal handler.
  [[nodiscard]] int shutdown_fd() const noexcept { return shutdown_pipe_[1]; }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ServeStats stats() const;

 private:
  struct Job {
    std::uint64_t conn_id = 0;
    Frame frame;
  };

  struct ExecState {
    std::deque<Job> pending;
    bool running = false;
    // Quota accounting happens at admission, under the state mutex, so
    // a refusal is deterministic and never touches the stack.
    std::uint64_t requests_admitted = 0;
    std::uint64_t bytes_admitted = 0;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    std::vector<std::uint8_t> tx;
    std::size_t tx_offset = 0;
    bool hello_done = false;
    bool doomed = false;  ///< flush TX, then close
    std::uint64_t last_write_progress_ms = 0;
    std::uint64_t last_rx_ms = 0;  ///< lease clock: last bytes received
    std::vector<std::uint64_t> sessions;  ///< ids opened on this connection
  };

  // Reactor side (single thread).
  void accept_clients();
  void read_client_by_id(std::uint64_t conn_id, std::uint64_t now);
  void write_client(Connection& conn, std::uint64_t now);
  void drop_connection(std::uint64_t conn_id, std::uint64_t now_ms);
  void handle_frame(Connection& conn, Frame frame, std::uint64_t now_ms);
  void handle_hello(Connection& conn, const Frame& frame);
  void handle_open_session(Connection& conn, const Frame& frame,
                           std::uint64_t now_ms);
  void poll_loop();
  [[nodiscard]] bool all_queues_idle() const;  // caller holds mutex_

  // Executor side: session turns scheduled onto the shared
  // qpf::exec::Executor (service mode).  One turn is in flight per
  // session at most (the `running` flag); a turn that leaves work
  // behind re-arms itself, preserving per-session serialization.
  void session_turn(std::uint64_t session_id);
  void schedule_session(std::uint64_t session_id);  // caller holds mutex_
  void execute_job(const Job& job);

  // Shared helpers (caller holds mutex_ unless noted).
  void enqueue_reply(std::uint64_t conn_id, const Frame& reply);
  void send_error(std::uint64_t conn_id, const Frame& request,
                  const std::string& code, const std::string& message);
  void wake_reactor();  // lock-free: one byte down the wake pipe
  void note_evicted(std::uint64_t session_id, std::string reason);
  void forget_evicted(std::uint64_t session_id);
  void send_evicted_error(std::uint64_t conn_id, const Frame& request,
                          const std::string& reason);
  void release_session(std::uint64_t conn_id, std::uint64_t session_id);
  void note_closed(std::uint64_t session_id, std::uint32_t request,
                   std::vector<std::uint8_t> payload);
  void forget_closed(std::uint64_t session_id);
  /// Replay the recorded kClosed for a retried close whose session is
  /// already gone.  True when a tombstone answered the frame.
  bool reply_closed_tombstone(std::uint64_t conn_id, const Frame& frame);
  void refund_admission(std::uint64_t session_id, std::size_t payload_bytes);
  [[nodiscard]] StatsReply stats_reply_locked() const;

  [[nodiscard]] static std::uint64_t now_ms() noexcept;

  ServeOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};
  int wake_pipe_[2] = {-1, -1};

  mutable std::mutex mutex_;
  SessionTable table_;
  std::map<std::uint64_t, Connection> connections_;  // by conn id
  std::map<int, std::uint64_t> conn_by_fd_;
  std::map<std::uint64_t, ExecState> exec_;          // by session id
  // Evicted session ids with the reason code the client should see:
  // "evicted" (supervision escalation) or "io-degraded" (parking the
  // session failed — the state dir is unwritable — so the stack was
  // dropped to protect server memory).  Bounded: the deque records
  // insertion order and the oldest ids are forgotten past the cap, so
  // a long-running server cannot leak memory per eviction.
  std::map<std::uint64_t, std::string> evicted_;
  std::deque<std::uint64_t> evicted_order_;
  // Close tombstones (v2 exactly-once): the kClosed payload recorded
  // when a close executed, so a retried close whose reply was lost on
  // the wire replays byte-identically instead of hitting
  // `unknown-session` (the session itself is gone by then).  Bounded
  // like evicted_.
  struct ClosedTombstone {
    std::uint32_t request = 0;
    std::vector<std::uint8_t> payload;
  };
  std::map<std::uint64_t, ClosedTombstone> closed_;
  std::deque<std::uint64_t> closed_order_;
  ServeStats stats_;
  std::uint64_t next_conn_id_ = 1;
  bool draining_ = false;

  // The service-mode pool running session turns.  Created by serve(),
  // drained and destroyed when serve() returns (or its reactor throws).
  // Lock order: mutex_ may be held while submitting to the executor;
  // executor workers take mutex_ only with the executor's own queue
  // lock released, so the order is strictly mutex_ -> executor queue.
  std::unique_ptr<exec::Executor> executor_;
};

}  // namespace qpf::serve

#include "serve/protocol.h"

#include <cstring>

#include "circuit/bug_plant.h"
#include "journal/snapshot.h"

namespace qpf::serve {

namespace {

using journal::SnapshotReader;
using journal::SnapshotWriter;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Run a payload decoder, converting the snapshot stream's structured
/// CheckpointError (truncation, type-tag mismatch) into the protocol
/// failure domain and insisting every payload byte was consumed.
template <typename Fn>
auto decode_payload(const char* what, const std::vector<std::uint8_t>& payload,
                    Fn fn) {
  SnapshotReader reader(payload);
  try {
    auto value = fn(reader);
    if (!reader.exhausted()) {
      throw ProtocolError(std::string("trailing bytes after ") + what +
                          " payload");
    }
    return value;
  } catch (const CheckpointError& e) {
    throw ProtocolError(std::string("malformed ") + what + " payload: " +
                        e.message());
  }
}

void encode_chaos(SnapshotWriter& w, const arch::ChaosConfig& chaos) {
  w.write_u64(chaos.seed);
  w.write_u64(chaos.min_gap);
  w.write_u64(chaos.max_gap);
  w.write_u32(chaos.crash_weight);
  w.write_u32(chaos.stall_weight);
  w.write_u32(chaos.burst_weight);
  w.write_double(chaos.stall_ns);
  w.write_u64(chaos.burst_length);
}

[[nodiscard]] arch::ChaosConfig decode_chaos(SnapshotReader& r) {
  arch::ChaosConfig chaos;
  chaos.seed = r.read_u64();
  chaos.min_gap = r.read_u64();
  chaos.max_gap = r.read_u64();
  chaos.crash_weight = r.read_u32();
  chaos.stall_weight = r.read_u32();
  chaos.burst_weight = r.read_u32();
  chaos.stall_ns = r.read_double();
  chaos.burst_length = r.read_u64();
  return chaos;
}

}  // namespace

bool is_client_message(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello:
    case MsgType::kOpenSession:
    case MsgType::kSubmitQasm:
    case MsgType::kMeasure:
    case MsgType::kSnapshot:
    case MsgType::kClose:
    case MsgType::kPing:
    case MsgType::kStats:
      return true;
    default:
      return false;
  }
}

const char* type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kWelcome:
      return "welcome";
    case MsgType::kOpenSession:
      return "open_session";
    case MsgType::kSessionOpened:
      return "session_opened";
    case MsgType::kSubmitQasm:
      return "submit_qasm";
    case MsgType::kRunReply:
      return "run_reply";
    case MsgType::kMeasure:
      return "measure";
    case MsgType::kMeasureReply:
      return "measure_reply";
    case MsgType::kSnapshot:
      return "snapshot";
    case MsgType::kSnapshotReply:
      return "snapshot_reply";
    case MsgType::kClose:
      return "close";
    case MsgType::kClosed:
      return "closed";
    case MsgType::kError:
      return "error";
    case MsgType::kPing:
      return "ping";
    case MsgType::kPong:
      return "pong";
    case MsgType::kStats:
      return "stats";
    case MsgType::kStatsReply:
      return "stats_reply";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> body;
  body.reserve(kBodyHeaderSize + frame.payload.size());
  body.push_back(frame.version);
  body.push_back(static_cast<std::uint8_t>(frame.type));
  body.push_back(0);
  body.push_back(0);
  put_u64(body, frame.session);
  put_u32(body, frame.request);
  body.insert(body.end(), frame.payload.begin(), frame.payload.end());

  std::vector<std::uint8_t> out;
  out.reserve(12 + body.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  put_u32(out, journal::crc32(body.data(), body.size()));
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t size) {
  if (!poisoned_.empty()) {
    throw ProtocolError(poisoned_, consumed_);
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void FrameDecoder::poison(const std::string& what) {
  poisoned_ = what;
  throw ProtocolError(what, consumed_);
}

std::optional<Frame> FrameDecoder::next() {
  if (!poisoned_.empty()) {
    throw ProtocolError(poisoned_, consumed_);
  }
  if (buffer_.size() < 8) {
    return std::nullopt;
  }
  const std::uint32_t magic = get_u32(buffer_.data());
  if (magic != kFrameMagic) {
    poison("bad frame magic");
  }
  const std::uint32_t body_len = get_u32(buffer_.data() + 4);
  if (body_len < kBodyHeaderSize) {
    poison("frame body shorter than the fixed header (" +
           std::to_string(body_len) + " bytes)");
  }
  if (body_len > max_frame_bytes_) {
    poison("frame body of " + std::to_string(body_len) +
           " bytes exceeds the " + std::to_string(max_frame_bytes_) +
           "-byte cap");
  }
  const std::size_t total = 8 + static_cast<std::size_t>(body_len) + 4;
  if (buffer_.size() < total) {
    return std::nullopt;
  }

  const std::uint8_t* body = buffer_.data() + 8;
  const std::uint32_t wire_crc = get_u32(body + body_len);
  const std::uint32_t want_crc = journal::crc32(body, body_len);
  // Planted bug 12: the decoder trusts the frame without checking its
  // CRC, so bit-flipped bodies sail through to the payload parsers.
  if (wire_crc != want_crc && !plant::bug(12)) {
    poison("frame CRC mismatch");
  }

  Frame frame;
  frame.version = body[0];
  frame.type = static_cast<MsgType>(body[1]);
  const std::uint16_t reserved =
      static_cast<std::uint16_t>(body[2]) |
      (static_cast<std::uint16_t>(body[3]) << 8);
  frame.session = get_u64(body + 4);
  frame.request = get_u32(body + 12);
  frame.payload.assign(body + kBodyHeaderSize, body + body_len);

  if (frame.version == 0 || frame.version > kProtocolVersion) {
    poison("unsupported protocol version " + std::to_string(frame.version));
  }
  if (reserved != 0) {
    poison("nonzero reserved field");
  }
  if (std::string(type_name(frame.type)) == "?") {
    poison("unknown message type " +
           std::to_string(static_cast<unsigned>(frame.type)));
  }

  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  consumed_ += total;
  return frame;
}

// --- Payload codecs ---------------------------------------------------

std::vector<std::uint8_t> encode_hello(const Hello& m) {
  SnapshotWriter w;
  w.tag("hello");
  w.write_u32(m.min_version);
  w.write_u32(m.max_version);
  w.write_string(m.client_name);
  return w.bytes();
}

Hello decode_hello(const std::vector<std::uint8_t>& payload) {
  return decode_payload("hello", payload, [](SnapshotReader& r) {
    r.expect_tag("hello");
    Hello m;
    m.min_version = r.read_u32();
    m.max_version = r.read_u32();
    m.client_name = r.read_string();
    return m;
  });
}

std::vector<std::uint8_t> encode_welcome(const Welcome& m) {
  SnapshotWriter w;
  w.tag("welcome");
  w.write_u32(m.version);
  w.write_string(m.server_name);
  w.write_u64(m.max_frame_bytes);
  w.write_u64(m.queue_depth);
  return w.bytes();
}

Welcome decode_welcome(const std::vector<std::uint8_t>& payload) {
  return decode_payload("welcome", payload, [](SnapshotReader& r) {
    r.expect_tag("welcome");
    Welcome m;
    m.version = r.read_u32();
    m.server_name = r.read_string();
    m.max_frame_bytes = r.read_u64();
    m.queue_depth = r.read_u64();
    return m;
  });
}

void write_session_config(SnapshotWriter& w, const SessionConfig& m) {
  w.tag("session-config");
  w.write_string(m.name);
  w.write_u64(m.seed);
  w.write_u64(m.qubits);
  w.write_bool(m.pauli_frame);
  w.write_bool(m.supervise);
  w.write_u64(m.max_retries);
  w.write_u64(m.escalate_after);
  encode_chaos(w, m.chaos);
  w.write_bool(m.resume);
}

SessionConfig read_session_config(SnapshotReader& r) {
  r.expect_tag("session-config");
  SessionConfig m;
  m.name = r.read_string();
  m.seed = r.read_u64();
  m.qubits = r.read_u64();
  m.pauli_frame = r.read_bool();
  m.supervise = r.read_bool();
  m.max_retries = r.read_u64();
  m.escalate_after = r.read_u64();
  m.chaos = decode_chaos(r);
  m.resume = r.read_bool();
  return m;
}

std::vector<std::uint8_t> encode_session_config(const SessionConfig& m) {
  SnapshotWriter w;
  write_session_config(w, m);
  return w.bytes();
}

SessionConfig decode_session_config(const std::vector<std::uint8_t>& payload) {
  return decode_payload("open_session", payload, [](SnapshotReader& r) {
    return read_session_config(r);
  });
}

std::vector<std::uint8_t> encode_session_opened(const SessionOpened& m,
                                                std::uint32_t version) {
  SnapshotWriter w;
  w.tag("session-opened");
  w.write_u64(m.session);
  w.write_bool(m.restored);
  if (version >= 2) {
    w.write_u32(m.last_request_id);
  }
  return w.bytes();
}

SessionOpened decode_session_opened(const std::vector<std::uint8_t>& payload) {
  return decode_payload("session_opened", payload, [](SnapshotReader& r) {
    r.expect_tag("session-opened");
    SessionOpened m;
    m.session = r.read_u64();
    m.restored = r.read_bool();
    if (!r.exhausted()) {
      m.last_request_id = r.read_u32();
    }
    return m;
  });
}

std::vector<std::uint8_t> encode_submit_qasm(const std::string& qasm) {
  SnapshotWriter w;
  w.tag("submit-qasm");
  w.write_string(qasm);
  return w.bytes();
}

std::string decode_submit_qasm(const std::vector<std::uint8_t>& payload) {
  return decode_payload("submit_qasm", payload, [](SnapshotReader& r) {
    r.expect_tag("submit-qasm");
    return r.read_string();
  });
}

std::vector<std::uint8_t> encode_run_reply(const RunReply& m) {
  SnapshotWriter w;
  w.tag("run-reply");
  w.write_string(m.bits);
  w.write_u64(m.operations);
  w.write_u8(m.supervisor_state);
  return w.bytes();
}

RunReply decode_run_reply(const std::vector<std::uint8_t>& payload) {
  return decode_payload("run_reply", payload, [](SnapshotReader& r) {
    r.expect_tag("run-reply");
    RunReply m;
    m.bits = r.read_string();
    m.operations = r.read_u64();
    m.supervisor_state = r.read_u8();
    return m;
  });
}

std::vector<std::uint8_t> encode_measure_reply(const std::string& bits) {
  SnapshotWriter w;
  w.tag("measure-reply");
  w.write_string(bits);
  return w.bytes();
}

std::string decode_measure_reply(const std::vector<std::uint8_t>& payload) {
  return decode_payload("measure_reply", payload, [](SnapshotReader& r) {
    r.expect_tag("measure-reply");
    return r.read_string();
  });
}

std::vector<std::uint8_t> encode_snapshot_reply(const SnapshotReply& m) {
  SnapshotWriter w;
  w.tag("snapshot-reply");
  w.write_u64(m.snapshot_bytes);
  w.write_u32(m.snapshot_crc);
  return w.bytes();
}

SnapshotReply decode_snapshot_reply(const std::vector<std::uint8_t>& payload) {
  return decode_payload("snapshot_reply", payload, [](SnapshotReader& r) {
    r.expect_tag("snapshot-reply");
    SnapshotReply m;
    m.snapshot_bytes = r.read_u64();
    m.snapshot_crc = r.read_u32();
    return m;
  });
}

std::vector<std::uint8_t> encode_closed(const Closed& m) {
  SnapshotWriter w;
  w.tag("closed");
  w.write_u64(m.requests_served);
  return w.bytes();
}

Closed decode_closed(const std::vector<std::uint8_t>& payload) {
  return decode_payload("closed", payload, [](SnapshotReader& r) {
    r.expect_tag("closed");
    Closed m;
    m.requests_served = r.read_u64();
    return m;
  });
}

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& m) {
  SnapshotWriter w;
  w.tag("error-reply");
  w.write_string(m.code);
  w.write_string(m.message);
  return w.bytes();
}

ErrorReply decode_error_reply(const std::vector<std::uint8_t>& payload) {
  return decode_payload("error", payload, [](SnapshotReader& r) {
    r.expect_tag("error-reply");
    ErrorReply m;
    m.code = r.read_string();
    m.message = r.read_string();
    return m;
  });
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReply& m) {
  SnapshotWriter w;
  w.tag("stats-reply");
  w.write_u64(m.connections_accepted);
  w.write_u64(m.connections_dropped);
  w.write_u64(m.requests_executed);
  w.write_u64(m.requests_shed);
  w.write_u64(m.sessions_evicted);
  w.write_u64(m.sessions_parked);
  w.write_u64(m.sessions_restored);
  w.write_u64(m.lease_expired);
  w.write_u64(m.duplicate_requests);
  w.write_u64(m.dedup_hits);
  return w.bytes();
}

StatsReply decode_stats_reply(const std::vector<std::uint8_t>& payload) {
  return decode_payload("stats_reply", payload, [](SnapshotReader& r) {
    r.expect_tag("stats-reply");
    StatsReply m;
    m.connections_accepted = r.read_u64();
    m.connections_dropped = r.read_u64();
    m.requests_executed = r.read_u64();
    m.requests_shed = r.read_u64();
    m.sessions_evicted = r.read_u64();
    m.sessions_parked = r.read_u64();
    m.sessions_restored = r.read_u64();
    m.lease_expired = r.read_u64();
    m.duplicate_requests = r.read_u64();
    m.dedup_hits = r.read_u64();
    return m;
  });
}

std::uint64_t session_id_for(const std::string& name) noexcept {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash == 0 ? 1 : hash;  // session id 0 is "no session"
}

}  // namespace qpf::serve

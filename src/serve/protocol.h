// qpf_serve wire protocol: length-prefixed, CRC-framed, versioned
// binary messages (PR 6; DESIGN.md "Serve wire protocol").
//
// Every frame on a connection has the same armor:
//
//   offset 0   u32  magic "QPFW", little-endian          (0x57465051)
//   offset 4   u32  body length B, little-endian         (16 <= B <= cap)
//   offset 8   body:
//                u8   protocol version   (currently 1)
//                u8   message type       (MsgType)
//                u16  reserved           (0)
//                u64  session id         (0 for connection-level messages)
//                u32  request id         (echoed verbatim in the reply)
//                ...  payload            (B - 16 bytes, message-specific)
//   offset 8+B u32  CRC32 of the body, little-endian
//
// The payload of every message is a journal::SnapshotWriter stream —
// the same tagged, typed serialization the checkpoint machinery uses —
// so a truncated or bit-flipped payload fails with a structured error
// instead of being reinterpreted.  Any violation (bad magic, oversized
// frame, CRC mismatch, version skew, unknown type, trailing payload
// bytes) raises qpf::ProtocolError with the stream offset; the server
// answers with a typed `protocol` error reply and drops the connection,
// because a desynchronized stream cannot be trusted again.
//
// Version negotiation: the client opens with kHello carrying the
// [min, max] protocol versions it speaks; the server replies kWelcome
// with the version it chose, or a `version` error reply when the ranges
// do not intersect.  Frames are always *parsed* at the armor level
// regardless of negotiation, so a future version bump keeps the error
// path well-typed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/classical_fault_layer.h"
#include "circuit/error.h"

namespace qpf::journal {
class SnapshotWriter;
class SnapshotReader;
}  // namespace qpf::journal

namespace qpf::serve {

/// Protocol version this build speaks.  Version 2 (PR 9) adds the
/// exactly-once machinery: per-session monotonic request ids with a
/// server-side dedup window, the `last_request_id` field on
/// kSessionOpened, and the kPing/kPong/kStats/kStatsReply messages.
/// Servers still speak version 1 to old clients: replies always echo
/// the request frame's version and v2-only fields are only written on
/// v2 frames, so a v1 byte stream is unchanged.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Oldest protocol version this build still serves.
inline constexpr std::uint32_t kMinProtocolVersion = 1;

/// Frame magic, little-endian "QPFW".
inline constexpr std::uint32_t kFrameMagic = 0x57465051u;

/// Fixed body prefix: version(1) + type(1) + reserved(2) + session(8) +
/// request(4).
inline constexpr std::size_t kBodyHeaderSize = 16;

/// Default per-frame size cap (body bytes).  One frame must never force
/// the server to buffer unbounded memory for one client.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kHello = 0x01,          ///< client -> server: version range + name
  kWelcome = 0x02,        ///< server -> client: chosen version + limits
  kOpenSession = 0x03,    ///< client -> server: SessionConfig
  kSessionOpened = 0x04,  ///< server -> client: session id (+ restored)
  kSubmitQasm = 0x05,     ///< client -> server: run a QASM program
  kRunReply = 0x06,       ///< server -> client: final bits + stack stats
  kMeasure = 0x07,        ///< client -> server: read the register state
  kMeasureReply = 0x08,   ///< server -> client: bits
  kSnapshot = 0x09,       ///< client -> server: checkpoint the session
  kSnapshotReply = 0x0a,  ///< server -> client: snapshot size + CRC
  kClose = 0x0b,          ///< client -> server: retire the session
  kClosed = 0x0c,         ///< server -> client: final request count
  kError = 0x0d,          ///< server -> client: structured error reply
  kPing = 0x0e,           ///< client -> server: heartbeat (v2, empty)
  kPong = 0x0f,           ///< server -> client: heartbeat echo (v2, empty)
  kStats = 0x10,          ///< client -> server: ask for counters (v2, empty)
  kStatsReply = 0x11,     ///< server -> client: StatsReply (v2)
};

/// True for the message types a client may legally send.
[[nodiscard]] bool is_client_message(MsgType type) noexcept;

/// Human-readable message-type name ("?" for unknown values).
[[nodiscard]] const char* type_name(MsgType type) noexcept;

/// One decoded frame.
struct Frame {
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kHello;
  std::uint64_t session = 0;
  std::uint32_t request = 0;
  std::vector<std::uint8_t> payload;
};

/// Encode a frame (armor + body + CRC), ready for the wire.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental frame decoder: feed() connection bytes in any
/// fragmentation, pop complete frames with next().  Throws
/// qpf::ProtocolError (with the cumulative stream offset) on any armor
/// violation; after a throw the stream is poisoned and every further
/// call rethrows — the connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const void* data, std::size_t size);

  /// Next complete frame, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }
  /// Total bytes consumed from the stream so far (error offsets).
  [[nodiscard]] std::size_t consumed() const noexcept { return consumed_; }

 private:
  [[noreturn]] void poison(const std::string& what);

  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::string poisoned_;  ///< non-empty once the stream is unrecoverable
};

// --- Message payloads -------------------------------------------------

struct Hello {
  std::uint32_t min_version = kProtocolVersion;
  std::uint32_t max_version = kProtocolVersion;
  std::string client_name;
};

struct Welcome {
  std::uint32_t version = kProtocolVersion;
  std::string server_name;
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::uint64_t queue_depth = 0;
};

/// Everything a session's control stack is built from.  The same config
/// must be presented to restore an evicted session (mismatch is a typed
/// `checkpoint` error), so the stack is always bit-reproducible from
/// (config, request history).
struct SessionConfig {
  std::string name;             ///< client-chosen; keys eviction snapshots
  std::uint64_t seed = 1;       ///< session RNG seed chain base
  std::uint64_t qubits = 2;     ///< register size
  bool pauli_frame = false;     ///< insert a PauliFrameLayer
  bool supervise = false;       ///< insert a SupervisorLayer
  std::uint64_t max_retries = 3;      ///< supervisor restore+replay budget
  std::uint64_t escalate_after = 3;   ///< supervisor episode budget
  arch::ChaosConfig chaos{};    ///< scripted fault storm (off by default)
  bool resume = false;          ///< restore an evicted session if present
};

struct SessionOpened {
  std::uint64_t session = 0;
  bool restored = false;
  /// Highest request id the session has already executed (v2 frames
  /// only; absent — and decoded as 0 — on version-1 streams).  A
  /// reconnecting RetryClient fast-forwards past it so replayed and
  /// fresh requests never collide.
  std::uint32_t last_request_id = 0;
};

struct RunReply {
  std::string bits;             ///< q_{n-1}..q_0 after the program
  std::uint64_t operations = 0; ///< operations in the submitted program
  std::uint8_t supervisor_state = 0;  ///< arch::SupervisionState
};

struct SnapshotReply {
  std::uint64_t snapshot_bytes = 0;
  std::uint32_t snapshot_crc = 0;
};

struct Closed {
  std::uint64_t requests_served = 0;
};

/// Structured error reply.  `code` is a stable machine-readable token:
///   version | protocol | session-limit | session-busy | unknown-session
///   | overloaded | quota | qasm-parse | stack-config | supervision
///   | checkpoint | draining | evicted | io-degraded | dedup | internal
struct ErrorReply {
  std::string code;
  std::string message;
};

/// Server counter snapshot carried by kStatsReply (v2).  Field order is
/// the wire order; additions append.
struct StatsReply {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dropped = 0;
  std::uint64_t requests_executed = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_parked = 0;
  std::uint64_t sessions_restored = 0;
  std::uint64_t lease_expired = 0;   ///< half-open connections reaped
  std::uint64_t duplicate_requests = 0;  ///< retried ids observed
  std::uint64_t dedup_hits = 0;      ///< replies replayed from the window
};

// Payload codecs.  Decoders throw qpf::ProtocolError on malformed
// payloads (wrapping the snapshot stream's structured failure).
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& m);
[[nodiscard]] Hello decode_hello(const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_welcome(const Welcome& m);
[[nodiscard]] Welcome decode_welcome(const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_session_config(
    const SessionConfig& m);
[[nodiscard]] SessionConfig decode_session_config(
    const std::vector<std::uint8_t>& payload);
// Raw-stream variants, shared with the session eviction snapshots so a
// parked session's config round-trips through the same serializer.
void write_session_config(journal::SnapshotWriter& w, const SessionConfig& m);
[[nodiscard]] SessionConfig read_session_config(journal::SnapshotReader& r);
// The session_opened payload is version-dependent: `last_request_id`
// is appended for version >= 2 only, and the decoder reads it only when
// the stream carries it, so v1 byte streams are bit-for-bit unchanged.
[[nodiscard]] std::vector<std::uint8_t> encode_session_opened(
    const SessionOpened& m, std::uint32_t version = kProtocolVersion);
[[nodiscard]] SessionOpened decode_session_opened(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_submit_qasm(
    const std::string& qasm);
[[nodiscard]] std::string decode_submit_qasm(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_run_reply(const RunReply& m);
[[nodiscard]] RunReply decode_run_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_measure_reply(
    const std::string& bits);
[[nodiscard]] std::string decode_measure_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_reply(
    const SnapshotReply& m);
[[nodiscard]] SnapshotReply decode_snapshot_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_closed(const Closed& m);
[[nodiscard]] Closed decode_closed(const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_error_reply(
    const ErrorReply& m);
[[nodiscard]] ErrorReply decode_error_reply(
    const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(
    const StatsReply& m);
[[nodiscard]] StatsReply decode_stats_reply(
    const std::vector<std::uint8_t>& payload);

/// Deterministic session id: FNV-1a of the session name.  Name-derived
/// ids keep reply streams byte-identical across runs regardless of the
/// order concurrent connections reach the server.
[[nodiscard]] std::uint64_t session_id_for(const std::string& name) noexcept;

}  // namespace qpf::serve

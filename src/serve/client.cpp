#include "serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/file_ops.h"

namespace qpf::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

int connect_with_retry(std::uint16_t port, std::uint64_t seed,
                       std::uint64_t budget_ms) {
  std::uint64_t rng = seed ^ 0xc0eec7ull;
  std::uint64_t backoff_ms = 5;
  std::uint64_t slept_ms = 0;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw IoError("client",
                    "socket() failed: " + std::string(std::strerror(errno)));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (io::ops().connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof addr) == 0) {
      return fd;
    }
    const int error = errno;
    ::close(fd);
    const bool transient = error == ECONNREFUSED || error == ECONNABORTED ||
                           error == ETIMEDOUT;
    if (!transient || slept_ms >= budget_ms) {
      throw IoError("client", "connect() to port " + std::to_string(port) +
                                  " failed: " + std::strerror(error));
    }
    const std::uint64_t jitter = splitmix64(rng) % (backoff_ms + 1);
    const std::uint64_t nap = backoff_ms + jitter;
    std::this_thread::sleep_for(std::chrono::milliseconds(nap));
    slept_ms += nap;
    backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 100);
  }
}

Client::~Client() { disconnect(); }

void Client::connect(std::uint16_t port) {
  disconnect();
  fd_ = connect_with_retry(port);
  decoder_ = FrameDecoder();
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = io::send_retry(fd_, bytes.data() + off,
                                     bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      throw IoError("client",
                    "send() failed: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<Frame> Client::recv() {
  while (true) {
    if (std::optional<Frame> frame = decoder_.next()) {
      return frame;
    }
    char buffer[65536];
    const ssize_t n = io::read_retry(fd_, buffer, sizeof buffer);
    if (n == 0) {
      return std::nullopt;
    }
    if (n < 0) {
      throw IoError("client",
                    "read() failed: " + std::string(std::strerror(errno)));
    }
    transcript_.insert(transcript_.end(), buffer, buffer + n);
    decoder_.feed(buffer, static_cast<std::size_t>(n));
  }
}

Frame Client::transact(const Frame& request) {
  send(request);
  std::optional<Frame> reply = recv();
  if (!reply.has_value()) {
    throw IoError("client", "server closed the connection mid-request");
  }
  if (reply->request != request.request) {
    throw IoError("client",
                  "out-of-order reply: expected request id " +
                      std::to_string(request.request) + ", got " +
                      std::to_string(reply->request));
  }
  return *reply;
}

Client::Result Client::run_request(Frame request) {
  // The plain client is pinned to protocol v1: its byte streams (and so
  // every transcript comparison built on them) are bit-for-bit what
  // they were before v2 existed.  RetryClient speaks v2.
  request.version = 1;
  request.request = next_request_++;
  Result result;
  result.reply = transact(request);
  if (result.reply.type == MsgType::kError) {
    result.error = decode_error_reply(result.reply.payload);
  }
  return result;
}

Client::Result Client::hello(const std::string& client_name) {
  Frame f;
  f.type = MsgType::kHello;
  f.payload = encode_hello(Hello{1, 1, client_name});
  return run_request(std::move(f));
}

Client::Result Client::open_session(const SessionConfig& config) {
  Frame f;
  f.type = MsgType::kOpenSession;
  f.payload = encode_session_config(config);
  return run_request(std::move(f));
}

Client::Result Client::submit_qasm(std::uint64_t session,
                                   const std::string& qasm) {
  Frame f;
  f.type = MsgType::kSubmitQasm;
  f.session = session;
  f.payload = encode_submit_qasm(qasm);
  return run_request(std::move(f));
}

Client::Result Client::measure(std::uint64_t session) {
  Frame f;
  f.type = MsgType::kMeasure;
  f.session = session;
  return run_request(std::move(f));
}

Client::Result Client::snapshot(std::uint64_t session) {
  Frame f;
  f.type = MsgType::kSnapshot;
  f.session = session;
  return run_request(std::move(f));
}

Client::Result Client::close_session(std::uint64_t session) {
  Frame f;
  f.type = MsgType::kClose;
  f.session = session;
  return run_request(std::move(f));
}

}  // namespace qpf::serve

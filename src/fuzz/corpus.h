// Reproducer corpus: shrunk failing circuits as self-describing QASM.
//
// A reproducer is the circuit an oracle consumed plus the metadata
// needed to re-run that oracle exactly: the oracle name and the case
// seed (all of an oracle's internal draws derive from the seed, so
// (oracle, seed, circuit) replays bit-identically).  Files are the
// repo's QASM dialect with a structured comment header:
//
//   # qpf-fuzz reproducer v1
//   # oracle: metamorphic
//   # case-seed: 1234567890123456789
//   # detail: <one-line description of the original failure>
//   qubits 3
//   h q0
//   ...
//
// Shrunk reproducers from planted-bug runs are committed under
// tests/corpus/ and replayed by test_corpus_replay as regression cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace qpf::fuzz {

struct Reproducer {
  std::string oracle;
  std::uint64_t case_seed = 0;
  std::string detail;  ///< original failure description (informational)
  Circuit circuit;
};

/// Render a reproducer (header comments + QASM body).
[[nodiscard]] std::string to_text(const Reproducer& reproducer);

/// Parse a reproducer file.  Throws qpf::Error on a missing/malformed
/// header and QasmParseError on a bad circuit body.
[[nodiscard]] Reproducer parse_reproducer(const std::string& text);

/// Load and parse a reproducer from disk; throws qpf::Error on I/O
/// failure.
[[nodiscard]] Reproducer load_reproducer(const std::string& path);

/// Write a reproducer file (plain write; corpus files are not
/// crash-critical).  Throws qpf::Error on I/O failure.
void save_reproducer(const std::string& path, const Reproducer& reproducer);

/// Deterministic corpus file name: "<oracle>-<seed hex>.qasm".
[[nodiscard]] std::string corpus_file_name(const Reproducer& reproducer);

/// All *.qasm files directly inside a directory, sorted by name.
[[nodiscard]] std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace qpf::fuzz

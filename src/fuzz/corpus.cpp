#include "fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuit/error.h"
#include "circuit/qasm.h"

namespace qpf::fuzz {

namespace {

constexpr const char* kHeaderMagic = "# qpf-fuzz reproducer v1";

/// Value of a "# key: value" header line, or empty.
std::string header_value(const std::string& line, const std::string& key) {
  const std::string prefix = "# " + key + ": ";
  if (line.rfind(prefix, 0) == 0) {
    return line.substr(prefix.size());
  }
  return {};
}

}  // namespace

std::string to_text(const Reproducer& reproducer) {
  std::ostringstream out;
  out << kHeaderMagic << "\n";
  out << "# oracle: " << reproducer.oracle << "\n";
  out << "# case-seed: " << reproducer.case_seed << "\n";
  if (!reproducer.detail.empty()) {
    std::string one_line = reproducer.detail;
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    out << "# detail: " << one_line << "\n";
  }
  out << to_qasm(reproducer.circuit);
  return out.str();
}

Reproducer parse_reproducer(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeaderMagic) {
    throw Error("corpus: missing '# qpf-fuzz reproducer v1' header");
  }
  Reproducer rep;
  bool have_seed = false;
  std::ostringstream body;
  while (std::getline(in, line)) {
    if (std::string v = header_value(line, "oracle"); !v.empty()) {
      rep.oracle = v;
      continue;
    }
    if (std::string v = header_value(line, "case-seed"); !v.empty()) {
      rep.case_seed = std::stoull(v);
      have_seed = true;
      continue;
    }
    if (std::string v = header_value(line, "detail"); !v.empty()) {
      rep.detail = v;
      continue;
    }
    body << line << "\n";
  }
  if (rep.oracle.empty() || !have_seed) {
    throw Error("corpus: reproducer header lacks oracle or case-seed");
  }
  rep.circuit = from_qasm(body.str());
  return rep;
}

Reproducer load_reproducer(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("corpus: cannot open reproducer: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_reproducer(text.str());
}

void save_reproducer(const std::string& path, const Reproducer& reproducer) {
  std::ofstream out(path);
  if (!out) {
    throw Error("corpus: cannot write reproducer: " + path);
  }
  out << to_text(reproducer);
  if (!out) {
    throw Error("corpus: short write on reproducer: " + path);
  }
}

std::string corpus_file_name(const Reproducer& reproducer) {
  std::ostringstream name;
  name << reproducer.oracle << "-" << std::hex << reproducer.case_seed
       << ".qasm";
  return name.str();
}

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".qasm") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace qpf::fuzz

#include "fuzz/shrinker.h"

#include <algorithm>
#include <map>
#include <vector>

namespace qpf::fuzz {

namespace {

Circuit without_slots(const Circuit& circuit, std::size_t lo, std::size_t hi) {
  Circuit out;
  const auto& slots = circuit.slots();
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (s < lo || s >= hi) {
      out.append_slot(slots[s]);
    }
  }
  return out;
}

Circuit without_op(const Circuit& circuit, std::size_t slot_index,
                   std::size_t op_index) {
  Circuit out;
  const auto& slots = circuit.slots();
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (s != slot_index) {
      out.append_slot(slots[s]);
      continue;
    }
    TimeSlot slot;
    const auto& ops = slots[s].operations();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i != op_index) {
        slot.add(ops[i]);
      }
    }
    out.append_slot(std::move(slot));  // empty slots are dropped
  }
  return out;
}

/// Remap the used qubits onto a dense prefix 0..k-1 (order-preserving).
Circuit compacted(const Circuit& circuit) {
  std::map<Qubit, Qubit> remap;
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      for (int i = 0; i < op.arity(); ++i) {
        remap.emplace(op.qubit(i), 0);
      }
    }
  }
  Qubit next = 0;
  for (auto& [from, to] : remap) {
    to = next++;
  }
  Circuit out;
  for (const TimeSlot& slot : circuit) {
    TimeSlot mapped;
    for (const Operation& op : slot) {
      mapped.add(op.arity() == 1
                     ? Operation{op.gate(), remap.at(op.qubit(0))}
                     : Operation{op.gate(), remap.at(op.qubit(0)),
                                 remap.at(op.qubit(1))});
    }
    out.append_slot(std::move(mapped));
  }
  return out;
}

}  // namespace

ShrinkResult shrink_circuit(
    const Circuit& failing,
    const std::function<bool(const Circuit&)>& still_fails,
    std::size_t max_evaluations) {
  ShrinkResult result;
  result.circuit = failing;

  const auto try_candidate = [&](const Circuit& candidate) {
    if (result.evaluations >= max_evaluations) {
      return false;
    }
    ++result.evaluations;
    if (still_fails(candidate)) {
      result.circuit = candidate;
      return true;
    }
    return false;
  };

  // Pass 1: slot-level ddmin.
  std::size_t chunk = std::max<std::size_t>(1, result.circuit.num_slots() / 2);
  while (chunk >= 1 && result.evaluations < max_evaluations) {
    bool reduced = false;
    for (std::size_t lo = 0; lo < result.circuit.num_slots();) {
      const std::size_t hi =
          std::min(lo + chunk, result.circuit.num_slots());
      if (hi - lo < result.circuit.num_slots() &&
          try_candidate(without_slots(result.circuit, lo, hi))) {
        reduced = true;  // slots shifted down; retry the same offset
      } else {
        lo = hi;
      }
      if (result.evaluations >= max_evaluations) {
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) {
        break;
      }
      chunk /= 2;
    }
  }

  // Pass 2: individual gate pruning until a fixpoint.
  bool pruned = true;
  while (pruned && result.evaluations < max_evaluations) {
    pruned = false;
    for (std::size_t s = 0; s < result.circuit.num_slots() && !pruned; ++s) {
      const std::size_t ops = result.circuit.slots()[s].size();
      for (std::size_t i = 0; i < ops; ++i) {
        if (result.circuit.num_operations() <= 1) {
          break;
        }
        if (try_candidate(without_op(result.circuit, s, i))) {
          pruned = true;  // indices shifted; restart the scan
          break;
        }
        if (result.evaluations >= max_evaluations) {
          break;
        }
      }
    }
  }

  // Pass 3: dense qubit renumbering (may change the register size the
  // oracle derives, so it must still fail to be accepted).
  const Circuit dense = compacted(result.circuit);
  if (!(dense == result.circuit)) {
    try_candidate(dense);
  }
  return result;
}

}  // namespace qpf::fuzz

// Delta-debugging circuit shrinker.
//
// Given a failing circuit and a deterministic "still fails?" predicate,
// reduce the witness with three passes inside a bounded evaluation
// budget:
//   1. slot ddmin   — drop contiguous runs of time slots, halving the
//                     chunk size (classic delta debugging),
//   2. gate pruning — drop individual operations until a fixpoint,
//   3. qubit compaction — remap the surviving qubits to a dense prefix.
// Every accepted candidate still fails, so the result is always a valid
// (smaller or equal) reproducer.  The predicate must be pure: oracles
// re-derive all their randomness from a fixed seed per evaluation.
#pragma once

#include <cstddef>
#include <functional>

#include "circuit/circuit.h"

namespace qpf::fuzz {

struct ShrinkResult {
  Circuit circuit;          ///< smallest circuit found that still fails
  std::size_t evaluations = 0;
};

/// Shrink `failing` under `still_fails` within `max_evaluations` calls.
/// `failing` itself is assumed to fail and is returned unchanged when
/// nothing smaller reproduces.
[[nodiscard]] ShrinkResult shrink_circuit(
    const Circuit& failing,
    const std::function<bool(const Circuit&)>& still_fails,
    std::size_t max_evaluations = 400);

}  // namespace qpf::fuzz

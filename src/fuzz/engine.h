// The differential fuzzing engine: seed chain, oracle scheduling,
// shrinking, and the deterministic JSON triage report.
//
// A run is a pure function of its FuzzOptions: case seeds come from a
// splitmix64 chain over the master seed, every oracle derives its draws
// from derive_seed(case_seed, oracle name), and the triage report
// contains no timing or host data — so the same options produce a
// byte-identical report, and any failure line is replayable from
// (oracle, case_seed) alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"

namespace qpf::fuzz {

/// JSON triage schema identifier (tools/check_bench.sh validates it).
inline constexpr const char* kTriageSchema = "qpf-fuzz-triage-v1";

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t cases = 25;
  /// Oracle names to run; empty = every registered oracle.
  std::vector<std::string> oracles;
  /// Skip the state-vector-backed oracles (semantics, mirror-qx).
  bool with_qx = true;
  /// Skip the supervised chaos-convergence oracle.
  bool with_chaos = true;
  /// Shrink failing circuits before reporting.
  bool shrink = true;
  std::size_t max_shrink_evaluations = 400;
  /// Stop the run after this many failures (0 = never stop early).
  std::size_t max_failures = 8;
  /// Worker threads for the --cases fan-out (0 = auto).  The report is
  /// byte-identical for every value: cases fan out over the shared
  /// deterministic executor, results commit in case order, and the
  /// max_failures cutoff is applied at commit exactly as the
  /// sequential engine applies it.  Oracles marked `exclusive` (they
  /// swap process-global fault backends) run on the committing thread
  /// only.
  std::size_t jobs = 1;
  GeneratorOptions generator{};
  OracleTuning tuning{};
};

/// One triaged failure.
struct FuzzFailure {
  std::string oracle;
  std::size_t case_index = 0;
  std::uint64_t case_seed = 0;
  std::string detail;
  std::size_t original_gates = 0;
  std::size_t shrunk_gates = 0;
  std::size_t shrink_evaluations = 0;
  /// Reproducer text (empty for seed-only oracles with no circuit).
  std::string reproducer;
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::size_t cases = 0;
  std::size_t oracle_runs = 0;
  std::size_t passes = 0;
  std::size_t skips = 0;
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool pass() const noexcept { return failures.empty(); }
};

/// Execute a fuzz run.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

/// Deterministic JSON rendering of a report (sorted keys, no times).
[[nodiscard]] std::string to_json(const FuzzReport& report);

/// Replay a corpus reproducer through its recorded oracle.  Throws
/// qpf::Error for an unknown oracle name.
[[nodiscard]] OracleOutcome replay_reproducer(const Reproducer& reproducer,
                                              const OracleTuning& tuning);

/// The circuit of `fc` that an oracle of the given kind consumes.
[[nodiscard]] const Circuit& circuit_for(const FuzzCase& fc, CircuitKind kind);

}  // namespace qpf::fuzz

// The oracle set of the differential fuzzing engine.
//
// Each oracle is a pure, seed-deterministic property check.  Most
// consume a circuit produced by the generator (and are therefore
// shrinkable: any sub-circuit that still fails is a smaller witness);
// two are self-contained sweeps driven only by the seed.
//
//   conjugation — Tables 3.3–3.5 gate-by-gate: PauliFrame's record
//                 updates vs the stabilizer tableau's conjugation of
//                 the X/Z generators (phases ignored; records are
//                 phase-free).  Exhaustive over gates × records.
//   arbiter     — Fig 3.12 routing invariants on an unconstrained ISA
//                 stream: Paulis never reach the PEL, Cliffords pass
//                 through verbatim, non-Cliffords are preceded by
//                 exactly the pending record's flush and leave clean
//                 records, resets clear records.
//   semantics   — the frame identity R1 ∘ C' = C ∘ R0 checked as state
//                 equality (up to global phase) on the dense simulator,
//                 for circuits including T (flush paths).
//   mirror      — self-checking mirror programs (U U† [prep] measure):
//                 every corrected outcome must be 0, for chp/qx cores
//                 with the frame on and off.
//   sampling    — frame-on vs frame-off outcome statistics on circuits
//                 with mid-circuit measurement, fixed seed chain.
//   backend-diff— chp vs qx outcome statistics, frame off: the only
//                 oracle sensitive to mis-signed tableau rows (sign
//                 errors pair-cancel through mirrors and hit both
//                 sides of chp-vs-chp comparisons).
//   metamorphic — injecting a Pauli into the frame *and* onto the
//                 hardware mid-program leaves corrected outcomes
//                 invariant (physical = record × ideal).
//   snapshot    — save/restore at a random cut is bit-exact: identical
//                 downstream outcomes and identical re-snapshot bytes.
//   chaos       — a supervised stack under a scripted crash schedule
//                 either converges to the fault-free transcript,
//                 degrades visibly, or raises a typed SupervisionError.
//   lut-window  — NinjaStar::decode_window vs an independent reference
//                 decoder, window by window, on random syndrome
//                 streams (correction sets and carried rounds).
//   serve-codec — qpf_serve wire-protocol armor: frames round-trip
//                 bit-exactly through arbitrary fragmentation, and no
//                 single-bit corruption or truncation is ever decoded
//                 into a different frame without a ProtocolError.
//   io-fault    — checkpoint crash-consistency under a seeded FaultFs
//                 schedule: a counting pass proves durability-protocol
//                 conformance (every rename is followed by a parent-dir
//                 fsync — planted bug 13 drops it), then a sticky
//                 fail-at-op-k sweep over every durable op must yield
//                 either success with the new bytes or a typed
//                 CheckpointError with a complete old/new checkpoint on
//                 disk — never a torn mix, never a foreign exception.
//   net-fault   — exactly-once recovery under a FaultNet schedule: an
//                 in-process qpf_serve conversation (submit the program
//                 twice, close) through a RetryClient must produce a
//                 transcript byte-identical to the fault-free reference
//                 when a reply read is reset mid-stream (the resent id
//                 must replay from the dedup window — planted bug 14
//                 re-executes instead), when a submit frame is garbled
//                 on the wire (the CRC armor must reject it — planted
//                 bug 12 accepts the damage), and under seeded short
//                 sends.
//   executor-determinism — the shared work-stealing executor's commit
//                 contract: a run_ordered() transcript (committed
//                 index/value pairs) must equal the seed-chain
//                 prediction at any chunk size, even when the oracle
//                 deterministically forces task 0 to *finish last*
//                 (planted bug 15 commits in arrival order and fails
//                 exactly that schedule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace qpf::fuzz {

/// Verdict of one oracle application.
struct OracleOutcome {
  bool passed = true;
  bool skipped = false;   ///< not applicable (e.g. too many qubits for qx)
  std::string detail;     ///< human-readable failure description

  static OracleOutcome pass() { return {}; }
  static OracleOutcome skip(std::string why) {
    return OracleOutcome{true, true, std::move(why)};
  }
  static OracleOutcome fail(std::string why) {
    return OracleOutcome{false, false, std::move(why)};
  }
};

/// Per-oracle knobs shared by the engine, the CLI, and corpus replay.
/// The shots/tolerance pair is sized so a clean soak stays clean: with
/// independent 256-shot samples the frequency-gap standard deviation
/// is at most ~0.044, putting the 0.4 tolerance at ~9 sigma.
struct OracleTuning {
  std::size_t shots = 256;         ///< sampling oracle shot count
  double frequency_tolerance = 0.4;///< sampling per-qubit frequency gap
  std::size_t max_sv_qubits = 8;   ///< dense-simulator ceiling
  std::size_t chaos_segments = 3;  ///< circuit segments in the chaos run
  std::size_t lut_windows = 8;     ///< decode windows per lut-window run
};

/// Which generated circuit an oracle consumes.
enum class CircuitKind : std::uint8_t {
  kNone,      ///< seed-driven sweep, no circuit input
  kUnitary,   ///< FuzzCase::unitary
  kUnitaryT,  ///< FuzzCase::unitary_t
  kMeasured,  ///< FuzzCase::measured
  kStream,    ///< FuzzCase::stream
};

// --- The oracles ------------------------------------------------------
// Circuit-consuming oracles take (circuit, seed, tuning); `seed` drives
// every internal draw, so (circuit, seed) fully reproduces a failure.

[[nodiscard]] OracleOutcome check_conjugation_tables();
[[nodiscard]] OracleOutcome check_arbiter_stream(const Circuit& stream,
                                                 std::uint64_t seed,
                                                 const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_frame_semantics(const Circuit& unitary,
                                                  std::uint64_t seed,
                                                  const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_mirror_chp(const Circuit& body,
                                             std::uint64_t seed,
                                             const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_mirror_qx(const Circuit& body,
                                            std::uint64_t seed,
                                            const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_sampling(const Circuit& measured,
                                           std::uint64_t seed,
                                           const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_backend_diff(const Circuit& unitary,
                                               std::uint64_t seed,
                                               const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_metamorphic_injection(
    const Circuit& body, std::uint64_t seed, const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_snapshot_roundtrip(
    const Circuit& body, std::uint64_t seed, const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_chaos_convergence(
    const Circuit& measured, std::uint64_t seed, const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_lut_window(std::uint64_t seed,
                                             const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_serve_codec(const Circuit& stream,
                                              std::uint64_t seed,
                                              const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_io_fault(const Circuit& body,
                                           std::uint64_t seed,
                                           const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_net_fault(const Circuit& body,
                                            std::uint64_t seed,
                                            const OracleTuning& tuning);
[[nodiscard]] OracleOutcome check_executor_determinism(std::uint64_t seed);

// --- Registry ---------------------------------------------------------

struct OracleSpec {
  const char* name;
  CircuitKind kind;
  /// Run the oracle on its consumed circuit (ignored for kNone).
  OracleOutcome (*run)(const Circuit&, std::uint64_t, const OracleTuning&);
  /// Run once per engine invocation instead of once per case.
  bool once_per_run = false;
  /// Touches process-global state (fault-injection backends, chdir-like
  /// ambient fixtures).  The parallel engine runs exclusive oracles on
  /// the commit thread only, never concurrently with anything.
  bool exclusive = false;
};

/// All registered oracles, in deterministic execution order.
[[nodiscard]] const std::vector<OracleSpec>& all_oracles();

/// Look up a spec by name; nullptr if unknown.
[[nodiscard]] const OracleSpec* find_oracle(const std::string& name);

}  // namespace qpf::fuzz

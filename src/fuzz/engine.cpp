#include "fuzz/engine.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "circuit/error.h"
#include "exec/executor.h"
#include "fuzz/seeds.h"
#include "fuzz/shrinker.h"

namespace qpf::fuzz {

namespace {

/// Empty circuit handed to seed-only oracles.
const Circuit& empty_circuit() {
  static const Circuit kEmpty;
  return kEmpty;
}

bool oracle_enabled(const FuzzOptions& opt, const OracleSpec& spec) {
  if (!opt.oracles.empty()) {
    return std::find(opt.oracles.begin(), opt.oracles.end(),
                     std::string(spec.name)) != opt.oracles.end();
  }
  const std::string name = spec.name;
  if (!opt.with_qx &&
      (name == "semantics" || name == "mirror-qx" || name == "backend-diff")) {
    return false;
  }
  if (!opt.with_chaos && name == "chaos") {
    return false;
  }
  return true;
}

/// JSON string escaping (the report embeds QASM with newlines).
void append_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
        break;
    }
  }
  out << '"';
}

/// Verdict of one oracle application, with the failure fully prepared
/// (shrunk, reproducer rendered) when it failed.  Building the failure
/// next to the oracle run keeps shrinking inside the worker on the
/// parallel path — shrinking is deterministic, so the committed report
/// stays byte-identical to the sequential engine's.
struct OracleRecord {
  const OracleSpec* spec = nullptr;
  /// Exclusive oracle: not run yet; the committing thread runs it.
  bool deferred = false;
  OracleOutcome outcome;
  std::optional<FuzzFailure> failure;
};

OracleRecord apply_oracle(const OracleSpec& spec, const FuzzCase& fc,
                          std::uint64_t case_seed, std::size_t case_index,
                          const FuzzOptions& options) {
  OracleRecord record;
  record.spec = &spec;
  const std::uint64_t oracle_seed =
      derive_seed(case_seed, label_hash(spec.name));
  const Circuit& consumed = circuit_for(fc, spec.kind);
  record.outcome = spec.run(consumed, oracle_seed, options.tuning);
  if (record.outcome.skipped || record.outcome.passed) {
    return record;
  }

  FuzzFailure failure;
  failure.oracle = spec.name;
  failure.case_index = case_index;
  failure.case_seed = case_seed;
  failure.detail = record.outcome.detail;
  failure.original_gates = consumed.num_operations();

  if (spec.kind != CircuitKind::kNone) {
    Circuit witness = consumed;
    if (options.shrink) {
      const auto still_fails = [&](const Circuit& candidate) {
        const OracleOutcome o = spec.run(candidate, oracle_seed, options.tuning);
        return !o.skipped && !o.passed;
      };
      const ShrinkResult shrunk =
          shrink_circuit(consumed, still_fails, options.max_shrink_evaluations);
      witness = shrunk.circuit;
      failure.shrink_evaluations = shrunk.evaluations;
    }
    failure.shrunk_gates = witness.num_operations();
    Reproducer rep;
    rep.oracle = spec.name;
    rep.case_seed = case_seed;
    rep.detail = record.outcome.detail;
    rep.circuit = witness;
    failure.reproducer = to_text(rep);
  }
  record.failure = std::move(failure);
  return record;
}

/// Everything one case's worker hands to the committing thread.  The
/// generated case rides along because deferred (exclusive) oracles run
/// at commit and still need their consumed circuit.
struct CaseRecord {
  std::uint64_t case_seed = 0;
  FuzzCase fc;
  std::vector<OracleRecord> records;
};

/// Fold one oracle record into the report in commit order.  Returns
/// false when the max_failures cutoff fired — the caller must stop
/// committing anything further, exactly like the sequential engine's
/// mid-case return.
bool commit_record(OracleRecord&& record, FuzzReport& report,
                   const FuzzOptions& options) {
  ++report.oracle_runs;
  if (record.outcome.skipped) {
    ++report.skips;
    return true;
  }
  if (record.outcome.passed) {
    ++report.passes;
    return true;
  }
  report.failures.push_back(std::move(*record.failure));
  return options.max_failures == 0 ||
         report.failures.size() < options.max_failures;
}

FuzzReport run_fuzz_parallel(const FuzzOptions& options, std::size_t jobs) {
  FuzzReport report;
  report.seed = options.seed;
  report.cases = options.cases;

  exec::Executor pool(jobs);
  exec::RunOptions run_options;
  run_options.seed = options.seed;

  const auto task = [&options](const exec::TaskContext& ctx) {
    exec::TaskResult<CaseRecord> result;
    CaseRecord& rec = result.value;
    const std::size_t index = ctx.index();
    rec.case_seed = derive_seed(options.seed, index);
    rec.fc = generate_case(rec.case_seed, options.generator);
    for (const OracleSpec& spec : all_oracles()) {
      if (!oracle_enabled(options, spec)) {
        continue;
      }
      if (spec.once_per_run && index != 0) {
        continue;
      }
      if (spec.exclusive) {
        // Process-global fault backends: only the committing thread
        // may run these, one at a time, in commit order.
        OracleRecord deferred;
        deferred.spec = &spec;
        deferred.deferred = true;
        rec.records.push_back(std::move(deferred));
        continue;
      }
      rec.records.push_back(
          apply_oracle(spec, rec.fc, rec.case_seed, index, options));
    }
    return result;
  };

  const auto commit = [&options, &report](std::size_t index,
                                          CaseRecord&& rec) {
    for (OracleRecord& record : rec.records) {
      if (record.deferred) {
        record =
            apply_oracle(*record.spec, rec.fc, rec.case_seed, index, options);
      }
      if (!commit_record(std::move(record), report, options)) {
        return false;  // cutoff: discard every later case, like sequential
      }
    }
    return true;
  };

  pool.run_ordered<CaseRecord>(options.cases, run_options, task, commit);
  return report;
}

}  // namespace

const Circuit& circuit_for(const FuzzCase& fc, CircuitKind kind) {
  switch (kind) {
    case CircuitKind::kUnitary:
      return fc.unitary;
    case CircuitKind::kUnitaryT:
      return fc.unitary_t;
    case CircuitKind::kMeasured:
      return fc.measured;
    case CircuitKind::kStream:
      return fc.stream;
    case CircuitKind::kNone:
      break;
  }
  return empty_circuit();
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  const std::size_t jobs = std::min(exec::resolve_jobs(options.jobs),
                                    std::max<std::size_t>(options.cases, 1));
  if (jobs > 1) {
    return run_fuzz_parallel(options, jobs);
  }

  FuzzReport report;
  report.seed = options.seed;
  report.cases = options.cases;

  for (std::size_t index = 0; index < options.cases; ++index) {
    const std::uint64_t case_seed = derive_seed(options.seed, index);
    const FuzzCase fc = generate_case(case_seed, options.generator);

    for (const OracleSpec& spec : all_oracles()) {
      if (!oracle_enabled(options, spec)) {
        continue;
      }
      if (spec.once_per_run && index != 0) {
        continue;
      }
      if (!commit_record(apply_oracle(spec, fc, case_seed, index, options),
                         report, options)) {
        return report;
      }
    }
  }
  return report;
}

std::string to_json(const FuzzReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << kTriageSchema << "\",\n";
  out << "  \"seed\": " << report.seed << ",\n";
  out << "  \"cases\": " << report.cases << ",\n";
  out << "  \"oracle_runs\": " << report.oracle_runs << ",\n";
  out << "  \"passes\": " << report.passes << ",\n";
  out << "  \"skips\": " << report.skips << ",\n";
  out << "  \"failures\": [";
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const FuzzFailure& f = report.failures[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"oracle\": ";
    append_json_string(out, f.oracle);
    out << ",\n";
    out << "      \"case_index\": " << f.case_index << ",\n";
    out << "      \"case_seed\": " << f.case_seed << ",\n";
    out << "      \"detail\": ";
    append_json_string(out, f.detail);
    out << ",\n";
    out << "      \"original_gates\": " << f.original_gates << ",\n";
    out << "      \"shrunk_gates\": " << f.shrunk_gates << ",\n";
    out << "      \"shrink_evaluations\": " << f.shrink_evaluations << ",\n";
    out << "      \"reproducer\": ";
    append_json_string(out, f.reproducer);
    out << "\n    }";
  }
  out << (report.failures.empty() ? "]" : "\n  ]") << ",\n";
  out << "  \"verdict\": \"" << (report.pass() ? "PASS" : "FAIL") << "\"\n";
  out << "}\n";
  return out.str();
}

OracleOutcome replay_reproducer(const Reproducer& reproducer,
                                const OracleTuning& tuning) {
  const OracleSpec* spec = find_oracle(reproducer.oracle);
  if (spec == nullptr) {
    throw Error("replay: unknown oracle '" + reproducer.oracle + "'");
  }
  const std::uint64_t oracle_seed =
      derive_seed(reproducer.case_seed, label_hash(spec->name));
  return spec->run(reproducer.circuit, oracle_seed, tuning);
}

}  // namespace qpf::fuzz

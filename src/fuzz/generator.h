// Constrained random program generation for the differential fuzzer.
//
// One FuzzCase bundles the circuit shapes the oracle set consumes, all
// derived deterministically from a single case seed:
//   unitary   — Pauli + Clifford gates only, no prep/measure/T.  Runs on
//               the stabilizer backend; mirror / metamorphic / snapshot
//               oracles build their own protocols around it.
//   unitary_t — like unitary plus occasional T / T† (forces frame
//               flushes).  Runs on the state-vector backend only.
//   measured  — Pauli + Clifford with interleaved prep / measurement and
//               a final measure-everything slot, so the binary state
//               after execution is fully known.
//   stream    — unconstrained ISA stream (all gate categories including
//               non-Clifford), consumed by the arbiter routing oracle,
//               which never executes it on a simulator.
//
// Slots are packed randomly but always honor the TimeSlot invariant
// (no qubit twice per slot), exercising the frame's slot bookkeeping.
#pragma once

#include <cstdint>

#include "circuit/circuit.h"
#include "fuzz/seeds.h"

namespace qpf::fuzz {

struct GeneratorOptions {
  std::size_t min_qubits = 2;
  std::size_t max_qubits = 6;
  std::size_t min_slots = 3;
  std::size_t max_slots = 12;
  /// Probability a qubit participates in a given slot.
  double fill = 0.6;
  /// Among participating qubits: chance the op drawn is a Pauli.
  double pauli_fraction = 0.4;
  /// Chance a remaining pair gets a two-qubit gate.
  double two_qubit_fraction = 0.35;
  /// Chance of T / T† where non-Clifford gates are allowed.
  double t_fraction = 0.1;
  /// Chance of prep / measure where mid-circuit non-unitaries are allowed.
  double prep_fraction = 0.06;
  double measure_fraction = 0.08;
};

/// Everything the oracle set needs for one fuzz case.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::size_t num_qubits = 0;
  Circuit unitary;    ///< Pauli + Clifford, unitary only
  Circuit unitary_t;  ///< unitary plus T / T†
  Circuit measured;   ///< with prep / measure, ends in measure-all
  Circuit stream;     ///< unconstrained ISA stream (arbiter oracle)
};

/// Deterministically expand a case seed into a FuzzCase.
[[nodiscard]] FuzzCase generate_case(std::uint64_t case_seed,
                                     const GeneratorOptions& options);

/// The slot-reversed, gate-inverted circuit (unitary inputs only; throws
/// std::invalid_argument on prep / measure).
[[nodiscard]] Circuit inverse_of(const Circuit& circuit);

/// Mirror protocol around a unitary body: body, then its inverse, then a
/// seed-derived prep layer on a subset of qubits, then measure-all.
/// Every corrected outcome of the result is deterministically zero, so
/// the mirror circuit is a self-checking program for any backend/frame
/// configuration.  The prep subset depends only on (seed, qubit index),
/// so it is stable while a shrinker drops slots from the body.
[[nodiscard]] Circuit mirror_circuit(const Circuit& body, std::size_t num_qubits,
                                     std::uint64_t seed);

/// Number of qubits a circuit needs, floored at `at_least`.
[[nodiscard]] std::size_t register_size(const Circuit& circuit,
                                        std::size_t at_least = 1);

}  // namespace qpf::fuzz

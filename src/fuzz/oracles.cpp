#include "fuzz/oracles.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "arch/chp_core.h"
#include "arch/classical_fault_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/qx_core.h"
#include "arch/supervisor_layer.h"
#include "circuit/error.h"
#include "core/arbiter.h"
#include "exec/executor.h"
#include "core/pauli_frame.h"
#include "fuzz/generator.h"
#include "fuzz/seeds.h"
#include "circuit/qasm.h"
#include "io/fault_fs.h"
#include "io/fault_net.h"
#include "journal/snapshot.h"
#include "qec/ninja_star.h"
#include "qec/sc17.h"
#include "serve/protocol.h"
#include "serve/retry_client.h"
#include "serve/server.h"
#include "stabilizer/tableau.h"
#include "statevector/simulator.h"

namespace qpf::fuzz {

namespace {

using arch::BinaryState;
using arch::BinaryValue;
using pf::PauliRecord;

std::string render(const BinaryState& state) {
  std::string out;
  out.reserve(state.size());
  for (const BinaryValue v : state) {
    out.push_back(arch::to_char(v));
  }
  return out;
}

/// Slots [lo, hi) of a circuit, preserving slot structure.
Circuit slice(const Circuit& circuit, std::size_t lo, std::size_t hi) {
  Circuit out;
  const auto& slots = circuit.slots();
  for (std::size_t s = lo; s < hi && s < slots.size(); ++s) {
    out.append_slot(slots[s]);
  }
  return out;
}

/// Record applied as explicit gates (X before Z, ascending qubits).
void apply_records(sv::Simulator& sim, const std::vector<PauliRecord>& recs) {
  for (std::size_t q = 0; q < recs.size(); ++q) {
    if (pf::has_x(recs[q])) {
      sim.execute(Operation{GateType::kX, static_cast<Qubit>(q)});
    }
    if (pf::has_z(recs[q])) {
      sim.execute(Operation{GateType::kZ, static_cast<Qubit>(q)});
    }
  }
}

/// Small seed-derived Clifford scrambler so semantic checks run on a
/// generic stabilizer state instead of |0...0>.
Circuit scramble_circuit(std::size_t n, std::uint64_t seed) {
  SplitMix rng(seed);
  Circuit out;
  for (std::size_t q = 0; q < n; ++q) {
    switch (rng.below(3)) {
      case 0:
        out.append(GateType::kH, static_cast<Qubit>(q));
        break;
      case 1:
        out.append(GateType::kS, static_cast<Qubit>(q));
        out.append(GateType::kH, static_cast<Qubit>(q));
        break;
      default:
        break;
    }
  }
  for (std::size_t q = 0; q + 1 < n; ++q) {
    if (rng.chance(0.5)) {
      out.append(GateType::kCnot, static_cast<Qubit>(q),
                 static_cast<Qubit>(q + 1));
    }
  }
  return out;
}

/// Conjugated image of a record through a gate, read off a tableau: the
/// destabilizer rows carry U X_i U† and the stabilizer rows U Z_i U†
/// (signs dropped — records are phase-free by construction).
template <std::size_t N>
std::array<PauliRecord, N> conjugate_via_tableau(
    const stab::Tableau& after, const std::array<PauliRecord, N>& records) {
  std::array<bool, N> x_acc{};
  std::array<bool, N> z_acc{};
  for (std::size_t q = 0; q < N; ++q) {
    if (pf::has_x(records[q])) {
      const stab::PauliString image = after.destabilizer(q);
      for (std::size_t t = 0; t < N; ++t) {
        x_acc[t] = x_acc[t] != image.x_bit(t);
        z_acc[t] = z_acc[t] != image.z_bit(t);
      }
    }
    if (pf::has_z(records[q])) {
      const stab::PauliString image = after.stabilizer(q);
      for (std::size_t t = 0; t < N; ++t) {
        x_acc[t] = x_acc[t] != image.x_bit(t);
        z_acc[t] = z_acc[t] != image.z_bit(t);
      }
    }
  }
  std::array<PauliRecord, N> out{};
  for (std::size_t t = 0; t < N; ++t) {
    out[t] = pf::make_record(x_acc[t], z_acc[t]);
  }
  return out;
}

}  // namespace

// --- conjugation ------------------------------------------------------

OracleOutcome check_conjugation_tables() {
  // Table 3.3: Pauli tracking is componentwise XOR.
  for (const GateType p :
       {GateType::kI, GateType::kX, GateType::kY, GateType::kZ}) {
    for (const PauliRecord r : pf::kAllRecords) {
      pf::PauliFrame frame(1);
      frame.set_record(0, r);
      frame.track(p, 0);
      const bool px = p == GateType::kX || p == GateType::kY;
      const bool pz = p == GateType::kZ || p == GateType::kY;
      const PauliRecord expected =
          pf::make_record(pf::has_x(r) != px, pf::has_z(r) != pz);
      if (frame.record(0) != expected) {
        std::ostringstream why;
        why << "track(" << name(p) << ") on " << pf::name(r) << ": got "
            << pf::name(frame.record(0)) << ", table says "
            << pf::name(expected);
        return OracleOutcome::fail(why.str());
      }
    }
  }
  // Table 3.2: the X component flips a Z-basis result.
  for (const PauliRecord r : pf::kAllRecords) {
    pf::PauliFrame frame(1);
    frame.set_record(0, r);
    for (const bool raw : {false, true}) {
      if (frame.correct_measurement(0, raw) != (raw != pf::has_x(r))) {
        std::ostringstream why;
        why << "measurement map on " << pf::name(r) << " raw=" << raw
            << " disagrees with Table 3.2";
        return OracleOutcome::fail(why.str());
      }
    }
  }
  // Table 3.4: single-qubit Clifford conjugation vs the tableau rows.
  for (const GateType g : {GateType::kH, GateType::kS, GateType::kSdag}) {
    stab::Tableau tab(1);
    tab.apply_unitary(Operation{g, 0});
    for (const PauliRecord r : pf::kAllRecords) {
      pf::PauliFrame frame(1);
      frame.set_record(0, r);
      frame.apply_clifford(Operation{g, 0});
      const auto expected = conjugate_via_tableau<1>(tab, {r});
      if (frame.record(0) != expected[0]) {
        std::ostringstream why;
        why << name(g) << " conjugation of " << pf::name(r) << ": frame says "
            << pf::name(frame.record(0)) << ", tableau says "
            << pf::name(expected[0]);
        return OracleOutcome::fail(why.str());
      }
    }
  }
  // Table 3.5 (+ CZ / SWAP analogues), both operand orders.
  for (const GateType g : {GateType::kCnot, GateType::kCz, GateType::kSwap}) {
    for (const bool reversed : {false, true}) {
      const Qubit a = reversed ? 1 : 0;
      const Qubit b = reversed ? 0 : 1;
      stab::Tableau tab(2);
      tab.apply_unitary(Operation{g, a, b});
      for (const PauliRecord r0 : pf::kAllRecords) {
        for (const PauliRecord r1 : pf::kAllRecords) {
          pf::PauliFrame frame(2);
          frame.set_record(0, r0);
          frame.set_record(1, r1);
          frame.apply_clifford(Operation{g, a, b});
          const auto expected = conjugate_via_tableau<2>(tab, {r0, r1});
          for (Qubit q = 0; q < 2; ++q) {
            if (frame.record(q) != expected[q]) {
              std::ostringstream why;
              why << name(g) << " q" << a << ",q" << b << " on ("
                  << pf::name(r0) << "," << pf::name(r1) << "): record q" << q
                  << " is " << pf::name(frame.record(q)) << ", tableau says "
                  << pf::name(expected[q]);
              return OracleOutcome::fail(why.str());
            }
          }
        }
      }
    }
  }
  return OracleOutcome::pass();
}

// --- arbiter ----------------------------------------------------------

OracleOutcome check_arbiter_stream(const Circuit& stream, std::uint64_t seed,
                                   const OracleTuning& tuning) {
  (void)seed;
  (void)tuning;
  const std::size_t n = register_size(stream, 2);
  pf::PauliFrameUnit pfu(n);
  std::size_t sunk = 0;
  pf::PauliArbiter arbiter(pfu, [&sunk](const Operation&) { ++sunk; }, true);

  std::size_t index = 0;
  for (const TimeSlot& slot : stream) {
    for (const Operation& op : slot) {
      std::vector<PauliRecord> pre;
      for (int i = 0; i < op.arity(); ++i) {
        pre.push_back(pfu.frame().record(op.qubit(i)));
      }
      const pf::Route route = arbiter.submit(op);
      const pf::TraceEntry& entry = arbiter.trace().back();
      std::ostringstream why;
      why << "op #" << index << " (" << op.str() << "): ";
      switch (category(op.gate())) {
        case GateCategory::kPauli:
          if (route != pf::Route::kPauliToPfu || !entry.forwarded.empty()) {
            why << "Pauli must be absorbed by the PFU, but "
                << entry.forwarded.size() << " op(s) reached the PEL via route "
                << name(route);
            return OracleOutcome::fail(why.str());
          }
          break;
        case GateCategory::kClifford:
          if (route != pf::Route::kCliffordBoth ||
              entry.forwarded != std::vector<Operation>{op}) {
            why << "Clifford must forward verbatim (route " << name(route)
                << ", " << entry.forwarded.size() << " forwarded)";
            return OracleOutcome::fail(why.str());
          }
          break;
        case GateCategory::kInitialization:
          if (route != pf::Route::kResetBoth ||
              entry.forwarded != std::vector<Operation>{op} ||
              pfu.frame().record(op.qubit(0)) != PauliRecord::kI) {
            why << "reset must forward and clear the record (record now "
                << pf::name(pfu.frame().record(op.qubit(0))) << ")";
            return OracleOutcome::fail(why.str());
          }
          break;
        case GateCategory::kMeasurement:
          if (route != pf::Route::kMeasureToPel ||
              entry.forwarded != std::vector<Operation>{op}) {
            why << "measurement must forward unmodified";
            return OracleOutcome::fail(why.str());
          }
          break;
        case GateCategory::kNonClifford: {
          // Expected PEL stream: per operand, the pending record's flush
          // (X before Z), then the gate itself; records left clean.
          std::vector<Operation> expected;
          for (int i = 0; i < op.arity(); ++i) {
            if (pf::has_x(pre[i])) {
              expected.emplace_back(GateType::kX, op.qubit(i));
            }
            if (pf::has_z(pre[i])) {
              expected.emplace_back(GateType::kZ, op.qubit(i));
            }
          }
          expected.push_back(op);
          bool clean = true;
          for (int i = 0; i < op.arity(); ++i) {
            clean = clean && pfu.frame().record(op.qubit(i)) == PauliRecord::kI;
          }
          if (route != pf::Route::kFlushThenPel || entry.forwarded != expected ||
              !clean) {
            why << "non-Clifford flush ordering broken: expected "
                << expected.size() << " forwarded op(s), saw "
                << entry.forwarded.size() << " via route " << name(route)
                << (clean ? "" : ", record not cleared");
            return OracleOutcome::fail(why.str());
          }
          break;
        }
      }
      ++index;
    }
  }
  // PEL sink integrity: the sink saw exactly what the trace recorded.
  std::size_t traced = 0;
  for (const pf::TraceEntry& entry : arbiter.trace()) {
    traced += entry.forwarded.size();
  }
  if (traced != sunk) {
    std::ostringstream why;
    why << "PEL sink saw " << sunk << " op(s) but the trace recorded "
        << traced;
    return OracleOutcome::fail(why.str());
  }
  return OracleOutcome::pass();
}

// --- semantics --------------------------------------------------------

OracleOutcome check_frame_semantics(const Circuit& unitary, std::uint64_t seed,
                                    const OracleTuning& tuning) {
  const std::size_t n = register_size(unitary, 2);
  if (n > tuning.max_sv_qubits) {
    return OracleOutcome::skip("register too large for the dense simulator");
  }
  SplitMix rng(derive_seed(seed, label_hash("records")));
  std::vector<PauliRecord> r0(n);
  for (std::size_t q = 0; q < n; ++q) {
    r0[q] = static_cast<PauliRecord>(rng.below(4));
  }
  const Circuit scramble =
      scramble_circuit(n, derive_seed(seed, label_hash("scramble")));

  pf::PauliFrame frame(n);
  for (std::size_t q = 0; q < n; ++q) {
    frame.set_record(static_cast<Qubit>(q), r0[q]);
  }
  const Circuit processed = frame.process(unitary);
  std::vector<PauliRecord> r1(n);
  for (std::size_t q = 0; q < n; ++q) {
    r1[q] = frame.record(static_cast<Qubit>(q));
  }

  // Path A: C ∘ R0 on a scrambled state; path B: R1 ∘ C'.
  sv::Simulator a(n, 1);
  a.execute(scramble);
  apply_records(a, r0);
  a.execute(unitary);

  sv::Simulator b(n, 1);
  b.execute(scramble);
  b.execute(processed);
  apply_records(b, r1);

  if (!a.state().equals_up_to_global_phase(b.state(), 1e-6)) {
    std::ostringstream why;
    why << "frame identity R1∘C' = C∘R0 violated on " << n
        << " qubits (fidelity " << a.state().fidelity(b.state()) << ")";
    return OracleOutcome::fail(why.str());
  }
  return OracleOutcome::pass();
}

// --- mirror -----------------------------------------------------------

namespace {

OracleOutcome run_mirror(const Circuit& body, std::uint64_t seed,
                         bool use_qx, const OracleTuning& tuning) {
  const std::size_t n = register_size(body, 2);
  if (use_qx && n > tuning.max_sv_qubits) {
    return OracleOutcome::skip("register too large for the dense simulator");
  }
  const Circuit full =
      mirror_circuit(body, n, derive_seed(seed, label_hash("mirror")));
  for (const bool frame_on : {false, true}) {
    const std::uint64_t core_seed =
        derive_seed(seed, label_hash(frame_on ? "core-on" : "core-off"));
    arch::ChpCore chp(core_seed);
    arch::QxCore qx(core_seed);
    arch::Core& core =
        use_qx ? static_cast<arch::Core&>(qx) : static_cast<arch::Core&>(chp);
    arch::PauliFrameLayer layer(&core);
    arch::Core& top =
        frame_on ? static_cast<arch::Core&>(layer) : core;
    top.create_qubits(n);
    top.add(full);
    top.execute();
    const BinaryState state = top.get_state();
    for (std::size_t q = 0; q < state.size(); ++q) {
      if (state[q] != BinaryValue::kZero) {
        std::ostringstream why;
        why << "mirror outcome must be all-zero but qubit " << q << " read '"
            << arch::to_char(state[q]) << "' (" << (use_qx ? "qx" : "chp")
            << ", frame " << (frame_on ? "on" : "off") << ", state "
            << render(state) << ")";
        return OracleOutcome::fail(why.str());
      }
    }
  }
  return OracleOutcome::pass();
}

}  // namespace

OracleOutcome check_mirror_chp(const Circuit& body, std::uint64_t seed,
                               const OracleTuning& tuning) {
  return run_mirror(body, seed, false, tuning);
}

OracleOutcome check_mirror_qx(const Circuit& body, std::uint64_t seed,
                              const OracleTuning& tuning) {
  return run_mirror(body, seed, true, tuning);
}

// --- sampling ---------------------------------------------------------

OracleOutcome check_sampling(const Circuit& measured, std::uint64_t seed,
                             const OracleTuning& tuning) {
  const std::size_t n = register_size(measured, 2);
  // Independent per-shot seed streams for the two configurations.
  // Sharing one stream looks harmless but can make the runs perfectly
  // anti-correlated (the frame absorbs Paulis, so the two cores draw
  // the same random bits for physically different states), doubling
  // the variance of the frequency gap and turning the tolerance into
  // a ~3-sigma test that a long clean soak is guaranteed to trip.
  const std::uint64_t off_stream = derive_seed(seed, label_hash("frame-off"));
  const std::uint64_t on_stream = derive_seed(seed, label_hash("frame-on"));
  std::vector<std::size_t> ones_off(n, 0);
  std::vector<std::size_t> ones_on(n, 0);
  for (std::size_t shot = 0; shot < tuning.shots; ++shot) {
    arch::ChpCore off(derive_seed(off_stream, shot));
    off.create_qubits(n);
    arch::run(off, measured);
    const BinaryState so = off.get_state();

    arch::ChpCore core(derive_seed(on_stream, shot));
    arch::PauliFrameLayer layer(&core);
    layer.create_qubits(n);
    arch::run(layer, measured);
    const BinaryState sf = layer.get_state();

    for (std::size_t q = 0; q < n; ++q) {
      if (so[q] == BinaryValue::kUnknown || sf[q] == BinaryValue::kUnknown) {
        // Not every qubit is measured (the shrinker may have dropped a
        // measure slot): there is no statistic to compare.  Skipping —
        // instead of failing — keeps degenerate circuits out of the
        // shrinker's witness set.
        std::ostringstream why;
        why << "qubit " << q << " is never measured; no statistic";
        return OracleOutcome::skip(why.str());
      }
      ones_off[q] += so[q] == BinaryValue::kOne ? 1 : 0;
      ones_on[q] += sf[q] == BinaryValue::kOne ? 1 : 0;
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    const double fo =
        static_cast<double>(ones_off[q]) / static_cast<double>(tuning.shots);
    const double ff =
        static_cast<double>(ones_on[q]) / static_cast<double>(tuning.shots);
    const double gap = fo > ff ? fo - ff : ff - fo;
    if (gap > tuning.frequency_tolerance) {
      std::ostringstream why;
      why << "frame on/off outcome frequencies diverge on qubit " << q << ": "
          << fo << " (off) vs " << ff << " (on) over " << tuning.shots
          << " shots";
      return OracleOutcome::fail(why.str());
    }
  }
  return OracleOutcome::pass();
}

// --- backend-diff -----------------------------------------------------

OracleOutcome check_backend_diff(const Circuit& unitary, std::uint64_t seed,
                                 const OracleTuning& tuning) {
  const std::size_t n = register_size(unitary, 2);
  if (n > tuning.max_sv_qubits) {
    std::ostringstream why;
    why << n << " qubits exceeds the dense-simulator ceiling";
    return OracleOutcome::skip(why.str());
  }
  // Stage 1 — stabilizer eigenstate check.  Run the pure-Clifford
  // unitary on a raw tableau and on the dense simulator, then verify
  // every stabilizer row *including its sign*: (±P)|ψ⟩ must equal |ψ⟩
  // exactly.  This is the only check sensitive to a mis-signed tableau
  // row: sign errors from self-inverse gates cancel in pairs through
  // any mirror, chp-vs-chp comparisons plant the same bug on both
  // sides, and a mid-circuit random-outcome collapse re-derives the
  // collapsed row's sign from the outcome, silently absorbing the
  // error — hence the unitary circuit, not the measured one.
  {
    stab::Tableau tab(n);
    sv::Simulator sim(n, 1);
    for (const TimeSlot& slot : unitary.slots()) {
      for (const Operation& op : slot) {
        tab.apply_unitary(op);
        sim.apply_unitary(op);
      }
    }
    const auto& psi = sim.state().amplitudes();
    for (std::size_t i = 0; i < n; ++i) {
      const stab::PauliString row = tab.stabilizer(i);
      sv::Simulator scratch(n, 1);
      scratch.mutable_state() = sim.state();
      for (std::size_t q = 0; q < n; ++q) {
        switch (row.pauli(q)) {
          case stab::Pauli::kX:
            scratch.apply_unitary(Operation{GateType::kX,
                                            static_cast<Qubit>(q)});
            break;
          case stab::Pauli::kY:
            scratch.apply_unitary(Operation{GateType::kY,
                                            static_cast<Qubit>(q)});
            break;
          case stab::Pauli::kZ:
            scratch.apply_unitary(Operation{GateType::kZ,
                                            static_cast<Qubit>(q)});
            break;
          case stab::Pauli::kI:
            break;
        }
      }
      const auto& img = scratch.state().amplitudes();
      const double sign = row.sign() > 0 ? 1.0 : -1.0;
      double err = 0.0;
      for (std::size_t k = 0; k < psi.size(); ++k) {
        err = std::max(err, std::abs(sign * img[k] - psi[k]));
      }
      if (err > 1e-6) {
        std::ostringstream why;
        why << "tableau claims stabilizer " << row.str()
            << " but the dense state is not a +1 eigenstate (max amplitude "
               "error "
            << err << ")";
        return OracleOutcome::fail(why.str());
      }
    }
  }
  // Stage 2 — frame off on both backends, unitary + measure-all: the
  // CHP tableau and the state vector must agree on every deterministic
  // outcome (individual random outcomes differ shot to shot, so
  // compare per-qubit frequencies).
  Circuit program = unitary;
  TimeSlot readout;
  for (std::size_t q = 0; q < n; ++q) {
    readout.add(Operation{GateType::kMeasureZ, static_cast<Qubit>(q)});
  }
  program.append_slot(std::move(readout));

  std::vector<std::size_t> ones_chp(n, 0);
  std::vector<std::size_t> ones_qx(n, 0);
  // Independent per-shot streams per backend (see check_sampling for
  // why sharing one stream inflates the gap variance).
  const std::uint64_t chp_stream = derive_seed(seed, label_hash("chp"));
  const std::uint64_t qx_stream = derive_seed(seed, label_hash("qx"));
  for (std::size_t shot = 0; shot < tuning.shots; ++shot) {
    arch::ChpCore chp(derive_seed(chp_stream, shot));
    chp.create_qubits(n);
    arch::run(chp, program);
    const BinaryState sc = chp.get_state();

    arch::QxCore qx(derive_seed(qx_stream, shot));
    qx.create_qubits(n);
    arch::run(qx, program);
    const BinaryState sq = qx.get_state();

    for (std::size_t q = 0; q < n; ++q) {
      if (sc[q] == BinaryValue::kUnknown || sq[q] == BinaryValue::kUnknown) {
        std::ostringstream why;
        why << "qubit " << q << " is never measured; no statistic";
        return OracleOutcome::skip(why.str());
      }
      ones_chp[q] += sc[q] == BinaryValue::kOne ? 1 : 0;
      ones_qx[q] += sq[q] == BinaryValue::kOne ? 1 : 0;
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    const double fc =
        static_cast<double>(ones_chp[q]) / static_cast<double>(tuning.shots);
    const double fq =
        static_cast<double>(ones_qx[q]) / static_cast<double>(tuning.shots);
    const double gap = fc > fq ? fc - fq : fq - fc;
    if (gap > tuning.frequency_tolerance) {
      std::ostringstream why;
      why << "chp/qx outcome frequencies diverge on qubit " << q << ": " << fc
          << " (chp) vs " << fq << " (qx) over " << tuning.shots << " shots";
      return OracleOutcome::fail(why.str());
    }
  }
  return OracleOutcome::pass();
}

// --- metamorphic ------------------------------------------------------

OracleOutcome check_metamorphic_injection(const Circuit& body,
                                          std::uint64_t seed,
                                          const OracleTuning& tuning) {
  (void)tuning;
  const std::size_t n = register_size(body, 2);
  Circuit full = body;
  full.append_circuit(inverse_of(body));
  const std::size_t unitary_slots = full.num_slots();
  TimeSlot measures;
  for (std::size_t q = 0; q < n; ++q) {
    measures.add(Operation{GateType::kMeasureZ, static_cast<Qubit>(q)});
  }
  full.append_slot(std::move(measures));

  SplitMix rng(derive_seed(seed, label_hash("inject")));
  const std::size_t cut = rng.below(unitary_slots + 1);
  const Qubit target = static_cast<Qubit>(rng.below(n));
  constexpr GateType kInjectable[] = {GateType::kX, GateType::kY,
                                      GateType::kZ};
  const GateType pauli = kInjectable[rng.below(3)];

  arch::ChpCore core(derive_seed(seed, label_hash("core")));
  arch::PauliFrameLayer layer(&core);
  layer.create_qubits(n);
  layer.add(slice(full, 0, cut));
  // The metamorphic move: apply P to the hardware *and* track P in the
  // frame.  physical = record × ideal is preserved, so every corrected
  // outcome must be unchanged — and mirror outcomes are all-zero.
  layer.frame().track(pauli, target);
  Circuit injection;
  injection.append(pauli, target);
  core.add(injection);
  layer.add(slice(full, cut, full.num_slots()));
  layer.execute();

  const BinaryState state = layer.get_state();
  for (std::size_t q = 0; q < state.size(); ++q) {
    if (state[q] != BinaryValue::kZero) {
      std::ostringstream why;
      why << "injecting " << name(pauli) << " on q" << target
          << " before slot " << cut
          << " changed corrected outcomes: qubit " << q << " read '"
          << arch::to_char(state[q]) << "' (state " << render(state) << ")";
      return OracleOutcome::fail(why.str());
    }
  }
  return OracleOutcome::pass();
}

// --- snapshot ---------------------------------------------------------

OracleOutcome check_snapshot_roundtrip(const Circuit& body, std::uint64_t seed,
                                       const OracleTuning& tuning) {
  (void)tuning;
  const std::size_t n = register_size(body, 2);
  const Circuit full =
      mirror_circuit(body, n, derive_seed(seed, label_hash("mirror")));
  if (full.num_slots() < 2) {
    return OracleOutcome::skip("circuit too short for a snapshot cut");
  }
  SplitMix rng(derive_seed(seed, label_hash("cut")));
  const std::size_t cut = 1 + rng.below(full.num_slots() - 1);

  // Rotate the stack flavour: bare core, then each record protection.
  constexpr pf::Protection kModes[] = {pf::Protection::kNone,
                                       pf::Protection::kParity,
                                       pf::Protection::kVote};
  const std::uint64_t variant = rng.below(4);

  arch::ChpCore core(derive_seed(seed, label_hash("core")));
  std::optional<arch::PauliFrameLayer> layer;
  arch::Core* top = &core;
  if (variant > 0) {
    layer.emplace(&core, kModes[variant - 1]);
    top = &*layer;
  }
  top->create_qubits(n);
  top->add(slice(full, 0, cut));
  top->execute();

  journal::SnapshotWriter at_cut;
  top->save_state(at_cut);

  const Circuit suffix = slice(full, cut, full.num_slots());
  top->add(suffix);
  top->execute();
  const BinaryState state_a = top->get_state();
  journal::SnapshotWriter final_a;
  top->save_state(final_a);

  journal::SnapshotReader reader(at_cut.bytes());
  top->load_state(reader);
  top->add(suffix);
  top->execute();
  const BinaryState state_b = top->get_state();
  journal::SnapshotWriter final_b;
  top->save_state(final_b);

  if (state_a != state_b) {
    std::ostringstream why;
    why << "restored run diverged: " << render(state_a) << " vs "
        << render(state_b) << " (cut at slot " << cut << ", variant "
        << variant << ")";
    return OracleOutcome::fail(why.str());
  }
  if (final_a.bytes() != final_b.bytes()) {
    std::ostringstream why;
    why << "final snapshots differ after a bit-exact restore (cut at slot "
        << cut << ", variant " << variant << ", " << final_a.bytes().size()
        << " vs " << final_b.bytes().size() << " bytes)";
    return OracleOutcome::fail(why.str());
  }
  return OracleOutcome::pass();
}

// --- chaos ------------------------------------------------------------

OracleOutcome check_chaos_convergence(const Circuit& measured,
                                      std::uint64_t seed,
                                      const OracleTuning& tuning) {
  const std::size_t n = register_size(measured, 2);
  const std::uint64_t core_seed = derive_seed(seed, label_hash("core"));

  const std::size_t segments =
      std::max<std::size_t>(1, std::min(tuning.chaos_segments,
                                        measured.num_slots()));
  const std::size_t stride =
      (measured.num_slots() + segments - 1) / segments;

  // Fault-free reference transcript.
  arch::ChpCore ref_core(core_seed);
  arch::PauliFrameLayer ref_frame(&ref_core);
  ref_frame.create_qubits(n);
  for (std::size_t s = 0; s < measured.num_slots(); s += stride) {
    ref_frame.add(slice(measured, s, s + stride));
    ref_frame.execute();
  }
  const BinaryState reference = ref_frame.get_state();

  // Supervised run under a scripted crash schedule.
  arch::ChaosConfig chaos;
  chaos.seed = derive_seed(seed, label_hash("chaos"));
  chaos.min_gap = 2;
  chaos.max_gap = 6;
  chaos.crash_weight = 1;

  arch::SupervisorOptions options;
  options.max_retries = 8;
  options.escalate_after = 3;
  options.rearm_after = 1;
  options.seed = derive_seed(seed, label_hash("backoff"));

  arch::ChpCore core(core_seed);
  arch::ClassicalFaultLayer faults(&core, arch::ClassicalFaultRates{},
                                   derive_seed(seed, label_hash("fault-rng")),
                                   chaos);
  arch::PauliFrameLayer frame(&faults);
  arch::SupervisorLayer supervisor(&frame, options);
  supervisor.set_frame(&frame);

  try {
    supervisor.create_qubits(n);
    for (std::size_t s = 0; s < measured.num_slots(); s += stride) {
      supervisor.add(slice(measured, s, s + stride));
      supervisor.execute();
    }
  } catch (const SupervisionError&) {
    // Typed escalation is an accepted terminal outcome.
    return OracleOutcome::pass();
  }
  if (supervisor.stats().episodes > 0) {
    // Degraded mode legitimately abandons work; the transcript is no
    // longer comparable to the fault-free run.
    return OracleOutcome::pass();
  }
  const BinaryState recovered = supervisor.get_state();
  if (recovered != reference) {
    std::ostringstream why;
    why << "recovered transcript diverged from the fault-free run: "
        << render(recovered) << " vs " << render(reference) << " after "
        << supervisor.stats().recoveries << " recovery(ies), "
        << supervisor.stats().faults_seen << " fault(s)";
    return OracleOutcome::fail(why.str());
  }
  return OracleOutcome::pass();
}

// --- lut-window -------------------------------------------------------

OracleOutcome check_lut_window(std::uint64_t seed,
                               const OracleTuning& tuning) {
  using qec::CheckType;
  using qec::Sc17Layout;
  using qec::Syndrome;

  Sc17Layout layout;
  qec::NinjaStar star(0, &layout);
  SplitMix rng(derive_seed(seed, label_hash("syndromes")));

  Syndrome carried = static_cast<Syndrome>(rng.below(256));
  star.set_carried_syndrome(carried);

  const auto extract = [](Syndrome s, const std::array<int, 4>& anc) {
    unsigned out = 0;
    for (unsigned bit = 0; bit < 4; ++bit) {
      if ((s & (1u << anc[bit])) != 0) {
        out |= 1u << bit;
      }
    }
    return out;
  };

  for (std::size_t w = 0; w < tuning.lut_windows; ++w) {
    if (rng.chance(0.25)) {
      star.on_logical_h();  // rotate: the check groups swap roles
    }
    const Syndrome r1 = static_cast<Syndrome>(rng.below(256));
    const Syndrome r2 = static_cast<Syndrome>(rng.below(256));

    // Independent reference decode: same carried round, fresh logic.
    Syndrome expected_carry = r2;
    std::map<Qubit, unsigned> expected;  // qubit -> x|z correction mask
    for (const CheckType basis : {CheckType::kZ, CheckType::kX}) {
      const std::array<int, 4> anc = star.group_ancillas(basis);
      const qec::LutDecoder& lut = star.lut(basis);
      const unsigned s0 = extract(carried, anc);
      const unsigned s1 = extract(r1, anc);
      const unsigned s2 = extract(r2, anc);
      if (s1 != s2) {
        continue;  // the two fresh rounds disagree: defer one round
      }
      const unsigned voted = qec::majority_syndrome(s0, s1, s2);
      const std::vector<int>& data = lut.decode(voted);
      const unsigned mask = basis == CheckType::kZ ? 1u : 2u;  // X : Z fix
      for (const int d : data) {
        expected[Sc17Layout::data_qubit(0, d)] |= mask;
      }
      const unsigned sig = lut.signature(data);
      for (unsigned bit = 0; bit < 4; ++bit) {
        if ((sig & (1u << bit)) != 0) {
          expected_carry = static_cast<Syndrome>(
              expected_carry ^ (1u << anc[bit]));
        }
      }
    }

    const std::vector<Operation> got = star.decode_window(r1, r2);
    std::map<Qubit, unsigned> actual;
    for (const Operation& op : got) {
      const unsigned mask = op.gate() == GateType::kX   ? 1u
                            : op.gate() == GateType::kZ ? 2u
                                                        : 3u;  // Y = X and Z
      actual[op.qubit(0)] |= mask;
    }
    if (actual != expected || star.carried_syndrome() != expected_carry) {
      std::ostringstream why;
      why << "window " << w << " (carried=" << static_cast<unsigned>(carried)
          << " r1=" << static_cast<unsigned>(r1)
          << " r2=" << static_cast<unsigned>(r2) << "): decoder emitted "
          << got.size() << " correction(s) with carry "
          << static_cast<unsigned>(star.carried_syndrome())
          << ", reference expects " << expected.size() << " with carry "
          << static_cast<unsigned>(expected_carry);
      return OracleOutcome::fail(why.str());
    }
    carried = expected_carry;
  }
  return OracleOutcome::pass();
}

// --- serve-codec ------------------------------------------------------
//
// The qpf_serve wire armor must satisfy two properties no matter how a
// frame is cut up or damaged in flight:
//   1. round trip — encode → feed in seed-driven fragments → decode is
//      the identity, and the carried QASM survives bit-exactly;
//   2. no silent acceptance — a corrupted or truncated byte stream may
//      stall (incomplete frame) or raise ProtocolError, but must never
//      yield a frame that differs from what was sent.
// The corruption sweep walks every bit of the body header (where a
// CRC-skipping decoder would accept silently-wrong session/request
// ids) plus seed-driven flips across the whole frame, and a truncation
// sweep over seed-driven prefixes.

OracleOutcome check_serve_codec(const Circuit& stream, std::uint64_t seed,
                                const OracleTuning&) {
  namespace srv = qpf::serve;
  SplitMix draw(derive_seed(seed, label_hash("serve-codec")));

  srv::Frame original;
  original.type = srv::MsgType::kSubmitQasm;
  original.session = draw.next() | 1;
  original.request = static_cast<std::uint32_t>(draw.next());
  original.payload = srv::encode_submit_qasm(to_qasm(stream));
  const std::vector<std::uint8_t> wire = srv::encode_frame(original);

  const auto same = [](const srv::Frame& a, const srv::Frame& b) {
    return a.version == b.version && a.type == b.type &&
           a.session == b.session && a.request == b.request &&
           a.payload == b.payload;
  };

  // 1. Round trip under random fragmentation (twice, so a frame
  // following a frame also parses).
  try {
    srv::FrameDecoder decoder;
    for (int pass = 0; pass < 2; ++pass) {
      std::size_t off = 0;
      while (off < wire.size()) {
        const std::size_t chunk = std::min<std::size_t>(
            1 + draw.below(13), wire.size() - off);
        decoder.feed(wire.data() + off, chunk);
        off += chunk;
      }
      const std::optional<srv::Frame> got = decoder.next();
      if (!got.has_value()) {
        return OracleOutcome::fail(
            "decoder stalled on a complete, well-formed frame");
      }
      if (!same(*got, original)) {
        return OracleOutcome::fail("frame round trip is not the identity");
      }
      if (srv::decode_submit_qasm(got->payload) != to_qasm(stream)) {
        return OracleOutcome::fail("submit_qasm payload round trip mangled "
                                   "the program text");
      }
    }
  } catch (const ProtocolError& e) {
    return OracleOutcome::fail(std::string("clean frame rejected: ") +
                               e.what());
  }

  // 2. Single-bit corruption: every bit of the armor + body header
  // (offsets 0..23 cover magic, length, version, type, reserved,
  // session, request), plus seed-driven flips anywhere in the frame.
  std::vector<std::size_t> corrupt_bits;
  for (std::size_t byte = 0; byte < std::min<std::size_t>(24, wire.size());
       ++byte) {
    for (std::size_t bit = 0; bit < 8; ++bit) {
      corrupt_bits.push_back(byte * 8 + bit);
    }
  }
  for (int extra = 0; extra < 64; ++extra) {
    corrupt_bits.push_back(draw.below(wire.size() * 8));
  }
  for (const std::size_t target : corrupt_bits) {
    std::vector<std::uint8_t> damaged = wire;
    damaged[target / 8] ^= static_cast<std::uint8_t>(1u << (target % 8));
    srv::FrameDecoder decoder;
    try {
      decoder.feed(damaged.data(), damaged.size());
      while (const std::optional<srv::Frame> got = decoder.next()) {
        if (!same(*got, original)) {
          return OracleOutcome::fail(
              "decoder accepted a corrupted frame (bit " +
              std::to_string(target) + " flipped) without a ProtocolError");
        }
      }
    } catch (const ProtocolError&) {
      // Expected: the armor caught the damage.
    }
  }

  // 3. Truncation: a prefix must stall or error, never decode.
  for (int cut = 0; cut < 16; ++cut) {
    const std::size_t keep = draw.below(wire.size());
    srv::FrameDecoder decoder;
    try {
      decoder.feed(wire.data(), keep);
      if (decoder.next().has_value()) {
        return OracleOutcome::fail(
            "decoder produced a frame from a " + std::to_string(keep) +
            "-byte prefix of a " + std::to_string(wire.size()) +
            "-byte frame");
      }
    } catch (const ProtocolError&) {
      // Acceptable: truncation surfaced as a typed violation.
    }
  }
  return OracleOutcome::pass();
}

// --- io-fault ---------------------------------------------------------

namespace {

/// Durable ops parsed back from a FaultFs counting log.
struct LoggedOp {
  std::string kind;
  std::string path;
};

std::vector<LoggedOp> parse_op_log(const std::string& log_path) {
  std::vector<LoggedOp> ops;
  std::string contents;
  {
    std::FILE* f = std::fopen(log_path.c_str(), "rb");
    if (f == nullptr) {
      return ops;
    }
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(f);
  }
  std::istringstream lines(contents);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string ordinal;
    LoggedOp op;
    fields >> ordinal >> op.kind;
    std::getline(fields, op.path);
    if (!op.path.empty() && op.path.front() == ' ') {
      op.path.erase(0, 1);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

OracleOutcome check_io_fault(const Circuit& body, std::uint64_t seed,
                             const OracleTuning& tuning) {
  (void)tuning;
  // Two distinct, deterministic payloads derived from the generated
  // circuit: the checkpoint on disk ("old") and the overwrite ("new").
  const std::size_t n = register_size(body, 2);
  arch::ChpCore core(derive_seed(seed, label_hash("core")));
  core.create_qubits(n);
  core.add(body);
  core.execute();
  journal::SnapshotWriter old_state;
  core.save_state(old_state);
  core.add(body);
  core.execute();
  journal::SnapshotWriter new_state;
  core.save_state(new_state);
  const std::vector<std::uint8_t>& old_payload = old_state.bytes();
  std::vector<std::uint8_t> new_payload = new_state.bytes();
  new_payload.push_back(0x5a);  // never byte-identical to old_payload

  // Scratch names carry the pid: parallel ctest jobs share a working
  // directory, and a seed-only name would let them clobber each other.
  char name[64];
  std::snprintf(name, sizeof name, "io_fault_oracle_%d_%016llx",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(seed));
  const std::string path = name + std::string(".ckpt");
  const std::string log = name + std::string(".oplog");
  const auto cleanup = [&] {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    std::remove(log.c_str());
  };
  cleanup();

  // 1. Counting pass: record every durable op of one checkpoint write
  //    and check durability-protocol conformance — the rename must be
  //    followed by a parent-directory fsync before the call returns
  //    (planted bug 13 drops exactly that op).
  std::uint64_t total_ops = 0;
  {
    io::FaultPlan plan;
    plan.mode = io::FaultPlan::Mode::kCount;
    plan.log_path = log;
    io::FaultFs fs(plan);
    io::FaultFsGuard guard(fs);
    try {
      journal::write_checkpoint_file(path, old_payload);
    } catch (const std::exception& e) {
      cleanup();
      return OracleOutcome::fail(
          std::string("clean counting pass failed: ") + e.what());
    }
    total_ops = fs.durable_ops();
  }
  const std::vector<LoggedOp> ops = parse_op_log(log);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != "rename") {
      continue;
    }
    if (i + 1 >= ops.size() || ops[i + 1].kind != "fsync") {
      cleanup();
      return OracleOutcome::fail(
          "durability protocol violation: rename at durable op " +
          std::to_string(i + 1) +
          " is not followed by a parent-directory fsync (a power loss "
          "could roll the checkpoint back)");
    }
  }
  if (total_ops == 0 || ops.empty()) {
    cleanup();
    return OracleOutcome::fail("counting pass recorded no durable ops");
  }

  // 2. Crash-point sweep: overwrite the checkpoint with the fault
  //    armed at every durable op k, sticky (every later op fails too —
  //    an in-process model of the filesystem dying mid-protocol), with
  //    seed-drawn errno and occasional torn/short writes.  Outcome must
  //    be binary: the write either reports success and the file reads
  //    back as the NEW payload, or throws a typed CheckpointError and
  //    the file reads back as a complete OLD or NEW checkpoint.  A mix,
  //    a CRC surprise, or a foreign exception is a finding.
  SplitMix rng(derive_seed(seed, label_hash("faults")));
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    io::FaultPlan plan;
    plan.mode = io::FaultPlan::Mode::kFailAt;
    plan.at = k;
    plan.error = rng.below(2) == 0 ? EIO : ENOSPC;
    plan.sticky = true;
    if (rng.below(3) == 0) {
      // Torn final write: deliver a seed-drawn prefix, then the sticky
      // failure kills the rest of the protocol.
      plan.torn_bytes = static_cast<std::int64_t>(rng.below(64));
    }
    bool threw = false;
    try {
      io::FaultFs fs(plan);
      io::FaultFsGuard guard(fs);
      journal::write_checkpoint_file(path, new_payload);
    } catch (const CheckpointError&) {
      threw = true;
    } catch (const std::exception& e) {
      cleanup();
      return OracleOutcome::fail(
          "fault at durable op " + std::to_string(k) +
          " surfaced as a non-typed exception: " + e.what());
    }
    std::vector<std::uint8_t> recovered;
    try {
      recovered = journal::read_checkpoint_file(path);
    } catch (const CheckpointError& e) {
      cleanup();
      return OracleOutcome::fail(
          "corrupt checkpoint after fault at durable op " +
          std::to_string(k) + ": " + e.what());
    }
    if (!threw && recovered != new_payload) {
      cleanup();
      return OracleOutcome::fail(
          "silent divergence: write reported success under fault at op " +
          std::to_string(k) + " but the file holds different bytes");
    }
    if (threw && recovered != old_payload && recovered != new_payload) {
      cleanup();
      return OracleOutcome::fail(
          "atomicity violation at durable op " + std::to_string(k) +
          ": file is neither the old nor the new checkpoint");
    }
    // Reset to a known-good OLD checkpoint for the next crash point.
    try {
      journal::write_checkpoint_file(path, old_payload);
    } catch (const std::exception& e) {
      cleanup();
      return OracleOutcome::fail(
          std::string("clean rewrite between crash points failed: ") +
          e.what());
    }
  }
  cleanup();
  return OracleOutcome::pass();
}

// --- net-fault --------------------------------------------------------

namespace {

/// One in-process qpf_serve conversation: submit the generated program
/// twice, then close, through a RetryClient, with an optional FaultNet
/// schedule installed for the duration of the client's socket traffic.
/// The transcript is the sequence of replies handed to the caller,
/// re-encoded — the exactly-once contract says it must not depend on
/// what the network did.
struct NetRun {
  std::vector<std::uint8_t> transcript;
  std::string error;  ///< non-empty: the conversation itself failed
};

NetRun run_net_workload(const std::string& qasm, std::size_t qubits,
                        std::uint64_t seed, const io::NetFaultPlan* plan) {
  NetRun out;
  serve::ServeOptions options;
  options.port = 0;
  options.executor_threads = 1;
  serve::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    out.error = std::string("server failed to start: ") + e.what();
    return out;
  }
  // The injector must outlive every server thread: the reactor can be
  // inside a FaultNet::read when the guard is popped, so the backend
  // object itself is only destroyed after shutdown()+join() below.
  std::optional<io::FaultNet> net;
  std::thread reactor([&server] { server.serve(); });
  {
    // Guard scope: the injector covers the client conversation only and
    // is uninstalled (in-progress one-shots included) before the drain.
    std::optional<io::FaultNetGuard> guard;
    if (plan != nullptr) {
      net.emplace(*plan);
      guard.emplace(*net);
    }
    try {
      serve::SessionConfig config;
      config.name = "net-fault-oracle";
      config.seed = derive_seed(seed, label_hash("session"));
      config.qubits = qubits;
      serve::RetryOptions retry;
      retry.client_name = "net-fault-oracle";
      retry.seed = derive_seed(seed, label_hash("retry"));
      retry.max_attempts = 12;
      retry.backoff_base_ms = 1;
      retry.backoff_cap_ms = 20;
      retry.recv_timeout_ms = 500;
      retry.connect_budget_ms = 2000;
      serve::RetryClient client(server.port(), config, retry);
      (void)client.submit_qasm(qasm);
      (void)client.submit_qasm(qasm);
      (void)client.close();
      out.transcript = client.transcript();
    } catch (const Error& e) {
      out.error = e.what();
    } catch (const std::exception& e) {
      out.error = std::string("foreign exception: ") + e.what();
    }
  }
  server.shutdown();
  reactor.join();
  return out;
}

}  // namespace

OracleOutcome check_net_fault(const Circuit& body, std::uint64_t seed,
                              const OracleTuning&) {
  const std::string qasm = to_qasm(body);
  const std::size_t qubits = register_size(body, 2);

  // Fault-free reference conversation.
  const NetRun reference = run_net_workload(qasm, qubits, seed, nullptr);
  if (!reference.error.empty()) {
    return OracleOutcome::fail("fault-free reference run failed: " +
                               reference.error);
  }
  if (reference.transcript.empty()) {
    return OracleOutcome::fail(
        "fault-free reference produced an empty transcript");
  }

  // The client's op ordinals are fixed by the workload: hello is send 1 /
  // read 2, open-session 3/4, the first submit 5/6, the second 7/8, the
  // close 9/10.  Reads are even, sends odd; for the @K modes the client
  // connection deterministically reaches an odd K before the server's
  // accepted connection does (the server only touches the socket after
  // poll reports the client's bytes).
  struct Schedule {
    const char* name;
    io::NetFaultPlan plan;
  };
  std::vector<Schedule> schedules;

  // reset@6: the first submit executes but its reply read dies, so the
  // resent request id must be answered from the dedup window — a server
  // that re-executes (planted bug 14) serves one extra request and the
  // final kClosed payload diverges.
  {
    io::NetFaultPlan plan;
    plan.mode = io::NetFaultPlan::Mode::kResetAt;
    plan.at = 6;
    schedules.push_back({"reset@6", plan});
  }

  // garble@5: flip one bit of the "qubits" keyword inside the first
  // submit frame's QASM text.  The CRC armor must reject the frame (the
  // client then resends it intact); a decoder that skips the CRC
  // (planted bug 12) accepts the damage and the program no longer
  // parses, turning the reference's run reply into a `parse` error.
  {
    serve::Frame probe;
    probe.type = serve::MsgType::kSubmitQasm;
    probe.payload = serve::encode_submit_qasm(qasm);
    const std::vector<std::uint8_t> wire = serve::encode_frame(probe);
    const std::vector<std::uint8_t> needle(qasm.begin(), qasm.end());
    const auto at = std::search(wire.begin(), wire.end(), needle.begin(),
                                needle.end());
    const std::size_t keyword = qasm.find("qubits ");
    if (at != wire.end() && keyword != std::string::npos) {
      const std::size_t target =
          static_cast<std::size_t>(at - wire.begin()) + keyword;
      io::NetFaultPlan plan;
      plan.mode = io::NetFaultPlan::Mode::kGarbleAt;
      plan.at = 5;
      plan.bit = static_cast<std::uint32_t>(8 * target);  // 'q' -> 'p'
      schedules.push_back({"garble@5", plan});
    }
  }

  // short-send: roughly every other send is cut to a seeded prefix;
  // both peers' send loops must reassemble the stream bit-exactly.
  {
    io::NetFaultPlan plan;
    plan.mode = io::NetFaultPlan::Mode::kShortSend;
    plan.seed = derive_seed(seed, label_hash("short-send"));
    plan.gap = 2;
    schedules.push_back({"short-send", plan});
  }

  for (const Schedule& schedule : schedules) {
    const NetRun run = run_net_workload(qasm, qubits, seed, &schedule.plan);
    if (!run.error.empty()) {
      return OracleOutcome::fail(std::string("under ") + schedule.name +
                                 " the conversation failed: " + run.error);
    }
    if (run.transcript != reference.transcript) {
      return OracleOutcome::fail(
          std::string("under ") + schedule.name +
          " the client transcript diverged from the fault-free reference (" +
          std::to_string(run.transcript.size()) + " vs " +
          std::to_string(reference.transcript.size()) +
          " bytes) — recovery was not exactly-once");
    }
  }
  return OracleOutcome::pass();
}

// --- executor-determinism oracle --------------------------------------
//
// The commit contract of qpf::exec::Executor::run_ordered(), checked
// as a pure function of the seed: the committed (index, value)
// transcript must equal the splitmix64 seed-chain prediction at any
// chunk size, and — the part a naive pool gets wrong — even when the
// completion *arrival* order is adversarial.  The second run forces
// task 0 to finish last (it spins until every other task has marked
// completion, a schedule constraint with no wall-clock dependence), so
// an engine that commits in arrival order (planted bug 15,
// `executor-commit-reorder`) deterministically emits index 0's result
// last and fails the transcript comparison.

namespace {

struct ExecTranscript {
  std::vector<std::pair<std::size_t, std::uint64_t>> committed;
  bool completed = false;
};

/// One run_ordered() over `tasks` value-producing tasks.  When
/// `invert_arrival` is set, task 0 yields until all other tasks have
/// completed; that requires chunk == 1 (a chunk mate queued behind
/// task 0 could never run) and at least two pool threads.
ExecTranscript run_exec_transcript(exec::Executor& pool, std::size_t tasks,
                                   std::uint64_t base, std::size_t chunk,
                                   bool invert_arrival) {
  ExecTranscript out;
  exec::RunOptions options;
  options.seed = base;
  options.chunk = invert_arrival ? 1 : chunk;
  const exec::RunReport report = pool.run_ordered<std::uint64_t>(
      tasks, options,
      [tasks, invert_arrival](const exec::TaskContext& ctx) {
        if (invert_arrival && ctx.index() == 0 && tasks > 1) {
          while (ctx.completed() < tasks - 1) {
            std::this_thread::yield();
          }
        }
        exec::TaskResult<std::uint64_t> result;
        result.value = exec::splitmix64(ctx.seed());
        return result;
      },
      [&out](std::size_t index, std::uint64_t&& value) {
        out.committed.emplace_back(index, value);
        return true;
      });
  out.completed = !report.cancelled && report.committed == tasks;
  return out;
}

OracleOutcome check_exec_transcript(const ExecTranscript& got,
                                    std::size_t tasks, std::uint64_t base,
                                    const char* schedule) {
  if (!got.completed) {
    return OracleOutcome::fail(std::string("run (") + schedule +
                               ") reported cancellation on a run nothing "
                               "cancelled");
  }
  if (got.committed.size() != tasks) {
    return OracleOutcome::fail(
        std::string("run (") + schedule + ") committed " +
        std::to_string(got.committed.size()) + " of " + std::to_string(tasks) +
        " results");
  }
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto& [index, value] = got.committed[i];
    if (index != i) {
      return OracleOutcome::fail(
          std::string("run (") + schedule + ") committed index " +
          std::to_string(index) + " at position " + std::to_string(i) +
          " — commit order is not task-index order");
    }
    const std::uint64_t expected = exec::splitmix64(exec::task_seed(base, i));
    if (value != expected) {
      return OracleOutcome::fail(
          std::string("run (") + schedule + ") index " + std::to_string(i) +
          " produced value " + std::to_string(value) + ", seed chain predicts " +
          std::to_string(expected));
    }
  }
  return OracleOutcome::pass();
}

}  // namespace

OracleOutcome check_executor_determinism(std::uint64_t seed) {
  SplitMix rng(derive_seed(seed, label_hash("executor-determinism")));
  const std::size_t tasks = 5 + rng.below(8);
  const std::size_t chunk = 1 + rng.below(3);
  const std::uint64_t base = rng.next();

  exec::Executor pool(4);

  const ExecTranscript plain =
      run_exec_transcript(pool, tasks, base, chunk, /*invert_arrival=*/false);
  if (OracleOutcome verdict = check_exec_transcript(plain, tasks, base,
                                                    "natural arrival");
      !verdict.passed) {
    return verdict;
  }

  const ExecTranscript inverted =
      run_exec_transcript(pool, tasks, base, /*chunk=*/1,
                          /*invert_arrival=*/true);
  return check_exec_transcript(inverted, tasks, base,
                               "task 0 forced to finish last");
}

// --- registry ---------------------------------------------------------

namespace {

OracleOutcome conjugation_adapter(const Circuit&, std::uint64_t,
                                  const OracleTuning&) {
  return check_conjugation_tables();
}

OracleOutcome lut_window_adapter(const Circuit&, std::uint64_t seed,
                                 const OracleTuning& tuning) {
  return check_lut_window(seed, tuning);
}

OracleOutcome executor_determinism_adapter(const Circuit&, std::uint64_t seed,
                                           const OracleTuning&) {
  return check_executor_determinism(seed);
}

}  // namespace

const std::vector<OracleSpec>& all_oracles() {
  static const std::vector<OracleSpec> kOracles = {
      {"conjugation", CircuitKind::kNone, conjugation_adapter, true},
      {"arbiter", CircuitKind::kStream, check_arbiter_stream, false},
      {"semantics", CircuitKind::kUnitaryT, check_frame_semantics, false},
      {"mirror-chp", CircuitKind::kUnitary, check_mirror_chp, false},
      {"mirror-qx", CircuitKind::kUnitaryT, check_mirror_qx, false},
      {"sampling", CircuitKind::kMeasured, check_sampling, false},
      {"backend-diff", CircuitKind::kUnitary, check_backend_diff, false},
      {"metamorphic", CircuitKind::kUnitary, check_metamorphic_injection,
       false},
      {"snapshot", CircuitKind::kUnitary, check_snapshot_roundtrip, false},
      {"chaos", CircuitKind::kMeasured, check_chaos_convergence, false},
      {"lut-window", CircuitKind::kNone, lut_window_adapter, false},
      {"serve-codec", CircuitKind::kStream, check_serve_codec, false},
      // io-fault and net-fault swap process-global fault backends in;
      // the parallel engine must never run them concurrently.
      {"io-fault", CircuitKind::kUnitary, check_io_fault, false, true},
      {"net-fault", CircuitKind::kUnitary, check_net_fault, false, true},
      {"executor-determinism", CircuitKind::kNone,
       executor_determinism_adapter, false},
  };
  return kOracles;
}

const OracleSpec* find_oracle(const std::string& name) {
  for (const OracleSpec& spec : all_oracles()) {
    if (name == spec.name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace qpf::fuzz

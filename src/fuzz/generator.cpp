#include "fuzz/generator.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace qpf::fuzz {

namespace {

constexpr GateType kPaulis[] = {GateType::kI, GateType::kX, GateType::kY,
                                GateType::kZ};
constexpr GateType kSingleCliffords[] = {GateType::kH, GateType::kS,
                                         GateType::kSdag};
constexpr GateType kTwoQubit[] = {GateType::kCnot, GateType::kCz,
                                  GateType::kSwap};

/// What a circuit shape is allowed to contain.
struct Palette {
  bool non_clifford = false;
  bool prep_measure = false;
};

/// One randomly packed slot honoring the no-shared-qubit invariant.
TimeSlot random_slot(SplitMix& rng, std::size_t n, const GeneratorOptions& opt,
                     const Palette& palette) {
  // Visit qubits in a random order so two-qubit pairings vary.
  std::vector<Qubit> order(n);
  for (std::size_t q = 0; q < n; ++q) {
    order[q] = static_cast<Qubit>(q);
  }
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  TimeSlot slot;
  std::vector<bool> used(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const Qubit q = order[i];
    if (used[q] || !rng.chance(opt.fill)) {
      continue;
    }
    if (palette.prep_measure && rng.chance(opt.prep_fraction)) {
      slot.add(Operation{GateType::kPrepZ, q});
      used[q] = true;
      continue;
    }
    if (palette.prep_measure && rng.chance(opt.measure_fraction)) {
      slot.add(Operation{GateType::kMeasureZ, q});
      used[q] = true;
      continue;
    }
    if (rng.chance(opt.pauli_fraction)) {
      slot.add(Operation{kPaulis[rng.below(4)], q});
      used[q] = true;
      continue;
    }
    if (palette.non_clifford && rng.chance(opt.t_fraction)) {
      slot.add(Operation{rng.chance(0.5) ? GateType::kT : GateType::kTdag, q});
      used[q] = true;
      continue;
    }
    // Pair with a later unused qubit for a two-qubit gate.
    Qubit partner = q;
    if (rng.chance(opt.two_qubit_fraction)) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!used[order[j]]) {
          partner = order[j];
          break;
        }
      }
    }
    if (partner != q) {
      slot.add(Operation{kTwoQubit[rng.below(3)], q, partner});
      used[q] = true;
      used[partner] = true;
    } else {
      slot.add(Operation{kSingleCliffords[rng.below(3)], q});
      used[q] = true;
    }
  }
  return slot;
}

Circuit random_circuit(SplitMix& rng, std::size_t n,
                       const GeneratorOptions& opt, const Palette& palette) {
  const std::size_t slots =
      opt.min_slots + rng.below(opt.max_slots - opt.min_slots + 1);
  Circuit circuit;
  for (std::size_t s = 0; s < slots; ++s) {
    circuit.append_slot(random_slot(rng, n, opt, palette));
  }
  return circuit;
}

}  // namespace

FuzzCase generate_case(std::uint64_t case_seed, const GeneratorOptions& opt) {
  if (opt.min_qubits < 2 || opt.max_qubits < opt.min_qubits ||
      opt.min_slots < 1 || opt.max_slots < opt.min_slots) {
    throw std::invalid_argument("generate_case: invalid generator options");
  }
  FuzzCase fc;
  fc.seed = case_seed;

  SplitMix shape(derive_seed(case_seed, label_hash("shape")));
  fc.num_qubits =
      opt.min_qubits + shape.below(opt.max_qubits - opt.min_qubits + 1);

  SplitMix unitary_rng(derive_seed(case_seed, label_hash("unitary")));
  fc.unitary = random_circuit(unitary_rng, fc.num_qubits, opt,
                              Palette{false, false});

  SplitMix t_rng(derive_seed(case_seed, label_hash("unitary-t")));
  fc.unitary_t =
      random_circuit(t_rng, fc.num_qubits, opt, Palette{true, false});

  SplitMix measured_rng(derive_seed(case_seed, label_hash("measured")));
  fc.measured =
      random_circuit(measured_rng, fc.num_qubits, opt, Palette{false, true});
  TimeSlot final_measure;
  for (std::size_t q = 0; q < fc.num_qubits; ++q) {
    final_measure.add(Operation{GateType::kMeasureZ, static_cast<Qubit>(q)});
  }
  fc.measured.append_slot(std::move(final_measure));

  SplitMix stream_rng(derive_seed(case_seed, label_hash("stream")));
  fc.stream = random_circuit(stream_rng, fc.num_qubits, opt,
                             Palette{true, true});
  return fc;
}

Circuit inverse_of(const Circuit& circuit) {
  Circuit out;
  const auto& slots = circuit.slots();
  for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
    TimeSlot slot;
    for (const Operation& op : *it) {
      const auto inv = inverse(op.gate());
      if (!inv.has_value()) {
        throw std::invalid_argument("inverse_of: non-unitary operation");
      }
      slot.add(op.arity() == 1
                   ? Operation{*inv, op.qubit(0)}
                   : Operation{*inv, op.qubit(0), op.qubit(1)});
    }
    out.append_slot(std::move(slot));
  }
  return out;
}

Circuit mirror_circuit(const Circuit& body, std::size_t num_qubits,
                       std::uint64_t seed) {
  Circuit full = body;
  full.append_circuit(inverse_of(body));
  // Prep a per-qubit-seeded subset: stable under body shrinking.
  TimeSlot preps;
  for (std::size_t q = 0; q < num_qubits; ++q) {
    if ((derive_seed(seed, label_hash("mirror-prep") + q) & 1) != 0) {
      preps.add(Operation{GateType::kPrepZ, static_cast<Qubit>(q)});
    }
  }
  if (!preps.empty()) {
    full.append_slot(std::move(preps));
  }
  TimeSlot measures;
  for (std::size_t q = 0; q < num_qubits; ++q) {
    measures.add(Operation{GateType::kMeasureZ, static_cast<Qubit>(q)});
  }
  full.append_slot(std::move(measures));
  return full;
}

std::size_t register_size(const Circuit& circuit, std::size_t at_least) {
  return std::max(circuit.min_register_size(), at_least);
}

}  // namespace qpf::fuzz

// Deterministic seed derivation for the differential fuzzing engine.
//
// Every random draw in the fuzzer flows from one master seed through a
// splitmix64 chain, so a fuzz run is a pure function of its seed: the
// same seed reproduces the same cases, the same oracle schedules, the
// same shrinks, and a byte-identical triage report.  The engine never
// uses std::mt19937_64 for its own draws — splitmix64 is fully
// specified, so the case stream is portable across standard libraries.
#pragma once

#include <cstdint>

namespace qpf::fuzz {

/// The splitmix64 output function (Steele, Lea & Flood).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a child seed from a parent seed and a stream label, so every
/// (case, oracle) pair draws from an independent stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                                 std::uint64_t label) noexcept {
  return splitmix64(parent ^ splitmix64(label + 0x6a09e667f3bcc909ULL));
}

/// Minimal deterministic generator over the splitmix64 sequence.
class SplitMix {
 public:
  explicit constexpr SplitMix(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Uniform draw in [0, bound); bound must be nonzero.  Modulo bias is
  /// negligible for the small bounds the generator uses (< 2^16).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  constexpr bool chance(double probability) noexcept {
    return unit() < probability;
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a hash of a string label, for naming seed streams after oracles.
[[nodiscard]] constexpr std::uint64_t label_hash(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace qpf::fuzz

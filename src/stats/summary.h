// Descriptive statistics used by the evaluation chapter: mean, sample
// standard deviation, and coefficient of variation (Eq 5.4).
#pragma once

#include <cstddef>
#include <vector>

namespace qpf::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;

  /// Coefficient of variation sigma/mu (Eq 5.4); 0 for a zero mean.
  [[nodiscard]] double coefficient_of_variation() const noexcept {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

/// Summarize a sample.  Throws std::invalid_argument on an empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& sample);

}  // namespace qpf::stats

#include "stats/ttest.h"

#include <cmath>
#include <stdexcept>

#include "stats/summary.h"

namespace qpf::stats {

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Lentz's algorithm, cf. Numerical Recipes betacf).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("incomplete_beta: x out of [0,1]");
  }
  if (x == 0.0 || x == 1.0) {
    return x;
  }
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_two_tailed_p(double t, double df) {
  if (df <= 0.0) {
    throw std::invalid_argument("student_t_two_tailed_p: df must be > 0");
  }
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

TTestResult independent_ttest(const std::vector<double>& a,
                              const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("independent_ttest: samples too small");
  }
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  const double na = static_cast<double>(sa.n);
  const double nb = static_cast<double>(sb.n);
  const double pooled = ((na - 1.0) * sa.stddev * sa.stddev +
                         (nb - 1.0) * sb.stddev * sb.stddev) /
                        (na + nb - 2.0);
  const double se = std::sqrt(pooled * (1.0 / na + 1.0 / nb));
  TTestResult r;
  r.df = na + nb - 2.0;
  if (se == 0.0) {
    r.t = sa.mean == sb.mean ? 0.0 : std::numeric_limits<double>::infinity();
    r.p = sa.mean == sb.mean ? 1.0 : 0.0;
    return r;
  }
  r.t = (sa.mean - sb.mean) / se;
  r.p = student_t_two_tailed_p(r.t, r.df);
  return r;
}

TTestResult welch_ttest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_ttest: samples too small");
  }
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  const double va = sa.stddev * sa.stddev / static_cast<double>(sa.n);
  const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.n);
  TTestResult r;
  if (va + vb == 0.0) {
    r.df = static_cast<double>(sa.n + sb.n) - 2.0;
    r.t = sa.mean == sb.mean ? 0.0 : std::numeric_limits<double>::infinity();
    r.p = sa.mean == sb.mean ? 1.0 : 0.0;
    return r;
  }
  r.t = (sa.mean - sb.mean) / std::sqrt(va + vb);
  r.df = (va + vb) * (va + vb) /
         (va * va / (static_cast<double>(sa.n) - 1.0) +
          vb * vb / (static_cast<double>(sb.n) - 1.0));
  r.p = student_t_two_tailed_p(r.t, r.df);
  return r;
}

TTestResult paired_ttest(const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_ttest: size mismatch");
  }
  if (a.size() < 2) {
    throw std::invalid_argument("paired_ttest: samples too small");
  }
  std::vector<double> diff(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff[i] = a[i] - b[i];
  }
  const Summary sd = summarize(diff);
  TTestResult r;
  r.df = static_cast<double>(sd.n) - 1.0;
  if (sd.stddev == 0.0) {
    r.t = sd.mean == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    r.p = sd.mean == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t = sd.mean / (sd.stddev / std::sqrt(static_cast<double>(sd.n)));
  r.p = student_t_two_tailed_p(r.t, r.df);
  return r;
}

}  // namespace qpf::stats

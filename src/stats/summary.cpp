#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qpf::stats {

Summary summarize(const std::vector<double>& sample) {
  if (sample.empty()) {
    throw std::invalid_argument("summarize: empty sample");
  }
  Summary s;
  s.n = sample.size();
  s.min = *std::min_element(sample.begin(), sample.end());
  s.max = *std::max_element(sample.begin(), sample.end());
  double sum = 0.0;
  for (double v : sample) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double v : sample) {
      ss += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

}  // namespace qpf::stats

// Student's t-tests used for Figs 5.21–5.24: the two-sample independent
// t-test (pooled variance) and the paired t-test, both two-tailed.
// p-values come from the regularized incomplete beta function.
#pragma once

#include <vector>

namespace qpf::stats {

struct TTestResult {
  double t = 0.0;    ///< t statistic
  double df = 0.0;   ///< degrees of freedom
  double p = 1.0;    ///< two-tailed p-value
};

/// Independent two-sample t-test with pooled variance.  Throws
/// std::invalid_argument if either sample has fewer than 2 elements.
[[nodiscard]] TTestResult independent_ttest(const std::vector<double>& a,
                                            const std::vector<double>& b);

/// Welch's t-test (unequal variances), for the ablation comparison.
[[nodiscard]] TTestResult welch_ttest(const std::vector<double>& a,
                                      const std::vector<double>& b);

/// Paired t-test; samples must have equal size >= 2.
[[nodiscard]] TTestResult paired_ttest(const std::vector<double>& a,
                                       const std::vector<double>& b);

/// Regularized incomplete beta function I_x(a, b), 0 <= x <= 1.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Two-tailed p-value of a t statistic with df degrees of freedom.
[[nodiscard]] double student_t_two_tailed_p(double t, double df);

}  // namespace qpf::stats

// Biased Pauli noise (thesis future work: "more realistic error
// models"; cf. Aliferis & Preskill [28]).
//
// Parameterized by the total physical error rate p and the bias
// eta = p_Z / (p_X + p_Y): dephasing-dominated hardware (e.g.
// superconducting qubits away from the sweet spot) has eta >> 1.
//   p_Z = p * eta / (eta + 1),  p_X = p_Y = p / (2 * (eta + 1)).
// eta = 0.5 recovers the symmetric depolarizing channel.
//
// Two-qubit gates draw independent single-qubit errors on each operand
// from the same biased marginal (conditioned on at least one being
// non-identity), and measurements flip with the full probability p
// (X before readout), matching the symmetric model's conventions.
#pragma once

#include <cstdint>
#include <random>

#include "circuit/circuit.h"
#include "qec/depolarizing.h"  // ErrorTally

namespace qpf::qec {

class BiasedNoiseModel {
 public:
  /// Throws std::invalid_argument unless 0 <= p <= 1 and eta > 0.
  BiasedNoiseModel(double p, double eta, std::uint64_t seed);

  [[nodiscard]] double physical_error_rate() const noexcept { return p_; }
  [[nodiscard]] double bias() const noexcept { return eta_; }

  /// Per-Pauli marginals.
  [[nodiscard]] double p_x() const noexcept { return px_; }
  [[nodiscard]] double p_y() const noexcept { return px_; }
  [[nodiscard]] double p_z() const noexcept { return pz_; }

  /// Rewrite a circuit with sampled faults inserted; `num_qubits` sizes
  /// the register for idle errors (same conventions as
  /// DepolarizingModel::inject).
  [[nodiscard]] Circuit inject(const Circuit& circuit,
                               std::size_t num_qubits);

  [[nodiscard]] const ErrorTally& tally() const noexcept { return tally_; }
  void reset_tally() noexcept { tally_ = {}; }

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize the RNG engine (exactly) and the fault tally; p and eta
  /// are configuration, echoed only for a consistency check.
  void save(journal::SnapshotWriter& out) const;

  /// Restore into this model.  Throws qpf::CheckpointError on stream
  /// corruption or a rate / bias mismatch.
  void load(journal::SnapshotReader& in);

 private:
  /// Draw a Pauli conditioned on "an error happened": X/Y/Z with the
  /// biased conditional weights.
  [[nodiscard]] GateType biased_pauli();
  [[nodiscard]] bool flip(double probability);

  double p_;
  double eta_;
  double px_;
  double pz_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  ErrorTally tally_;
};

}  // namespace qpf::qec

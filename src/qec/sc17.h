// Surface Code 17 ("ninja star") layout, stabilizers and ESM circuits.
//
// Geometry (thesis Fig 2.1): nine data qubits D0..D8 on a 3x3 grid with
// four X-parity ancillas and four Z-parity ancillas between them.
// Stabilizers (Table 2.1):
//   X checks: X0X1X3X4, X1X2, X4X5X7X8, X6X7
//   Z checks: Z0Z3, Z1Z2Z4Z5, Z3Z4Z6Z7, Z5Z8
// Logical operators (§2.6.1): X_L = X2 X4 X6, Z_L = Z0 Z4 Z8 in the
// normal orientation; the chains swap after a logical Hadamard rotates
// the lattice by 90 degrees (Fig 2.5).
//
// ESM circuits follow Table 5.8: 8 time slots, 48 operations, with the
// X-check CNOTs in the S pattern of Fig 2.2 and the Z-check CNOTs in the
// Z pattern of Fig 2.3 (different patterns prevent hook errors, see
// Tomita & Svore).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace qpf::qec {

/// Parity-check basis.
enum class CheckType : std::uint8_t { kX, kZ };

/// Lattice orientation (Table 5.2 "rotation" property).
enum class Orientation : std::uint8_t { kNormal, kRotated };

/// Which ancillas dance during an ESM round (Table 5.2 "dancemode").
enum class DanceMode : std::uint8_t { kAll, kZOnly };

/// CNOT interaction ordering for the ESM schedule.  kMixed is the
/// fault-tolerant choice of Figs 2.2/2.3 (S pattern for X checks, Z
/// pattern for Z checks); kSameS applies the S pattern to both check
/// types — still conflict-free, but hook errors on ancillas can then
/// align with logical operators (ablation target, cf. [19]).
enum class CnotPattern : std::uint8_t { kMixed, kSameS };

[[nodiscard]] constexpr Orientation flip(Orientation o) noexcept {
  return o == Orientation::kNormal ? Orientation::kRotated
                                   : Orientation::kNormal;
}

/// One parity check: an ancilla plus its slot-ordered data neighbours.
struct Check {
  CheckType type;              ///< check basis in the NORMAL orientation
  int ancilla;                 ///< local ancilla index, 0..7
  std::array<int, 4> data;     ///< local data index per CNOT slot; -1 = idle
  std::uint16_t mask;          ///< bitmask over the 9 data qubits

  /// Basis this check measures in the given orientation: a transversal
  /// logical H swaps every ancilla's role.
  [[nodiscard]] CheckType effective_type(Orientation o) const noexcept {
    if (o == Orientation::kNormal) {
      return type;
    }
    return type == CheckType::kX ? CheckType::kZ : CheckType::kX;
  }
};

/// The static SC17 layout with register-index helpers.  A ninja star
/// occupies 17 consecutive register qubits starting at `base`: data
/// qubits base+0..base+8, ancillas base+9..base+16 (X ancillas first).
class Sc17Layout {
 public:
  static constexpr std::size_t kNumData = 9;
  static constexpr std::size_t kNumAncilla = 8;
  static constexpr std::size_t kNumQubits = kNumData + kNumAncilla;
  static constexpr std::size_t kEsmSlots = 8;     // Table 5.8
  static constexpr std::size_t kEsmGates = 48;    // Table 5.8
  static constexpr std::size_t kDistance = 3;

  /// Logical operator chains in the normal orientation.
  static constexpr std::array<int, 3> kLogicalXData{2, 4, 6};
  static constexpr std::array<int, 3> kLogicalZData{0, 4, 8};

  explicit Sc17Layout(CnotPattern pattern = CnotPattern::kMixed);

  /// The 8 checks; indices 0..3 are the X checks, 4..7 the Z checks.
  [[nodiscard]] const std::vector<Check>& checks() const noexcept {
    return checks_;
  }

  [[nodiscard]] CnotPattern pattern() const noexcept { return pattern_; }

  /// Data-qubit chain of the logical X / Z operator for an orientation.
  [[nodiscard]] std::array<int, 3> logical_x_data(Orientation o) const noexcept {
    return o == Orientation::kNormal ? kLogicalXData : kLogicalZData;
  }
  [[nodiscard]] std::array<int, 3> logical_z_data(Orientation o) const noexcept {
    return o == Orientation::kNormal ? kLogicalZData : kLogicalXData;
  }

  /// Register index of local data qubit d for a star rooted at base.
  [[nodiscard]] static Qubit data_qubit(Qubit base, int d) {
    return base + static_cast<Qubit>(d);
  }
  /// Register index of local ancilla a (0..7).
  [[nodiscard]] static Qubit ancilla_qubit(Qubit base, int a) {
    return base + static_cast<Qubit>(kNumData + a);
  }

  /// Full ESM circuit for one round (Table 5.8).  In dance mode kZOnly
  /// only the ancillas whose effective type is Z participate (partial
  /// ESM used after logical measurement, §5.1.2).
  [[nodiscard]] Circuit esm_circuit(Qubit base, Orientation orientation,
                                    DanceMode dance = DanceMode::kAll) const;

  /// Local ancilla indices measured by esm_circuit, in measurement
  /// order.  Needed to map measurement results back to checks.
  [[nodiscard]] std::vector<int> esm_measurement_order(
      Orientation orientation, DanceMode dance = DanceMode::kAll) const;

  /// Stabilizer-measurement circuit of Fig 5.10 for detecting logical
  /// errors without disturbing the state.  For CheckType::kZ this is the
  /// Z0Z4Z8 circuit (detects X_L errors), for kX the X2X4X6 circuit
  /// (detects Z_L errors); the chains follow the lattice orientation.
  /// `ancilla` is the register qubit to borrow.
  [[nodiscard]] Circuit logical_stabilizer_circuit(
      Qubit base, CheckType basis, Qubit ancilla,
      Orientation orientation = Orientation::kNormal) const;

 private:
  CnotPattern pattern_;
  std::vector<Check> checks_;
};

}  // namespace qpf::qec

#include "qec/depolarizing.h"

#include <stdexcept>

#include "circuit/error.h"
#include <vector>

namespace qpf::qec {

DepolarizingModel::DepolarizingModel(double p, std::uint64_t seed)
    : p_(p), rng_(seed) {
  if (p < 0.0 || p > 1.0) {
    throw StackConfigError("DepolarizingModel", "p out of [0,1]");
  }
}

GateType DepolarizingModel::random_pauli() {
  static constexpr GateType kPaulis[] = {GateType::kX, GateType::kY,
                                         GateType::kZ};
  std::uniform_int_distribution<int> dist(0, 2);
  return kPaulis[dist(rng_)];
}

bool DepolarizingModel::flip(double probability) {
  return uniform_(rng_) < probability;
}

Circuit DepolarizingModel::inject(const Circuit& circuit,
                                  std::size_t num_qubits) {
  if (circuit.min_register_size() > num_qubits) {
    throw StackConfigError("DepolarizingModel", "register too small");
  }
  Circuit out{circuit.name()};
  for (const TimeSlot& slot : circuit) {
    TimeSlot pre;   // X flips ahead of measurements
    TimeSlot post;  // gate and idle errors after the slot
    std::vector<bool> busy(num_qubits, false);
    for (const Operation& op : slot) {
      for (int i = 0; i < op.arity(); ++i) {
        busy[op.qubit(i)] = true;
      }
      switch (category(op.gate())) {
        case GateCategory::kMeasurement:
          if (flip(p_)) {
            pre.add(Operation{GateType::kX, op.qubit(0)});
            ++tally_.measurement_flips;
          }
          break;
        case GateCategory::kInitialization:
          if (flip(p_)) {
            post.add(Operation{random_pauli(), op.qubit(0)});
            ++tally_.single_qubit;
          }
          break;
        default:
          if (op.arity() == 1) {
            if (flip(p_)) {
              post.add(Operation{random_pauli(), op.qubit(0)});
              ++tally_.single_qubit;
            }
          } else if (flip(p_)) {
            // One of the 15 non-identity pairs, uniformly: draw a
            // combined index 1..15 and split into two one-qubit Paulis
            // (I allowed on one side but not both).
            std::uniform_int_distribution<int> dist(1, 15);
            const int combo = dist(rng_);
            static constexpr GateType kOneQubit[] = {
                GateType::kI, GateType::kX, GateType::kY, GateType::kZ};
            const GateType first = kOneQubit[combo / 4];
            const GateType second = kOneQubit[combo % 4];
            if (first != GateType::kI) {
              post.add(Operation{first, op.qubit(0)});
            }
            if (second != GateType::kI) {
              post.add(Operation{second, op.qubit(1)});
            }
            ++tally_.two_qubit;
          }
          break;
      }
    }
    // Idle errors: every untouched qubit executes an identity gate.
    for (Qubit q = 0; q < num_qubits; ++q) {
      if (!busy[q] && flip(p_)) {
        post.add(Operation{random_pauli(), q});
        ++tally_.idle;
      }
    }
    out.append_slot(std::move(pre));
    out.append_slot(slot);
    out.append_slot(std::move(post));
  }
  return out;
}

void DepolarizingModel::save(journal::SnapshotWriter& out) const {
  out.tag("depolarizing");
  out.write_double(p_);
  out.write_rng(rng_);
  out.write_size(tally_.single_qubit);
  out.write_size(tally_.two_qubit);
  out.write_size(tally_.measurement_flips);
  out.write_size(tally_.idle);
}

void DepolarizingModel::load(journal::SnapshotReader& in) {
  in.expect_tag("depolarizing");
  const double p = in.read_double();
  if (p != p_) {
    throw CheckpointError(
        "depolarizing snapshot: physical error rate mismatch (checkpoint " +
        std::to_string(p) + ", configured " + std::to_string(p_) + ")");
  }
  rng_ = in.read_rng();
  uniform_.reset();
  tally_.single_qubit = in.read_size();
  tally_.two_qubit = in.read_size();
  tally_.measurement_flips = in.read_size();
  tally_.idle = in.read_size();
}

}  // namespace qpf::qec

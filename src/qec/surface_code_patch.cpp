#include "qec/surface_code_patch.h"

#include <stdexcept>

namespace qpf::qec {

namespace {

// X + Z on the same qubit collapses to Y (single correction slot).
std::vector<Operation> merge_same_qubit(std::vector<Operation> corrections) {
  std::vector<Operation> merged;
  for (const Operation& op : corrections) {
    bool combined = false;
    for (Operation& existing : merged) {
      if (existing.qubit(0) == op.qubit(0)) {
        existing = Operation{GateType::kY, op.qubit(0)};
        combined = true;
        break;
      }
    }
    if (!combined) {
      merged.push_back(op);
    }
  }
  return merged;
}

}  // namespace

SurfaceCodePatch::SurfaceCodePatch(const SurfaceCodeLayout* layout, Qubit base)
    : layout_(layout),
      base_(base),
      carried_(layout->num_checks(), 0),
      x_decoder_(*layout, CheckType::kX),
      z_decoder_(*layout, CheckType::kZ) {}

void SurfaceCodePatch::set_carried(Bits carried) {
  if (carried.size() != layout_->num_checks()) {
    throw std::invalid_argument("SurfaceCodePatch: carried size mismatch");
  }
  carried_ = std::move(carried);
}

std::vector<Operation> SurfaceCodePatch::corrections_for(
    CheckType basis, const std::vector<int>& defects) const {
  const std::vector<int> data = decoder(basis).decode(defects);
  // Z-check defects flag X errors and vice versa.
  const GateType fix = basis == CheckType::kZ ? GateType::kX : GateType::kZ;
  std::vector<Operation> out;
  out.reserve(data.size());
  for (int q : data) {
    out.emplace_back(fix, layout_->data_qubit(base_, q));
  }
  return out;
}

std::vector<Operation> SurfaceCodePatch::decode_initialization(
    const Bits& round) {
  if (round.size() != layout_->num_checks()) {
    throw std::invalid_argument("SurfaceCodePatch: round size mismatch");
  }
  std::vector<Operation> corrections;
  for (const CheckType basis : {CheckType::kZ, CheckType::kX}) {
    const std::vector<int>& group = layout_->checks_of(basis);
    std::vector<int> defects;
    for (std::size_t g = 0; g < group.size(); ++g) {
      if (round[static_cast<std::size_t>(group[g])]) {
        defects.push_back(static_cast<int>(g));
      }
    }
    const auto fixes = corrections_for(basis, defects);
    corrections.insert(corrections.end(), fixes.begin(), fixes.end());
  }
  // Matching corrections clear the observed syndrome exactly.
  carried_.assign(layout_->num_checks(), 0);
  return merge_same_qubit(std::move(corrections));
}

std::vector<Operation> SurfaceCodePatch::decode_gauge(const Bits& round,
                                                       CheckType gauge_basis) {
  if (round.size() != layout_->num_checks()) {
    throw std::invalid_argument("SurfaceCodePatch: round size mismatch");
  }
  const std::vector<int>& group = layout_->checks_of(gauge_basis);
  std::vector<int> defects;
  for (std::size_t g = 0; g < group.size(); ++g) {
    if (round[static_cast<std::size_t>(group[g])]) {
      defects.push_back(static_cast<int>(g));
    }
  }
  const std::vector<Operation> corrections =
      corrections_for(gauge_basis, defects);
  // Gauge group cleared by construction; the other group's observed
  // bits carry into the next window.
  carried_.assign(layout_->num_checks(), 0);
  const CheckType deferred = gauge_basis == CheckType::kZ ? CheckType::kX
                                                          : CheckType::kZ;
  for (int k : layout_->checks_of(deferred)) {
    carried_[static_cast<std::size_t>(k)] =
        round[static_cast<std::size_t>(k)];
  }
  return corrections;
}

std::vector<Operation> SurfaceCodePatch::decode_window(const Bits& r1,
                                                       const Bits& r2) {
  if (r1.size() != layout_->num_checks() ||
      r2.size() != layout_->num_checks()) {
    throw std::invalid_argument("SurfaceCodePatch: round size mismatch");
  }
  std::vector<Operation> corrections;
  Bits new_carried = r2;
  for (const CheckType basis : {CheckType::kZ, CheckType::kX}) {
    const std::vector<int>& group = layout_->checks_of(basis);
    bool agree = true;
    for (int k : group) {
      if (r1[static_cast<std::size_t>(k)] != r2[static_cast<std::size_t>(k)]) {
        agree = false;
        break;
      }
    }
    if (!agree) {
      continue;  // defer this group by one window
    }
    std::vector<int> defects;
    for (std::size_t g = 0; g < group.size(); ++g) {
      if (r2[static_cast<std::size_t>(group[g])]) {
        defects.push_back(static_cast<int>(g));
      }
    }
    if (defects.empty()) {
      continue;
    }
    const std::vector<int> data = decoder(basis).decode(defects);
    const GateType fix = basis == CheckType::kZ ? GateType::kX : GateType::kZ;
    for (int q : data) {
      corrections.emplace_back(fix, layout_->data_qubit(base_, q));
    }
    // Applying the corrections flips their checks from the next round.
    for (int g : decoder(basis).signature(data)) {
      const std::size_t k = static_cast<std::size_t>(
          group[static_cast<std::size_t>(g)]);
      new_carried[k] = static_cast<std::uint8_t>(new_carried[k] ^ 1u);
    }
  }
  carried_ = std::move(new_carried);
  return merge_same_qubit(std::move(corrections));
}

}  // namespace qpf::qec

#include "qec/sc17.h"

#include <stdexcept>

namespace qpf::qec {

namespace {

constexpr std::uint16_t make_mask(std::initializer_list<int> data) {
  std::uint16_t m = 0;
  for (int d : data) {
    m = static_cast<std::uint16_t>(m | (1u << d));
  }
  return m;
}

}  // namespace

Sc17Layout::Sc17Layout(CnotPattern pattern) : pattern_(pattern) {
  // X checks interact NE, NW, SE, SW per CNOT slot (the S pattern of
  // Fig 2.2); Z checks interact NE, SE, NW, SW (the Z pattern of
  // Fig 2.3).  The resulting schedule gives every data qubit at most one
  // partner per slot; see Sc17ScheduleTest.
  checks_ = {
      // X ancillas (local 0..3)
      {CheckType::kX, 0, {1, 0, 4, 3}, make_mask({0, 1, 3, 4})},
      {CheckType::kX, 1, {-1, -1, 2, 1}, make_mask({1, 2})},
      {CheckType::kX, 2, {5, 4, 8, 7}, make_mask({4, 5, 7, 8})},
      {CheckType::kX, 3, {7, 6, -1, -1}, make_mask({6, 7})},
      // Z ancillas (local 4..7)
      {CheckType::kZ, 4, {0, 3, -1, -1}, make_mask({0, 3})},
      {CheckType::kZ, 5, {2, 5, 1, 4}, make_mask({1, 2, 4, 5})},
      {CheckType::kZ, 6, {4, 7, 3, 6}, make_mask({3, 4, 6, 7})},
      {CheckType::kZ, 7, {-1, -1, 5, 8}, make_mask({5, 8})},
  };
  if (pattern == CnotPattern::kSameS) {
    // Z checks also interact NE, NW, SE, SW (also conflict-free; see
    // Sc17ScheduleTest.SameSPatternIsConflictFree).
    checks_[4].data = {0, -1, 3, -1};
    checks_[5].data = {2, 1, 5, 4};
    checks_[6].data = {4, 3, 7, 6};
    checks_[7].data = {-1, 5, -1, 8};
  }
}

Circuit Sc17Layout::esm_circuit(Qubit base, Orientation orientation,
                                DanceMode dance) const {
  Circuit circuit{"esm"};
  // Partition the ancillas by their effective basis this round.
  std::vector<const Check*> x_checks;
  std::vector<const Check*> z_checks;
  for (const Check& check : checks_) {
    if (check.effective_type(orientation) == CheckType::kX) {
      if (dance == DanceMode::kAll) {
        x_checks.push_back(&check);
      }
    } else {
      z_checks.push_back(&check);
    }
  }

  // Slot 1: reset the X ancillas (Table 5.8).
  if (!x_checks.empty()) {
    TimeSlot slot;
    for (const Check* check : x_checks) {
      slot.add(Operation{GateType::kPrepZ, ancilla_qubit(base, check->ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  // Slot 2: reset the Z ancillas and put the X ancillas in |+>.
  {
    TimeSlot slot;
    for (const Check* check : z_checks) {
      slot.add(Operation{GateType::kPrepZ, ancilla_qubit(base, check->ancilla)});
    }
    for (const Check* check : x_checks) {
      slot.add(Operation{GateType::kH, ancilla_qubit(base, check->ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  // Slots 3-6: the interleaved CNOT schedule.
  for (int cnot_slot = 0; cnot_slot < 4; ++cnot_slot) {
    TimeSlot slot;
    for (const Check* check : x_checks) {
      const int d = check->data[static_cast<std::size_t>(cnot_slot)];
      if (d >= 0) {
        slot.add(Operation{GateType::kCnot,
                           ancilla_qubit(base, check->ancilla),
                           data_qubit(base, d)});
      }
    }
    for (const Check* check : z_checks) {
      const int d = check->data[static_cast<std::size_t>(cnot_slot)];
      if (d >= 0) {
        slot.add(Operation{GateType::kCnot, data_qubit(base, d),
                           ancilla_qubit(base, check->ancilla)});
      }
    }
    circuit.append_slot(std::move(slot));
  }
  // Slot 7: rotate the X ancillas back to the computational basis.
  if (!x_checks.empty()) {
    TimeSlot slot;
    for (const Check* check : x_checks) {
      slot.add(Operation{GateType::kH, ancilla_qubit(base, check->ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  // Slot 8: measure every dancing ancilla.
  {
    TimeSlot slot;
    for (const Check& check : checks_) {
      const bool active = dance == DanceMode::kAll ||
                          check.effective_type(orientation) == CheckType::kZ;
      if (active) {
        slot.add(
            Operation{GateType::kMeasureZ, ancilla_qubit(base, check.ancilla)});
      }
    }
    circuit.append_slot(std::move(slot));
  }
  return circuit;
}

std::vector<int> Sc17Layout::esm_measurement_order(Orientation orientation,
                                                   DanceMode dance) const {
  std::vector<int> order;
  for (const Check& check : checks_) {
    const bool active = dance == DanceMode::kAll ||
                        check.effective_type(orientation) == CheckType::kZ;
    if (active) {
      order.push_back(check.ancilla);
    }
  }
  return order;
}

Circuit Sc17Layout::logical_stabilizer_circuit(Qubit base, CheckType basis,
                                               Qubit ancilla,
                                               Orientation orientation) const {
  Circuit circuit{basis == CheckType::kZ ? "logical-z-stabilizer"
                                         : "logical-x-stabilizer"};
  circuit.append_in_new_slot(Operation{GateType::kPrepZ, ancilla});
  if (basis == CheckType::kZ) {
    // Fig 5.10a: Z-chain parity into the ancilla (detects X_L errors).
    for (int d : logical_z_data(orientation)) {
      circuit.append_in_new_slot(
          Operation{GateType::kCnot, data_qubit(base, d), ancilla});
    }
  } else {
    // Fig 5.10b: X-chain parity via a |+>-basis ancilla (detects Z_L).
    circuit.append_in_new_slot(Operation{GateType::kH, ancilla});
    for (int d : logical_x_data(orientation)) {
      circuit.append_in_new_slot(
          Operation{GateType::kCnot, ancilla, data_qubit(base, d)});
    }
    circuit.append_in_new_slot(Operation{GateType::kH, ancilla});
  }
  circuit.append_in_new_slot(Operation{GateType::kMeasureZ, ancilla});
  return circuit;
}

}  // namespace qpf::qec

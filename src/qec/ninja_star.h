// Run-time model of one SC17 logical qubit (a "ninja star"): the
// tracked properties of Table 5.2, the logical-operation conversions of
// Table 5.1 / 5.3 (§5.1.2), and the window decoder bookkeeping of §5.3.1.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "journal/snapshot.h"
#include "qec/lut_decoder.h"
#include "qec/sc17.h"

namespace qpf::qec {

/// Binary state of a logical qubit (Table 5.2 "state"): 0, 1 or x.
enum class StateValue : std::uint8_t { kZero, kOne, kUnknown };

[[nodiscard]] constexpr char to_char(StateValue v) noexcept {
  switch (v) {
    case StateValue::kZero:
      return '0';
    case StateValue::kOne:
      return '1';
    case StateValue::kUnknown:
      return 'x';
  }
  return '?';
}

/// Syndromes are 8-bit words, bit a = outcome of local ancilla a
/// (1 means the -1 eigenvalue was read).
using Syndrome = std::uint8_t;

class NinjaStar {
 public:
  /// A star occupies 17 register qubits rooted at `base`.  The layout
  /// must outlive the star.
  NinjaStar(Qubit base, const Sc17Layout* layout);

  [[nodiscard]] Qubit base() const noexcept { return base_; }
  [[nodiscard]] const Sc17Layout& layout() const noexcept { return *layout_; }

  // --- Run-time properties (Table 5.2) -------------------------------
  [[nodiscard]] Orientation orientation() const noexcept { return orientation_; }
  [[nodiscard]] DanceMode dance_mode() const noexcept { return dance_; }
  [[nodiscard]] StateValue state() const noexcept { return state_; }
  void set_state(StateValue v) noexcept { state_ = v; }

  // --- Circuit conversion (Table 5.1) ---------------------------------
  /// Reset all data qubits to |0> (ancillas are prepared inside ESM).
  [[nodiscard]] Circuit reset_circuit() const;
  /// X_L: chain of X along the orientation-dependent chain.
  [[nodiscard]] Circuit logical_x_circuit() const;
  /// Z_L: chain of Z.
  [[nodiscard]] Circuit logical_z_circuit() const;
  /// H_L: transversal H on all nine data qubits.
  [[nodiscard]] Circuit logical_h_circuit() const;
  /// Transversal measurement of all nine data qubits.
  [[nodiscard]] Circuit measure_circuit() const;
  /// One ESM round in the current orientation and dance mode.
  [[nodiscard]] Circuit esm_circuit() const;
  /// Ancilla measurement order of esm_circuit() (local indices).
  [[nodiscard]] std::vector<int> esm_measurement_order() const;
  /// Fig 5.10 logical-error detection circuit (borrow local ancilla 0).
  [[nodiscard]] Circuit logical_stabilizer_circuit(CheckType basis) const;

  /// Transversal CNOT_L / CZ_L; pairing depends on both orientations
  /// (§2.6.1).
  [[nodiscard]] static Circuit logical_cnot_circuit(const NinjaStar& control,
                                                    const NinjaStar& target);
  [[nodiscard]] static Circuit logical_cz_circuit(const NinjaStar& a,
                                                  const NinjaStar& b);

  // --- Property post-processing (Table 5.3) ---------------------------
  void on_reset() noexcept;
  void on_logical_x() noexcept;
  void on_logical_z() noexcept;
  void on_logical_h() noexcept;
  /// `sign` is the +-1 parity of the corrected transversal readout.
  void on_measured(int sign) noexcept;
  static void on_logical_cnot(NinjaStar& control, NinjaStar& target) noexcept;
  static void on_logical_cz(NinjaStar& a, NinjaStar& b) noexcept;

  // --- Window decoding (§5.3.1, Fig 5.9) ------------------------------
  /// Last carried ESM round, adjusted for applied corrections.
  [[nodiscard]] Syndrome carried_syndrome() const noexcept { return carried_; }
  void set_carried_syndrome(Syndrome s) noexcept { carried_ = s; }

  /// Decode one window from its two fresh rounds.  Per check group, a
  /// per-bit majority vote over {carried, r1, r2} filters measurement
  /// errors, the group LUT picks minimum-weight data corrections, and
  /// the carried round is updated to r2 adjusted by the corrections'
  /// signatures.  Returns correction operations on register qubits
  /// (X for Z-check syndromes, Z for X-check syndromes).
  [[nodiscard]] std::vector<Operation> decode_window(Syndrome r1, Syndrome r2);

  /// Decode the very first ESM round after (re)initialization: both
  /// groups are decoded against the ideal all-+1 syndrome, which both
  /// fixes reset errors and gauge-fixes the randomly projected checks
  /// (the X checks for a |0>_L reset).  The carried round becomes 0.
  [[nodiscard]] std::vector<Operation> decode_initialization(Syndrome round);

  /// Initialization gauge fix: decode ONLY the randomly-projected check
  /// group absolutely (the X checks for a |0>_L reset, the Z checks for
  /// a |+>_L preparation) and defer the other group — whose nonzero
  /// bits are real errors — to the next window's agreement logic.
  /// Mis-gauging under noise then only ever installs errors of the
  /// harmless basis.  The gauge group's carried bits become 0; the
  /// deferred group's carried bits copy the observed round.
  [[nodiscard]] std::vector<Operation> decode_gauge(Syndrome round,
                                                    CheckType gauge_basis);

  /// Gauge-fix decode for state injection: like decode_initialization,
  /// but every correction is constrained to commute with both logical
  /// operators (even overlap with the X_L and Z_L chains), so the
  /// injected Bloch vector survives every projection branch.  Normal
  /// orientation only.
  [[nodiscard]] std::vector<Operation> decode_injection(Syndrome round);

  /// Decode the effective-Z-check syndrome for the post-measurement
  /// X-error sweep of §5.1.2.  Returns the local data qubits whose
  /// classical readout must be flipped.  The syndrome should be the
  /// *classical* parity violations of the transversal readout string
  /// (signature(ones, kX)) — code states satisfy every Z-check parity,
  /// so any violation pinpoints pre-readout flips without being fooled
  /// by errors that strike after readout.
  [[nodiscard]] std::vector<int> decode_partial_round(Syndrome syndrome);

  /// Syndrome bits (within the 8-bit word) that errors on `data_locals`
  /// of the given error basis would set.  kX errors show on effective-Z
  /// checks and vice versa.
  [[nodiscard]] Syndrome signature(const std::vector<int>& data_locals,
                                   CheckType error_basis) const;

  // --- Verification support (src/fuzz lut-window oracle) --------------
  /// The spatial LUT serving the basis' check group in the current
  /// orientation — the same object decode_window consults, so an
  /// independent reference decoder can be diffed against the real one.
  [[nodiscard]] const LutDecoder& lut(CheckType basis) const;
  /// Local ancilla indices of the basis' check group, in LUT bit order
  /// (bit b of a group syndrome is ancilla group_ancillas(basis)[b]).
  [[nodiscard]] std::array<int, 4> group_ancillas(CheckType basis) const;

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize the Table 5.2 run-time properties and the decoder's
  /// carried round.  The LUTs are pure functions of the layout and are
  /// not persisted.
  void save(journal::SnapshotWriter& out) const;

  /// Restore the run-time properties into this star.  Throws
  /// qpf::CheckpointError on corruption or a base-qubit mismatch.
  void load(journal::SnapshotReader& in);

 private:
  /// Checks whose effective type equals t, in ascending ancilla order.
  [[nodiscard]] std::array<const Check*, 4> group(CheckType t) const;
  /// Extract a 4-bit group syndrome from an 8-bit word.
  [[nodiscard]] static unsigned extract(Syndrome s,
                                        const std::array<const Check*, 4>& g);

  Qubit base_;
  const Sc17Layout* layout_;
  Orientation orientation_ = Orientation::kNormal;
  DanceMode dance_ = DanceMode::kZOnly;  // initial value per Table 5.2
  StateValue state_ = StateValue::kUnknown;
  Syndrome carried_ = 0;
  LutDecoder lut_low_;   // ancillas 0..3 (X checks in normal orientation)
  LutDecoder lut_high_;  // ancillas 4..7 (Z checks in normal orientation)
  LutDecoder lut_low_injection_;   // Z fixes commuting with X_L
  LutDecoder lut_high_injection_;  // X fixes commuting with Z_L
};

}  // namespace qpf::qec

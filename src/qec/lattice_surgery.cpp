#include "qec/lattice_surgery.h"

#include <stdexcept>

namespace qpf::qec {

namespace {

constexpr int kRows = 3;
constexpr int kColsMerged = 7;
constexpr int kSeamCol = 3;

// Solve (over GF(2)) for the subset of same-basis checks whose combined
// support equals `target` (a bitmask over the merged data qubits).
// Gaussian elimination on the check-support matrix; throws
// std::logic_error if no solution exists (it always does: the two
// logicals are homologically equivalent in the merged patch).
std::vector<int> solve_joint_subset(const SurfaceCodeLayout& merged,
                                    CheckType basis, std::uint32_t target) {
  struct Row {
    std::uint32_t support = 0;
    std::uint32_t picks = 0;  // which checks were combined (by group pos)
  };
  const std::vector<int>& group = merged.checks_of(basis);
  std::vector<Row> rows;
  for (std::size_t g = 0; g < group.size(); ++g) {
    Row row;
    for (int q :
         merged.checks()[static_cast<std::size_t>(group[g])].support) {
      row.support |= 1u << q;
    }
    row.picks = 1u << g;
    rows.push_back(row);
  }
  // Reduced row echelon form: one pivot row per leading bit.
  std::vector<int> pivot_of_bit(32, -1);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    // Reduce row r against existing pivots.
    for (int bit = 0; bit < 32; ++bit) {
      if ((rows[r].support & (1u << bit)) && pivot_of_bit[bit] >= 0) {
        const Row& pivot = rows[static_cast<std::size_t>(pivot_of_bit[bit])];
        rows[r].support ^= pivot.support;
        rows[r].picks ^= pivot.picks;
      }
    }
    if (rows[r].support == 0) {
      continue;  // dependent row
    }
    int leading = 0;
    while ((rows[r].support & (1u << leading)) == 0) {
      ++leading;
    }
    // Back-substitute into earlier pivots to keep full RREF.
    for (int bit = 0; bit < 32; ++bit) {
      const int other = pivot_of_bit[bit];
      if (other >= 0 && (rows[static_cast<std::size_t>(other)].support &
                         (1u << leading))) {
        rows[static_cast<std::size_t>(other)].support ^= rows[r].support;
        rows[static_cast<std::size_t>(other)].picks ^= rows[r].picks;
      }
    }
    pivot_of_bit[static_cast<std::size_t>(leading)] = static_cast<int>(r);
  }
  // Express the target in the pivot basis.
  Row accumulated{target, 0};
  for (int bit = 0; bit < 32; ++bit) {
    if ((accumulated.support & (1u << bit)) == 0) {
      continue;
    }
    const int r = pivot_of_bit[static_cast<std::size_t>(bit)];
    if (r < 0) {
      throw std::logic_error("lattice surgery: joint logical not in span");
    }
    accumulated.support ^= rows[static_cast<std::size_t>(r)].support;
    accumulated.picks ^= rows[static_cast<std::size_t>(r)].picks;
  }
  std::vector<int> subset;
  for (std::size_t g = 0; g < group.size(); ++g) {
    if (accumulated.picks & (1u << g)) {
      subset.push_back(group[g]);
    }
  }
  return subset;
}

}  // namespace

LatticeSurgery::LatticeSurgery(const Registers& registers)
    : registers_(registers), patch_(3), merged_(kRows, kColsMerged) {
  // X_A = merged column 0, X_B = merged column 4.
  std::uint32_t target = 0;
  for (int r = 0; r < kRows; ++r) {
    target |= 1u << (r * kColsMerged + 0);
    target |= 1u << (r * kColsMerged + 4);
  }
  xx_subset_ = solve_joint_subset(merged_, CheckType::kX, target);
}

Qubit LatticeSurgery::merged_data_register(int merged_local) const {
  if (merged_local < 0 ||
      merged_local >= kRows * kColsMerged) {
    throw std::out_of_range("lattice surgery: merged data out of range");
  }
  const int row = merged_local / kColsMerged;
  const int col = merged_local % kColsMerged;
  if (col < kSeamCol) {
    return registers_.base_a + static_cast<Qubit>(row * 3 + col);
  }
  if (col == kSeamCol) {
    return registers_.routing + static_cast<Qubit>(row);
  }
  return registers_.base_b + static_cast<Qubit>(row * 3 + (col - 4));
}

Circuit LatticeSurgery::seam_preparation_circuit() const {
  Circuit circuit{"surgery-seam-prep"};
  TimeSlot slot;
  for (int r = 0; r < kRoutingQubits; ++r) {
    slot.add(Operation{GateType::kPrepZ,
                       registers_.routing + static_cast<Qubit>(r)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit LatticeSurgery::merged_esm_circuit() const {
  // Generate over merged-local indices and remap onto the registers.
  const Circuit local = merged_.esm_circuit(0);
  const auto data_count = static_cast<Qubit>(merged_.num_data());
  const auto remap = [&](Qubit q) {
    if (q < data_count) {
      return merged_data_register(static_cast<int>(q));
    }
    return registers_.merged_ancillas + (q - data_count);
  };
  Circuit out{"surgery-merged-esm"};
  for (const TimeSlot& slot : local) {
    TimeSlot mapped;
    for (const Operation& op : slot) {
      if (op.arity() == 1) {
        mapped.add(Operation{op.gate(), remap(op.qubit(0))});
      } else {
        mapped.add(
            Operation{op.gate(), remap(op.qubit(0)), remap(op.qubit(1))});
      }
    }
    out.append_slot(std::move(mapped));
  }
  return out;
}

int LatticeSurgery::joint_xx_sign(
    const std::vector<std::uint8_t>& round) const {
  if (round.size() != merged_.num_checks()) {
    throw std::invalid_argument("lattice surgery: round size mismatch");
  }
  int sign = +1;
  for (int k : xx_subset_) {
    if (round[static_cast<std::size_t>(k)]) {
      sign = -sign;
    }
  }
  return sign;
}

Circuit LatticeSurgery::split_circuit() const {
  Circuit circuit{"surgery-split"};
  TimeSlot slot;
  for (int r = 0; r < kRoutingQubits; ++r) {
    slot.add(Operation{GateType::kMeasureZ,
                       registers_.routing + static_cast<Qubit>(r)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

int LatticeSurgery::merged_check_at(int site_i, int site_j) const {
  for (std::size_t k = 0; k < merged_.num_checks(); ++k) {
    if (merged_.checks()[k].site_i == site_i &&
        merged_.checks()[k].site_j == site_j) {
      return static_cast<int>(k);
    }
  }
  throw std::logic_error("lattice surgery: no check at that site");
}

LatticeSurgery::SplitFixups LatticeSurgery::split_fixups(
    const std::vector<std::uint8_t>& merged_round,
    const std::array<bool, kRoutingQubits>& routing_outcomes) const {
  if (merged_round.size() != merged_.num_checks()) {
    throw std::invalid_argument("lattice surgery: round size mismatch");
  }
  SplitFixups fixups;
  // A's right-boundary Z check Z{(1,2),(2,2)} equals the merged seam
  // check at site (2,3) times Z on routing rows 1 and 2.
  {
    const int k = merged_check_at(2, 3);
    const bool sign = (merged_round[static_cast<std::size_t>(k)] != 0) ^
                      routing_outcomes[1] ^ routing_outcomes[2];
    fixups.fix_a_seam_check = sign;
  }
  // B's left-boundary Z check Z{B(0,0),B(1,0)} equals the merged seam
  // check at site (1,4) times Z on routing rows 0 and 1.
  {
    const int k = merged_check_at(1, 4);
    const bool sign = (merged_round[static_cast<std::size_t>(k)] != 0) ^
                      routing_outcomes[0] ^ routing_outcomes[1];
    fixups.fix_b_seam_check = sign;
  }
  // Z_A Z_B = Z_merged * Z(routing row 0).
  fixups.zz_sign = routing_outcomes[0] ? -1 : +1;
  return fixups;
}

Circuit LatticeSurgery::gauge_fixup_circuit(const SplitFixups& fixups) const {
  Circuit circuit{"surgery-gauge-fixups"};
  TimeSlot slot;
  if (fixups.fix_a_seam_check) {
    // X on A(2,2): flips only A's right-boundary Z check; away from
    // both A logicals (row 0 / column 0).
    slot.add(Operation{GateType::kX, registers_.base_a + 8});
  }
  if (fixups.fix_b_seam_check) {
    // X chain B(1,0), B(2,0): flips only B's left-boundary Z check
    // Z{B(0,0),B(1,0)}; avoids B's row 0, and commutes with X_B.
    slot.add(Operation{GateType::kX, registers_.base_b + 3});
    slot.add(Operation{GateType::kX, registers_.base_b + 6});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit LatticeSurgery::zz_fixup_circuit() const {
  Circuit circuit{"surgery-zz-fixup"};
  TimeSlot slot;
  for (int local : patch_.logical_x_data()) {
    slot.add(Operation{GateType::kX,
                       registers_.base_b + static_cast<Qubit>(local)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

// ----------------------------------------------------------------------
// RoughLatticeSurgery (vertical seam, joint Z_A Z_B measurement)
// ----------------------------------------------------------------------

namespace {
constexpr int kRowsMergedV = 7;
constexpr int kColsV = 3;
constexpr int kSeamRow = 3;
}  // namespace

RoughLatticeSurgery::RoughLatticeSurgery(const Registers& registers)
    : registers_(registers), patch_(3), merged_(kRowsMergedV, kColsV) {
  // Z_A = merged row 0, Z_B = merged row 4.
  std::uint32_t target = 0;
  for (int c = 0; c < kColsV; ++c) {
    target |= 1u << (0 * kColsV + c);
    target |= 1u << (4 * kColsV + c);
  }
  zz_subset_ = solve_joint_subset(merged_, CheckType::kZ, target);
}

Qubit RoughLatticeSurgery::merged_data_register(int merged_local) const {
  if (merged_local < 0 || merged_local >= kRowsMergedV * kColsV) {
    throw std::out_of_range("lattice surgery: merged data out of range");
  }
  const int row = merged_local / kColsV;
  const int col = merged_local % kColsV;
  if (row < kSeamRow) {
    return registers_.base_a + static_cast<Qubit>(row * 3 + col);
  }
  if (row == kSeamRow) {
    return registers_.routing + static_cast<Qubit>(col);
  }
  return registers_.base_b + static_cast<Qubit>((row - 4) * 3 + col);
}

Circuit RoughLatticeSurgery::seam_preparation_circuit() const {
  Circuit circuit{"rough-surgery-seam-prep"};
  TimeSlot prep;
  for (int c = 0; c < kRoutingQubits; ++c) {
    prep.add(Operation{GateType::kPrepZ,
                       registers_.routing + static_cast<Qubit>(c)});
  }
  circuit.append_slot(std::move(prep));
  TimeSlot hadamards;
  for (int c = 0; c < kRoutingQubits; ++c) {
    hadamards.add(
        Operation{GateType::kH, registers_.routing + static_cast<Qubit>(c)});
  }
  circuit.append_slot(std::move(hadamards));
  return circuit;
}

Circuit RoughLatticeSurgery::merged_esm_circuit() const {
  const Circuit local = merged_.esm_circuit(0);
  const auto data_count = static_cast<Qubit>(merged_.num_data());
  const auto remap = [&](Qubit q) {
    if (q < data_count) {
      return merged_data_register(static_cast<int>(q));
    }
    return registers_.merged_ancillas + (q - data_count);
  };
  Circuit out{"rough-surgery-merged-esm"};
  for (const TimeSlot& slot : local) {
    TimeSlot mapped;
    for (const Operation& op : slot) {
      if (op.arity() == 1) {
        mapped.add(Operation{op.gate(), remap(op.qubit(0))});
      } else {
        mapped.add(
            Operation{op.gate(), remap(op.qubit(0)), remap(op.qubit(1))});
      }
    }
    out.append_slot(std::move(mapped));
  }
  return out;
}

int RoughLatticeSurgery::joint_zz_sign(
    const std::vector<std::uint8_t>& round) const {
  if (round.size() != merged_.num_checks()) {
    throw std::invalid_argument("lattice surgery: round size mismatch");
  }
  int sign = +1;
  for (int k : zz_subset_) {
    if (round[static_cast<std::size_t>(k)]) {
      sign = -sign;
    }
  }
  return sign;
}

Circuit RoughLatticeSurgery::split_circuit() const {
  Circuit circuit{"rough-surgery-split"};
  TimeSlot hadamards;
  for (int c = 0; c < kRoutingQubits; ++c) {
    hadamards.add(
        Operation{GateType::kH, registers_.routing + static_cast<Qubit>(c)});
  }
  circuit.append_slot(std::move(hadamards));
  TimeSlot readout;
  for (int c = 0; c < kRoutingQubits; ++c) {
    readout.add(Operation{GateType::kMeasureZ,
                          registers_.routing + static_cast<Qubit>(c)});
  }
  circuit.append_slot(std::move(readout));
  return circuit;
}

int RoughLatticeSurgery::merged_check_at(int site_i, int site_j) const {
  for (std::size_t k = 0; k < merged_.num_checks(); ++k) {
    if (merged_.checks()[k].site_i == site_i &&
        merged_.checks()[k].site_j == site_j) {
      return static_cast<int>(k);
    }
  }
  throw std::logic_error("lattice surgery: no check at that site");
}

RoughLatticeSurgery::SplitFixups RoughLatticeSurgery::split_fixups(
    const std::vector<std::uint8_t>& merged_round,
    const std::array<bool, kRoutingQubits>& routing_outcomes) const {
  if (merged_round.size() != merged_.num_checks()) {
    throw std::invalid_argument("lattice surgery: round size mismatch");
  }
  SplitFixups fixups;
  // A's bottom X check X{A(2,0), A(2,1)} equals the merged seam X check
  // at site (3,1) times X on routing columns 0 and 1.
  {
    const int k = merged_check_at(3, 1);
    fixups.fix_a_seam_check =
        (merged_round[static_cast<std::size_t>(k)] != 0) ^
        routing_outcomes[0] ^ routing_outcomes[1];
  }
  // B's top X check X{B(0,1), B(0,2)} equals the merged seam X check at
  // site (4,2) times X on routing columns 1 and 2.
  {
    const int k = merged_check_at(4, 2);
    fixups.fix_b_seam_check =
        (merged_round[static_cast<std::size_t>(k)] != 0) ^
        routing_outcomes[1] ^ routing_outcomes[2];
  }
  // X_A X_B = X_merged * X(routing column 0).
  fixups.xx_sign = routing_outcomes[0] ? -1 : +1;
  return fixups;
}

Circuit RoughLatticeSurgery::gauge_fixup_circuit(
    const SplitFixups& fixups) const {
  Circuit circuit{"rough-surgery-gauge-fixups"};
  TimeSlot slot;
  if (fixups.fix_a_seam_check) {
    // Z chain A(2,1), A(2,2): flips only A's bottom X check; avoids
    // column 0 (X_A) and commutes with Z_A.
    slot.add(Operation{GateType::kZ, registers_.base_a + 7});
    slot.add(Operation{GateType::kZ, registers_.base_a + 8});
  }
  if (fixups.fix_b_seam_check) {
    // Z on B(0,2): flips only B's top X check; not on column 0.
    slot.add(Operation{GateType::kZ, registers_.base_b + 2});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit RoughLatticeSurgery::xx_fixup_circuit() const {
  Circuit circuit{"rough-surgery-xx-fixup"};
  TimeSlot slot;
  for (int local : patch_.logical_z_data()) {
    slot.add(Operation{GateType::kZ,
                       registers_.base_b + static_cast<Qubit>(local)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

}  // namespace qpf::qec

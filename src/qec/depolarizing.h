// Symmetric depolarizing error model (thesis §5.3.1, following [11,19]).
//
// With physical error rate p:
//  * every single-qubit operation (gates, preparation, and explicit
//    idling — an idle time slot counts as an identity gate) suffers one
//    of {X, Y, Z} afterwards with probability p/3 each;
//  * a measurement suffers an X flip *before* readout with probability p;
//  * a two-qubit gate suffers one of the 15 non-identity two-qubit Pauli
//    combinations with probability p/15 each.
#pragma once

#include <cstdint>
#include <random>

#include "circuit/circuit.h"
#include "journal/snapshot.h"

namespace qpf::qec {

/// Tally of injected faults, for diagnostics and tests.
struct ErrorTally {
  std::size_t single_qubit = 0;
  std::size_t two_qubit = 0;
  std::size_t measurement_flips = 0;
  std::size_t idle = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return single_qubit + two_qubit + measurement_flips + idle;
  }
};

class DepolarizingModel {
 public:
  /// Throws std::invalid_argument unless 0 <= p <= 1.
  DepolarizingModel(double p, std::uint64_t seed);

  [[nodiscard]] double physical_error_rate() const noexcept { return p_; }

  /// Rewrite a circuit with sampled faults inserted.  `num_qubits` is
  /// the register size, needed to charge idle errors to untouched
  /// qubits in every slot.
  [[nodiscard]] Circuit inject(const Circuit& circuit,
                               std::size_t num_qubits);

  [[nodiscard]] const ErrorTally& tally() const noexcept { return tally_; }
  void reset_tally() noexcept { tally_ = {}; }

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize the RNG engine (exactly) and the fault tally; the rate
  /// itself is configuration, echoed only for a consistency check.
  void save(journal::SnapshotWriter& out) const;

  /// Restore into this model.  Throws qpf::CheckpointError on stream
  /// corruption or a physical-error-rate mismatch.
  void load(journal::SnapshotReader& in);

 private:
  /// Uniformly pick X, Y or Z.
  [[nodiscard]] GateType random_pauli();
  [[nodiscard]] bool flip(double probability);

  double p_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  ErrorTally tally_;
};

}  // namespace qpf::qec

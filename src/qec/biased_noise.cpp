#include "qec/biased_noise.h"

#include <stdexcept>

#include "circuit/error.h"
#include <vector>

namespace qpf::qec {

BiasedNoiseModel::BiasedNoiseModel(double p, double eta, std::uint64_t seed)
    : p_(p),
      eta_(eta),
      px_(p / (2.0 * (eta + 1.0))),
      pz_(p * eta / (eta + 1.0)),
      rng_(seed) {
  if (p < 0.0 || p > 1.0) {
    throw StackConfigError("BiasedNoiseModel", "p out of [0,1]");
  }
  if (eta <= 0.0) {
    throw StackConfigError("BiasedNoiseModel", "eta must be positive");
  }
}

bool BiasedNoiseModel::flip(double probability) {
  return uniform_(rng_) < probability;
}

GateType BiasedNoiseModel::biased_pauli() {
  // Conditional weights given an error: X : Y : Z = px : px : pz.
  const double u = uniform_(rng_) * (2.0 * px_ + pz_);
  if (u < px_) {
    return GateType::kX;
  }
  if (u < 2.0 * px_) {
    return GateType::kY;
  }
  return GateType::kZ;
}

Circuit BiasedNoiseModel::inject(const Circuit& circuit,
                                 std::size_t num_qubits) {
  if (circuit.min_register_size() > num_qubits) {
    throw StackConfigError("BiasedNoiseModel", "register too small");
  }
  Circuit out{circuit.name()};
  for (const TimeSlot& slot : circuit) {
    TimeSlot pre;
    TimeSlot post;
    std::vector<bool> busy(num_qubits, false);
    for (const Operation& op : slot) {
      for (int i = 0; i < op.arity(); ++i) {
        busy[op.qubit(i)] = true;
      }
      switch (category(op.gate())) {
        case GateCategory::kMeasurement:
          if (flip(p_)) {
            pre.add(Operation{GateType::kX, op.qubit(0)});
            ++tally_.measurement_flips;
          }
          break;
        case GateCategory::kInitialization:
          if (flip(p_)) {
            post.add(Operation{biased_pauli(), op.qubit(0)});
            ++tally_.single_qubit;
          }
          break;
        default:
          if (op.arity() == 1) {
            if (flip(p_)) {
              post.add(Operation{biased_pauli(), op.qubit(0)});
              ++tally_.single_qubit;
            }
          } else if (flip(p_)) {
            // At least one operand faults; each side independently
            // draws identity with the complementary weight.
            GateType first = GateType::kI;
            GateType second = GateType::kI;
            while (first == GateType::kI && second == GateType::kI) {
              first = flip(0.5) ? biased_pauli() : GateType::kI;
              second = flip(0.5) ? biased_pauli() : GateType::kI;
            }
            if (first != GateType::kI) {
              post.add(Operation{first, op.qubit(0)});
            }
            if (second != GateType::kI) {
              post.add(Operation{second, op.qubit(1)});
            }
            ++tally_.two_qubit;
          }
          break;
      }
    }
    for (Qubit q = 0; q < num_qubits; ++q) {
      if (!busy[q] && flip(p_)) {
        post.add(Operation{biased_pauli(), q});
        ++tally_.idle;
      }
    }
    out.append_slot(std::move(pre));
    out.append_slot(slot);
    out.append_slot(std::move(post));
  }
  return out;
}

void BiasedNoiseModel::save(journal::SnapshotWriter& out) const {
  out.tag("biased-noise");
  out.write_double(p_);
  out.write_double(eta_);
  out.write_rng(rng_);
  out.write_size(tally_.single_qubit);
  out.write_size(tally_.two_qubit);
  out.write_size(tally_.measurement_flips);
  out.write_size(tally_.idle);
}

void BiasedNoiseModel::load(journal::SnapshotReader& in) {
  in.expect_tag("biased-noise");
  const double p = in.read_double();
  const double eta = in.read_double();
  if (p != p_ || eta != eta_) {
    throw CheckpointError("biased noise snapshot: rate / bias mismatch");
  }
  rng_ = in.read_rng();
  uniform_.reset();
  tally_.single_qubit = in.read_size();
  tally_.two_qubit = in.read_size();
  tally_.measurement_flips = in.read_size();
  tally_.idle = in.read_size();
}

}  // namespace qpf::qec

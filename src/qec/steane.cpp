#include "qec/steane.h"

namespace qpf::qec {

Circuit SteaneCode::reset_circuit(Qubit base) {
  Circuit circuit{"steane-reset"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    slot.add(Operation{GateType::kPrepZ, data_qubit(base, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SteaneCode::esm_circuit(Qubit base) {
  Circuit circuit{"steane-esm"};
  // X checks: ancilla in |+>, CNOTs onto the data, read in X basis.
  for (int i = 0; i < 3; ++i) {
    const Qubit a = ancilla_qubit(base, CheckType::kX, i);
    circuit.append(GateType::kPrepZ, a);
    circuit.append(GateType::kH, a);
    for (int d = 0; d < static_cast<int>(kNumData); ++d) {
      if (generator_mask(i) & (1u << d)) {
        circuit.append(GateType::kCnot, a, data_qubit(base, d));
      }
    }
    circuit.append(GateType::kH, a);
  }
  // Z checks: parity of the data accumulated into the ancilla.
  for (int i = 0; i < 3; ++i) {
    const Qubit a = ancilla_qubit(base, CheckType::kZ, i);
    circuit.append(GateType::kPrepZ, a);
    for (int d = 0; d < static_cast<int>(kNumData); ++d) {
      if (generator_mask(i) & (1u << d)) {
        circuit.append(GateType::kCnot, data_qubit(base, d), a);
      }
    }
  }
  // Read out every ancilla together in the final slot so the results
  // are never exposed to idling afterwards.
  TimeSlot readout;
  for (int i = 0; i < 3; ++i) {
    readout.add(Operation{GateType::kMeasureZ,
                          ancilla_qubit(base, CheckType::kX, i)});
  }
  for (int i = 0; i < 3; ++i) {
    readout.add(Operation{GateType::kMeasureZ,
                          ancilla_qubit(base, CheckType::kZ, i)});
  }
  circuit.append_slot(std::move(readout));
  return circuit;
}

std::vector<int> SteaneCode::esm_measurement_order() {
  return {7, 8, 9, 10, 11, 12};
}

Circuit SteaneCode::logical_x_circuit(Qubit base) {
  Circuit circuit{"steane-x_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    slot.add(Operation{GateType::kX, data_qubit(base, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SteaneCode::logical_z_circuit(Qubit base) {
  Circuit circuit{"steane-z_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    slot.add(Operation{GateType::kZ, data_qubit(base, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SteaneCode::logical_h_circuit(Qubit base) {
  Circuit circuit{"steane-h_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    slot.add(Operation{GateType::kH, data_qubit(base, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SteaneCode::logical_cnot_circuit(Qubit control_base,
                                         Qubit target_base) {
  Circuit circuit{"steane-cnot_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    slot.add(Operation{GateType::kCnot, data_qubit(control_base, d),
                       data_qubit(target_base, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SteaneCode::measure_circuit(Qubit base) {
  Circuit circuit{"steane-measure_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    slot.add(Operation{GateType::kMeasureZ, data_qubit(base, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

unsigned SteaneCode::signature(int d) {
  unsigned sig = 0;
  for (int i = 0; i < 3; ++i) {
    if (generator_mask(i) & (1u << d)) {
      sig |= 1u << i;
    }
  }
  return sig;
}

int SteaneCode::decode(unsigned syndrome) {
  if (syndrome == 0) {
    return -1;
  }
  for (int d = 0; d < static_cast<int>(kNumData); ++d) {
    if (signature(d) == syndrome) {
      return d;
    }
  }
  return -1;  // unreachable: all 7 nonzero syndromes are covered
}

}  // namespace qpf::qec

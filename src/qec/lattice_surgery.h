// Lattice surgery between two distance-3 rotated surface code patches
// (Horsman, Fowler, Devitt & Van Meter — the thesis' reference [14] for
// extending the SC17 operation set).
//
// The two patches sit side by side with one column of three routing
// qubits between them; merging forms a single 3x7 rotated patch.  With
// the seam initialized in |0>, measuring the merged patch's stabilizers
// performs a JOINT MEASUREMENT of X_A x X_B:
//   X_A (data column 0) and X_B (data column 4 of the merged patch) are
//   homologically equivalent in the merged code, so their product
//   equals a fixed product of merged X checks — the measured outcome is
//   read off the first merged ESM round.
// The merged logical Z = Z_A * Z(routing row 0) * Z_B commutes with the
// merge, so splitting (measuring the routing column in the Z basis)
// returns Z_A Z_B = (merged Z value) * (routing-0 outcome), up to the
// X-type fixups this class computes:
//   * two seam-adjacent boundary checks whose post-split signs are
//     classically determined by the merged checks and routing readout,
//     cleared by short X chains that avoid both logical operators;
//   * an optional logical X on patch B normalizing Z_A Z_B to +1.
//
// Two patches prepared in |0>_L and pushed through merge + split come
// out as a logical Bell pair: X_A X_B = m (the measured sign after
// fixups), Z_A Z_B = +1, with the individual logicals maximally mixed.
//
// This implementation targets the error-free verification setting (like
// the thesis' §5.1 logical-operation experiments); decoding surgery
// under noise is future work.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "qec/surface_code.h"

namespace qpf::qec {

class LatticeSurgery {
 public:
  /// Register allocation: each patch uses the SurfaceCodeLayout(3)
  /// convention (9 data + 8 ancillas at its base); `routing` points at
  /// 3 consecutive qubits; `merged_ancillas` at 20 consecutive qubits
  /// used only while merged.
  struct Registers {
    Qubit base_a = 0;
    Qubit base_b = 17;
    Qubit routing = 34;
    Qubit merged_ancillas = 37;
  };

  static constexpr int kRoutingQubits = 3;
  static constexpr std::size_t kMergedAncillas = 20;  // 3*7 - 1

  LatticeSurgery() : LatticeSurgery(Registers{}) {}
  explicit LatticeSurgery(const Registers& registers);

  [[nodiscard]] const SurfaceCodeLayout& patch_layout() const noexcept {
    return patch_;
  }
  [[nodiscard]] const SurfaceCodeLayout& merged_layout() const noexcept {
    return merged_;
  }
  [[nodiscard]] const Registers& registers() const noexcept {
    return registers_;
  }

  /// Register qubit of merged data local (row-major over the 3x7 grid).
  [[nodiscard]] Qubit merged_data_register(int merged_local) const;

  /// Prepare the routing column in |0>.
  [[nodiscard]] Circuit seam_preparation_circuit() const;

  /// One ESM round of the merged 3x7 patch, remapped onto the real
  /// registers.
  [[nodiscard]] Circuit merged_esm_circuit() const;

  /// Ancilla-register readout order of merged_esm_circuit: merged check
  /// k is measured on registers().merged_ancillas + k.
  [[nodiscard]] std::size_t merged_checks() const noexcept {
    return merged_.num_checks();
  }

  /// The merged X checks whose product equals X_A x X_B.
  [[nodiscard]] const std::vector<int>& xx_check_subset() const noexcept {
    return xx_subset_;
  }

  /// Joint X_A X_B outcome (+1/-1) from one merged round (bit k =
  /// outcome of merged check k).
  [[nodiscard]] int joint_xx_sign(const std::vector<std::uint8_t>& round) const;

  /// Split: measure the routing column in the Z basis.
  [[nodiscard]] Circuit split_circuit() const;

  /// Classical post-split bookkeeping.
  struct SplitFixups {
    bool fix_a_seam_check = false;  ///< A's right-boundary Z check reads -1
    bool fix_b_seam_check = false;  ///< B's left-boundary Z check reads -1
    /// Sign contributed to Z_A Z_B by the routing-row-0 readout; the
    /// full relation is Z_A Z_B = zz_sign * (pre-merge Z_A Z_B value).
    int zz_sign = +1;
  };

  /// Compute the fixups from the last merged round and the routing
  /// readout (index r = routing qubit in row r).
  [[nodiscard]] SplitFixups split_fixups(
      const std::vector<std::uint8_t>& merged_round,
      const std::array<bool, kRoutingQubits>& routing_outcomes) const;

  /// Short X chains clearing the seam-check gauge; both chains avoid
  /// data row 0 (Z logicals) and commute with the X logicals.
  [[nodiscard]] Circuit gauge_fixup_circuit(const SplitFixups& fixups) const;

  /// Logical X on patch B (its column 0), normalizing Z_A Z_B.
  [[nodiscard]] Circuit zz_fixup_circuit() const;

 private:
  [[nodiscard]] int merged_check_at(int site_i, int site_j) const;

  Registers registers_;
  SurfaceCodeLayout patch_;   // 3x3
  SurfaceCodeLayout merged_;  // 3x7
  std::vector<int> xx_subset_;
};

/// Rough (vertical) lattice surgery: the dual of LatticeSurgery.
///
/// The two patches are stacked with a 3-qubit routing ROW between them
/// (merged patch: 7x3).  With the seam initialized in |+>, measuring
/// the merged stabilizers performs a joint measurement of Z_A x Z_B
/// (the two horizontal Z logicals, rows 0 and 4 of the merged patch,
/// are homologically equivalent); splitting measures the routing row in
/// the X basis, preserving X_A X_B = (merged X value) * (routing col-0
/// outcome) up to Z-type fixups mirroring the smooth case.
///
/// Together the two merges implement the lattice-surgery CNOT of [14]:
/// with an ancilla patch in |+>_L, measure Z_C Z_A (rough), X_A X_T
/// (smooth), then Z_A transversally; Pauli-correct X_T and Z_C from the
/// three outcomes.  See tests/test_lattice_surgery.cpp.
class RoughLatticeSurgery {
 public:
  struct Registers {
    Qubit base_a = 0;
    Qubit base_b = 17;
    Qubit routing = 34;
    Qubit merged_ancillas = 37;
  };

  static constexpr int kRoutingQubits = 3;

  RoughLatticeSurgery() : RoughLatticeSurgery(Registers{}) {}
  explicit RoughLatticeSurgery(const Registers& registers);

  [[nodiscard]] const SurfaceCodeLayout& patch_layout() const noexcept {
    return patch_;
  }
  [[nodiscard]] const SurfaceCodeLayout& merged_layout() const noexcept {
    return merged_;
  }
  [[nodiscard]] const Registers& registers() const noexcept {
    return registers_;
  }

  /// Register qubit of merged data local (row-major over the 7x3 grid).
  [[nodiscard]] Qubit merged_data_register(int merged_local) const;

  /// Prepare the routing row in |+> (reset + H).
  [[nodiscard]] Circuit seam_preparation_circuit() const;

  /// One merged ESM round, remapped onto the real registers.
  [[nodiscard]] Circuit merged_esm_circuit() const;
  [[nodiscard]] std::size_t merged_checks() const noexcept {
    return merged_.num_checks();
  }

  /// The merged Z checks whose product equals Z_A x Z_B.
  [[nodiscard]] const std::vector<int>& zz_check_subset() const noexcept {
    return zz_subset_;
  }
  /// Joint Z_A Z_B outcome from one merged round.
  [[nodiscard]] int joint_zz_sign(const std::vector<std::uint8_t>& round) const;

  /// Split: measure the routing row in the X basis (H, then measure).
  [[nodiscard]] Circuit split_circuit() const;

  struct SplitFixups {
    bool fix_a_seam_check = false;  ///< A's bottom X check reads -1
    bool fix_b_seam_check = false;  ///< B's top X check reads -1
    /// Sign contributed to X_A X_B by the routing col-0 readout.
    int xx_sign = +1;
  };

  [[nodiscard]] SplitFixups split_fixups(
      const std::vector<std::uint8_t>& merged_round,
      const std::array<bool, kRoutingQubits>& routing_outcomes) const;

  /// Short Z chains clearing the seam-check gauge; both avoid data
  /// column 0 (the X logicals) and commute with the Z logicals.
  [[nodiscard]] Circuit gauge_fixup_circuit(const SplitFixups& fixups) const;

  /// Logical Z on patch B (its row 0), normalizing X_A X_B.
  [[nodiscard]] Circuit xx_fixup_circuit() const;

 private:
  [[nodiscard]] int merged_check_at(int site_i, int site_j) const;

  Registers registers_;
  SurfaceCodeLayout patch_;   // 3x3
  SurfaceCodeLayout merged_;  // 7x3
  std::vector<int> zz_subset_;
};

}  // namespace qpf::qec

// Rule-based look-up-table decoder for distance-3 surface code patches
// (thesis §5.3.1; the scheme of Tomita & Svore as implemented by [37]).
//
// Spatial part: a 4-bit syndrome (one bit per parity check of a basis)
// maps through a precomputed LUT to the minimum-weight set of data
// qubits whose combined syndrome signature reproduces it.
//
// Temporal part: each window decodes from three rounds of ESM results
// (the last round of the previous window plus the two rounds of this
// window, Fig 5.9).  A per-bit majority vote over the three rounds
// filters single measurement errors; errors that only show in the last
// round are deferred to the next window, exactly one round later.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace qpf::qec {

/// Spatial LUT for one check basis.
class LutDecoder {
 public:
  /// check_masks[i] is the bitmask over the patch's data qubits covered
  /// by check bit i.  If even_overlap_mask is nonzero, every table
  /// entry is additionally constrained to overlap that data-qubit mask
  /// an even number of times — used by state injection, where the
  /// gauge-fix corrections must commute with the logical operators.
  /// Throws std::invalid_argument if some syndrome is not producible
  /// under the constraints.
  explicit LutDecoder(const std::array<std::uint16_t, 4>& check_masks,
                      int num_data_qubits = 9,
                      std::uint16_t even_overlap_mask = 0);

  /// Data-qubit indices to correct for a 4-bit syndrome.
  [[nodiscard]] const std::vector<int>& decode(unsigned syndrome) const;

  /// 4-bit syndrome signature a single error on data qubit q produces.
  [[nodiscard]] unsigned signature(int data_qubit) const;

  /// Combined signature of a set of corrections.
  [[nodiscard]] unsigned signature(const std::vector<int>& data_qubits) const;

 private:
  int num_data_;
  std::vector<unsigned> signatures_;        // per data qubit
  std::array<std::vector<int>, 16> table_;  // per syndrome
};

/// Three-round temporal filter: majority vote per check bit.
[[nodiscard]] constexpr unsigned majority_syndrome(unsigned r0, unsigned r1,
                                                   unsigned r2) noexcept {
  return (r0 & r1) | (r1 & r2) | (r0 & r2);
}

}  // namespace qpf::qec

// Distance-d rotated planar surface code (thesis future work: "repeat
// these experiments using a larger distance surface code").
//
// Geometry: d x d data qubits; candidate check sites at the (d+1)^2
// cell corners (i, j), each covering the up-to-four data qubits of the
// adjacent cell.  Interior sites are all kept; boundary sites are kept
// on alternating positions so the top/bottom boundaries host X checks
// and the left/right boundaries host Z checks.  Site (i, j) measures an
// X check when i + j is even.  For d = 3 this reproduces the SC17
// ninja star check set exactly (see SurfaceCodeTest.DistanceThreeIsSc17).
//
// Register layout: data qubits base+0..base+d^2-1 (row-major), then the
// d^2-1 ancillas in check order.
//
// ESM schedule: X checks interact NE, NW, SE, SW; Z checks NE, SE, NW,
// SW (the same mixed pattern as SC17); the schedule is conflict-free for
// every d.
//
// Decoding: MatchingDecoder pairs syndrome defects by minimum-weight
// matching on the check adjacency graph (BFS distances, exact
// subset-DP matching for small defect sets, greedy beyond), with chains
// allowed to terminate on the matching boundary.  Temporal handling
// reuses the window scheme: act only when the window's two rounds
// agree, defer otherwise (see qec/ninja_star.h).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "qec/sc17.h"  // CheckType

namespace qpf::qec {

/// One parity check of the distance-d code.
struct SurfaceCheck {
  CheckType type;
  int ancilla = 0;               ///< local ancilla index, 0..d^2-2
  int site_i = 0;                ///< corner-lattice coordinates
  int site_j = 0;
  std::array<int, 4> data{};     ///< local data index per CNOT slot; -1 idle
  std::vector<int> support;      ///< covered data qubits, ascending
};

class SurfaceCodeLayout {
 public:
  /// Square distance-d patch.  Throws std::invalid_argument unless
  /// distance is odd and >= 3.
  explicit SurfaceCodeLayout(int distance);

  /// Rectangular rows x cols patch (both odd, >= 3) — used by lattice
  /// surgery for merged patches.  X distance = rows, Z distance = cols.
  SurfaceCodeLayout(int rows, int cols);

  /// min(rows, cols): the code distance.
  [[nodiscard]] int distance() const noexcept {
    return rows_ < cols_ ? rows_ : cols_;
  }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t num_data() const noexcept {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }
  [[nodiscard]] std::size_t num_checks() const noexcept {
    return checks_.size();
  }
  [[nodiscard]] std::size_t num_qubits() const noexcept {
    return num_data() + num_checks();
  }

  [[nodiscard]] const std::vector<SurfaceCheck>& checks() const noexcept {
    return checks_;
  }

  /// Indices (into checks()) of the checks of one basis, ascending.
  [[nodiscard]] const std::vector<int>& checks_of(CheckType type) const noexcept {
    return type == CheckType::kX ? x_checks_ : z_checks_;
  }

  /// Logical operator chains: Z_L along data row 0 (left-right),
  /// X_L along data column 0 (top-bottom).
  [[nodiscard]] std::vector<int> logical_z_data() const;
  [[nodiscard]] std::vector<int> logical_x_data() const;

  [[nodiscard]] Qubit data_qubit(Qubit base, int local) const {
    return base + static_cast<Qubit>(local);
  }
  [[nodiscard]] Qubit ancilla_qubit(Qubit base, int ancilla) const {
    return base + static_cast<Qubit>(num_data()) +
           static_cast<Qubit>(ancilla);
  }

  /// One full ESM round (8 time slots as in Table 5.8).
  [[nodiscard]] Circuit esm_circuit(Qubit base) const;
  /// Ancilla measurement order of esm_circuit (= check order).
  [[nodiscard]] std::vector<int> esm_measurement_order() const;

  /// Reset all data qubits to |0>.
  [[nodiscard]] Circuit reset_circuit(Qubit base) const;
  /// Transversal H on all data (used as |+>_L preparation).
  [[nodiscard]] Circuit transversal_h_circuit(Qubit base) const;
  /// Transversal measurement of all data.
  [[nodiscard]] Circuit measure_circuit(Qubit base) const;
  /// Fig 5.10 generalization: non-destructive logical-operator parity
  /// readout borrowing local ancilla 0.
  [[nodiscard]] Circuit logical_stabilizer_circuit(Qubit base,
                                                   CheckType basis) const;

 private:
  int rows_;
  int cols_;
  std::vector<SurfaceCheck> checks_;
  std::vector<int> x_checks_;
  std::vector<int> z_checks_;
};

/// Minimum-weight-matching decoder for one check basis of the layout.
class MatchingDecoder {
 public:
  MatchingDecoder(const SurfaceCodeLayout& layout, CheckType basis);

  /// Decode a defect set (indices into layout.checks_of(basis), i.e.
  /// positions within the basis group) to the minimum-weight set of
  /// data qubits to flip.  The correction always clears the syndrome.
  [[nodiscard]] std::vector<int> decode(
      const std::vector<int>& defects) const;

  /// Group syndrome bits a set of data errors would produce.
  [[nodiscard]] std::vector<int> signature(
      const std::vector<int>& data_locals) const;

  [[nodiscard]] CheckType basis() const noexcept { return basis_; }

 private:
  static constexpr int kBoundary = -1;

  /// Data qubits along the precomputed shortest chain between two
  /// defects (or a defect and the boundary).
  [[nodiscard]] const std::vector<int>& chain(int from, int to) const;
  [[nodiscard]] int chain_length(int from, int to) const;

  CheckType basis_;
  std::size_t group_size_;
  // dist_[a][b] and path_[a][b]: a, b in 0..group_size (last = boundary).
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<std::vector<int>>> path_;
  std::vector<std::vector<int>> data_signature_;  // per data local
};

}  // namespace qpf::qec

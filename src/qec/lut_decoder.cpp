#include "qec/lut_decoder.h"

#include <stdexcept>

namespace qpf::qec {

LutDecoder::LutDecoder(const std::array<std::uint16_t, 4>& check_masks,
                       int num_data_qubits,
                       std::uint16_t even_overlap_mask)
    : num_data_(num_data_qubits) {
  if (num_data_qubits <= 0 || num_data_qubits > 16) {
    throw std::invalid_argument("LutDecoder: bad data qubit count");
  }
  signatures_.resize(static_cast<std::size_t>(num_data_qubits), 0);
  for (int q = 0; q < num_data_qubits; ++q) {
    unsigned sig = 0;
    for (unsigned bit = 0; bit < 4; ++bit) {
      if (check_masks[bit] & (1u << q)) {
        sig |= 1u << bit;
      }
    }
    signatures_[static_cast<std::size_t>(q)] = sig;
  }

  // Fill the table with the minimum-weight correction per syndrome by
  // breadth-first enumeration over subset weight.
  std::array<bool, 16> filled{};
  table_[0] = {};
  filled[0] = true;
  std::vector<std::vector<int>> frontier{{}};
  while (true) {
    bool all_filled = true;
    for (bool f : filled) {
      all_filled = all_filled && f;
    }
    if (all_filled || frontier.empty()) {
      break;
    }
    std::vector<std::vector<int>> next;
    for (const std::vector<int>& subset : frontier) {
      const int start = subset.empty() ? 0 : subset.back() + 1;
      for (int q = start; q < num_data_; ++q) {
        std::vector<int> candidate = subset;
        candidate.push_back(q);
        unsigned sig = 0;
        int overlap = 0;
        for (int c : candidate) {
          sig ^= signatures_[static_cast<std::size_t>(c)];
          overlap += (even_overlap_mask >> c) & 1;
        }
        if (!filled[sig] && overlap % 2 == 0) {
          filled[sig] = true;
          table_[sig] = candidate;
        }
        next.push_back(std::move(candidate));
      }
    }
    frontier = std::move(next);
  }
  for (unsigned s = 0; s < 16; ++s) {
    if (!filled[s]) {
      throw std::invalid_argument(
          "LutDecoder: syndrome space not covered by check masks");
    }
  }
}

const std::vector<int>& LutDecoder::decode(unsigned syndrome) const {
  if (syndrome >= 16) {
    throw std::out_of_range("LutDecoder: syndrome out of range");
  }
  return table_[syndrome];
}

unsigned LutDecoder::signature(int data_qubit) const {
  if (data_qubit < 0 || data_qubit >= num_data_) {
    throw std::out_of_range("LutDecoder: data qubit out of range");
  }
  return signatures_[static_cast<std::size_t>(data_qubit)];
}

unsigned LutDecoder::signature(const std::vector<int>& data_qubits) const {
  unsigned sig = 0;
  for (int q : data_qubits) {
    sig ^= signature(q);
  }
  return sig;
}

}  // namespace qpf::qec

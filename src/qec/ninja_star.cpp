#include "qec/ninja_star.h"

#include <stdexcept>

#include "circuit/bug_plant.h"

namespace qpf::qec {

namespace {

std::array<std::uint16_t, 4> group_masks(const std::vector<Check>& checks,
                                         int first_ancilla) {
  std::array<std::uint16_t, 4> masks{};
  for (const Check& check : checks) {
    const int offset = check.ancilla - first_ancilla;
    if (offset >= 0 && offset < 4) {
      masks[static_cast<std::size_t>(offset)] = check.mask;
    }
  }
  return masks;
}

// Transversal pairing when the two lattices are rotated relative to
// each other (§2.6.1): CNOTs run between (A_Dn, B_pair[n]).
constexpr std::array<int, 9> kRotatedPairing{6, 3, 0, 7, 4, 1, 8, 5, 2};

// Merge an X and a Z correction on the same qubit into a single Y so the
// whole correction set fits one time slot (the paper's 1-slot
// correction budget, §5.3.2).
std::vector<Operation> merge_corrections(std::vector<Operation> corrections) {
  std::vector<Operation> merged;
  for (const Operation& op : corrections) {
    bool combined = false;
    for (Operation& existing : merged) {
      if (existing.qubit(0) == op.qubit(0)) {
        // The only possible combination is X + Z (each basis decodes
        // at most one Pauli per qubit).
        existing = Operation{GateType::kY, op.qubit(0)};
        combined = true;
        break;
      }
    }
    if (!combined) {
      merged.push_back(op);
    }
  }
  return merged;
}

}  // namespace

namespace {
constexpr std::uint16_t kLogicalXChainMask = 0b001010100;  // D2, D4, D6
constexpr std::uint16_t kLogicalZChainMask = 0b100010001;  // D0, D4, D8
}  // namespace

NinjaStar::NinjaStar(Qubit base, const Sc17Layout* layout)
    : base_(base),
      layout_(layout),
      lut_low_(group_masks(layout->checks(), 0)),
      lut_high_(group_masks(layout->checks(), 4)),
      lut_low_injection_(group_masks(layout->checks(), 0), 9,
                         kLogicalXChainMask),
      lut_high_injection_(group_masks(layout->checks(), 4), 9,
                          kLogicalZChainMask) {
  if (layout == nullptr) {
    throw std::invalid_argument("NinjaStar: null layout");
  }
}

Circuit NinjaStar::reset_circuit() const {
  Circuit circuit{"reset_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    slot.add(Operation{GateType::kPrepZ, Sc17Layout::data_qubit(base_, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit NinjaStar::logical_x_circuit() const {
  Circuit circuit{"x_L"};
  TimeSlot slot;
  for (int d : layout_->logical_x_data(orientation_)) {
    slot.add(Operation{GateType::kX, Sc17Layout::data_qubit(base_, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit NinjaStar::logical_z_circuit() const {
  Circuit circuit{"z_L"};
  TimeSlot slot;
  for (int d : layout_->logical_z_data(orientation_)) {
    slot.add(Operation{GateType::kZ, Sc17Layout::data_qubit(base_, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit NinjaStar::logical_h_circuit() const {
  Circuit circuit{"h_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    slot.add(Operation{GateType::kH, Sc17Layout::data_qubit(base_, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit NinjaStar::measure_circuit() const {
  Circuit circuit{"measure_L"};
  TimeSlot slot;
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    slot.add(Operation{GateType::kMeasureZ, Sc17Layout::data_qubit(base_, d)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit NinjaStar::esm_circuit() const {
  return layout_->esm_circuit(base_, orientation_, dance_);
}

std::vector<int> NinjaStar::esm_measurement_order() const {
  return layout_->esm_measurement_order(orientation_, dance_);
}

Circuit NinjaStar::logical_stabilizer_circuit(CheckType basis) const {
  return layout_->logical_stabilizer_circuit(
      base_, basis, Sc17Layout::ancilla_qubit(base_, 0), orientation_);
}

Circuit NinjaStar::logical_cnot_circuit(const NinjaStar& control,
                                        const NinjaStar& target) {
  Circuit circuit{"cnot_L"};
  TimeSlot slot;
  const bool same = control.orientation_ == target.orientation_;
  for (int n = 0; n < 9; ++n) {
    const int m = same ? n : kRotatedPairing[static_cast<std::size_t>(n)];
    slot.add(Operation{GateType::kCnot,
                       Sc17Layout::data_qubit(control.base_, n),
                       Sc17Layout::data_qubit(target.base_, m)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit NinjaStar::logical_cz_circuit(const NinjaStar& a, const NinjaStar& b) {
  Circuit circuit{"cz_L"};
  TimeSlot slot;
  // Note the inverted rule relative to CNOT_L (§2.6.1): equal
  // orientations pair rotated, different orientations pair straight.
  const bool same = a.orientation_ == b.orientation_;
  for (int n = 0; n < 9; ++n) {
    const int m = same ? kRotatedPairing[static_cast<std::size_t>(n)] : n;
    slot.add(Operation{GateType::kCz, Sc17Layout::data_qubit(a.base_, n),
                       Sc17Layout::data_qubit(b.base_, m)});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

void NinjaStar::on_reset() noexcept {
  orientation_ = Orientation::kNormal;
  dance_ = DanceMode::kAll;
  state_ = StateValue::kZero;
  carried_ = 0;
}

void NinjaStar::on_logical_x() noexcept {
  if (state_ == StateValue::kZero) {
    state_ = StateValue::kOne;
  } else if (state_ == StateValue::kOne) {
    state_ = StateValue::kZero;
  }
}

void NinjaStar::on_logical_z() noexcept {
  // Z_L leaves the computational-basis value unchanged.
}

void NinjaStar::on_logical_h() noexcept {
  orientation_ = flip(orientation_);
  state_ = StateValue::kUnknown;
}

void NinjaStar::on_measured(int sign) noexcept {
  dance_ = DanceMode::kZOnly;
  state_ = sign >= 0 ? StateValue::kZero : StateValue::kOne;
}

void NinjaStar::on_logical_cnot(NinjaStar& control,
                                NinjaStar& target) noexcept {
  if (control.state_ == StateValue::kUnknown) {
    target.state_ = StateValue::kUnknown;
  } else if (control.state_ == StateValue::kOne) {
    target.on_logical_x();
  }
}

void NinjaStar::on_logical_cz(NinjaStar& a, NinjaStar& b) noexcept {
  // CZ_L is diagonal in the computational basis: values are unchanged,
  // but superposition states pick up phases the binary tracker cannot
  // represent, so nothing to update unless either value is unknown.
  (void)a;
  (void)b;
}

std::array<const Check*, 4> NinjaStar::group(CheckType t) const {
  std::array<const Check*, 4> out{};
  std::size_t i = 0;
  for (const Check& check : layout_->checks()) {
    if (check.effective_type(orientation_) == t) {
      out.at(i++) = &check;
    }
  }
  if (i != 4) {
    throw std::logic_error("NinjaStar: malformed check groups");
  }
  return out;
}

unsigned NinjaStar::extract(Syndrome s, const std::array<const Check*, 4>& g) {
  unsigned out = 0;
  for (unsigned bit = 0; bit < 4; ++bit) {
    if (s & (1u << g[bit]->ancilla)) {
      out |= 1u << bit;
    }
  }
  return out;
}

const LutDecoder& NinjaStar::lut(CheckType basis) const {
  const auto g = group(basis);
  return g[0]->ancilla < 4 ? lut_low_ : lut_high_;
}

std::array<int, 4> NinjaStar::group_ancillas(CheckType basis) const {
  const auto g = group(basis);
  std::array<int, 4> out{};
  for (std::size_t bit = 0; bit < 4; ++bit) {
    out[bit] = g[bit]->ancilla;
  }
  return out;
}

std::vector<Operation> NinjaStar::decode_window(Syndrome r1, Syndrome r2) {
  std::vector<Operation> corrections;
  Syndrome new_carry = r2;
  for (const CheckType check_basis : {CheckType::kZ, CheckType::kX}) {
    const auto g = group(check_basis);
    // The LUT is tied to the ancilla hardware group, not the basis.
    const LutDecoder& lut = g[0]->ancilla < 4 ? lut_low_ : lut_high_;
    const unsigned s0 = extract(carried_, g);
    const unsigned s1 = extract(r1, g);
    const unsigned s2 = extract(r2, g);
    // mutation hook 8: the agreement window slides one round back,
    // comparing the carried round against r1 instead of r1 vs r2.
    if (plant::bug(8) ? s0 != s1 : s1 != s2) {
      // The two rounds disagree: either a measurement error or an error
      // that struck mid-round (seen by only part of the group).  Acting
      // now on partial information can walk a correction chain into a
      // logical operator, so defer; r2 is carried into the next window,
      // where a real error shows consistently in all three rounds.
      continue;
    }
    const unsigned voted = majority_syndrome(s0, s1, s2);
    const std::vector<int>& data = lut.decode(voted);
    // Z checks flag X errors and vice versa.
    const GateType fix = check_basis == CheckType::kZ ? GateType::kX
                                                      : GateType::kZ;
    for (int d : data) {
      corrections.emplace_back(fix, Sc17Layout::data_qubit(base_, d));
    }
    // Applying the corrections flips their syndrome bits from the next
    // round on; fold that into the carried word.
    const unsigned sig = lut.signature(data);
    for (unsigned bit = 0; bit < 4; ++bit) {
      if (sig & (1u << bit)) {
        new_carry = static_cast<Syndrome>(new_carry ^
                                          (1u << g[bit]->ancilla));
      }
    }
  }
  carried_ = new_carry;
  return merge_corrections(std::move(corrections));
}

std::vector<Operation> NinjaStar::decode_initialization(Syndrome round) {
  std::vector<Operation> corrections;
  for (const CheckType check_basis : {CheckType::kZ, CheckType::kX}) {
    const auto g = group(check_basis);
    const LutDecoder& lut = g[0]->ancilla < 4 ? lut_low_ : lut_high_;
    const unsigned s = extract(round, g);
    const GateType fix =
        check_basis == CheckType::kZ ? GateType::kX : GateType::kZ;
    for (int d : lut.decode(s)) {
      corrections.emplace_back(fix, Sc17Layout::data_qubit(base_, d));
    }
  }
  // The LUT corrections reproduce the observed syndromes exactly, so
  // the post-correction syndrome is ideal.
  carried_ = 0;
  return merge_corrections(std::move(corrections));
}

std::vector<Operation> NinjaStar::decode_gauge(Syndrome round,
                                               CheckType gauge_basis) {
  const auto g = group(gauge_basis);
  const LutDecoder& lut = g[0]->ancilla < 4 ? lut_low_ : lut_high_;
  const unsigned s = extract(round, g);
  const GateType fix =
      gauge_basis == CheckType::kZ ? GateType::kX : GateType::kZ;
  std::vector<Operation> corrections;
  for (int d : lut.decode(s)) {
    corrections.emplace_back(fix, Sc17Layout::data_qubit(base_, d));
  }
  // Carry: gauge group cleared by construction, deferred group keeps
  // the observed bits for the next window.
  Syndrome carried = 0;
  for (const Check* check : group(gauge_basis == CheckType::kZ
                                      ? CheckType::kX
                                      : CheckType::kZ)) {
    carried = static_cast<Syndrome>(
        carried | (round & (1u << check->ancilla)));
  }
  carried_ = carried;
  return corrections;
}

std::vector<Operation> NinjaStar::decode_injection(Syndrome round) {
  if (orientation_ != Orientation::kNormal) {
    throw std::logic_error("decode_injection: normal orientation required");
  }
  std::vector<Operation> corrections;
  for (const CheckType check_basis : {CheckType::kZ, CheckType::kX}) {
    const auto g = group(check_basis);
    const LutDecoder& lut =
        g[0]->ancilla < 4 ? lut_low_injection_ : lut_high_injection_;
    const unsigned s = extract(round, g);
    const GateType fix =
        check_basis == CheckType::kZ ? GateType::kX : GateType::kZ;
    for (int d : lut.decode(s)) {
      corrections.emplace_back(fix, Sc17Layout::data_qubit(base_, d));
    }
  }
  carried_ = 0;
  return merge_corrections(std::move(corrections));
}

std::vector<int> NinjaStar::decode_partial_round(Syndrome syndrome) {
  const auto g = group(CheckType::kZ);
  const LutDecoder& lut = g[0]->ancilla < 4 ? lut_low_ : lut_high_;
  const unsigned s = extract(syndrome, g);
  return lut.decode(s);
}

Syndrome NinjaStar::signature(const std::vector<int>& data_locals,
                              CheckType error_basis) const {
  // An X error flips the effective-Z checks; a Z error the effective-X.
  const CheckType flagged =
      error_basis == CheckType::kX ? CheckType::kZ : CheckType::kX;
  const auto g = group(flagged);
  const LutDecoder& lut = g[0]->ancilla < 4 ? lut_low_ : lut_high_;
  const unsigned sig = lut.signature(data_locals);
  Syndrome out = 0;
  for (unsigned bit = 0; bit < 4; ++bit) {
    if (sig & (1u << bit)) {
      out = static_cast<Syndrome>(out | (1u << g[bit]->ancilla));
    }
  }
  return out;
}

void NinjaStar::save(journal::SnapshotWriter& out) const {
  out.tag("ninja-star");
  out.write_u32(base_);
  out.write_u8(static_cast<std::uint8_t>(orientation_));
  out.write_u8(static_cast<std::uint8_t>(dance_));
  out.write_u8(static_cast<std::uint8_t>(state_));
  out.write_u8(carried_);
}

void NinjaStar::load(journal::SnapshotReader& in) {
  in.expect_tag("ninja-star");
  const Qubit base = in.read_u32();
  if (base != base_) {
    throw CheckpointError("ninja star snapshot: base qubit mismatch");
  }
  const std::uint8_t orientation = in.read_u8();
  const std::uint8_t dance = in.read_u8();
  const std::uint8_t state = in.read_u8();
  if (orientation > static_cast<std::uint8_t>(Orientation::kRotated) ||
      dance > static_cast<std::uint8_t>(DanceMode::kZOnly) ||
      state > static_cast<std::uint8_t>(StateValue::kUnknown)) {
    throw CheckpointError("ninja star snapshot: invalid property byte");
  }
  orientation_ = static_cast<Orientation>(orientation);
  dance_ = static_cast<DanceMode>(dance);
  state_ = static_cast<StateValue>(state);
  carried_ = in.read_u8();
}

}  // namespace qpf::qec

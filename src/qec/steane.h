// Steane [[7,1,3]] code substrate (the thesis' SteaneLayer, §4.2.3).
//
// Stabilizers are the classical Hamming-code parities in both bases:
//   g1 = P3 P4 P5 P6,  g2 = P1 P2 P5 P6,  g3 = P0 P2 P4 P6
// for P in {X, Z}.  A single-qubit error's 3-bit syndrome is the binary
// index of the faulty qubit plus one — the code is perfect, so decoding
// is a direct lookup.  Logical X / Z are transversal (X or Z on all
// seven data qubits); H, CNOT and CZ are transversal as well.
//
// Register layout: data qubits base+0..base+6, X-check ancillas
// base+7..base+9, Z-check ancillas base+10..base+12.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "qec/sc17.h"  // CheckType

namespace qpf::qec {

class SteaneCode {
 public:
  static constexpr std::size_t kNumData = 7;
  static constexpr std::size_t kNumAncilla = 6;
  static constexpr std::size_t kNumQubits = kNumData + kNumAncilla;
  static constexpr std::size_t kDistance = 3;

  /// Data-qubit support of stabilizer generator i (0..2), as a bitmask.
  [[nodiscard]] static constexpr std::uint8_t generator_mask(int i) {
    constexpr std::array<std::uint8_t, 3> kMasks{
        0b1111000,  // qubits 3,4,5,6
        0b1100110,  // qubits 1,2,5,6
        0b1010101,  // qubits 0,2,4,6
    };
    return kMasks[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] static Qubit data_qubit(Qubit base, int d) {
    return base + static_cast<Qubit>(d);
  }
  [[nodiscard]] static Qubit ancilla_qubit(Qubit base, CheckType type, int i) {
    const auto offset = type == CheckType::kX ? 7 : 10;
    return base + static_cast<Qubit>(offset + i);
  }

  /// Fault-tolerant-style encoding circuit taking |0>^7 to |0>_L
  /// (projective: prepare, then one ESM round fixes the gauge).
  [[nodiscard]] static Circuit reset_circuit(Qubit base);

  /// One full ESM round: three X checks and three Z checks.
  [[nodiscard]] static Circuit esm_circuit(Qubit base);

  /// Ancilla measurement order of esm_circuit: X checks 0..2 then
  /// Z checks 0..2.
  [[nodiscard]] static std::vector<int> esm_measurement_order();

  /// Transversal logical operations.
  [[nodiscard]] static Circuit logical_x_circuit(Qubit base);
  [[nodiscard]] static Circuit logical_z_circuit(Qubit base);
  [[nodiscard]] static Circuit logical_h_circuit(Qubit base);
  [[nodiscard]] static Circuit logical_cnot_circuit(Qubit control_base,
                                                    Qubit target_base);
  [[nodiscard]] static Circuit measure_circuit(Qubit base);

  /// Decode a 3-bit syndrome to the faulty data qubit, or -1 for a
  /// clean syndrome.
  [[nodiscard]] static int decode(unsigned syndrome);

  /// 3-bit syndrome signature of an error on data qubit d.
  [[nodiscard]] static unsigned signature(int d);
};

}  // namespace qpf::qec

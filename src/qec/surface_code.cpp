#include "qec/surface_code.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "circuit/error.h"

namespace qpf::qec {

namespace {

[[nodiscard]] constexpr CheckType site_type(int i, int j) noexcept {
  return (i + j) % 2 == 0 ? CheckType::kX : CheckType::kZ;
}

}  // namespace

SurfaceCodeLayout::SurfaceCodeLayout(int distance)
    : SurfaceCodeLayout(distance, distance) {}

SurfaceCodeLayout::SurfaceCodeLayout(int rows, int cols)
    : rows_(rows), cols_(cols) {
  if (rows < 3 || rows % 2 == 0 || cols < 3 || cols % 2 == 0) {
    throw StackConfigError("SurfaceCodeLayout",
                           "rows and cols must be odd and >= 3");
  }
  const auto data_at = [this](int r, int c) { return r * cols_ + c; };
  // Enumerate candidate corner sites and keep the code's check set.
  int next_ancilla = 0;
  const auto add_site = [&](int i, int j) {
    SurfaceCheck check;
    check.type = site_type(i, j);
    check.site_i = i;
    check.site_j = j;
    check.ancilla = next_ancilla++;
    // Neighbouring data: NW (i-1,j-1), NE (i-1,j), SW (i,j-1), SE (i,j).
    const auto neighbour = [&](int r, int c) {
      return r >= 0 && r < rows_ && c >= 0 && c < cols_ ? data_at(r, c) : -1;
    };
    const int nw = neighbour(i - 1, j - 1);
    const int ne = neighbour(i - 1, j);
    const int sw = neighbour(i, j - 1);
    const int se = neighbour(i, j);
    if (check.type == CheckType::kX) {
      check.data = {ne, nw, se, sw};  // the S pattern of Fig 2.2
    } else {
      check.data = {ne, se, nw, sw};  // the Z pattern of Fig 2.3
    }
    for (int q : {nw, ne, sw, se}) {
      if (q >= 0) {
        check.support.push_back(q);
      }
    }
    std::sort(check.support.begin(), check.support.end());
    checks_.push_back(std::move(check));
  };

  // X checks first (matching the SC17 convention), then Z checks.
  for (CheckType pass : {CheckType::kX, CheckType::kZ}) {
    for (int i = 0; i <= rows_; ++i) {
      for (int j = 0; j <= cols_; ++j) {
        if (site_type(i, j) != pass) {
          continue;
        }
        const bool interior =
            i >= 1 && i <= rows_ - 1 && j >= 1 && j <= cols_ - 1;
        const bool top = i == 0 && j >= 1 && j <= cols_ - 1;
        const bool bottom = i == rows_ && j >= 1 && j <= cols_ - 1;
        const bool left = j == 0 && i >= 1 && i <= rows_ - 1;
        const bool right = j == cols_ && i >= 1 && i <= rows_ - 1;
        const bool keep =
            interior ||
            (pass == CheckType::kX && (top || bottom)) ||
            (pass == CheckType::kZ && (left || right));
        if (keep) {
          add_site(i, j);
        }
      }
    }
  }
  if (checks_.size() != num_data() - 1) {
    throw std::logic_error("SurfaceCodeLayout: malformed check set");
  }
  for (std::size_t k = 0; k < checks_.size(); ++k) {
    (checks_[k].type == CheckType::kX ? x_checks_ : z_checks_)
        .push_back(static_cast<int>(k));
  }
}

std::vector<int> SurfaceCodeLayout::logical_z_data() const {
  std::vector<int> chain(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c) {
    chain[static_cast<std::size_t>(c)] = c;  // data row 0
  }
  return chain;
}

std::vector<int> SurfaceCodeLayout::logical_x_data() const {
  std::vector<int> chain(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    chain[static_cast<std::size_t>(r)] = r * cols_;  // data column 0
  }
  return chain;
}

Circuit SurfaceCodeLayout::esm_circuit(Qubit base) const {
  Circuit circuit{"esm-" + std::to_string(rows_) + "x" +
                  std::to_string(cols_)};
  // Slot 1: reset the X ancillas.
  {
    TimeSlot slot;
    for (int k : x_checks_) {
      slot.add(Operation{GateType::kPrepZ,
                         ancilla_qubit(base, checks_[k].ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  // Slot 2: reset the Z ancillas, H on the X ancillas.
  {
    TimeSlot slot;
    for (int k : z_checks_) {
      slot.add(Operation{GateType::kPrepZ,
                         ancilla_qubit(base, checks_[k].ancilla)});
    }
    for (int k : x_checks_) {
      slot.add(
          Operation{GateType::kH, ancilla_qubit(base, checks_[k].ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  // Slots 3-6: CNOTs.
  for (int cnot_slot = 0; cnot_slot < 4; ++cnot_slot) {
    TimeSlot slot;
    for (const SurfaceCheck& check : checks_) {
      const int q = check.data[static_cast<std::size_t>(cnot_slot)];
      if (q < 0) {
        continue;
      }
      if (check.type == CheckType::kX) {
        slot.add(Operation{GateType::kCnot,
                           ancilla_qubit(base, check.ancilla),
                           data_qubit(base, q)});
      } else {
        slot.add(Operation{GateType::kCnot, data_qubit(base, q),
                           ancilla_qubit(base, check.ancilla)});
      }
    }
    circuit.append_slot(std::move(slot));
  }
  // Slot 7: H on the X ancillas.
  {
    TimeSlot slot;
    for (int k : x_checks_) {
      slot.add(
          Operation{GateType::kH, ancilla_qubit(base, checks_[k].ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  // Slot 8: measure every ancilla.
  {
    TimeSlot slot;
    for (const SurfaceCheck& check : checks_) {
      slot.add(Operation{GateType::kMeasureZ,
                         ancilla_qubit(base, check.ancilla)});
    }
    circuit.append_slot(std::move(slot));
  }
  return circuit;
}

std::vector<int> SurfaceCodeLayout::esm_measurement_order() const {
  std::vector<int> order;
  order.reserve(checks_.size());
  for (const SurfaceCheck& check : checks_) {
    order.push_back(check.ancilla);
  }
  return order;
}

Circuit SurfaceCodeLayout::reset_circuit(Qubit base) const {
  Circuit circuit{"reset"};
  TimeSlot slot;
  for (std::size_t q = 0; q < num_data(); ++q) {
    slot.add(Operation{GateType::kPrepZ,
                       data_qubit(base, static_cast<int>(q))});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SurfaceCodeLayout::transversal_h_circuit(Qubit base) const {
  Circuit circuit{"transversal-h"};
  TimeSlot slot;
  for (std::size_t q = 0; q < num_data(); ++q) {
    slot.add(Operation{GateType::kH, data_qubit(base, static_cast<int>(q))});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SurfaceCodeLayout::measure_circuit(Qubit base) const {
  Circuit circuit{"measure"};
  TimeSlot slot;
  for (std::size_t q = 0; q < num_data(); ++q) {
    slot.add(Operation{GateType::kMeasureZ,
                       data_qubit(base, static_cast<int>(q))});
  }
  circuit.append_slot(std::move(slot));
  return circuit;
}

Circuit SurfaceCodeLayout::logical_stabilizer_circuit(Qubit base,
                                                      CheckType basis) const {
  Circuit circuit{"logical-stabilizer"};
  const Qubit ancilla = ancilla_qubit(base, 0);
  circuit.append_in_new_slot(Operation{GateType::kPrepZ, ancilla});
  if (basis == CheckType::kZ) {
    for (int q : logical_z_data()) {
      circuit.append_in_new_slot(
          Operation{GateType::kCnot, data_qubit(base, q), ancilla});
    }
  } else {
    circuit.append_in_new_slot(Operation{GateType::kH, ancilla});
    for (int q : logical_x_data()) {
      circuit.append_in_new_slot(
          Operation{GateType::kCnot, ancilla, data_qubit(base, q)});
    }
    circuit.append_in_new_slot(Operation{GateType::kH, ancilla});
  }
  circuit.append_in_new_slot(Operation{GateType::kMeasureZ, ancilla});
  return circuit;
}

// ----------------------------------------------------------------------
// MatchingDecoder
// ----------------------------------------------------------------------

MatchingDecoder::MatchingDecoder(const SurfaceCodeLayout& layout,
                                 CheckType basis)
    : basis_(basis) {
  const std::vector<int>& group = layout.checks_of(basis);
  group_size_ = group.size();
  // Group position of every check index, for signature building.
  std::vector<int> position(layout.num_checks(), -1);
  for (std::size_t g = 0; g < group.size(); ++g) {
    position[static_cast<std::size_t>(group[g])] = static_cast<int>(g);
  }
  // Per-data signatures and the defect-graph edges.
  data_signature_.assign(layout.num_data(), {});
  struct Edge {
    int a;
    int b;  // group positions; group_size_ = boundary
    int data;
  };
  std::vector<Edge> edges;
  const int boundary = static_cast<int>(group_size_);
  for (std::size_t q = 0; q < layout.num_data(); ++q) {
    std::vector<int>& sig = data_signature_[q];
    for (std::size_t k = 0; k < layout.num_checks(); ++k) {
      const SurfaceCheck& check = layout.checks()[k];
      if (check.type != basis) {
        continue;
      }
      if (std::find(check.support.begin(), check.support.end(),
                    static_cast<int>(q)) != check.support.end()) {
        sig.push_back(position[k]);
      }
    }
    if (sig.empty() || sig.size() > 2) {
      throw std::logic_error("MatchingDecoder: malformed data adjacency");
    }
    if (sig.size() == 2) {
      edges.push_back({sig[0], sig[1], static_cast<int>(q)});
    } else {
      edges.push_back({sig[0], boundary, static_cast<int>(q)});
    }
  }
  // All-pairs BFS over the defect graph (nodes: group + boundary).
  const std::size_t nodes = group_size_ + 1;
  std::vector<std::vector<std::pair<int, int>>> adjacency(nodes);  // (to, data)
  for (const Edge& edge : edges) {
    adjacency[static_cast<std::size_t>(edge.a)].push_back({edge.b, edge.data});
    adjacency[static_cast<std::size_t>(edge.b)].push_back({edge.a, edge.data});
  }
  dist_.assign(nodes, std::vector<int>(nodes, -1));
  path_.assign(nodes, std::vector<std::vector<int>>(nodes));
  for (std::size_t start = 0; start < nodes; ++start) {
    std::vector<int> previous_node(nodes, -1);
    std::vector<int> previous_data(nodes, -1);
    auto& dist = dist_[start];
    dist[start] = 0;
    std::deque<int> queue{static_cast<int>(start)};
    while (!queue.empty()) {
      const int node = queue.front();
      queue.pop_front();
      for (const auto& [to, data] : adjacency[static_cast<std::size_t>(node)]) {
        if (dist[static_cast<std::size_t>(to)] >= 0) {
          continue;
        }
        dist[static_cast<std::size_t>(to)] =
            dist[static_cast<std::size_t>(node)] + 1;
        previous_node[static_cast<std::size_t>(to)] = node;
        previous_data[static_cast<std::size_t>(to)] = data;
        queue.push_back(to);
      }
    }
    for (std::size_t target = 0; target < nodes; ++target) {
      if (dist[target] <= 0) {
        continue;
      }
      std::vector<int>& chain = path_[start][target];
      for (int node = static_cast<int>(target); node != static_cast<int>(start);
           node = previous_node[static_cast<std::size_t>(node)]) {
        chain.push_back(previous_data[static_cast<std::size_t>(node)]);
      }
    }
  }
}

int MatchingDecoder::chain_length(int from, int to) const {
  const int a = from == kBoundary ? static_cast<int>(group_size_) : from;
  const int b = to == kBoundary ? static_cast<int>(group_size_) : to;
  return dist_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

const std::vector<int>& MatchingDecoder::chain(int from, int to) const {
  const int a = from == kBoundary ? static_cast<int>(group_size_) : from;
  const int b = to == kBoundary ? static_cast<int>(group_size_) : to;
  return path_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::vector<int> MatchingDecoder::decode(
    const std::vector<int>& defects) const {
  for (int defect : defects) {
    if (defect < 0 || defect >= static_cast<int>(group_size_)) {
      throw std::out_of_range("MatchingDecoder: defect out of range");
    }
  }
  std::vector<std::pair<int, int>> pairs;  // second may be kBoundary
  const std::size_t k = defects.size();
  if (k == 0) {
    return {};
  }
  if (k <= 12) {
    // Exact minimum-weight matching by DP over defect subsets.
    const std::size_t full = (std::size_t{1} << k) - 1;
    std::vector<int> cost(full + 1, -1);
    std::vector<std::pair<int, int>> choice(full + 1, {-1, -1});
    cost[0] = 0;
    for (std::size_t mask = 1; mask <= full; ++mask) {
      std::size_t i = 0;
      while (((mask >> i) & 1) == 0) {
        ++i;
      }
      // Option 1: defect i terminates at the boundary.
      const std::size_t rest = mask & ~(std::size_t{1} << i);
      int best = cost[rest] + chain_length(defects[i], kBoundary);
      std::pair<int, int> best_choice{static_cast<int>(i), kBoundary};
      // Option 2: pair defect i with another defect in the subset.
      for (std::size_t j = i + 1; j < k; ++j) {
        if (((mask >> j) & 1) == 0) {
          continue;
        }
        const std::size_t rest2 = rest & ~(std::size_t{1} << j);
        const int candidate =
            cost[rest2] + chain_length(defects[i], defects[j]);
        if (candidate < best) {
          best = candidate;
          best_choice = {static_cast<int>(i), static_cast<int>(j)};
        }
      }
      cost[mask] = best;
      choice[mask] = best_choice;
    }
    std::size_t mask = full;
    while (mask != 0) {
      const auto [i, j] = choice[mask];
      mask &= ~(std::size_t{1} << static_cast<std::size_t>(i));
      if (j == kBoundary) {
        pairs.emplace_back(defects[static_cast<std::size_t>(i)], kBoundary);
      } else {
        mask &= ~(std::size_t{1} << static_cast<std::size_t>(j));
        pairs.emplace_back(defects[static_cast<std::size_t>(i)],
                           defects[static_cast<std::size_t>(j)]);
      }
    }
  } else {
    // Greedy fallback for very dense syndromes.
    std::vector<int> remaining = defects;
    while (!remaining.empty()) {
      int best_i = 0;
      int best_j = kBoundary;
      int best_cost = chain_length(remaining[0], kBoundary);
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (chain_length(remaining[i], kBoundary) < best_cost) {
          best_cost = chain_length(remaining[i], kBoundary);
          best_i = static_cast<int>(i);
          best_j = kBoundary;
        }
        for (std::size_t j = i + 1; j < remaining.size(); ++j) {
          if (chain_length(remaining[i], remaining[j]) < best_cost) {
            best_cost = chain_length(remaining[i], remaining[j]);
            best_i = static_cast<int>(i);
            best_j = static_cast<int>(j);
          }
        }
      }
      if (best_j == kBoundary) {
        pairs.emplace_back(remaining[static_cast<std::size_t>(best_i)],
                           kBoundary);
        remaining.erase(remaining.begin() + best_i);
      } else {
        pairs.emplace_back(remaining[static_cast<std::size_t>(best_i)],
                           remaining[static_cast<std::size_t>(best_j)]);
        remaining.erase(remaining.begin() + best_j);
        remaining.erase(remaining.begin() + best_i);
      }
    }
  }
  // Fold the matched chains into a data-qubit correction set (XOR).
  std::vector<char> toggled(data_signature_.size(), 0);
  for (const auto& [a, b] : pairs) {
    for (int q : chain(a, b)) {
      toggled[static_cast<std::size_t>(q)] ^= 1;
    }
  }
  std::vector<int> correction;
  for (std::size_t q = 0; q < toggled.size(); ++q) {
    if (toggled[q]) {
      correction.push_back(static_cast<int>(q));
    }
  }
  return correction;
}

std::vector<int> MatchingDecoder::signature(
    const std::vector<int>& data_locals) const {
  std::vector<char> flipped(group_size_, 0);
  for (int q : data_locals) {
    for (int g : data_signature_.at(static_cast<std::size_t>(q))) {
      flipped[static_cast<std::size_t>(g)] ^= 1;
    }
  }
  std::vector<int> out;
  for (std::size_t g = 0; g < group_size_; ++g) {
    if (flipped[g]) {
      out.push_back(static_cast<int>(g));
    }
  }
  return out;
}

}  // namespace qpf::qec

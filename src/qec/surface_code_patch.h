// Run-time decoder bookkeeping for one distance-d surface code patch:
// the generalization of NinjaStar's window scheme (carried round +
// agreement rule) with matching-based spatial decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "qec/surface_code.h"

namespace qpf::qec {

class SurfaceCodePatch {
 public:
  /// One syndrome round: a 0/1 flag per check index.
  using Bits = std::vector<std::uint8_t>;

  /// The layout must outlive the patch.
  SurfaceCodePatch(const SurfaceCodeLayout* layout, Qubit base);

  [[nodiscard]] Qubit base() const noexcept { return base_; }
  [[nodiscard]] const SurfaceCodeLayout& layout() const noexcept {
    return *layout_;
  }

  [[nodiscard]] const Bits& carried() const noexcept { return carried_; }
  void set_carried(Bits carried);

  /// Decode the first round after reset absolutely (gauge fix + reset
  /// errors); the carried round becomes all-clear.
  [[nodiscard]] std::vector<Operation> decode_initialization(const Bits& round);

  /// Initialization gauge fix: decode only the randomly projected
  /// group (gauge_basis) absolutely; the other group's bits are real
  /// errors and defer to the next window's agreement logic (see
  /// qec::NinjaStar::decode_gauge).
  [[nodiscard]] std::vector<Operation> decode_gauge(const Bits& round,
                                                    CheckType gauge_basis);

  /// Window decode: per basis group, act only when the two rounds agree
  /// (otherwise defer the group by one window); matched corrections
  /// clear the acted syndrome, and the carried round is updated to r2
  /// adjusted by the corrections' signatures.
  [[nodiscard]] std::vector<Operation> decode_window(const Bits& r1,
                                                     const Bits& r2);

 private:
  [[nodiscard]] std::vector<Operation> corrections_for(
      CheckType basis, const std::vector<int>& defects) const;
  [[nodiscard]] const MatchingDecoder& decoder(CheckType basis) const {
    return basis == CheckType::kX ? x_decoder_ : z_decoder_;
  }

  const SurfaceCodeLayout* layout_;
  Qubit base_;
  Bits carried_;
  MatchingDecoder x_decoder_;
  MatchingDecoder z_decoder_;
};

}  // namespace qpf::qec

#include "statevector/gates.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qpf::sv {

namespace {
constexpr Complex kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::numbers::sqrt2;
}  // namespace

Matrix2 single_qubit_matrix(GateType g) {
  switch (g) {
    case GateType::kI:
      return {1, 0, 0, 1};
    case GateType::kX:
      return {0, 1, 1, 0};
    case GateType::kY:
      return {0, -kI, kI, 0};
    case GateType::kZ:
      return {1, 0, 0, -1};
    case GateType::kH:
      return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
    case GateType::kS:
      return {1, 0, 0, kI};
    case GateType::kSdag:
      return {1, 0, 0, -kI};
    case GateType::kT:
      return {1, 0, 0, std::polar(1.0, std::numbers::pi / 4)};
    case GateType::kTdag:
      return {1, 0, 0, std::polar(1.0, -std::numbers::pi / 4)};
    default:
      throw std::invalid_argument(
          "single_qubit_matrix: not a single-qubit unitary");
  }
}

Matrix2 multiply(const Matrix2& a, const Matrix2& b) noexcept {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Matrix2 adjoint(const Matrix2& m) noexcept {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

double distance_up_to_phase(const Matrix2& a, const Matrix2& b) noexcept {
  // Find the entry of b with the largest magnitude and align phases there.
  std::size_t k = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (std::abs(b[i]) > std::abs(b[k])) {
      k = i;
    }
  }
  if (std::abs(b[k]) < 1e-12) {
    return std::abs(a[0]) + std::abs(a[1]) + std::abs(a[2]) + std::abs(a[3]);
  }
  const Complex phase = a[k] / b[k];
  double dist = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    dist = std::max(dist, std::abs(a[i] - phase * b[i]));
  }
  return dist;
}

}  // namespace qpf::sv

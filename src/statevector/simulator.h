// Universal (dense state-vector) quantum simulator — the in-process
// stand-in for the paper's QX Simulator (thesis §4.1.1).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "circuit/circuit.h"
#include "statevector/gates.h"
#include "statevector/state.h"

namespace qpf::sv {

/// Measurement outcome of a single qubit in the Z basis.
/// `value` is the classical bit (0 for |0>, 1 for |1>); the physics
/// convention +1/-1 is sign() below.
struct MeasureResult {
  bool value = false;
  /// True when the outcome was certain (probability 0 or 1).
  bool deterministic = false;

  [[nodiscard]] int sign() const noexcept { return value ? -1 : +1; }
};

/// Dense simulator.  All randomness comes from the seeded engine so runs
/// are reproducible.
class Simulator {
 public:
  explicit Simulator(std::size_t num_qubits, std::uint64_t seed = 1);

  [[nodiscard]] std::size_t num_qubits() const noexcept {
    return state_.num_qubits();
  }
  [[nodiscard]] const StateVector& state() const noexcept { return state_; }

  /// Apply one unitary gate.  Throws for prep/measure (use reset/measure).
  void apply_unitary(const Operation& op);

  /// Project qubit q; collapses the state and returns the outcome.
  MeasureResult measure(Qubit q);

  /// Reset qubit q to |0> (measure, then flip if needed).
  void reset(Qubit q);

  /// Execute a full operation of any category.  Measurement results are
  /// appended to the internal record retrievable via take_measurements().
  void execute(const Operation& op);

  /// Execute a circuit slot by slot.
  void execute(const Circuit& circuit);

  /// Measurement results recorded since the last call, in program order.
  [[nodiscard]] std::vector<MeasureResult> take_measurements();

  /// Probability of reading 1 on qubit q without collapsing.
  [[nodiscard]] double probability_one(Qubit q) const {
    return state_.probability_one(q);
  }

  /// Direct access for test setup; the caller must keep the state
  /// normalized.
  [[nodiscard]] StateVector& mutable_state() noexcept { return state_; }

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize the state vector, the RNG engine (exactly), and pending
  /// measurement records.
  void save(journal::SnapshotWriter& out) const;

  /// Rebuild a simulator from a save() stream.  Throws
  /// qpf::CheckpointError on corruption or truncation.
  [[nodiscard]] static Simulator load(journal::SnapshotReader& in);

 private:
  void apply_single(const Matrix2& m, Qubit q);
  void apply_cnot(Qubit control, Qubit target);
  void apply_cz(Qubit control, Qubit target);
  void apply_swap(Qubit a, Qubit b);
  void collapse(Qubit q, bool outcome, double probability);

  StateVector state_;
  std::mt19937_64 rng_;
  std::vector<MeasureResult> measurements_;
};

}  // namespace qpf::sv

// Unitary matrices for the QPF gate set.
#pragma once

#include <array>
#include <complex>

#include "circuit/gate.h"

namespace qpf::sv {

using Complex = std::complex<double>;

/// 2x2 unitary, row-major: {u00, u01, u10, u11}.
using Matrix2 = std::array<Complex, 4>;

/// The 2x2 matrix of a single-qubit unitary gate.  Throws
/// std::invalid_argument for two-qubit gates or non-unitary ops.
[[nodiscard]] Matrix2 single_qubit_matrix(GateType g);

/// Multiply two 2x2 matrices (a * b).
[[nodiscard]] Matrix2 multiply(const Matrix2& a, const Matrix2& b) noexcept;

/// Conjugate transpose.
[[nodiscard]] Matrix2 adjoint(const Matrix2& m) noexcept;

/// Max-norm distance between two matrices, ignoring global phase.
[[nodiscard]] double distance_up_to_phase(const Matrix2& a,
                                          const Matrix2& b) noexcept;

}  // namespace qpf::sv

#include "statevector/state.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qpf::sv {

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > kMaxQubits) {
    throw std::invalid_argument("StateVector: qubit count out of range");
  }
  amps_.assign(std::size_t{1} << num_qubits, {0.0, 0.0});
  amps_[0] = {1.0, 0.0};
}

double StateVector::probability_one(std::size_t q) const {
  if (q >= num_qubits_) {
    throw std::out_of_range("StateVector: qubit index out of range");
  }
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) {
      p += std::norm(amps_[i]);
    }
  }
  return p;
}

double StateVector::norm_squared() const noexcept {
  double n = 0.0;
  for (const auto& a : amps_) {
    n += std::norm(a);
  }
  return n;
}

void StateVector::normalize() {
  const double n = std::sqrt(norm_squared());
  if (n < 1e-14) {
    throw std::runtime_error("StateVector: cannot normalize null vector");
  }
  for (auto& a : amps_) {
    a /= n;
  }
}

bool StateVector::equals_up_to_global_phase(const StateVector& other,
                                            double tol) const {
  if (num_qubits_ != other.num_qubits_) {
    return false;
  }
  // Phase-align on the largest amplitude of *other*.
  std::size_t k = 0;
  for (std::size_t i = 1; i < amps_.size(); ++i) {
    if (std::norm(other.amps_[i]) > std::norm(other.amps_[k])) {
      k = i;
    }
  }
  if (std::abs(other.amps_[k]) < tol) {
    return norm_squared() < tol;
  }
  const std::complex<double> phase = amps_[k] / other.amps_[k];
  if (std::abs(std::abs(phase) - 1.0) > tol) {
    return false;
  }
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (std::abs(amps_[i] - phase * other.amps_[i]) > tol) {
      return false;
    }
  }
  return true;
}

double StateVector::fidelity(const StateVector& other) const {
  if (num_qubits_ != other.num_qubits_) {
    throw std::invalid_argument("fidelity: dimension mismatch");
  }
  std::complex<double> inner{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    inner += std::conj(amps_[i]) * other.amps_[i];
  }
  return std::norm(inner);
}

void StateVector::save(journal::SnapshotWriter& out) const {
  out.tag("statevector");
  out.write_size(num_qubits_);
  static_assert(sizeof(std::complex<double>) == 16);
  out.write_bytes(amps_.data(), amps_.size() * sizeof(std::complex<double>));
}

StateVector StateVector::load(journal::SnapshotReader& in) {
  in.expect_tag("statevector");
  const std::size_t n = in.read_size();
  if (n == 0 || n > kMaxQubits) {
    throw CheckpointError("statevector snapshot: implausible qubit count " +
                          std::to_string(n));
  }
  StateVector state(n);
  in.read_bytes(state.amps_.data(),
                state.amps_.size() * sizeof(std::complex<double>));
  return state;
}

std::string StateVector::str(double cutoff) const {
  std::string out;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (std::abs(amps_[i]) <= cutoff) {
      continue;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "(%.6g%+.6gj) |", amps_[i].real(),
                  amps_[i].imag());
    out += buffer;
    for (std::size_t q = num_qubits_; q-- > 0;) {
      out += (i >> q) & 1 ? '1' : '0';
    }
    out += ">\n";
  }
  return out;
}

}  // namespace qpf::sv

// Dense quantum state vector with the comparison and rendering utilities
// the paper's experiments rely on (state equality up to global phase,
// Listing-5.1-style amplitude dumps).
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "journal/snapshot.h"

namespace qpf::sv {

/// A normalized n-qubit state vector.  Basis index bit k is the value of
/// qubit k, so in the rendered bitstring the *rightmost* character is
/// qubit 0, matching the thesis listings.
class StateVector {
 public:
  /// |0...0> on num_qubits qubits.  Throws std::invalid_argument for 0
  /// qubits or for sizes above kMaxQubits (memory guard).
  explicit StateVector(std::size_t num_qubits);

  static constexpr std::size_t kMaxQubits = 26;

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return amps_.size(); }

  [[nodiscard]] const std::vector<std::complex<double>>& amplitudes()
      const noexcept {
    return amps_;
  }
  [[nodiscard]] std::vector<std::complex<double>>& amplitudes() noexcept {
    return amps_;
  }

  [[nodiscard]] std::complex<double> amplitude(std::size_t basis) const {
    return amps_.at(basis);
  }

  /// Probability of measuring qubit q as 1.
  [[nodiscard]] double probability_one(std::size_t q) const;

  /// Squared norm (should be 1 up to rounding).
  [[nodiscard]] double norm_squared() const noexcept;

  /// Rescale to unit norm; throws std::runtime_error on a null vector.
  void normalize();

  /// True if the two states are equal up to a global phase, within tol.
  [[nodiscard]] bool equals_up_to_global_phase(const StateVector& other,
                                               double tol = 1e-9) const;

  /// Fidelity |<this|other>|^2.
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// Nonzero amplitudes, one per line, like the thesis listings:
  ///   (0.25+0j) |000000110>
  /// Amplitudes below cutoff are suppressed.
  [[nodiscard]] std::string str(double cutoff = 1e-9) const;

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize every amplitude bit-exactly (raw IEEE-754 doubles).
  void save(journal::SnapshotWriter& out) const;

  /// Rebuild a state vector from a save() stream.  Throws
  /// qpf::CheckpointError on corruption or truncation.
  [[nodiscard]] static StateVector load(journal::SnapshotReader& in);

 private:
  std::size_t num_qubits_;
  std::vector<std::complex<double>> amps_;
};

}  // namespace qpf::sv

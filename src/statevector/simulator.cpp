#include "statevector/simulator.h"

#include <cmath>
#include <stdexcept>

namespace qpf::sv {

Simulator::Simulator(std::size_t num_qubits, std::uint64_t seed)
    : state_(num_qubits), rng_(seed) {}

void Simulator::apply_single(const Matrix2& m, Qubit q) {
  auto& amps = state_.amplitudes();
  const std::size_t bit = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (i & bit) {
      continue;  // visit each pair once, from its |0> member
    }
    const Complex a0 = amps[i];
    const Complex a1 = amps[i | bit];
    amps[i] = m[0] * a0 + m[1] * a1;
    amps[i | bit] = m[2] * a0 + m[3] * a1;
  }
}

void Simulator::apply_cnot(Qubit control, Qubit target) {
  auto& amps = state_.amplitudes();
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((i & cbit) && !(i & tbit)) {
      std::swap(amps[i], amps[i | tbit]);
    }
  }
}

void Simulator::apply_cz(Qubit control, Qubit target) {
  auto& amps = state_.amplitudes();
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((i & cbit) && (i & tbit)) {
      amps[i] = -amps[i];
    }
  }
}

void Simulator::apply_swap(Qubit a, Qubit b) {
  auto& amps = state_.amplitudes();
  const std::size_t abit = std::size_t{1} << a;
  const std::size_t bbit = std::size_t{1} << b;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if ((i & abit) && !(i & bbit)) {
      std::swap(amps[i], amps[(i & ~abit) | bbit]);
    }
  }
}

void Simulator::apply_unitary(const Operation& op) {
  const GateType g = op.gate();
  if (!is_unitary(g)) {
    throw std::invalid_argument("apply_unitary: prep/measure not unitary");
  }
  if (op.qubit(0) >= num_qubits() ||
      (op.arity() == 2 && op.qubit(1) >= num_qubits())) {
    throw std::out_of_range("apply_unitary: qubit index out of range");
  }
  switch (g) {
    case GateType::kCnot:
      apply_cnot(op.control(), op.target());
      return;
    case GateType::kCz:
      apply_cz(op.control(), op.target());
      return;
    case GateType::kSwap:
      apply_swap(op.control(), op.target());
      return;
    default:
      apply_single(single_qubit_matrix(g), op.qubit(0));
      return;
  }
}

void Simulator::collapse(Qubit q, bool outcome, double probability) {
  auto& amps = state_.amplitudes();
  const std::size_t bit = std::size_t{1} << q;
  const double scale = 1.0 / std::sqrt(probability);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const bool one = (i & bit) != 0;
    if (one == outcome) {
      amps[i] *= scale;
    } else {
      amps[i] = {0.0, 0.0};
    }
  }
}

MeasureResult Simulator::measure(Qubit q) {
  if (q >= num_qubits()) {
    throw std::out_of_range("measure: qubit index out of range");
  }
  const double p1 = state_.probability_one(q);
  MeasureResult result;
  constexpr double kEps = 1e-12;
  if (p1 < kEps) {
    result = {.value = false, .deterministic = true};
    collapse(q, false, 1.0 - p1);
  } else if (p1 > 1.0 - kEps) {
    result = {.value = true, .deterministic = true};
    collapse(q, true, p1);
  } else {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    const bool one = dist(rng_) < p1;
    result = {.value = one, .deterministic = false};
    collapse(q, one, one ? p1 : 1.0 - p1);
  }
  return result;
}

void Simulator::reset(Qubit q) {
  if (measure(q).value) {
    apply_single(single_qubit_matrix(GateType::kX), q);
  }
}

void Simulator::execute(const Operation& op) {
  switch (category(op.gate())) {
    case GateCategory::kInitialization:
      reset(op.qubit(0));
      return;
    case GateCategory::kMeasurement:
      measurements_.push_back(measure(op.qubit(0)));
      return;
    default:
      apply_unitary(op);
      return;
  }
}

void Simulator::execute(const Circuit& circuit) {
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      execute(op);
    }
  }
}

std::vector<MeasureResult> Simulator::take_measurements() {
  std::vector<MeasureResult> out;
  out.swap(measurements_);
  return out;
}

void Simulator::save(journal::SnapshotWriter& out) const {
  out.tag("simulator");
  state_.save(out);
  out.write_rng(rng_);
  out.write_size(measurements_.size());
  for (const MeasureResult& m : measurements_) {
    out.write_bool(m.value);
    out.write_bool(m.deterministic);
  }
}

Simulator Simulator::load(journal::SnapshotReader& in) {
  in.expect_tag("simulator");
  StateVector state = StateVector::load(in);
  Simulator simulator(state.num_qubits());
  simulator.state_ = std::move(state);
  simulator.rng_ = in.read_rng();
  const std::size_t pending = in.read_size();
  simulator.measurements_.clear();
  for (std::size_t i = 0; i < pending; ++i) {
    MeasureResult m;
    m.value = in.read_bool();
    m.deterministic = in.read_bool();
    simulator.measurements_.push_back(m);
  }
  return simulator;
}

}  // namespace qpf::sv

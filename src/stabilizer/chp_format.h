// Reader/writer for the original CHP program format (Aaronson &
// Gottesman's chp.c):
//   # comment until a line starting with '#' ends the header
//   c 0 1     CNOT control target
//   h 0       Hadamard
//   p 0       phase (S)
//   m 0       measure
// Only Clifford-generator circuits can be expressed in this format.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace qpf::stab {

/// Render a circuit in CHP format.  Throws std::invalid_argument for
/// gates outside {H, S, CNOT, MeasureZ}; convert with
/// expand_to_chp_gates() first if needed.
[[nodiscard]] std::string to_chp(const Circuit& circuit);

/// Parse CHP format; throws QasmParseError (a std::runtime_error) with
/// the offending line on malformed input.
[[nodiscard]] Circuit from_chp(const std::string& text);

/// Rewrite a Clifford circuit over the CHP generator set {H, S, CNOT}
/// (plus measurement); prep becomes measure+conditional-X and is not
/// representable, so it throws.  Throws for non-Clifford gates.
[[nodiscard]] Circuit expand_to_chp_gates(const Circuit& circuit);

}  // namespace qpf::stab

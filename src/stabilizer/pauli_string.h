// Pauli strings: signed tensor products of single-qubit Paulis.
//
// Used to express the SC17 stabilizers of Tables 2.1 / 2.2 and to query
// the tableau simulator for stabilizer membership and expectation values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qpf::stab {

/// Single-qubit Pauli in the (x, z) binary-symplectic encoding:
/// I=(0,0), X=(1,0), Z=(0,1), Y=(1,1) with the convention Y ~ iXZ.
enum class Pauli : std::uint8_t { kI = 0, kX = 1, kZ = 2, kY = 3 };

/// A Pauli operator on n qubits with a +/-1 sign.
/// (Global factors of i never arise for Hermitian Pauli strings.)
class PauliString {
 public:
  /// Identity on num_qubits qubits.
  explicit PauliString(std::size_t num_qubits);

  /// Parse compact notation like "Z0Z4Z8", "-X2X4X6", "+Y1".
  /// Qubit count is max index + 1 unless num_qubits is larger.
  /// Throws std::invalid_argument on malformed text.
  static PauliString parse(const std::string& text, std::size_t num_qubits = 0);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return paulis_.size(); }

  [[nodiscard]] Pauli pauli(std::size_t q) const { return paulis_.at(q); }
  void set_pauli(std::size_t q, Pauli p) { paulis_.at(q) = p; }

  /// +1 or -1.
  [[nodiscard]] int sign() const noexcept { return negative_ ? -1 : +1; }
  void set_sign(int s);

  /// X / Z component of qubit q in the symplectic encoding.
  [[nodiscard]] bool x_bit(std::size_t q) const;
  [[nodiscard]] bool z_bit(std::size_t q) const;

  /// True if this string commutes with other (qubit counts must match).
  [[nodiscard]] bool commutes_with(const PauliString& other) const;

  /// Number of non-identity tensor factors.
  [[nodiscard]] std::size_t weight() const noexcept;

  /// "Z0Z4Z8" / "-X2X4X6" style text; identity renders as "+I".
  [[nodiscard]] std::string str() const;

  [[nodiscard]] bool operator==(const PauliString& other) const noexcept {
    return negative_ == other.negative_ && paulis_ == other.paulis_;
  }

 private:
  std::vector<Pauli> paulis_;
  bool negative_ = false;
};

}  // namespace qpf::stab

#include "stabilizer/tableau.h"

#include <algorithm>
#include <stdexcept>

#include "circuit/bug_plant.h"
#include "core/bits.h"

namespace qpf::stab {

namespace {
constexpr std::size_t kWordBits = 64;
}

Tableau::Tableau(std::size_t num_qubits, std::uint64_t seed)
    : n_(num_qubits),
      cw_((2 * num_qubits + 1 + kWordBits - 1) / kWordBits),
      rng_(seed) {
  if (num_qubits == 0) {
    throw std::invalid_argument("Tableau: zero qubits");
  }
  xs_.assign(n_ * cw_, 0);
  zs_.assign(n_ * cw_, 0);
  rs_.assign(cw_, 0);
  phase_lo_.assign(cw_, 0);
  phase_hi_.assign(cw_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    set_x_bit(i, i, true);        // destabilizer i = X_i
    set_z_bit(n_ + i, i, true);   // stabilizer i   = Z_i
  }
}

bool Tableau::x_bit(std::size_t row, std::size_t q) const noexcept {
  return (x_col(q)[row / kWordBits] >> (row % kWordBits)) & 1;
}

bool Tableau::z_bit(std::size_t row, std::size_t q) const noexcept {
  return (z_col(q)[row / kWordBits] >> (row % kWordBits)) & 1;
}

bool Tableau::r_bit(std::size_t row) const noexcept {
  return (rs_[row / kWordBits] >> (row % kWordBits)) & 1;
}

void Tableau::set_x_bit(std::size_t row, std::size_t q, bool v) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (row % kWordBits);
  std::uint64_t& word = x_col(q)[row / kWordBits];
  word = v ? (word | mask) : (word & ~mask);
}

void Tableau::set_z_bit(std::size_t row, std::size_t q, bool v) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (row % kWordBits);
  std::uint64_t& word = z_col(q)[row / kWordBits];
  word = v ? (word | mask) : (word & ~mask);
}

void Tableau::set_r_bit(std::size_t row, bool v) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (row % kWordBits);
  std::uint64_t& word = rs_[row / kWordBits];
  word = v ? (word | mask) : (word & ~mask);
}

void Tableau::zero_row(std::size_t row) noexcept {
  const std::size_t w = row / kWordBits;
  const std::uint64_t clear = ~(std::uint64_t{1} << (row % kWordBits));
  for (std::size_t q = 0; q < n_; ++q) {
    x_col(q)[w] &= clear;
    z_col(q)[w] &= clear;
  }
  rs_[w] &= clear;
}

std::uint64_t Tableau::range_mask(std::size_t w, std::size_t lo,
                                  std::size_t hi) noexcept {
  const std::size_t base = w * kWordBits;
  if (hi <= base || lo >= base + kWordBits) {
    return 0;
  }
  const std::size_t from = lo > base ? lo - base : 0;
  const std::size_t to = hi < base + kWordBits ? hi - base : kWordBits;
  const std::uint64_t upper =
      to == kWordBits ? ~std::uint64_t{0} : ((std::uint64_t{1} << to) - 1);
  const std::uint64_t lower = (std::uint64_t{1} << from) - 1;
  return upper & ~lower;
}

void Tableau::check_qubit(Qubit q) const {
  if (q >= n_) {
    throw std::out_of_range("Tableau: qubit index out of range");
  }
}

void Tableau::rowsum(std::size_t h, std::size_t i) noexcept {
  // Phase exponent of i^k accumulated over all qubits (AG Eq. for g()),
  // plus 2*(r_h + r_i); the result is always 0 or 2 mod 4.
  const std::size_t hw = h / kWordBits;
  const std::uint64_t hb = std::uint64_t{1} << (h % kWordBits);
  const std::size_t iw = i / kWordBits;
  const std::uint64_t ib = std::uint64_t{1} << (i % kWordBits);
  int phase = 2 * (static_cast<int>(r_bit(h)) + static_cast<int>(r_bit(i)));
  for (std::size_t q = 0; q < n_; ++q) {
    std::uint64_t* x = x_col(q);
    std::uint64_t* z = z_col(q);
    const bool x1 = (x[iw] & ib) != 0;
    const bool z1 = (z[iw] & ib) != 0;
    if (!x1 && !z1) {
      continue;  // row i acts as identity on q
    }
    const bool x2 = (x[hw] & hb) != 0;
    const bool z2 = (z[hw] & hb) != 0;
    // g(x1,z1,x2,z2):
    //   row i has X: g = z2*(2*x2-1);  Y: g = z2-x2;  Z: g = x2*(1-2*z2)
    if (x1 && !z1) {
      phase += z2 ? (x2 ? 1 : -1) : 0;
    } else if (x1 && z1) {
      phase += static_cast<int>(z2) - static_cast<int>(x2);
    } else {
      phase += x2 ? (z2 ? -1 : 1) : 0;
    }
    if (x1) {
      x[hw] ^= hb;
    }
    if (z1) {
      z[hw] ^= hb;
    }
  }
  set_r_bit(h, ((phase % 4) + 4) % 4 == 2);
}

void Tableau::rowsum_batch(const std::uint64_t* targets, std::size_t p) {
  // For every target row h (a set bit in `targets`): row h *= row p,
  // with the mod-4 phase of each product tracked in bit-sliced counters
  // (phase_lo_/phase_hi_ hold bit 0 / bit 1 of each row's counter).
  std::fill(phase_lo_.begin(), phase_lo_.end(), 0);
  std::fill(phase_hi_.begin(), phase_hi_.end(), 0);
  const std::size_t pw = p / kWordBits;
  const std::uint64_t pb = std::uint64_t{1} << (p % kWordBits);
  for (std::size_t q = 0; q < n_; ++q) {
    std::uint64_t* x = x_col(q);
    std::uint64_t* z = z_col(q);
    const bool px = (x[pw] & pb) != 0;
    const bool pz = (z[pw] & pb) != 0;
    if (!px && !pz) {
      continue;  // row p acts as identity on q: no flips, no phase
    }
    for (std::size_t w = 0; w < cw_; ++w) {
      const std::uint64_t t = targets[w];
      if (t == 0) {
        continue;
      }
      const std::uint64_t xw = x[w];
      const std::uint64_t zw = z[w];
      // g(px,pz, xw,zw) per target row, as +1 ("plus") / -1 ("minus").
      std::uint64_t plus;
      std::uint64_t minus;
      if (px && !pz) {  // source X
        plus = xw & zw;
        minus = zw & ~xw;
      } else if (px && pz) {  // source Y
        plus = zw & ~xw;
        minus = xw & ~zw;
      } else {  // source Z
        plus = xw & ~zw;
        minus = xw & zw;
      }
      plus &= t;
      minus &= t;
      // counter += 1 on plus rows; counter -= 1 (== += 3 mod 4) on
      // minus rows.
      phase_hi_[w] ^= phase_lo_[w] & plus;
      phase_lo_[w] ^= plus;
      phase_hi_[w] ^= ~phase_lo_[w] & minus;
      phase_lo_[w] ^= minus;
      if (px) {
        x[w] ^= t;
      }
      if (pz) {
        z[w] ^= t;
      }
    }
  }
  // r_h' = r_h ^ r_p ^ (g-sum mod 4 == 2); the g-sum of commuting-
  // product rows is always even, so its residue is the hi counter bit.
  const std::uint64_t rp = (rs_[pw] & pb) != 0 ? ~std::uint64_t{0} : 0;
  for (std::size_t w = 0; w < cw_; ++w) {
    rs_[w] ^= (phase_hi_[w] ^ rp) & targets[w];
  }
}

void Tableau::apply_h(Qubit q) {
  check_qubit(q);
  std::uint64_t* x = x_col(q);
  std::uint64_t* z = z_col(q);
  const bool drop_signs = plant::bug(7);  // mutation hook: lost sign word
  for (std::size_t w = 0; w < cw_; ++w) {
    const std::uint64_t xw = x[w];
    const std::uint64_t zw = z[w];
    if (!drop_signs) {
      rs_[w] ^= xw & zw;
    }
    x[w] = zw;
    z[w] = xw;
  }
}

void Tableau::apply_s(Qubit q) {
  check_qubit(q);
  std::uint64_t* x = x_col(q);
  std::uint64_t* z = z_col(q);
  for (std::size_t w = 0; w < cw_; ++w) {
    const std::uint64_t xw = x[w];
    rs_[w] ^= xw & z[w];
    z[w] ^= xw;
  }
}

void Tableau::apply_sdag(Qubit q) {
  check_qubit(q);
  std::uint64_t* x = x_col(q);
  std::uint64_t* z = z_col(q);
  for (std::size_t w = 0; w < cw_; ++w) {
    const std::uint64_t xw = x[w];
    rs_[w] ^= xw & ~z[w];
    z[w] ^= xw;
  }
}

void Tableau::apply_x(Qubit q) {
  check_qubit(q);
  const std::uint64_t* z = z_col(q);
  for (std::size_t w = 0; w < cw_; ++w) {
    rs_[w] ^= z[w];
  }
}

void Tableau::apply_z(Qubit q) {
  check_qubit(q);
  const std::uint64_t* x = x_col(q);
  for (std::size_t w = 0; w < cw_; ++w) {
    rs_[w] ^= x[w];
  }
}

void Tableau::apply_y(Qubit q) {
  check_qubit(q);
  const std::uint64_t* x = x_col(q);
  const std::uint64_t* z = z_col(q);
  for (std::size_t w = 0; w < cw_; ++w) {
    rs_[w] ^= x[w] ^ z[w];
  }
}

void Tableau::apply_cnot(Qubit control, Qubit target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("Tableau: CNOT operands must differ");
  }
  std::uint64_t* xc = x_col(control);
  std::uint64_t* zc = z_col(control);
  std::uint64_t* xt = x_col(target);
  std::uint64_t* zt = z_col(target);
  for (std::size_t w = 0; w < cw_; ++w) {
    const std::uint64_t xcw = xc[w];
    const std::uint64_t zcw = zc[w];
    const std::uint64_t xtw = xt[w];
    const std::uint64_t ztw = zt[w];
    rs_[w] ^= xcw & ztw & ~(xtw ^ zcw);
    xt[w] = xtw ^ xcw;
    zc[w] = zcw ^ ztw;
  }
}

void Tableau::apply_cz(Qubit control, Qubit target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("Tableau: CZ operands must differ");
  }
  std::uint64_t* xc = x_col(control);
  std::uint64_t* zc = z_col(control);
  std::uint64_t* xt = x_col(target);
  std::uint64_t* zt = z_col(target);
  for (std::size_t w = 0; w < cw_; ++w) {
    const std::uint64_t xcw = xc[w];
    const std::uint64_t xtw = xt[w];
    rs_[w] ^= xcw & xtw & (zc[w] ^ zt[w]);
    zc[w] ^= xtw;
    zt[w] ^= xcw;
  }
}

void Tableau::apply_swap(Qubit a, Qubit b) {
  check_qubit(a);
  check_qubit(b);
  if (a == b) {
    throw std::invalid_argument("Tableau: SWAP operands must differ");
  }
  std::swap_ranges(x_col(a), x_col(a) + cw_, x_col(b));
  std::swap_ranges(z_col(a), z_col(a) + cw_, z_col(b));
}

void Tableau::apply_unitary(const Operation& op) {
  switch (op.gate()) {
    case GateType::kI:
      return;
    case GateType::kX:
      return apply_x(op.qubit(0));
    case GateType::kY:
      return apply_y(op.qubit(0));
    case GateType::kZ:
      return apply_z(op.qubit(0));
    case GateType::kH:
      return apply_h(op.qubit(0));
    case GateType::kS:
      return apply_s(op.qubit(0));
    case GateType::kSdag:
      return apply_sdag(op.qubit(0));
    case GateType::kCnot:
      return apply_cnot(op.control(), op.target());
    case GateType::kCz:
      return apply_cz(op.control(), op.target());
    case GateType::kSwap:
      return apply_swap(op.control(), op.target());
    default:
      throw std::invalid_argument(
          "Tableau: gate is not stabilizer-simulable: " + op.str());
  }
}

void Tableau::apply_pauli(const PauliString& p) {
  if (p.num_qubits() > n_) {
    throw std::invalid_argument("Tableau: Pauli string too wide");
  }
  for (std::size_t q = 0; q < p.num_qubits(); ++q) {
    switch (p.pauli(q)) {
      case Pauli::kI:
        break;
      case Pauli::kX:
        apply_x(static_cast<Qubit>(q));
        break;
      case Pauli::kY:
        apply_y(static_cast<Qubit>(q));
        break;
      case Pauli::kZ:
        apply_z(static_cast<Qubit>(q));
        break;
    }
  }
}

MeasureResult Tableau::measure(Qubit q) {
  check_qubit(q);
  // Look for a stabilizer row that anticommutes with Z_q: a set bit in
  // the rows [n, 2n) slice of X column q.
  const std::uint64_t* xq = x_col(q);
  std::size_t p = 0;
  bool random = false;
  for (std::size_t w = n_ / kWordBits; w < cw_ && !random; ++w) {
    const std::uint64_t hits = xq[w] & range_mask(w, n_, 2 * n_);
    if (hits != 0) {
      p = w * kWordBits + static_cast<std::size_t>(countr_zero64(hits));
      random = true;
    }
  }
  if (random) {
    // Broadcast rowsum: every other row with an X at q absorbs row p.
    // The target mask is exactly X column q over live rows, minus p.
    std::vector<std::uint64_t> targets(cw_);
    for (std::size_t w = 0; w < cw_; ++w) {
      targets[w] = xq[w] & range_mask(w, 0, 2 * n_);
    }
    targets[p / kWordBits] &= ~(std::uint64_t{1} << (p % kWordBits));
    rowsum_batch(targets.data(), p);
    // Destabilizer p-n := old stabilizer p; stabilizer p := +/- Z_q.
    const std::size_t d = p - n_;
    for (std::size_t c = 0; c < n_; ++c) {
      set_x_bit(d, c, x_bit(p, c));
      set_z_bit(d, c, z_bit(p, c));
    }
    set_r_bit(d, r_bit(p));
    zero_row(p);
    set_z_bit(p, q, true);
    const bool outcome = (rng_() & 1) != 0;
    set_r_bit(p, outcome);
    return {.value = outcome, .deterministic = false};
  }
  // Deterministic: accumulate the stabilizer product matching Z_q into
  // the scratch row.
  const std::size_t scratch = 2 * n_;
  zero_row(scratch);
  for (std::size_t w = 0; w < cw_; ++w) {
    std::uint64_t hits = xq[w] & range_mask(w, 0, n_);
    while (hits != 0) {
      const std::size_t i =
          w * kWordBits + static_cast<std::size_t>(countr_zero64(hits));
      hits &= hits - 1;
      rowsum(scratch, i + n_);
    }
  }
  return {.value = r_bit(scratch), .deterministic = true};
}

void Tableau::reset(Qubit q) {
  if (measure(q).value) {
    apply_x(q);
  }
}

void Tableau::execute(const Operation& op) {
  switch (category(op.gate())) {
    case GateCategory::kInitialization:
      return reset(op.qubit(0));
    case GateCategory::kMeasurement:
      measurements_.push_back(measure(op.qubit(0)));
      return;
    default:
      return apply_unitary(op);
  }
}

void Tableau::execute(const Circuit& circuit) {
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      execute(op);
    }
  }
}

std::vector<MeasureResult> Tableau::take_measurements() {
  std::vector<MeasureResult> out;
  out.swap(measurements_);
  return out;
}

double Tableau::probability_one(Qubit q) const {
  check_qubit(q);
  const std::uint64_t* xq = x_col(q);
  for (std::size_t w = n_ / kWordBits; w < cw_; ++w) {
    if ((xq[w] & range_mask(w, n_, 2 * n_)) != 0) {
      return 0.5;
    }
  }
  // Deterministic: same scratch computation, on a copy to stay const.
  Tableau copy = *this;
  return copy.measure(q).value ? 1.0 : 0.0;
}

int Tableau::expectation(const PauliString& p) const {
  if (p.num_qubits() > n_) {
    throw std::invalid_argument("Tableau: Pauli string too wide");
  }
  // If p anticommutes with any stabilizer generator the outcome is random.
  for (std::size_t i = 0; i < n_; ++i) {
    bool anticommute = false;
    for (std::size_t q = 0; q < p.num_qubits(); ++q) {
      const bool term = (p.x_bit(q) && z_bit(n_ + i, q)) ^
                        (p.z_bit(q) && x_bit(n_ + i, q));
      anticommute ^= term;
    }
    if (anticommute) {
      return 0;
    }
  }
  // p commutes with the whole group, so p = +/- product of the stabilizer
  // generators whose destabilizer partners anticommute with p.  Build the
  // product in a scratch copy and compare signs.
  Tableau copy = *this;
  const std::size_t scratch = 2 * n_;
  copy.zero_row(scratch);
  for (std::size_t i = 0; i < n_; ++i) {
    bool anticommute = false;
    for (std::size_t q = 0; q < p.num_qubits(); ++q) {
      const bool term = (p.x_bit(q) && z_bit(i, q)) ^
                        (p.z_bit(q) && x_bit(i, q));
      anticommute ^= term;
    }
    if (anticommute) {
      copy.rowsum(scratch, i + n_);
    }
  }
  // The scratch row must now equal p's tensor part.
  for (std::size_t q = 0; q < n_; ++q) {
    const bool px = q < p.num_qubits() && p.x_bit(q);
    const bool pz = q < p.num_qubits() && p.z_bit(q);
    if (copy.x_bit(scratch, q) != px || copy.z_bit(scratch, q) != pz) {
      return 0;  // not in the stabilizer group (mixed/odd case)
    }
  }
  const int group_sign = copy.r_bit(scratch) ? -1 : +1;
  return group_sign * p.sign();
}

PauliString Tableau::row_to_string(std::size_t row) const {
  PauliString out(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    const bool x = x_bit(row, q);
    const bool z = z_bit(row, q);
    out.set_pauli(q, x ? (z ? Pauli::kY : Pauli::kX)
                       : (z ? Pauli::kZ : Pauli::kI));
  }
  out.set_sign(r_bit(row) ? -1 : +1);
  return out;
}

PauliString Tableau::stabilizer(std::size_t i) const {
  if (i >= n_) {
    throw std::out_of_range("Tableau: stabilizer index out of range");
  }
  return row_to_string(n_ + i);
}

PauliString Tableau::destabilizer(std::size_t i) const {
  if (i >= n_) {
    throw std::out_of_range("Tableau: destabilizer index out of range");
  }
  return row_to_string(i);
}

void Tableau::save(journal::SnapshotWriter& out) const {
  out.tag("tableau2");
  out.write_size(n_);
  out.write_bytes(xs_.data(), xs_.size() * sizeof(std::uint64_t));
  out.write_bytes(zs_.data(), zs_.size() * sizeof(std::uint64_t));
  out.write_bytes(rs_.data(), rs_.size() * sizeof(std::uint64_t));
  out.write_rng(rng_);
  out.write_size(measurements_.size());
  for (const MeasureResult& m : measurements_) {
    out.write_bool(m.value);
    out.write_bool(m.deterministic);
  }
}

Tableau Tableau::load(journal::SnapshotReader& in) {
  const std::string layout = in.read_tag();
  if (layout != "tableau2" && layout != "tableau") {
    throw CheckpointError("tableau snapshot: unknown layout tag '" + layout +
                          "'");
  }
  const std::size_t n = in.read_size();
  if (n == 0 || n > (std::size_t{1} << 24)) {
    throw CheckpointError("tableau snapshot: implausible qubit count " +
                          std::to_string(n));
  }
  Tableau t(n);
  if (layout == "tableau2") {
    in.read_bytes(t.xs_.data(), t.xs_.size() * sizeof(std::uint64_t));
    in.read_bytes(t.zs_.data(), t.zs_.size() * sizeof(std::uint64_t));
    in.read_bytes(t.rs_.data(), t.rs_.size() * sizeof(std::uint64_t));
  } else {
    // Legacy row-major layout: (2n+1) rows of ceil(n/64) words per
    // side, signs as one byte per row.  Transpose into the column-major
    // member arrays.
    const std::size_t rows = 2 * n + 1;
    const std::size_t row_words = (n + kWordBits - 1) / kWordBits;
    std::vector<std::uint64_t> xs(rows * row_words);
    std::vector<std::uint64_t> zs(rows * row_words);
    in.read_bytes(xs.data(), xs.size() * sizeof(std::uint64_t));
    in.read_bytes(zs.data(), zs.size() * sizeof(std::uint64_t));
    std::vector<std::uint8_t> signs(rows);
    in.read_bytes(signs.data(), signs.size());
    std::fill(t.xs_.begin(), t.xs_.end(), 0);
    std::fill(t.zs_.begin(), t.zs_.end(), 0);
    for (std::size_t row = 0; row < rows; ++row) {
      for (std::size_t q = 0; q < n; ++q) {
        const std::uint64_t bit = std::uint64_t{1} << (q % kWordBits);
        if (xs[row * row_words + q / kWordBits] & bit) {
          t.set_x_bit(row, q, true);
        }
        if (zs[row * row_words + q / kWordBits] & bit) {
          t.set_z_bit(row, q, true);
        }
      }
      t.set_r_bit(row, signs[row] != 0);
    }
  }
  t.rng_ = in.read_rng();
  const std::size_t pending = in.read_size();
  t.measurements_.clear();
  for (std::size_t i = 0; i < pending; ++i) {
    MeasureResult m;
    m.value = in.read_bool();
    m.deterministic = in.read_bool();
    t.measurements_.push_back(m);
  }
  return t;
}

}  // namespace qpf::stab

#include "stabilizer/tableau.h"

#include <stdexcept>

namespace qpf::stab {

namespace {
constexpr std::size_t kWordBits = 64;
}

Tableau::Tableau(std::size_t num_qubits, std::uint64_t seed)
    : n_(num_qubits),
      words_((num_qubits + kWordBits - 1) / kWordBits),
      rng_(seed) {
  if (num_qubits == 0) {
    throw std::invalid_argument("Tableau: zero qubits");
  }
  const std::size_t rows = 2 * n_ + 1;
  xs_.assign(rows * words_, 0);
  zs_.assign(rows * words_, 0);
  rs_.assign(rows, false);
  for (std::size_t i = 0; i < n_; ++i) {
    set_x_bit(i, i, true);        // destabilizer i = X_i
    set_z_bit(n_ + i, i, true);   // stabilizer i   = Z_i
  }
}

bool Tableau::x_bit(std::size_t row, std::size_t q) const noexcept {
  return (xs_[row * words_ + q / kWordBits] >> (q % kWordBits)) & 1;
}

bool Tableau::z_bit(std::size_t row, std::size_t q) const noexcept {
  return (zs_[row * words_ + q / kWordBits] >> (q % kWordBits)) & 1;
}

void Tableau::set_x_bit(std::size_t row, std::size_t q, bool v) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (q % kWordBits);
  auto& word = xs_[row * words_ + q / kWordBits];
  word = v ? (word | mask) : (word & ~mask);
}

void Tableau::set_z_bit(std::size_t row, std::size_t q, bool v) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (q % kWordBits);
  auto& word = zs_[row * words_ + q / kWordBits];
  word = v ? (word | mask) : (word & ~mask);
}

void Tableau::zero_row(std::size_t row) noexcept {
  for (std::size_t w = 0; w < words_; ++w) {
    xs_[row * words_ + w] = 0;
    zs_[row * words_ + w] = 0;
  }
  rs_[row] = false;
}

void Tableau::check_qubit(Qubit q) const {
  if (q >= n_) {
    throw std::out_of_range("Tableau: qubit index out of range");
  }
}

void Tableau::rowsum(std::size_t h, std::size_t i) noexcept {
  // Phase exponent of i^k accumulated over all qubits (AG Eq. for g()),
  // plus 2*(r_h + r_i); the result is always 0 or 2 mod 4.
  int phase = 2 * (static_cast<int>(rs_[h]) + static_cast<int>(rs_[i]));
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t x1 = xs_[i * words_ + w];
    const std::uint64_t z1 = zs_[i * words_ + w];
    const std::uint64_t x2 = xs_[h * words_ + w];
    const std::uint64_t z2 = zs_[h * words_ + w];
    // g(x1,z1,x2,z2) per bit, summed.  Enumerate the cases via masks:
    //   row i has X (x1=1,z1=0): g = z2*(2*x2-1)  -> +1 if x2z2, -1 if z2 only
    //   row i has Y (x1=1,z1=1): g = z2 - x2
    //   row i has Z (x1=0,z1=1): g = x2*(1-2*z2)  -> +1 if x2 only, -1 if x2z2
    const std::uint64_t i_x = x1 & ~z1;
    const std::uint64_t i_y = x1 & z1;
    const std::uint64_t i_z = ~x1 & z1;
    const std::uint64_t plus =
        (i_x & x2 & z2) | (i_y & z2 & ~x2) | (i_z & x2 & ~z2);
    const std::uint64_t minus =
        (i_x & z2 & ~x2) | (i_y & x2 & ~z2) | (i_z & x2 & z2);
    phase += __builtin_popcountll(plus) - __builtin_popcountll(minus);
    xs_[h * words_ + w] = x1 ^ x2;
    zs_[h * words_ + w] = z1 ^ z2;
  }
  rs_[h] = ((phase % 4) + 4) % 4 == 2;
}

void Tableau::apply_h(Qubit q) {
  check_qubit(q);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool x = x_bit(row, q);
    const bool z = z_bit(row, q);
    rs_[row] = rs_[row] ^ (x && z);
    set_x_bit(row, q, z);
    set_z_bit(row, q, x);
  }
}

void Tableau::apply_s(Qubit q) {
  check_qubit(q);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool x = x_bit(row, q);
    const bool z = z_bit(row, q);
    rs_[row] = rs_[row] ^ (x && z);
    set_z_bit(row, q, x != z);
  }
}

void Tableau::apply_sdag(Qubit q) {
  check_qubit(q);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool x = x_bit(row, q);
    const bool z = z_bit(row, q);
    rs_[row] = rs_[row] ^ (x && !z);
    set_z_bit(row, q, x != z);
  }
}

void Tableau::apply_x(Qubit q) {
  check_qubit(q);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    rs_[row] = rs_[row] ^ z_bit(row, q);
  }
}

void Tableau::apply_z(Qubit q) {
  check_qubit(q);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    rs_[row] = rs_[row] ^ x_bit(row, q);
  }
}

void Tableau::apply_y(Qubit q) {
  check_qubit(q);
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    rs_[row] = rs_[row] ^ (x_bit(row, q) != z_bit(row, q));
  }
}

void Tableau::apply_cnot(Qubit control, Qubit target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("Tableau: CNOT operands must differ");
  }
  for (std::size_t row = 0; row < 2 * n_; ++row) {
    const bool xc = x_bit(row, control);
    const bool zc = z_bit(row, control);
    const bool xt = x_bit(row, target);
    const bool zt = z_bit(row, target);
    rs_[row] = rs_[row] ^ (xc && zt && (xt == zc));
    set_x_bit(row, target, xt != xc);
    set_z_bit(row, control, zc != zt);
  }
}

void Tableau::apply_cz(Qubit control, Qubit target) {
  apply_h(target);
  apply_cnot(control, target);
  apply_h(target);
}

void Tableau::apply_swap(Qubit a, Qubit b) {
  apply_cnot(a, b);
  apply_cnot(b, a);
  apply_cnot(a, b);
}

void Tableau::apply_unitary(const Operation& op) {
  switch (op.gate()) {
    case GateType::kI:
      return;
    case GateType::kX:
      return apply_x(op.qubit(0));
    case GateType::kY:
      return apply_y(op.qubit(0));
    case GateType::kZ:
      return apply_z(op.qubit(0));
    case GateType::kH:
      return apply_h(op.qubit(0));
    case GateType::kS:
      return apply_s(op.qubit(0));
    case GateType::kSdag:
      return apply_sdag(op.qubit(0));
    case GateType::kCnot:
      return apply_cnot(op.control(), op.target());
    case GateType::kCz:
      return apply_cz(op.control(), op.target());
    case GateType::kSwap:
      return apply_swap(op.control(), op.target());
    default:
      throw std::invalid_argument(
          "Tableau: gate is not stabilizer-simulable: " + op.str());
  }
}

void Tableau::apply_pauli(const PauliString& p) {
  if (p.num_qubits() > n_) {
    throw std::invalid_argument("Tableau: Pauli string too wide");
  }
  for (std::size_t q = 0; q < p.num_qubits(); ++q) {
    switch (p.pauli(q)) {
      case Pauli::kI:
        break;
      case Pauli::kX:
        apply_x(static_cast<Qubit>(q));
        break;
      case Pauli::kY:
        apply_y(static_cast<Qubit>(q));
        break;
      case Pauli::kZ:
        apply_z(static_cast<Qubit>(q));
        break;
    }
  }
}

MeasureResult Tableau::measure(Qubit q) {
  check_qubit(q);
  // Look for a stabilizer row that anticommutes with Z_q.
  std::size_t p = 0;
  bool random = false;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (x_bit(i, q)) {
      p = i;
      random = true;
      break;
    }
  }
  if (random) {
    for (std::size_t i = 0; i < 2 * n_; ++i) {
      if (i != p && x_bit(i, q)) {
        rowsum(i, p);
      }
    }
    // Destabilizer p-n := old stabilizer p; stabilizer p := +/- Z_q.
    for (std::size_t w = 0; w < words_; ++w) {
      xs_[(p - n_) * words_ + w] = xs_[p * words_ + w];
      zs_[(p - n_) * words_ + w] = zs_[p * words_ + w];
    }
    rs_[p - n_] = rs_[p];
    zero_row(p);
    set_z_bit(p, q, true);
    const bool outcome = (rng_() & 1) != 0;
    rs_[p] = outcome;
    return {.value = outcome, .deterministic = false};
  }
  // Deterministic: accumulate the stabilizer product matching Z_q into
  // the scratch row.
  const std::size_t scratch = 2 * n_;
  zero_row(scratch);
  for (std::size_t i = 0; i < n_; ++i) {
    if (x_bit(i, q)) {
      rowsum(scratch, i + n_);
    }
  }
  return {.value = rs_[scratch], .deterministic = true};
}

void Tableau::reset(Qubit q) {
  if (measure(q).value) {
    apply_x(q);
  }
}

void Tableau::execute(const Operation& op) {
  switch (category(op.gate())) {
    case GateCategory::kInitialization:
      return reset(op.qubit(0));
    case GateCategory::kMeasurement:
      measurements_.push_back(measure(op.qubit(0)));
      return;
    default:
      return apply_unitary(op);
  }
}

void Tableau::execute(const Circuit& circuit) {
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      execute(op);
    }
  }
}

std::vector<MeasureResult> Tableau::take_measurements() {
  std::vector<MeasureResult> out;
  out.swap(measurements_);
  return out;
}

double Tableau::probability_one(Qubit q) const {
  check_qubit(q);
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (x_bit(i, q)) {
      return 0.5;
    }
  }
  // Deterministic: same scratch computation, on a copy to stay const.
  Tableau copy = *this;
  return copy.measure(q).value ? 1.0 : 0.0;
}

int Tableau::expectation(const PauliString& p) const {
  if (p.num_qubits() > n_) {
    throw std::invalid_argument("Tableau: Pauli string too wide");
  }
  // If p anticommutes with any stabilizer generator the outcome is random.
  for (std::size_t i = 0; i < n_; ++i) {
    bool anticommute = false;
    for (std::size_t q = 0; q < p.num_qubits(); ++q) {
      const bool term = (p.x_bit(q) && z_bit(n_ + i, q)) ^
                        (p.z_bit(q) && x_bit(n_ + i, q));
      anticommute ^= term;
    }
    if (anticommute) {
      return 0;
    }
  }
  // p commutes with the whole group, so p = +/- product of the stabilizer
  // generators whose destabilizer partners anticommute with p.  Build the
  // product in a scratch copy and compare signs.
  Tableau copy = *this;
  const std::size_t scratch = 2 * n_;
  copy.zero_row(scratch);
  for (std::size_t i = 0; i < n_; ++i) {
    bool anticommute = false;
    for (std::size_t q = 0; q < p.num_qubits(); ++q) {
      const bool term = (p.x_bit(q) && z_bit(i, q)) ^
                        (p.z_bit(q) && x_bit(i, q));
      anticommute ^= term;
    }
    if (anticommute) {
      copy.rowsum(scratch, i + n_);
    }
  }
  // The scratch row must now equal p's tensor part.
  for (std::size_t q = 0; q < n_; ++q) {
    const bool px = q < p.num_qubits() && p.x_bit(q);
    const bool pz = q < p.num_qubits() && p.z_bit(q);
    if (copy.x_bit(scratch, q) != px || copy.z_bit(scratch, q) != pz) {
      return 0;  // not in the stabilizer group (mixed/odd case)
    }
  }
  const int group_sign = copy.rs_[scratch] ? -1 : +1;
  return group_sign * p.sign();
}

PauliString Tableau::row_to_string(std::size_t row) const {
  PauliString out(n_);
  for (std::size_t q = 0; q < n_; ++q) {
    const bool x = x_bit(row, q);
    const bool z = z_bit(row, q);
    out.set_pauli(q, x ? (z ? Pauli::kY : Pauli::kX)
                       : (z ? Pauli::kZ : Pauli::kI));
  }
  out.set_sign(rs_[row] ? -1 : +1);
  return out;
}

PauliString Tableau::stabilizer(std::size_t i) const {
  if (i >= n_) {
    throw std::out_of_range("Tableau: stabilizer index out of range");
  }
  return row_to_string(n_ + i);
}

PauliString Tableau::destabilizer(std::size_t i) const {
  if (i >= n_) {
    throw std::out_of_range("Tableau: destabilizer index out of range");
  }
  return row_to_string(i);
}

void Tableau::save(journal::SnapshotWriter& out) const {
  out.tag("tableau");
  out.write_size(n_);
  out.write_bytes(xs_.data(), xs_.size() * sizeof(std::uint64_t));
  out.write_bytes(zs_.data(), zs_.size() * sizeof(std::uint64_t));
  std::vector<std::uint8_t> signs(rs_.size());
  for (std::size_t i = 0; i < rs_.size(); ++i) {
    signs[i] = rs_[i] ? 1 : 0;
  }
  out.write_bytes(signs.data(), signs.size());
  out.write_rng(rng_);
  out.write_size(measurements_.size());
  for (const MeasureResult& m : measurements_) {
    out.write_bool(m.value);
    out.write_bool(m.deterministic);
  }
}

Tableau Tableau::load(journal::SnapshotReader& in) {
  in.expect_tag("tableau");
  const std::size_t n = in.read_size();
  if (n == 0 || n > (std::size_t{1} << 24)) {
    throw CheckpointError("tableau snapshot: implausible qubit count " +
                          std::to_string(n));
  }
  Tableau t(n);
  in.read_bytes(t.xs_.data(), t.xs_.size() * sizeof(std::uint64_t));
  in.read_bytes(t.zs_.data(), t.zs_.size() * sizeof(std::uint64_t));
  std::vector<std::uint8_t> signs(t.rs_.size());
  in.read_bytes(signs.data(), signs.size());
  for (std::size_t i = 0; i < signs.size(); ++i) {
    t.rs_[i] = signs[i] != 0;
  }
  t.rng_ = in.read_rng();
  const std::size_t pending = in.read_size();
  t.measurements_.clear();
  for (std::size_t i = 0; i < pending; ++i) {
    MeasureResult m;
    m.value = in.read_bool();
    m.deterministic = in.read_bool();
    t.measurements_.push_back(m);
  }
  return t;
}

}  // namespace qpf::stab

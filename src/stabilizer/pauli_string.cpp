#include "stabilizer/pauli_string.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace qpf::stab {

PauliString::PauliString(std::size_t num_qubits)
    : paulis_(num_qubits, Pauli::kI) {
  if (num_qubits == 0) {
    throw std::invalid_argument("PauliString: zero qubits");
  }
}

PauliString PauliString::parse(const std::string& text,
                               std::size_t num_qubits) {
  std::size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  std::vector<std::pair<std::size_t, Pauli>> factors;
  std::size_t max_index = 0;
  while (pos < text.size()) {
    const char c = static_cast<char>(
        std::toupper(static_cast<unsigned char>(text[pos])));
    Pauli p;
    switch (c) {
      case 'I':
        p = Pauli::kI;
        break;
      case 'X':
        p = Pauli::kX;
        break;
      case 'Y':
        p = Pauli::kY;
        break;
      case 'Z':
        p = Pauli::kZ;
        break;
      default:
        throw std::invalid_argument("PauliString: bad Pauli letter");
    }
    ++pos;
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      throw std::invalid_argument("PauliString: missing qubit index");
    }
    std::size_t index = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      index = index * 10 + static_cast<std::size_t>(text[pos] - '0');
      ++pos;
    }
    max_index = std::max(max_index, index);
    factors.emplace_back(index, p);
  }
  if (factors.empty()) {
    throw std::invalid_argument("PauliString: no factors");
  }
  PauliString result(std::max(num_qubits, max_index + 1));
  result.negative_ = negative;
  for (const auto& [index, p] : factors) {
    if (result.paulis_[index] != Pauli::kI && p != Pauli::kI) {
      throw std::invalid_argument("PauliString: repeated qubit index");
    }
    if (p != Pauli::kI) {
      result.paulis_[index] = p;
    }
  }
  return result;
}

void PauliString::set_sign(int s) {
  if (s != 1 && s != -1) {
    throw std::invalid_argument("PauliString: sign must be +/-1");
  }
  negative_ = s == -1;
}

bool PauliString::x_bit(std::size_t q) const {
  const auto p = paulis_.at(q);
  return p == Pauli::kX || p == Pauli::kY;
}

bool PauliString::z_bit(std::size_t q) const {
  const auto p = paulis_.at(q);
  return p == Pauli::kZ || p == Pauli::kY;
}

bool PauliString::commutes_with(const PauliString& other) const {
  if (num_qubits() != other.num_qubits()) {
    throw std::invalid_argument("commutes_with: size mismatch");
  }
  // Two Pauli strings commute iff they anticommute on an even number of
  // tensor factors; symplectic form: sum over q of x1*z2 + z1*x2 (mod 2).
  bool anticommute = false;
  for (std::size_t q = 0; q < num_qubits(); ++q) {
    const bool term = (x_bit(q) && other.z_bit(q)) ^
                      (z_bit(q) && other.x_bit(q));
    anticommute ^= term;
  }
  return !anticommute;
}

std::size_t PauliString::weight() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(paulis_.begin(), paulis_.end(),
                    [](Pauli p) { return p != Pauli::kI; }));
}

std::string PauliString::str() const {
  std::string out = negative_ ? "-" : "+";
  bool any = false;
  for (std::size_t q = 0; q < paulis_.size(); ++q) {
    static constexpr char kLetters[] = {'I', 'X', 'Z', 'Y'};
    if (paulis_[q] != Pauli::kI) {
      out += kLetters[static_cast<std::size_t>(paulis_[q])];
      out += std::to_string(q);
      any = true;
    }
  }
  if (!any) {
    out += 'I';
  }
  return out;
}

}  // namespace qpf::stab

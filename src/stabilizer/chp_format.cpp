#include "stabilizer/chp_format.h"

#include <sstream>
#include <stdexcept>

#include "circuit/error.h"

namespace qpf::stab {

std::string to_chp(const Circuit& circuit) {
  std::ostringstream os;
  os << "#\n";
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      switch (op.gate()) {
        case GateType::kH:
          os << "h " << op.qubit(0) << "\n";
          break;
        case GateType::kS:
          os << "p " << op.qubit(0) << "\n";
          break;
        case GateType::kCnot:
          os << "c " << op.control() << " " << op.target() << "\n";
          break;
        case GateType::kMeasureZ:
          os << "m " << op.qubit(0) << "\n";
          break;
        default:
          throw std::invalid_argument("to_chp: gate not in CHP set: " +
                                      op.str());
      }
    }
  }
  return os.str();
}

Circuit from_chp(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  Circuit circuit{"chp"};
  std::size_t line_no = 0;
  bool in_header = true;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (in_header) {
      // The CHP header runs until a line starting with '#'.
      if (line[0] == '#') {
        in_header = false;
      }
      continue;
    }
    std::istringstream ls(line);
    char mnemonic = 0;
    ls >> mnemonic;
    unsigned long a = 0;
    unsigned long b = 0;
    switch (mnemonic) {
      case 'h':
        ls >> a;
        circuit.append(GateType::kH, static_cast<Qubit>(a));
        break;
      case 'p':
        ls >> a;
        circuit.append(GateType::kS, static_cast<Qubit>(a));
        break;
      case 'c':
        ls >> a >> b;
        circuit.append(GateType::kCnot, static_cast<Qubit>(a),
                       static_cast<Qubit>(b));
        break;
      case 'm':
        ls >> a;
        circuit.append(GateType::kMeasureZ, static_cast<Qubit>(a));
        break;
      default:
        throw QasmParseError("chp: bad mnemonic", line_no);
    }
    if (ls.fail()) {
      throw QasmParseError("chp: bad operands", line_no);
    }
  }
  return circuit;
}

Circuit expand_to_chp_gates(const Circuit& circuit) {
  Circuit out{circuit.name()};
  const auto q0 = [](const Operation& op) { return op.qubit(0); };
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      switch (op.gate()) {
        case GateType::kI:
          break;
        case GateType::kH:
        case GateType::kS:
        case GateType::kCnot:
        case GateType::kMeasureZ:
          out.append(op);
          break;
        case GateType::kX:  // X = H Z H = H S S H
          out.append(GateType::kH, q0(op));
          out.append(GateType::kS, q0(op));
          out.append(GateType::kS, q0(op));
          out.append(GateType::kH, q0(op));
          break;
        case GateType::kZ:  // Z = S S
          out.append(GateType::kS, q0(op));
          out.append(GateType::kS, q0(op));
          break;
        case GateType::kY:  // Y ~ Z X up to global phase
          out.append(GateType::kS, q0(op));
          out.append(GateType::kS, q0(op));
          out.append(GateType::kH, q0(op));
          out.append(GateType::kS, q0(op));
          out.append(GateType::kS, q0(op));
          out.append(GateType::kH, q0(op));
          break;
        case GateType::kSdag:  // S† = S S S
          out.append(GateType::kS, q0(op));
          out.append(GateType::kS, q0(op));
          out.append(GateType::kS, q0(op));
          break;
        case GateType::kCz:  // CZ = (I ⊗ H) CNOT (I ⊗ H)
          out.append(GateType::kH, op.target());
          out.append(GateType::kCnot, op.control(), op.target());
          out.append(GateType::kH, op.target());
          break;
        case GateType::kSwap:
          out.append(GateType::kCnot, op.control(), op.target());
          out.append(GateType::kCnot, op.target(), op.control());
          out.append(GateType::kCnot, op.control(), op.target());
          break;
        default:
          throw std::invalid_argument(
              "expand_to_chp_gates: not expressible in CHP: " + op.str());
      }
    }
  }
  return out;
}

}  // namespace qpf::stab

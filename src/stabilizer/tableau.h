// Aaronson–Gottesman stabilizer tableau simulator — the in-process
// stand-in for the paper's CHP backend (thesis §4.1.2).
//
// The tableau stores n destabilizer and n stabilizer generator rows in
// the binary-symplectic representation, packed 64 qubits per word.
// Clifford gates update rows in O(n); measurement is O(n^2).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "circuit/circuit.h"
#include "journal/snapshot.h"
#include "stabilizer/pauli_string.h"

namespace qpf::stab {

/// Measurement outcome (mirrors sv::MeasureResult).
struct MeasureResult {
  bool value = false;
  bool deterministic = false;

  [[nodiscard]] int sign() const noexcept { return value ? -1 : +1; }
};

class Tableau {
 public:
  /// |0...0> on num_qubits qubits.
  explicit Tableau(std::size_t num_qubits, std::uint64_t seed = 1);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return n_; }

  // --- Clifford gate applications -----------------------------------
  void apply_h(Qubit q);
  void apply_s(Qubit q);
  void apply_sdag(Qubit q);
  void apply_x(Qubit q);
  void apply_y(Qubit q);
  void apply_z(Qubit q);
  void apply_cnot(Qubit control, Qubit target);
  void apply_cz(Qubit control, Qubit target);
  void apply_swap(Qubit a, Qubit b);

  /// Apply any Clifford operation from the circuit IR.  Throws
  /// std::invalid_argument for non-Clifford gates (T / T†) and for
  /// prep/measure (use reset / measure).
  void apply_unitary(const Operation& op);

  /// Apply a Pauli string as a unitary (error injection).
  void apply_pauli(const PauliString& p);

  // --- Non-unitary operations ---------------------------------------
  /// Z-basis measurement with collapse.
  MeasureResult measure(Qubit q);

  /// Reset qubit q to |0>.
  void reset(Qubit q);

  /// Execute a full operation of any category; measurement results are
  /// recorded (take_measurements()).
  void execute(const Operation& op);
  void execute(const Circuit& circuit);
  [[nodiscard]] std::vector<MeasureResult> take_measurements();

  // --- Introspection -------------------------------------------------
  /// Expectation of a Pauli string (including its sign) on the current
  /// state: +1 / -1 when it is (anti)stabilized, 0 when the measurement
  /// outcome would be random.
  [[nodiscard]] int expectation(const PauliString& p) const;

  /// True if the signed Pauli string stabilizes the current state.
  [[nodiscard]] bool is_stabilized_by(const PauliString& p) const {
    return expectation(p) == 1;
  }

  /// Stabilizer generator row i (0 <= i < n) as a Pauli string.
  [[nodiscard]] PauliString stabilizer(std::size_t i) const;
  /// Destabilizer generator row i.
  [[nodiscard]] PauliString destabilizer(std::size_t i) const;

  /// Probability that measuring q yields 1: 0, 0.5, or 1.
  [[nodiscard]] double probability_one(Qubit q) const;

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize the complete simulator state: tableau bits, sign bits,
  /// the RNG engine (exactly), and pending measurement records.
  void save(journal::SnapshotWriter& out) const;

  /// Rebuild a tableau from a save() stream.  Throws
  /// qpf::CheckpointError on corruption or truncation.
  [[nodiscard]] static Tableau load(journal::SnapshotReader& in);

 private:
  // Row r in [0, 2n]: destabilizers, stabilizers, then one scratch row.
  [[nodiscard]] bool x_bit(std::size_t row, std::size_t q) const noexcept;
  [[nodiscard]] bool z_bit(std::size_t row, std::size_t q) const noexcept;
  void set_x_bit(std::size_t row, std::size_t q, bool v) noexcept;
  void set_z_bit(std::size_t row, std::size_t q, bool v) noexcept;
  void zero_row(std::size_t row) noexcept;
  /// row h *= row i, tracking the phase (AG "rowsum").
  void rowsum(std::size_t h, std::size_t i) noexcept;
  void check_qubit(Qubit q) const;
  [[nodiscard]] PauliString row_to_string(std::size_t row) const;

  std::size_t n_;
  std::size_t words_;  // words per row side
  // xs_/zs_ are (2n+1) rows by words_ words; rs_ holds the sign bits.
  std::vector<std::uint64_t> xs_;
  std::vector<std::uint64_t> zs_;
  std::vector<bool> rs_;
  std::mt19937_64 rng_;
  std::vector<MeasureResult> measurements_;
};

}  // namespace qpf::stab

// Aaronson–Gottesman stabilizer tableau simulator — the in-process
// stand-in for the paper's CHP backend (thesis §4.1.2).
//
// The tableau stores n destabilizer and n stabilizer generator rows in
// the binary-symplectic representation.  Storage is COLUMN-MAJOR: the
// X (and Z) bits of qubit q across all 2n+1 rows are contiguous words,
// so every Clifford gate is a straight-line AND/XOR loop over
// ceil((2n+1)/64) words instead of 2n per-row bit pokes, and the sign
// column is a packed word vector updated the same way.  Measurement
// uses a word-parallel broadcast rowsum (one source row accumulated
// into every anticommuting row at once, with bit-sliced mod-4 phase
// counters), keeping the O(n^2/w) CHP cost while the per-gate cost
// drops to O(n/w).  See DESIGN.md "Column-major tableau layout".
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "circuit/circuit.h"
#include "journal/snapshot.h"
#include "stabilizer/pauli_string.h"

namespace qpf::stab {

/// Measurement outcome (mirrors sv::MeasureResult).
struct MeasureResult {
  bool value = false;
  bool deterministic = false;

  [[nodiscard]] int sign() const noexcept { return value ? -1 : +1; }
};

class Tableau {
 public:
  /// |0...0> on num_qubits qubits.
  explicit Tableau(std::size_t num_qubits, std::uint64_t seed = 1);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return n_; }

  // --- Clifford gate applications -----------------------------------
  void apply_h(Qubit q);
  void apply_s(Qubit q);
  void apply_sdag(Qubit q);
  void apply_x(Qubit q);
  void apply_y(Qubit q);
  void apply_z(Qubit q);
  void apply_cnot(Qubit control, Qubit target);
  void apply_cz(Qubit control, Qubit target);
  void apply_swap(Qubit a, Qubit b);

  /// Apply any Clifford operation from the circuit IR.  Throws
  /// std::invalid_argument for non-Clifford gates (T / T†) and for
  /// prep/measure (use reset / measure).
  void apply_unitary(const Operation& op);

  /// Apply a Pauli string as a unitary (error injection).
  void apply_pauli(const PauliString& p);

  // --- Non-unitary operations ---------------------------------------
  /// Z-basis measurement with collapse.
  MeasureResult measure(Qubit q);

  /// Reset qubit q to |0>.
  void reset(Qubit q);

  /// Execute a full operation of any category; measurement results are
  /// recorded (take_measurements()).
  void execute(const Operation& op);
  void execute(const Circuit& circuit);
  [[nodiscard]] std::vector<MeasureResult> take_measurements();

  // --- Introspection -------------------------------------------------
  /// Expectation of a Pauli string (including its sign) on the current
  /// state: +1 / -1 when it is (anti)stabilized, 0 when the measurement
  /// outcome would be random.
  [[nodiscard]] int expectation(const PauliString& p) const;

  /// True if the signed Pauli string stabilizes the current state.
  [[nodiscard]] bool is_stabilized_by(const PauliString& p) const {
    return expectation(p) == 1;
  }

  /// Stabilizer generator row i (0 <= i < n) as a Pauli string.
  [[nodiscard]] PauliString stabilizer(std::size_t i) const;
  /// Destabilizer generator row i.
  [[nodiscard]] PauliString destabilizer(std::size_t i) const;

  /// Probability that measuring q yields 1: 0, 0.5, or 1.
  [[nodiscard]] double probability_one(Qubit q) const;

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize the complete simulator state: tableau bits (column-major
  /// layout, tag "tableau2"), packed sign words, the RNG engine
  /// (exactly), and pending measurement records.
  void save(journal::SnapshotWriter& out) const;

  /// Rebuild a tableau from a save() stream.  Accepts both the current
  /// "tableau2" (column-major) layout and the legacy row-major
  /// "tableau" layout written before the word-parallel kernels.
  /// Throws qpf::CheckpointError on corruption or truncation.
  [[nodiscard]] static Tableau load(journal::SnapshotReader& in);

 private:
  // Row r in [0, 2n]: destabilizers, stabilizers, then one scratch row.
  // Column q's words live at xs_[q * cw_ .. q * cw_ + cw_); bit r%64 of
  // word r/64 is row r.  rs_ packs the sign column the same way.
  [[nodiscard]] std::uint64_t* x_col(std::size_t q) noexcept {
    return xs_.data() + q * cw_;
  }
  [[nodiscard]] const std::uint64_t* x_col(std::size_t q) const noexcept {
    return xs_.data() + q * cw_;
  }
  [[nodiscard]] std::uint64_t* z_col(std::size_t q) noexcept {
    return zs_.data() + q * cw_;
  }
  [[nodiscard]] const std::uint64_t* z_col(std::size_t q) const noexcept {
    return zs_.data() + q * cw_;
  }
  [[nodiscard]] bool x_bit(std::size_t row, std::size_t q) const noexcept;
  [[nodiscard]] bool z_bit(std::size_t row, std::size_t q) const noexcept;
  [[nodiscard]] bool r_bit(std::size_t row) const noexcept;
  void set_x_bit(std::size_t row, std::size_t q, bool v) noexcept;
  void set_z_bit(std::size_t row, std::size_t q, bool v) noexcept;
  void set_r_bit(std::size_t row, bool v) noexcept;
  void zero_row(std::size_t row) noexcept;
  /// row h *= row i, tracking the phase (AG "rowsum"); one column at a
  /// time — used on the scratch row where targets are single rows.
  void rowsum(std::size_t h, std::size_t i) noexcept;
  /// Word-parallel broadcast rowsum: accumulate source row p into every
  /// row whose bit is set in `targets` (cw_ words; p must be excluded),
  /// tracking all phases at once via bit-sliced mod-4 counters.
  void rowsum_batch(const std::uint64_t* targets, std::size_t p);
  /// Mask of the bits of column word w whose row index is in [lo, hi).
  [[nodiscard]] static std::uint64_t range_mask(std::size_t w, std::size_t lo,
                                                std::size_t hi) noexcept;
  void check_qubit(Qubit q) const;
  [[nodiscard]] PauliString row_to_string(std::size_t row) const;

  std::size_t n_;
  std::size_t cw_;  // words per column: ceil((2n+1)/64)
  // Column-major: n_ columns of cw_ words each; rs_ is the sign column.
  std::vector<std::uint64_t> xs_;
  std::vector<std::uint64_t> zs_;
  std::vector<std::uint64_t> rs_;
  // Scratch for rowsum_batch's bit-sliced phase counters (mod 4).
  std::vector<std::uint64_t> phase_lo_;
  std::vector<std::uint64_t> phase_hi_;
  std::mt19937_64 rng_;
  std::vector<MeasureResult> measurements_;
};

}  // namespace qpf::stab

#include "qcu/qcu.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::qcu {

using arch::BinaryState;
using arch::BinaryValue;
using qec::CheckType;
using qec::DanceMode;
using qec::NinjaStar;
using qec::Sc17Layout;
using qec::StateValue;
using qec::Syndrome;

QuantumControlUnit::QuantumControlUnit(arch::Core* pel, std::size_t slots,
                                       bool use_pauli_frame)
    : pel_(pel), table_(slots) {
  if (pel == nullptr) {
    throw QcuError("QuantumControlUnit", "null PEL");
  }
  pel_->remove_qubits();
  pel_->create_qubits(table_.num_physical_qubits());
  measurements_.assign(table_.num_physical_qubits(), std::nullopt);
  if (use_pauli_frame) {
    pfu_.emplace(table_.num_physical_qubits());
    arbiter_.emplace(
        *pfu_, [this](const Operation& op) { buffer_.append(op); },
        /*trace_enabled=*/false);
  }
}

void QuantumControlUnit::load(std::vector<Instruction> program) {
  program_ = std::move(program);
  pc_ = 0;
  halted_ = false;
}

void QuantumControlUnit::run() {
  while (step()) {
  }
}

bool QuantumControlUnit::step() {
  if (halted_ || pc_ >= program_.size()) {
    return false;
  }
  const Instruction instruction = program_[pc_++];
  ++stats_.instructions;
  exec(instruction);
  return !halted_ && pc_ < program_.size();
}

void QuantumControlUnit::issue(const Operation& op) {
  if (arbiter_) {
    const pf::Route route = arbiter_->submit(op);
    if (route == pf::Route::kPauliToPfu) {
      ++stats_.paulis_absorbed;
    }
  } else {
    buffer_.append(op);
  }
}

void QuantumControlUnit::flush_buffer() {
  if (buffer_.empty()) {
    return;
  }
  stats_.operations_to_pel += buffer_.num_operations();
  ++stats_.flushes;
  pel_->add(buffer_);
  pel_->execute();
  buffer_ = Circuit{};
}

BinaryState QuantumControlUnit::read_corrected_state() {
  flush_buffer();
  BinaryState state = pel_->get_state();
  if (pfu_) {
    for (Qubit q = 0; q < state.size(); ++q) {
      if (state[q] == BinaryValue::kUnknown) {
        continue;
      }
      const bool raw = state[q] == BinaryValue::kOne;
      state[q] = pfu_->map_measurement_result(q, raw) ? BinaryValue::kOne
                                                      : BinaryValue::kZero;
    }
  }
  return state;
}

bool QuantumControlUnit::read_bit(Qubit physical) {
  const BinaryState state = read_corrected_state();
  if (state.at(physical) == BinaryValue::kUnknown) {
    throw std::logic_error("QuantumControlUnit: qubit not measured");
  }
  return state.at(physical) == BinaryValue::kOne;
}

NinjaStar& QuantumControlUnit::star_of(PatchId patch) {
  if (patch >= stars_.size() || !stars_[patch].has_value()) {
    throw QcuError("QuantumControlUnit", "patch not alive");
  }
  return *stars_[patch];
}

Syndrome QuantumControlUnit::run_esm_round(NinjaStar& star) {
  for (const TimeSlot& slot : star.esm_circuit()) {
    for (const Operation& op : slot) {
      issue(op);
    }
  }
  const BinaryState state = read_corrected_state();
  Syndrome syndrome = star.carried_syndrome();
  for (int ancilla : star.esm_measurement_order()) {
    const Qubit q = Sc17Layout::ancilla_qubit(star.base(), ancilla);
    const Syndrome bit = static_cast<Syndrome>(1u << ancilla);
    if (state.at(q) == BinaryValue::kOne) {
      syndrome = static_cast<Syndrome>(syndrome | bit);
    } else {
      syndrome = static_cast<Syndrome>(syndrome & ~bit);
    }
  }
  return syndrome;
}

void QuantumControlUnit::run_window(NinjaStar& star) {
  ++stats_.qec_windows;
  const Syndrome r1 = run_esm_round(star);
  const Syndrome r2 = run_esm_round(star);
  for (const Operation& correction : star.decode_window(r1, r2)) {
    issue(correction);
  }
  flush_buffer();
}

void QuantumControlUnit::initialize_patch(NinjaStar& star) {
  for (const TimeSlot& slot : star.reset_circuit()) {
    for (const Operation& op : slot) {
      issue(op);
    }
  }
  star.on_reset();
  const Syndrome first = run_esm_round(star);
  for (const Operation& correction :
       star.decode_gauge(first, CheckType::kX)) {
    issue(correction);
  }
  run_window(star);
}

void QuantumControlUnit::logical_measure(PatchId patch) {
  NinjaStar& star = star_of(patch);
  for (const TimeSlot& slot : star.measure_circuit()) {
    for (const Operation& op : slot) {
      issue(op);
    }
  }
  const BinaryState data_state = read_corrected_state();
  std::array<bool, Sc17Layout::kNumData> bits{};
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    const Qubit q = Sc17Layout::data_qubit(star.base(), d);
    if (data_state.at(q) == BinaryValue::kUnknown) {
      throw std::logic_error("QuantumControlUnit: data qubit not measured");
    }
    bits[static_cast<std::size_t>(d)] = data_state.at(q) == BinaryValue::kOne;
  }
  // Partial ESM sweep accompanies the readout (§5.1.2); the classical
  // fix comes from the parity violations of the readout string itself
  // (see NinjaStarLayer::measure_logical).
  const Circuit partial =
      layout_.esm_circuit(star.base(), star.orientation(), DanceMode::kZOnly);
  for (const TimeSlot& slot : partial) {
    for (const Operation& op : slot) {
      issue(op);
    }
  }
  flush_buffer();
  std::vector<int> ones;
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    if (bits[static_cast<std::size_t>(d)]) {
      ones.push_back(d);
    }
  }
  const Syndrome violations = star.signature(ones, CheckType::kX);
  for (int d : star.decode_partial_round(violations)) {
    bits[static_cast<std::size_t>(d)] = !bits[static_cast<std::size_t>(d)];
  }
  int sign = +1;
  for (bool b : bits) {
    sign = b ? -sign : sign;
  }
  star.on_measured(sign);
}

void QuantumControlUnit::exec(const Instruction& instruction) {
  switch (instruction.op) {
    case Opcode::kNop:
      return;
    case Opcode::kHalt:
      flush_buffer();
      halted_ = true;
      return;
    case Opcode::kMapPatch: {
      table_.map_patch(instruction.a, instruction.b);
      if (instruction.a >= stars_.size()) {
        stars_.resize(instruction.a + 1);
      }
      stars_[instruction.a].emplace(table_.base(instruction.a), &layout_);
      initialize_patch(*stars_[instruction.a]);
      return;
    }
    case Opcode::kUnmapPatch:
      table_.unmap_patch(instruction.a);
      stars_[instruction.a].reset();
      return;
    case Opcode::kQecSlot:
      for (PatchId patch : table_.live_patches()) {
        run_window(star_of(patch));
      }
      return;
    case Opcode::kLogicalMeasure:
      logical_measure(instruction.a);
      return;
    case Opcode::kPrep: {
      const Qubit q = table_.translate(instruction.a);
      issue(Operation{GateType::kPrepZ, q});
      return;
    }
    case Opcode::kMeasure: {
      const Qubit q = table_.translate(instruction.a);
      issue(Operation{GateType::kMeasureZ, q});
      measurements_.at(q) = read_bit(q);
      return;
    }
    default: {
      const auto gate = gate_of(instruction.op);
      if (!gate.has_value()) {
        throw QcuError("QuantumControlUnit", "bad opcode");
      }
      if (is_two_qubit(instruction.op)) {
        issue(Operation{*gate, table_.translate(instruction.a),
                        table_.translate(instruction.b)});
      } else {
        issue(Operation{*gate, table_.translate(instruction.a)});
      }
      return;
    }
  }
}

std::optional<bool> QuantumControlUnit::measurement(VirtualQubit v) const {
  // Measurements are stored per *physical* qubit; translate through the
  // current table so relocations read back correctly.
  return measurements_.at(table_.translate(v));
}

StateValue QuantumControlUnit::logical_state(PatchId patch) const {
  if (patch >= stars_.size() || !stars_[patch].has_value()) {
    throw QcuError("QuantumControlUnit", "patch not alive");
  }
  return stars_[patch]->state();
}

}  // namespace qpf::qcu

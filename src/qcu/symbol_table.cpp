#include "qcu/symbol_table.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::qcu {

QSymbolTable::QSymbolTable(std::size_t slots)
    : slots_(slots), slot_used_(slots, false) {
  if (slots == 0) {
    throw QcuError("QSymbolTable", "zero slots");
  }
}

void QSymbolTable::map_patch(PatchId patch, std::uint16_t slot) {
  if (slot >= slots_) {
    throw QcuError("QSymbolTable", "slot out of range");
  }
  if (slot_used_[slot]) {
    throw QcuError("QSymbolTable", "slot already occupied");
  }
  if (patch >= slot_of_patch_.size()) {
    slot_of_patch_.resize(patch + 1);
  }
  if (slot_of_patch_[patch].has_value()) {
    throw QcuError("QSymbolTable", "patch already mapped");
  }
  slot_of_patch_[patch] = slot;
  slot_used_[slot] = true;
}

void QSymbolTable::unmap_patch(PatchId patch) {
  if (!alive(patch)) {
    throw QcuError("QSymbolTable", "patch not alive");
  }
  slot_used_[*slot_of_patch_[patch]] = false;
  slot_of_patch_[patch].reset();
}

bool QSymbolTable::alive(PatchId patch) const noexcept {
  return patch < slot_of_patch_.size() && slot_of_patch_[patch].has_value();
}

Qubit QSymbolTable::base(PatchId patch) const {
  if (!alive(patch)) {
    throw QcuError("QSymbolTable", "patch not alive");
  }
  return static_cast<Qubit>(*slot_of_patch_[patch] * kPatchStride);
}

Qubit QSymbolTable::translate(std::uint16_t virtual_qubit) const {
  const PatchId patch = patch_of(virtual_qubit);
  return base(patch) + virtual_qubit % kPatchStride;
}

std::vector<PatchId> QSymbolTable::live_patches() const {
  std::vector<PatchId> out;
  for (PatchId patch = 0; patch < slot_of_patch_.size(); ++patch) {
    if (slot_of_patch_[patch].has_value()) {
      out.push_back(patch);
    }
  }
  return out;
}

}  // namespace qpf::qcu

// The quantum-accelerator compiler of Fig 4.2: translates a *logical*
// circuit (gates on logical qubits) into the physical-level QISA
// program the QCU executes — logical operations become the Table 2.3
// chains/transversal sets over virtual qubit addresses, QEC slots are
// inserted after every logical operation (Fig 2.6), and patch
// allocation becomes map/unmap instructions.
//
// The compiler performs the same conversion the NinjaStarLayer does at
// run time, but ahead of time: it must therefore track each patch's
// lattice orientation itself (a logical H rotates the lattice and
// changes subsequent chain/pairing choices).
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "qcu/isa.h"

namespace qpf::qcu {

struct CompileOptions {
  /// QEC slots inserted after each logical gate (Fig 2.6).
  std::size_t qec_slots_per_operation = 1;
  /// Emit a trailing halt.
  bool emit_halt = true;
};

/// Compile a logical circuit to QISA.  Logical qubit q maps to patch q
/// in physical slot q.  PrepZ allocates (or re-initializes) the patch;
/// MeasureZ becomes a logical measurement.  Throws
/// std::invalid_argument for gates with no fault-tolerant SC17
/// implementation (T / T†).
[[nodiscard]] std::vector<Instruction> compile(
    const Circuit& logical, const CompileOptions& options = {});

}  // namespace qpf::qcu

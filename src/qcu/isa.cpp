#include "qcu/isa.h"

#include <array>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "circuit/error.h"

namespace qpf::qcu {

namespace {

constexpr std::uint32_t kOperandMask = 0xFFF;
constexpr std::uint8_t kMaxOpcode = static_cast<std::uint8_t>(Opcode::kHalt);

struct OpcodeInfo {
  Opcode op;
  std::string_view mnemonic;
};

constexpr std::array<OpcodeInfo, 20> kOpcodeTable{{
    {Opcode::kNop, "nop"},
    {Opcode::kPrep, "prep"},
    {Opcode::kMeasure, "measure"},
    {Opcode::kI, "i"},
    {Opcode::kX, "x"},
    {Opcode::kY, "y"},
    {Opcode::kZ, "z"},
    {Opcode::kH, "h"},
    {Opcode::kS, "s"},
    {Opcode::kSdag, "sdag"},
    {Opcode::kT, "t"},
    {Opcode::kTdag, "tdag"},
    {Opcode::kCnot, "cnot"},
    {Opcode::kCz, "cz"},
    {Opcode::kSwap, "swap"},
    {Opcode::kQecSlot, "qec"},
    {Opcode::kLogicalMeasure, "lmeas"},
    {Opcode::kMapPatch, "map"},
    {Opcode::kUnmapPatch, "unmap"},
    {Opcode::kHalt, "halt"},
}};

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw QcuError("qisa assembly error", why, line_no);
}

std::uint16_t parse_operand(const std::string& token, char prefix,
                            std::size_t line_no) {
  if (token.size() < 2 || token[0] != prefix) {
    fail(line_no, std::string("expected operand like ") + prefix +
                      "3, got '" + token + "'");
  }
  try {
    const unsigned long v = std::stoul(token.substr(1));
    if (v > kOperandMask) {
      fail(line_no, "operand out of 12-bit range: '" + token + "'");
    }
    return static_cast<std::uint16_t>(v);
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line_no, "bad operand '" + token + "'");
  }
}

}  // namespace

std::optional<GateType> gate_of(Opcode op) noexcept {
  switch (op) {
    case Opcode::kI:
      return GateType::kI;
    case Opcode::kX:
      return GateType::kX;
    case Opcode::kY:
      return GateType::kY;
    case Opcode::kZ:
      return GateType::kZ;
    case Opcode::kH:
      return GateType::kH;
    case Opcode::kS:
      return GateType::kS;
    case Opcode::kSdag:
      return GateType::kSdag;
    case Opcode::kT:
      return GateType::kT;
    case Opcode::kTdag:
      return GateType::kTdag;
    case Opcode::kCnot:
      return GateType::kCnot;
    case Opcode::kCz:
      return GateType::kCz;
    case Opcode::kSwap:
      return GateType::kSwap;
    default:
      return std::nullopt;
  }
}

Opcode opcode_of(GateType g) noexcept {
  switch (g) {
    case GateType::kI:
      return Opcode::kI;
    case GateType::kX:
      return Opcode::kX;
    case GateType::kY:
      return Opcode::kY;
    case GateType::kZ:
      return Opcode::kZ;
    case GateType::kH:
      return Opcode::kH;
    case GateType::kS:
      return Opcode::kS;
    case GateType::kSdag:
      return Opcode::kSdag;
    case GateType::kT:
      return Opcode::kT;
    case GateType::kTdag:
      return Opcode::kTdag;
    case GateType::kCnot:
      return Opcode::kCnot;
    case GateType::kCz:
      return Opcode::kCz;
    case GateType::kSwap:
      return Opcode::kSwap;
    case GateType::kPrepZ:
      return Opcode::kPrep;
    case GateType::kMeasureZ:
      return Opcode::kMeasure;
  }
  return Opcode::kNop;
}

bool is_two_qubit(Opcode op) noexcept {
  return op == Opcode::kCnot || op == Opcode::kCz || op == Opcode::kSwap;
}

std::uint32_t encode(const Instruction& instruction) {
  if (instruction.a > kOperandMask || instruction.b > kOperandMask) {
    throw QcuError("qisa encode", "operand exceeds 12 bits");
  }
  return (static_cast<std::uint32_t>(instruction.op) << 24) |
         (static_cast<std::uint32_t>(instruction.a) << 12) |
         static_cast<std::uint32_t>(instruction.b);
}

Instruction decode(std::uint32_t word) {
  const auto opcode = static_cast<std::uint8_t>(word >> 24);
  if (opcode > kMaxOpcode) {
    throw QcuError("qisa decode", "unknown opcode");
  }
  Instruction instruction;
  instruction.op = static_cast<Opcode>(opcode);
  instruction.a = static_cast<std::uint16_t>((word >> 12) & kOperandMask);
  instruction.b = static_cast<std::uint16_t>(word & kOperandMask);
  return instruction;
}

std::string_view mnemonic(Opcode op) noexcept {
  for (const OpcodeInfo& info : kOpcodeTable) {
    if (info.op == op) {
      return info.mnemonic;
    }
  }
  return "?";
}

std::string to_assembly(const Instruction& instruction) {
  std::string out{mnemonic(instruction.op)};
  switch (instruction.op) {
    case Opcode::kNop:
    case Opcode::kQecSlot:
    case Opcode::kHalt:
      return out;
    case Opcode::kLogicalMeasure:
    case Opcode::kUnmapPatch:
      return out + " p" + std::to_string(instruction.a);
    case Opcode::kMapPatch:
      return out + " p" + std::to_string(instruction.a) + " s" +
             std::to_string(instruction.b);
    default:
      out += " v" + std::to_string(instruction.a);
      if (is_two_qubit(instruction.op)) {
        out += ",v" + std::to_string(instruction.b);
      }
      return out;
  }
}

std::vector<Instruction> assemble(const std::string& text) {
  std::vector<Instruction> program;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;  // blank line
    }
    Instruction instruction;
    bool found = false;
    for (const OpcodeInfo& info : kOpcodeTable) {
      if (info.mnemonic == word) {
        instruction.op = info.op;
        found = true;
        break;
      }
    }
    if (!found) {
      fail(line_no, "unknown mnemonic '" + word + "'");
    }
    std::string operands;
    switch (instruction.op) {
      case Opcode::kNop:
      case Opcode::kQecSlot:
      case Opcode::kHalt:
        break;
      case Opcode::kLogicalMeasure:
      case Opcode::kUnmapPatch:
        if (!(ls >> operands)) {
          fail(line_no, "missing patch operand");
        }
        instruction.a = parse_operand(operands, 'p', line_no);
        break;
      case Opcode::kMapPatch: {
        std::string slot;
        if (!(ls >> operands >> slot)) {
          fail(line_no, "map needs a patch and a slot operand");
        }
        instruction.a = parse_operand(operands, 'p', line_no);
        instruction.b = parse_operand(slot, 's', line_no);
        break;
      }
      default: {
        if (!(ls >> operands)) {
          fail(line_no, "missing qubit operand");
        }
        const std::size_t comma = operands.find(',');
        if (is_two_qubit(instruction.op)) {
          if (comma == std::string::npos) {
            fail(line_no, "two-qubit instruction needs two operands");
          }
          instruction.a =
              parse_operand(operands.substr(0, comma), 'v', line_no);
          instruction.b = parse_operand(operands.substr(comma + 1), 'v',
                                        line_no);
        } else {
          if (comma != std::string::npos) {
            fail(line_no, "single-qubit instruction with two operands");
          }
          instruction.a = parse_operand(operands, 'v', line_no);
        }
        break;
      }
    }
    if (ls >> operands) {
      fail(line_no, "trailing token '" + operands + "'");
    }
    program.push_back(instruction);
  }
  return program;
}

std::string disassemble(const std::vector<Instruction>& program) {
  std::string out;
  for (const Instruction& instruction : program) {
    out += to_assembly(instruction);
    out += '\n';
  }
  return out;
}

}  // namespace qpf::qcu

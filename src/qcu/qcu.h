// The Quantum Control Unit of thesis §3.5.1 (Fig 3.10): execution
// controller, Q-address translation, Pauli arbiter + Pauli Frame Unit,
// QEC cycle generator and logic measurement unit, driving a Physical
// Execution Layer.
//
// This is the hardware-architecture counterpart of the QPDO layer
// composition in arch/: instead of stacking Core layers, one unit owns
// the whole datapath and executes QISA programs instruction by
// instruction.  Any arch::Core serves as the PEL (a simulator core, or
// a noisy stack of ErrorLayer over a core).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/core_interface.h"
#include "core/arbiter.h"
#include "qcu/isa.h"
#include "qcu/symbol_table.h"
#include "qec/ninja_star.h"

namespace qpf::qcu {

class QuantumControlUnit {
 public:
  struct Stats {
    std::size_t instructions = 0;
    std::size_t operations_to_pel = 0;
    std::size_t paulis_absorbed = 0;
    std::size_t qec_windows = 0;
    std::size_t flushes = 0;
  };

  /// Builds a QCU over `slots` SC17 placement slots.  Allocates
  /// slots * 17 qubits on the PEL.  With use_pauli_frame = false the
  /// arbiter is bypassed and every operation reaches the PEL.
  QuantumControlUnit(arch::Core* pel, std::size_t slots,
                     bool use_pauli_frame = true);

  /// Load a program (replaces any previous one, resets the PC).
  void load(std::vector<Instruction> program);
  void load_assembly(const std::string& text) { load(assemble(text)); }

  /// Run until kHalt or the end of the program.  Throws
  /// std::invalid_argument on a malformed instruction (e.g. an operand
  /// in a dead patch).
  void run();

  /// Single-step one instruction; returns false when halted / done.
  bool step();

  // --- Results ---------------------------------------------------------
  /// Frame-corrected result of the last `measure` on a virtual qubit.
  [[nodiscard]] std::optional<bool> measurement(VirtualQubit v) const;

  /// Logical state of a patch after `lmeas` (unknown before).
  [[nodiscard]] qec::StateValue logical_state(PatchId patch) const;

  [[nodiscard]] const QSymbolTable& symbol_table() const noexcept {
    return table_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const pf::PauliFrameUnit* pauli_frame_unit() const noexcept {
    return pfu_ ? &*pfu_ : nullptr;
  }

 private:
  void exec(const Instruction& instruction);
  /// Route one physical operation through the arbiter (or directly).
  void issue(const Operation& op);
  /// Push the pending operation buffer through the PEL.
  void flush_buffer();
  /// PEL state with measurement results corrected by the frame.
  [[nodiscard]] arch::BinaryState read_corrected_state();
  /// Read one corrected classical bit; throws if the qubit is unknown.
  [[nodiscard]] bool read_bit(Qubit physical);
  qec::Syndrome run_esm_round(qec::NinjaStar& star);
  void run_window(qec::NinjaStar& star);
  void initialize_patch(qec::NinjaStar& star);
  void logical_measure(PatchId patch);
  [[nodiscard]] qec::NinjaStar& star_of(PatchId patch);

  arch::Core* pel_;
  QSymbolTable table_;
  qec::Sc17Layout layout_;
  std::optional<pf::PauliFrameUnit> pfu_;
  std::optional<pf::PauliArbiter> arbiter_;
  Circuit buffer_;
  std::vector<std::optional<qec::NinjaStar>> stars_;  // by patch id
  std::vector<Instruction> program_;
  std::size_t pc_ = 0;
  bool halted_ = false;
  std::vector<std::optional<bool>> measurements_;  // by virtual qubit
  Stats stats_;
};

}  // namespace qpf::qcu

// Quantum Instruction Set Architecture (QISA) for the Quantum Control
// Unit of thesis §3.5.1 / Fig 3.10.
//
// The compiler emits physical-level instructions over *virtual* qubit
// addresses; the QCU's Q-Address-Translation stage resolves them to
// physical addresses through the Q Symbol Table at run time.  Beyond
// the physical gate set, the QISA carries the control instructions the
// thesis names: the QEC slot (expanded into ESM windows by the QEC
// cycle generator), logical measurement, and symbol-table updates.
//
// Binary encoding (32 bit):  [opcode:8][a:12][b:12].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/gate.h"

namespace qpf::qcu {

enum class Opcode : std::uint8_t {
  kNop = 0,
  // Physical operations (operand a = virtual qubit; b = second operand
  // for two-qubit gates).
  kPrep,
  kMeasure,
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdag,
  kT,
  kTdag,
  kCnot,
  kCz,
  kSwap,
  // Control instructions (operand a = logical patch id).
  kQecSlot,         ///< run one QEC window on every live patch
  kLogicalMeasure,  ///< transversal measurement of patch a
  kMapPatch,        ///< map patch a at physical base slot b (table update)
  kUnmapPatch,      ///< deallocate patch a
  kHalt,
};

/// Virtual qubit address: patch-local, patch = v / kPatchStride,
/// offset = v % kPatchStride.
using VirtualQubit = std::uint16_t;

/// One decoded instruction.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint16_t a = 0;
  std::uint16_t b = 0;

  [[nodiscard]] bool operator==(const Instruction&) const = default;
};

/// Physical gate type for gate opcodes; nullopt for control opcodes and
/// prep/measure.
[[nodiscard]] std::optional<GateType> gate_of(Opcode op) noexcept;

/// Opcode for a physical gate type.
[[nodiscard]] Opcode opcode_of(GateType g) noexcept;

/// True for opcodes taking two qubit operands.
[[nodiscard]] bool is_two_qubit(Opcode op) noexcept;

/// Binary encoding; throws std::invalid_argument if an operand exceeds
/// 12 bits.
[[nodiscard]] std::uint32_t encode(const Instruction& instruction);
/// Binary decoding; throws std::invalid_argument on an unknown opcode.
[[nodiscard]] Instruction decode(std::uint32_t word);

/// Mnemonic of an opcode ("qec", "lmeas", "map", ...).
[[nodiscard]] std::string_view mnemonic(Opcode op) noexcept;

/// Assembly text for one instruction, e.g. "cnot v0,v17" or "map p1 s2".
[[nodiscard]] std::string to_assembly(const Instruction& instruction);

/// Assemble a whole program (one instruction per line, '#' comments).
/// Throws std::runtime_error with a line number on malformed input.
[[nodiscard]] std::vector<Instruction> assemble(const std::string& text);

/// Disassemble a program.
[[nodiscard]] std::string disassemble(const std::vector<Instruction>& program);

}  // namespace qpf::qcu

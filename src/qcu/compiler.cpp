#include "qcu/compiler.h"

#include <array>
#include <stdexcept>

#include "circuit/error.h"
#include <vector>

#include "qcu/symbol_table.h"
#include "qec/sc17.h"

namespace qpf::qcu {

namespace {

using qec::Orientation;

constexpr std::uint16_t kStride = QSymbolTable::kPatchStride;

// §2.6.1 transversal pairing between lattices of different orientation
// (same table as qec::NinjaStar).
constexpr std::array<int, 9> kRotatedPairing{6, 3, 0, 7, 4, 1, 8, 5, 2};

struct PatchState {
  bool alive = false;
  Orientation orientation = Orientation::kNormal;
};

std::uint16_t virtual_qubit(Qubit logical, int data) {
  return static_cast<std::uint16_t>(logical * kStride +
                                    static_cast<unsigned>(data));
}

}  // namespace

std::vector<Instruction> compile(const Circuit& logical,
                                 const CompileOptions& options) {
  const qec::Sc17Layout layout;
  std::vector<Instruction> program;
  std::vector<PatchState> patches(logical.min_register_size());

  const auto require_alive = [&](Qubit q) -> PatchState& {
    PatchState& patch = patches.at(q);
    if (!patch.alive) {
      // Auto-allocate on first use so plain gate-only circuits compile.
      program.push_back({Opcode::kMapPatch, static_cast<std::uint16_t>(q),
                         static_cast<std::uint16_t>(q)});
      patch.alive = true;
      patch.orientation = Orientation::kNormal;
    }
    return patch;
  };
  const auto emit_qec = [&] {
    for (std::size_t i = 0; i < options.qec_slots_per_operation; ++i) {
      program.push_back({Opcode::kQecSlot, 0, 0});
    }
  };
  const auto emit_chain = [&](Qubit q, Opcode op,
                              const std::array<int, 3>& chain) {
    for (int d : chain) {
      program.push_back({op, virtual_qubit(q, d), 0});
    }
  };

  for (const TimeSlot& slot : logical) {
    for (const Operation& op : slot) {
      switch (op.gate()) {
        case GateType::kPrepZ: {
          PatchState& patch = patches.at(op.qubit(0));
          if (patch.alive) {
            program.push_back({Opcode::kUnmapPatch,
                               static_cast<std::uint16_t>(op.qubit(0)), 0});
          }
          program.push_back({Opcode::kMapPatch,
                             static_cast<std::uint16_t>(op.qubit(0)),
                             static_cast<std::uint16_t>(op.qubit(0))});
          patch.alive = true;
          patch.orientation = Orientation::kNormal;
          break;
        }
        case GateType::kMeasureZ:
          require_alive(op.qubit(0));
          program.push_back({Opcode::kLogicalMeasure,
                             static_cast<std::uint16_t>(op.qubit(0)), 0});
          break;
        case GateType::kI:
          require_alive(op.qubit(0));
          emit_qec();
          break;
        case GateType::kX: {
          const PatchState& patch = require_alive(op.qubit(0));
          emit_chain(op.qubit(0), Opcode::kX,
                     layout.logical_x_data(patch.orientation));
          emit_qec();
          break;
        }
        case GateType::kZ: {
          const PatchState& patch = require_alive(op.qubit(0));
          emit_chain(op.qubit(0), Opcode::kZ,
                     layout.logical_z_data(patch.orientation));
          emit_qec();
          break;
        }
        case GateType::kY: {
          const PatchState& patch = require_alive(op.qubit(0));
          emit_chain(op.qubit(0), Opcode::kZ,
                     layout.logical_z_data(patch.orientation));
          emit_chain(op.qubit(0), Opcode::kX,
                     layout.logical_x_data(patch.orientation));
          emit_qec();
          break;
        }
        case GateType::kH: {
          PatchState& patch = require_alive(op.qubit(0));
          for (int d = 0; d < 9; ++d) {
            program.push_back(
                {Opcode::kH, virtual_qubit(op.qubit(0), d), 0});
          }
          patch.orientation = qec::flip(patch.orientation);
          emit_qec();
          break;
        }
        case GateType::kCnot: {
          const PatchState& control = require_alive(op.control());
          const PatchState& target = require_alive(op.target());
          const bool same = control.orientation == target.orientation;
          for (int n = 0; n < 9; ++n) {
            const int m =
                same ? n : kRotatedPairing[static_cast<std::size_t>(n)];
            program.push_back({Opcode::kCnot,
                               virtual_qubit(op.control(), n),
                               virtual_qubit(op.target(), m)});
          }
          emit_qec();
          break;
        }
        case GateType::kCz: {
          const PatchState& a = require_alive(op.control());
          const PatchState& b = require_alive(op.target());
          // Inverted pairing rule relative to CNOT_L (§2.6.1).
          const bool same = a.orientation == b.orientation;
          for (int n = 0; n < 9; ++n) {
            const int m =
                same ? kRotatedPairing[static_cast<std::size_t>(n)] : n;
            program.push_back({Opcode::kCz, virtual_qubit(op.control(), n),
                               virtual_qubit(op.target(), m)});
          }
          emit_qec();
          break;
        }
        default:
          throw QcuError("compile",
                         "no fault-tolerant SC17 implementation for " +
                             op.str());
      }
    }
  }
  if (options.emit_halt) {
    program.push_back({Opcode::kHalt, 0, 0});
  }
  return program;
}

}  // namespace qpf::qcu

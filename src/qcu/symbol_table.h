// Q Symbol Table (thesis §3.5.1): the run-time map from compiler-
// visible virtual qubit addresses to physical qubit addresses, plus the
// bookkeeping of which logical patches are alive.
//
// Virtual addressing convention: virtual qubit v belongs to patch
// v / kPatchStride at patch-local offset v % kPatchStride.  A patch is
// an SC17 ninja star (17 physical qubits); physical placement slots are
// also 17 qubits wide, so relocating a patch is a single table update.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/operation.h"
#include "qec/sc17.h"

namespace qpf::qcu {

using PatchId = std::uint16_t;

class QSymbolTable {
 public:
  static constexpr std::uint16_t kPatchStride =
      static_cast<std::uint16_t>(qec::Sc17Layout::kNumQubits);

  /// A machine with `slots` physical placement slots (17 qubits each).
  explicit QSymbolTable(std::size_t slots);

  [[nodiscard]] std::size_t num_slots() const noexcept { return slots_; }
  [[nodiscard]] std::size_t num_physical_qubits() const noexcept {
    return slots_ * kPatchStride;
  }

  /// Map patch -> physical slot.  Throws std::invalid_argument if the
  /// slot is occupied or out of range.
  void map_patch(PatchId patch, std::uint16_t slot);

  /// Deallocate a patch; throws std::invalid_argument if not alive.
  void unmap_patch(PatchId patch);

  [[nodiscard]] bool alive(PatchId patch) const noexcept;

  /// Physical base address of a live patch; throws std::out_of_range
  /// for dead patches.
  [[nodiscard]] Qubit base(PatchId patch) const;

  /// Q-Address Translation: virtual qubit -> physical qubit.  Throws
  /// std::out_of_range if the owning patch is not alive.
  [[nodiscard]] Qubit translate(std::uint16_t virtual_qubit) const;

  /// Patch owning a virtual qubit.
  [[nodiscard]] static PatchId patch_of(std::uint16_t virtual_qubit) noexcept {
    return static_cast<PatchId>(virtual_qubit / kPatchStride);
  }

  /// All live patches, ascending.
  [[nodiscard]] std::vector<PatchId> live_patches() const;

 private:
  std::size_t slots_;
  std::vector<std::optional<std::uint16_t>> slot_of_patch_;  // by patch id
  std::vector<bool> slot_used_;
};

}  // namespace qpf::qcu

#include "journal/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "circuit/bug_plant.h"
#include "io/file_ops.h"

namespace qpf::journal {

namespace {

// One type byte ahead of every element so a desynchronized or corrupted
// stream fails loudly at the first misread instead of reinterpreting
// garbage.
enum Type : std::uint8_t {
  kTag = 0x01,
  kBool = 0x02,
  kU8 = 0x03,
  kU32 = 0x04,
  kU64 = 0x05,
  kI64 = 0x06,
  kDouble = 0x07,
  kString = 0x08,
  kBytes = 0x09,
  kRng = 0x0a,
  kCircuit = 0x0b,
};

const char* type_name(std::uint8_t t) {
  switch (t) {
    case kTag:
      return "tag";
    case kBool:
      return "bool";
    case kU8:
      return "u8";
    case kU32:
      return "u32";
    case kU64:
      return "u64";
    case kI64:
      return "i64";
    case kDouble:
      return "double";
    case kString:
      return "string";
    case kBytes:
      return "bytes";
    case kRng:
      return "rng";
    case kCircuit:
      return "circuit";
    default:
      return "unknown";
  }
}

constexpr std::array<char, 8> kMagic = {'Q', 'P', 'F', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderSize = 32;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void store_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t fetch_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t fetch_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[i];
  }
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- SnapshotWriter ---------------------------------------------------

void SnapshotWriter::put_raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void SnapshotWriter::tag(std::string_view name) {
  bytes_.push_back(kTag);
  std::uint8_t length[4];
  store_u32(length, static_cast<std::uint32_t>(name.size()));
  put_raw(length, 4);
  put_raw(name.data(), name.size());
}

void SnapshotWriter::write_bool(bool v) {
  bytes_.push_back(kBool);
  bytes_.push_back(v ? 1 : 0);
}

void SnapshotWriter::write_u8(std::uint8_t v) {
  bytes_.push_back(kU8);
  bytes_.push_back(v);
}

void SnapshotWriter::write_u32(std::uint32_t v) {
  bytes_.push_back(kU32);
  std::uint8_t buffer[4];
  store_u32(buffer, v);
  put_raw(buffer, 4);
}

void SnapshotWriter::write_u64(std::uint64_t v) {
  bytes_.push_back(kU64);
  std::uint8_t buffer[8];
  store_u64(buffer, v);
  put_raw(buffer, 8);
}

void SnapshotWriter::write_i64(std::int64_t v) {
  bytes_.push_back(kI64);
  std::uint8_t buffer[8];
  store_u64(buffer, static_cast<std::uint64_t>(v));
  put_raw(buffer, 8);
}

void SnapshotWriter::write_double(double v) {
  static_assert(sizeof(double) == 8);
  bytes_.push_back(kDouble);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  std::uint8_t buffer[8];
  store_u64(buffer, bits);
  put_raw(buffer, 8);
}

void SnapshotWriter::write_string(std::string_view s) {
  bytes_.push_back(kString);
  std::uint8_t length[8];
  store_u64(length, s.size());
  put_raw(length, 8);
  put_raw(s.data(), s.size());
}

void SnapshotWriter::write_bytes(const void* data, std::size_t size) {
  bytes_.push_back(kBytes);
  std::uint8_t length[8];
  store_u64(length, size);
  put_raw(length, 8);
  put_raw(data, size);
}

void SnapshotWriter::write_rng(const std::mt19937_64& rng) {
  // The standard guarantees an exact textual round trip through the
  // stream operators; that is the only portable way at the engine's
  // full 19937-bit state.
  std::ostringstream text;
  text << rng;
  bytes_.push_back(kRng);
  std::uint8_t length[8];
  const std::string s = text.str();
  store_u64(length, s.size());
  put_raw(length, 8);
  put_raw(s.data(), s.size());
}

void SnapshotWriter::write_circuit(const Circuit& circuit) {
  bytes_.push_back(kCircuit);
  std::uint8_t name_length[8];
  store_u64(name_length, circuit.name().size());
  put_raw(name_length, 8);
  put_raw(circuit.name().data(), circuit.name().size());
  std::uint8_t count[8];
  store_u64(count, circuit.num_slots());
  put_raw(count, 8);
  for (const TimeSlot& slot : circuit) {
    std::uint8_t ops[8];
    store_u64(ops, slot.size());
    put_raw(ops, 8);
    for (const Operation& op : slot) {
      bytes_.push_back(static_cast<std::uint8_t>(op.gate()));
      std::uint8_t operands[8];
      store_u32(operands, op.control());
      store_u32(operands + 4, op.target());
      put_raw(operands, 8);
    }
  }
}

// --- SnapshotReader ---------------------------------------------------

void SnapshotReader::fail(const std::string& what) const {
  throw CheckpointError("snapshot stream: " + what + " at byte offset " +
                        std::to_string(offset_));
}

void SnapshotReader::take_raw(void* data, std::size_t size) {
  if (bytes_.size() - offset_ < size) {
    fail("truncated stream (" + std::to_string(size) + " bytes wanted, " +
         std::to_string(bytes_.size() - offset_) + " left)");
  }
  std::memcpy(data, bytes_.data() + offset_, size);
  offset_ += size;
}

void SnapshotReader::expect_type(std::uint8_t expected) {
  std::uint8_t actual;
  take_raw(&actual, 1);
  if (actual != expected) {
    offset_ -= 1;
    fail(std::string("type mismatch: expected ") + type_name(expected) +
         ", found " + type_name(actual));
  }
}

void SnapshotReader::expect_tag(std::string_view name) {
  const std::string actual = read_tag();
  if (actual != name) {
    fail("section mismatch: expected tag '" + std::string(name) +
         "', found '" + actual + "'");
  }
}

std::string SnapshotReader::read_tag() {
  expect_type(kTag);
  std::uint8_t length_bytes[4];
  take_raw(length_bytes, 4);
  const std::uint32_t length = fetch_u32(length_bytes);
  if (length > bytes_.size() - offset_) {
    fail("truncated tag");
  }
  std::string actual(length, '\0');
  take_raw(actual.data(), length);
  return actual;
}

bool SnapshotReader::read_bool() {
  expect_type(kBool);
  std::uint8_t v;
  take_raw(&v, 1);
  if (v > 1) {
    fail("corrupt bool");
  }
  return v != 0;
}

std::uint8_t SnapshotReader::read_u8() {
  expect_type(kU8);
  std::uint8_t v;
  take_raw(&v, 1);
  return v;
}

std::uint32_t SnapshotReader::read_u32() {
  expect_type(kU32);
  std::uint8_t buffer[4];
  take_raw(buffer, 4);
  return fetch_u32(buffer);
}

std::uint64_t SnapshotReader::read_u64() {
  expect_type(kU64);
  std::uint8_t buffer[8];
  take_raw(buffer, 8);
  return fetch_u64(buffer);
}

std::int64_t SnapshotReader::read_i64() {
  expect_type(kI64);
  std::uint8_t buffer[8];
  take_raw(buffer, 8);
  return static_cast<std::int64_t>(fetch_u64(buffer));
}

double SnapshotReader::read_double() {
  expect_type(kDouble);
  std::uint8_t buffer[8];
  take_raw(buffer, 8);
  const std::uint64_t bits = fetch_u64(buffer);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string SnapshotReader::read_string() {
  expect_type(kString);
  std::uint8_t length_bytes[8];
  take_raw(length_bytes, 8);
  const std::uint64_t length = fetch_u64(length_bytes);
  if (length > bytes_.size() - offset_) {
    fail("truncated string");
  }
  std::string s(static_cast<std::size_t>(length), '\0');
  take_raw(s.data(), s.size());
  return s;
}

void SnapshotReader::read_bytes(void* data, std::size_t size) {
  expect_type(kBytes);
  std::uint8_t length_bytes[8];
  take_raw(length_bytes, 8);
  const std::uint64_t length = fetch_u64(length_bytes);
  if (length != size) {
    fail("byte-block size mismatch: expected " + std::to_string(size) +
         ", found " + std::to_string(length));
  }
  take_raw(data, size);
}

std::mt19937_64 SnapshotReader::read_rng() {
  expect_type(kRng);
  std::uint8_t length_bytes[8];
  take_raw(length_bytes, 8);
  const std::uint64_t length = fetch_u64(length_bytes);
  if (length > bytes_.size() - offset_) {
    fail("truncated rng state");
  }
  std::string s(static_cast<std::size_t>(length), '\0');
  take_raw(s.data(), s.size());
  std::istringstream text(s);
  std::mt19937_64 rng;
  text >> rng;
  if (text.fail()) {
    fail("unparsable rng state");
  }
  return rng;
}

Circuit SnapshotReader::read_circuit() {
  expect_type(kCircuit);
  std::uint8_t name_length_bytes[8];
  take_raw(name_length_bytes, 8);
  const std::uint64_t name_length = fetch_u64(name_length_bytes);
  if (name_length > bytes_.size() - offset_) {
    fail("truncated circuit name");
  }
  std::string name(static_cast<std::size_t>(name_length), '\0');
  take_raw(name.data(), name.size());
  std::uint8_t count_bytes[8];
  take_raw(count_bytes, 8);
  const std::uint64_t slots = fetch_u64(count_bytes);
  Circuit circuit(std::move(name));
  for (std::uint64_t s = 0; s < slots; ++s) {
    std::uint8_t ops_bytes[8];
    take_raw(ops_bytes, 8);
    const std::uint64_t ops = fetch_u64(ops_bytes);
    TimeSlot slot;
    for (std::uint64_t i = 0; i < ops; ++i) {
      std::uint8_t gate_byte;
      take_raw(&gate_byte, 1);
      if (gate_byte > static_cast<std::uint8_t>(GateType::kMeasureZ)) {
        fail("corrupt gate type " + std::to_string(gate_byte));
      }
      const auto gate = static_cast<GateType>(gate_byte);
      std::uint8_t operand_bytes[8];
      take_raw(operand_bytes, 8);
      const Qubit q0 = fetch_u32(operand_bytes);
      const Qubit q1 = fetch_u32(operand_bytes + 4);
      try {
        slot.add(arity(gate) == 2 ? Operation{gate, q0, q1}
                                  : Operation{gate, q0});
      } catch (const std::invalid_argument& bad) {
        fail(std::string("corrupt operation: ") + bad.what());
      }
    }
    circuit.append_slot(std::move(slot));
  }
  return circuit;
}

// --- Checkpoint files -------------------------------------------------

namespace {

void throw_errno(const std::string& what, const std::string& path) {
  throw CheckpointError(what + ": " + std::strerror(errno), path);
}

// fsync the directory containing `path` so the rename itself is
// durable.  A crash between rename(2) and the directory fsync can roll
// the rename back on power loss — the new checkpoint would silently
// vanish — so a failure here is a CheckpointError, not best effort.
// Routed through qpf::io so the fault harness can observe, fail, and
// crash at this exact step (the durability contract is now proved by
// FaultFs op-log conformance instead of an observer hook).
void sync_parent_directory(const std::string& path) {
  if (plant::bug(13)) {
    return;  // checkpoint-skip-dir-fsync: rename left volatile
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string dir_path = dir.empty() ? "/" : dir;
  io::FileOps& fs = io::ops();
  const int fd = fs.open(dir_path.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) {
    throw_errno("cannot open checkpoint directory for fsync", dir_path);
  }
  if (fs.fsync(fd) != 0) {
    const int saved = errno;
    fs.close(fd);
    errno = saved;
    throw_errno("checkpoint directory fsync failed", dir_path);
  }
  fs.close(fd);
}

}  // namespace

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> header(kHeaderSize, 0);
  std::memcpy(header.data(), kMagic.data(), kMagic.size());
  store_u32(header.data() + 8, kSnapshotFormatVersion);
  store_u32(header.data() + 12, 0);
  store_u64(header.data() + 16, payload.size());
  store_u32(header.data() + 24, crc32(payload.data(), payload.size()));
  store_u32(header.data() + 28, crc32(header.data(), 28));

  const std::string temp = path + ".tmp";
  io::FileOps& fs = io::ops();
  const int fd = fs.open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_errno("cannot create checkpoint temp file", temp);
  }
  if (!io::write_all(fd, header.data(), header.size()) ||
      !io::write_all(fd, payload.data(), payload.size())) {
    const int saved = errno;
    fs.close(fd);
    errno = saved;
    throw_errno("checkpoint write failed", temp);
  }
  if (fs.fsync(fd) != 0) {
    const int saved = errno;
    fs.close(fd);
    errno = saved;
    throw_errno("checkpoint fsync failed", temp);
  }
  fs.close(fd);
  if (fs.rename(temp.c_str(), path.c_str()) != 0) {
    throw_errno("checkpoint rename failed", path);
  }
  sync_parent_directory(path);
}

std::vector<std::uint8_t> read_checkpoint_file(const std::string& path) {
  io::FileOps& fs = io::ops();
  const int fd = fs.open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    throw_errno("cannot open checkpoint", path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const ssize_t n = io::read_retry(fd, buffer, sizeof(buffer));
    if (n < 0) {
      const int saved = errno;
      fs.close(fd);
      errno = saved;
      throw_errno("checkpoint read failed", path);
    }
    if (n == 0) {
      break;
    }
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  fs.close(fd);

  if (bytes.size() < kHeaderSize) {
    throw CheckpointError("checkpoint truncated: " +
                              std::to_string(bytes.size()) +
                              " bytes, header needs " +
                              std::to_string(kHeaderSize),
                          path);
  }
  if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    throw CheckpointError("bad checkpoint magic", path);
  }
  if (crc32(bytes.data(), 28) != fetch_u32(bytes.data() + 28)) {
    throw CheckpointError("checkpoint header CRC mismatch", path);
  }
  const std::uint32_t version = fetch_u32(bytes.data() + 8);
  if (version != kSnapshotFormatVersion) {
    throw CheckpointError("unsupported checkpoint version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kSnapshotFormatVersion) + ")",
                          path);
  }
  const std::uint64_t length = fetch_u64(bytes.data() + 16);
  if (bytes.size() - kHeaderSize != length) {
    throw CheckpointError("checkpoint payload truncated: header promises " +
                              std::to_string(length) + " bytes, file has " +
                              std::to_string(bytes.size() - kHeaderSize),
                          path);
  }
  const std::uint32_t expected = fetch_u32(bytes.data() + 24);
  const std::uint32_t actual = crc32(bytes.data() + kHeaderSize, length);
  if (expected != actual) {
    throw CheckpointError("checkpoint payload CRC mismatch", path);
  }
  return {bytes.begin() + kHeaderSize, bytes.end()};
}

}  // namespace qpf::journal

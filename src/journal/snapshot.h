// Versioned, CRC32-guarded binary serialization for the crash-safe
// experiment engine (PR 2).
//
// The classical tracking state of the whole stack — tableaus, state
// vectors, Pauli frames, RNG engines, counters — is compact and cheaply
// serializable (Paler & Devitt; García & Markov), so every layer can be
// snapshotted between circuits and restored bit-identically.
//
// SnapshotWriter / SnapshotReader implement a tagged, typed binary
// stream: every primitive carries a one-byte type tag and every layer
// opens its section with a named tag, so a truncated, corrupted, or
// mismatched stream surfaces as a structured qpf::CheckpointError (with
// the offending byte offset) instead of undefined behavior.
//
// Checkpoint *files* add the outer armor documented in DESIGN.md:
//
//   offset  0  magic "QPFSNAP1"                       (8 bytes)
//   offset  8  format version, little-endian u32      (currently 1)
//   offset 12  reserved u32                           (0)
//   offset 16  payload length, little-endian u64
//   offset 24  CRC32 of the payload, little-endian u32
//   offset 28  CRC32 of bytes [0, 28), little-endian u32
//   offset 32  payload (a SnapshotWriter stream)
//
// write_checkpoint_file() is atomic: the bytes go to "<path>.tmp",
// which is fsync'd and then rename(2)'d over the destination (followed
// by a directory fsync), so a crash leaves either the old checkpoint or
// the new one — never a torn file.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/error.h"

namespace qpf::journal {

/// Reflected CRC32 (IEEE 802.3, polynomial 0xEDB88320), the same
/// checksum zlib uses.  `seed` allows incremental computation.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(std::string_view text,
                                         std::uint32_t seed = 0) {
  return crc32(text.data(), text.size(), seed);
}

/// Current checkpoint-payload format version.  Bump on any layout
/// change; readers reject other versions with CheckpointError.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

class SnapshotWriter {
 public:
  /// Named section marker; the reader must expect_tag() the same name.
  void tag(std::string_view name);

  void write_bool(bool v);
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_double(double v);
  void write_string(std::string_view s);
  void write_bytes(const void* data, std::size_t size);

  void write_size(std::size_t v) { write_u64(static_cast<std::uint64_t>(v)); }

  /// An mt19937_64 engine, exactly (std::ostream round trip).
  void write_rng(const std::mt19937_64& rng);

  /// A full circuit: slot structure and every operation.
  void write_circuit(const Circuit& circuit);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

 private:
  void put_raw(const void* data, std::size_t size);

  std::vector<std::uint8_t> bytes_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  /// Verify the next element is a tag with this exact name; throws
  /// CheckpointError otherwise.
  void expect_tag(std::string_view name);

  /// Read the next element, which must be a tag, and return its name.
  /// Lets loaders dispatch on versioned section tags (e.g. the tableau
  /// accepting both its current and its legacy on-disk layout).
  [[nodiscard]] std::string read_tag();

  [[nodiscard]] bool read_bool();
  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] double read_double();
  [[nodiscard]] std::string read_string();
  void read_bytes(void* data, std::size_t size);

  [[nodiscard]] std::size_t read_size() {
    return static_cast<std::size_t>(read_u64());
  }

  [[nodiscard]] std::mt19937_64 read_rng();
  [[nodiscard]] Circuit read_circuit();

  /// True once every byte has been consumed.
  [[nodiscard]] bool exhausted() const noexcept {
    return offset_ == bytes_.size();
  }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  void expect_type(std::uint8_t expected);
  void take_raw(void* data, std::size_t size);
  [[noreturn]] void fail(const std::string& what) const;

  std::vector<std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Atomically persist a snapshot payload: header + CRC armor, written
/// to "<path>.tmp", fsync'd, renamed over `path`, directory fsync'd.
/// Throws CheckpointError on any I/O failure.
void write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& payload);

/// Load and verify a checkpoint file.  Throws CheckpointError on a
/// missing file, short read, bad magic, version skew, or CRC mismatch
/// of either the header or the payload.
[[nodiscard]] std::vector<std::uint8_t> read_checkpoint_file(
    const std::string& path);

/// True if `path` exists and is a regular file.
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace qpf::journal

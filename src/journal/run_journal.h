// RunJournal: the durable per-trial record of a long campaign.
//
// Every completed trial appends one flat JSON object on its own line
// (JSONL).  The final field of every line is "crc", the CRC32 (hex) of
// everything before it, so torn or bit-flipped lines are detectable.
// Each append is fsync'd before returning: once a trial is reported
// durable, a crash — including SIGKILL — cannot lose it.
//
// Reading is resume-oriented: read_journal() returns the longest valid
// prefix of entries and stops at the first truncated or corrupted line
// (the torn tail a kill mid-write leaves behind), so a resumed campaign
// simply re-runs the trial whose record never became durable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qpf::journal {

/// One journal line: flat string-keyed fields.  Values are stored
/// verbatim (numbers unquoted, strings quoted on disk).
struct JournalEntry {
  std::map<std::string, std::string> fields;

  [[nodiscard]] bool has(const std::string& key) const {
    return fields.count(key) != 0;
  }
  /// Field value, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = {}) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback = 0.0) const;
};

class RunJournal {
 public:
  /// Open (creating or appending) the journal at `path`.  Throws
  /// qpf::CheckpointError when the file cannot be opened.
  explicit RunJournal(std::string path);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Append one entry and fsync.  Numeric-looking values are written
  /// unquoted; everything else is written as a JSON string.  Throws
  /// qpf::CheckpointError on I/O failure.
  void append(const JournalEntry& entry);

  /// Number of entries appended through this handle.
  [[nodiscard]] std::size_t appended() const noexcept { return appended_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::size_t appended_ = 0;
};

/// Longest valid prefix of the journal at `path`; an absent file reads
/// as empty.  Lines failing the CRC check (or truncated) end the scan.
/// `dropped_tail` (optional) reports how many trailing lines were
/// discarded as torn or corrupt.
[[nodiscard]] std::vector<JournalEntry> read_journal(
    const std::string& path, std::size_t* dropped_tail = nullptr);

}  // namespace qpf::journal

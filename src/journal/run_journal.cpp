#include "journal/run_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "circuit/error.h"
#include "journal/snapshot.h"

namespace qpf::journal {

namespace {

// A value is written unquoted when it already reads back as a number;
// everything else becomes a (minimally escaped) JSON string.
bool looks_numeric(const std::string& value) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  std::strtod(value.c_str(), &end);
  return errno == 0 && end == value.c_str() + value.size();
}

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

std::string hex32(std::uint32_t v) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", v);
  return buffer;
}

// Serialize fields (sans crc) deterministically: std::map iterates in
// key order, so the checksummed prefix is byte-stable.
std::string render_prefix(const JournalEntry& entry) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : entry.fields) {
    if (key == "crc") {
      continue;
    }
    if (!first) {
      line += ',';
    }
    first = false;
    append_json_string(line, key);
    line += ':';
    if (looks_numeric(value)) {
      line += value;
    } else {
      append_json_string(line, value);
    }
  }
  return line;
}

// Minimal flat-JSON line parser for the exact shape render_prefix
// produces (plus the crc field).  Returns false on any malformation.
bool parse_line(const std::string& line, JournalEntry& entry) {
  std::size_t i = 0;
  auto skip_space = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  };
  auto parse_string = [&](std::string& out) {
    if (i >= line.size() || line[i] != '"') {
      return false;
    }
    ++i;
    out.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += line[i];
        }
      } else {
        out += line[i];
      }
      ++i;
    }
    if (i >= line.size()) {
      return false;
    }
    ++i;  // closing quote
    return true;
  };

  skip_space();
  if (i >= line.size() || line[i] != '{') {
    return false;
  }
  ++i;
  skip_space();
  if (i < line.size() && line[i] == '}') {
    return true;
  }
  for (;;) {
    skip_space();
    std::string key;
    if (!parse_string(key)) {
      return false;
    }
    skip_space();
    if (i >= line.size() || line[i] != ':') {
      return false;
    }
    ++i;
    skip_space();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) {
        return false;
      }
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        ++i;
      }
      value = line.substr(start, i - start);
      while (!value.empty() &&
             std::isspace(static_cast<unsigned char>(value.back()))) {
        value.pop_back();
      }
      if (value.empty()) {
        return false;
      }
    }
    entry.fields[key] = value;
    skip_space();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  skip_space();
  return i < line.size() && line[i] == '}';
}

}  // namespace

std::string JournalEntry::get(const std::string& key,
                              const std::string& fallback) const {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

std::uint64_t JournalEntry::get_u64(const std::string& key,
                                    std::uint64_t fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    return fallback;
  }
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double JournalEntry::get_double(const std::string& key,
                                double fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    return fallback;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

RunJournal::RunJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw CheckpointError(std::string("cannot open journal: ") +
                              std::strerror(errno),
                          path_);
  }
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void RunJournal::append(const JournalEntry& entry) {
  std::string line = render_prefix(entry);
  const std::uint32_t crc = crc32(line);
  line += line.size() > 1 ? ",\"crc\":\"" : "\"crc\":\"";
  line += hex32(crc);
  line += "\"}\n";

  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CheckpointError(std::string("journal write failed: ") +
                                std::strerror(errno),
                            path_);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw CheckpointError(std::string("journal fsync failed: ") +
                              std::strerror(errno),
                          path_);
  }
  ++appended_;
}

std::vector<JournalEntry> read_journal(const std::string& path,
                                       std::size_t* dropped_tail) {
  std::vector<JournalEntry> entries;
  std::size_t dropped = 0;
  std::ifstream file(path);
  if (file) {
    std::string line;
    bool valid = true;
    while (std::getline(file, line)) {
      if (!valid) {
        ++dropped;
        continue;
      }
      JournalEntry entry;
      // The checksummed prefix is everything before `,"crc":"..."}`;
      // recompute and compare.
      const std::string marker = ",\"crc\":\"";
      const std::size_t at = line.rfind(marker);
      bool ok = false;
      if (at != std::string::npos &&
          line.size() == at + marker.size() + 8 + 2 &&
          line.compare(line.size() - 2, 2, "\"}") == 0) {
        const std::string prefix = line.substr(0, at);
        const std::string crc_hex = line.substr(at + marker.size(), 8);
        ok = hex32(crc32(prefix)) == crc_hex && parse_line(line, entry);
      }
      if (ok) {
        entries.push_back(std::move(entry));
      } else {
        // First bad line: everything from here on is the torn tail.
        valid = false;
        ++dropped;
      }
    }
  }
  if (dropped_tail != nullptr) {
    *dropped_tail = dropped;
  }
  return entries;
}

}  // namespace qpf::journal

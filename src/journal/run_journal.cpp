#include "journal/run_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "circuit/error.h"
#include "io/file_ops.h"
#include "journal/snapshot.h"

namespace qpf::journal {

namespace {

// A value is written unquoted when it already reads back as a number;
// everything else becomes a (minimally escaped) JSON string.
bool looks_numeric(const std::string& value) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  std::strtod(value.c_str(), &end);
  return errno == 0 && end == value.c_str() + value.size();
}

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

std::string hex32(std::uint32_t v) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", v);
  return buffer;
}

// Serialize fields (sans crc) deterministically: std::map iterates in
// key order, so the checksummed prefix is byte-stable.
std::string render_prefix(const JournalEntry& entry) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : entry.fields) {
    if (key == "crc") {
      continue;
    }
    if (!first) {
      line += ',';
    }
    first = false;
    append_json_string(line, key);
    line += ':';
    if (looks_numeric(value)) {
      line += value;
    } else {
      append_json_string(line, value);
    }
  }
  return line;
}

// Minimal flat-JSON line parser for the exact shape render_prefix
// produces (plus the crc field).  Returns false on any malformation.
bool parse_line(const std::string& line, JournalEntry& entry) {
  std::size_t i = 0;
  auto skip_space = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  };
  auto parse_string = [&](std::string& out) {
    if (i >= line.size() || line[i] != '"') {
      return false;
    }
    ++i;
    out.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += line[i];
        }
      } else {
        out += line[i];
      }
      ++i;
    }
    if (i >= line.size()) {
      return false;
    }
    ++i;  // closing quote
    return true;
  };

  skip_space();
  if (i >= line.size() || line[i] != '{') {
    return false;
  }
  ++i;
  skip_space();
  if (i < line.size() && line[i] == '}') {
    return true;
  }
  for (;;) {
    skip_space();
    std::string key;
    if (!parse_string(key)) {
      return false;
    }
    skip_space();
    if (i >= line.size() || line[i] != ':') {
      return false;
    }
    ++i;
    skip_space();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) {
        return false;
      }
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        ++i;
      }
      value = line.substr(start, i - start);
      while (!value.empty() &&
             std::isspace(static_cast<unsigned char>(value.back()))) {
        value.pop_back();
      }
      if (value.empty()) {
        return false;
      }
    }
    entry.fields[key] = value;
    skip_space();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  skip_space();
  return i < line.size() && line[i] == '}';
}

// Read the whole file through the io seam; returns false when the file
// cannot be opened (a missing journal is "no entries", like before).
bool slurp_file(const std::string& path, std::string& out) {
  io::FileOps& fs = io::ops();
  const int fd = fs.open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    return false;
  }
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = io::read_retry(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    out.append(buffer, static_cast<std::size_t>(n));
  }
  fs.close(fd);
  return true;
}

struct JournalScan {
  std::vector<JournalEntry> entries;
  std::size_t dropped = 0;      ///< lines past the valid prefix
  std::size_t valid_bytes = 0;  ///< byte length of the valid prefix
  /// The final valid line is durable but missing its '\n' (a crash cut
  /// exactly the terminator); an append right after it would glue on.
  bool unterminated_tail = false;
};

JournalScan scan_journal(const std::string& contents) {
  JournalScan scan;
  bool valid = true;
  std::size_t start = 0;
  while (start < contents.size()) {
    std::size_t end = contents.find('\n', start);
    bool terminated = true;
    if (end == std::string::npos) {
      end = contents.size();  // torn final line without a newline
      terminated = false;
    }
    const std::string line = contents.substr(start, end - start);
    start = end + 1;
    if (!valid) {
      ++scan.dropped;
      continue;
    }
    JournalEntry entry;
    // The checksummed prefix is everything before `,"crc":"..."}`;
    // recompute and compare.
    const std::string marker = ",\"crc\":\"";
    const std::size_t at = line.rfind(marker);
    bool ok = false;
    if (at != std::string::npos &&
        line.size() == at + marker.size() + 8 + 2 &&
        line.compare(line.size() - 2, 2, "\"}") == 0) {
      const std::string prefix = line.substr(0, at);
      const std::string crc_hex = line.substr(at + marker.size(), 8);
      ok = hex32(crc32(prefix)) == crc_hex && parse_line(line, entry);
    }
    if (ok) {
      scan.entries.push_back(std::move(entry));
      scan.valid_bytes = terminated ? end + 1 : end;
      scan.unterminated_tail = !terminated;
    } else {
      // First bad line: everything from here on is the torn tail.
      valid = false;
      ++scan.dropped;
    }
  }
  return scan;
}

}  // namespace

std::string JournalEntry::get(const std::string& key,
                              const std::string& fallback) const {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

std::uint64_t JournalEntry::get_u64(const std::string& key,
                                    std::uint64_t fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    return fallback;
  }
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double JournalEntry::get_double(const std::string& key,
                                double fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    return fallback;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

RunJournal::RunJournal(std::string path) : path_(std::move(path)) {
  // Repair the torn tail a crash mid-append leaves behind BEFORE
  // opening for append.  O_APPEND would glue the next record onto the
  // torn bytes, merging both into one CRC-invalid line — so the record
  // that re-ran the lost trial would itself be unreadable on the next
  // resume.  Truncating to the valid prefix (and completing a final
  // line whose '\n' the crash cut) makes a resumed journal
  // byte-identical to one that never crashed.
  std::string contents;
  bool complete_newline = false;
  if (slurp_file(path_, contents) && !contents.empty()) {
    const JournalScan scan = scan_journal(contents);
    if (scan.valid_bytes < contents.size() &&
        io::ops().truncate(path_.c_str(),
                           static_cast<long>(scan.valid_bytes)) != 0) {
      throw CheckpointError(std::string("cannot repair torn journal tail: ") +
                                std::strerror(errno),
                            path_);
    }
    complete_newline = scan.unterminated_tail;
  }
  fd_ = io::ops().open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw CheckpointError(std::string("cannot open journal: ") +
                              std::strerror(errno),
                          path_);
  }
  if (complete_newline &&
      (!io::write_all(fd_, "\n", 1) || io::ops().fsync(fd_) != 0)) {
    throw CheckpointError(std::string("cannot repair torn journal tail: ") +
                              std::strerror(errno),
                          path_);
  }
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) {
    io::ops().close(fd_);
  }
}

void RunJournal::append(const JournalEntry& entry) {
  std::string line = render_prefix(entry);
  const std::uint32_t crc = crc32(line);
  line += line.size() > 1 ? ",\"crc\":\"" : "\"crc\":\"";
  line += hex32(crc);
  line += "\"}\n";

  if (!io::write_all(fd_, line.data(), line.size())) {
    throw CheckpointError(std::string("journal write failed: ") +
                              std::strerror(errno),
                          path_);
  }
  if (io::ops().fsync(fd_) != 0) {
    throw CheckpointError(std::string("journal fsync failed: ") +
                              std::strerror(errno),
                          path_);
  }
  ++appended_;
}

std::vector<JournalEntry> read_journal(const std::string& path,
                                       std::size_t* dropped_tail) {
  std::string contents;
  JournalScan scan;
  if (slurp_file(path, contents)) {
    scan = scan_journal(contents);
  }
  if (dropped_tail != nullptr) {
    *dropped_tail = scan.dropped;
  }
  return std::move(scan.entries);
}

}  // namespace qpf::journal

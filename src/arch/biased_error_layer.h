// BiasedErrorLayer: ErrorLayer's sibling injecting dephasing-biased
// Pauli noise (qec::BiasedNoiseModel) instead of the symmetric
// depolarizing channel.
#pragma once

#include <cstdint>

#include "arch/layer.h"
#include "qec/biased_noise.h"

namespace qpf::arch {

class BiasedErrorLayer final : public Layer {
 public:
  BiasedErrorLayer(Core* lower, double physical_error_rate, double bias,
                   std::uint64_t seed)
      : Layer(lower), model_(physical_error_rate, bias, seed) {}

  void add(const Circuit& circuit) override {
    if (bypass_) {
      lower().add(circuit);
    } else {
      lower().add(model_.inject(circuit, num_qubits()));
    }
  }

  [[nodiscard]] const qec::BiasedNoiseModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const qec::ErrorTally& tally() const noexcept {
    return model_.tally();
  }

  void save_state(journal::SnapshotWriter& out) const override {
    out.tag("biased-error-layer");
    model_.save(out);
    lower().save_state(out);
  }
  void load_state(journal::SnapshotReader& in) override {
    in.expect_tag("biased-error-layer");
    model_.load(in);
    lower().load_state(in);
  }

 private:
  qec::BiasedNoiseModel model_;
};

}  // namespace qpf::arch

// Test-bench environment (thesis §4.2.4, Fig 4.5): generic iteration
// control plus the ready-to-use benches QPDO ships — BellStateHistoTb,
// GateSupportTb, and the random-circuit equivalence bench of §5.2.2.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "arch/core_interface.h"
#include "circuit/random.h"

namespace qpf::arch {

/// Base class: run() drives setup / iterations / teardown, collecting
/// pass counts.  Subclasses implement one test iteration.
class TestBench {
 public:
  virtual ~TestBench() = default;

  struct Report {
    std::size_t iterations = 0;
    std::size_t passed = 0;
    std::string details;

    [[nodiscard]] bool all_passed() const noexcept {
      return passed == iterations;
    }
  };

  /// Run `iterations` test iterations against a control stack.
  [[nodiscard]] Report run(Core& stack, std::size_t iterations);

 protected:
  virtual void set_up(Core& stack) = 0;
  /// One iteration; return true on pass.
  virtual bool iteration(Core& stack) = 0;
  virtual void tear_down(Core& stack, Report& report) {
    (void)stack;
    (void)report;
  }
};

/// Resets two qubits, builds a Bell state with H + CNOT, measures both
/// and histograms the outcomes.
class BellStateHistoTb final : public TestBench {
 public:
  /// odd = true prepends an X so the target state is
  /// (|01> + |10>)/sqrt(2), the "odd Bell state" of Fig 5.6.
  explicit BellStateHistoTb(bool odd = false) : odd_(odd) {}

  [[nodiscard]] const std::map<std::string, std::size_t>& histogram()
      const noexcept {
    return histogram_;
  }

 protected:
  void set_up(Core& stack) override;
  bool iteration(Core& stack) override;
  void tear_down(Core& stack, Report& report) override;

 private:
  bool odd_;
  std::map<std::string, std::size_t> histogram_;
};

/// Runs a scripted probe for every gate the IR knows and checks the
/// measured outcome, reporting which gates the stack supports.
class GateSupportTb final : public TestBench {
 public:
  struct GateReport {
    GateType gate;
    bool supported = false;
    bool correct = false;
  };

  [[nodiscard]] const std::vector<GateReport>& gate_reports() const noexcept {
    return reports_;
  }

 protected:
  void set_up(Core& stack) override;
  bool iteration(Core& stack) override;

 private:
  std::vector<GateReport> reports_;
};

/// §5.2.2: generate a random circuit, execute it on a reference
/// state-vector simulator and on the stack under test (flushing any
/// Pauli frame via the supplied hook), then compare the quantum states
/// up to global phase.
class RandomCircuitTb final : public TestBench {
 public:
  using FlushHook = std::function<void()>;

  RandomCircuitTb(RandomCircuitOptions options, std::uint64_t seed,
                  FlushHook flush = {})
      : options_(std::move(options)), generator_(seed), flush_(std::move(flush)) {}

 protected:
  void set_up(Core& stack) override;
  bool iteration(Core& stack) override;

 private:
  RandomCircuitOptions options_;
  RandomCircuitGenerator generator_;
  FlushHook flush_;
  std::uint64_t reference_seed_ = 12345;
};

}  // namespace qpf::arch

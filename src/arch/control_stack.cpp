#include "arch/control_stack.h"

#include "circuit/error.h"

namespace qpf::arch {

LerStack::LerStack(const Config& config) : core_(config.seed) {
  if (config.frame_protection != pf::Protection::kNone &&
      !config.with_pauli_frame) {
    throw StackConfigError("LerStack",
                           "frame protection requires a Pauli frame layer");
  }
  counter_bottom_ = std::make_unique<CounterLayer>(&core_);
  error_ = std::make_unique<ErrorLayer>(counter_bottom_.get(),
                                        config.physical_error_rate,
                                        config.seed ^ 0x9e3779b97f4a7c15ULL);
  Core* below_counter = error_.get();
  if (config.classical_faults.any()) {
    faults_ = std::make_unique<ClassicalFaultLayer>(
        error_.get(), config.classical_faults,
        config.seed ^ 0xd1b54a32d192ed03ULL);
    below_counter = faults_.get();
  }
  counter_below_ = std::make_unique<CounterLayer>(below_counter);
  Core* below_frame = counter_below_.get();
  if (config.with_pauli_frame) {
    frame_ =
        std::make_unique<PauliFrameLayer>(below_frame, config.frame_protection);
    below_frame = frame_.get();
  }
  if (config.validate) {
    validator_ = std::make_unique<ValidatingLayer>(below_frame, frame_.get());
    below_frame = validator_.get();
  }
  counter_above_ = std::make_unique<CounterLayer>(below_frame);
  ninja_ = std::make_unique<NinjaStarLayer>(counter_above_.get(),
                                            config.ninja_options);
  ninja_->create_qubits(config.logical_qubits);
}

void LerStack::set_diagnostic_mode(bool on) noexcept {
  counter_bottom_->set_bypass(on);
  error_->set_bypass(on);
  if (faults_ != nullptr) {
    faults_->set_bypass(on);
  }
  counter_below_->set_bypass(on);
  counter_above_->set_bypass(on);
}

void LerStack::reset_counters() noexcept {
  counter_bottom_->reset_counters();
  counter_below_->reset_counters();
  counter_above_->reset_counters();
}

double LerStack::gates_saved_fraction() const noexcept {
  const auto above = counters_above_frame().operations;
  const auto below = counters_below_frame().operations;
  if (above == 0) {
    return 0.0;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(above);
}

void LerStack::save_state(journal::SnapshotWriter& out) const {
  out.tag("ler-stack");
  out.write_bool(frame_ != nullptr);
  out.write_bool(faults_ != nullptr);
  out.write_bool(validator_ != nullptr);
  ninja_->save_state(out);
}

void LerStack::load_state(journal::SnapshotReader& in) {
  in.expect_tag("ler-stack");
  const bool with_frame = in.read_bool();
  const bool with_faults = in.read_bool();
  const bool with_validator = in.read_bool();
  if (with_frame != (frame_ != nullptr) || with_faults != (faults_ != nullptr) ||
      with_validator != (validator_ != nullptr)) {
    throw CheckpointError(
        "ler stack snapshot: layer configuration differs from the "
        "configured stack");
  }
  ninja_->load_state(in);
}

double LerStack::slots_saved_fraction() const noexcept {
  const auto above = counters_above_frame().time_slots;
  const auto below = counters_below_frame().time_slots;
  if (above == 0) {
    return 0.0;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(above);
}

}  // namespace qpf::arch

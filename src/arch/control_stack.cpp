#include "arch/control_stack.h"

#include "circuit/error.h"

namespace qpf::arch {

LerStack::LerStack(const Config& config) : core_(config.seed) {
  if (config.frame_protection != pf::Protection::kNone &&
      !config.with_pauli_frame) {
    throw StackConfigError("LerStack",
                           "frame protection requires a Pauli frame layer");
  }
  counter_bottom_ = std::make_unique<CounterLayer>(&core_);
  error_ = std::make_unique<ErrorLayer>(counter_bottom_.get(),
                                        config.physical_error_rate,
                                        config.seed ^ 0x9e3779b97f4a7c15ULL);
  Core* below_counter = error_.get();
  if (config.classical_faults.any() || config.chaos.any()) {
    faults_ = std::make_unique<ClassicalFaultLayer>(
        error_.get(), config.classical_faults,
        config.seed ^ 0xd1b54a32d192ed03ULL, config.chaos);
    below_counter = faults_.get();
  }
  counter_below_ = std::make_unique<CounterLayer>(below_counter);
  Core* below_frame = counter_below_.get();
  if (config.with_pauli_frame) {
    frame_ =
        std::make_unique<PauliFrameLayer>(below_frame, config.frame_protection);
    below_frame = frame_.get();
  }
  if (config.validate) {
    validator_ = std::make_unique<ValidatingLayer>(below_frame, frame_.get());
    below_frame = validator_.get();
  }
  counter_above_ = std::make_unique<CounterLayer>(below_frame);
  Core* top = counter_above_.get();
  if (config.supervise) {
    SupervisorOptions supervisor_options = config.supervisor;
    if (supervisor_options.seed == 0) {
      supervisor_options.seed = config.seed ^ 0xa24baed4963ee407ULL;
    }
    supervisor_ =
        std::make_unique<SupervisorLayer>(top, supervisor_options);
    supervisor_->set_frame(frame_.get());
    top = supervisor_.get();
  }
  if (config.deadline.any()) {
    timing_ = std::make_unique<TimingLayer>(top, config.timings);
    timing_->set_deadline(config.deadline);
    timing_->set_stall_source(faults_.get());
    if (supervisor_ != nullptr) {
      supervisor_->set_watchdog(timing_.get());
    }
    top = timing_.get();
  }
  ninja_ = std::make_unique<NinjaStarLayer>(top, config.ninja_options);
  if (timing_ != nullptr) {
    ninja_->set_deadline_watchdog(timing_.get());
  }
  ninja_->create_qubits(config.logical_qubits);
}

void LerStack::set_diagnostic_mode(bool on) noexcept {
  counter_bottom_->set_bypass(on);
  error_->set_bypass(on);
  if (faults_ != nullptr) {
    faults_->set_bypass(on);
  }
  counter_below_->set_bypass(on);
  counter_above_->set_bypass(on);
  if (timing_ != nullptr) {
    timing_->set_bypass(on);
  }
  if (supervisor_ != nullptr) {
    supervisor_->set_bypass(on);
    if (!on) {
      // Probe circuits flowed past the supervisor unsupervised; its
      // last good snapshot no longer matches the chain below.
      supervisor_->refresh_good_point();
    }
  }
}

void LerStack::reset_counters() noexcept {
  counter_bottom_->reset_counters();
  counter_below_->reset_counters();
  counter_above_->reset_counters();
}

double LerStack::gates_saved_fraction() const noexcept {
  const auto above = counters_above_frame().operations;
  const auto below = counters_below_frame().operations;
  if (above == 0) {
    return 0.0;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(above);
}

void LerStack::save_state(journal::SnapshotWriter& out) const {
  // Stacks without the supervision subsystem keep the legacy section
  // layout so their checkpoints stay bit-identical to previous
  // releases; supervised/deadline stacks use the extended "ler-stack2"
  // section (cf. the tableau/tableau2 precedent).
  if (supervisor_ == nullptr && timing_ == nullptr) {
    out.tag("ler-stack");
    out.write_bool(frame_ != nullptr);
    out.write_bool(faults_ != nullptr);
    out.write_bool(validator_ != nullptr);
  } else {
    out.tag("ler-stack2");
    out.write_bool(frame_ != nullptr);
    out.write_bool(faults_ != nullptr);
    out.write_bool(validator_ != nullptr);
    out.write_bool(supervisor_ != nullptr);
    out.write_bool(timing_ != nullptr);
  }
  ninja_->save_state(out);
}

void LerStack::load_state(journal::SnapshotReader& in) {
  const std::string section = in.read_tag();
  bool with_supervisor = false;
  bool with_timing = false;
  bool with_frame = false;
  bool with_faults = false;
  bool with_validator = false;
  if (section == "ler-stack") {
    with_frame = in.read_bool();
    with_faults = in.read_bool();
    with_validator = in.read_bool();
  } else if (section == "ler-stack2") {
    with_frame = in.read_bool();
    with_faults = in.read_bool();
    with_validator = in.read_bool();
    with_supervisor = in.read_bool();
    with_timing = in.read_bool();
  } else {
    throw CheckpointError("ler stack snapshot: unexpected section tag \"" +
                          section + "\"");
  }
  if (with_frame != (frame_ != nullptr) || with_faults != (faults_ != nullptr) ||
      with_validator != (validator_ != nullptr) ||
      with_supervisor != (supervisor_ != nullptr) ||
      with_timing != (timing_ != nullptr)) {
    throw CheckpointError(
        "ler stack snapshot: layer configuration differs from the "
        "configured stack");
  }
  ninja_->load_state(in);
}

double LerStack::slots_saved_fraction() const noexcept {
  const auto above = counters_above_frame().time_slots;
  const auto below = counters_below_frame().time_slots;
  if (above == 0) {
    return 0.0;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(above);
}

}  // namespace qpf::arch

// ClassicalFaultLayer: injects *classical* control-path faults into the
// operation stream and the readout path — the failure modes the thesis
// assumes away when it models only quantum noise (§5.3.1).
//
// A production control stack can drop an operation on the way to the
// Physical Execution Layer, re-issue one (a stuttering link), reorder
// the stream, or flip a readout bit on the way back up.  This layer is
// the classical sibling of ErrorLayer: it sits in the stack like any
// other layer, faults at configurable per-kind rates, and tallies every
// injection so campaigns can correlate injected vs detected faults.
//
// Fault semantics per circuit passing down:
//   drop      — an operation is removed from its time slot,
//   duplicate — an operation is re-issued in an extra slot directly
//               after its own (qubit-disjoint, so one slot suffices),
//   reorder   — an operation is swapped with its slot neighbour
//               (stream-order fault; slots keep their qubit invariant).
// And on the way up:
//   readout_flip — a known binary readout bit is inverted.
//
// With every rate at zero the layer forwards verbatim and never draws
// from its RNG, so a zero-rate layer is bit-identical to no layer.
#pragma once

#include <cstdint>
#include <random>

#include "arch/layer.h"

namespace qpf::arch {

/// Per-kind classical fault probabilities, each applied per operation
/// (or per readout bit for readout_flip).
struct ClassicalFaultRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double readout_flip = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           readout_flip > 0.0;
  }

  /// All four kinds at the same rate p.
  [[nodiscard]] static ClassicalFaultRates uniform(double p) noexcept {
    return ClassicalFaultRates{p, p, p, p};
  }
};

/// Tally of injected classical faults.
struct FaultTally {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t readout_flips = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return dropped + duplicated + reordered + readout_flips;
  }
};

class ClassicalFaultLayer final : public Layer {
 public:
  /// Throws StackConfigError unless every rate is in [0, 1].
  ClassicalFaultLayer(Core* lower, ClassicalFaultRates rates,
                      std::uint64_t seed);

  void add(const Circuit& circuit) override;

  [[nodiscard]] BinaryState get_state() const override;

  [[nodiscard]] const ClassicalFaultRates& rates() const noexcept {
    return rates_;
  }
  [[nodiscard]] const FaultTally& tally() const noexcept { return tally_; }
  void reset_tally() noexcept { tally_ = {}; }

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  [[nodiscard]] bool flip(double probability) const;

  ClassicalFaultRates rates_;
  // Readout faults strike inside the const get_state() path, so the RNG
  // and tally mutate under const.
  mutable std::mt19937_64 rng_;
  mutable std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  mutable FaultTally tally_;
};

}  // namespace qpf::arch

// ClassicalFaultLayer: injects *classical* control-path faults into the
// operation stream and the readout path — the failure modes the thesis
// assumes away when it models only quantum noise (§5.3.1).
//
// A production control stack can drop an operation on the way to the
// Physical Execution Layer, re-issue one (a stuttering link), reorder
// the stream, or flip a readout bit on the way back up.  This layer is
// the classical sibling of ErrorLayer: it sits in the stack like any
// other layer, faults at configurable per-kind rates, and tallies every
// injection so campaigns can correlate injected vs detected faults.
//
// Fault semantics per circuit passing down:
//   drop      — an operation is removed from its time slot,
//   duplicate — an operation is re-issued in an extra slot directly
//               after its own (qubit-disjoint, so one slot suffices),
//   reorder   — an operation is swapped with its slot neighbour
//               (stream-order fault; slots keep their qubit invariant).
// And on the way up:
//   readout_flip — a known binary readout bit is inverted.
//
// With every rate at zero the layer forwards verbatim and never draws
// from its RNG, so a zero-rate layer is bit-identical to no layer.
//
// --- Chaos schedule (PR 4) -------------------------------------------
//
// Besides the per-operation Bernoulli faults above, the layer can run a
// *scripted* chaos schedule (ChaosConfig): a seeded LCG draws gaps (in
// layer calls) between discrete fault events, and each event is either
//   crash — throw qpf::TransientFaultError, before (pre) or after
//           (post) forwarding the call; a post-crash leaves the lower
//           chain already mutated, so a bare retry is wrong and a
//           supervisor must restore from its last good snapshot,
//   stall — accrue a fixed latency debt (nanoseconds) that a
//           TimingLayer above collects via take_pending_stall_ns(),
//   burst — the next burst_length calls all crash (a fault storm that
//           exhausts bounded retry budgets and drives the supervisor
//           into degraded mode or escalation).
// The chaos clock is *monotone across recoveries*: replayed calls tick
// it like any other call, and none of the chaos state is serialized in
// snapshots — restoring a snapshot must not re-arm the crash that
// caused the restore, or recovery could never converge.  For the same
// reason the snapshot byte layout is unchanged from PR 1.
#pragma once

#include <cstdint>
#include <random>

#include "arch/layer.h"

namespace qpf::arch {

/// Per-kind classical fault probabilities, each applied per operation
/// (or per readout bit for readout_flip).
struct ClassicalFaultRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double readout_flip = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           readout_flip > 0.0;
  }

  /// All four kinds at the same rate p.
  [[nodiscard]] static ClassicalFaultRates uniform(double p) noexcept {
    return ClassicalFaultRates{p, p, p, p};
  }
};

/// Tally of injected classical faults.
struct FaultTally {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t readout_flips = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return dropped + duplicated + reordered + readout_flips;
  }
};

/// Scripted chaos schedule: discrete fault events at seeded LCG-drawn
/// gaps.  Disabled unless max_gap > 0 and at least one kind has weight.
struct ChaosConfig {
  std::uint64_t seed = 0;
  /// Gap between events, in layer calls (add / execute), drawn uniform
  /// in [min_gap, max_gap].  max_gap == 0 disables the schedule.
  std::uint64_t min_gap = 0;
  std::uint64_t max_gap = 0;
  /// Relative weights of the event kinds.
  std::uint32_t crash_weight = 1;
  std::uint32_t stall_weight = 0;
  std::uint32_t burst_weight = 0;
  /// Latency debt per stall event, collected by a TimingLayer above.
  double stall_ns = 1000.0;
  /// Crashes per burst event (consecutive calls).
  std::uint64_t burst_length = 3;

  [[nodiscard]] bool any() const noexcept {
    return max_gap > 0 &&
           (crash_weight > 0 || stall_weight > 0 || burst_weight > 0);
  }
};

/// Tally of chaos-schedule events.  Never serialized.
struct ChaosTally {
  std::size_t crashes = 0;  ///< TransientFaultErrors thrown (burst incl.)
  std::size_t stalls = 0;
  std::size_t bursts = 0;
  double stalled_ns = 0.0;
};

class ClassicalFaultLayer final : public Layer {
 public:
  /// Throws StackConfigError unless every rate is in [0, 1].
  ClassicalFaultLayer(Core* lower, ClassicalFaultRates rates,
                      std::uint64_t seed);
  /// Same, plus a chaos schedule (validated: min_gap <= max_gap,
  /// burst_length >= 1, stall_ns >= 0).
  ClassicalFaultLayer(Core* lower, ClassicalFaultRates rates,
                      std::uint64_t seed, const ChaosConfig& chaos);

  void add(const Circuit& circuit) override;
  void execute() override;

  [[nodiscard]] BinaryState get_state() const override;

  [[nodiscard]] const ClassicalFaultRates& rates() const noexcept {
    return rates_;
  }
  [[nodiscard]] const FaultTally& tally() const noexcept { return tally_; }
  void reset_tally() noexcept { tally_ = {}; }

  [[nodiscard]] const ChaosConfig& chaos() const noexcept { return chaos_; }
  [[nodiscard]] const ChaosTally& chaos_tally() const noexcept {
    return chaos_tally_;
  }

  /// Latency debt accrued by stall events since the last call; returns
  /// it and resets the accumulator (TimingLayer pulls this after every
  /// forwarded call).
  [[nodiscard]] double take_pending_stall_ns() noexcept {
    const double ns = pending_stall_ns_;
    pending_stall_ns_ = 0.0;
    return ns;
  }

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  enum class ChaosAction : std::uint8_t { kNone, kCrashPre, kCrashPost };

  [[nodiscard]] bool flip(double probability) const;
  [[nodiscard]] std::uint64_t chaos_draw(std::uint64_t bound);
  [[nodiscard]] std::uint64_t chaos_gap();
  [[nodiscard]] ChaosAction chaos_tick();
  [[noreturn]] void chaos_crash(const char* where);

  ClassicalFaultRates rates_;
  // Readout faults strike inside the const get_state() path, so the RNG
  // and tally mutate under const.
  mutable std::mt19937_64 rng_;
  mutable std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  mutable FaultTally tally_;

  // Chaos schedule.  Deliberately absent from save/load_state: the
  // chaos clock is monotone across snapshot restores.
  ChaosConfig chaos_{};
  std::uint64_t chaos_lcg_ = 0;
  std::uint64_t chaos_countdown_ = 0;
  std::uint64_t burst_remaining_ = 0;
  std::uint64_t chaos_calls_ = 0;
  double pending_stall_ns_ = 0.0;
  ChaosTally chaos_tally_;
};

}  // namespace qpf::arch

// PauliFrameLayer: the Pauli Frame Unit as a QPDO layer (thesis §5.2.1).
//
// Circuits passing down are rewritten by the frame (Pauli gates
// absorbed, Clifford gates mapped, non-Clifford flushes inserted); the
// binary state coming back up is corrected per Table 3.2.
//
// The bypass flag is deliberately ignored here: the records must stay
// consistent with every circuit that reaches the qubits, so even the
// diagnostics circuits of §5.3.1 flow through the frame (the thesis
// bypasses only the counter and error layers).
//
// With a record Protection enabled (core/pauli_frame.h), the layer also
// performs graceful degradation: when the frame reports a detected-but-
// uncorrectable record while processing a circuit, the layer issues a
// full frame flush (Table 3.1) right behind it so the whole frame
// returns to a known-clean state instead of silently corrupting the
// downstream Clifford stream.
#pragma once

#include "arch/layer.h"
#include "core/pauli_frame.h"

namespace qpf::arch {

class PauliFrameLayer final : public Layer {
 public:
  explicit PauliFrameLayer(Core* lower,
                           pf::Protection protection = pf::Protection::kNone)
      : Layer(lower), protection_(protection) {}

  void create_qubits(std::size_t count) override {
    lower().create_qubits(count);
    frame_ = pf::PauliFrame{num_qubits(), protection_};
  }

  void remove_qubits() override {
    lower().remove_qubits();
    frame_.reset();
  }

  void add(const Circuit& circuit) override;

  [[nodiscard]] BinaryState get_state() const override;

  /// Apply every pending record on the qubits (needed before comparing
  /// raw quantum states, §5.2.2) and run it.
  void flush();

  /// Number of recovery flushes issued after uncorrectable record
  /// corruption (zero unless a Protection is active and faults hit).
  [[nodiscard]] std::size_t recovery_flushes() const noexcept {
    return recovery_flushes_;
  }

  [[nodiscard]] pf::Protection protection() const noexcept {
    return protection_;
  }

  [[nodiscard]] pf::PauliFrame& frame() {
    require_frame();
    return *frame_;
  }
  [[nodiscard]] const pf::PauliFrame& frame() const {
    require_frame();
    return *frame_;
  }

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  void require_frame() const {
    if (!frame_.has_value()) {
      throw std::logic_error("PauliFrameLayer: no qubits allocated");
    }
  }

  pf::Protection protection_;
  std::size_t recovery_flushes_ = 0;
  mutable std::optional<pf::PauliFrame> frame_;
};

}  // namespace qpf::arch

// PauliFrameLayer: the Pauli Frame Unit as a QPDO layer (thesis §5.2.1).
//
// Circuits passing down are rewritten by the frame (Pauli gates
// absorbed, Clifford gates mapped, non-Clifford flushes inserted); the
// binary state coming back up is corrected per Table 3.2.
//
// The bypass flag is deliberately ignored here: the records must stay
// consistent with every circuit that reaches the qubits, so even the
// diagnostics circuits of §5.3.1 flow through the frame (the thesis
// bypasses only the counter and error layers).
#pragma once

#include "arch/layer.h"
#include "core/pauli_frame.h"

namespace qpf::arch {

class PauliFrameLayer final : public Layer {
 public:
  explicit PauliFrameLayer(Core* lower) : Layer(lower) {}

  void create_qubits(std::size_t count) override {
    lower().create_qubits(count);
    frame_ = pf::PauliFrame{num_qubits()};
  }

  void remove_qubits() override {
    lower().remove_qubits();
    frame_.reset();
  }

  void add(const Circuit& circuit) override {
    require_frame();
    lower().add(frame_->process(circuit));
  }

  [[nodiscard]] BinaryState get_state() const override;

  /// Apply every pending record on the qubits (needed before comparing
  /// raw quantum states, §5.2.2) and run it.
  void flush();

  [[nodiscard]] pf::PauliFrame& frame() {
    require_frame();
    return *frame_;
  }
  [[nodiscard]] const pf::PauliFrame& frame() const {
    require_frame();
    return *frame_;
  }

 private:
  void require_frame() const {
    if (!frame_.has_value()) {
      throw std::logic_error("PauliFrameLayer: no qubits allocated");
    }
  }

  mutable std::optional<pf::PauliFrame> frame_;
};

}  // namespace qpf::arch

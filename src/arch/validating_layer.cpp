#include "arch/validating_layer.h"

#include "circuit/error.h"

namespace qpf::arch {

void ValidatingLayer::report(FaultReport::Kind kind, std::string detail) const {
  reports_.push_back(FaultReport{kind, std::move(detail), circuits_seen_});
}

void ValidatingLayer::create_qubits(std::size_t count) {
  lower().create_qubits(count);
  if (observed_ != nullptr) {
    reference_.emplace(num_qubits());
  }
}

void ValidatingLayer::remove_qubits() {
  lower().remove_qubits();
  reference_.reset();
}

void ValidatingLayer::resync() {
  if (observed_ == nullptr || !reference_.has_value()) {
    return;
  }
  for (Qubit q = 0; q < reference_->num_qubits(); ++q) {
    reference_->set_record(q, observed_->frame().record(q));
  }
}

void ValidatingLayer::add(const Circuit& circuit) {
  ++circuits_seen_;
  lower().add(circuit);
  if (num_qubits() != lower().num_qubits()) {
    report(FaultReport::Kind::kRegisterMismatch,
           "layer sees " + std::to_string(num_qubits()) + " qubits, lower " +
               std::to_string(lower().num_qubits()));
  }
  if (observed_ == nullptr || !reference_.has_value()) {
    return;
  }
  // Shadow-execute the same stream through the fault-free reference.
  const Circuit rewritten = reference_->process(circuit);
  if (rewritten.num_slots() > circuit.num_slots()) {
    report(FaultReport::Kind::kSlotGrowth,
           "Table 3.1 rewriting grew " + std::to_string(circuit.num_slots()) +
               " slots to " + std::to_string(rewritten.num_slots()));
  }
  const pf::PauliFrame& observed = observed_->frame();
  if (observed.num_qubits() != reference_->num_qubits()) {
    report(FaultReport::Kind::kRegisterMismatch,
           "observed frame has " + std::to_string(observed.num_qubits()) +
               " records, reference " +
               std::to_string(reference_->num_qubits()));
    return;
  }
  for (Qubit q = 0; q < reference_->num_qubits(); ++q) {
    const pf::PauliRecord seen = observed.record(q);
    if (static_cast<std::uint8_t>(seen) > 3) {
      report(FaultReport::Kind::kInvalidRecord,
             "qubit " + std::to_string(q) + " holds record value " +
                 std::to_string(static_cast<std::uint8_t>(seen)));
      continue;
    }
    const pf::PauliRecord expected = reference_->record(q);
    if (seen != expected) {
      report(FaultReport::Kind::kRecordMismatch,
             "qubit " + std::to_string(q) + ": observed " +
                 std::string(pf::name(seen)) + ", reference " +
                 std::string(pf::name(expected)));
      // Adopt the observed value so one corruption yields one report
      // instead of repeating on every subsequent circuit.
      reference_->set_record(q, seen);
    }
  }
}

BinaryState ValidatingLayer::get_state() const {
  BinaryState state = lower().get_state();
  if (state.size() != num_qubits()) {
    report(FaultReport::Kind::kStateSizeMismatch,
           "readout has " + std::to_string(state.size()) +
               " bits for a register of " + std::to_string(num_qubits()));
  }
  return state;
}

void ValidatingLayer::save_state(journal::SnapshotWriter& out) const {
  out.tag("validating-layer");
  out.write_bool(reference_.has_value());
  if (reference_.has_value()) {
    reference_->save(out);
  }
  out.write_size(circuits_seen_);
  out.write_size(reports_.size());
  for (const FaultReport& r : reports_) {
    out.write_u8(static_cast<std::uint8_t>(r.kind));
    out.write_string(r.detail);
    out.write_size(r.circuit_index);
  }
  lower().save_state(out);
}

void ValidatingLayer::load_state(journal::SnapshotReader& in) {
  in.expect_tag("validating-layer");
  if (in.read_bool()) {
    reference_ = pf::PauliFrame::load(in);
  } else {
    reference_.reset();
  }
  circuits_seen_ = in.read_size();
  const std::size_t count = in.read_size();
  reports_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t kind = in.read_u8();
    if (kind > static_cast<std::uint8_t>(FaultReport::Kind::kStateSizeMismatch)) {
      throw CheckpointError("validating layer snapshot: invalid report kind");
    }
    FaultReport r;
    r.kind = static_cast<FaultReport::Kind>(kind);
    r.detail = in.read_string();
    r.circuit_index = in.read_size();
    reports_.push_back(std::move(r));
  }
  lower().load_state(in);
}

}  // namespace qpf::arch

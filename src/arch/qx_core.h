// QxCore: the QPDO core backed by the universal state-vector simulator
// (the in-process equivalent of the thesis' QX-over-TCP core).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/core_interface.h"
#include "statevector/simulator.h"

namespace qpf::arch {

class QxCore final : public Core {
 public:
  explicit QxCore(std::uint64_t seed = 1) : seed_(seed) {}

  void create_qubits(std::size_t count) override;
  void remove_qubits() override;
  void add(const Circuit& circuit) override;
  void execute() override;
  [[nodiscard]] BinaryState get_state() const override;
  [[nodiscard]] std::optional<sv::StateVector> get_quantum_state()
      const override;
  [[nodiscard]] std::size_t num_qubits() const override {
    return binary_.size();
  }

  /// Direct simulator access for tests; null until qubits exist.
  [[nodiscard]] const sv::Simulator* simulator() const noexcept {
    return simulator_.get();
  }

  [[nodiscard]] bool snapshot_supported() const override { return true; }
  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  std::uint64_t seed_;
  std::unique_ptr<sv::Simulator> simulator_;
  BinaryState binary_;
  std::vector<Circuit> queue_;
};

}  // namespace qpf::arch

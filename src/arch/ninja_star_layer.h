// NinjaStarLayer: the QEC layer controlling SC17 logical qubits
// (thesis §5.1.3, Table 5.4).
//
// Upwards it speaks the Core interface at the *logical* level: qubit q
// of an added circuit is logical qubit q, gates are logical operations
// (Table 5.1), and get_state() reports logical binary values.  Each
// logical qubit owns 17 consecutive physical qubits in the stack below
// (a private ancilla set).
//
// Besides the transparent Core interface, the layer exposes the
// experiment API used by the LER study of §5.3: explicit initialization,
// windows (ESM rounds + decode + correct), and the diagnostics checks
// (observable-error probe and Fig 5.10 logical-stabilizer readout).
#pragma once

#include <vector>

#include "arch/layer.h"
#include "qec/ninja_star.h"

namespace qpf::arch {

class TimingLayer;

class NinjaStarLayer final : public Layer {
 public:
  struct Options {
    /// ESM rounds per QEC window; the thesis uses d - 1 = 2 (§5.3.1).
    std::size_t esm_rounds_per_window = 2;
    /// Windows automatically run on the involved stars after each
    /// logical gate executed through the Core interface (Fig 2.6).
    std::size_t windows_per_operation = 1;
    /// ESM CNOT ordering (ablation knob; kMixed is the paper's choice).
    qec::CnotPattern esm_pattern = qec::CnotPattern::kMixed;
    /// When false, windows measure syndromes but never decode or issue
    /// corrections (decoder ablation).
    bool decoding_enabled = true;
  };

  explicit NinjaStarLayer(Core* lower);
  NinjaStarLayer(Core* lower, Options options);

  // --- Core interface (logical level) ---------------------------------
  void create_qubits(std::size_t count) override;
  void remove_qubits() override;
  void add(const Circuit& logical_circuit) override;
  void execute() override;
  [[nodiscard]] BinaryState get_state() const override;
  [[nodiscard]] std::size_t num_qubits() const override {
    return stars_.size();
  }

  // --- Experiment API --------------------------------------------------
  [[nodiscard]] qec::NinjaStar& star(Qubit logical);
  [[nodiscard]] const qec::NinjaStar& star(Qubit logical) const;

  /// Initialize logical qubit q: |0>_L for CheckType::kZ, |+>_L for
  /// CheckType::kX.  Runs reset + d rounds of ESM with decoding
  /// (§2.6.1); works under noise.
  void initialize(Qubit logical, qec::CheckType basis = qec::CheckType::kZ);

  /// State injection (thesis future work, after [14]): encode an
  /// arbitrary single-qubit state into the logical qubit.  The center
  /// data qubit D4 is prepared with `center_preparation` (single-qubit
  /// gates addressed to qubit 0, retargeted to D4), the remaining data
  /// qubits in the |0>/|+> pattern that makes every boundary check
  /// deterministic, and one decoded ESM round projects into the code
  /// space.  Not fault-tolerant (like every d=3 injection scheme): a
  /// single fault during injection can corrupt the encoded state.
  void initialize_injected(Qubit logical, const Circuit& center_preparation);

  /// One QEC window: esm_rounds_per_window rounds of ESM, decode with
  /// the carried round (Fig 5.9), then issue the corrections.
  void run_window(Qubit logical);

  /// Diagnostic probe (§5.3.1): run one full ESM round and report
  /// whether any check deviates from the code space.  Run it with the
  /// error and counter layers bypassed.
  [[nodiscard]] bool has_observable_errors(Qubit logical);

  /// Diagnostic syndrome readout: one full ESM round, returning the raw
  /// 8-bit syndrome without touching the decoder bookkeeping.  Run it
  /// with the error and counter layers bypassed.
  [[nodiscard]] qec::Syndrome probe_syndrome(Qubit logical);

  /// Fig 5.10: measure the logical stabilizer (kZ -> Z-chain parity
  /// detecting X_L flips; kX -> X-chain parity detecting Z_L flips)
  /// without disturbing the state.  Returns +1 or -1.
  [[nodiscard]] int measure_logical_stabilizer(Qubit logical,
                                               qec::CheckType basis);

  /// Transversal logical measurement (§2.6.1): returns +1 / -1 and
  /// updates the star's run-time properties.
  [[nodiscard]] int measure_logical(Qubit logical);

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  void set_windows_per_operation(std::size_t n) noexcept {
    options_.windows_per_operation = n;
  }

  /// Arm the deadline watchdog (non-owning; a TimingLayer below this
  /// layer).  Each ESM round is bracketed with begin/end_round, and a
  /// pending budget overrun makes the next window *skip its decode*
  /// and carry the syndrome forward — degrade over skew: a late
  /// correction is deferred, never back-dated into the statistics.
  void set_deadline_watchdog(TimingLayer* watchdog) noexcept {
    watchdog_ = watchdog;
  }

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  /// Execute one ESM round and collect the syndrome; ancillas inactive
  /// in the current dance mode report their carried bits.
  qec::Syndrome run_esm_round(qec::NinjaStar& star);
  /// Execute a circuit through the stack below.
  void run_lower(const Circuit& circuit);
  void apply_logical(const Operation& op);
  void run_windows_after(Qubit logical);

  Options options_;
  qec::Sc17Layout layout_;
  std::vector<qec::NinjaStar> stars_;
  std::vector<Circuit> queue_;
  TimingLayer* watchdog_ = nullptr;  // non-owning, may be null
};

}  // namespace qpf::arch

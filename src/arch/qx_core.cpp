#include "arch/qx_core.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::arch {

void QxCore::create_qubits(std::size_t count) {
  if (count == 0) {
    throw StackConfigError("QxCore", "zero qubits requested");
  }
  binary_.assign(binary_.size() + count, BinaryValue::kZero);
  simulator_ = std::make_unique<sv::Simulator>(binary_.size(), seed_);
  queue_.clear();
}

void QxCore::remove_qubits() {
  simulator_.reset();
  binary_.clear();
  queue_.clear();
}

void QxCore::add(const Circuit& circuit) {
  if (circuit.min_register_size() > binary_.size()) {
    throw StackConfigError("QxCore", "circuit exceeds register");
  }
  queue_.push_back(circuit);
}

void QxCore::execute() {
  if (simulator_ == nullptr) {
    throw std::logic_error("QxCore: no qubits allocated");
  }
  std::vector<Circuit> pending;
  pending.swap(queue_);  // cleared even if a gate below throws
  for (const Circuit& circuit : pending) {
    for (const TimeSlot& slot : circuit) {
      for (const Operation& op : slot) {
        switch (category(op.gate())) {
          case GateCategory::kInitialization:
            simulator_->reset(op.qubit(0));
            binary_[op.qubit(0)] = BinaryValue::kZero;
            break;
          case GateCategory::kMeasurement:
            binary_[op.qubit(0)] = simulator_->measure(op.qubit(0)).value
                                       ? BinaryValue::kOne
                                       : BinaryValue::kZero;
            break;
          default:
            simulator_->apply_unitary(op);
            for (int i = 0; i < op.arity(); ++i) {
              if (op.gate() != GateType::kI) {
                binary_[op.qubit(i)] = BinaryValue::kUnknown;
              }
            }
            break;
        }
      }
    }
  }
}

BinaryState QxCore::get_state() const { return binary_; }

std::optional<sv::StateVector> QxCore::get_quantum_state() const {
  if (simulator_ == nullptr) {
    return std::nullopt;
  }
  return simulator_->state();
}

void QxCore::save_state(journal::SnapshotWriter& out) const {
  out.tag("qx-core");
  out.write_u64(seed_);
  out.write_bool(simulator_ != nullptr);
  if (simulator_ != nullptr) {
    simulator_->save(out);
  }
  out.write_size(binary_.size());
  for (const BinaryValue v : binary_) {
    out.write_u8(static_cast<std::uint8_t>(v));
  }
  out.write_size(queue_.size());
  for (const Circuit& circuit : queue_) {
    out.write_circuit(circuit);
  }
}

void QxCore::load_state(journal::SnapshotReader& in) {
  in.expect_tag("qx-core");
  seed_ = in.read_u64();
  if (in.read_bool()) {
    simulator_ = std::make_unique<sv::Simulator>(sv::Simulator::load(in));
  } else {
    simulator_.reset();
  }
  const std::size_t register_size = in.read_size();
  binary_.clear();
  for (std::size_t i = 0; i < register_size; ++i) {
    const std::uint8_t v = in.read_u8();
    if (v > static_cast<std::uint8_t>(BinaryValue::kUnknown)) {
      throw CheckpointError("qx core snapshot: invalid binary value");
    }
    binary_.push_back(static_cast<BinaryValue>(v));
  }
  const std::size_t queued = in.read_size();
  queue_.clear();
  for (std::size_t i = 0; i < queued; ++i) {
    queue_.push_back(in.read_circuit());
  }
  if (simulator_ != nullptr && simulator_->num_qubits() != binary_.size()) {
    throw CheckpointError("qx core snapshot: register size mismatch");
  }
}

}  // namespace qpf::arch

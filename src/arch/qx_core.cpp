#include "arch/qx_core.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::arch {

void QxCore::create_qubits(std::size_t count) {
  if (count == 0) {
    throw StackConfigError("QxCore", "zero qubits requested");
  }
  binary_.assign(binary_.size() + count, BinaryValue::kZero);
  simulator_ = std::make_unique<sv::Simulator>(binary_.size(), seed_);
  queue_.clear();
}

void QxCore::remove_qubits() {
  simulator_.reset();
  binary_.clear();
  queue_.clear();
}

void QxCore::add(const Circuit& circuit) {
  if (circuit.min_register_size() > binary_.size()) {
    throw StackConfigError("QxCore", "circuit exceeds register");
  }
  queue_.push_back(circuit);
}

void QxCore::execute() {
  if (simulator_ == nullptr) {
    throw std::logic_error("QxCore: no qubits allocated");
  }
  std::vector<Circuit> pending;
  pending.swap(queue_);  // cleared even if a gate below throws
  for (const Circuit& circuit : pending) {
    for (const TimeSlot& slot : circuit) {
      for (const Operation& op : slot) {
        switch (category(op.gate())) {
          case GateCategory::kInitialization:
            simulator_->reset(op.qubit(0));
            binary_[op.qubit(0)] = BinaryValue::kZero;
            break;
          case GateCategory::kMeasurement:
            binary_[op.qubit(0)] = simulator_->measure(op.qubit(0)).value
                                       ? BinaryValue::kOne
                                       : BinaryValue::kZero;
            break;
          default:
            simulator_->apply_unitary(op);
            for (int i = 0; i < op.arity(); ++i) {
              if (op.gate() != GateType::kI) {
                binary_[op.qubit(i)] = BinaryValue::kUnknown;
              }
            }
            break;
        }
      }
    }
  }
}

BinaryState QxCore::get_state() const { return binary_; }

std::optional<sv::StateVector> QxCore::get_quantum_state() const {
  if (simulator_ == nullptr) {
    return std::nullopt;
  }
  return simulator_->state();
}

}  // namespace qpf::arch

// ChpCore: the QPDO core backed by the stabilizer tableau simulator
// (thesis §4.2.3).  Simulates Clifford circuits only.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/core_interface.h"
#include "stabilizer/tableau.h"

namespace qpf::arch {

class ChpCore final : public Core {
 public:
  explicit ChpCore(std::uint64_t seed = 1) : seed_(seed) {}

  void create_qubits(std::size_t count) override;
  void remove_qubits() override;
  void add(const Circuit& circuit) override;
  void execute() override;
  [[nodiscard]] BinaryState get_state() const override;
  [[nodiscard]] std::optional<sv::StateVector> get_quantum_state()
      const override;
  [[nodiscard]] std::size_t num_qubits() const override {
    return binary_.size();
  }

  /// Direct tableau access for stabilizer assertions in tests.  Null
  /// until qubits exist.
  [[nodiscard]] const stab::Tableau* tableau() const noexcept {
    return tableau_.get();
  }

  [[nodiscard]] bool snapshot_supported() const override { return true; }
  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  std::uint64_t seed_;
  std::unique_ptr<stab::Tableau> tableau_;
  BinaryState binary_;
  std::vector<Circuit> queue_;
};

}  // namespace qpf::arch

#include "arch/pauli_frame_layer.h"

#include "circuit/bug_plant.h"
#include "circuit/error.h"

namespace qpf::arch {

void PauliFrameLayer::add(const Circuit& circuit) {
  require_frame();
  const std::size_t uncorrectable_before = frame_->health().uncorrectable;
  lower().add(frame_->process(circuit));
  if (frame_->health().uncorrectable > uncorrectable_before) {
    // Graceful degradation: a record was lost while rewriting this
    // circuit.  Flush the remaining records so the frame re-enters a
    // known-clean state; the lost Pauli is now a physical error that
    // the QEC layers above absorb like any other fault.
    const Circuit corrections = frame_->flush_all();
    if (!corrections.empty()) {
      lower().add(corrections);
    }
    ++recovery_flushes_;
  }
}

BinaryState PauliFrameLayer::get_state() const {
  require_frame();
  BinaryState state = lower().get_state();
  for (Qubit q = 0; q < state.size(); ++q) {
    if (state[q] == BinaryValue::kUnknown) {
      continue;
    }
    const bool raw = state[q] == BinaryValue::kOne;
    bool corrected = frame_->correct_measurement(q, raw);
    if (plant::bug(6)) {  // mutation hook: correct with Z instead of X
      corrected = raw != pf::has_z(frame_->record(q));
    }
    state[q] = corrected ? BinaryValue::kOne : BinaryValue::kZero;
  }
  return state;
}

void PauliFrameLayer::flush() {
  require_frame();
  const Circuit corrections = frame_->flush_all();
  if (!corrections.empty()) {
    lower().add(corrections);
    lower().execute();
  }
}

void PauliFrameLayer::save_state(journal::SnapshotWriter& out) const {
  out.tag("pauli-frame-layer");
  out.write_u8(static_cast<std::uint8_t>(protection_));
  out.write_size(recovery_flushes_);
  out.write_bool(frame_.has_value());
  if (frame_.has_value()) {
    frame_->save(out);
  }
  lower().save_state(out);
}

void PauliFrameLayer::load_state(journal::SnapshotReader& in) {
  in.expect_tag("pauli-frame-layer");
  const std::uint8_t protection = in.read_u8();
  if (protection != static_cast<std::uint8_t>(protection_)) {
    throw CheckpointError(
        "pauli frame layer snapshot: protection mode differs from the "
        "configured stack");
  }
  recovery_flushes_ = in.read_size();
  if (in.read_bool()) {
    frame_ = pf::PauliFrame::load(in);
  } else {
    frame_.reset();
  }
  lower().load_state(in);
}

}  // namespace qpf::arch

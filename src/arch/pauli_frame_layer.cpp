#include "arch/pauli_frame_layer.h"

namespace qpf::arch {

BinaryState PauliFrameLayer::get_state() const {
  require_frame();
  BinaryState state = lower().get_state();
  for (Qubit q = 0; q < state.size(); ++q) {
    if (state[q] == BinaryValue::kUnknown) {
      continue;
    }
    const bool raw = state[q] == BinaryValue::kOne;
    state[q] = frame_->correct_measurement(q, raw) ? BinaryValue::kOne
                                                   : BinaryValue::kZero;
  }
  return state;
}

void PauliFrameLayer::flush() {
  require_frame();
  const Circuit corrections = frame_->flush_all();
  if (!corrections.empty()) {
    lower().add(corrections);
    lower().execute();
  }
}

}  // namespace qpf::arch

#include "arch/pauli_frame_layer.h"

namespace qpf::arch {

void PauliFrameLayer::add(const Circuit& circuit) {
  require_frame();
  const std::size_t uncorrectable_before = frame_->health().uncorrectable;
  lower().add(frame_->process(circuit));
  if (frame_->health().uncorrectable > uncorrectable_before) {
    // Graceful degradation: a record was lost while rewriting this
    // circuit.  Flush the remaining records so the frame re-enters a
    // known-clean state; the lost Pauli is now a physical error that
    // the QEC layers above absorb like any other fault.
    const Circuit corrections = frame_->flush_all();
    if (!corrections.empty()) {
      lower().add(corrections);
    }
    ++recovery_flushes_;
  }
}

BinaryState PauliFrameLayer::get_state() const {
  require_frame();
  BinaryState state = lower().get_state();
  for (Qubit q = 0; q < state.size(); ++q) {
    if (state[q] == BinaryValue::kUnknown) {
      continue;
    }
    const bool raw = state[q] == BinaryValue::kOne;
    state[q] = frame_->correct_measurement(q, raw) ? BinaryValue::kOne
                                                   : BinaryValue::kZero;
  }
  return state;
}

void PauliFrameLayer::flush() {
  require_frame();
  const Circuit corrections = frame_->flush_all();
  if (!corrections.empty()) {
    lower().add(corrections);
    lower().execute();
  }
}

}  // namespace qpf::arch

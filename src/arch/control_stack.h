// Pre-assembled control stacks for the thesis' experiments.
//
// LerStack is the Fig 5.8 stack used by the §5.3 Logical Error Rate
// study:
//
//     NinjaStarLayer            (logical operations + QEC control)
//       CounterLayer  (above)   (stream before Pauli-frame filtering)
//       [PauliFrameLayer]       (optional — the experiment variable)
//       CounterLayer  (below)   (stream after filtering)
//       ErrorLayer               (symmetric depolarizing noise)
//       CounterLayer  (bottom)  (physical stream incl. injected faults)
//       ChpCore                  (stabilizer simulation backend)
//
// diagnostic mode bypasses the error and counter layers (§5.3.1) so the
// probe circuits are error-free and uncounted; the Pauli frame layer
// stays active so its records remain consistent.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/chp_core.h"
#include "arch/counter_layer.h"
#include "arch/error_layer.h"
#include "arch/ninja_star_layer.h"
#include "arch/pauli_frame_layer.h"

namespace qpf::arch {

class LerStack {
 public:
  struct Config {
    double physical_error_rate = 1e-3;
    bool with_pauli_frame = true;
    std::uint64_t seed = 1;
    std::size_t logical_qubits = 1;
    NinjaStarLayer::Options ninja_options{};
  };

  explicit LerStack(const Config& config);

  /// The top of the stack.
  [[nodiscard]] NinjaStarLayer& ninja() noexcept { return *ninja_; }

  /// Bypass (true) or re-arm (false) the error and counter layers.
  void set_diagnostic_mode(bool on) noexcept;

  [[nodiscard]] const Counters& counters_above_frame() const noexcept {
    return counter_above_->counters();
  }
  [[nodiscard]] const Counters& counters_below_frame() const noexcept {
    return counter_below_->counters();
  }
  [[nodiscard]] const Counters& counters_physical() const noexcept {
    return counter_bottom_->counters();
  }
  void reset_counters() noexcept;

  [[nodiscard]] const qec::ErrorTally& error_tally() const noexcept {
    return error_->tally();
  }

  [[nodiscard]] bool has_pauli_frame() const noexcept {
    return frame_ != nullptr;
  }
  [[nodiscard]] PauliFrameLayer* pauli_frame_layer() noexcept {
    return frame_.get();
  }

  /// Fraction of gates / time slots the frame absorbed, from the two
  /// counters around it (Figs 5.25 / 5.26).
  [[nodiscard]] double gates_saved_fraction() const noexcept;
  [[nodiscard]] double slots_saved_fraction() const noexcept;

 private:
  ChpCore core_;
  std::unique_ptr<CounterLayer> counter_bottom_;
  std::unique_ptr<ErrorLayer> error_;
  std::unique_ptr<CounterLayer> counter_below_;
  std::unique_ptr<PauliFrameLayer> frame_;  // may be null
  std::unique_ptr<CounterLayer> counter_above_;
  std::unique_ptr<NinjaStarLayer> ninja_;
};

}  // namespace qpf::arch

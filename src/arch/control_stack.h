// Pre-assembled control stacks for the thesis' experiments.
//
// LerStack is the Fig 5.8 stack used by the §5.3 Logical Error Rate
// study, extended with the optional classical-fault subsystem and the
// PR 4 supervision subsystem:
//
//     NinjaStarLayer            (logical operations + QEC control)
//       [TimingLayer]           (optional — modeled clock + deadline
//                                watchdog; above the supervisor so real
//                                time is never rewound by a recovery)
//       [SupervisorLayer]       (optional — catches typed faults from
//                                below, restores the chain from its
//                                last good snapshot, degrades/escalates)
//       CounterLayer  (above)   (stream before Pauli-frame filtering)
//       [ValidatingLayer]       (optional — shadow-frame cross-checks)
//       [PauliFrameLayer]       (optional — the experiment variable;
//                                record protection configurable)
//       CounterLayer  (below)   (stream after filtering)
//       [ClassicalFaultLayer]   (optional — drop/dup/reorder/readout
//                                plus the scripted chaos schedule)
//       ErrorLayer               (symmetric depolarizing noise)
//       CounterLayer  (bottom)  (physical stream incl. injected faults)
//       ChpCore                  (stabilizer simulation backend)
//
// diagnostic mode bypasses the error, classical-fault, counter, timing
// and supervisor layers (§5.3.1) so the probe circuits are fault-free
// and uncounted; the Pauli frame and validating layers stay active so
// their records remain consistent.  Leaving diagnostic mode refreshes
// the supervisor's good point (probes mutate the chain underneath it).
//
// With every classical fault rate at zero, chaos off, supervision off,
// no deadline, protection off, and validation off, the stack is
// bit-identical to the plain Fig 5.8 configuration: the optional
// layers are simply not constructed, and checkpoints keep the legacy
// "ler-stack" section layout.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/chp_core.h"
#include "arch/classical_fault_layer.h"
#include "arch/counter_layer.h"
#include "arch/error_layer.h"
#include "arch/ninja_star_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/supervisor_layer.h"
#include "arch/timing_layer.h"
#include "arch/validating_layer.h"

namespace qpf::arch {

class LerStack {
 public:
  struct Config {
    double physical_error_rate = 1e-3;
    bool with_pauli_frame = true;
    std::uint64_t seed = 1;
    std::size_t logical_qubits = 1;
    NinjaStarLayer::Options ninja_options{};

    /// Classical-fault subsystem (all off by default).
    ClassicalFaultRates classical_faults{};
    pf::Protection frame_protection = pf::Protection::kNone;
    bool validate = false;

    /// Supervision subsystem (all off by default; off = the layers are
    /// not constructed and every output is bit-identical to before).
    ChaosConfig chaos{};             ///< scripted fault storms
    bool supervise = false;          ///< build a SupervisorLayer
    SupervisorOptions supervisor{};  ///< recovery policy when supervising
    GateTimings timings{};           ///< clock for the deadline watchdog
    DeadlineBudget deadline{};       ///< any() -> build a TimingLayer
  };

  /// Throws StackConfigError on an invalid configuration (bad rates,
  /// zero logical qubits, protection without a Pauli frame).
  explicit LerStack(const Config& config);

  /// The top of the stack.
  [[nodiscard]] NinjaStarLayer& ninja() noexcept { return *ninja_; }

  /// Bypass (true) or re-arm (false) the error, classical-fault, and
  /// counter layers.
  void set_diagnostic_mode(bool on) noexcept;

  [[nodiscard]] const Counters& counters_above_frame() const noexcept {
    return counter_above_->counters();
  }
  [[nodiscard]] const Counters& counters_below_frame() const noexcept {
    return counter_below_->counters();
  }
  [[nodiscard]] const Counters& counters_physical() const noexcept {
    return counter_bottom_->counters();
  }
  void reset_counters() noexcept;

  [[nodiscard]] const qec::ErrorTally& error_tally() const noexcept {
    return error_->tally();
  }

  [[nodiscard]] bool has_pauli_frame() const noexcept {
    return frame_ != nullptr;
  }
  [[nodiscard]] PauliFrameLayer* pauli_frame_layer() noexcept {
    return frame_.get();
  }

  [[nodiscard]] bool has_classical_faults() const noexcept {
    return faults_ != nullptr;
  }
  [[nodiscard]] ClassicalFaultLayer* classical_fault_layer() noexcept {
    return faults_.get();
  }

  [[nodiscard]] bool has_validator() const noexcept {
    return validator_ != nullptr;
  }
  [[nodiscard]] ValidatingLayer* validating_layer() noexcept {
    return validator_.get();
  }

  [[nodiscard]] bool has_supervisor() const noexcept {
    return supervisor_ != nullptr;
  }
  [[nodiscard]] SupervisorLayer* supervisor_layer() noexcept {
    return supervisor_.get();
  }
  [[nodiscard]] const SupervisorLayer* supervisor_layer() const noexcept {
    return supervisor_.get();
  }

  [[nodiscard]] bool has_timing() const noexcept {
    return timing_ != nullptr;
  }
  [[nodiscard]] TimingLayer* timing_layer() noexcept { return timing_.get(); }
  [[nodiscard]] const TimingLayer* timing_layer() const noexcept {
    return timing_.get();
  }

  /// Fraction of gates / time slots the frame absorbed, from the two
  /// counters around it (Figs 5.25 / 5.26).
  [[nodiscard]] double gates_saved_fraction() const noexcept;
  [[nodiscard]] double slots_saved_fraction() const noexcept;

  /// Serialize the whole stack (every layer down to the tableau) into
  /// `out`.  Restoring requires a stack built from the *same* Config;
  /// load_state throws qpf::CheckpointError on any mismatch.
  void save_state(journal::SnapshotWriter& out) const;
  void load_state(journal::SnapshotReader& in);

 private:
  ChpCore core_;
  std::unique_ptr<CounterLayer> counter_bottom_;
  std::unique_ptr<ErrorLayer> error_;
  std::unique_ptr<ClassicalFaultLayer> faults_;  // may be null
  std::unique_ptr<CounterLayer> counter_below_;
  std::unique_ptr<PauliFrameLayer> frame_;       // may be null
  std::unique_ptr<ValidatingLayer> validator_;   // may be null
  std::unique_ptr<CounterLayer> counter_above_;
  std::unique_ptr<SupervisorLayer> supervisor_;  // may be null
  std::unique_ptr<TimingLayer> timing_;          // may be null
  std::unique_ptr<NinjaStarLayer> ninja_;
};

}  // namespace qpf::arch

// CounterLayer: diagnostic layer counting operations and time slots that
// pass between two other layers (thesis §4.2.3).  Placed around the
// Pauli frame layer, the difference between two counters yields the
// "saved gates / time slots" statistics of Figs 5.25 / 5.26.
#pragma once

#include "arch/layer.h"

namespace qpf::arch {

struct Counters {
  std::size_t operations = 0;
  std::size_t time_slots = 0;
  std::size_t circuits = 0;
};

class CounterLayer final : public Layer {
 public:
  using Layer::Layer;

  void add(const Circuit& circuit) override {
    if (!bypass_) {
      counters_.operations += circuit.num_operations();
      counters_.time_slots += circuit.num_slots();
      ++counters_.circuits;
    }
    lower().add(circuit);
  }

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = {}; }

  void save_state(journal::SnapshotWriter& out) const override {
    out.tag("counter-layer");
    out.write_size(counters_.operations);
    out.write_size(counters_.time_slots);
    out.write_size(counters_.circuits);
    lower().save_state(out);
  }
  void load_state(journal::SnapshotReader& in) override {
    in.expect_tag("counter-layer");
    counters_.operations = in.read_size();
    counters_.time_slots = in.read_size();
    counters_.circuits = in.read_size();
    lower().load_state(in);
  }

 private:
  Counters counters_;
};

}  // namespace qpf::arch

#include "arch/classical_fault_layer.h"

#include <utility>
#include <vector>

#include "circuit/error.h"

namespace qpf::arch {

namespace {

void require_rate(double p, const char* kind) {
  if (p < 0.0 || p > 1.0) {
    throw StackConfigError("ClassicalFaultLayer",
                           std::string(kind) + " rate out of [0,1]");
  }
}

}  // namespace

ClassicalFaultLayer::ClassicalFaultLayer(Core* lower,
                                         ClassicalFaultRates rates,
                                         std::uint64_t seed)
    : ClassicalFaultLayer(lower, rates, seed, ChaosConfig{}) {}

ClassicalFaultLayer::ClassicalFaultLayer(Core* lower,
                                         ClassicalFaultRates rates,
                                         std::uint64_t seed,
                                         const ChaosConfig& chaos)
    : Layer(lower), rates_(rates), rng_(seed), chaos_(chaos) {
  require_rate(rates.drop, "drop");
  require_rate(rates.duplicate, "duplicate");
  require_rate(rates.reorder, "reorder");
  require_rate(rates.readout_flip, "readout-flip");
  if (chaos_.min_gap > chaos_.max_gap) {
    throw StackConfigError("ClassicalFaultLayer",
                           "chaos min gap exceeds max gap");
  }
  if (chaos_.stall_ns < 0.0) {
    throw StackConfigError("ClassicalFaultLayer", "negative chaos stall");
  }
  if (chaos_.burst_weight > 0 && chaos_.burst_length == 0) {
    throw StackConfigError("ClassicalFaultLayer",
                           "chaos burst length must be at least 1");
  }
  if (chaos_.any()) {
    chaos_lcg_ = chaos_.seed;
    chaos_countdown_ = chaos_gap();
  }
}

bool ClassicalFaultLayer::flip(double probability) const {
  return probability > 0.0 && uniform_(rng_) < probability;
}

std::uint64_t ClassicalFaultLayer::chaos_draw(std::uint64_t bound) {
  // Deterministic 64-bit LCG (same constants as the campaign seed
  // chain); the high bits feed the draw.
  chaos_lcg_ =
      chaos_lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
  return bound == 0 ? 0 : (chaos_lcg_ >> 33) % bound;
}

std::uint64_t ClassicalFaultLayer::chaos_gap() {
  const std::uint64_t span = chaos_.max_gap - chaos_.min_gap + 1;
  const std::uint64_t gap = chaos_.min_gap + chaos_draw(span);
  return gap == 0 ? 1 : gap;
}

void ClassicalFaultLayer::chaos_crash(const char* where) {
  ++chaos_tally_.crashes;
  throw TransientFaultError(
      "classical-fault-layer",
      std::string("injected transient fault in ") + where, chaos_calls_);
}

ClassicalFaultLayer::ChaosAction ClassicalFaultLayer::chaos_tick() {
  ++chaos_calls_;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    return chaos_draw(2) == 0 ? ChaosAction::kCrashPre
                              : ChaosAction::kCrashPost;
  }
  if (chaos_countdown_ > 1) {
    --chaos_countdown_;
    return ChaosAction::kNone;
  }
  chaos_countdown_ = chaos_gap();
  const std::uint64_t total = static_cast<std::uint64_t>(chaos_.crash_weight) +
                              chaos_.stall_weight + chaos_.burst_weight;
  const std::uint64_t r = chaos_draw(total);
  if (r < chaos_.crash_weight) {
    return chaos_draw(2) == 0 ? ChaosAction::kCrashPre
                              : ChaosAction::kCrashPost;
  }
  if (r < static_cast<std::uint64_t>(chaos_.crash_weight) +
              chaos_.stall_weight) {
    ++chaos_tally_.stalls;
    chaos_tally_.stalled_ns += chaos_.stall_ns;
    pending_stall_ns_ += chaos_.stall_ns;
    return ChaosAction::kNone;
  }
  ++chaos_tally_.bursts;
  burst_remaining_ = chaos_.burst_length - 1;
  return chaos_draw(2) == 0 ? ChaosAction::kCrashPre
                            : ChaosAction::kCrashPost;
}

void ClassicalFaultLayer::execute() {
  ChaosAction action = ChaosAction::kNone;
  if (!bypass_ && chaos_.any()) {
    action = chaos_tick();
  }
  if (action == ChaosAction::kCrashPre) {
    chaos_crash("execute (before forwarding)");
  }
  lower().execute();
  if (action == ChaosAction::kCrashPost) {
    chaos_crash("execute (after forwarding)");
  }
}

void ClassicalFaultLayer::add(const Circuit& circuit) {
  ChaosAction action = ChaosAction::kNone;
  if (!bypass_ && chaos_.any()) {
    action = chaos_tick();
  }
  if (action == ChaosAction::kCrashPre) {
    chaos_crash("add (before forwarding)");
  }
  if (bypass_ || !rates_.any()) {
    lower().add(circuit);
    if (action == ChaosAction::kCrashPost) {
      chaos_crash("add (after forwarding)");
    }
    return;
  }
  Circuit faulty{circuit.name()};
  for (const TimeSlot& slot : circuit) {
    std::vector<Operation> ops;
    std::vector<Operation> duplicates;
    ops.reserve(slot.size());
    for (const Operation& op : slot) {
      if (flip(rates_.drop)) {
        ++tally_.dropped;
        continue;
      }
      if (flip(rates_.duplicate)) {
        ++tally_.duplicated;
        duplicates.push_back(op);
      }
      ops.push_back(op);
    }
    // Stream reordering: swap an operation with its slot neighbour.
    // Operations inside one slot are qubit-disjoint, so the slot
    // invariant survives any permutation.
    for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
      if (flip(rates_.reorder)) {
        std::swap(ops[i], ops[i + 1]);
        ++tally_.reordered;
      }
    }
    TimeSlot surviving;
    for (const Operation& op : ops) {
      surviving.add(op);
    }
    faulty.append_slot(std::move(surviving));
    // A stuttering link re-issues the duplicated operations right after
    // their own slot; they are mutually qubit-disjoint by construction.
    TimeSlot echo;
    for (const Operation& op : duplicates) {
      echo.add(op);
    }
    faulty.append_slot(std::move(echo));
  }
  lower().add(faulty);
  if (action == ChaosAction::kCrashPost) {
    chaos_crash("add (after forwarding)");
  }
}

BinaryState ClassicalFaultLayer::get_state() const {
  BinaryState state = lower().get_state();
  if (bypass_ || rates_.readout_flip <= 0.0) {
    return state;
  }
  for (BinaryValue& value : state) {
    if (value == BinaryValue::kUnknown) {
      continue;
    }
    if (flip(rates_.readout_flip)) {
      value = value == BinaryValue::kZero ? BinaryValue::kOne
                                          : BinaryValue::kZero;
      ++tally_.readout_flips;
    }
  }
  return state;
}

void ClassicalFaultLayer::save_state(journal::SnapshotWriter& out) const {
  out.tag("classical-fault-layer");
  out.write_double(rates_.drop);
  out.write_double(rates_.duplicate);
  out.write_double(rates_.reorder);
  out.write_double(rates_.readout_flip);
  out.write_rng(rng_);
  out.write_size(tally_.dropped);
  out.write_size(tally_.duplicated);
  out.write_size(tally_.reordered);
  out.write_size(tally_.readout_flips);
  lower().save_state(out);
}

void ClassicalFaultLayer::load_state(journal::SnapshotReader& in) {
  in.expect_tag("classical-fault-layer");
  const double drop = in.read_double();
  const double duplicate = in.read_double();
  const double reorder = in.read_double();
  const double readout_flip = in.read_double();
  if (drop != rates_.drop || duplicate != rates_.duplicate ||
      reorder != rates_.reorder || readout_flip != rates_.readout_flip) {
    throw CheckpointError(
        "classical fault layer snapshot: fault rates differ from the "
        "configured stack");
  }
  rng_ = in.read_rng();
  uniform_.reset();
  tally_.dropped = in.read_size();
  tally_.duplicated = in.read_size();
  tally_.reordered = in.read_size();
  tally_.readout_flips = in.read_size();
  lower().load_state(in);
}

}  // namespace qpf::arch

// SupervisorLayer: deterministic fault recovery for a control stack
// (PR 4).
//
// The layer wraps any Core and closes the loop PR 1 opened: typed
// qpf::Errors thrown by the chain below (injected transient faults,
// chaos crashes, checkpoint corruption, ...) are *caught* here and
// driven through a recovery state machine instead of aborting the
// trial:
//
//   NORMAL ──fault──> retry with bounded, seed-derived backoff:
//                     restore the chain below from the last good
//                     snapshot (taken after every clean execute), then
//                     replay the circuits added since.  Success returns
//                     to NORMAL; an exhausted retry budget degrades.
//   DEGRADED ───────> pass-through: the Pauli frame was flushed on the
//                     way down (Table 3.1 semantics — corrections are
//                     physically applied so the frame is known-clean),
//                     snapshots stop, faults abandon the operation and
//                     count as episodes.  `rearm_after` consecutive
//                     clean executes re-arm to NORMAL.
//   ESCALATED ──────> once the cumulative episode count reaches
//                     `escalate_after` (or the deadline watchdog blows
//                     its overrun budget) the layer throws a
//                     SupervisionError carrying the full incident
//                     record and refuses further traffic.
//
// Everything is deterministic: the backoff schedule (modeled
// nanoseconds, never a wall-clock sleep) is an LCG jittered exponential
// derived from the configured seed, snapshots are the bit-exact PR 2
// streams, and replay order is the recorded add order — so a recovered
// run is bit-identical to a fault-free run of the same seeds.
//
// The good-point snapshot covers only the chain *below* this layer; a
// TimingLayer above is deliberately outside it, because modeled real
// time must keep advancing across recoveries (time is monotone, state
// is not).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/layer.h"

namespace qpf::arch {

class PauliFrameLayer;
class TimingLayer;

/// Recovery policy.  Defaults retry three times, degrade, and escalate
/// on the third abandoned operation.
struct SupervisorOptions {
  std::size_t max_retries = 3;    ///< restore+replay attempts per fault
  std::size_t escalate_after = 3; ///< abandoned operations before escalation
  std::size_t rearm_after = 2;    ///< clean executes to re-arm from DEGRADED
  double backoff_base_ns = 100.0; ///< first-retry backoff (modeled ns)
  double backoff_cap_ns = 1.0e6;  ///< backoff ceiling per attempt
  std::uint64_t seed = 0;         ///< jitter seed (deterministic)
  /// Escalate when the deadline watchdog's total overrun count reaches
  /// this (0 = never escalate on overruns).
  std::size_t escalate_on_overruns = 0;
};

enum class SupervisionState : std::uint8_t {
  kNormal = 0,
  kDegraded = 1,
  kEscalated = 2,
};

/// Aggregate counters, exported into campaign statistics.
struct SupervisorStats {
  std::size_t faults_seen = 0; ///< typed errors caught from below
  std::size_t retries = 0;     ///< individual recovery attempts
  std::size_t recoveries = 0;  ///< faults fully recovered (restore+replay)
  std::size_t episodes = 0;    ///< operations abandoned (degrade events)
  std::size_t rearms = 0;      ///< DEGRADED -> NORMAL transitions
  double backoff_ns = 0.0;     ///< total modeled backoff
};

/// One fault episode, kept for the escalation report.
struct SupervisorIncident {
  std::size_t ordinal = 0;
  std::string phase;    ///< "add" / "execute" / "deadline"
  std::string error;    ///< what() of the triggering error
  std::size_t attempts = 0;
  double backoff_ns = 0.0;
  std::string outcome;  ///< "recovered" / "degraded" / "abandoned" / "escalated"
};

class SupervisorLayer final : public Layer {
 public:
  SupervisorLayer(Core* lower, SupervisorOptions options = {});

  // Non-owning collaborators, wired by the stack builder.
  /// Frame to flush when entering DEGRADED (may be null).
  void set_frame(PauliFrameLayer* frame) noexcept { frame_ = frame; }
  /// Deadline watchdog whose overrun count feeds escalation (may be
  /// null; the TimingLayer sits *above* this layer in the stack).
  void set_watchdog(TimingLayer* watchdog) noexcept { watchdog_ = watchdog; }

  void create_qubits(std::size_t count) override;
  void remove_qubits() override;
  void add(const Circuit& circuit) override;
  void execute() override;

  /// Re-snapshot the chain below as the new good point and forget the
  /// replay buffer.  The stack builder calls this when leaving
  /// diagnostic mode: probe circuits bypass the supervisor, so the old
  /// good point no longer matches the chain.
  void refresh_good_point();

  [[nodiscard]] SupervisionState state() const noexcept { return state_; }
  [[nodiscard]] const SupervisorStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<SupervisorIncident>& incidents()
      const noexcept {
    return incidents_;
  }
  /// Human-readable incident log (one line per episode).
  [[nodiscard]] std::string incident_report() const;

  [[nodiscard]] const SupervisorOptions& options() const noexcept {
    return options_;
  }

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  [[nodiscard]] double next_backoff_ns(std::size_t attempt);
  void mark_good_point();
  void restore_good_point();
  /// Retry loop: restore + replay (+ execute).  Returns true on
  /// recovery; false after degrading.  Throws on escalation.
  bool recover(const Error& cause, bool then_execute, const char* phase);
  [[noreturn]] void escalate_on_io(const Error& cause, const char* phase);
  void degrade(SupervisorIncident incident);
  void abandon_degraded(const Error& cause, const char* phase);
  void maybe_escalate(const char* reason);
  void check_watchdog();
  [[noreturn]] void throw_escalated(const std::string& reason);
  void record(SupervisorIncident incident);

  SupervisorOptions options_;
  SupervisionState state_ = SupervisionState::kNormal;
  SupervisorStats stats_;
  std::vector<SupervisorIncident> incidents_;
  std::size_t incidents_dropped_ = 0;

  PauliFrameLayer* frame_ = nullptr;    // non-owning
  TimingLayer* watchdog_ = nullptr;     // non-owning
  std::size_t overruns_escalated_ = 0;  // deadline incidents recorded

  std::uint64_t backoff_lcg_ = 0;
  std::size_t clean_streak_ = 0;

  std::vector<Circuit> pending_;             ///< adds since the good point
  std::vector<std::uint8_t> good_point_;     ///< snapshot of the chain below
  bool has_good_point_ = false;
};

}  // namespace qpf::arch

// Distance-d memory experiment driver: the Fig 5.8 control stack and
// Listing 5.7 loop, generalized from SC17 to any odd distance (thesis
// future work).  Stack: counter / [Pauli frame] / counter / error /
// ChpCore, with the same diagnostic-bypass discipline as LerStack.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/chp_core.h"
#include "arch/counter_layer.h"
#include "arch/error_layer.h"
#include "arch/pauli_frame_layer.h"
#include "qec/surface_code_patch.h"

namespace qpf::arch {

class SurfaceCodeExperiment {
 public:
  struct Config {
    int distance = 3;
    double physical_error_rate = 1e-3;
    bool with_pauli_frame = true;
    std::uint64_t seed = 1;
    /// ESM rounds per window; 0 means the thesis default d - 1.
    std::size_t esm_rounds_per_window = 0;
  };

  explicit SurfaceCodeExperiment(const Config& config);

  /// Initialize to |0>_L (kZ) or |+>_L (kX): reset (+ transversal H),
  /// one absolutely-decoded round, then a regular window.
  void initialize(qec::CheckType basis);

  /// One QEC window: rounds of ESM + matching decode + corrections.
  void run_window();

  /// Diagnostic probe; call inside diagnostic mode.
  [[nodiscard]] bool has_observable_errors();

  /// Non-destructive logical-operator parity (+1 / -1); diagnostic.
  [[nodiscard]] int measure_logical_stabilizer(qec::CheckType basis);

  void set_diagnostic_mode(bool on) noexcept;

  [[nodiscard]] double gates_saved_fraction() const noexcept;
  [[nodiscard]] double slots_saved_fraction() const noexcept;
  void reset_counters() noexcept;

  [[nodiscard]] const qec::SurfaceCodeLayout& layout() const noexcept {
    return layout_;
  }
  [[nodiscard]] qec::SurfaceCodePatch& patch() noexcept { return patch_; }
  /// The raw device, for targeted fault injection in tests.
  [[nodiscard]] ChpCore& device() noexcept { return core_; }

  /// Serialize the experiment mid-run (decoder carried round + the full
  /// layer stack down to the tableau).  load_state requires an
  /// experiment built from the same Config and throws
  /// qpf::CheckpointError on mismatch.
  void save_state(journal::SnapshotWriter& out) const;
  void load_state(journal::SnapshotReader& in);

  /// Atomically persist save_state() to a CRC-armored checkpoint file.
  void save_checkpoint(const std::string& path) const;
  /// Restore from save_checkpoint(); throws qpf::CheckpointError on a
  /// missing, corrupted, or configuration-mismatched file.
  void load_checkpoint(const std::string& path);

 private:
  [[nodiscard]] qec::SurfaceCodePatch::Bits run_esm_round();
  void run_top(const Circuit& circuit);

  qec::SurfaceCodeLayout layout_;
  std::size_t rounds_per_window_;
  ChpCore core_;
  std::unique_ptr<ErrorLayer> error_;
  std::unique_ptr<CounterLayer> counter_below_;
  std::unique_ptr<PauliFrameLayer> frame_;  // may be null
  std::unique_ptr<CounterLayer> counter_above_;
  Core* top_ = nullptr;
  qec::SurfaceCodePatch patch_;
};

}  // namespace qpf::arch

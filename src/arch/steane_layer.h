// SteaneLayer: QEC layer for Steane [[7,1,3]] logical qubits (the
// thesis' second QEC layer, §4.2.3).  Structure mirrors NinjaStarLayer;
// with a perfect CSS code, decoding reduces to a direct syndrome
// lookup, so there is no carried round — every ESM round is decoded
// absolutely and the corrections restore the ideal syndrome.
#pragma once

#include <vector>

#include "arch/layer.h"
#include "qec/steane.h"

namespace qpf::arch {

class SteaneLayer final : public Layer {
 public:
  explicit SteaneLayer(Core* lower) : Layer(lower) {}

  // --- Core interface (logical level) ---------------------------------
  void create_qubits(std::size_t count) override;
  void remove_qubits() override;
  void add(const Circuit& logical_circuit) override;
  void execute() override;
  [[nodiscard]] BinaryState get_state() const override;
  [[nodiscard]] std::size_t num_qubits() const override {
    return logical_state_.size();
  }

  // --- Experiment API --------------------------------------------------
  /// Reset logical qubit q to |0>_L: transversal reset plus one decoded
  /// ESM round for the gauge fix.
  void initialize(Qubit logical);

  /// One ESM round with absolute decoding; issues corrections.
  void run_qec_round(Qubit logical);

  /// Transversal logical measurement: +-1 parity of the seven data
  /// readouts.
  [[nodiscard]] int measure_logical(Qubit logical);

  /// Diagnostic probe: one ESM round; true when any check deviates
  /// from the code space.  Run with error layers bypassed.
  [[nodiscard]] bool has_observable_errors(Qubit logical);

  /// Non-destructive logical-operator parity readout: kZ measures
  /// Z_L = Z^x7 through an ancilla (+1/-1), kX measures X_L = X^x7.
  [[nodiscard]] int measure_logical_stabilizer(Qubit logical,
                                               qec::CheckType basis);

  [[nodiscard]] static Qubit base_of(Qubit logical) {
    return static_cast<Qubit>(logical * qec::SteaneCode::kNumQubits);
  }

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  void run_lower(const Circuit& circuit);
  void apply_logical(const Operation& op);
  /// Execute one ESM round and return the two 3-bit syndromes
  /// {x_checks, z_checks}.
  std::pair<unsigned, unsigned> run_esm_round(Qubit logical);

  std::vector<BinaryValue> logical_state_;
  std::vector<Circuit> queue_;
};

}  // namespace qpf::arch

// The shared Core interface every QPDO layer implements (Table 4.1).
//
// A control stack is a chain of layers ending in a core; every element
// speaks this interface, so layers can be recombined freely (Fig 4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/error.h"
#include "journal/snapshot.h"
#include "statevector/state.h"

namespace qpf::arch {

/// Classical view of one qubit: 0 / 1 after reset or measurement,
/// unknown after any other gate (thesis §4.2.2, the State structure).
enum class BinaryValue : std::uint8_t { kZero, kOne, kUnknown };

[[nodiscard]] constexpr char to_char(BinaryValue v) noexcept {
  switch (v) {
    case BinaryValue::kZero:
      return '0';
    case BinaryValue::kOne:
      return '1';
    case BinaryValue::kUnknown:
      return 'x';
  }
  return '?';
}

/// Binary state of the whole register.
using BinaryState = std::vector<BinaryValue>;

/// Table 4.1 — the functions every layer and core supports.
class Core {
 public:
  virtual ~Core() = default;

  /// Allocate `count` additional qubits.  Reinitializes the register
  /// (allocation happens during stack setup, before circuits run).
  virtual void create_qubits(std::size_t count) = 0;

  /// Deallocate every qubit.
  virtual void remove_qubits() = 0;

  /// Queue a circuit for execution.
  virtual void add(const Circuit& circuit) = 0;

  /// Execute every queued circuit in order.
  virtual void execute() = 0;

  /// Per-qubit binary state after the last execute().
  [[nodiscard]] virtual BinaryState get_state() const = 0;

  /// Full quantum state if the backend supports it (QX-style cores),
  /// nullopt otherwise (CHP-style cores).
  [[nodiscard]] virtual std::optional<sv::StateVector> get_quantum_state()
      const = 0;

  /// Current register size.
  [[nodiscard]] virtual std::size_t num_qubits() const = 0;

  // --- Snapshot capability (crash-safe experiment engine, PR 2) ------
  //
  // Every element of a stack serializes its *own* mutable state and
  // then delegates downward, so one save_state() call at the top of a
  // stack captures the whole chain and one load_state() restores it
  // bit-identically (RNG engines included).  Elements that carry no
  // state simply forward (the Layer default); an element that cannot
  // round-trip reports snapshot_supported() == false and throws a
  // structured qpf::CheckpointError from save_state / load_state.

  /// True when this element — and everything below it — round-trips
  /// exactly through save_state() / load_state().
  [[nodiscard]] virtual bool snapshot_supported() const { return false; }

  /// Serialize this element's mutable state, then the chain below.
  virtual void save_state(journal::SnapshotWriter& out) const {
    (void)out;
    throw CheckpointError("this stack element does not support snapshots");
  }

  /// Restore state saved by save_state().  Throws qpf::CheckpointError
  /// on corruption, truncation, or configuration mismatch.
  virtual void load_state(journal::SnapshotReader& in) {
    (void)in;
    throw CheckpointError("this stack element does not support snapshots");
  }
};

/// Convenience: queue and run one circuit.
inline void run(Core& core, const Circuit& circuit) {
  core.add(circuit);
  core.execute();
}

}  // namespace qpf::arch

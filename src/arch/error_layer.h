// ErrorLayer: injects symmetric depolarizing noise into every circuit
// passing through (thesis §4.2.3, §5.3.1).  Sits directly above the
// core so that everything physical — including Pauli corrections that
// were not absorbed by a Pauli frame, and idle slots — is noisy.
#pragma once

#include <cstdint>

#include "arch/layer.h"
#include "qec/depolarizing.h"

namespace qpf::arch {

class ErrorLayer final : public Layer {
 public:
  ErrorLayer(Core* lower, double physical_error_rate, std::uint64_t seed)
      : Layer(lower), model_(physical_error_rate, seed) {}

  void add(const Circuit& circuit) override {
    if (bypass_) {
      lower().add(circuit);
    } else {
      lower().add(model_.inject(circuit, num_qubits()));
    }
  }

  [[nodiscard]] const qec::DepolarizingModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const qec::ErrorTally& tally() const noexcept {
    return model_.tally();
  }

  void save_state(journal::SnapshotWriter& out) const override {
    out.tag("error-layer");
    model_.save(out);
    lower().save_state(out);
  }
  void load_state(journal::SnapshotReader& in) override {
    in.expect_tag("error-layer");
    model_.load(in);
    lower().load_state(in);
  }

 private:
  qec::DepolarizingModel model_;
};

}  // namespace qpf::arch

// Layer: base class for everything stacked on top of a core (Fig 4.3b).
//
// A layer implements the Core interface and owns nothing below it; by
// default every call is forwarded verbatim.  The bypass flag (thesis
// §5.3.1) routes traffic straight through a layer — used to run
// diagnostics circuits without error injection or counting.
#pragma once

#include <stdexcept>

#include "circuit/error.h"

#include "arch/core_interface.h"

namespace qpf::arch {

class Layer : public Core {
 public:
  explicit Layer(Core* lower) : lower_(lower) {
    if (lower == nullptr) {
      throw StackConfigError("Layer", "null lower layer");
    }
  }

  void create_qubits(std::size_t count) override {
    lower_->create_qubits(count);
  }
  void remove_qubits() override { lower_->remove_qubits(); }
  void add(const Circuit& circuit) override { lower_->add(circuit); }
  void execute() override { lower_->execute(); }
  [[nodiscard]] BinaryState get_state() const override {
    return lower_->get_state();
  }
  [[nodiscard]] std::optional<sv::StateVector> get_quantum_state()
      const override {
    return lower_->get_quantum_state();
  }
  [[nodiscard]] std::size_t num_qubits() const override {
    return lower_->num_qubits();
  }

  // A plain layer holds no mutable state, so its snapshot is exactly
  // the chain below.  Stateful layers override all three, writing their
  // own section before forwarding.
  [[nodiscard]] bool snapshot_supported() const override {
    return lower_->snapshot_supported();
  }
  void save_state(journal::SnapshotWriter& out) const override {
    lower_->save_state(out);
  }
  void load_state(journal::SnapshotReader& in) override {
    lower_->load_state(in);
  }

  /// Diagnostic bypass: when set, the layer forwards traffic untouched.
  void set_bypass(bool bypass) noexcept { bypass_ = bypass; }
  [[nodiscard]] bool bypass() const noexcept { return bypass_; }

 protected:
  [[nodiscard]] Core& lower() noexcept { return *lower_; }
  [[nodiscard]] const Core& lower() const noexcept { return *lower_; }

  bool bypass_ = false;

 private:
  Core* lower_;
};

}  // namespace qpf::arch

// ValidatingLayer: a self-checking layer that cross-checks the Pauli
// frame below it against a fault-free shadow copy, in the spirit of the
// redundant stabilizer-frame representations of García & Markov.
//
// The layer forwards every circuit untouched.  On the side it
//   * shadow-executes the circuit through its own reference PauliFrame
//     (unprotected, never faulted) and compares the observed frame's
//     records against the reference after every circuit,
//   * checks structural invariants of the stack: every record is a
//     legal 2-bit value, register sizes agree across the layers, and
//     Table 3.1 processing never grows the slot count,
//   * checks the readout path: the binary state must match the register
//     size.
// Violations are reported as structured FaultReports — never asserts,
// never throws — so a fault campaign can keep running while the
// validator records what the injected faults actually broke.
//
// Like PauliFrameLayer, the bypass flag is ignored: the shadow frame
// must see every circuit that the observed frame sees, including the
// diagnostics traffic of §5.3.1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "arch/layer.h"
#include "arch/pauli_frame_layer.h"

namespace qpf::arch {

/// One structured validation finding.
struct FaultReport {
  enum class Kind : std::uint8_t {
    kRecordMismatch,     ///< observed frame disagrees with the shadow frame
    kInvalidRecord,      ///< a record is outside {I, X, Z, XZ}
    kRegisterMismatch,   ///< register sizes disagree across the stack
    kSlotGrowth,         ///< Table 3.1 rewriting grew the slot count
    kStateSizeMismatch,  ///< readout size differs from the register
  };

  Kind kind;
  std::string detail;
  std::size_t circuit_index = 0;  ///< how many circuits this layer had seen
};

[[nodiscard]] constexpr std::string_view name(FaultReport::Kind k) noexcept {
  switch (k) {
    case FaultReport::Kind::kRecordMismatch:
      return "record-mismatch";
    case FaultReport::Kind::kInvalidRecord:
      return "invalid-record";
    case FaultReport::Kind::kRegisterMismatch:
      return "register-mismatch";
    case FaultReport::Kind::kSlotGrowth:
      return "slot-growth";
    case FaultReport::Kind::kStateSizeMismatch:
      return "state-size-mismatch";
  }
  return "?";
}

class ValidatingLayer final : public Layer {
 public:
  /// `observed` is the Pauli frame layer to cross-check; pass nullptr
  /// to run only the structural checks (no shadow frame).
  explicit ValidatingLayer(Core* lower, PauliFrameLayer* observed = nullptr)
      : Layer(lower), observed_(observed) {}

  void create_qubits(std::size_t count) override;
  void remove_qubits() override;
  void add(const Circuit& circuit) override;
  [[nodiscard]] BinaryState get_state() const override;

  [[nodiscard]] const std::vector<FaultReport>& reports() const noexcept {
    return reports_;
  }
  void clear_reports() noexcept { reports_.clear(); }

  /// Re-align the shadow frame with the observed frame (after an
  /// intentional out-of-band flush, e.g. PauliFrameLayer::flush()).
  void resync();

  void save_state(journal::SnapshotWriter& out) const override;
  void load_state(journal::SnapshotReader& in) override;

 private:
  void report(FaultReport::Kind kind, std::string detail) const;

  PauliFrameLayer* observed_;
  std::optional<pf::PauliFrame> reference_;
  std::size_t circuits_seen_ = 0;
  mutable std::vector<FaultReport> reports_;
};

}  // namespace qpf::arch

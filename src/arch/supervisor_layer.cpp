#include "arch/supervisor_layer.h"

#include <utility>

#include "arch/pauli_frame_layer.h"
#include "circuit/bug_plant.h"
#include "arch/timing_layer.h"

namespace qpf::arch {

namespace {

// Escalation reports keep the first kMaxIncidents episodes verbatim and
// summarize the rest, so a pathological fault storm cannot balloon the
// supervisor's memory.
constexpr std::size_t kMaxIncidents = 64;

}  // namespace

SupervisorLayer::SupervisorLayer(Core* lower, SupervisorOptions options)
    : Layer(lower), options_(options), backoff_lcg_(options.seed) {
  if (options_.max_retries == 0) {
    throw StackConfigError("SupervisorLayer",
                           "max_retries must be at least 1");
  }
  if (options_.escalate_after == 0) {
    throw StackConfigError("SupervisorLayer",
                           "escalate_after must be at least 1");
  }
  if (options_.rearm_after == 0) {
    throw StackConfigError("SupervisorLayer",
                           "rearm_after must be at least 1");
  }
  if (options_.backoff_base_ns < 0.0 || options_.backoff_cap_ns < 0.0) {
    throw StackConfigError("SupervisorLayer", "negative backoff");
  }
}

double SupervisorLayer::next_backoff_ns(std::size_t attempt) {
  // Exponential backoff with deterministic LCG jitter: attempt k waits
  // base * 2^(k-1) + jitter, jitter uniform in [0, base), capped.  All
  // of it is *modeled* time — the supervisor never sleeps.
  double backoff = options_.backoff_base_ns;
  for (std::size_t i = 1; i < attempt; ++i) {
    backoff *= 2.0;
    if (backoff >= options_.backoff_cap_ns) {
      break;
    }
  }
  backoff_lcg_ =
      backoff_lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const double unit =
      static_cast<double>(backoff_lcg_ >> 11) / 9007199254740992.0;  // [0,1)
  backoff += unit * options_.backoff_base_ns;
  return backoff < options_.backoff_cap_ns ? backoff
                                           : options_.backoff_cap_ns;
}

void SupervisorLayer::record(SupervisorIncident incident) {
  if (incidents_.size() < kMaxIncidents) {
    incidents_.push_back(std::move(incident));
  } else {
    ++incidents_dropped_;
  }
}

std::string SupervisorLayer::incident_report() const {
  std::string report;
  for (const SupervisorIncident& inc : incidents_) {
    report += '#';
    report += std::to_string(inc.ordinal);
    report += " [" + inc.phase + "] " + inc.outcome + " after " +
              std::to_string(inc.attempts) + " attempt(s), backoff " +
              std::to_string(inc.backoff_ns) + " ns: " + inc.error + "\n";
  }
  if (incidents_dropped_ > 0) {
    report += "(+" + std::to_string(incidents_dropped_) +
              " further incident(s) elided)\n";
  }
  return report;
}

void SupervisorLayer::throw_escalated(const std::string& reason) {
  state_ = SupervisionState::kEscalated;
  throw SupervisionError(reason, incident_report(), stats_.episodes);
}

void SupervisorLayer::maybe_escalate(const char* reason) {
  if (stats_.episodes >= options_.escalate_after) {
    throw_escalated(reason);
  }
}

void SupervisorLayer::check_watchdog() {
  if (watchdog_ == nullptr || options_.escalate_on_overruns == 0 ||
      state_ == SupervisionState::kEscalated) {
    return;
  }
  const std::size_t overruns = watchdog_->total_overruns();
  if (overruns < options_.escalate_on_overruns) {
    return;
  }
  if (overruns_escalated_ == 0) {
    ++overruns_escalated_;
    SupervisorIncident inc;
    inc.ordinal = stats_.faults_seen + 1;
    inc.phase = "deadline";
    inc.error = std::to_string(overruns) + " deadline overrun(s), budget " +
                std::to_string(options_.escalate_on_overruns);
    inc.outcome = "escalated";
    record(std::move(inc));
  }
  throw_escalated("deadline overrun budget exhausted");
}

void SupervisorLayer::mark_good_point() {
  if (!lower().snapshot_supported()) {
    has_good_point_ = false;
    good_point_.clear();
    return;
  }
  journal::SnapshotWriter writer;
  lower().save_state(writer);
  good_point_ = writer.bytes();
  has_good_point_ = true;
}

void SupervisorLayer::restore_good_point() {
  journal::SnapshotReader reader{good_point_};
  lower().load_state(reader);
}

void SupervisorLayer::refresh_good_point() {
  if (state_ != SupervisionState::kNormal) {
    return;
  }
  pending_.clear();
  mark_good_point();
}

void SupervisorLayer::create_qubits(std::size_t count) {
  lower().create_qubits(count);
  if (!bypass_) {
    pending_.clear();
    mark_good_point();
  }
}

void SupervisorLayer::remove_qubits() {
  lower().remove_qubits();
  pending_.clear();
  good_point_.clear();
  has_good_point_ = false;
}

void SupervisorLayer::add(const Circuit& circuit) {
  if (bypass_) {
    lower().add(circuit);
    return;
  }
  if (state_ == SupervisionState::kEscalated) {
    throw_escalated("supervisor already escalated");
  }
  if (state_ == SupervisionState::kDegraded) {
    try {
      lower().add(circuit);
    } catch (const SupervisionError&) {
      throw;
    } catch (const IoError& e) {
      escalate_on_io(e, "add");
    } catch (const Error& e) {
      abandon_degraded(e, "add");
    }
    return;
  }
  pending_.push_back(circuit);
  try {
    lower().add(circuit);
  } catch (const SupervisionError&) {
    throw;
  } catch (const IoError& e) {
    escalate_on_io(e, "add");
  } catch (const Error& e) {
    (void)recover(e, /*then_execute=*/false, "add");
  }
}

void SupervisorLayer::execute() {
  if (bypass_) {
    lower().execute();
    return;
  }
  if (state_ == SupervisionState::kEscalated) {
    throw_escalated("supervisor already escalated");
  }
  if (state_ == SupervisionState::kDegraded) {
    try {
      lower().execute();
      ++clean_streak_;
      if (clean_streak_ >= options_.rearm_after) {
        state_ = SupervisionState::kNormal;
        ++stats_.rearms;
        pending_.clear();
        mark_good_point();
      }
    } catch (const SupervisionError&) {
      throw;
    } catch (const IoError& e) {
      escalate_on_io(e, "execute");
    } catch (const Error& e) {
      abandon_degraded(e, "execute");
    }
    check_watchdog();
    return;
  }
  bool clean = true;
  try {
    lower().execute();
  } catch (const SupervisionError&) {
    throw;
  } catch (const IoError& e) {
    escalate_on_io(e, "execute");
  } catch (const Error& e) {
    clean = recover(e, /*then_execute=*/true, "execute");
  }
  if (clean) {
    pending_.clear();
    mark_good_point();
  }
  check_watchdog();
}

bool SupervisorLayer::recover(const Error& cause, bool then_execute,
                              const char* phase) {
  ++stats_.faults_seen;
  SupervisorIncident inc;
  inc.ordinal = stats_.faults_seen;
  inc.phase = phase;
  inc.error = cause.what();
  for (std::size_t attempt = 1; attempt <= options_.max_retries; ++attempt) {
    ++stats_.retries;
    ++inc.attempts;
    const double backoff = next_backoff_ns(attempt);
    inc.backoff_ns += backoff;
    stats_.backoff_ns += backoff;
    try {
      if (has_good_point_) {
        restore_good_point();
        // mutation hook 9: replay forgets the first pending circuit
        const std::size_t first = plant::bug(9) && !pending_.empty() ? 1 : 0;
        for (std::size_t i = first; i < pending_.size(); ++i) {
          lower().add(pending_[i]);
        }
      } else if (!then_execute && !pending_.empty()) {
        // No snapshot capability below: bare re-issue of the failed
        // add.  A post-forward fault may have half-applied it — this
        // path trades exactness for availability and is only taken on
        // stacks that cannot snapshot.
        lower().add(pending_.back());
      }
      if (then_execute) {
        lower().execute();
      }
      ++stats_.recoveries;
      inc.outcome = "recovered";
      record(std::move(inc));
      return true;
    } catch (const SupervisionError&) {
      throw;
    } catch (const Error& e) {
      inc.error = e.what();
    }
  }
  degrade(std::move(inc));
  return false;
}

void SupervisorLayer::escalate_on_io(const Error& cause, const char* phase) {
  // A typed IoError means the durable substrate (journal, checkpoint,
  // state dir) failed underneath the stack.  Retry/replay cannot help —
  // the quantum state is fine, the disk is not — and degrading would
  // keep journaling onto a broken device.  Escalate immediately so the
  // operator-facing layer (server eviction, CLI exit 1) takes over.
  ++stats_.faults_seen;
  ++stats_.episodes;
  SupervisorIncident inc;
  inc.ordinal = stats_.faults_seen;
  inc.phase = phase;
  inc.error = cause.what();
  inc.outcome = "escalated";
  record(std::move(inc));
  throw_escalated("durable I/O failure (retries cannot repair storage)");
}

void SupervisorLayer::degrade(SupervisorIncident incident) {
  ++stats_.episodes;
  clean_streak_ = 0;
  state_ = SupervisionState::kDegraded;
  // The chain below is in an unknown state; the stale snapshot must not
  // be restored later.
  has_good_point_ = false;
  good_point_.clear();
  pending_.clear();
  // Table 3.1 semantics: flush the frame so every tracked correction is
  // physically applied and the frame is known-clean before we pass
  // traffic through unsupervised.  The flush itself runs through the
  // (possibly still faulting) chain — a failure there just stays
  // degraded.
  if (frame_ != nullptr) {
    try {
      frame_->flush();
    } catch (const Error&) {
      // Already degraded; the flush will happen physically through
      // regular QEC corrections instead.
    }
  }
  const bool escalating = stats_.episodes >= options_.escalate_after;
  incident.outcome = escalating ? "escalated" : "degraded";
  record(std::move(incident));
  maybe_escalate("recovery budget exhausted");
}

void SupervisorLayer::abandon_degraded(const Error& cause,
                                       const char* phase) {
  ++stats_.faults_seen;
  ++stats_.episodes;
  clean_streak_ = 0;
  SupervisorIncident inc;
  inc.ordinal = stats_.faults_seen;
  inc.phase = phase;
  inc.error = cause.what();
  const bool escalating = stats_.episodes >= options_.escalate_after;
  inc.outcome = escalating ? "escalated" : "abandoned";
  record(std::move(inc));
  maybe_escalate("recovery budget exhausted");
}

void SupervisorLayer::save_state(journal::SnapshotWriter& out) const {
  out.tag("supervisor-layer");
  out.write_u8(static_cast<std::uint8_t>(state_));
  out.write_size(stats_.faults_seen);
  out.write_size(stats_.retries);
  out.write_size(stats_.recoveries);
  out.write_size(stats_.episodes);
  out.write_size(stats_.rearms);
  out.write_double(stats_.backoff_ns);
  out.write_u64(backoff_lcg_);
  out.write_size(clean_streak_);
  out.write_size(overruns_escalated_);
  out.write_size(incidents_dropped_);
  out.write_size(incidents_.size());
  for (const SupervisorIncident& inc : incidents_) {
    out.write_size(inc.ordinal);
    out.write_string(inc.phase);
    out.write_string(inc.error);
    out.write_size(inc.attempts);
    out.write_double(inc.backoff_ns);
    out.write_string(inc.outcome);
  }
  out.write_size(pending_.size());
  for (const Circuit& circuit : pending_) {
    out.write_circuit(circuit);
  }
  lower().save_state(out);
}

void SupervisorLayer::load_state(journal::SnapshotReader& in) {
  in.expect_tag("supervisor-layer");
  const std::uint8_t raw_state = in.read_u8();
  if (raw_state > static_cast<std::uint8_t>(SupervisionState::kEscalated)) {
    throw CheckpointError("supervisor snapshot: unknown state " +
                          std::to_string(raw_state));
  }
  state_ = static_cast<SupervisionState>(raw_state);
  stats_.faults_seen = in.read_size();
  stats_.retries = in.read_size();
  stats_.recoveries = in.read_size();
  stats_.episodes = in.read_size();
  stats_.rearms = in.read_size();
  stats_.backoff_ns = in.read_double();
  backoff_lcg_ = in.read_u64();
  clean_streak_ = in.read_size();
  overruns_escalated_ = in.read_size();
  incidents_dropped_ = in.read_size();
  const std::size_t count = in.read_size();
  if (count > kMaxIncidents) {
    throw CheckpointError("supervisor snapshot: implausible incident count " +
                          std::to_string(count));
  }
  incidents_.clear();
  incidents_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SupervisorIncident inc;
    inc.ordinal = in.read_size();
    inc.phase = in.read_string();
    inc.error = in.read_string();
    inc.attempts = in.read_size();
    inc.backoff_ns = in.read_double();
    inc.outcome = in.read_string();
    incidents_.push_back(std::move(inc));
  }
  const std::size_t queued = in.read_size();
  pending_.clear();
  for (std::size_t i = 0; i < queued; ++i) {
    pending_.push_back(in.read_circuit());
  }
  lower().load_state(in);
  // The freshly restored chain *is* a good point.
  if (state_ == SupervisionState::kNormal) {
    mark_good_point();
  } else {
    has_good_point_ = false;
    good_point_.clear();
  }
}

}  // namespace qpf::arch

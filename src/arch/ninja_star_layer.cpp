#include "arch/ninja_star_layer.h"

#include <stdexcept>

#include "arch/timing_layer.h"
#include "circuit/error.h"

namespace qpf::arch {

using qec::CheckType;
using qec::DanceMode;
using qec::NinjaStar;
using qec::Sc17Layout;
using qec::StateValue;
using qec::Syndrome;

NinjaStarLayer::NinjaStarLayer(Core* lower)
    : NinjaStarLayer(lower, Options{}) {}

NinjaStarLayer::NinjaStarLayer(Core* lower, Options options)
    : Layer(lower), options_(options), layout_(options.esm_pattern) {
  if (options_.esm_rounds_per_window < 2) {
    throw StackConfigError("NinjaStarLayer", "a window needs at least two ESM rounds");
  }
}

void NinjaStarLayer::create_qubits(std::size_t count) {
  lower().create_qubits(count * Sc17Layout::kNumQubits);
  stars_.clear();
  const std::size_t stars = lower().num_qubits() / Sc17Layout::kNumQubits;
  stars_.reserve(stars);
  for (std::size_t i = 0; i < stars; ++i) {
    stars_.emplace_back(static_cast<Qubit>(i * Sc17Layout::kNumQubits),
                        &layout_);
  }
}

void NinjaStarLayer::remove_qubits() {
  lower().remove_qubits();
  stars_.clear();
  queue_.clear();
}

void NinjaStarLayer::add(const Circuit& logical_circuit) {
  if (logical_circuit.min_register_size() > stars_.size()) {
    throw StackConfigError("NinjaStarLayer", "logical qubit out of range");
  }
  queue_.push_back(logical_circuit);
}

void NinjaStarLayer::execute() {
  std::vector<Circuit> pending;
  pending.swap(queue_);
  for (const Circuit& circuit : pending) {
    for (const TimeSlot& slot : circuit) {
      for (const Operation& op : slot) {
        apply_logical(op);
      }
    }
  }
}

BinaryState NinjaStarLayer::get_state() const {
  BinaryState state;
  state.reserve(stars_.size());
  for (const NinjaStar& star : stars_) {
    switch (star.state()) {
      case StateValue::kZero:
        state.push_back(BinaryValue::kZero);
        break;
      case StateValue::kOne:
        state.push_back(BinaryValue::kOne);
        break;
      case StateValue::kUnknown:
        state.push_back(BinaryValue::kUnknown);
        break;
    }
  }
  return state;
}

NinjaStar& NinjaStarLayer::star(Qubit logical) {
  if (logical >= stars_.size()) {
    throw std::out_of_range("NinjaStarLayer: logical qubit out of range");
  }
  return stars_[logical];
}

const NinjaStar& NinjaStarLayer::star(Qubit logical) const {
  if (logical >= stars_.size()) {
    throw std::out_of_range("NinjaStarLayer: logical qubit out of range");
  }
  return stars_[logical];
}

void NinjaStarLayer::run_lower(const Circuit& circuit) {
  lower().add(circuit);
  lower().execute();
}

Syndrome NinjaStarLayer::run_esm_round(NinjaStar& star) {
  if (watchdog_ != nullptr) {
    watchdog_->begin_round();
  }
  run_lower(star.esm_circuit());
  const BinaryState state = lower().get_state();
  Syndrome syndrome = star.carried_syndrome();
  for (int ancilla : star.esm_measurement_order()) {
    const Qubit q = Sc17Layout::ancilla_qubit(star.base(), ancilla);
    if (state.at(q) == BinaryValue::kUnknown) {
      throw std::logic_error("NinjaStarLayer: ancilla not measured");
    }
    const Syndrome bit = static_cast<Syndrome>(1u << ancilla);
    if (state.at(q) == BinaryValue::kOne) {
      syndrome = static_cast<Syndrome>(syndrome | bit);
    } else {
      syndrome = static_cast<Syndrome>(syndrome & ~bit);
    }
  }
  if (watchdog_ != nullptr) {
    watchdog_->end_round();
  }
  return syndrome;
}

void NinjaStarLayer::initialize(Qubit logical, CheckType basis) {
  NinjaStar& s = star(logical);
  run_lower(s.reset_circuit());
  s.on_reset();
  if (basis == CheckType::kX) {
    // |+>_L: transversal H as *state preparation* (the lattice stays in
    // the normal orientation, unlike a logical H gate).
    Circuit prep{"plus-prep"};
    TimeSlot slot;
    for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
      slot.add(Operation{GateType::kH, Sc17Layout::data_qubit(s.base(), d)});
    }
    prep.append_slot(std::move(slot));
    run_lower(prep);
    s.set_state(StateValue::kUnknown);
  }
  // The first ESM round projects the checks.  Gauge-fix only the
  // randomly projected group; real errors (the other group) defer to
  // the confirmation window below, whose agreement rule makes single
  // faults harmless.
  const Syndrome first = run_esm_round(s);
  const std::vector<Operation> gauge = s.decode_gauge(
      first, basis == CheckType::kZ ? CheckType::kX : CheckType::kZ);
  if (!gauge.empty()) {
    Circuit fix{"init-corrections"};
    TimeSlot slot;
    for (const Operation& op : gauge) {
      slot.add(op);
    }
    fix.append_slot(std::move(slot));
    run_lower(fix);
  }
  // Complete d rounds of ESM with a regular decoded window.
  run_window(logical);
}

void NinjaStarLayer::initialize_injected(Qubit logical,
                                         const Circuit& center_preparation) {
  NinjaStar& s = star(logical);
  run_lower(s.reset_circuit());
  s.on_reset();
  // |0>/|+> pattern: D0, D3, D5, D8 stay |0> (making Z0Z3 and Z5Z8
  // deterministic), D1, D2, D6, D7 go to |+> (making X1X2 and X6X7
  // deterministic); the injected state sits on D4.  All three logical
  // operators then restrict onto D4, so the stabilizer projection
  // preserves the full Bloch vector.
  Circuit pattern{"injection-pattern"};
  TimeSlot slot;
  for (int d : {1, 2, 6, 7}) {
    slot.add(Operation{GateType::kH, Sc17Layout::data_qubit(s.base(), d)});
  }
  pattern.append_slot(std::move(slot));
  run_lower(pattern);
  // Retarget the preparation gates onto the physical center qubit.
  Circuit center{"injection-center"};
  for (const TimeSlot& prep_slot : center_preparation) {
    for (const Operation& op : prep_slot) {
      if (op.arity() != 1 || op.qubit(0) != 0) {
        throw StackConfigError(
            "NinjaStarLayer",
            "initialize_injected: preparation must be single-qubit gates "
            "on qubit 0");
      }
      center.append(op.gate(), Sc17Layout::data_qubit(s.base(), 4));
    }
  }
  run_lower(center);
  // Project into the code space and gauge-fix with corrections that
  // commute with the logical operators.
  const Syndrome first = run_esm_round(s);
  const std::vector<Operation> gauge = s.decode_injection(first);
  if (!gauge.empty()) {
    Circuit fix{"injection-corrections"};
    TimeSlot fix_slot;
    for (const Operation& op : gauge) {
      fix_slot.add(op);
    }
    fix.append_slot(std::move(fix_slot));
    run_lower(fix);
  }
  s.set_state(StateValue::kUnknown);
  run_window(logical);
}

void NinjaStarLayer::run_window(Qubit logical) {
  NinjaStar& s = star(logical);
  Syndrome r1 = 0;
  for (std::size_t round = 0; round + 1 < options_.esm_rounds_per_window;
       ++round) {
    r1 = run_esm_round(s);
  }
  const Syndrome r2 = run_esm_round(s);
  if (!options_.decoding_enabled) {
    (void)r1;
    s.set_carried_syndrome(r2);
    return;
  }
  // Deadline degrade: a budget overrun during this window's rounds
  // means the decode would land late — skip it and carry the syndrome
  // into the next window instead of back-dating the correction.
  if (watchdog_ != nullptr && watchdog_->consume_overrun()) {
    watchdog_->note_skipped_decode();
    s.set_carried_syndrome(r2);
    return;
  }
  const std::vector<Operation> corrections = s.decode_window(r1, r2);
  if (!corrections.empty()) {
    Circuit fix{"window-corrections"};
    TimeSlot slot;
    for (const Operation& op : corrections) {
      slot.add(op);
    }
    fix.append_slot(std::move(slot));
    run_lower(fix);
  }
}

bool NinjaStarLayer::has_observable_errors(Qubit logical) {
  return probe_syndrome(logical) != 0;
}

Syndrome NinjaStarLayer::probe_syndrome(Qubit logical) {
  NinjaStar& s = star(logical);
  const Syndrome carried = s.carried_syndrome();
  const Syndrome probe = run_esm_round(s);
  // The probe round must not perturb the decoder bookkeeping.
  s.set_carried_syndrome(carried);
  return probe;
}

int NinjaStarLayer::measure_logical_stabilizer(Qubit logical,
                                               CheckType basis) {
  NinjaStar& s = star(logical);
  run_lower(s.logical_stabilizer_circuit(basis));
  const BinaryState state = lower().get_state();
  const Qubit ancilla = Sc17Layout::ancilla_qubit(s.base(), 0);
  if (state.at(ancilla) == BinaryValue::kUnknown) {
    throw std::logic_error("NinjaStarLayer: stabilizer ancilla not measured");
  }
  return state.at(ancilla) == BinaryValue::kOne ? -1 : +1;
}

int NinjaStarLayer::measure_logical(Qubit logical) {
  NinjaStar& s = star(logical);
  run_lower(s.measure_circuit());
  const BinaryState raw = lower().get_state();
  std::array<bool, Sc17Layout::kNumData> bits{};
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    const Qubit q = Sc17Layout::data_qubit(s.base(), d);
    if (raw.at(q) == BinaryValue::kUnknown) {
      throw std::logic_error("NinjaStarLayer: data qubit not measured");
    }
    bits[static_cast<std::size_t>(d)] = raw.at(q) == BinaryValue::kOne;
  }
  // Partial (Z-ancilla only) ESM rounds accompany the measurement
  // procedure (§5.1.2).  The classical fix, however, comes from the
  // readout string itself: code states satisfy every Z-check parity, so
  // parity violations of the measured bits pinpoint pre-readout X flips
  // without being fooled by errors that strike after readout.
  run_lower(layout_.esm_circuit(s.base(), s.orientation(), DanceMode::kZOnly));
  std::vector<int> ones;
  for (int d = 0; d < static_cast<int>(Sc17Layout::kNumData); ++d) {
    if (bits[static_cast<std::size_t>(d)]) {
      ones.push_back(d);
    }
  }
  const Syndrome violations = s.signature(ones, CheckType::kX);
  for (int d : s.decode_partial_round(violations)) {
    bits[static_cast<std::size_t>(d)] = !bits[static_cast<std::size_t>(d)];
  }
  int sign = +1;
  for (bool b : bits) {
    sign = b ? -sign : sign;
  }
  s.on_measured(sign);
  return sign;
}

void NinjaStarLayer::run_windows_after(Qubit logical) {
  for (std::size_t i = 0; i < options_.windows_per_operation; ++i) {
    run_window(logical);
  }
}

void NinjaStarLayer::apply_logical(const Operation& op) {
  switch (op.gate()) {
    case GateType::kPrepZ:
      initialize(op.qubit(0), CheckType::kZ);
      return;
    case GateType::kMeasureZ:
      (void)measure_logical(op.qubit(0));
      return;
    case GateType::kI:
      run_windows_after(op.qubit(0));
      return;
    case GateType::kX: {
      NinjaStar& s = star(op.qubit(0));
      run_lower(s.logical_x_circuit());
      s.on_logical_x();
      run_windows_after(op.qubit(0));
      return;
    }
    case GateType::kZ: {
      NinjaStar& s = star(op.qubit(0));
      run_lower(s.logical_z_circuit());
      s.on_logical_z();
      run_windows_after(op.qubit(0));
      return;
    }
    case GateType::kY: {
      // Y_L ~ X_L Z_L up to global phase.
      NinjaStar& s = star(op.qubit(0));
      run_lower(s.logical_z_circuit());
      run_lower(s.logical_x_circuit());
      s.on_logical_x();
      run_windows_after(op.qubit(0));
      return;
    }
    case GateType::kH: {
      NinjaStar& s = star(op.qubit(0));
      run_lower(s.logical_h_circuit());
      s.on_logical_h();
      run_windows_after(op.qubit(0));
      return;
    }
    case GateType::kCnot: {
      NinjaStar& c = star(op.control());
      NinjaStar& t = star(op.target());
      run_lower(NinjaStar::logical_cnot_circuit(c, t));
      NinjaStar::on_logical_cnot(c, t);
      run_windows_after(op.control());
      run_windows_after(op.target());
      return;
    }
    case GateType::kCz: {
      NinjaStar& a = star(op.control());
      NinjaStar& b = star(op.target());
      run_lower(NinjaStar::logical_cz_circuit(a, b));
      NinjaStar::on_logical_cz(a, b);
      run_windows_after(op.control());
      run_windows_after(op.target());
      return;
    }
    default:
      throw StackConfigError(
          "NinjaStarLayer", "no fault-tolerant implementation for " + op.str());
  }
}

void NinjaStarLayer::save_state(journal::SnapshotWriter& out) const {
  out.tag("ninja-star-layer");
  out.write_size(stars_.size());
  for (const NinjaStar& star : stars_) {
    star.save(out);
  }
  out.write_size(queue_.size());
  for (const Circuit& circuit : queue_) {
    out.write_circuit(circuit);
  }
  lower().save_state(out);
}

void NinjaStarLayer::load_state(journal::SnapshotReader& in) {
  in.expect_tag("ninja-star-layer");
  const std::size_t count = in.read_size();
  if (count != stars_.size()) {
    throw CheckpointError(
        "ninja star layer snapshot: logical qubit count differs from the "
        "configured stack (checkpoint " + std::to_string(count) + ", stack " +
        std::to_string(stars_.size()) + ")");
  }
  for (NinjaStar& star : stars_) {
    star.load(in);
  }
  const std::size_t queued = in.read_size();
  queue_.clear();
  for (std::size_t i = 0; i < queued; ++i) {
    queue_.push_back(in.read_circuit());
  }
  lower().load_state(in);
}

}  // namespace qpf::arch

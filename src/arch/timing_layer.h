// TimingLayer: wall-clock accounting for the circuits flowing down a
// stack — a first step toward the thesis' "clock-cycle accurate
// emulation" future work.
//
// Every time slot costs the maximum duration of its operations (slots
// execute in parallel, §4.2.2); the layer accumulates the total and
// counts slots per kind.  Combined with the decoder-stall model of
// core/schedule.h this turns the Fig 3.3 schedule comparison into
// nanoseconds for a concrete hardware parameter set.
#pragma once

#include <cstdint>

#include "arch/layer.h"

namespace qpf::arch {

/// Per-operation durations in nanoseconds.  Defaults are
/// transmon-flavoured (fast gates, slow readout and reset).
struct GateTimings {
  double single_qubit_ns = 20.0;
  double two_qubit_ns = 40.0;
  double measure_ns = 300.0;
  double prep_ns = 300.0;

  /// Duration of one time slot: the slowest operation in it.
  [[nodiscard]] double slot_ns(const TimeSlot& slot) const noexcept {
    double worst = 0.0;
    for (const Operation& op : slot) {
      double d = 0.0;
      switch (category(op.gate())) {
        case GateCategory::kMeasurement:
          d = measure_ns;
          break;
        case GateCategory::kInitialization:
          d = prep_ns;
          break;
        default:
          d = op.arity() == 2 ? two_qubit_ns : single_qubit_ns;
          break;
      }
      worst = d > worst ? d : worst;
    }
    return worst;
  }
};

class TimingLayer final : public Layer {
 public:
  explicit TimingLayer(Core* lower, GateTimings timings = {})
      : Layer(lower), timings_(timings) {}

  void add(const Circuit& circuit) override {
    if (!bypass_) {
      for (const TimeSlot& slot : circuit) {
        elapsed_ns_ += timings_.slot_ns(slot);
        ++slots_;
      }
    }
    lower().add(circuit);
  }

  [[nodiscard]] double elapsed_ns() const noexcept { return elapsed_ns_; }
  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }
  void reset_clock() noexcept {
    elapsed_ns_ = 0.0;
    slots_ = 0;
  }

  [[nodiscard]] const GateTimings& timings() const noexcept {
    return timings_;
  }

  void save_state(journal::SnapshotWriter& out) const override {
    out.tag("timing-layer");
    out.write_double(elapsed_ns_);
    out.write_size(slots_);
    lower().save_state(out);
  }
  void load_state(journal::SnapshotReader& in) override {
    in.expect_tag("timing-layer");
    elapsed_ns_ = in.read_double();
    slots_ = in.read_size();
    lower().load_state(in);
  }

 private:
  GateTimings timings_;
  double elapsed_ns_ = 0.0;
  std::size_t slots_ = 0;
};

}  // namespace qpf::arch

// TimingLayer: wall-clock accounting for the circuits flowing down a
// stack — a first step toward the thesis' "clock-cycle accurate
// emulation" future work.
//
// Every time slot costs the maximum duration of its operations (slots
// execute in parallel, §4.2.2); the layer accumulates the total and
// counts slots per kind.  Combined with the decoder-stall model of
// core/schedule.h this turns the Fig 3.3 schedule comparison into
// nanoseconds for a concrete hardware parameter set.
//
// --- Deadline watchdog (PR 4) ----------------------------------------
//
// With a DeadlineBudget armed, the layer doubles as the stack's
// watchdog: every slot is checked against the per-slot budget, and the
// QEC layer above brackets each ESM round with begin_round()/end_round()
// so the round's modeled time — gates plus any classical stall debt
// pulled from a ClassicalFaultLayer below (take_pending_stall_ns()) —
// is checked against the per-round budget.  An overrun raises a sticky
// one-shot flag which the QEC layer consumes (consume_overrun()) to
// *skip the decode* for that window and carry the syndrome forward,
// mirroring the paper's degrade-over-skew stance: a late correction is
// deferred to the frame, never silently back-dated.  All time here is
// MODELED time (GateTimings + injected stalls), so overruns are exactly
// reproducible from the seed — the watchdog never reads a wall clock.
#pragma once

#include <cstdint>

#include "arch/classical_fault_layer.h"
#include "arch/layer.h"

namespace qpf::arch {

/// Per-operation durations in nanoseconds.  Defaults are
/// transmon-flavoured (fast gates, slow readout and reset).
struct GateTimings {
  double single_qubit_ns = 20.0;
  double two_qubit_ns = 40.0;
  double measure_ns = 300.0;
  double prep_ns = 300.0;

  /// Duration of one time slot: the slowest operation in it.
  [[nodiscard]] double slot_ns(const TimeSlot& slot) const noexcept {
    double worst = 0.0;
    for (const Operation& op : slot) {
      double d = 0.0;
      switch (category(op.gate())) {
        case GateCategory::kMeasurement:
          d = measure_ns;
          break;
        case GateCategory::kInitialization:
          d = prep_ns;
          break;
        default:
          d = op.arity() == 2 ? two_qubit_ns : single_qubit_ns;
          break;
      }
      worst = d > worst ? d : worst;
    }
    return worst;
  }
};

/// Real-time budgets in modeled nanoseconds; 0 disables a check.
struct DeadlineBudget {
  double slot_budget_ns = 0.0;   ///< per time slot (gates only)
  double round_budget_ns = 0.0;  ///< per ESM round (gates + stalls)

  [[nodiscard]] bool any() const noexcept {
    return slot_budget_ns > 0.0 || round_budget_ns > 0.0;
  }
};

class TimingLayer final : public Layer {
 public:
  explicit TimingLayer(Core* lower, GateTimings timings = {})
      : Layer(lower), timings_(timings) {}

  void add(const Circuit& circuit) override {
    if (!bypass_) {
      for (const TimeSlot& slot : circuit) {
        const double d = timings_.slot_ns(slot);
        elapsed_ns_ += d;
        round_ns_ += d;
        ++slots_;
        if (deadline_.slot_budget_ns > 0.0 && d > deadline_.slot_budget_ns) {
          ++slot_overruns_;
          overrun_pending_ = true;
        }
      }
    }
    lower().add(circuit);
    collect_stall();
  }

  void execute() override {
    lower().execute();
    collect_stall();
  }

  [[nodiscard]] double elapsed_ns() const noexcept { return elapsed_ns_; }
  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }
  void reset_clock() noexcept {
    elapsed_ns_ = 0.0;
    slots_ = 0;
  }

  [[nodiscard]] const GateTimings& timings() const noexcept {
    return timings_;
  }

  // --- Deadline watchdog ----------------------------------------------

  void set_deadline(const DeadlineBudget& budget) noexcept {
    deadline_ = budget;
  }
  [[nodiscard]] const DeadlineBudget& deadline() const noexcept {
    return deadline_;
  }

  /// Classical stall debt is pulled from this layer (non-owning) after
  /// every forwarded call; modeled stalls count as elapsed real time.
  void set_stall_source(ClassicalFaultLayer* source) noexcept {
    stall_source_ = source;
  }

  /// Bracket one ESM round: end_round() checks the accumulated round
  /// time (gates + stalls since begin_round()) against the budget.
  void begin_round() noexcept { round_ns_ = 0.0; }
  void end_round() noexcept {
    if (bypass_) {
      return;
    }
    if (deadline_.round_budget_ns > 0.0 &&
        round_ns_ > deadline_.round_budget_ns) {
      ++round_overruns_;
      overrun_pending_ = true;
    }
  }

  /// One-shot overrun flag: true if any budget was blown since the last
  /// consume; consuming clears it.  The QEC layer uses this to skip a
  /// decode instead of back-dating a late correction.
  [[nodiscard]] bool consume_overrun() noexcept {
    const bool pending = overrun_pending_;
    overrun_pending_ = false;
    return pending;
  }

  /// Called by the QEC layer when an overrun made it skip a decode.
  void note_skipped_decode() noexcept { ++decodes_skipped_; }

  [[nodiscard]] std::size_t slot_overruns() const noexcept {
    return slot_overruns_;
  }
  [[nodiscard]] std::size_t round_overruns() const noexcept {
    return round_overruns_;
  }
  [[nodiscard]] std::size_t total_overruns() const noexcept {
    return slot_overruns_ + round_overruns_;
  }
  [[nodiscard]] std::size_t decodes_skipped() const noexcept {
    return decodes_skipped_;
  }
  [[nodiscard]] double stalled_ns() const noexcept { return stalled_ns_; }

  void save_state(journal::SnapshotWriter& out) const override {
    out.tag("timing-layer");
    out.write_double(elapsed_ns_);
    out.write_size(slots_);
    out.write_double(stalled_ns_);
    out.write_size(slot_overruns_);
    out.write_size(round_overruns_);
    out.write_size(decodes_skipped_);
    lower().save_state(out);
  }
  void load_state(journal::SnapshotReader& in) override {
    in.expect_tag("timing-layer");
    elapsed_ns_ = in.read_double();
    slots_ = in.read_size();
    stalled_ns_ = in.read_double();
    slot_overruns_ = in.read_size();
    round_overruns_ = in.read_size();
    decodes_skipped_ = in.read_size();
    lower().load_state(in);
  }

 private:
  void collect_stall() noexcept {
    if (stall_source_ == nullptr) {
      return;
    }
    const double ns = stall_source_->take_pending_stall_ns();
    if (ns > 0.0) {
      elapsed_ns_ += ns;
      round_ns_ += ns;
      stalled_ns_ += ns;
    }
  }

  GateTimings timings_;
  double elapsed_ns_ = 0.0;
  std::size_t slots_ = 0;

  DeadlineBudget deadline_{};
  ClassicalFaultLayer* stall_source_ = nullptr;  // non-owning
  double round_ns_ = 0.0;
  bool overrun_pending_ = false;
  double stalled_ns_ = 0.0;
  std::size_t slot_overruns_ = 0;
  std::size_t round_overruns_ = 0;
  std::size_t decodes_skipped_ = 0;
};

}  // namespace qpf::arch

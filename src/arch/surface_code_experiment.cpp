#include "arch/surface_code_experiment.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::arch {

using qec::CheckType;
using qec::SurfaceCodePatch;

SurfaceCodeExperiment::SurfaceCodeExperiment(const Config& config)
    : layout_(config.distance),
      rounds_per_window_(config.esm_rounds_per_window != 0
                             ? config.esm_rounds_per_window
                             : static_cast<std::size_t>(config.distance - 1)),
      core_(config.seed),
      patch_(&layout_, 0) {
  if (rounds_per_window_ < 2) {
    throw StackConfigError("SurfaceCodeExperiment", "a window needs at least two ESM rounds");
  }
  error_ = std::make_unique<ErrorLayer>(&core_, config.physical_error_rate,
                                        config.seed ^ 0x9e3779b97f4a7c15ULL);
  counter_below_ = std::make_unique<CounterLayer>(error_.get());
  Core* below = counter_below_.get();
  if (config.with_pauli_frame) {
    frame_ = std::make_unique<PauliFrameLayer>(below);
    below = frame_.get();
  }
  counter_above_ = std::make_unique<CounterLayer>(below);
  top_ = counter_above_.get();
  top_->create_qubits(layout_.num_qubits());
}

void SurfaceCodeExperiment::set_diagnostic_mode(bool on) noexcept {
  error_->set_bypass(on);
  counter_below_->set_bypass(on);
  counter_above_->set_bypass(on);
}

void SurfaceCodeExperiment::run_top(const Circuit& circuit) {
  top_->add(circuit);
  top_->execute();
}

SurfaceCodePatch::Bits SurfaceCodeExperiment::run_esm_round() {
  run_top(layout_.esm_circuit(0));
  const BinaryState state = top_->get_state();
  SurfaceCodePatch::Bits bits(layout_.num_checks(), 0);
  for (std::size_t k = 0; k < layout_.num_checks(); ++k) {
    const Qubit q =
        layout_.ancilla_qubit(0, layout_.checks()[k].ancilla);
    if (state.at(q) == BinaryValue::kUnknown) {
      throw std::logic_error("SurfaceCodeExperiment: ancilla not measured");
    }
    bits[k] = state.at(q) == BinaryValue::kOne ? 1 : 0;
  }
  return bits;
}

void SurfaceCodeExperiment::initialize(CheckType basis) {
  run_top(layout_.reset_circuit(0));
  if (basis == CheckType::kX) {
    run_top(layout_.transversal_h_circuit(0));
  }
  const SurfaceCodePatch::Bits first = run_esm_round();
  const auto gauge = patch_.decode_gauge(
      first, basis == CheckType::kZ ? CheckType::kX : CheckType::kZ);
  if (!gauge.empty()) {
    Circuit fix{"init-corrections"};
    TimeSlot slot;
    for (const Operation& op : gauge) {
      slot.add(op);
    }
    fix.append_slot(std::move(slot));
    run_top(fix);
  }
  run_window();
}

void SurfaceCodeExperiment::run_window() {
  SurfaceCodePatch::Bits r1;
  for (std::size_t round = 0; round + 1 < rounds_per_window_; ++round) {
    r1 = run_esm_round();
  }
  const SurfaceCodePatch::Bits r2 = run_esm_round();
  const auto corrections = patch_.decode_window(r1, r2);
  if (!corrections.empty()) {
    Circuit fix{"window-corrections"};
    TimeSlot slot;
    for (const Operation& op : corrections) {
      slot.add(op);
    }
    fix.append_slot(std::move(slot));
    run_top(fix);
  }
}

bool SurfaceCodeExperiment::has_observable_errors() {
  const SurfaceCodePatch::Bits carried = patch_.carried();
  const SurfaceCodePatch::Bits probe = run_esm_round();
  patch_.set_carried(carried);
  for (std::uint8_t bit : probe) {
    if (bit != 0) {
      return true;
    }
  }
  return false;
}

int SurfaceCodeExperiment::measure_logical_stabilizer(CheckType basis) {
  run_top(layout_.logical_stabilizer_circuit(0, basis));
  const BinaryState state = top_->get_state();
  const Qubit ancilla = layout_.ancilla_qubit(0, 0);
  if (state.at(ancilla) == BinaryValue::kUnknown) {
    throw std::logic_error(
        "SurfaceCodeExperiment: stabilizer ancilla not measured");
  }
  return state.at(ancilla) == BinaryValue::kOne ? -1 : +1;
}

double SurfaceCodeExperiment::gates_saved_fraction() const noexcept {
  const auto above = counter_above_->counters().operations;
  const auto below = counter_below_->counters().operations;
  if (above == 0) {
    return 0.0;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(above);
}

double SurfaceCodeExperiment::slots_saved_fraction() const noexcept {
  const auto above = counter_above_->counters().time_slots;
  const auto below = counter_below_->counters().time_slots;
  if (above == 0) {
    return 0.0;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(above);
}

void SurfaceCodeExperiment::reset_counters() noexcept {
  counter_above_->reset_counters();
  counter_below_->reset_counters();
}

void SurfaceCodeExperiment::save_state(journal::SnapshotWriter& out) const {
  out.tag("surface-code-experiment");
  out.write_u32(static_cast<std::uint32_t>(layout_.distance()));
  out.write_bool(frame_ != nullptr);
  const SurfaceCodePatch::Bits& carried = patch_.carried();
  out.write_size(carried.size());
  for (const std::uint8_t bit : carried) {
    out.write_u8(bit);
  }
  top_->save_state(out);
}

void SurfaceCodeExperiment::load_state(journal::SnapshotReader& in) {
  in.expect_tag("surface-code-experiment");
  const std::uint32_t distance = in.read_u32();
  if (distance != static_cast<std::uint32_t>(layout_.distance())) {
    throw CheckpointError(
        "surface code experiment snapshot: distance differs from the "
        "configured experiment");
  }
  if (in.read_bool() != (frame_ != nullptr)) {
    throw CheckpointError(
        "surface code experiment snapshot: Pauli-frame configuration "
        "differs from the configured experiment");
  }
  const std::size_t carried_size = in.read_size();
  if (carried_size != patch_.carried().size()) {
    throw CheckpointError(
        "surface code experiment snapshot: carried-round size differs "
        "from the configured experiment");
  }
  SurfaceCodePatch::Bits carried;
  carried.reserve(carried_size);
  for (std::size_t i = 0; i < carried_size; ++i) {
    carried.push_back(in.read_u8());
  }
  patch_.set_carried(std::move(carried));
  top_->load_state(in);
}

void SurfaceCodeExperiment::save_checkpoint(const std::string& path) const {
  journal::SnapshotWriter out;
  save_state(out);
  journal::write_checkpoint_file(path, out.bytes());
}

void SurfaceCodeExperiment::load_checkpoint(const std::string& path) {
  journal::SnapshotReader in(journal::read_checkpoint_file(path));
  load_state(in);
  if (!in.exhausted()) {
    throw CheckpointError("surface code experiment checkpoint: trailing "
                          "bytes after the snapshot",
                          path);
  }
}

}  // namespace qpf::arch

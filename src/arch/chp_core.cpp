#include "arch/chp_core.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::arch {

void ChpCore::create_qubits(std::size_t count) {
  if (count == 0) {
    throw StackConfigError("ChpCore", "zero qubits requested");
  }
  binary_.assign(binary_.size() + count, BinaryValue::kUnknown);
  tableau_ = std::make_unique<stab::Tableau>(binary_.size(), seed_);
  // A fresh tableau is |0...0>.
  for (auto& value : binary_) {
    value = BinaryValue::kZero;
  }
  queue_.clear();
}

void ChpCore::remove_qubits() {
  tableau_.reset();
  binary_.clear();
  queue_.clear();
}

void ChpCore::add(const Circuit& circuit) {
  if (circuit.min_register_size() > binary_.size()) {
    throw StackConfigError("ChpCore", "circuit exceeds register");
  }
  queue_.push_back(circuit);
}

void ChpCore::execute() {
  if (tableau_ == nullptr) {
    throw std::logic_error("ChpCore: no qubits allocated");
  }
  std::vector<Circuit> pending;
  pending.swap(queue_);  // cleared even if a gate below throws
  for (const Circuit& circuit : pending) {
    for (const TimeSlot& slot : circuit) {
      for (const Operation& op : slot) {
        switch (category(op.gate())) {
          case GateCategory::kInitialization:
            tableau_->reset(op.qubit(0));
            binary_[op.qubit(0)] = BinaryValue::kZero;
            break;
          case GateCategory::kMeasurement:
            binary_[op.qubit(0)] = tableau_->measure(op.qubit(0)).value
                                       ? BinaryValue::kOne
                                       : BinaryValue::kZero;
            break;
          default:
            tableau_->apply_unitary(op);
            for (int i = 0; i < op.arity(); ++i) {
              if (op.gate() != GateType::kI) {
                binary_[op.qubit(i)] = BinaryValue::kUnknown;
              }
            }
            break;
        }
      }
    }
  }
}

BinaryState ChpCore::get_state() const { return binary_; }

std::optional<sv::StateVector> ChpCore::get_quantum_state() const {
  return std::nullopt;  // stabilizer backends expose no amplitudes
}

void ChpCore::save_state(journal::SnapshotWriter& out) const {
  out.tag("chp-core");
  out.write_u64(seed_);
  out.write_bool(tableau_ != nullptr);
  if (tableau_ != nullptr) {
    tableau_->save(out);
  }
  out.write_size(binary_.size());
  for (const BinaryValue v : binary_) {
    out.write_u8(static_cast<std::uint8_t>(v));
  }
  out.write_size(queue_.size());
  for (const Circuit& circuit : queue_) {
    out.write_circuit(circuit);
  }
}

void ChpCore::load_state(journal::SnapshotReader& in) {
  in.expect_tag("chp-core");
  seed_ = in.read_u64();
  if (in.read_bool()) {
    tableau_ = std::make_unique<stab::Tableau>(stab::Tableau::load(in));
  } else {
    tableau_.reset();
  }
  const std::size_t register_size = in.read_size();
  binary_.clear();
  for (std::size_t i = 0; i < register_size; ++i) {
    const std::uint8_t v = in.read_u8();
    if (v > static_cast<std::uint8_t>(BinaryValue::kUnknown)) {
      throw CheckpointError("chp core snapshot: invalid binary value");
    }
    binary_.push_back(static_cast<BinaryValue>(v));
  }
  const std::size_t queued = in.read_size();
  queue_.clear();
  for (std::size_t i = 0; i < queued; ++i) {
    queue_.push_back(in.read_circuit());
  }
  if (tableau_ != nullptr && tableau_->num_qubits() != binary_.size()) {
    throw CheckpointError("chp core snapshot: register size mismatch");
  }
}

}  // namespace qpf::arch

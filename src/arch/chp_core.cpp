#include "arch/chp_core.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::arch {

void ChpCore::create_qubits(std::size_t count) {
  if (count == 0) {
    throw StackConfigError("ChpCore", "zero qubits requested");
  }
  binary_.assign(binary_.size() + count, BinaryValue::kUnknown);
  tableau_ = std::make_unique<stab::Tableau>(binary_.size(), seed_);
  // A fresh tableau is |0...0>.
  for (auto& value : binary_) {
    value = BinaryValue::kZero;
  }
  queue_.clear();
}

void ChpCore::remove_qubits() {
  tableau_.reset();
  binary_.clear();
  queue_.clear();
}

void ChpCore::add(const Circuit& circuit) {
  if (circuit.min_register_size() > binary_.size()) {
    throw StackConfigError("ChpCore", "circuit exceeds register");
  }
  queue_.push_back(circuit);
}

void ChpCore::execute() {
  if (tableau_ == nullptr) {
    throw std::logic_error("ChpCore: no qubits allocated");
  }
  std::vector<Circuit> pending;
  pending.swap(queue_);  // cleared even if a gate below throws
  for (const Circuit& circuit : pending) {
    for (const TimeSlot& slot : circuit) {
      for (const Operation& op : slot) {
        switch (category(op.gate())) {
          case GateCategory::kInitialization:
            tableau_->reset(op.qubit(0));
            binary_[op.qubit(0)] = BinaryValue::kZero;
            break;
          case GateCategory::kMeasurement:
            binary_[op.qubit(0)] = tableau_->measure(op.qubit(0)).value
                                       ? BinaryValue::kOne
                                       : BinaryValue::kZero;
            break;
          default:
            tableau_->apply_unitary(op);
            for (int i = 0; i < op.arity(); ++i) {
              if (op.gate() != GateType::kI) {
                binary_[op.qubit(i)] = BinaryValue::kUnknown;
              }
            }
            break;
        }
      }
    }
  }
}

BinaryState ChpCore::get_state() const { return binary_; }

std::optional<sv::StateVector> ChpCore::get_quantum_state() const {
  return std::nullopt;  // stabilizer backends expose no amplitudes
}

}  // namespace qpf::arch

#include "arch/testbench.h"

#include <stdexcept>

#include "statevector/simulator.h"

namespace qpf::arch {

TestBench::Report TestBench::run(Core& stack, std::size_t iterations) {
  Report report;
  set_up(stack);
  for (std::size_t i = 0; i < iterations; ++i) {
    ++report.iterations;
    if (iteration(stack)) {
      ++report.passed;
    }
  }
  tear_down(stack, report);
  return report;
}

// --- BellStateHistoTb -------------------------------------------------

void BellStateHistoTb::set_up(Core& stack) {
  histogram_.clear();
  stack.remove_qubits();
  stack.create_qubits(2);
}

bool BellStateHistoTb::iteration(Core& stack) {
  Circuit circuit{"bell"};
  circuit.append(GateType::kPrepZ, 0);
  circuit.append(GateType::kPrepZ, 1);
  circuit.append(GateType::kH, 0);
  circuit.append(GateType::kCnot, 0, 1);
  if (odd_) {
    // Fig 5.6: a trailing X on q0 turns |00>+|11> into |01>+|10>.
    circuit.append(GateType::kX, 0);
  }
  circuit.append(GateType::kMeasureZ, 0);
  circuit.append(GateType::kMeasureZ, 1);
  stack.add(circuit);
  stack.execute();
  const BinaryState state = stack.get_state();
  if (state.size() < 2 || state[0] == BinaryValue::kUnknown ||
      state[1] == BinaryValue::kUnknown) {
    return false;
  }
  // Render |q1 q0> to match the thesis' bitstring convention.
  std::string key{"|"};
  key += to_char(state[1]);
  key += to_char(state[0]);
  key += ">";
  ++histogram_[key];
  // The two qubits must agree (even Bell) or disagree (odd Bell).
  const bool equal = state[0] == state[1];
  return odd_ ? !equal : equal;
}

void BellStateHistoTb::tear_down(Core& stack, Report& report) {
  (void)stack;
  for (const auto& [key, count] : histogram_) {
    report.details += key + ": " + std::to_string(count) + "\n";
  }
}

// --- GateSupportTb ----------------------------------------------------

void GateSupportTb::set_up(Core& stack) {
  reports_.clear();
  stack.remove_qubits();
  stack.create_qubits(2);
}

bool GateSupportTb::iteration(Core& stack) {
  reports_.clear();
  bool all_ok = true;
  for (GateType g : kAllGateTypes) {
    GateReport gate_report;
    gate_report.gate = g;
    // Build a deterministic probe per gate.
    Circuit probe{std::string{name(g)} + "-probe"};
    probe.append(GateType::kPrepZ, 0);
    probe.append(GateType::kPrepZ, 1);
    BinaryValue expect0 = BinaryValue::kZero;
    BinaryValue expect1 = BinaryValue::kZero;
    switch (g) {
      case GateType::kX:
      case GateType::kY:
        probe.append(g, 0);
        expect0 = BinaryValue::kOne;
        break;
      case GateType::kH:
        probe.append(g, 0);
        probe.append(g, 0);  // H H = I keeps the probe deterministic
        break;
      case GateType::kI:
      case GateType::kZ:
      case GateType::kS:
      case GateType::kSdag:
      case GateType::kT:
      case GateType::kTdag:
        probe.append(g, 0);
        break;
      case GateType::kCnot:
        probe.append(GateType::kX, 0);
        probe.append(g, 0, 1);
        expect0 = BinaryValue::kOne;
        expect1 = BinaryValue::kOne;
        break;
      case GateType::kCz:
        probe.append(GateType::kX, 0);
        probe.append(GateType::kX, 1);
        probe.append(g, 0, 1);
        expect0 = BinaryValue::kOne;
        expect1 = BinaryValue::kOne;
        break;
      case GateType::kSwap:
        probe.append(GateType::kX, 0);
        probe.append(g, 0, 1);
        expect1 = BinaryValue::kOne;
        break;
      case GateType::kPrepZ:
        probe.append(GateType::kX, 0);
        probe.append(g, 0);
        break;
      case GateType::kMeasureZ:
        break;  // the trailing measurements below are the probe
    }
    probe.append(GateType::kMeasureZ, 0);
    probe.append(GateType::kMeasureZ, 1);
    try {
      stack.add(probe);
      stack.execute();
      gate_report.supported = true;
      const BinaryState state = stack.get_state();
      gate_report.correct =
          state.size() >= 2 && state[0] == expect0 && state[1] == expect1;
    } catch (const std::exception&) {
      gate_report.supported = false;
      gate_report.correct = false;
    }
    all_ok = all_ok && gate_report.supported && gate_report.correct;
    reports_.push_back(gate_report);
  }
  return all_ok;
}

// --- RandomCircuitTb --------------------------------------------------

void RandomCircuitTb::set_up(Core& stack) { (void)stack; }

bool RandomCircuitTb::iteration(Core& stack) {
  const Circuit circuit = generator_.generate(options_);
  // Reference: plain state-vector execution.
  sv::Simulator reference(options_.num_qubits, reference_seed_);
  reference.execute(circuit);
  // Stack under test, from a fresh register.
  stack.remove_qubits();
  stack.create_qubits(options_.num_qubits);
  stack.add(circuit);
  stack.execute();
  if (flush_) {
    flush_();
  }
  const auto state = stack.get_quantum_state();
  if (!state.has_value()) {
    return false;
  }
  return state->equals_up_to_global_phase(reference.state(), 1e-6);
}

}  // namespace qpf::arch

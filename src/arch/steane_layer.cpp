#include "arch/steane_layer.h"

#include <stdexcept>

#include "circuit/error.h"

namespace qpf::arch {

using qec::CheckType;
using qec::SteaneCode;

void SteaneLayer::create_qubits(std::size_t count) {
  lower().create_qubits(count * SteaneCode::kNumQubits);
  logical_state_.assign(lower().num_qubits() / SteaneCode::kNumQubits,
                        BinaryValue::kUnknown);
}

void SteaneLayer::remove_qubits() {
  lower().remove_qubits();
  logical_state_.clear();
  queue_.clear();
}

void SteaneLayer::add(const Circuit& logical_circuit) {
  if (logical_circuit.min_register_size() > logical_state_.size()) {
    throw StackConfigError("SteaneLayer", "logical qubit out of range");
  }
  queue_.push_back(logical_circuit);
}

void SteaneLayer::execute() {
  std::vector<Circuit> pending;
  pending.swap(queue_);
  for (const Circuit& circuit : pending) {
    for (const TimeSlot& slot : circuit) {
      for (const Operation& op : slot) {
        apply_logical(op);
      }
    }
  }
}

BinaryState SteaneLayer::get_state() const { return logical_state_; }

void SteaneLayer::run_lower(const Circuit& circuit) {
  lower().add(circuit);
  lower().execute();
}

std::pair<unsigned, unsigned> SteaneLayer::run_esm_round(Qubit logical) {
  const Qubit base = base_of(logical);
  run_lower(SteaneCode::esm_circuit(base));
  const BinaryState state = lower().get_state();
  unsigned x_syndrome = 0;
  unsigned z_syndrome = 0;
  for (int i = 0; i < 3; ++i) {
    const Qubit xa = SteaneCode::ancilla_qubit(base, CheckType::kX, i);
    const Qubit za = SteaneCode::ancilla_qubit(base, CheckType::kZ, i);
    if (state.at(xa) == BinaryValue::kUnknown ||
        state.at(za) == BinaryValue::kUnknown) {
      throw std::logic_error("SteaneLayer: ancilla not measured");
    }
    if (state.at(xa) == BinaryValue::kOne) {
      x_syndrome |= 1u << i;
    }
    if (state.at(za) == BinaryValue::kOne) {
      z_syndrome |= 1u << i;
    }
  }
  return {x_syndrome, z_syndrome};
}

void SteaneLayer::run_qec_round(Qubit logical) {
  const auto [x_syndrome, z_syndrome] = run_esm_round(logical);
  const Qubit base = base_of(logical);
  Circuit fix{"steane-corrections"};
  TimeSlot slot;
  // X-check syndrome flags Z errors; Z-check syndrome flags X errors.
  // A coinciding X and Z on one qubit merges into a single Y.
  const int z_fix = SteaneCode::decode(x_syndrome);
  const int x_fix = SteaneCode::decode(z_syndrome);
  if (z_fix >= 0 && z_fix == x_fix) {
    slot.add(Operation{GateType::kY, SteaneCode::data_qubit(base, z_fix)});
  } else {
    if (z_fix >= 0) {
      slot.add(Operation{GateType::kZ, SteaneCode::data_qubit(base, z_fix)});
    }
    if (x_fix >= 0) {
      slot.add(Operation{GateType::kX, SteaneCode::data_qubit(base, x_fix)});
    }
  }
  if (!slot.empty()) {
    fix.append_slot(std::move(slot));
    run_lower(fix);
  }
}

void SteaneLayer::initialize(Qubit logical) {
  run_lower(SteaneCode::reset_circuit(base_of(logical)));
  // The first ESM round projects the X checks into a random gauge; the
  // absolute decode in run_qec_round clears it (single-qubit Z fixes
  // every nonzero Hamming syndrome).
  run_qec_round(logical);
  run_qec_round(logical);
  logical_state_.at(logical) = BinaryValue::kZero;
}

int SteaneLayer::measure_logical(Qubit logical) {
  const Qubit base = base_of(logical);
  run_lower(SteaneCode::measure_circuit(base));
  const BinaryState raw = lower().get_state();
  int sign = +1;
  for (int d = 0; d < static_cast<int>(SteaneCode::kNumData); ++d) {
    const Qubit q = SteaneCode::data_qubit(base, d);
    if (raw.at(q) == BinaryValue::kUnknown) {
      throw std::logic_error("SteaneLayer: data qubit not measured");
    }
    if (raw.at(q) == BinaryValue::kOne) {
      sign = -sign;
    }
  }
  logical_state_.at(logical) =
      sign >= 0 ? BinaryValue::kZero : BinaryValue::kOne;
  return sign;
}

bool SteaneLayer::has_observable_errors(Qubit logical) {
  const auto [x_syndrome, z_syndrome] = run_esm_round(logical);
  return x_syndrome != 0 || z_syndrome != 0;
}

int SteaneLayer::measure_logical_stabilizer(Qubit logical,
                                            CheckType basis) {
  const Qubit base = base_of(logical);
  const Qubit ancilla = SteaneCode::ancilla_qubit(base, CheckType::kX, 0);
  Circuit probe{"steane-logical-stabilizer"};
  probe.append_in_new_slot(Operation{GateType::kPrepZ, ancilla});
  if (basis == CheckType::kZ) {
    for (int d = 0; d < static_cast<int>(SteaneCode::kNumData); ++d) {
      probe.append_in_new_slot(
          Operation{GateType::kCnot, SteaneCode::data_qubit(base, d),
                    ancilla});
    }
  } else {
    probe.append_in_new_slot(Operation{GateType::kH, ancilla});
    for (int d = 0; d < static_cast<int>(SteaneCode::kNumData); ++d) {
      probe.append_in_new_slot(
          Operation{GateType::kCnot, ancilla,
                    SteaneCode::data_qubit(base, d)});
    }
    probe.append_in_new_slot(Operation{GateType::kH, ancilla});
  }
  probe.append_in_new_slot(Operation{GateType::kMeasureZ, ancilla});
  run_lower(probe);
  const BinaryState state = lower().get_state();
  if (state.at(ancilla) == BinaryValue::kUnknown) {
    throw std::logic_error("SteaneLayer: stabilizer ancilla not measured");
  }
  return state.at(ancilla) == BinaryValue::kOne ? -1 : +1;
}

void SteaneLayer::apply_logical(const Operation& op) {
  const Qubit q = op.qubit(0);
  switch (op.gate()) {
    case GateType::kPrepZ:
      initialize(q);
      return;
    case GateType::kMeasureZ:
      (void)measure_logical(q);
      return;
    case GateType::kI:
      run_qec_round(q);
      return;
    case GateType::kX:
      run_lower(SteaneCode::logical_x_circuit(base_of(q)));
      if (logical_state_.at(q) != BinaryValue::kUnknown) {
        logical_state_.at(q) = logical_state_.at(q) == BinaryValue::kZero
                                   ? BinaryValue::kOne
                                   : BinaryValue::kZero;
      }
      return;
    case GateType::kZ:
      run_lower(SteaneCode::logical_z_circuit(base_of(q)));
      return;
    case GateType::kH:
      // Steane is self-dual: transversal H is the logical H.
      run_lower(SteaneCode::logical_h_circuit(base_of(q)));
      logical_state_.at(q) = BinaryValue::kUnknown;
      return;
    case GateType::kCnot: {
      run_lower(SteaneCode::logical_cnot_circuit(base_of(op.control()),
                                                 base_of(op.target())));
      const BinaryValue c = logical_state_.at(op.control());
      BinaryValue& t = logical_state_.at(op.target());
      if (c == BinaryValue::kUnknown) {
        t = BinaryValue::kUnknown;
      } else if (c == BinaryValue::kOne && t != BinaryValue::kUnknown) {
        t = t == BinaryValue::kZero ? BinaryValue::kOne : BinaryValue::kZero;
      }
      return;
    }
    default:
      throw StackConfigError(
          "SteaneLayer", "no fault-tolerant implementation for " + op.str());
  }
}

void SteaneLayer::save_state(journal::SnapshotWriter& out) const {
  out.tag("steane-layer");
  out.write_size(logical_state_.size());
  for (const BinaryValue v : logical_state_) {
    out.write_u8(static_cast<std::uint8_t>(v));
  }
  out.write_size(queue_.size());
  for (const Circuit& circuit : queue_) {
    out.write_circuit(circuit);
  }
  lower().save_state(out);
}

void SteaneLayer::load_state(journal::SnapshotReader& in) {
  in.expect_tag("steane-layer");
  const std::size_t count = in.read_size();
  logical_state_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t v = in.read_u8();
    if (v > static_cast<std::uint8_t>(BinaryValue::kUnknown)) {
      throw CheckpointError("steane layer snapshot: invalid logical value");
    }
    logical_state_.push_back(static_cast<BinaryValue>(v));
  }
  const std::size_t queued = in.read_size();
  queue_.clear();
  for (std::size_t i = 0; i < queued; ++i) {
    queue_.push_back(in.read_circuit());
  }
  lower().load_state(in);
}

}  // namespace qpf::arch

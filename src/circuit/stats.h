// Circuit gate-mix statistics (used by the §3.3 Pauli-fraction study).
#pragma once

#include <cstddef>
#include <string>

#include "circuit/circuit.h"

namespace qpf {

/// Aggregate gate-mix profile of a circuit.
struct GateMix {
  std::size_t total = 0;
  std::size_t pauli = 0;
  std::size_t clifford = 0;      ///< non-Pauli Clifford gates
  std::size_t non_clifford = 0;  ///< T / T† family
  std::size_t preparation = 0;
  std::size_t measurement = 0;
  std::size_t time_slots = 0;

  /// Fraction of gates a Pauli frame can absorb entirely (Pauli gates).
  [[nodiscard]] double pauli_fraction() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(pauli) /
                                  static_cast<double>(total);
  }
  /// Fraction of gates that force a Pauli-record flush.
  [[nodiscard]] double non_clifford_fraction() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(non_clifford) /
                                  static_cast<double>(total);
  }
};

/// Compute the gate mix of a circuit.
[[nodiscard]] GateMix analyze(const Circuit& circuit) noexcept;

/// One-line human-readable rendering of a gate mix.
[[nodiscard]] std::string to_string(const GateMix& mix);

}  // namespace qpf

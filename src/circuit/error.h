// Typed error hierarchy for the whole control stack.
//
// Every deliberate failure in the library is reported as a qpf::Error
// (or a subclass) so callers — the CLI runner in particular — can catch
// one type, render the attached context (component name, time-slot
// index, source line/column), and exit cleanly.  The base derives from
// std::runtime_error, so legacy call sites catching the standard type
// keep working.
//
// Subclasses map to the three failure domains of the stack:
//   QasmParseError      — malformed program text (QASM / CHP dialects),
//   StackConfigError    — a layer, core, or model rejected its inputs,
//   QcuError            — QISA assembly / Quantum Control Unit faults,
//   CheckpointError     — snapshot / checkpoint / journal persistence
//                         faults (corruption, version skew, unsupported
//                         stack elements),
//   TransientFaultError — an injected (or detected) transient classical
//                         control-path fault: the operation can be
//                         retried, the machine state may need restoring,
//   SupervisionError    — the supervision layer exhausted its recovery
//                         budget; carries the full incident record,
//   IoError             — an ordinary I/O path failed (a broken stdout
//                         pipe, a socket write); distinct from
//                         CheckpointError so callers can tell "my report
//                         never reached the reader" from "durable state
//                         is at risk",
//   ProtocolError       — a wire-protocol frame was malformed (bad
//                         magic, CRC mismatch, oversized, truncated,
//                         unknown type/version); carries the byte
//                         offset where the stream went bad.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace qpf {

/// Where an error happened, for diagnostics.  Fields are optional; only
/// populated ones are rendered into what().
struct ErrorContext {
  std::string component;              ///< layer / module / parser name
  std::optional<std::size_t> slot;    ///< time-slot index in the stream
  std::optional<std::size_t> line;    ///< 1-based source line (text formats)
  std::optional<std::size_t> column;  ///< 1-based source column
};

/// Base of the hierarchy.  what() renders "component: message (line N,
/// column C / slot S)" with absent context fields omitted.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message, ErrorContext context = {});

  /// The raw message, without the rendered context.
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] const ErrorContext& context() const noexcept {
    return context_;
  }

 private:
  std::string message_;
  ErrorContext context_;
};

/// Malformed program text (QASM, CHP, or logical-QASM input).
class QasmParseError : public Error {
 public:
  QasmParseError(const std::string& message, std::size_t line,
                 std::optional<std::size_t> column = std::nullopt);
};

/// A layer, core, noise model, or stack configuration rejected its
/// inputs (bad rates, register mismatches, null wiring, ...).
class StackConfigError : public Error {
 public:
  StackConfigError(const std::string& component, const std::string& message);
};

/// QISA assembly, symbol-table, or Quantum Control Unit failure.
class QcuError : public Error {
 public:
  QcuError(const std::string& component, const std::string& message,
           std::optional<std::size_t> line = std::nullopt);
};

/// Snapshot / checkpoint persistence failure: a corrupted or truncated
/// checkpoint file (CRC mismatch), a format-version skew, a snapshot
/// type mismatch while restoring, or an element that cannot snapshot.
/// `path` is the file involved, when the failure is file-level (empty
/// for in-memory serialization faults).
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& message,
                           const std::string& path = {});

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// A transient classical control-path fault — injected by the chaos
/// schedule of ClassicalFaultLayer or detected by a self-check.  The
/// defining property is that the *operation* failed, not the request:
/// a supervisor may retry it, possibly after restoring the machine
/// state below the fault point from a snapshot.
class TransientFaultError : public Error {
 public:
  TransientFaultError(const std::string& component, const std::string& message,
                      std::optional<std::size_t> slot = std::nullopt);
};

/// An ordinary (non-checkpoint) I/O failure: a broken stdout pipe while
/// rendering a report, a socket that went away mid-write.  `target` is
/// the stream or peer involved.
class IoError : public Error {
 public:
  IoError(const std::string& target, const std::string& message);
};

/// A malformed wire-protocol frame: bad magic, frame CRC mismatch,
/// oversized or truncated frame, unknown message type, or an
/// unsupported protocol version.  `offset` is the connection-stream
/// byte offset where the violation was detected, when known.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& message,
                         std::optional<std::size_t> offset = std::nullopt);

  [[nodiscard]] const std::optional<std::size_t>& offset() const noexcept {
    return offset_;
  }

 private:
  std::optional<std::size_t> offset_;
};

/// The supervision layer exhausted its recovery budget (retries, then
/// degraded episodes) and is escalating to the operator.  Carries the
/// rendered incident record — one line per fault episode with attempts,
/// backoff, and outcome — so the escalation is auditable after the
/// process exits.
class SupervisionError : public Error {
 public:
  SupervisionError(const std::string& message, std::string incident_report,
                   std::size_t episodes);

  /// Human-readable incident log accumulated by the supervisor.
  [[nodiscard]] const std::string& incident_report() const noexcept {
    return incident_report_;
  }
  /// Number of fault episodes (degrade events) before escalation.
  [[nodiscard]] std::size_t episodes() const noexcept { return episodes_; }

 private:
  std::string incident_report_;
  std::size_t episodes_;
};

}  // namespace qpf

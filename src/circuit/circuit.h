// Quantum circuits built from time slots (paper Fig 4.4).
//
// A circuit is an ordered list of time slots.  Within one time slot every
// qubit participates in at most one operation, so a slot models one
// machine cycle in which all its operations execute in parallel; every
// operation is assumed to take the same amount of time (thesis §4.2.2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/operation.h"

namespace qpf {

/// One parallel layer of operations.  Invariant: no qubit appears twice.
class TimeSlot {
 public:
  TimeSlot() = default;

  /// Add an operation; throws std::invalid_argument if it conflicts with
  /// an operation already in this slot (shared qubit).
  void add(const Operation& op);

  /// True if op shares a qubit with any operation already in the slot.
  [[nodiscard]] bool conflicts(const Operation& op) const noexcept;

  /// True if any operation in the slot acts on q.
  [[nodiscard]] bool touches(Qubit q) const noexcept;

  [[nodiscard]] const std::vector<Operation>& operations() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return ops_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ops_.end(); }

 private:
  std::vector<Operation> ops_;
};

/// An ordered sequence of time slots.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  /// Greedy ASAP scheduling: place op in the last slot when possible,
  /// otherwise open a new slot.  Measurement and preparation schedule
  /// like any other operation.
  void append(const Operation& op);
  void append(GateType g, Qubit q) { append(Operation{g, q}); }
  void append(GateType g, Qubit control, Qubit target) {
    append(Operation{g, control, target});
  }

  /// Force op into a fresh time slot (sequential semantics).
  void append_in_new_slot(const Operation& op);

  /// Append a pre-built slot verbatim (empty slots are dropped).
  void append_slot(TimeSlot slot);

  /// Concatenate another circuit slot-by-slot (no re-packing).
  void append_circuit(const Circuit& other);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] const std::vector<TimeSlot>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t num_slots() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t num_operations() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  /// Count of operations with the given gate type.
  [[nodiscard]] std::size_t count(GateType g) const noexcept;
  /// Count of operations in the given Pauli-frame category.
  [[nodiscard]] std::size_t count(GateCategory c) const noexcept;

  /// Smallest register size able to run this circuit (max index + 1);
  /// 0 for an empty circuit.
  [[nodiscard]] std::size_t min_register_size() const noexcept;

  /// Multi-line "slot k: op; op; ..." rendering.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] auto begin() const noexcept { return slots_.begin(); }
  [[nodiscard]] auto end() const noexcept { return slots_.end(); }

  [[nodiscard]] bool operator==(const Circuit& other) const noexcept;

 private:
  std::string name_;
  std::vector<TimeSlot> slots_;
};

}  // namespace qpf

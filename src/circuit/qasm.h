// Minimal QASM-dialect serialization for circuits.
//
// The paper's QPDO talks to the QX Simulator and CHP through QASM-like
// text (thesis §4.1).  This module provides the equivalent textual
// interface: a circuit can be dumped to and parsed from a simple line
// format.  Slot boundaries are preserved with "|" separator lines so a
// round trip is exact.
//
// Format:
//   # comment
//   qubits 17        (optional header)
//   h q0
//   cnot q0,q1
//   |                (explicit time-slot boundary)
//   measure q3
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace qpf {

/// Render a circuit in the QASM dialect described above.
[[nodiscard]] std::string to_qasm(const Circuit& circuit);

/// Parse the QASM dialect.  Throws QasmParseError (see circuit/error.h)
/// carrying line and column on malformed input.  Unknown mnemonics,
/// trailing tokens, and qubit indices outside a declared "qubits N"
/// register are errors.
[[nodiscard]] Circuit from_qasm(const std::string& text);

/// Stream variants.
void write_qasm(std::ostream& os, const Circuit& circuit);
[[nodiscard]] Circuit read_qasm(std::istream& is);

}  // namespace qpf

#include "circuit/circuit.h"

#include <algorithm>
#include <stdexcept>

namespace qpf {

void TimeSlot::add(const Operation& op) {
  if (conflicts(op)) {
    throw std::invalid_argument("time-slot conflict: qubit already busy");
  }
  ops_.push_back(op);
}

bool TimeSlot::conflicts(const Operation& op) const noexcept {
  if (touches(op.qubit(0))) {
    return true;
  }
  return op.arity() == 2 && touches(op.qubit(1));
}

bool TimeSlot::touches(Qubit q) const noexcept {
  return std::any_of(ops_.begin(), ops_.end(),
                     [q](const Operation& op) { return op.touches(q); });
}

void Circuit::append(const Operation& op) {
  if (slots_.empty() || slots_.back().conflicts(op)) {
    slots_.emplace_back();
  }
  slots_.back().add(op);
}

void Circuit::append_in_new_slot(const Operation& op) {
  slots_.emplace_back();
  slots_.back().add(op);
}

void Circuit::append_slot(TimeSlot slot) {
  if (!slot.empty()) {
    slots_.push_back(std::move(slot));
  }
}

void Circuit::append_circuit(const Circuit& other) {
  for (const TimeSlot& slot : other.slots_) {
    append_slot(slot);
  }
}

std::size_t Circuit::num_operations() const noexcept {
  std::size_t n = 0;
  for (const TimeSlot& slot : slots_) {
    n += slot.size();
  }
  return n;
}

std::size_t Circuit::count(GateType g) const noexcept {
  std::size_t n = 0;
  for (const TimeSlot& slot : slots_) {
    for (const Operation& op : slot) {
      n += op.gate() == g ? 1 : 0;
    }
  }
  return n;
}

std::size_t Circuit::count(GateCategory c) const noexcept {
  std::size_t n = 0;
  for (const TimeSlot& slot : slots_) {
    for (const Operation& op : slot) {
      n += category(op.gate()) == c ? 1 : 0;
    }
  }
  return n;
}

std::size_t Circuit::min_register_size() const noexcept {
  std::size_t size = 0;
  for (const TimeSlot& slot : slots_) {
    for (const Operation& op : slot) {
      size = std::max<std::size_t>(size, op.max_qubit() + 1);
    }
  }
  return size;
}

std::string Circuit::str() const {
  std::string out;
  if (!name_.empty()) {
    out += "circuit ";
    out += name_;
    out += '\n';
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out += "slot ";
    out += std::to_string(i);
    out += ':';
    for (const Operation& op : slots_[i]) {
      out += ' ';
      out += op.str();
      out += ';';
    }
    out += '\n';
  }
  return out;
}

bool Circuit::operator==(const Circuit& other) const noexcept {
  if (slots_.size() != other.slots_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].operations() != other.slots_[i].operations()) {
      return false;
    }
  }
  return true;
}

}  // namespace qpf

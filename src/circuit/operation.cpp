#include "circuit/operation.h"

namespace qpf {

std::string Operation::str() const {
  std::string out{name(gate_)};
  out += " q";
  out += std::to_string(q0_);
  if (arity() == 2) {
    out += ",q";
    out += std::to_string(q1_);
  }
  return out;
}

}  // namespace qpf

// Gate taxonomy for the QPF circuit IR.
//
// The gate set mirrors the one used by the paper's QPDO framework
// (thesis §5.2.1): {I, X, Y, Z, H, S, S†, T, T†, CNOT, CZ, SWAP} plus
// computational-basis preparation and measurement.  Every gate is
// classified into one of the Pauli-frame processing categories of
// Table 3.1 / Table 5.7: initialization, measurement, Pauli, Clifford,
// or non-Clifford.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace qpf {

/// Every operation the circuit IR can express.
enum class GateType : std::uint8_t {
  kI,       ///< explicit identity / idle slot (an error location!)
  kX,       ///< Pauli-X
  kY,       ///< Pauli-Y
  kZ,       ///< Pauli-Z
  kH,       ///< Hadamard
  kS,       ///< phase gate, RZ(pi/2)
  kSdag,    ///< inverse phase gate
  kT,       ///< RZ(pi/4), non-Clifford
  kTdag,    ///< RZ(-pi/4), non-Clifford
  kCnot,    ///< controlled-X (two-qubit)
  kCz,      ///< controlled-Z (two-qubit)
  kSwap,    ///< SWAP (two-qubit)
  kPrepZ,   ///< reset / initialize to |0>
  kMeasureZ ///< computational-basis measurement
};

/// Pauli-frame processing category (paper Table 3.1).
enum class GateCategory : std::uint8_t {
  kInitialization,
  kMeasurement,
  kPauli,
  kClifford,
  kNonClifford,
};

/// Number of qubit operands (1 or 2) a gate type takes.
[[nodiscard]] constexpr int arity(GateType g) noexcept {
  switch (g) {
    case GateType::kCnot:
    case GateType::kCz:
    case GateType::kSwap:
      return 2;
    default:
      return 1;
  }
}

/// Pauli-frame processing category of a gate (Table 3.1 / 5.7).
[[nodiscard]] constexpr GateCategory category(GateType g) noexcept {
  switch (g) {
    case GateType::kPrepZ:
      return GateCategory::kInitialization;
    case GateType::kMeasureZ:
      return GateCategory::kMeasurement;
    case GateType::kI:
    case GateType::kX:
    case GateType::kY:
    case GateType::kZ:
      return GateCategory::kPauli;
    case GateType::kH:
    case GateType::kS:
    case GateType::kSdag:
    case GateType::kCnot:
    case GateType::kCz:
    case GateType::kSwap:
      return GateCategory::kClifford;
    case GateType::kT:
    case GateType::kTdag:
      return GateCategory::kNonClifford;
  }
  return GateCategory::kNonClifford;  // unreachable
}

/// True for the four single-qubit Pauli gates (incl. identity).
[[nodiscard]] constexpr bool is_pauli(GateType g) noexcept {
  return category(g) == GateCategory::kPauli;
}

/// True for gates in the Clifford group (Paulis are Cliffords too).
[[nodiscard]] constexpr bool is_clifford(GateType g) noexcept {
  const auto c = category(g);
  return c == GateCategory::kPauli || c == GateCategory::kClifford;
}

/// True for gates outside the Clifford group (require a PF flush).
[[nodiscard]] constexpr bool is_non_clifford(GateType g) noexcept {
  return category(g) == GateCategory::kNonClifford;
}

/// True for unitary gates (everything except prep and measure).
[[nodiscard]] constexpr bool is_unitary(GateType g) noexcept {
  return g != GateType::kPrepZ && g != GateType::kMeasureZ;
}

/// Inverse of a unitary gate; nullopt for prep/measure.
[[nodiscard]] constexpr std::optional<GateType> inverse(GateType g) noexcept {
  switch (g) {
    case GateType::kS:
      return GateType::kSdag;
    case GateType::kSdag:
      return GateType::kS;
    case GateType::kT:
      return GateType::kTdag;
    case GateType::kTdag:
      return GateType::kT;
    case GateType::kPrepZ:
    case GateType::kMeasureZ:
      return std::nullopt;
    default:
      return g;  // self-inverse: I, X, Y, Z, H, CNOT, CZ, SWAP
  }
}

/// Lower-case mnemonic compatible with the paper's QASM dialect.
[[nodiscard]] constexpr std::string_view name(GateType g) noexcept {
  switch (g) {
    case GateType::kI:
      return "i";
    case GateType::kX:
      return "x";
    case GateType::kY:
      return "y";
    case GateType::kZ:
      return "z";
    case GateType::kH:
      return "h";
    case GateType::kS:
      return "s";
    case GateType::kSdag:
      return "sdag";
    case GateType::kT:
      return "t";
    case GateType::kTdag:
      return "tdag";
    case GateType::kCnot:
      return "cnot";
    case GateType::kCz:
      return "cz";
    case GateType::kSwap:
      return "swap";
    case GateType::kPrepZ:
      return "prep_z";
    case GateType::kMeasureZ:
      return "measure";
  }
  return "?";
}

/// Parse a mnemonic produced by name(); nullopt if unknown.
[[nodiscard]] std::optional<GateType> parse_gate(std::string_view mnemonic) noexcept;

/// All gate types, for iteration in tests and sweeps.
inline constexpr GateType kAllGateTypes[] = {
    GateType::kI,    GateType::kX,    GateType::kY,     GateType::kZ,
    GateType::kH,    GateType::kS,    GateType::kSdag,  GateType::kT,
    GateType::kTdag, GateType::kCnot, GateType::kCz,    GateType::kSwap,
    GateType::kPrepZ, GateType::kMeasureZ};

}  // namespace qpf

// Random-circuit generation (thesis §5.2.2, Fig 5.4) and a synthetic
// algorithm corpus used to reproduce the "compiled programs contain up
// to 7 % Pauli gates" observation of §3.3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "circuit/circuit.h"

namespace qpf {

/// Configuration for random circuit generation.
struct RandomCircuitOptions {
  std::size_t num_qubits = 5;
  std::size_t num_gates = 20;
  /// Gate set to draw from; defaults to the thesis set
  /// {I, X, Y, Z, H, S, CNOT, CZ, SWAP, T, T†}.
  std::vector<GateType> gate_set = {
      GateType::kI,  GateType::kX,    GateType::kY,  GateType::kZ,
      GateType::kH,  GateType::kS,    GateType::kCnot, GateType::kCz,
      GateType::kSwap, GateType::kT,  GateType::kTdag};
  /// If true, restrict the draw to Clifford gates only (stabilizer-
  /// simulable circuits).
  bool clifford_only = false;
};

/// Deterministic random circuit generator (seeded).
class RandomCircuitGenerator {
 public:
  explicit RandomCircuitGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Draw one random circuit.  Qubits for each gate are drawn uniformly
  /// without replacement (for two-qubit gates).  Throws
  /// std::invalid_argument for an empty gate set or fewer qubits than the
  /// largest gate arity requires.
  [[nodiscard]] Circuit generate(const RandomCircuitOptions& options);

  /// Underlying engine, exposed so callers can interleave other draws.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return rng_; }

 private:
  std::mt19937_64 rng_;
};

/// Kinds of synthetic "compiled program" in the corpus.
enum class ProgramKind : std::uint8_t {
  kAdder,          ///< ripple-carry-style Toffoli-decomposed adder blocks
  kGrover,         ///< Grover-like diffusion iterations
  kQft,            ///< QFT-like layer structure (T-heavy)
  kErrorInjected,  ///< Clifford body with sprinkled Pauli corrections
};

/// Build a synthetic program of the given kind.  The circuits are not
/// semantically the named algorithms; they reproduce the *gate-mix*
/// profile (Pauli / Clifford / T fractions) of ScaffCC-compiled programs,
/// which is the statistic §3.3 measures.
[[nodiscard]] Circuit make_program(ProgramKind kind, std::size_t num_qubits,
                                   std::size_t scale, std::uint64_t seed);

/// All program kinds, for sweeps.
inline constexpr ProgramKind kAllProgramKinds[] = {
    ProgramKind::kAdder, ProgramKind::kGrover, ProgramKind::kQft,
    ProgramKind::kErrorInjected};

/// Human-readable name of a program kind.
[[nodiscard]] const char* name(ProgramKind kind) noexcept;

}  // namespace qpf

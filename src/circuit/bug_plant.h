// Mutation-testing hooks: a catalogue of deliberately plantable bugs.
//
// The differential fuzzing engine (src/fuzz/, DESIGN.md "Fuzzing
// engine") is itself tested for sensitivity: QPF_PLANT_BUG=<n> (or
// plant::set_for_testing(n) in-process) activates exactly one known
// bug in a hot correctness path — a wrong Table 3.4 row, a skipped
// non-Clifford flush, a dropped tableau sign word, ... — and the
// mutation smoke suite asserts the fuzzer's oracles catch every one
// within a bounded budget.  With no bug planted (the default) every
// hook is a single predicted-not-taken branch on a cached int and the
// behavior is bit-identical to a build without the hooks.
#pragma once

namespace qpf::plant {

/// Number of catalogued bugs; valid plant ids are 1..kCount.
inline constexpr int kCount = 15;

/// The active planted bug: 0 when clean, 1..kCount when planted.
/// Reads QPF_PLANT_BUG from the environment once (first call) unless
/// overridden by set_for_testing().
[[nodiscard]] int active() noexcept;

/// True when bug `n` is the active planted bug.
[[nodiscard]] inline bool bug(int n) noexcept { return active() == n; }

/// In-process override for the mutation smoke suite: n in [1, kCount]
/// plants bug n, 0 forces a clean build, a negative value reverts to
/// the environment variable.
void set_for_testing(int n) noexcept;

/// One-line description of bug `n` ("?" outside [1, kCount]), for the
/// catalogue in TESTING.md and the qpf_fuzz --list-bugs output.
[[nodiscard]] const char* describe(int n) noexcept;

}  // namespace qpf::plant

#include "circuit/stats.h"

#include <cstdio>

namespace qpf {

GateMix analyze(const Circuit& circuit) noexcept {
  GateMix mix;
  mix.time_slots = circuit.num_slots();
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      ++mix.total;
      switch (category(op.gate())) {
        case GateCategory::kPauli:
          ++mix.pauli;
          break;
        case GateCategory::kClifford:
          ++mix.clifford;
          break;
        case GateCategory::kNonClifford:
          ++mix.non_clifford;
          break;
        case GateCategory::kInitialization:
          ++mix.preparation;
          break;
        case GateCategory::kMeasurement:
          ++mix.measurement;
          break;
      }
    }
  }
  return mix;
}

std::string to_string(const GateMix& mix) {
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                "gates=%zu slots=%zu pauli=%zu (%.1f%%) clifford=%zu t=%zu "
                "prep=%zu meas=%zu",
                mix.total, mix.time_slots, mix.pauli,
                100.0 * mix.pauli_fraction(), mix.clifford, mix.non_clifford,
                mix.preparation, mix.measurement);
  return buffer;
}

}  // namespace qpf

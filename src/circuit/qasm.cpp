#include "circuit/qasm.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "circuit/error.h"

namespace qpf {

namespace {

/// One whitespace-delimited token plus its 1-based column in the line.
struct Token {
  std::string text;
  std::size_t column = 0;
};

std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(Token{line.substr(begin, i - begin), begin + 1});
  }
  return tokens;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why,
                       std::optional<std::size_t> column = std::nullopt) {
  throw QasmParseError("qasm: " + why, line_no, column);
}

Qubit parse_qubit(const Token& token, std::size_t line_no,
                  std::size_t declared_qubits) {
  const std::string& text = token.text;
  if (text.size() < 2 || text[0] != 'q') {
    fail(line_no, "expected qubit operand like q3, got '" + text + "'",
         token.column);
  }
  unsigned long value = 0;
  for (std::size_t i = 1; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      fail(line_no, "bad qubit index in '" + text + "'", token.column);
    }
    value = value * 10 + static_cast<unsigned long>(text[i] - '0');
    if (value > 0xFFFFFFFFul) {
      fail(line_no, "qubit index overflows in '" + text + "'", token.column);
    }
  }
  if (declared_qubits != 0 && value >= declared_qubits) {
    fail(line_no,
         "qubit index " + std::to_string(value) +
             " exceeds declared register of " +
             std::to_string(declared_qubits),
         token.column);
  }
  return static_cast<Qubit>(value);
}

}  // namespace

void write_qasm(std::ostream& os, const Circuit& circuit) {
  if (!circuit.name().empty()) {
    os << "# " << circuit.name() << "\n";
  }
  os << "qubits " << circuit.min_register_size() << "\n";
  bool first_slot = true;
  for (const TimeSlot& slot : circuit) {
    if (!first_slot) {
      os << "|\n";
    }
    first_slot = false;
    for (const Operation& op : slot) {
      os << name(op.gate()) << " q" << op.qubit(0);
      if (op.arity() == 2) {
        os << ",q" << op.qubit(1);
      }
      os << "\n";
    }
  }
}

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  write_qasm(os, circuit);
  return os.str();
}

Circuit read_qasm(std::istream& is) {
  Circuit circuit;
  TimeSlot slot;
  std::string line;
  std::size_t line_no = 0;
  bool slot_open = false;
  std::size_t declared_qubits = 0;  // 0 = no "qubits N" header seen
  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<Token> tokens = tokenize(line);
    if (tokens.empty() || tokens[0].text[0] == '#') {
      continue;
    }
    const Token& head = tokens[0];
    if (head.text == "|") {
      if (tokens.size() > 1) {
        fail(line_no, "trailing token after slot boundary",
             tokens[1].column);
      }
      circuit.append_slot(std::move(slot));
      slot = TimeSlot{};
      slot_open = true;  // boundary seen; next ops open a fresh slot
      continue;
    }
    if (head.text == "qubits") {
      if (tokens.size() != 2) {
        fail(line_no, "qubits header needs exactly one count");
      }
      const std::string& count = tokens[1].text;
      unsigned long value = 0;
      for (const char c : count) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          fail(line_no, "bad qubit count '" + count + "'", tokens[1].column);
        }
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 0xFFFFFFFFul) {
          fail(line_no, "qubit count overflows", tokens[1].column);
        }
      }
      if (count.empty() || value == 0) {
        fail(line_no, "qubit count must be positive", tokens[1].column);
      }
      declared_qubits = value;
      continue;
    }
    const auto gate = parse_gate(head.text);
    if (!gate) {
      fail(line_no, "unknown gate '" + head.text + "'", head.column);
    }
    if (tokens.size() < 2) {
      fail(line_no, "missing operands");
    }
    if (tokens.size() > 2) {
      fail(line_no, "trailing token '" + tokens[2].text + "'",
           tokens[2].column);
    }
    const Token& operands = tokens[1];
    const std::size_t comma = operands.text.find(',');
    std::optional<Operation> op;
    if (arity(*gate) == 1) {
      if (comma != std::string::npos) {
        fail(line_no, "single-qubit gate with two operands", operands.column);
      }
      op.emplace(*gate, parse_qubit(operands, line_no, declared_qubits));
    } else {
      if (comma == std::string::npos) {
        fail(line_no, "two-qubit gate needs two operands", operands.column);
      }
      const Token first{operands.text.substr(0, comma), operands.column};
      const Token second{operands.text.substr(comma + 1),
                         operands.column + comma + 1};
      const Qubit c = parse_qubit(first, line_no, declared_qubits);
      const Qubit t = parse_qubit(second, line_no, declared_qubits);
      if (c == t) {
        fail(line_no, "two-qubit gate operands must differ", operands.column);
      }
      op.emplace(*gate, c, t);
    }
    // Greedy scheduling: a conflicting operation opens the next slot
    // implicitly; "|" lines force a boundary explicitly.
    if (slot.conflicts(*op)) {
      circuit.append_slot(std::move(slot));
      slot = TimeSlot{};
    }
    slot.add(*op);
    slot_open = true;
  }
  if (slot_open) {
    circuit.append_slot(std::move(slot));
  }
  return circuit;
}

Circuit from_qasm(const std::string& text) {
  std::istringstream is(text);
  return read_qasm(is);
}

}  // namespace qpf

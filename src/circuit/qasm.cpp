#include "circuit/qasm.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace qpf {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("qasm parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

Qubit parse_qubit(const std::string& token, std::size_t line_no) {
  if (token.size() < 2 || token[0] != 'q') {
    fail(line_no, "expected qubit operand like q3, got '" + token + "'");
  }
  try {
    const unsigned long v = std::stoul(token.substr(1));
    return static_cast<Qubit>(v);
  } catch (const std::exception&) {
    fail(line_no, "bad qubit index in '" + token + "'");
  }
}

}  // namespace

void write_qasm(std::ostream& os, const Circuit& circuit) {
  if (!circuit.name().empty()) {
    os << "# " << circuit.name() << "\n";
  }
  os << "qubits " << circuit.min_register_size() << "\n";
  bool first_slot = true;
  for (const TimeSlot& slot : circuit) {
    if (!first_slot) {
      os << "|\n";
    }
    first_slot = false;
    for (const Operation& op : slot) {
      os << name(op.gate()) << " q" << op.qubit(0);
      if (op.arity() == 2) {
        os << ",q" << op.qubit(1);
      }
      os << "\n";
    }
  }
}

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  write_qasm(os, circuit);
  return os.str();
}

Circuit read_qasm(std::istream& is) {
  Circuit circuit;
  TimeSlot slot;
  std::string line;
  std::size_t line_no = 0;
  bool slot_open = false;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') {
      continue;
    }
    if (text == "|") {
      circuit.append_slot(std::move(slot));
      slot = TimeSlot{};
      slot_open = true;  // boundary seen; next ops open a fresh slot
      continue;
    }
    std::istringstream ls(text);
    std::string mnemonic;
    ls >> mnemonic;
    if (mnemonic == "qubits") {
      continue;  // header, size is recomputed from operations
    }
    const auto gate = parse_gate(mnemonic);
    if (!gate) {
      fail(line_no, "unknown gate '" + mnemonic + "'");
    }
    std::string operands;
    ls >> operands;
    if (operands.empty()) {
      fail(line_no, "missing operands");
    }
    const std::size_t comma = operands.find(',');
    std::optional<Operation> op;
    if (arity(*gate) == 1) {
      if (comma != std::string::npos) {
        fail(line_no, "single-qubit gate with two operands");
      }
      op.emplace(*gate, parse_qubit(operands, line_no));
    } else {
      if (comma == std::string::npos) {
        fail(line_no, "two-qubit gate needs two operands");
      }
      const Qubit c = parse_qubit(operands.substr(0, comma), line_no);
      const Qubit t = parse_qubit(operands.substr(comma + 1), line_no);
      op.emplace(*gate, c, t);
    }
    // Greedy scheduling: a conflicting operation opens the next slot
    // implicitly; "|" lines force a boundary explicitly.
    if (slot.conflicts(*op)) {
      circuit.append_slot(std::move(slot));
      slot = TimeSlot{};
    }
    slot.add(*op);
    slot_open = true;
  }
  if (slot_open) {
    circuit.append_slot(std::move(slot));
  }
  return circuit;
}

Circuit from_qasm(const std::string& text) {
  std::istringstream is(text);
  return read_qasm(is);
}

}  // namespace qpf

// A single quantum operation: a gate applied to one or two qubits.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "circuit/gate.h"

namespace qpf {

/// Index of a physical or virtual qubit inside a circuit / backend.
using Qubit = std::uint32_t;

/// One gate application.  For two-qubit gates, qubit(0) is the control
/// (for CNOT/CZ) or the first operand (for SWAP) and qubit(1) the target.
class Operation {
 public:
  /// Single-qubit operation.  Throws std::invalid_argument on arity mismatch.
  Operation(GateType g, Qubit q) : gate_(g), q0_(q), q1_(q) {
    if (qpf::arity(g) != 1) {
      throw std::invalid_argument("two-qubit gate requires two operands");
    }
  }

  /// Two-qubit operation.  Throws std::invalid_argument on arity mismatch
  /// or if both operands name the same qubit.
  Operation(GateType g, Qubit control, Qubit target)
      : gate_(g), q0_(control), q1_(target) {
    if (qpf::arity(g) != 2) {
      throw std::invalid_argument("single-qubit gate takes one operand");
    }
    if (control == target) {
      throw std::invalid_argument("two-qubit gate operands must differ");
    }
  }

  [[nodiscard]] GateType gate() const noexcept { return gate_; }
  [[nodiscard]] int arity() const noexcept { return qpf::arity(gate_); }

  /// Operand i (0-based); throws std::out_of_range past arity.
  [[nodiscard]] Qubit qubit(int i) const {
    if (i < 0 || i >= arity()) {
      throw std::out_of_range("operand index out of range");
    }
    return i == 0 ? q0_ : q1_;
  }

  [[nodiscard]] Qubit control() const noexcept { return q0_; }
  [[nodiscard]] Qubit target() const noexcept { return q1_; }

  /// True if this operation acts on qubit q.
  [[nodiscard]] bool touches(Qubit q) const noexcept {
    return q0_ == q || (arity() == 2 && q1_ == q);
  }

  /// Largest qubit index used, for sizing registers.
  [[nodiscard]] Qubit max_qubit() const noexcept {
    return arity() == 2 && q1_ > q0_ ? q1_ : q0_;
  }

  [[nodiscard]] bool operator==(const Operation& other) const noexcept {
    return gate_ == other.gate_ && q0_ == other.q0_ &&
           (arity() == 1 || q1_ == other.q1_);
  }

  /// "cnot q0,q4" style rendering for logs and QASM dumps.
  [[nodiscard]] std::string str() const;

 private:
  GateType gate_;
  Qubit q0_;
  Qubit q1_;
};

}  // namespace qpf

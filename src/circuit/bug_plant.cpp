#include "circuit/bug_plant.h"

#include <cstdlib>

namespace qpf::plant {

namespace {

int g_override = -1;  // < 0: defer to the environment

[[nodiscard]] int from_environment() noexcept {
  const char* env = std::getenv("QPF_PLANT_BUG");
  if (env == nullptr) {
    return 0;
  }
  const int n = std::atoi(env);
  return (n >= 1 && n <= kCount) ? n : 0;
}

}  // namespace

int active() noexcept {
  if (g_override >= 0) {
    return g_override;
  }
  static const int env_value = from_environment();
  return env_value;
}

void set_for_testing(int n) noexcept {
  g_override = (n <= kCount) ? n : 0;
}

const char* describe(int n) noexcept {
  switch (n) {
    case 1:
      return "frame-h-row: H conjugation leaves the record unchanged "
             "(Table 3.4 H row dropped)";
    case 2:
      return "frame-s-row: S conjugation keeps Z instead of Z^=X "
             "(Table 3.4 S row wrong)";
    case 3:
      return "frame-cnot-swap: CNOT conjugation swaps control and target "
             "records (Table 3.5 reversed)";
    case 4:
      return "frame-skip-flush: non-Clifford gates pass through without "
             "flushing pending records (Table 3.1 row e skipped)";
    case 5:
      return "frame-reset-keeps-record: preparation forwards without "
             "resetting the record to I (Table 3.1 row a half-applied)";
    case 6:
      return "layer-measure-z-correct: measurement results corrected by the "
             "Z component instead of X (Table 3.2 wrong column)";
    case 7:
      return "tableau-h-sign: the word-parallel H kernel skips the packed "
             "sign-column update";
    case 8:
      return "lut-window-shift: the 3-round decode window compares carried "
             "vs r1 instead of r1 vs r2 (off-by-one round, Fig 5.9)";
    case 9:
      return "supervisor-replay-drop: recovery replay skips the first "
             "pending circuit after a snapshot restore";
    case 10:
      return "frame-snapshot-drop: the frame snapshot serializes qubit 0's "
             "record as I";
    case 11:
      return "arbiter-pauli-forward: the arbiter forwards Pauli gates to "
             "the PEL besides absorbing them (Fig 3.12 route c violated)";
    case 12:
      return "serve-codec-crc-skip: the wire-frame decoder trusts frames "
             "without verifying the body CRC, so bit-flipped bodies are "
             "accepted";
    case 13:
      return "checkpoint-skip-dir-fsync: write_checkpoint_file returns "
             "without fsyncing the parent directory, so a power loss after "
             "rename can roll the checkpoint back";
    case 14:
      return "serve-dedup-skip: the server's per-session idempotency "
             "window (and close tombstones) are silently bypassed, so "
             "retried requests re-execute against the tenant's stack";
    case 15:
      return "executor-commit-reorder: the deterministic executor commits "
             "results in completion-arrival order instead of task-index "
             "order, so parallel output bytes depend on scheduling";
    default:
      return "?";
  }
}

}  // namespace qpf::plant

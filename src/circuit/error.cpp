#include "circuit/error.h"

namespace qpf {

namespace {

std::string render(const std::string& message, const ErrorContext& context) {
  std::string out;
  if (!context.component.empty()) {
    out += context.component;
    out += ": ";
  }
  out += message;
  std::string where;
  if (context.line.has_value()) {
    where += "line " + std::to_string(*context.line);
    if (context.column.has_value()) {
      where += ", column " + std::to_string(*context.column);
    }
  }
  if (context.slot.has_value()) {
    if (!where.empty()) {
      where += ", ";
    }
    where += "slot " + std::to_string(*context.slot);
  }
  if (!where.empty()) {
    out += " (" + where + ")";
  }
  return out;
}

}  // namespace

Error::Error(const std::string& message, ErrorContext context)
    : std::runtime_error(render(message, context)),
      message_(message),
      context_(std::move(context)) {}

QasmParseError::QasmParseError(const std::string& message, std::size_t line,
                               std::optional<std::size_t> column)
    : Error(message, ErrorContext{"parse error", std::nullopt, line, column}) {}

StackConfigError::StackConfigError(const std::string& component,
                                   const std::string& message)
    : Error(message, ErrorContext{component, std::nullopt, std::nullopt,
                                  std::nullopt}) {}

QcuError::QcuError(const std::string& component, const std::string& message,
                   std::optional<std::size_t> line)
    : Error(message, ErrorContext{component, std::nullopt, line,
                                  std::nullopt}) {}

CheckpointError::CheckpointError(const std::string& message,
                                 const std::string& path)
    : Error(path.empty() ? message : message + " [" + path + "]",
            ErrorContext{"checkpoint", std::nullopt, std::nullopt,
                         std::nullopt}),
      path_(path) {}

TransientFaultError::TransientFaultError(const std::string& component,
                                         const std::string& message,
                                         std::optional<std::size_t> slot)
    : Error(message, ErrorContext{component, slot, std::nullopt,
                                  std::nullopt}) {}

IoError::IoError(const std::string& target, const std::string& message)
    : Error(message, ErrorContext{target, std::nullopt, std::nullopt,
                                  std::nullopt}) {}

ProtocolError::ProtocolError(const std::string& message,
                             std::optional<std::size_t> offset)
    : Error(offset.has_value()
                ? message + " at stream offset " + std::to_string(*offset)
                : message,
            ErrorContext{"protocol", std::nullopt, std::nullopt,
                         std::nullopt}),
      offset_(offset) {}

SupervisionError::SupervisionError(const std::string& message,
                                   std::string incident_report,
                                   std::size_t episodes)
    : Error(message + " after " + std::to_string(episodes) +
                " fault episode(s)",
            ErrorContext{"supervisor", std::nullopt, std::nullopt,
                         std::nullopt}),
      incident_report_(std::move(incident_report)),
      episodes_(episodes) {}

}  // namespace qpf

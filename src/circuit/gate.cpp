#include "circuit/gate.h"

#include <array>
#include <utility>

namespace qpf {

std::optional<GateType> parse_gate(std::string_view mnemonic) noexcept {
  for (GateType g : kAllGateTypes) {
    if (name(g) == mnemonic) {
      return g;
    }
  }
  // Accept a few common aliases used by CHP/QX QASM dialects.
  static constexpr std::array<std::pair<std::string_view, GateType>, 6> kAliases{{
      {"id", GateType::kI},
      {"cx", GateType::kCnot},
      {"phase", GateType::kS},
      {"hadamard", GateType::kH},
      {"m", GateType::kMeasureZ},
      {"prepz", GateType::kPrepZ},
  }};
  for (const auto& [alias, g] : kAliases) {
    if (alias == mnemonic) {
      return g;
    }
  }
  return std::nullopt;
}

}  // namespace qpf

#include "circuit/random.h"

#include <algorithm>
#include <stdexcept>

namespace qpf {

Circuit RandomCircuitGenerator::generate(const RandomCircuitOptions& options) {
  std::vector<GateType> gate_set = options.gate_set;
  if (options.clifford_only) {
    std::erase_if(gate_set, [](GateType g) { return !is_clifford(g); });
  }
  if (gate_set.empty()) {
    throw std::invalid_argument("random circuit: empty gate set");
  }
  const bool has_two_qubit = std::any_of(
      gate_set.begin(), gate_set.end(), [](GateType g) { return arity(g) == 2; });
  if (options.num_qubits == 0 || (has_two_qubit && options.num_qubits < 2)) {
    throw std::invalid_argument("random circuit: too few qubits for gate set");
  }

  std::uniform_int_distribution<std::size_t> gate_dist(0, gate_set.size() - 1);
  std::uniform_int_distribution<Qubit> qubit_dist(
      0, static_cast<Qubit>(options.num_qubits - 1));

  Circuit circuit{"random"};
  for (std::size_t i = 0; i < options.num_gates; ++i) {
    const GateType g = gate_set[gate_dist(rng_)];
    const Qubit q0 = qubit_dist(rng_);
    if (arity(g) == 1) {
      circuit.append(g, q0);
    } else {
      Qubit q1 = q0;
      while (q1 == q0) {
        q1 = qubit_dist(rng_);
      }
      circuit.append(g, q0, q1);
    }
  }
  return circuit;
}

namespace {

// Toffoli decomposed into {H, T, T†, CNOT} (standard 7-T decomposition).
void append_toffoli(Circuit& c, Qubit a, Qubit b, Qubit t) {
  c.append(GateType::kH, t);
  c.append(GateType::kCnot, b, t);
  c.append(GateType::kTdag, t);
  c.append(GateType::kCnot, a, t);
  c.append(GateType::kT, t);
  c.append(GateType::kCnot, b, t);
  c.append(GateType::kTdag, t);
  c.append(GateType::kCnot, a, t);
  c.append(GateType::kT, b);
  c.append(GateType::kT, t);
  c.append(GateType::kH, t);
  c.append(GateType::kCnot, a, b);
  c.append(GateType::kT, a);
  c.append(GateType::kTdag, b);
  c.append(GateType::kCnot, a, b);
}

Circuit make_adder(std::size_t n, std::size_t scale) {
  Circuit c{"adder"};
  for (std::size_t round = 0; round < scale; ++round) {
    for (std::size_t i = 0; i + 2 < n; ++i) {
      const auto a = static_cast<Qubit>(i);
      append_toffoli(c, a, a + 1, a + 2);
      c.append(GateType::kCnot, a, a + 1);
      // Occasional compiled-in Pauli fix-ups (uncomputation shortcuts).
      if (i % 4 == 0) {
        c.append(GateType::kX, a);
      }
    }
  }
  return c;
}

Circuit make_grover(std::size_t n, std::size_t scale) {
  Circuit c{"grover"};
  for (std::size_t it = 0; it < scale; ++it) {
    // Oracle: a Toffoli ladder (phase marking).
    for (std::size_t i = 0; i + 2 < n; ++i) {
      const auto a = static_cast<Qubit>(i);
      append_toffoli(c, a, a + 1, a + 2);
    }
    // Diffusion: H X ... multi-controlled-Z ... X H.
    for (Qubit q = 0; q < n; ++q) {
      c.append(GateType::kH, q);
      c.append(GateType::kX, q);
    }
    for (std::size_t i = 0; i + 2 < n; ++i) {
      const auto a = static_cast<Qubit>(i);
      append_toffoli(c, a, a + 1, a + 2);
    }
    for (Qubit q = 0; q < n; ++q) {
      c.append(GateType::kX, q);
      c.append(GateType::kH, q);
    }
  }
  return c;
}

Circuit make_qft(std::size_t n, std::size_t scale) {
  Circuit c{"qft"};
  for (std::size_t round = 0; round < scale; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto qi = static_cast<Qubit>(i);
      c.append(GateType::kH, qi);
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto qj = static_cast<Qubit>(j);
        // Controlled-rotation approximated Clifford+T:
        c.append(GateType::kT, qj);
        c.append(GateType::kCnot, qi, qj);
        c.append(GateType::kTdag, qj);
        c.append(GateType::kCnot, qi, qj);
      }
    }
  }
  return c;
}

Circuit make_error_injected(std::size_t n, std::size_t scale,
                            std::uint64_t seed) {
  // A Clifford body with sprinkled Pauli corrections, mimicking QEC
  // post-processing inserted by a compiler.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Qubit> qubit_dist(0, static_cast<Qubit>(n - 1));
  std::uniform_int_distribution<int> pauli_dist(0, 2);
  Circuit c{"error_injected"};
  for (std::size_t round = 0; round < scale; ++round) {
    for (Qubit q = 0; q < n; ++q) {
      c.append(GateType::kH, q);
      if (q + 1 < n) {
        c.append(GateType::kCnot, q, q + 1);
      }
      c.append(GateType::kS, q);
    }
    // ~7% Pauli corrections relative to the Clifford body above.
    const std::size_t corrections = std::max<std::size_t>(1, n / 5);
    for (std::size_t k = 0; k < corrections; ++k) {
      static constexpr GateType kPaulis[] = {GateType::kX, GateType::kY,
                                             GateType::kZ};
      c.append(kPaulis[pauli_dist(rng)], qubit_dist(rng));
    }
  }
  return c;
}

}  // namespace

Circuit make_program(ProgramKind kind, std::size_t num_qubits,
                     std::size_t scale, std::uint64_t seed) {
  if (num_qubits < 3) {
    throw std::invalid_argument("program corpus requires >= 3 qubits");
  }
  switch (kind) {
    case ProgramKind::kAdder:
      return make_adder(num_qubits, scale);
    case ProgramKind::kGrover:
      return make_grover(num_qubits, scale);
    case ProgramKind::kQft:
      return make_qft(num_qubits, scale);
    case ProgramKind::kErrorInjected:
      return make_error_injected(num_qubits, scale, seed);
  }
  throw std::invalid_argument("unknown program kind");
}

const char* name(ProgramKind kind) noexcept {
  switch (kind) {
    case ProgramKind::kAdder:
      return "adder";
    case ProgramKind::kGrover:
      return "grover";
    case ProgramKind::kQft:
      return "qft";
    case ProgramKind::kErrorInjected:
      return "error_injected";
  }
  return "?";
}

}  // namespace qpf

// FaultFs: the deterministic fault-injecting FileOps backend.
//
// Every durable operation the process performs through qpf::io::ops()
// gets a 1-based ordinal; the plan decides what happens at each one.
// "Durable" operations are the ones whose loss or failure can affect
// on-disk state:
//
//   open-w   open with write intent (O_WRONLY/O_RDWR/O_CREAT/O_TRUNC/
//            O_APPEND)
//   write    write(2) on an fd obtained through the shim
//   fsync    fsync(2) on a shim fd (data files AND directory fds —
//            the post-rename directory fsync is an enumerable op)
//   rename   rename(2)
//   unlink   unlink(2)
//   truncate truncate(2) — the journal's torn-tail repair on reopen
//
// Reads, and any operation on an fd that was NOT opened through the
// shim (sockets, pipes), are "transient": they are passed through in
// every durable-fault mode and are the target of the EINTR /
// partial-transfer mode instead.  This split keeps crash-point
// enumeration deterministic — reactor traffic never shifts the durable
// ordinals.
//
// Modes (QPF_FAULTFS grammar, also buildable in-process via FaultPlan):
//
//   count:<log>         perform everything; append one line
//                       "<ordinal> <kind> <path>" per durable op to
//                       <log> with raw syscalls (crash-proof, append)
//   kill@<K>            _exit(137) immediately BEFORE durable op K
//   kill@<K>:torn=<B>   if op K is a write: write only B bytes, then
//                       _exit(137) — a torn final write
//   fail@<K>            durable op K fails with EIO
//     :errno=<NAME>     ... with ENOSPC / EIO / EINTR / EDQUOT / ENOSPC
//     :short=<B>        if op K is a write: short write of B bytes
//                       (returned as success — callers must loop)
//     :sticky           every durable op AFTER K also fails (simulated
//                       dead disk; pairs with :short to model a torn
//                       write followed by a crash, in-process)
//   enospc-under=<dir>  every durable op touching a path under <dir>
//                       fails with ENOSPC, indefinitely
//   eintr[:seed=<S>][:gap=<G>]
//                       transient ops (reactor read/send/poll/accept)
//                       get a seed-deterministic EINTR roughly every
//                       G-th call, and reads/sends are occasionally cut
//                       short — partial-transfer injection
//
// Thread safety: the ordinal is a single atomic counter and the fd
// registry is mutex-guarded, so the backend is safe to install while
// server executor threads run (and is TSan-clean).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "io/file_ops.h"

namespace qpf::io {

struct FaultPlan {
  enum class Mode {
    kOff,          ///< pass-through (still counts ordinals)
    kCount,        ///< pass-through + durable-op log
    kFailAt,       ///< durable op `at` fails (errno / short write)
    kKillAt,       ///< _exit(137) at durable op `at` (optionally torn)
    kEnospcUnder,  ///< paths under `path_prefix` fail ENOSPC
    kEintr,        ///< EINTR + partial transfers on transient ops
  };

  Mode mode = Mode::kOff;
  std::uint64_t at = 0;           ///< 1-based durable-op ordinal
  int error = 0;                  ///< injected errno (default EIO)
  std::int64_t torn_bytes = -1;   ///< kill/fail: short-write length
  bool sticky = false;            ///< fail: ops > `at` fail too
  std::string path_prefix;        ///< enospc-under subtree
  std::uint64_t seed = 1;         ///< eintr schedule seed
  std::uint32_t gap = 3;          ///< eintr: inject ~every gap-th op
  std::string log_path;           ///< count: durable-op log file
};

class FaultFs final : public FileOps {
 public:
  explicit FaultFs(FaultPlan plan);
  ~FaultFs() override;

  FaultFs(const FaultFs&) = delete;
  FaultFs& operator=(const FaultFs&) = delete;

  /// Parse the QPF_FAULTFS grammar documented above.  On a malformed
  /// spec prints a diagnostic to stderr and _exit(2)s: a typo in a
  /// harness must never silently run un-injected.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Durable operations seen so far (the counting pass's N).
  [[nodiscard]] std::uint64_t durable_ops() const noexcept {
    return counter_.load(std::memory_order_relaxed);
  }

  int open(const char* path, int flags, unsigned mode) noexcept override;
  int rename(const char* from, const char* to) noexcept override;
  int unlink(const char* path) noexcept override;
  int truncate(const char* path, long length) noexcept override;
  ssize_t read(int fd, void* buffer, std::size_t count) noexcept override;
  ssize_t write(int fd, const void* buffer,
                std::size_t count) noexcept override;
  int fsync(int fd) noexcept override;
  int close(int fd) noexcept override;
  ssize_t send(int fd, const void* buffer, std::size_t count,
               int flags) noexcept override;
  int poll(struct pollfd* fds, nfds_t nfds, int timeout) noexcept override;
  int accept(int fd, struct sockaddr* address,
             socklen_t* length) noexcept override;

 private:
  /// Verdict for one durable op, decided under the plan.
  struct Verdict {
    bool fail = false;           ///< return -1 with `error`
    int error = 0;
    std::int64_t torn_bytes = -1;  ///< >= 0: truncate this write
    bool kill_after_torn = false;  ///< _exit(137) after the torn write
  };

  /// Advance the durable ordinal, log in counting mode, kill in kill
  /// mode, and return the fail/short verdict otherwise.  `path` is the
  /// best available name for the log line.
  Verdict arm(const char* kind, const std::string& path) noexcept;

  [[nodiscard]] bool under_prefix(const std::string& path) const noexcept;
  [[nodiscard]] std::string fd_path(int fd) noexcept;
  void log_line(std::uint64_t ordinal, const char* kind,
                const std::string& path) noexcept;

  /// Seed-deterministic draw for the transient (EINTR) schedule.
  [[nodiscard]] std::uint64_t next_draw() noexcept;

  FaultPlan plan_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> eintr_state_;
  std::mutex mutex_;                     // fd registry + log fd
  std::map<int, std::string> fd_paths_;  // fds opened through the shim
  int log_fd_ = -1;
};

/// RAII installer for tests: installs `fs` on construction, restores
/// the previous backend on destruction (exception-safe).
class FaultFsGuard {
 public:
  explicit FaultFsGuard(FaultFs& fs) : previous_(set_backend(&fs)) {}
  ~FaultFsGuard() { set_backend(previous_); }

  FaultFsGuard(const FaultFsGuard&) = delete;
  FaultFsGuard& operator=(const FaultFsGuard&) = delete;

 private:
  FileOps* previous_;
};

}  // namespace qpf::io

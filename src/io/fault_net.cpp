#include "io/fault_net.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

namespace qpf::io {

namespace {

using Mode = NetFaultPlan::Mode;

// A bad spec means the harness is not injecting what the operator
// thinks it is; exiting 2 keeps that from reading as a green run.
[[noreturn]] void die(const std::string& spec, const std::string& why) {
  std::fprintf(stderr, "qpf: malformed QPF_FAULTNET spec '%s': %s\n",
               spec.c_str(), why.c_str());
  ::_exit(2);
}

std::uint64_t parse_u64(const std::string& spec, const std::string& text,
                        const char* what) {
  if (text.empty()) die(spec, std::string(what) + " is empty");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9')
      die(spec, std::string(what) + " '" + text + "' is not a number");
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10)
      die(spec, std::string(what) + " '" + text + "' overflows");
    value = value * 10 + digit;
  }
  return value;
}

std::vector<std::string> split_colon(const std::string& text) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (true) {
    const std::string::size_type pos = text.find(':', start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void sleep_ms(std::uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

NetFaultPlan FaultNet::parse(const std::string& spec) {
  NetFaultPlan plan;
  if (spec.empty()) die(spec, "empty spec");

  if (spec.rfind("count:", 0) == 0) {
    plan.mode = Mode::kCount;
    plan.log_path = spec.substr(6);
    if (plan.log_path.empty()) die(spec, "count mode needs a log path");
    return plan;
  }

  const std::vector<std::string> parts = split_colon(spec);
  const std::string& head = parts.front();
  bool has_at = false;
  if (head.rfind("reset@", 0) == 0) {
    plan.mode = Mode::kResetAt;
    plan.at = parse_u64(spec, head.substr(6), "reset op ordinal");
    has_at = true;
  } else if (head.rfind("blackhole@", 0) == 0) {
    plan.mode = Mode::kBlackholeAt;
    plan.at = parse_u64(spec, head.substr(10), "blackhole op ordinal");
    has_at = true;
  } else if (head.rfind("garble@", 0) == 0) {
    plan.mode = Mode::kGarbleAt;
    plan.at = parse_u64(spec, head.substr(7), "garble op ordinal");
    has_at = true;
  } else if (head == "short-send") {
    plan.mode = Mode::kShortSend;
  } else if (head == "delay") {
    plan.mode = Mode::kDelay;
  } else {
    die(spec, "unknown mode '" + head + "'");
  }
  if (has_at && plan.at == 0)
    die(spec, "op ordinals are 1-based; '@0' would never fire");

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& option = parts[i];
    const std::string::size_type eq = option.find('=');
    if (eq == std::string::npos)
      die(spec, "option '" + option + "' is not key=value");
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    if (key == "seed" &&
        (plan.mode == Mode::kShortSend || plan.mode == Mode::kDelay)) {
      plan.seed = parse_u64(spec, value, "seed");
    } else if (key == "gap" &&
               (plan.mode == Mode::kShortSend || plan.mode == Mode::kDelay)) {
      plan.gap = static_cast<std::uint32_t>(parse_u64(spec, value, "gap"));
      if (plan.gap < 2)
        die(spec, "gap must be >= 2 (gap=1 would starve every retry loop)");
    } else if (key == "ms" && plan.mode == Mode::kDelay) {
      plan.delay_ms = parse_u64(spec, value, "ms");
    } else if (key == "bit" && plan.mode == Mode::kGarbleAt) {
      plan.bit = static_cast<std::uint32_t>(parse_u64(spec, value, "bit"));
    } else {
      die(spec, "option '" + key + "' does not apply to mode '" + head + "'");
    }
  }
  return plan;
}

FaultNet::FaultNet(NetFaultPlan plan) : plan_(std::move(plan)) {
  if (plan_.mode == Mode::kCount) {
    log_fd_ = ::open(plan_.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
    if (log_fd_ < 0) {
      std::fprintf(stderr, "qpf: QPF_FAULTNET count log '%s': %s\n",
                   plan_.log_path.c_str(), std::strerror(errno));
      ::_exit(2);
    }
  }
}

FaultNet::~FaultNet() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

void FaultNet::register_fd(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  Conn conn;
  conn.index = ++next_index_;
  conn.armed = fired_ == 0;
  conn.draw_state = mix64(plan_.seed ^ (conn.index * 0x9e3779b97f4a7c15ULL));
  conns_[fd] = conn;
}

int FaultNet::connect(int fd, const struct sockaddr* address,
                      socklen_t length) noexcept {
  const int rc = FileOps::connect(fd, address, length);
  if (rc == 0) register_fd(fd);
  return rc;
}

int FaultNet::accept(int fd, struct sockaddr* address,
                     socklen_t* length) noexcept {
  const int client = FileOps::accept(fd, address, length);
  if (client >= 0) register_fd(client);
  return client;
}

std::uint64_t FaultNet::next_draw(Conn& conn) {
  conn.draw_state += 0x9e3779b97f4a7c15ULL;
  return mix64(conn.draw_state);
}

void FaultNet::log_line(std::uint64_t conn_index, std::uint64_t ordinal,
                        const char* kind) {
  if (log_fd_ < 0) return;
  char line[96];
  const int n = std::snprintf(line, sizeof line, "%llu %llu %s\n",
                              static_cast<unsigned long long>(conn_index),
                              static_cast<unsigned long long>(ordinal), kind);
  if (n <= 0) return;
  std::size_t done = 0;
  while (done < static_cast<std::size_t>(n)) {
    const ssize_t wrote = ::write(log_fd_, line + done,
                                  static_cast<std::size_t>(n) - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return;
    }
    done += static_cast<std::size_t>(wrote);
  }
}

FaultNet::Decision FaultNet::decide(int fd, const char* kind, bool is_send,
                                    std::size_t count) {
  using Act = Decision::Act;
  Decision decision;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return decision;
  Conn& conn = it->second;
  const std::uint64_t ordinal = ++conn.ordinal;

  if (plan_.mode == Mode::kCount) {
    log_line(conn.index, ordinal, kind);
    return decision;
  }
  if (conn.dead) {
    decision.act = Act::kFail;
    decision.error = ECONNRESET;
    return decision;
  }

  switch (plan_.mode) {
    case Mode::kResetAt:
      if (conn.armed && ordinal >= plan_.at) {
        conn.dead = true;
        ++fired_;
        decision.act = Act::kFail;
        decision.error = ECONNRESET;
      }
      break;
    case Mode::kBlackholeAt:
      if (conn.armed && ordinal >= plan_.at) {
        if (!conn.swallowing) {
          conn.swallowing = true;
          ++fired_;
        }
        if (is_send) decision.act = Act::kSwallow;
      }
      break;
    case Mode::kGarbleAt:
      if (conn.armed && ordinal == plan_.at) {
        ++fired_;
        decision.act = Act::kGarble;
        decision.bit = plan_.bit;
      }
      break;
    case Mode::kShortSend:
      if (is_send && count > 1) {
        const std::uint64_t draw = next_draw(conn);
        if (draw % plan_.gap == 0) {
          decision.act = Act::kShorten;
          decision.shortened =
              1 + static_cast<std::size_t>((draw >> 8) % (count - 1));
        }
      }
      break;
    case Mode::kDelay: {
      const std::uint64_t draw = next_draw(conn);
      if (draw % plan_.gap == 0) decision.stall_ms = plan_.delay_ms;
      break;
    }
    default:
      break;
  }
  return decision;
}

ssize_t FaultNet::read(int fd, void* buffer, std::size_t count) noexcept {
  using Act = Decision::Act;
  const Decision decision = decide(fd, "read", false, count);
  if (decision.stall_ms != 0) sleep_ms(decision.stall_ms);
  switch (decision.act) {
    case Act::kFail:
      errno = decision.error;
      return -1;
    case Act::kGarble: {
      const ssize_t n = FileOps::read(fd, buffer, count);
      if (n > 0) {
        const std::uint64_t bit =
            decision.bit % (static_cast<std::uint64_t>(n) * 8);
        static_cast<unsigned char*>(buffer)[bit / 8] ^=
            static_cast<unsigned char>(1u << (bit % 8));
      }
      return n;
    }
    default:
      return FileOps::read(fd, buffer, count);
  }
}

ssize_t FaultNet::send(int fd, const void* buffer, std::size_t count,
                       int flags) noexcept {
  using Act = Decision::Act;
  const Decision decision = decide(fd, "send", true, count);
  if (decision.stall_ms != 0) sleep_ms(decision.stall_ms);
  switch (decision.act) {
    case Act::kFail:
      errno = decision.error;
      return -1;
    case Act::kSwallow:
      return static_cast<ssize_t>(count);
    case Act::kShorten:
      return FileOps::send(fd, buffer, decision.shortened, flags);
    case Act::kGarble: {
      if (count == 0) return FileOps::send(fd, buffer, count, flags);
      const auto* bytes = static_cast<const unsigned char*>(buffer);
      std::vector<unsigned char> garbled(bytes, bytes + count);
      const std::uint64_t bit =
          decision.bit % (static_cast<std::uint64_t>(count) * 8);
      garbled[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      return FileOps::send(fd, garbled.data(), count, flags);
    }
    default:
      return FileOps::send(fd, buffer, count, flags);
  }
}

int FaultNet::close(int fd) noexcept {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = conns_.find(fd);
    if (it != conns_.end()) {
      const bool swallowing = it->second.swallowing;
      conns_.erase(it);
      if (swallowing) {
        // A blackholed connection must look HALF-OPEN to the peer: a
        // real close() would send a FIN and let the server detach on
        // EOF, which is exactly the clean signal a dead peer never
        // gives.  Leak the descriptor (process lifetime is test-scoped)
        // so the only way the server learns is a lease expiry.
        return 0;
      }
    }
  }
  return FileOps::close(fd);
}

std::uint64_t FaultNet::connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_index_;
}

std::uint64_t FaultNet::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

FaultNetGuard::FaultNetGuard(FaultNet& net) noexcept
    : previous_(set_backend(&net)) {}

FaultNetGuard::~FaultNetGuard() { set_backend(previous_); }

}  // namespace qpf::io

// qpf::io::FaultNet — deterministic network fault injection on the
// FileOps seam.
//
// PR 7's FaultFs made storage faults enumerable; this is the same move
// for the network between tenants and qpf_serve.  Every socket created
// through the seam's connect()/accept() entry points is registered as a
// *connection*, and every read()/send() on a registered fd advances
// that connection's private op ordinal.  Faults fire at ordinals, not
// at wall-clock times or byte offsets, so a schedule is reproducible
// across runs and independent of how the kernel slices the stream:
// "the 7th socket op of connection 3" means the same thing every time.
//
// Spec grammar (QPF_FAULTNET or FaultNet::parse):
//
//   count:<log-path>        count only: append one "<conn> <ordinal>
//                           <kind>" line per socket op to <log-path>,
//                           inject nothing.  The counting pass that
//                           bounds a reset@K sweep.
//   reset@K                 at each armed connection's K-th socket op,
//                           fail with ECONNRESET and keep the
//                           connection dead (every later op fails the
//                           same way) until the fd is closed.
//   short-send[:seed=S][:gap=G]
//                           roughly every G-th send on a connection is
//                           cut short to a seeded 1..count prefix;
//                           callers must loop (write_all / client
//                           send loops).
//   delay[:ms=M][:seed=S][:gap=G]
//                           roughly every G-th socket op first stalls
//                           for M milliseconds (default 5) — the
//                           slow-network / stalled-read mode.
//   blackhole@K             from each armed connection's K-th op on,
//                           sends pretend to succeed but deliver
//                           nothing — the silent half-open failure that
//                           only session leases can detect.
//   garble@K[:bit=B]        flip bit B (mod 8·len) of the buffer of the
//                           K-th socket op — single-bit wire corruption
//                           that the CRC armor must catch.
//
// One-shot modes (reset/blackhole/garble) arm only the connections that
// exist before the first firing: sockets registered afterwards (a
// RetryClient's reconnect) are exempt, so recovery cannot livelock on
// the injector re-killing every replacement connection.
//
// A malformed spec prints a diagnostic and _exit(2)s, exactly like
// QPF_FAULTFS: a harness typo must never degrade into an un-injected
// run that "passes".  File-path ops pass through untouched, so FaultNet
// composes with real durable state (but not with FaultFs in the same
// process — install_faultnet_from_environment refuses that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "io/file_ops.h"

namespace qpf::io {

/// Parsed QPF_FAULTNET schedule.
struct NetFaultPlan {
  enum class Mode {
    kOff,          ///< no spec: everything passes through
    kCount,        ///< log every socket op, inject nothing
    kResetAt,      ///< ECONNRESET at op `at` of each armed connection
    kShortSend,    ///< seeded short sends roughly every `gap` sends
    kDelay,        ///< seeded `delay_ms` stalls roughly every `gap` ops
    kBlackholeAt,  ///< silently swallow sends from op `at` on
    kGarbleAt,     ///< flip `bit` of the op-`at` buffer
  };

  Mode mode = Mode::kOff;
  /// Target op ordinal for the @K modes (1-based, per connection).
  std::uint64_t at = 0;
  /// Bit index for kGarbleAt, taken mod 8·buffer-length at fire time.
  std::uint32_t bit = 0;
  /// Stall length for kDelay.
  std::uint64_t delay_ms = 5;
  /// Seed for the short-send/delay draws.
  std::uint64_t seed = 1;
  /// Roughly one op in `gap` is affected by the seeded modes (>= 2 so
  /// retry loops always see forward progress).
  std::uint32_t gap = 3;
  /// Op log path for kCount.
  std::string log_path;
};

/// The injecting backend.  Thread-safe: the reactor, executor wake
/// pipe, and any number of client threads may race socket ops; the
/// policy decision is taken under an internal mutex but the actual
/// syscall always runs outside it, so an injected stall never blocks
/// an unrelated connection.
class FaultNet final : public FileOps {
 public:
  explicit FaultNet(NetFaultPlan plan);
  ~FaultNet() override;

  FaultNet(const FaultNet&) = delete;
  FaultNet& operator=(const FaultNet&) = delete;

  /// Parse a QPF_FAULTNET spec.  On malformed input prints
  /// "qpf: malformed QPF_FAULTNET spec ..." to stderr and _exit(2)s.
  static NetFaultPlan parse(const std::string& spec);

  // Socket registration points.
  int connect(int fd, const struct sockaddr* address,
              socklen_t length) noexcept override;
  int accept(int fd, struct sockaddr* address,
             socklen_t* length) noexcept override;

  // Faultable socket ops.  Unregistered fds (files, pipes) pass
  // through to the real backend untouched.
  ssize_t read(int fd, void* buffer, std::size_t count) noexcept override;
  ssize_t send(int fd, const void* buffer, std::size_t count,
               int flags) noexcept override;
  int close(int fd) noexcept override;

  /// Connections registered so far (diagnostics).
  [[nodiscard]] std::uint64_t connections() const;
  /// One-shot firings so far (reset/blackhole/garble).
  [[nodiscard]] std::uint64_t fired() const;

 private:
  struct Conn {
    std::uint64_t index = 0;    ///< 1-based registration order
    std::uint64_t ordinal = 0;  ///< socket ops seen on this fd
    std::uint64_t draw_state = 0;
    bool armed = false;  ///< registered before the first one-shot fired
    bool dead = false;   ///< reset fired: ECONNRESET until close
    bool swallowing = false;  ///< blackhole fired: sends vanish
  };

  struct Decision {
    enum class Act { kPass, kFail, kSwallow, kShorten, kGarble };
    Act act = Act::kPass;
    int error = 0;
    std::size_t shortened = 0;
    std::uint32_t bit = 0;
    std::uint64_t stall_ms = 0;
  };

  void register_fd(int fd);
  Decision decide(int fd, const char* kind, bool is_send, std::size_t count);
  std::uint64_t next_draw(Conn& conn);
  void log_line(std::uint64_t conn_index, std::uint64_t ordinal,
                const char* kind);

  NetFaultPlan plan_;
  mutable std::mutex mutex_;
  std::map<int, Conn> conns_;
  std::uint64_t next_index_ = 0;
  std::uint64_t fired_ = 0;
  int log_fd_ = -1;
};

/// RAII installer: constructs nothing itself, installs the given
/// FaultNet as the process backend and restores the previous backend on
/// destruction.
class FaultNetGuard {
 public:
  explicit FaultNetGuard(FaultNet& net) noexcept;
  ~FaultNetGuard();

  FaultNetGuard(const FaultNetGuard&) = delete;
  FaultNetGuard& operator=(const FaultNetGuard&) = delete;

 private:
  FileOps* previous_;
};

}  // namespace qpf::io

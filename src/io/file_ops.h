// qpf::io — the process-wide seam every durable (and reactor) syscall
// goes through.
//
// The paper moves error management into classical control software,
// which makes the classical stack's durability the reliability floor of
// the whole architecture.  PRs 2/4/6 built fsync'd journals, CRC-armored
// checkpoint rotation, and a parking multi-tenant server — but their
// crash-consistency was only provable where a hand-built corruption
// corpus or a bespoke observer hook happened to look.  This seam makes
// it provable everywhere: all file I/O in src/journal/ (RunJournal
// appends, checkpoint write/rename/dir-fsync) and the socket I/O of the
// qpf_serve reactor route through the FileOps backend installed here,
// so a deterministic fault injector (FaultFs, fault_fs.h) can
//
//   * enumerate every durable operation of a scenario (counting mode),
//   * fail exactly operation k with a chosen errno or a short write,
//   * kill the process exactly at operation k — including a torn final
//     write — for ALICE/CrashMonkey-style crash-point enumeration,
//   * starve a directory subtree with sustained ENOSPC,
//   * inject EINTR and partial transfers on the reactor's socket path.
//
// The default backend is the identity: FileOps' virtual methods call
// the real syscalls, return raw results, and set errno exactly like
// the kernel does.  Durability-critical callers keep their own typed
// error mapping (CheckpointError / IoError); this layer never throws.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace qpf::io {

/// Virtual syscall table.  The base class *is* the real backend: every
/// method forwards to the kernel.  FaultFs overrides selected entry
/// points.  All methods follow syscall conventions (-1 + errno on
/// failure) and never throw.
class FileOps {
 public:
  virtual ~FileOps() = default;

  // --- file path ops (durable-state side) ---------------------------
  virtual int open(const char* path, int flags, unsigned mode) noexcept;
  virtual int rename(const char* from, const char* to) noexcept;
  virtual int unlink(const char* path) noexcept;
  virtual int truncate(const char* path, long length) noexcept;

  // --- fd ops --------------------------------------------------------
  virtual ssize_t read(int fd, void* buffer, std::size_t count) noexcept;
  virtual ssize_t write(int fd, const void* buffer,
                        std::size_t count) noexcept;
  virtual int fsync(int fd) noexcept;
  virtual int close(int fd) noexcept;

  // --- reactor ops (sockets / pipes) ---------------------------------
  virtual ssize_t send(int fd, const void* buffer, std::size_t count,
                       int flags) noexcept;
  virtual int poll(struct pollfd* fds, nfds_t nfds, int timeout) noexcept;
  virtual int accept(int fd, struct sockaddr* address,
                     socklen_t* length) noexcept;
  virtual int connect(int fd, const struct sockaddr* address,
                      socklen_t length) noexcept;
};

/// The currently installed backend (the real FileOps unless a test or
/// QPF_FAULTFS installed an injector).  Always valid.
[[nodiscard]] FileOps& ops() noexcept;

/// Install `backend` process-wide and return the previous one; nullptr
/// restores the real backend.  Callers that install a scoped injector
/// must restore the previous backend (see FaultFsGuard in fault_fs.h).
FileOps* set_backend(FileOps* backend) noexcept;

/// Install a FaultFs described by the QPF_FAULTFS environment variable
/// (grammar in fault_fs.h).  Returns true when an injector was
/// installed, false when the variable is unset or empty.  A malformed
/// spec prints a diagnostic and exits 2 — a harness typo must never
/// degrade into an un-injected run that "passes".
bool install_faultfs_from_environment();

/// Install a FaultNet described by the QPF_FAULTNET environment
/// variable (grammar in fault_net.h): deterministic socket-level fault
/// injection — connection resets, partial sends, stalled ops, silent
/// drops, single-bit wire corruption — at per-connection op ordinals.
/// Returns true when an injector was installed, false when the variable
/// is unset or empty.  A malformed spec prints a diagnostic and exits
/// 2, and combining QPF_FAULTFS with QPF_FAULTNET is refused the same
/// way: the two backends would shadow each other silently.
bool install_faultnet_from_environment();

// --- EINTR-safe wrappers ----------------------------------------------
// Every raw ::read/::write/::poll/::accept in the serve layer and the
// CLI tools goes through these, so a stray signal can never surface as
// a spurious IoError or a dropped connection.  Each routes through the
// installed backend (and is therefore injectable) and retries EINTR.

/// read(2), retrying EINTR.  Returns the syscall result otherwise.
ssize_t read_retry(int fd, void* buffer, std::size_t count) noexcept;

/// send(2), retrying EINTR.  Partial sends are returned to the caller
/// (loop or buffer at the call site).
ssize_t send_retry(int fd, const void* buffer, std::size_t count,
                   int flags) noexcept;

/// write(2), retrying EINTR; partial writes are returned.
ssize_t write_retry(int fd, const void* buffer, std::size_t count) noexcept;

/// poll(2), retrying EINTR with the same (coarse housekeeping) timeout.
int poll_retry(struct pollfd* fds, nfds_t nfds, int timeout) noexcept;

/// accept(2), retrying EINTR.
int accept_retry(int fd, struct sockaddr* address,
                 socklen_t* length) noexcept;

/// Write the whole buffer, looping over short writes and EINTR.
/// Returns true on success; on failure errno holds the cause.
bool write_all(int fd, const void* data, std::size_t size) noexcept;

}  // namespace qpf::io

#include "io/fault_fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace qpf::io {

namespace {

using Mode = FaultPlan::Mode;

[[noreturn]] void die(const std::string& spec, const std::string& why) {
  std::fprintf(stderr, "qpf: malformed QPF_FAULTFS spec '%s': %s\n",
               spec.c_str(), why.c_str());
  std::fflush(stderr);
  ::_exit(2);
}

std::uint64_t parse_u64(const std::string& spec, const std::string& text,
                        const std::string& what) {
  if (text.empty()) {
    die(spec, what + " needs a number");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      die(spec, what + " is not a number: '" + text + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

int errno_by_name(const std::string& spec, const std::string& name) {
  if (name == "EIO") return EIO;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EINTR") return EINTR;
  if (name == "EDQUOT") return EDQUOT;
  if (name == "EROFS") return EROFS;
  if (name == "ENOENT") return ENOENT;
  die(spec, "unknown errno name '" + name + "'");
}

std::vector<std::string> split_colon(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep = spec.find(':', start);
    if (sep == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, sep - start));
    start = sep + 1;
  }
}

bool opens_for_write(int flags) noexcept {
  return (flags & (O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND)) != 0;
}

}  // namespace

FaultFs::FaultFs(FaultPlan plan)
    : plan_(std::move(plan)), eintr_state_(plan_.seed) {}

FaultFs::~FaultFs() {
  if (log_fd_ >= 0) {
    ::close(log_fd_);
  }
}

FaultPlan FaultFs::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.rfind("count:", 0) == 0) {
    plan.mode = Mode::kCount;
    plan.log_path = spec.substr(6);
    if (plan.log_path.empty()) {
      die(spec, "count: needs a log path");
    }
    return plan;
  }
  if (spec.rfind("enospc-under=", 0) == 0) {
    plan.mode = Mode::kEnospcUnder;
    plan.path_prefix = spec.substr(std::strlen("enospc-under="));
    if (plan.path_prefix.empty()) {
      die(spec, "enospc-under= needs a directory prefix");
    }
    return plan;
  }

  const std::vector<std::string> parts = split_colon(spec);
  const std::string& head = parts[0];
  if (head.rfind("kill@", 0) == 0) {
    plan.mode = Mode::kKillAt;
    plan.at = parse_u64(spec, head.substr(5), "kill@ ordinal");
  } else if (head.rfind("fail@", 0) == 0) {
    plan.mode = Mode::kFailAt;
    plan.at = parse_u64(spec, head.substr(5), "fail@ ordinal");
    plan.error = EIO;
  } else if (head == "eintr") {
    plan.mode = Mode::kEintr;
  } else {
    die(spec, "unknown mode '" + head + "'");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& option = parts[i];
    if (plan.mode == Mode::kKillAt && option.rfind("torn=", 0) == 0) {
      plan.torn_bytes = static_cast<std::int64_t>(
          parse_u64(spec, option.substr(5), "torn="));
    } else if (plan.mode == Mode::kFailAt && option.rfind("errno=", 0) == 0) {
      plan.error = errno_by_name(spec, option.substr(6));
    } else if (plan.mode == Mode::kFailAt && option.rfind("short=", 0) == 0) {
      plan.torn_bytes = static_cast<std::int64_t>(
          parse_u64(spec, option.substr(6), "short="));
    } else if (plan.mode == Mode::kFailAt && option == "sticky") {
      plan.sticky = true;
    } else if (plan.mode == Mode::kEintr && option.rfind("seed=", 0) == 0) {
      plan.seed = parse_u64(spec, option.substr(5), "seed=");
    } else if (plan.mode == Mode::kEintr && option.rfind("gap=", 0) == 0) {
      plan.gap = static_cast<std::uint32_t>(
          parse_u64(spec, option.substr(4), "gap="));
    } else {
      die(spec, "unknown option '" + option + "' for mode '" + head + "'");
    }
  }

  if ((plan.mode == Mode::kKillAt || plan.mode == Mode::kFailAt) &&
      plan.at == 0) {
    die(spec, "op ordinal must be >= 1");
  }
  if (plan.mode == Mode::kEintr && plan.gap < 2) {
    die(spec, "gap must be >= 2 (gap=1 would starve every retry loop)");
  }
  return plan;
}

// --- durable-op policy -------------------------------------------------

FaultFs::Verdict FaultFs::arm(const char* kind,
                              const std::string& path) noexcept {
  const std::uint64_t ordinal =
      counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  Verdict verdict;
  switch (plan_.mode) {
    case Mode::kOff:
    case Mode::kEintr:
      break;
    case Mode::kCount:
      log_line(ordinal, kind, path);
      break;
    case Mode::kKillAt:
      if (ordinal == plan_.at) {
        if (plan_.torn_bytes >= 0 && std::strcmp(kind, "write") == 0) {
          verdict.torn_bytes = plan_.torn_bytes;
          verdict.kill_after_torn = true;
        } else {
          ::_exit(137);
        }
      }
      break;
    case Mode::kFailAt:
      if (ordinal == plan_.at) {
        if (plan_.torn_bytes >= 0 && std::strcmp(kind, "write") == 0) {
          verdict.torn_bytes = plan_.torn_bytes;
        } else {
          verdict.fail = true;
          verdict.error = plan_.error;
        }
      } else if (plan_.sticky && ordinal > plan_.at) {
        verdict.fail = true;
        verdict.error = plan_.error;
      }
      break;
    case Mode::kEnospcUnder:
      // unlink frees space and truncate only ever shrinks here (torn-
      // tail repair): real filesystems let both succeed on a full disk,
      // and degraded-mode cleanup depends on that.
      if (std::strcmp(kind, "unlink") != 0 &&
          std::strcmp(kind, "truncate") != 0 && under_prefix(path)) {
        verdict.fail = true;
        verdict.error = ENOSPC;
      }
      break;
  }
  return verdict;
}

bool FaultFs::under_prefix(const std::string& path) const noexcept {
  const std::string& prefix = plan_.path_prefix;
  if (prefix.empty() || path.size() < prefix.size() ||
      path.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return path.size() == prefix.size() || prefix.back() == '/' ||
         path[prefix.size()] == '/';
}

std::string FaultFs::fd_path(int fd) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = fd_paths_.find(fd);
  return it != fd_paths_.end() ? it->second : std::string();
}

void FaultFs::log_line(std::uint64_t ordinal, const char* kind,
                       const std::string& path) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (log_fd_ < 0) {
    log_fd_ = ::open(plan_.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
    if (log_fd_ < 0) {
      return;
    }
  }
  // Raw immediate append: the log must survive the scenario crashing at
  // the very next op, so no buffering of any kind.
  std::string line = std::to_string(ordinal);
  line += ' ';
  line += kind;
  line += ' ';
  line += path;
  line += '\n';
  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t n = ::write(log_fd_, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

std::uint64_t FaultFs::next_draw() noexcept {
  std::uint64_t x = eintr_state_.fetch_add(0x9e3779b97f4a7c15ULL,
                                           std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// --- path ops ----------------------------------------------------------

int FaultFs::open(const char* path, int flags, unsigned mode) noexcept {
  if (opens_for_write(flags)) {
    const Verdict verdict = arm("open-w", path);
    if (verdict.fail) {
      errno = verdict.error;
      return -1;
    }
  }
  const int fd = FileOps::open(path, flags, mode);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_[fd] = path;
  }
  return fd;
}

int FaultFs::rename(const char* from, const char* to) noexcept {
  // Policy keys off the destination; the log shows both ends.
  const Verdict verdict =
      arm("rename", std::string(from) + " -> " + to);
  if (!verdict.fail && plan_.mode == Mode::kEnospcUnder &&
      under_prefix(to)) {
    errno = ENOSPC;
    return -1;
  }
  if (verdict.fail) {
    errno = verdict.error;
    return -1;
  }
  return FileOps::rename(from, to);
}

int FaultFs::unlink(const char* path) noexcept {
  const Verdict verdict = arm("unlink", path);
  if (verdict.fail) {
    errno = verdict.error;
    return -1;
  }
  return FileOps::unlink(path);
}

int FaultFs::truncate(const char* path, long length) noexcept {
  const Verdict verdict = arm("truncate", path);
  if (verdict.fail) {
    errno = verdict.error;
    return -1;
  }
  return FileOps::truncate(path, length);
}

// --- fd ops ------------------------------------------------------------

ssize_t FaultFs::read(int fd, void* buffer, std::size_t count) noexcept {
  if (plan_.mode == Mode::kEintr && count > 0 && fd_path(fd).empty()) {
    const std::uint64_t draw = next_draw();
    if (draw % plan_.gap == 0) {
      errno = EINTR;
      return -1;
    }
    if (draw % plan_.gap == 1) {
      // Partial transfer: deliver [1, count] bytes.
      count = 1 + static_cast<std::size_t>((draw >> 8) % count);
    }
  }
  return FileOps::read(fd, buffer, count);
}

ssize_t FaultFs::write(int fd, const void* buffer,
                       std::size_t count) noexcept {
  const std::string path = fd_path(fd);
  if (path.empty()) {
    return FileOps::write(fd, buffer, count);  // transient: pipes
  }
  const Verdict verdict = arm("write", path);
  if (verdict.fail) {
    errno = verdict.error;
    return -1;
  }
  if (verdict.torn_bytes >= 0) {
    const std::size_t torn = std::min(
        count, static_cast<std::size_t>(verdict.torn_bytes));
    const ssize_t n = torn > 0 ? FileOps::write(fd, buffer, torn) : 0;
    if (verdict.kill_after_torn) {
      ::_exit(137);
    }
    return n;  // short write, reported as success: callers must loop
  }
  return FileOps::write(fd, buffer, count);
}

int FaultFs::fsync(int fd) noexcept {
  const std::string path = fd_path(fd);
  if (path.empty()) {
    return FileOps::fsync(fd);
  }
  const Verdict verdict = arm("fsync", path);
  if (verdict.fail) {
    errno = verdict.error;
    return -1;
  }
  return FileOps::fsync(fd);
}

int FaultFs::close(int fd) noexcept {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_.erase(fd);
  }
  return FileOps::close(fd);
}

// --- reactor ops -------------------------------------------------------

ssize_t FaultFs::send(int fd, const void* buffer, std::size_t count,
                      int flags) noexcept {
  if (plan_.mode == Mode::kEintr && count > 0) {
    const std::uint64_t draw = next_draw();
    if (draw % plan_.gap == 0) {
      errno = EINTR;
      return -1;
    }
    if (draw % plan_.gap == 1) {
      count = 1 + static_cast<std::size_t>((draw >> 8) % count);
    }
  }
  return FileOps::send(fd, buffer, count, flags);
}

int FaultFs::poll(struct pollfd* fds, nfds_t nfds, int timeout) noexcept {
  if (plan_.mode == Mode::kEintr) {
    const std::uint64_t draw = next_draw();
    if (draw % plan_.gap == 0) {
      errno = EINTR;
      return -1;
    }
  }
  return FileOps::poll(fds, nfds, timeout);
}

int FaultFs::accept(int fd, struct sockaddr* address,
                    socklen_t* length) noexcept {
  if (plan_.mode == Mode::kEintr) {
    const std::uint64_t draw = next_draw();
    if (draw % plan_.gap == 0) {
      errno = EINTR;
      return -1;
    }
  }
  return FileOps::accept(fd, address, length);
}

}  // namespace qpf::io

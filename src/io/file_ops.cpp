#include "io/file_ops.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/fault_fs.h"
#include "io/fault_net.h"

namespace qpf::io {

int FileOps::open(const char* path, int flags, unsigned mode) noexcept {
  return ::open(path, flags, static_cast<mode_t>(mode));
}

int FileOps::rename(const char* from, const char* to) noexcept {
  return ::rename(from, to);
}

int FileOps::unlink(const char* path) noexcept { return ::unlink(path); }

int FileOps::truncate(const char* path, long length) noexcept {
  return ::truncate(path, static_cast<off_t>(length));
}

ssize_t FileOps::read(int fd, void* buffer, std::size_t count) noexcept {
  return ::read(fd, buffer, count);
}

ssize_t FileOps::write(int fd, const void* buffer,
                       std::size_t count) noexcept {
  return ::write(fd, buffer, count);
}

int FileOps::fsync(int fd) noexcept { return ::fsync(fd); }

int FileOps::close(int fd) noexcept { return ::close(fd); }

ssize_t FileOps::send(int fd, const void* buffer, std::size_t count,
                      int flags) noexcept {
  return ::send(fd, buffer, count, flags);
}

int FileOps::poll(struct pollfd* fds, nfds_t nfds, int timeout) noexcept {
  return ::poll(fds, nfds, timeout);
}

int FileOps::accept(int fd, struct sockaddr* address,
                    socklen_t* length) noexcept {
  return ::accept(fd, address, length);
}

int FileOps::connect(int fd, const struct sockaddr* address,
                     socklen_t length) noexcept {
  return ::connect(fd, address, length);
}

namespace {

FileOps& real_backend() noexcept {
  static FileOps real;
  return real;
}

std::atomic<FileOps*> g_backend{nullptr};

}  // namespace

FileOps& ops() noexcept {
  FileOps* backend = g_backend.load(std::memory_order_acquire);
  return backend != nullptr ? *backend : real_backend();
}

FileOps* set_backend(FileOps* backend) noexcept {
  return g_backend.exchange(backend, std::memory_order_acq_rel);
}

bool install_faultfs_from_environment() {
  const char* spec = std::getenv("QPF_FAULTFS");
  if (spec == nullptr || spec[0] == '\0') {
    return false;
  }
  // Deliberately leaked: the injector must outlive every I/O call in
  // the process, including static destructors that flush state.
  auto* fs = new FaultFs(FaultFs::parse(spec));
  set_backend(fs);
  return true;
}

bool install_faultnet_from_environment() {
  const char* spec = std::getenv("QPF_FAULTNET");
  if (spec == nullptr || spec[0] == '\0') {
    return false;
  }
  if (const char* fs = std::getenv("QPF_FAULTFS");
      fs != nullptr && fs[0] != '\0') {
    std::fprintf(stderr,
                 "qpf: QPF_FAULTFS and QPF_FAULTNET are mutually exclusive: "
                 "only one backend can be installed per process\n");
    ::_exit(2);
  }
  // Deliberately leaked, like the FaultFs path: the injector must
  // outlive every socket call in the process.
  auto* net = new FaultNet(FaultNet::parse(spec));
  set_backend(net);
  return true;
}

// --- EINTR-safe wrappers ----------------------------------------------

ssize_t read_retry(int fd, void* buffer, std::size_t count) noexcept {
  for (;;) {
    const ssize_t n = ops().read(fd, buffer, count);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

ssize_t send_retry(int fd, const void* buffer, std::size_t count,
                   int flags) noexcept {
  for (;;) {
    const ssize_t n = ops().send(fd, buffer, count, flags);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

ssize_t write_retry(int fd, const void* buffer, std::size_t count) noexcept {
  for (;;) {
    const ssize_t n = ops().write(fd, buffer, count);
    if (n >= 0 || errno != EINTR) {
      return n;
    }
  }
}

int poll_retry(struct pollfd* fds, nfds_t nfds, int timeout) noexcept {
  for (;;) {
    const int rc = ops().poll(fds, nfds, timeout);
    if (rc >= 0 || errno != EINTR) {
      return rc;
    }
  }
}

int accept_retry(int fd, struct sockaddr* address,
                 socklen_t* length) noexcept {
  for (;;) {
    const int rc = ops().accept(fd, address, length);
    if (rc >= 0 || errno != EINTR) {
      return rc;
    }
  }
}

bool write_all(int fd, const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = write_retry(fd, bytes + done, size - done);
    if (n < 0) {
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace qpf::io

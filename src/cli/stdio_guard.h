// Pipeline-safe stdout for the CLI tools (tools/*.cpp).
//
// Every tool is meant to be piped: `qpf_fuzz --json | head` or
// `qpf_ler ... | tee` must not kill the process with SIGPIPE the
// moment the reader exits — under the default disposition the kernel
// terminates the writer (exit 141) wherever it happens to be, which
// for the journaled tools can be mid-checkpoint.  Each tool therefore
// ignores SIGPIPE at startup and checks its output stream explicitly:
// a closed pipe then surfaces as EPIPE on write, which the helpers
// below convert into a typed qpf::IoError so the tool exits through
// its ordinary error path (exit 1) with all durable state intact.
#pragma once

#include <csignal>
#include <cstdio>
#include <ostream>

#include "circuit/error.h"

namespace qpf::cli {

/// Ignore SIGPIPE process-wide so a closed-pipe write reports EPIPE
/// instead of killing the process.  Call once at the top of main().
inline void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

/// Flush `out` and throw IoError if any write on it failed (e.g. the
/// downstream reader exited).  `target` names the stream ("stdout").
inline void require_stream_ok(std::ostream& out, const char* target) {
  out.flush();
  if (!out) {
    throw IoError(target, "write failed; output truncated (broken pipe?)");
  }
}

/// C-stdio variant for tools that printf their report.
inline void require_stdout_ok() {
  if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) {
    throw IoError("stdout", "write failed; output truncated (broken pipe?)");
  }
}

}  // namespace qpf::cli

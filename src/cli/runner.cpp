#include "cli/runner.h"

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "arch/chp_core.h"
#include "arch/error_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/qx_core.h"
#include "circuit/qasm.h"
#include "qcu/compiler.h"
#include "qcu/qcu.h"
#include "stabilizer/chp_format.h"

namespace qpf::cli {

namespace {

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

std::optional<Format> format_from_extension(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return std::nullopt;
  }
  const std::string extension = path.substr(dot + 1);
  if (extension == "qasm") {
    return Format::kQasm;
  }
  if (extension == "chp") {
    return Format::kChp;
  }
  if (extension == "qisa") {
    return Format::kQisa;
  }
  if (extension == "lqasm") {
    return Format::kLogical;
  }
  return std::nullopt;
}

// Assemble the layered stack and run one shot of a physical circuit,
// returning the final binary state string (q_{n-1} ... q_0).
std::string run_circuit_shot(const RunnerOptions& options,
                             const Circuit& circuit, std::uint64_t seed,
                             std::string* state_dump) {
  std::unique_ptr<arch::Core> core;
  arch::QxCore* qx = nullptr;
  if (options.backend == Backend::kQx) {
    auto owned = std::make_unique<arch::QxCore>(seed);
    qx = owned.get();
    core = std::move(owned);
  } else {
    core = std::make_unique<arch::ChpCore>(seed);
  }
  std::unique_ptr<arch::ErrorLayer> error;
  std::unique_ptr<arch::PauliFrameLayer> frame;
  arch::Core* top = core.get();
  if (options.error_rate > 0.0) {
    error = std::make_unique<arch::ErrorLayer>(top, options.error_rate,
                                               seed ^ 0x517ULL);
    top = error.get();
  }
  if (options.pauli_frame) {
    frame = std::make_unique<arch::PauliFrameLayer>(top);
    top = frame.get();
  }
  const std::size_t qubits = std::max<std::size_t>(
      circuit.min_register_size(), 1);
  top->create_qubits(qubits);
  top->add(circuit);
  top->execute();
  const arch::BinaryState state = top->get_state();
  std::string bits;
  for (std::size_t q = state.size(); q-- > 0;) {
    bits += arch::to_char(state[q]);
  }
  if (state_dump != nullptr && qx != nullptr) {
    if (frame) {
      frame->flush();
    }
    *state_dump = qx->get_quantum_state()->str(1e-9);
  }
  return bits;
}

std::string run_circuit(const RunnerOptions& options, const Circuit& circuit) {
  std::ostringstream out;
  out << "program: " << circuit.num_operations() << " operations in "
      << circuit.num_slots() << " time slots over "
      << circuit.min_register_size() << " qubits\n";
  std::map<std::string, std::size_t> histogram;
  std::string state_dump;
  for (std::size_t shot = 0; shot < options.shots; ++shot) {
    const std::string bits = run_circuit_shot(
        options, circuit, options.seed + shot,
        options.print_state && shot + 1 == options.shots ? &state_dump
                                                         : nullptr);
    ++histogram[bits];
  }
  if (options.shots == 1) {
    out << "state (q_{n-1}..q_0): |" << histogram.begin()->first << ">\n";
  } else {
    out << "histogram over " << options.shots << " shots:\n";
    for (const auto& [bits, count] : histogram) {
      out << "  |" << bits << ">  " << count << "\n";
    }
  }
  if (!state_dump.empty()) {
    out << "quantum state (last shot, frame flushed):\n" << state_dump;
  }
  return out.str();
}

std::string run_qisa_program(const RunnerOptions& options,
                             const std::vector<qcu::Instruction>& program,
                             const char* kind) {
  // Size the machine to the largest patch the program names.
  std::size_t slots = options.patch_slots;
  for (const qcu::Instruction& instruction : program) {
    if (instruction.op == qcu::Opcode::kMapPatch) {
      slots = std::max<std::size_t>(slots, instruction.b + 1u);
    }
  }
  std::ostringstream out;
  out << kind << " program: " << program.size() << " instructions, " << slots
      << " patch slot(s)\n";
  std::map<std::string, std::size_t> histogram;
  for (std::size_t shot = 0; shot < options.shots; ++shot) {
    arch::ChpCore core(options.seed + shot);
    std::unique_ptr<arch::ErrorLayer> error;
    arch::Core* pel = &core;
    if (options.error_rate > 0.0) {
      error = std::make_unique<arch::ErrorLayer>(
          pel, options.error_rate, options.seed + shot + 0x9999);
      pel = error.get();
    }
    qcu::QuantumControlUnit unit(pel, slots, options.pauli_frame);
    unit.load(program);
    unit.run();
    std::string key;
    for (qcu::PatchId patch = 0; patch < slots; ++patch) {
      if (unit.symbol_table().alive(patch)) {
        key += qec::to_char(unit.logical_state(patch));
      } else {
        key += '.';
      }
    }
    ++histogram[key];
    if (shot + 1 == options.shots) {
      out << "stats: " << unit.stats().instructions << " instructions, "
          << unit.stats().operations_to_pel << " physical operations, "
          << unit.stats().paulis_absorbed << " Paulis absorbed, "
          << unit.stats().qec_windows << " QEC windows\n";
    }
  }
  out << "logical states over " << options.shots
      << " shot(s) (patch order, '.' = dead):\n";
  for (const auto& [key, count] : histogram) {
    out << "  " << key << "  " << count << "\n";
  }
  return out.str();
}

}  // namespace

std::string usage() {
  return "usage: qpf_run [options] <program file | ->\n"
         "  --backend=chp|qx    simulation backend (default chp)\n"
         "  --format=qasm|chp|qisa|logical  program format (default: extension)\n"
         "  --pauli-frame       insert a Pauli frame layer / unit\n"
         "  --error-rate=P      symmetric depolarizing noise\n"
         "  --shots=N           repetitions (histogram output)\n"
         "  --seed=S            RNG seed (default 1)\n"
         "  --slots=N           QISA patch slots (default: from program)\n"
         "  --print-state       dump amplitudes (qx backend only)\n";
}

std::optional<RunnerOptions> parse_arguments(
    const std::vector<std::string>& arguments, std::string& error) {
  RunnerOptions options;
  bool format_given = false;
  for (const std::string& argument : arguments) {
    std::string value;
    if (argument == "--pauli-frame") {
      options.pauli_frame = true;
    } else if (argument == "--print-state") {
      options.print_state = true;
    } else if (consume_prefix(argument, "--backend=", value)) {
      if (value == "chp") {
        options.backend = Backend::kChp;
      } else if (value == "qx") {
        options.backend = Backend::kQx;
      } else {
        error = "unknown backend '" + value + "'";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--format=", value)) {
      format_given = true;
      if (value == "qasm") {
        options.format = Format::kQasm;
      } else if (value == "chp") {
        options.format = Format::kChp;
      } else if (value == "qisa") {
        options.format = Format::kQisa;
      } else if (value == "logical") {
        options.format = Format::kLogical;
      } else {
        error = "unknown format '" + value + "'";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--error-rate=", value)) {
      try {
        options.error_rate = std::stod(value);
      } catch (const std::exception&) {
        error = "bad error rate '" + value + "'";
        return std::nullopt;
      }
      if (options.error_rate < 0.0 || options.error_rate > 1.0) {
        error = "error rate out of [0,1]";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--shots=", value)) {
      options.shots = std::strtoull(value.c_str(), nullptr, 10);
      if (options.shots == 0) {
        error = "shots must be positive";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--seed=", value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (consume_prefix(argument, "--slots=", value)) {
      options.patch_slots = std::strtoull(value.c_str(), nullptr, 10);
    } else if (!argument.empty() && argument[0] == '-' && argument != "-") {
      error = "unknown option '" + argument + "'";
      return std::nullopt;
    } else if (options.input_path.empty()) {
      options.input_path = argument;
    } else {
      error = "multiple input files";
      return std::nullopt;
    }
  }
  if (options.input_path.empty()) {
    error = "missing input file";
    return std::nullopt;
  }
  if (!format_given) {
    if (const auto format = format_from_extension(options.input_path)) {
      options.format = *format;
    }
  }
  if (options.print_state && options.backend != Backend::kQx) {
    error = "--print-state requires --backend=qx";
    return std::nullopt;
  }
  return options;
}

std::string run_program(const RunnerOptions& options,
                        const std::string& program_text) {
  switch (options.format) {
    case Format::kQasm:
      return run_circuit(options, from_qasm(program_text));
    case Format::kChp:
      return run_circuit(options, stab::from_chp(program_text));
    case Format::kQisa:
      return run_qisa_program(options, qcu::assemble(program_text), "qisa");
    case Format::kLogical:
      // A QASM file at the *logical* level: gates act on logical qubits,
      // the compiler lowers them to QISA, the QCU executes (Fig 4.1).
      return run_qisa_program(
          options, qcu::compile(from_qasm(program_text)), "compiled logical");
  }
  throw std::logic_error("unreachable");
}

int run_tool(const std::vector<std::string>& arguments, std::ostream& out,
             std::ostream& err) {
  std::string error;
  const auto options = parse_arguments(arguments, error);
  if (!options.has_value()) {
    err << "qpf_run: " << error << "\n" << usage();
    return 2;
  }
  std::string text;
  if (options->input_path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(options->input_path);
    if (!file) {
      err << "qpf_run: cannot open '" << options->input_path << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  try {
    out << run_program(*options, text);
  } catch (const std::exception& exception) {
    err << "qpf_run: " << exception.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace qpf::cli

#include "cli/runner.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "arch/chp_core.h"
#include "arch/classical_fault_layer.h"
#include "arch/error_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/qx_core.h"
#include "arch/supervisor_layer.h"
#include "arch/timing_layer.h"
#include "arch/validating_layer.h"
#include "circuit/error.h"
#include "circuit/qasm.h"
#include "journal/run_journal.h"
#include "journal/snapshot.h"
#include "qcu/compiler.h"
#include "qcu/qcu.h"
#include "stabilizer/chp_format.h"

namespace qpf::cli {

namespace {

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

std::optional<Format> format_from_extension(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return std::nullopt;
  }
  const std::string extension = path.substr(dot + 1);
  if (extension == "qasm") {
    return Format::kQasm;
  }
  if (extension == "chp") {
    return Format::kChp;
  }
  if (extension == "qisa") {
    return Format::kQisa;
  }
  if (extension == "lqasm") {
    return Format::kLogical;
  }
  return std::nullopt;
}

// Accumulated robustness statistics across the shots of one run.
struct FaultSummary {
  arch::FaultTally injected;
  pf::FrameHealth health;
  std::size_t recovery_flushes = 0;
  std::size_t validator_reports = 0;
  // Supervision subsystem (zero unless the layers are built).
  std::size_t faults_recovered = 0;
  std::size_t fault_episodes = 0;
  std::size_t deadline_overruns = 0;
  std::size_t chaos_crashes = 0;
  std::size_t chaos_stalls = 0;
  std::size_t chaos_bursts = 0;

  [[nodiscard]] bool anything() const noexcept {
    return injected.total() != 0 || health.checks != 0 ||
           recovery_flushes != 0 || validator_reports != 0 ||
           faults_recovered != 0 || fault_episodes != 0 ||
           deadline_overruns != 0 || chaos_crashes != 0 ||
           chaos_stalls != 0 || chaos_bursts != 0;
  }

  void merge(const FaultSummary& delta) {
    injected.dropped += delta.injected.dropped;
    injected.duplicated += delta.injected.duplicated;
    injected.reordered += delta.injected.reordered;
    injected.readout_flips += delta.injected.readout_flips;
    health.checks += delta.health.checks;
    health.detected += delta.health.detected;
    health.corrected += delta.health.corrected;
    health.uncorrectable += delta.health.uncorrectable;
    health.recovery_resets += delta.health.recovery_resets;
    health.scrubs += delta.health.scrubs;
    recovery_flushes += delta.recovery_flushes;
    validator_reports += delta.validator_reports;
    faults_recovered += delta.faults_recovered;
    fault_episodes += delta.fault_episodes;
    deadline_overruns += delta.deadline_overruns;
    chaos_crashes += delta.chaos_crashes;
    chaos_stalls += delta.chaos_stalls;
    chaos_bursts += delta.chaos_bursts;
  }
};

void accumulate(FaultSummary& summary, const arch::ClassicalFaultLayer* faults,
                const arch::PauliFrameLayer* frame,
                const arch::ValidatingLayer* validator,
                const arch::SupervisorLayer* supervisor,
                const arch::TimingLayer* timing) {
  if (faults != nullptr) {
    summary.injected.dropped += faults->tally().dropped;
    summary.injected.duplicated += faults->tally().duplicated;
    summary.injected.reordered += faults->tally().reordered;
    summary.injected.readout_flips += faults->tally().readout_flips;
    summary.chaos_crashes += faults->chaos_tally().crashes;
    summary.chaos_stalls += faults->chaos_tally().stalls;
    summary.chaos_bursts += faults->chaos_tally().bursts;
  }
  if (frame != nullptr) {
    const pf::FrameHealth& health = frame->frame().health();
    summary.health.checks += health.checks;
    summary.health.detected += health.detected;
    summary.health.corrected += health.corrected;
    summary.health.uncorrectable += health.uncorrectable;
    summary.health.recovery_resets += health.recovery_resets;
    summary.health.scrubs += health.scrubs;
    summary.recovery_flushes += frame->recovery_flushes();
  }
  if (validator != nullptr) {
    summary.validator_reports += validator->reports().size();
  }
  if (supervisor != nullptr) {
    summary.faults_recovered += supervisor->stats().recoveries;
    summary.fault_episodes += supervisor->stats().episodes;
  }
  if (timing != nullptr) {
    summary.deadline_overruns += timing->total_overruns();
  }
}

// Assemble the layered stack and run one shot of a physical circuit,
// returning the final binary state string (q_{n-1} ... q_0).
std::string run_circuit_shot(const RunnerOptions& options,
                             const Circuit& circuit, std::uint64_t seed,
                             std::string* state_dump, FaultSummary* summary) {
  std::unique_ptr<arch::Core> core;
  arch::QxCore* qx = nullptr;
  if (options.backend == Backend::kQx) {
    auto owned = std::make_unique<arch::QxCore>(seed);
    qx = owned.get();
    core = std::move(owned);
  } else {
    core = std::make_unique<arch::ChpCore>(seed);
  }
  std::unique_ptr<arch::ErrorLayer> error;
  std::unique_ptr<arch::ClassicalFaultLayer> faults;
  std::unique_ptr<arch::PauliFrameLayer> frame;
  std::unique_ptr<arch::ValidatingLayer> validator;
  std::unique_ptr<arch::SupervisorLayer> supervisor;
  std::unique_ptr<arch::TimingLayer> timing;
  arch::Core* top = core.get();
  if (options.error_rate > 0.0) {
    error = std::make_unique<arch::ErrorLayer>(top, options.error_rate,
                                               seed ^ 0x517ULL);
    top = error.get();
  }
  if (options.classical_fault_rate > 0.0 || options.chaos.any()) {
    // Each shot gets its own deterministic chaos schedule: the storm
    // should not strike every shot at the same call index.
    arch::ChaosConfig chaos = options.chaos;
    chaos.seed ^= seed;
    faults = std::make_unique<arch::ClassicalFaultLayer>(
        top, arch::ClassicalFaultRates::uniform(options.classical_fault_rate),
        seed ^ 0xfa017ULL, chaos);
    top = faults.get();
  }
  if (options.pauli_frame) {
    frame = std::make_unique<arch::PauliFrameLayer>(top,
                                                    options.frame_protection);
    top = frame.get();
  }
  if (options.validate) {
    validator = std::make_unique<arch::ValidatingLayer>(top, frame.get());
    top = validator.get();
  }
  if (options.supervise) {
    arch::SupervisorOptions policy;
    policy.seed = seed ^ 0xa24baed4963ee407ULL;
    supervisor = std::make_unique<arch::SupervisorLayer>(top, policy);
    supervisor->set_frame(frame.get());
    top = supervisor.get();
  }
  if (options.deadline_slot_ns > 0.0) {
    timing = std::make_unique<arch::TimingLayer>(top);
    timing->set_deadline(
        arch::DeadlineBudget{options.deadline_slot_ns, 0.0});
    timing->set_stall_source(faults.get());
    if (supervisor) {
      supervisor->set_watchdog(timing.get());
    }
    top = timing.get();
  }
  const std::size_t qubits = std::max<std::size_t>(
      circuit.min_register_size(), 1);
  top->create_qubits(qubits);
  top->add(circuit);
  top->execute();
  const arch::BinaryState state = top->get_state();
  std::string bits;
  for (std::size_t q = state.size(); q-- > 0;) {
    bits += arch::to_char(state[q]);
  }
  if (state_dump != nullptr && qx != nullptr) {
    if (frame) {
      frame->flush();
    }
    *state_dump = qx->get_quantum_state()->str(1e-9);
  }
  if (summary != nullptr) {
    accumulate(*summary, faults.get(), frame.get(), validator.get(),
               supervisor.get(), timing.get());
  }
  return bits;
}

void make_state_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return;
  }
  throw CheckpointError(std::string("cannot create state directory: ") +
                            std::strerror(errno),
                        path);
}

// Structural fingerprint of the program, so a resume against a
// different circuit is rejected instead of silently mixing histograms.
std::uint32_t circuit_fingerprint(const Circuit& circuit) {
  journal::SnapshotWriter out;
  out.write_circuit(circuit);
  return journal::crc32(out.bytes().data(), out.bytes().size());
}

journal::JournalEntry run_config_entry(const RunnerOptions& options,
                                       std::uint32_t program_crc) {
  journal::JournalEntry entry;
  entry.fields["kind"] = "config";
  entry.fields["program_crc"] = std::to_string(program_crc);
  entry.fields["seed"] = std::to_string(options.seed);
  entry.fields["shots"] = std::to_string(options.shots);
  char rate[40];
  std::snprintf(rate, sizeof rate, "%.17g", options.error_rate);
  entry.fields["error_rate"] = rate;
  std::snprintf(rate, sizeof rate, "%.17g", options.classical_fault_rate);
  entry.fields["classical_fault_rate"] = rate;
  entry.fields["backend"] = options.backend == Backend::kQx ? "qx" : "chp";
  entry.fields["pauli_frame"] = options.pauli_frame ? "1" : "0";
  entry.fields["protection"] = std::string(pf::name(options.frame_protection));
  entry.fields["validate"] = options.validate ? "1" : "0";
  // Supervision fields only when the subsystems are on, so a run with
  // them off produces journal bytes identical to a build without them.
  if (options.supervise) {
    entry.fields["supervise"] = "1";
  }
  if (options.deadline_slot_ns > 0.0) {
    std::snprintf(rate, sizeof rate, "%.17g", options.deadline_slot_ns);
    entry.fields["deadline_slot_ns"] = rate;
  }
  if (options.chaos.any()) {
    entry.fields["chaos_seed"] = std::to_string(options.chaos.seed);
    entry.fields["chaos_min_gap"] = std::to_string(options.chaos.min_gap);
    entry.fields["chaos_max_gap"] = std::to_string(options.chaos.max_gap);
    entry.fields["chaos_crash_w"] =
        std::to_string(options.chaos.crash_weight);
    entry.fields["chaos_stall_w"] =
        std::to_string(options.chaos.stall_weight);
    entry.fields["chaos_burst_w"] =
        std::to_string(options.chaos.burst_weight);
  }
  return entry;
}

// Has any supervision subsystem been requested?  Gates the extended
// journal / checkpoint fields.
bool supervision_on(const RunnerOptions& options) {
  return options.supervise || options.deadline_slot_ns > 0.0 ||
         options.chaos.any();
}

// Aggregate run state that the journal replay / checkpoint restores.
struct RunAggregate {
  std::map<std::string, std::size_t> histogram;
  FaultSummary summary;
  std::size_t timed_out_shots = 0;
  std::size_t shots_done = 0;
};

void apply_shot_entry(RunAggregate& aggregate,
                      const journal::JournalEntry& entry) {
  const bool timed_out = entry.get_u64("timed_out") != 0;
  // A timed-out shot was cut, not completed: it never joins the
  // histogram (its bits are the partial result of an over-budget shot).
  if (!timed_out) {
    ++aggregate.histogram[entry.get("bits")];
  }
  FaultSummary delta;
  delta.injected.dropped = entry.get_u64("dropped");
  delta.injected.duplicated = entry.get_u64("duplicated");
  delta.injected.reordered = entry.get_u64("reordered");
  delta.injected.readout_flips = entry.get_u64("readout_flips");
  delta.health.checks = entry.get_u64("checks");
  delta.health.detected = entry.get_u64("detected");
  delta.health.corrected = entry.get_u64("corrected");
  delta.health.uncorrectable = entry.get_u64("uncorrectable");
  delta.health.recovery_resets = entry.get_u64("recovery_resets");
  delta.health.scrubs = entry.get_u64("scrubs");
  delta.recovery_flushes = entry.get_u64("recovery_flushes");
  delta.validator_reports = entry.get_u64("validator_reports");
  delta.faults_recovered = entry.get_u64("recovered");
  delta.fault_episodes = entry.get_u64("episodes");
  delta.deadline_overruns = entry.get_u64("overruns");
  delta.chaos_crashes = entry.get_u64("chaos_crashes");
  delta.chaos_stalls = entry.get_u64("chaos_stalls");
  delta.chaos_bursts = entry.get_u64("chaos_bursts");
  aggregate.summary.merge(delta);
  if (timed_out) {
    ++aggregate.timed_out_shots;
  }
  ++aggregate.shots_done;
}

journal::JournalEntry shot_entry(const RunnerOptions& options,
                                 std::size_t shot, const std::string& bits,
                                 bool timed_out, const FaultSummary& delta) {
  journal::JournalEntry entry;
  entry.fields["kind"] = "shot";
  entry.fields["shot"] = std::to_string(shot);
  entry.fields["bits"] = bits;
  entry.fields["timed_out"] = timed_out ? "1" : "0";
  // The distinct watchdog status, only when the watchdog is armed (so
  // watchdog-off journals keep their exact historical bytes).
  if (options.timeout_per_trial_ms != 0) {
    entry.fields["status"] = timed_out ? "timed_out" : "ok";
  }
  entry.fields["dropped"] = std::to_string(delta.injected.dropped);
  entry.fields["duplicated"] = std::to_string(delta.injected.duplicated);
  entry.fields["reordered"] = std::to_string(delta.injected.reordered);
  entry.fields["readout_flips"] =
      std::to_string(delta.injected.readout_flips);
  entry.fields["checks"] = std::to_string(delta.health.checks);
  entry.fields["detected"] = std::to_string(delta.health.detected);
  entry.fields["corrected"] = std::to_string(delta.health.corrected);
  entry.fields["uncorrectable"] = std::to_string(delta.health.uncorrectable);
  entry.fields["recovery_resets"] =
      std::to_string(delta.health.recovery_resets);
  entry.fields["scrubs"] = std::to_string(delta.health.scrubs);
  entry.fields["recovery_flushes"] = std::to_string(delta.recovery_flushes);
  entry.fields["validator_reports"] =
      std::to_string(delta.validator_reports);
  if (options.supervise) {
    entry.fields["recovered"] = std::to_string(delta.faults_recovered);
    entry.fields["episodes"] = std::to_string(delta.fault_episodes);
  }
  if (options.deadline_slot_ns > 0.0) {
    entry.fields["overruns"] = std::to_string(delta.deadline_overruns);
  }
  if (options.chaos.any()) {
    entry.fields["chaos_crashes"] = std::to_string(delta.chaos_crashes);
    entry.fields["chaos_stalls"] = std::to_string(delta.chaos_stalls);
    entry.fields["chaos_bursts"] = std::to_string(delta.chaos_bursts);
  }
  return entry;
}

// `extended` (supervision on) appends the supervision aggregates; off,
// the checkpoint keeps the exact historical byte layout.
void write_run_checkpoint(const std::string& path, std::uint32_t program_crc,
                          std::uint64_t seed, const RunAggregate& aggregate,
                          bool extended) {
  journal::SnapshotWriter out;
  out.tag("qpf-run");
  out.write_u32(program_crc);
  out.write_u64(seed);
  out.write_size(aggregate.shots_done);
  out.write_size(aggregate.timed_out_shots);
  out.write_size(aggregate.histogram.size());
  for (const auto& [bits, count] : aggregate.histogram) {
    out.write_string(bits);
    out.write_size(count);
  }
  out.write_size(aggregate.summary.injected.dropped);
  out.write_size(aggregate.summary.injected.duplicated);
  out.write_size(aggregate.summary.injected.reordered);
  out.write_size(aggregate.summary.injected.readout_flips);
  out.write_size(aggregate.summary.health.checks);
  out.write_size(aggregate.summary.health.detected);
  out.write_size(aggregate.summary.health.corrected);
  out.write_size(aggregate.summary.health.uncorrectable);
  out.write_size(aggregate.summary.health.recovery_resets);
  out.write_size(aggregate.summary.health.scrubs);
  out.write_size(aggregate.summary.recovery_flushes);
  out.write_size(aggregate.summary.validator_reports);
  if (extended) {
    out.write_size(aggregate.summary.faults_recovered);
    out.write_size(aggregate.summary.fault_episodes);
    out.write_size(aggregate.summary.deadline_overruns);
    out.write_size(aggregate.summary.chaos_crashes);
    out.write_size(aggregate.summary.chaos_stalls);
    out.write_size(aggregate.summary.chaos_bursts);
  }
  journal::write_checkpoint_file(path, out.bytes());
}

// Throws CheckpointError on any mismatch or corruption.
RunAggregate read_run_checkpoint(const std::string& path,
                                 std::uint32_t program_crc,
                                 std::uint64_t seed, bool extended) {
  journal::SnapshotReader in(journal::read_checkpoint_file(path));
  in.expect_tag("qpf-run");
  if (in.read_u32() != program_crc) {
    throw CheckpointError("run checkpoint: program fingerprint mismatch",
                          path);
  }
  if (in.read_u64() != seed) {
    throw CheckpointError("run checkpoint: seed mismatch", path);
  }
  RunAggregate aggregate;
  aggregate.shots_done = in.read_size();
  aggregate.timed_out_shots = in.read_size();
  const std::size_t entries = in.read_size();
  for (std::size_t i = 0; i < entries; ++i) {
    const std::string bits = in.read_string();
    aggregate.histogram[bits] = in.read_size();
  }
  aggregate.summary.injected.dropped = in.read_size();
  aggregate.summary.injected.duplicated = in.read_size();
  aggregate.summary.injected.reordered = in.read_size();
  aggregate.summary.injected.readout_flips = in.read_size();
  aggregate.summary.health.checks = in.read_size();
  aggregate.summary.health.detected = in.read_size();
  aggregate.summary.health.corrected = in.read_size();
  aggregate.summary.health.uncorrectable = in.read_size();
  aggregate.summary.health.recovery_resets = in.read_size();
  aggregate.summary.health.scrubs = in.read_size();
  aggregate.summary.recovery_flushes = in.read_size();
  aggregate.summary.validator_reports = in.read_size();
  if (extended) {
    aggregate.summary.faults_recovered = in.read_size();
    aggregate.summary.fault_episodes = in.read_size();
    aggregate.summary.deadline_overruns = in.read_size();
    aggregate.summary.chaos_crashes = in.read_size();
    aggregate.summary.chaos_stalls = in.read_size();
    aggregate.summary.chaos_bursts = in.read_size();
  }
  return aggregate;
}

std::string run_circuit(const RunnerOptions& options, const Circuit& circuit,
                        bool* interrupted) {
  std::ostringstream out;
  out << "program: " << circuit.num_operations() << " operations in "
      << circuit.num_slots() << " time slots over "
      << circuit.min_register_size() << " qubits\n";
  RunAggregate aggregate;
  std::string state_dump;

  const bool durable = !options.checkpoint_dir.empty();
  std::unique_ptr<journal::RunJournal> log;
  std::string checkpoint_path;
  std::uint32_t program_crc = 0;
  if (durable) {
    make_state_directory(options.checkpoint_dir);
    program_crc = circuit_fingerprint(circuit);
    const std::string journal_path = options.checkpoint_dir + "/shots.jsonl";
    checkpoint_path = options.checkpoint_dir + "/run.ckpt";
    const std::vector<journal::JournalEntry> entries =
        journal::read_journal(journal_path);
    if (!entries.empty()) {
      if (!options.resume) {
        throw CheckpointError(
            "state directory already holds a journal; pass --resume=DIR "
            "to continue it",
            journal_path);
      }
      const journal::JournalEntry expected =
          run_config_entry(options, program_crc);
      for (const auto& [key, value] : expected.fields) {
        if (entries.front().get(key) != value) {
          throw CheckpointError(
              "journal was written by a different run (field '" + key +
                  "' is '" + entries.front().get(key) + "', expected '" +
                  value + "')",
              journal_path);
        }
      }
    }
    // Sequential shot records; anything else (duplicates from a
    // re-run, out-of-order garbage) is ignored.
    std::vector<const journal::JournalEntry*> shots;
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (entries[i].get("kind") == "shot" &&
          entries[i].get_u64("shot") == shots.size()) {
        shots.push_back(&entries[i]);
      }
    }
    // Fast path: an aggregate checkpoint summarizing a prefix of the
    // journal.  A corrupt or mismatched checkpoint is discarded — the
    // journal alone rebuilds the same state.
    if (options.resume && journal::file_exists(checkpoint_path)) {
      try {
        RunAggregate restored =
            read_run_checkpoint(checkpoint_path, program_crc, options.seed,
                                supervision_on(options));
        if (restored.shots_done > shots.size()) {
          throw CheckpointError(
              "run checkpoint claims more shots than the journal holds",
              checkpoint_path);
        }
        aggregate = std::move(restored);
      } catch (const CheckpointError& error) {
        std::cerr << "qpf_run: discarded unusable checkpoint ("
                  << error.what() << "); replaying the journal\n";
        aggregate = RunAggregate{};
      }
    }
    for (std::size_t shot = aggregate.shots_done; shot < shots.size();
         ++shot) {
      apply_shot_entry(aggregate, *shots[shot]);
    }
    log = std::make_unique<journal::RunJournal>(journal_path);
    if (entries.empty()) {
      log->append(run_config_entry(options, program_crc));
    }
  }

  std::size_t since_checkpoint = 0;
  for (std::size_t shot = aggregate.shots_done; shot < options.shots;
       ++shot) {
    if (options.stop != nullptr && *options.stop != 0) {
      if (interrupted != nullptr) {
        *interrupted = true;
      }
      break;
    }
    const auto started = std::chrono::steady_clock::now();
    FaultSummary delta;
    const std::string bits = run_circuit_shot(
        options, circuit, options.seed + shot,
        options.print_state && shot + 1 == options.shots ? &state_dump
                                                         : nullptr,
        &delta);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    const bool timed_out =
        options.timeout_per_trial_ms != 0 &&
        (static_cast<std::size_t>(elapsed_ms) >=
             options.timeout_per_trial_ms ||
         (options.debug_timeout_every != 0 &&
          (shot + 1) % options.debug_timeout_every == 0));
    // A cut shot never joins the histogram: its bits are the state of
    // an over-budget shot, not a completed sample.
    if (!timed_out) {
      ++aggregate.histogram[bits];
    } else {
      ++aggregate.timed_out_shots;
    }
    aggregate.summary.merge(delta);
    ++aggregate.shots_done;
    if (durable) {
      log->append(shot_entry(options, shot, bits, timed_out, delta));
      ++since_checkpoint;
      if (options.checkpoint_every != 0 &&
          since_checkpoint >= options.checkpoint_every) {
        write_run_checkpoint(checkpoint_path, program_crc, options.seed,
                             aggregate, supervision_on(options));
        since_checkpoint = 0;
      }
    }
  }
  if (durable && since_checkpoint != 0) {
    write_run_checkpoint(checkpoint_path, program_crc, options.seed,
                         aggregate, supervision_on(options));
  }

  const std::map<std::string, std::size_t>& histogram = aggregate.histogram;
  const FaultSummary& summary = aggregate.summary;
  if (interrupted != nullptr && *interrupted) {
    out << "interrupted after " << aggregate.shots_done << " of "
        << options.shots << " shot(s)";
    if (durable) {
      out << "; re-run with --resume=" << options.checkpoint_dir
          << " to continue";
    }
    out << "\n";
    return out.str();
  }
  if (options.shots == 1 && !histogram.empty()) {
    out << "state (q_{n-1}..q_0): |" << histogram.begin()->first << ">\n";
  } else {
    const std::size_t completed =
        aggregate.shots_done - aggregate.timed_out_shots;
    out << "histogram over " << completed << " completed shot(s):\n";
    for (const auto& [bits, count] : histogram) {
      out << "  |" << bits << ">  " << count << "\n";
    }
  }
  if (options.classical_fault_rate > 0.0) {
    out << "classical faults injected: " << summary.injected.dropped
        << " dropped, " << summary.injected.duplicated << " duplicated, "
        << summary.injected.reordered << " reordered, "
        << summary.injected.readout_flips << " readout flips\n";
  }
  if (options.pauli_frame &&
      options.frame_protection != pf::Protection::kNone) {
    out << "frame health (" << pf::name(options.frame_protection)
        << "): " << summary.health.checks << " checks, "
        << summary.health.detected << " detected, " << summary.health.corrected
        << " corrected, " << summary.health.uncorrectable
        << " uncorrectable, " << summary.recovery_flushes
        << " recovery flushes\n";
  }
  if (options.validate) {
    out << "validator: " << summary.validator_reports << " report(s)\n";
  }
  if (options.chaos.any()) {
    out << "chaos injected: " << summary.chaos_crashes << " crash(es), "
        << summary.chaos_stalls << " stall(s), " << summary.chaos_bursts
        << " burst(s)\n";
  }
  if (options.supervise) {
    out << "supervisor: " << summary.faults_recovered
        << " fault(s) recovered, " << summary.fault_episodes
        << " episode(s)\n";
  }
  if (options.deadline_slot_ns > 0.0) {
    out << "deadline: " << summary.deadline_overruns
        << " overrun(s) of the " << options.deadline_slot_ns
        << " ns slot budget\n";
  }
  if (options.timeout_per_trial_ms != 0) {
    out << "timed out: " << aggregate.timed_out_shots
        << " shot(s) cut at the " << options.timeout_per_trial_ms
        << " ms budget and excluded from the histogram\n";
  }
  if (!state_dump.empty()) {
    out << "quantum state (last shot, frame flushed):\n" << state_dump;
  }
  return out.str();
}

std::string run_qisa_program(const RunnerOptions& options,
                             const std::vector<qcu::Instruction>& program,
                             const char* kind, bool* interrupted) {
  // Size the machine to the largest patch the program names.
  std::size_t slots = options.patch_slots;
  for (const qcu::Instruction& instruction : program) {
    if (instruction.op == qcu::Opcode::kMapPatch) {
      slots = std::max<std::size_t>(slots, instruction.b + 1u);
    }
  }
  std::ostringstream out;
  out << kind << " program: " << program.size() << " instructions, " << slots
      << " patch slot(s)\n";
  std::map<std::string, std::size_t> histogram;
  arch::FaultTally injected;
  std::size_t shots_done = 0;
  for (std::size_t shot = 0; shot < options.shots; ++shot) {
    if (options.stop != nullptr && *options.stop != 0) {
      if (interrupted != nullptr) {
        *interrupted = true;
      }
      break;
    }
    arch::ChpCore core(options.seed + shot);
    std::unique_ptr<arch::ErrorLayer> error;
    std::unique_ptr<arch::ClassicalFaultLayer> faults;
    arch::Core* pel = &core;
    if (options.error_rate > 0.0) {
      error = std::make_unique<arch::ErrorLayer>(
          pel, options.error_rate, options.seed + shot + 0x9999);
      pel = error.get();
    }
    if (options.classical_fault_rate > 0.0) {
      // No drop faults below the QCU: a swallowed ESM / readout
      // measurement violates the decoder's input contract (a logic
      // error by design).  Duplicates, reorders, and readout flips are
      // the fault kinds the decode path absorbs like ordinary noise.
      const double p = options.classical_fault_rate;
      faults = std::make_unique<arch::ClassicalFaultLayer>(
          pel, arch::ClassicalFaultRates{0.0, p, p, p},
          options.seed + shot + 0xfa017);
      pel = faults.get();
    }
    qcu::QuantumControlUnit unit(pel, slots, options.pauli_frame);
    unit.load(program);
    unit.run();
    std::string key;
    for (qcu::PatchId patch = 0; patch < slots; ++patch) {
      if (unit.symbol_table().alive(patch)) {
        key += qec::to_char(unit.logical_state(patch));
      } else {
        key += '.';
      }
    }
    ++histogram[key];
    ++shots_done;
    if (faults != nullptr) {
      injected.dropped += faults->tally().dropped;
      injected.duplicated += faults->tally().duplicated;
      injected.reordered += faults->tally().reordered;
      injected.readout_flips += faults->tally().readout_flips;
    }
    if (shot + 1 == options.shots) {
      out << "stats: " << unit.stats().instructions << " instructions, "
          << unit.stats().operations_to_pel << " physical operations, "
          << unit.stats().paulis_absorbed << " Paulis absorbed, "
          << unit.stats().qec_windows << " QEC windows\n";
    }
  }
  if (interrupted != nullptr && *interrupted) {
    out << "interrupted after " << shots_done << " of " << options.shots
        << " shot(s)\n";
    return out.str();
  }
  out << "logical states over " << options.shots
      << " shot(s) (patch order, '.' = dead):\n";
  for (const auto& [key, count] : histogram) {
    out << "  " << key << "  " << count << "\n";
  }
  if (options.classical_fault_rate > 0.0) {
    out << "classical faults injected: " << injected.dropped << " dropped, "
        << injected.duplicated << " duplicated, " << injected.reordered
        << " reordered, " << injected.readout_flips << " readout flips\n";
  }
  return out.str();
}

}  // namespace

std::string usage() {
  return "usage: qpf_run [options] <program file | ->\n"
         "  --backend=chp|qx    simulation backend (default chp)\n"
         "  --format=qasm|chp|qisa|logical  program format (default: extension)\n"
         "  --pauli-frame       insert a Pauli frame layer / unit\n"
         "  --error-rate=P      symmetric depolarizing noise\n"
         "  --shots=N           repetitions (histogram output)\n"
         "  --seed=S            RNG seed (default 1)\n"
         "  --slots=N           QISA patch slots (default: from program)\n"
         "  --print-state       dump amplitudes (qx backend only)\n"
         "  --classical-fault-rate=P  drop/duplicate/reorder/readout-flip\n"
         "                      faults, each at rate P\n"
         "  --protect-frame[=parity|vote]  guard the Pauli frame records\n"
         "                      (default parity; requires --pauli-frame)\n"
         "  --validate          cross-check the Pauli frame against a\n"
         "                      shadow copy (requires --pauli-frame)\n"
         "  --checkpoint-dir=DIR  journal every shot durably (fsync'd\n"
         "                      JSONL + CRC-guarded checkpoint); qasm/chp\n"
         "                      programs only\n"
         "  --checkpoint-every=N  rotate the aggregate checkpoint every\n"
         "                      N shots (default 64)\n"
         "  --resume=DIR        continue an interrupted journaled run;\n"
         "                      finished shots are replayed, not re-run\n"
         "  --timeout-per-trial=MS  per-shot watchdog; over-budget shots\n"
         "                      are journaled status=timed_out, cut from\n"
         "                      the histogram, and the run continues\n"
         "  --debug-timeout-every=N  test hook: treat every Nth shot as\n"
         "                      over budget (requires --timeout-per-trial)\n"
         "  --supervise         supervise the stack: catch typed faults,\n"
         "                      restore from the last good snapshot,\n"
         "                      degrade, escalate\n"
         "  --deadline-ns=NS    per-slot modeled-time budget; overruns\n"
         "                      are counted (and escalate under\n"
         "                      --supervise policy)\n"
         "  --chaos-gap=MIN:MAX scripted chaos schedule: seeded fault\n"
         "                      events every MIN..MAX layer calls\n"
         "  --chaos-seed=S      chaos schedule seed (default 0)\n"
         "  --chaos-kinds=LIST  comma list of crash,stall,burst\n"
         "                      (default crash)\n"
         "  --chaos-stall-ns=NS latency debt per stall event\n"
         "  --chaos-burst=N     crashes per burst event\n";
}

std::optional<RunnerOptions> parse_arguments(
    const std::vector<std::string>& arguments, std::string& error) {
  RunnerOptions options;
  bool format_given = false;
  bool chaos_tuning_given = false;
  for (const std::string& argument : arguments) {
    std::string value;
    if (argument == "--pauli-frame") {
      options.pauli_frame = true;
    } else if (argument == "--print-state") {
      options.print_state = true;
    } else if (consume_prefix(argument, "--backend=", value)) {
      if (value == "chp") {
        options.backend = Backend::kChp;
      } else if (value == "qx") {
        options.backend = Backend::kQx;
      } else {
        error = "unknown backend '" + value + "'";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--format=", value)) {
      format_given = true;
      if (value == "qasm") {
        options.format = Format::kQasm;
      } else if (value == "chp") {
        options.format = Format::kChp;
      } else if (value == "qisa") {
        options.format = Format::kQisa;
      } else if (value == "logical") {
        options.format = Format::kLogical;
      } else {
        error = "unknown format '" + value + "'";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--error-rate=", value)) {
      try {
        options.error_rate = std::stod(value);
      } catch (const std::exception&) {
        error = "bad error rate '" + value + "'";
        return std::nullopt;
      }
      if (options.error_rate < 0.0 || options.error_rate > 1.0) {
        error = "error rate out of [0,1]";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--shots=", value)) {
      options.shots = std::strtoull(value.c_str(), nullptr, 10);
      if (options.shots == 0) {
        error = "shots must be positive";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--seed=", value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (consume_prefix(argument, "--slots=", value)) {
      options.patch_slots = std::strtoull(value.c_str(), nullptr, 10);
    } else if (consume_prefix(argument, "--classical-fault-rate=", value)) {
      try {
        options.classical_fault_rate = std::stod(value);
      } catch (const std::exception&) {
        error = "bad classical fault rate '" + value + "'";
        return std::nullopt;
      }
      if (options.classical_fault_rate < 0.0 ||
          options.classical_fault_rate > 1.0) {
        error = "classical fault rate out of [0,1]";
        return std::nullopt;
      }
    } else if (argument == "--protect-frame") {
      options.frame_protection = pf::Protection::kParity;
    } else if (consume_prefix(argument, "--protect-frame=", value)) {
      if (value == "parity") {
        options.frame_protection = pf::Protection::kParity;
      } else if (value == "vote") {
        options.frame_protection = pf::Protection::kVote;
      } else {
        error = "unknown frame protection '" + value + "'";
        return std::nullopt;
      }
    } else if (argument == "--validate") {
      options.validate = true;
    } else if (consume_prefix(argument, "--checkpoint-dir=", value)) {
      if (value.empty()) {
        error = "--checkpoint-dir needs a directory";
        return std::nullopt;
      }
      options.checkpoint_dir = value;
    } else if (consume_prefix(argument, "--checkpoint-every=", value)) {
      options.checkpoint_every = std::strtoull(value.c_str(), nullptr, 10);
    } else if (consume_prefix(argument, "--resume=", value)) {
      if (value.empty()) {
        error = "--resume needs a directory";
        return std::nullopt;
      }
      if (!options.checkpoint_dir.empty() && options.checkpoint_dir != value) {
        error = "--resume and --checkpoint-dir name different directories";
        return std::nullopt;
      }
      options.checkpoint_dir = value;
      options.resume = true;
    } else if (consume_prefix(argument, "--timeout-per-trial=", value)) {
      options.timeout_per_trial_ms =
          std::strtoull(value.c_str(), nullptr, 10);
      if (options.timeout_per_trial_ms == 0) {
        error = "--timeout-per-trial must be positive";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--debug-timeout-every=", value)) {
      options.debug_timeout_every = std::strtoull(value.c_str(), nullptr, 10);
      if (options.debug_timeout_every == 0) {
        error = "--debug-timeout-every must be positive";
        return std::nullopt;
      }
    } else if (argument == "--supervise") {
      options.supervise = true;
    } else if (consume_prefix(argument, "--deadline-ns=", value)) {
      try {
        options.deadline_slot_ns = std::stod(value);
      } catch (const std::exception&) {
        error = "bad deadline '" + value + "'";
        return std::nullopt;
      }
      if (options.deadline_slot_ns <= 0.0) {
        error = "--deadline-ns must be positive";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--chaos-seed=", value)) {
      options.chaos.seed = std::strtoull(value.c_str(), nullptr, 10);
      chaos_tuning_given = true;
    } else if (consume_prefix(argument, "--chaos-gap=", value)) {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        error = "--chaos-gap needs MIN:MAX";
        return std::nullopt;
      }
      options.chaos.min_gap =
          std::strtoull(value.substr(0, colon).c_str(), nullptr, 10);
      options.chaos.max_gap =
          std::strtoull(value.substr(colon + 1).c_str(), nullptr, 10);
      if (options.chaos.min_gap == 0 ||
          options.chaos.min_gap > options.chaos.max_gap) {
        error = "--chaos-gap needs 0 < MIN <= MAX (got '" + value + "')";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--chaos-kinds=", value)) {
      chaos_tuning_given = true;
      options.chaos.crash_weight = 0;
      options.chaos.stall_weight = 0;
      options.chaos.burst_weight = 0;
      std::size_t start = 0;
      while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string kind =
            value.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start);
        if (kind == "crash") {
          options.chaos.crash_weight = 1;
        } else if (kind == "stall") {
          options.chaos.stall_weight = 1;
        } else if (kind == "burst") {
          options.chaos.burst_weight = 1;
        } else {
          error = "unknown chaos kind '" + kind + "'";
          return std::nullopt;
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (consume_prefix(argument, "--chaos-stall-ns=", value)) {
      chaos_tuning_given = true;
      try {
        options.chaos.stall_ns = std::stod(value);
      } catch (const std::exception&) {
        error = "bad stall duration '" + value + "'";
        return std::nullopt;
      }
      if (options.chaos.stall_ns < 0.0) {
        error = "--chaos-stall-ns must be non-negative";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--chaos-burst=", value)) {
      chaos_tuning_given = true;
      options.chaos.burst_length = std::strtoull(value.c_str(), nullptr, 10);
      if (options.chaos.burst_length == 0) {
        error = "--chaos-burst must be positive";
        return std::nullopt;
      }
    } else if (!argument.empty() && argument[0] == '-' && argument != "-") {
      error = "unknown option '" + argument + "'";
      return std::nullopt;
    } else if (options.input_path.empty()) {
      options.input_path = argument;
    } else {
      error = "multiple input files";
      return std::nullopt;
    }
  }
  if (options.input_path.empty()) {
    error = "missing input file";
    return std::nullopt;
  }
  if (!format_given) {
    if (const auto format = format_from_extension(options.input_path)) {
      options.format = *format;
    }
  }
  if (options.print_state && options.backend != Backend::kQx) {
    error = "--print-state requires --backend=qx";
    return std::nullopt;
  }
  if (options.frame_protection != pf::Protection::kNone &&
      !options.pauli_frame) {
    error = "--protect-frame requires --pauli-frame";
    return std::nullopt;
  }
  if (options.validate && !options.pauli_frame) {
    error = "--validate requires --pauli-frame";
    return std::nullopt;
  }
  if (chaos_tuning_given && options.chaos.max_gap == 0) {
    error = "--chaos-* options need a schedule: pass --chaos-gap=MIN:MAX";
    return std::nullopt;
  }
  if (options.debug_timeout_every != 0 && options.timeout_per_trial_ms == 0) {
    error = "--debug-timeout-every requires --timeout-per-trial";
    return std::nullopt;
  }
  if ((options.supervise || options.deadline_slot_ns > 0.0 ||
       options.chaos.any()) &&
      (options.format == Format::kQisa || options.format == Format::kLogical)) {
    error = "--supervise / --deadline-ns / --chaos-* support qasm/chp "
            "programs only";
    return std::nullopt;
  }
  if (!options.checkpoint_dir.empty()) {
    if (options.format == Format::kQisa || options.format == Format::kLogical) {
      error = "checkpointing supports qasm/chp programs only";
      return std::nullopt;
    }
    if (options.print_state) {
      error = "--print-state cannot be combined with checkpointing";
      return std::nullopt;
    }
  }
  return options;
}

std::string run_program(const RunnerOptions& options,
                        const std::string& program_text, bool* interrupted) {
  switch (options.format) {
    case Format::kQasm:
      return run_circuit(options, from_qasm(program_text), interrupted);
    case Format::kChp:
      return run_circuit(options, stab::from_chp(program_text), interrupted);
    case Format::kQisa:
      return run_qisa_program(options, qcu::assemble(program_text), "qisa",
                              interrupted);
    case Format::kLogical:
      // A QASM file at the *logical* level: gates act on logical qubits,
      // the compiler lowers them to QISA, the QCU executes (Fig 4.1).
      return run_qisa_program(options, qcu::compile(from_qasm(program_text)),
                              "compiled logical", interrupted);
  }
  throw std::logic_error("unreachable");
}

int run_tool(const std::vector<std::string>& arguments, std::ostream& out,
             std::ostream& err, const volatile std::sig_atomic_t* stop) {
  std::string error;
  auto options = parse_arguments(arguments, error);
  if (!options.has_value()) {
    err << "qpf_run: " << error << "\n" << usage();
    return 2;
  }
  options->stop = stop;
  std::string text;
  if (options->input_path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(options->input_path);
    if (!file) {
      err << "qpf_run: cannot open '" << options->input_path << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  bool interrupted = false;
  try {
    out << run_program(*options, text, &interrupted);
  } catch (const QasmParseError& exception) {
    // Unparsable program text is an argument-level mistake like a bad
    // flag: same one-line diagnostic, same exit code.
    err << "qpf_run: " << exception.what() << "\n";
    return 2;
  } catch (const Error& exception) {
    err << "qpf_run: " << exception.what() << "\n";
    return 1;
  } catch (const std::exception& exception) {
    err << "qpf_run: " << exception.what() << "\n";
    return 1;
  }
  // With SIGPIPE ignored (tools/qpf_run.cpp), a reader that exited
  // early shows up as a failed stream here, after the journal tail is
  // already safe on disk — report it typed instead of dying mid-write.
  out.flush();
  if (!out) {
    const IoError io_error("stdout",
                           "write failed; output truncated (broken pipe?)");
    err << "qpf_run: " << io_error.what() << "\n";
    return 1;
  }
  if (interrupted) {
    // The in-flight shot was drained and the journal tail persisted;
    // 128+SIGINT mirrors shell convention for an interrupted process.
    err << "qpf_run: interrupted; partial results journaled\n";
    return 130;
  }
  return 0;
}

}  // namespace qpf::cli

#include "cli/runner.h"

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "arch/chp_core.h"
#include "arch/classical_fault_layer.h"
#include "arch/error_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/qx_core.h"
#include "arch/validating_layer.h"
#include "circuit/error.h"
#include "circuit/qasm.h"
#include "qcu/compiler.h"
#include "qcu/qcu.h"
#include "stabilizer/chp_format.h"

namespace qpf::cli {

namespace {

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

std::optional<Format> format_from_extension(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return std::nullopt;
  }
  const std::string extension = path.substr(dot + 1);
  if (extension == "qasm") {
    return Format::kQasm;
  }
  if (extension == "chp") {
    return Format::kChp;
  }
  if (extension == "qisa") {
    return Format::kQisa;
  }
  if (extension == "lqasm") {
    return Format::kLogical;
  }
  return std::nullopt;
}

// Accumulated robustness statistics across the shots of one run.
struct FaultSummary {
  arch::FaultTally injected;
  pf::FrameHealth health;
  std::size_t recovery_flushes = 0;
  std::size_t validator_reports = 0;

  [[nodiscard]] bool anything() const noexcept {
    return injected.total() != 0 || health.checks != 0 ||
           recovery_flushes != 0 || validator_reports != 0;
  }
};

void accumulate(FaultSummary& summary, const arch::ClassicalFaultLayer* faults,
                const arch::PauliFrameLayer* frame,
                const arch::ValidatingLayer* validator) {
  if (faults != nullptr) {
    summary.injected.dropped += faults->tally().dropped;
    summary.injected.duplicated += faults->tally().duplicated;
    summary.injected.reordered += faults->tally().reordered;
    summary.injected.readout_flips += faults->tally().readout_flips;
  }
  if (frame != nullptr) {
    const pf::FrameHealth& health = frame->frame().health();
    summary.health.checks += health.checks;
    summary.health.detected += health.detected;
    summary.health.corrected += health.corrected;
    summary.health.uncorrectable += health.uncorrectable;
    summary.health.recovery_resets += health.recovery_resets;
    summary.health.scrubs += health.scrubs;
    summary.recovery_flushes += frame->recovery_flushes();
  }
  if (validator != nullptr) {
    summary.validator_reports += validator->reports().size();
  }
}

// Assemble the layered stack and run one shot of a physical circuit,
// returning the final binary state string (q_{n-1} ... q_0).
std::string run_circuit_shot(const RunnerOptions& options,
                             const Circuit& circuit, std::uint64_t seed,
                             std::string* state_dump, FaultSummary* summary) {
  std::unique_ptr<arch::Core> core;
  arch::QxCore* qx = nullptr;
  if (options.backend == Backend::kQx) {
    auto owned = std::make_unique<arch::QxCore>(seed);
    qx = owned.get();
    core = std::move(owned);
  } else {
    core = std::make_unique<arch::ChpCore>(seed);
  }
  std::unique_ptr<arch::ErrorLayer> error;
  std::unique_ptr<arch::ClassicalFaultLayer> faults;
  std::unique_ptr<arch::PauliFrameLayer> frame;
  std::unique_ptr<arch::ValidatingLayer> validator;
  arch::Core* top = core.get();
  if (options.error_rate > 0.0) {
    error = std::make_unique<arch::ErrorLayer>(top, options.error_rate,
                                               seed ^ 0x517ULL);
    top = error.get();
  }
  if (options.classical_fault_rate > 0.0) {
    faults = std::make_unique<arch::ClassicalFaultLayer>(
        top, arch::ClassicalFaultRates::uniform(options.classical_fault_rate),
        seed ^ 0xfa017ULL);
    top = faults.get();
  }
  if (options.pauli_frame) {
    frame = std::make_unique<arch::PauliFrameLayer>(top,
                                                    options.frame_protection);
    top = frame.get();
  }
  if (options.validate) {
    validator = std::make_unique<arch::ValidatingLayer>(top, frame.get());
    top = validator.get();
  }
  const std::size_t qubits = std::max<std::size_t>(
      circuit.min_register_size(), 1);
  top->create_qubits(qubits);
  top->add(circuit);
  top->execute();
  const arch::BinaryState state = top->get_state();
  std::string bits;
  for (std::size_t q = state.size(); q-- > 0;) {
    bits += arch::to_char(state[q]);
  }
  if (state_dump != nullptr && qx != nullptr) {
    if (frame) {
      frame->flush();
    }
    *state_dump = qx->get_quantum_state()->str(1e-9);
  }
  if (summary != nullptr) {
    accumulate(*summary, faults.get(), frame.get(), validator.get());
  }
  return bits;
}

std::string run_circuit(const RunnerOptions& options, const Circuit& circuit) {
  std::ostringstream out;
  out << "program: " << circuit.num_operations() << " operations in "
      << circuit.num_slots() << " time slots over "
      << circuit.min_register_size() << " qubits\n";
  std::map<std::string, std::size_t> histogram;
  std::string state_dump;
  FaultSummary summary;
  for (std::size_t shot = 0; shot < options.shots; ++shot) {
    const std::string bits = run_circuit_shot(
        options, circuit, options.seed + shot,
        options.print_state && shot + 1 == options.shots ? &state_dump
                                                         : nullptr,
        &summary);
    ++histogram[bits];
  }
  if (options.shots == 1) {
    out << "state (q_{n-1}..q_0): |" << histogram.begin()->first << ">\n";
  } else {
    out << "histogram over " << options.shots << " shots:\n";
    for (const auto& [bits, count] : histogram) {
      out << "  |" << bits << ">  " << count << "\n";
    }
  }
  if (options.classical_fault_rate > 0.0) {
    out << "classical faults injected: " << summary.injected.dropped
        << " dropped, " << summary.injected.duplicated << " duplicated, "
        << summary.injected.reordered << " reordered, "
        << summary.injected.readout_flips << " readout flips\n";
  }
  if (options.pauli_frame &&
      options.frame_protection != pf::Protection::kNone) {
    out << "frame health (" << pf::name(options.frame_protection)
        << "): " << summary.health.checks << " checks, "
        << summary.health.detected << " detected, " << summary.health.corrected
        << " corrected, " << summary.health.uncorrectable
        << " uncorrectable, " << summary.recovery_flushes
        << " recovery flushes\n";
  }
  if (options.validate) {
    out << "validator: " << summary.validator_reports << " report(s)\n";
  }
  if (!state_dump.empty()) {
    out << "quantum state (last shot, frame flushed):\n" << state_dump;
  }
  return out.str();
}

std::string run_qisa_program(const RunnerOptions& options,
                             const std::vector<qcu::Instruction>& program,
                             const char* kind) {
  // Size the machine to the largest patch the program names.
  std::size_t slots = options.patch_slots;
  for (const qcu::Instruction& instruction : program) {
    if (instruction.op == qcu::Opcode::kMapPatch) {
      slots = std::max<std::size_t>(slots, instruction.b + 1u);
    }
  }
  std::ostringstream out;
  out << kind << " program: " << program.size() << " instructions, " << slots
      << " patch slot(s)\n";
  std::map<std::string, std::size_t> histogram;
  arch::FaultTally injected;
  for (std::size_t shot = 0; shot < options.shots; ++shot) {
    arch::ChpCore core(options.seed + shot);
    std::unique_ptr<arch::ErrorLayer> error;
    std::unique_ptr<arch::ClassicalFaultLayer> faults;
    arch::Core* pel = &core;
    if (options.error_rate > 0.0) {
      error = std::make_unique<arch::ErrorLayer>(
          pel, options.error_rate, options.seed + shot + 0x9999);
      pel = error.get();
    }
    if (options.classical_fault_rate > 0.0) {
      // No drop faults below the QCU: a swallowed ESM / readout
      // measurement violates the decoder's input contract (a logic
      // error by design).  Duplicates, reorders, and readout flips are
      // the fault kinds the decode path absorbs like ordinary noise.
      const double p = options.classical_fault_rate;
      faults = std::make_unique<arch::ClassicalFaultLayer>(
          pel, arch::ClassicalFaultRates{0.0, p, p, p},
          options.seed + shot + 0xfa017);
      pel = faults.get();
    }
    qcu::QuantumControlUnit unit(pel, slots, options.pauli_frame);
    unit.load(program);
    unit.run();
    std::string key;
    for (qcu::PatchId patch = 0; patch < slots; ++patch) {
      if (unit.symbol_table().alive(patch)) {
        key += qec::to_char(unit.logical_state(patch));
      } else {
        key += '.';
      }
    }
    ++histogram[key];
    if (faults != nullptr) {
      injected.dropped += faults->tally().dropped;
      injected.duplicated += faults->tally().duplicated;
      injected.reordered += faults->tally().reordered;
      injected.readout_flips += faults->tally().readout_flips;
    }
    if (shot + 1 == options.shots) {
      out << "stats: " << unit.stats().instructions << " instructions, "
          << unit.stats().operations_to_pel << " physical operations, "
          << unit.stats().paulis_absorbed << " Paulis absorbed, "
          << unit.stats().qec_windows << " QEC windows\n";
    }
  }
  out << "logical states over " << options.shots
      << " shot(s) (patch order, '.' = dead):\n";
  for (const auto& [key, count] : histogram) {
    out << "  " << key << "  " << count << "\n";
  }
  if (options.classical_fault_rate > 0.0) {
    out << "classical faults injected: " << injected.dropped << " dropped, "
        << injected.duplicated << " duplicated, " << injected.reordered
        << " reordered, " << injected.readout_flips << " readout flips\n";
  }
  return out.str();
}

}  // namespace

std::string usage() {
  return "usage: qpf_run [options] <program file | ->\n"
         "  --backend=chp|qx    simulation backend (default chp)\n"
         "  --format=qasm|chp|qisa|logical  program format (default: extension)\n"
         "  --pauli-frame       insert a Pauli frame layer / unit\n"
         "  --error-rate=P      symmetric depolarizing noise\n"
         "  --shots=N           repetitions (histogram output)\n"
         "  --seed=S            RNG seed (default 1)\n"
         "  --slots=N           QISA patch slots (default: from program)\n"
         "  --print-state       dump amplitudes (qx backend only)\n"
         "  --classical-fault-rate=P  drop/duplicate/reorder/readout-flip\n"
         "                      faults, each at rate P\n"
         "  --protect-frame[=parity|vote]  guard the Pauli frame records\n"
         "                      (default parity; requires --pauli-frame)\n"
         "  --validate          cross-check the Pauli frame against a\n"
         "                      shadow copy (requires --pauli-frame)\n";
}

std::optional<RunnerOptions> parse_arguments(
    const std::vector<std::string>& arguments, std::string& error) {
  RunnerOptions options;
  bool format_given = false;
  for (const std::string& argument : arguments) {
    std::string value;
    if (argument == "--pauli-frame") {
      options.pauli_frame = true;
    } else if (argument == "--print-state") {
      options.print_state = true;
    } else if (consume_prefix(argument, "--backend=", value)) {
      if (value == "chp") {
        options.backend = Backend::kChp;
      } else if (value == "qx") {
        options.backend = Backend::kQx;
      } else {
        error = "unknown backend '" + value + "'";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--format=", value)) {
      format_given = true;
      if (value == "qasm") {
        options.format = Format::kQasm;
      } else if (value == "chp") {
        options.format = Format::kChp;
      } else if (value == "qisa") {
        options.format = Format::kQisa;
      } else if (value == "logical") {
        options.format = Format::kLogical;
      } else {
        error = "unknown format '" + value + "'";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--error-rate=", value)) {
      try {
        options.error_rate = std::stod(value);
      } catch (const std::exception&) {
        error = "bad error rate '" + value + "'";
        return std::nullopt;
      }
      if (options.error_rate < 0.0 || options.error_rate > 1.0) {
        error = "error rate out of [0,1]";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--shots=", value)) {
      options.shots = std::strtoull(value.c_str(), nullptr, 10);
      if (options.shots == 0) {
        error = "shots must be positive";
        return std::nullopt;
      }
    } else if (consume_prefix(argument, "--seed=", value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (consume_prefix(argument, "--slots=", value)) {
      options.patch_slots = std::strtoull(value.c_str(), nullptr, 10);
    } else if (consume_prefix(argument, "--classical-fault-rate=", value)) {
      try {
        options.classical_fault_rate = std::stod(value);
      } catch (const std::exception&) {
        error = "bad classical fault rate '" + value + "'";
        return std::nullopt;
      }
      if (options.classical_fault_rate < 0.0 ||
          options.classical_fault_rate > 1.0) {
        error = "classical fault rate out of [0,1]";
        return std::nullopt;
      }
    } else if (argument == "--protect-frame") {
      options.frame_protection = pf::Protection::kParity;
    } else if (consume_prefix(argument, "--protect-frame=", value)) {
      if (value == "parity") {
        options.frame_protection = pf::Protection::kParity;
      } else if (value == "vote") {
        options.frame_protection = pf::Protection::kVote;
      } else {
        error = "unknown frame protection '" + value + "'";
        return std::nullopt;
      }
    } else if (argument == "--validate") {
      options.validate = true;
    } else if (!argument.empty() && argument[0] == '-' && argument != "-") {
      error = "unknown option '" + argument + "'";
      return std::nullopt;
    } else if (options.input_path.empty()) {
      options.input_path = argument;
    } else {
      error = "multiple input files";
      return std::nullopt;
    }
  }
  if (options.input_path.empty()) {
    error = "missing input file";
    return std::nullopt;
  }
  if (!format_given) {
    if (const auto format = format_from_extension(options.input_path)) {
      options.format = *format;
    }
  }
  if (options.print_state && options.backend != Backend::kQx) {
    error = "--print-state requires --backend=qx";
    return std::nullopt;
  }
  if (options.frame_protection != pf::Protection::kNone &&
      !options.pauli_frame) {
    error = "--protect-frame requires --pauli-frame";
    return std::nullopt;
  }
  if (options.validate && !options.pauli_frame) {
    error = "--validate requires --pauli-frame";
    return std::nullopt;
  }
  return options;
}

std::string run_program(const RunnerOptions& options,
                        const std::string& program_text) {
  switch (options.format) {
    case Format::kQasm:
      return run_circuit(options, from_qasm(program_text));
    case Format::kChp:
      return run_circuit(options, stab::from_chp(program_text));
    case Format::kQisa:
      return run_qisa_program(options, qcu::assemble(program_text), "qisa");
    case Format::kLogical:
      // A QASM file at the *logical* level: gates act on logical qubits,
      // the compiler lowers them to QISA, the QCU executes (Fig 4.1).
      return run_qisa_program(
          options, qcu::compile(from_qasm(program_text)), "compiled logical");
  }
  throw std::logic_error("unreachable");
}

int run_tool(const std::vector<std::string>& arguments, std::ostream& out,
             std::ostream& err) {
  std::string error;
  const auto options = parse_arguments(arguments, error);
  if (!options.has_value()) {
    err << "qpf_run: " << error << "\n" << usage();
    return 2;
  }
  std::string text;
  if (options->input_path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(options->input_path);
    if (!file) {
      err << "qpf_run: cannot open '" << options->input_path << "'\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  try {
    out << run_program(*options, text);
  } catch (const QasmParseError& exception) {
    // Unparsable program text is an argument-level mistake like a bad
    // flag: same one-line diagnostic, same exit code.
    err << "qpf_run: " << exception.what() << "\n";
    return 2;
  } catch (const Error& exception) {
    err << "qpf_run: " << exception.what() << "\n";
    return 1;
  } catch (const std::exception& exception) {
    err << "qpf_run: " << exception.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace qpf::cli

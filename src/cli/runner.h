// Library behind the qpf_run command-line tool: option parsing and the
// execution drivers for the three supported program formats (QPDO
// QASM, CHP, and QISA).  Kept as a library so the logic is unit-
// testable; tools/qpf_run.cpp is a thin main().
#pragma once

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "arch/classical_fault_layer.h"
#include "core/pauli_frame.h"

namespace qpf::cli {

enum class Backend { kChp, kQx };
enum class Format { kQasm, kChp, kQisa, kLogical };

struct RunnerOptions {
  Backend backend = Backend::kChp;
  Format format = Format::kQasm;
  bool pauli_frame = false;
  double error_rate = 0.0;
  std::size_t shots = 1;
  std::uint64_t seed = 1;
  bool print_state = false;
  std::string input_path;

  /// Patch slots for QISA programs (auto-grown to fit the program).
  std::size_t patch_slots = 1;

  /// Classical control-path fault injection (uniform rate for the
  /// drop / duplicate / reorder / readout-flip kinds).
  double classical_fault_rate = 0.0;
  /// Record-store protection for the Pauli frame layer.
  pf::Protection frame_protection = pf::Protection::kNone;
  /// Insert a ValidatingLayer above the Pauli frame layer.
  bool validate = false;

  /// Durable shot journal + aggregate checkpoint directory (qasm/chp
  /// programs).  Empty disables durability.
  std::string checkpoint_dir;
  /// Rotate the aggregate checkpoint every N completed shots.
  std::size_t checkpoint_every = 64;
  /// Continue a journaled run from checkpoint_dir; completed shots are
  /// replayed from the journal, never re-executed.
  bool resume = false;
  /// Watchdog per shot in milliseconds (0 = off).  An over-budget shot
  /// is journaled with status "timed_out", excluded from the histogram
  /// (it is cut, not completed), and the run continues; the summary
  /// reports how many shots were cut.
  std::size_t timeout_per_trial_ms = 0;
  /// Test hook: treat every Nth shot (1-based) as over budget without
  /// waiting for wall-clock time (0 = off; requires
  /// timeout_per_trial_ms != 0).  Lets tests pin the timed-out-shot
  /// journal status deterministically.
  std::size_t debug_timeout_every = 0;

  /// Supervision subsystem (PR 4; all off by default, and off means
  /// the per-shot stack — and every journal/checkpoint byte — is
  /// identical to a build without it).
  bool supervise = false;            ///< SupervisorLayer above the frame
  double deadline_slot_ns = 0.0;     ///< per-slot budget (TimingLayer)
  arch::ChaosConfig chaos{};         ///< scripted fault storms
  /// Cooperative stop flag (signal handler target).  When nonzero the
  /// run drains the in-flight shot, persists the journal tail, and
  /// reports an interrupted run (exit code 130 from run_tool).
  const volatile std::sig_atomic_t* stop = nullptr;
};

/// Parse argv-style options.  Returns std::nullopt and writes a usage
/// message to `error` on bad input.  Recognized flags:
///   --backend=chp|qx  --format=qasm|chp|qisa|logical  --pauli-frame
///   --error-rate=P    --shots=N   --seed=S    --print-state
///   --slots=N         --classical-fault-rate=P
///   --protect-frame[=parity|vote]  --validate
///   --checkpoint-dir=DIR  --checkpoint-every=N  --resume=DIR
///   --timeout-per-trial=MS  --debug-timeout-every=N
///   --supervise  --deadline-ns=NS
///   --chaos-seed=S  --chaos-gap=MIN:MAX  --chaos-kinds=LIST
///   --chaos-stall-ns=NS  --chaos-burst=N   <input file or "-">
/// The format defaults from the file extension when not given.
[[nodiscard]] std::optional<RunnerOptions> parse_arguments(
    const std::vector<std::string>& arguments, std::string& error);

/// Run a program (text already loaded) and render a human-readable
/// report.  Throws qpf::Error (QasmParseError / StackConfigError /
/// QcuError) on malformed programs or configurations.  When
/// options.stop fires mid-run, `interrupted` (if non-null) is set and
/// the report covers the shots completed before the drain.
[[nodiscard]] std::string run_program(const RunnerOptions& options,
                                      const std::string& program_text,
                                      bool* interrupted = nullptr);

/// Full tool entry point: load the file (or stdin for "-"), run,
/// print to `out`; returns the process exit code (0 success, 2 for
/// unusable arguments or unparsable programs, 130 when the stop flag
/// interrupted the run after draining, 1 for everything else).
int run_tool(const std::vector<std::string>& arguments, std::ostream& out,
             std::ostream& err,
             const volatile std::sig_atomic_t* stop = nullptr);

/// Usage text.
[[nodiscard]] std::string usage();

}  // namespace qpf::cli

// Library behind the qpf_run command-line tool: option parsing and the
// execution drivers for the three supported program formats (QPDO
// QASM, CHP, and QISA).  Kept as a library so the logic is unit-
// testable; tools/qpf_run.cpp is a thin main().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/pauli_frame.h"

namespace qpf::cli {

enum class Backend { kChp, kQx };
enum class Format { kQasm, kChp, kQisa, kLogical };

struct RunnerOptions {
  Backend backend = Backend::kChp;
  Format format = Format::kQasm;
  bool pauli_frame = false;
  double error_rate = 0.0;
  std::size_t shots = 1;
  std::uint64_t seed = 1;
  bool print_state = false;
  std::string input_path;

  /// Patch slots for QISA programs (auto-grown to fit the program).
  std::size_t patch_slots = 1;

  /// Classical control-path fault injection (uniform rate for the
  /// drop / duplicate / reorder / readout-flip kinds).
  double classical_fault_rate = 0.0;
  /// Record-store protection for the Pauli frame layer.
  pf::Protection frame_protection = pf::Protection::kNone;
  /// Insert a ValidatingLayer above the Pauli frame layer.
  bool validate = false;
};

/// Parse argv-style options.  Returns std::nullopt and writes a usage
/// message to `error` on bad input.  Recognized flags:
///   --backend=chp|qx  --format=qasm|chp|qisa|logical  --pauli-frame
///   --error-rate=P    --shots=N   --seed=S    --print-state
///   --slots=N         --classical-fault-rate=P
///   --protect-frame[=parity|vote]  --validate   <input file or "-">
/// The format defaults from the file extension when not given.
[[nodiscard]] std::optional<RunnerOptions> parse_arguments(
    const std::vector<std::string>& arguments, std::string& error);

/// Run a program (text already loaded) and render a human-readable
/// report.  Throws qpf::Error (QasmParseError / StackConfigError /
/// QcuError) on malformed programs or configurations.
[[nodiscard]] std::string run_program(const RunnerOptions& options,
                                      const std::string& program_text);

/// Full tool entry point: load the file (or stdin for "-"), run,
/// print to `out`; returns the process exit code (0 success, 2 for
/// unusable arguments or unparsable programs, 1 for everything else).
int run_tool(const std::vector<std::string>& arguments, std::ostream& out,
             std::ostream& err);

/// Usage text.
[[nodiscard]] std::string usage();

}  // namespace qpf::cli

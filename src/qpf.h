// Umbrella header: the full public API of the QPF library.
//
// Include granular headers in production code; this header exists for
// quick experiments and as a map of the library surface.
//
//   qpf::            circuit IR (gates, operations, time slots, QASM)
//   qpf::sv          dense state-vector simulation (QX substitute)
//   qpf::stab        stabilizer tableau simulation (CHP substitute)
//   qpf::pf          Pauli frames: records, frame, arbiter, schedule
//   qpf::qec         SC17, decoders, distance-d codes, noise models,
//                    lattice surgery, Steane code
//   qpf::arch        QPDO control stacks: cores, layers, experiments
//   qpf::qcu         the Quantum Control Unit, QISA and the compiler
//   qpf::stats       summary statistics and t-tests
//   qpf::cli         the qpf_run tool's engine
#pragma once

// Circuit IR.
#include "circuit/circuit.h"
#include "circuit/gate.h"
#include "circuit/operation.h"
#include "circuit/qasm.h"
#include "circuit/random.h"
#include "circuit/stats.h"

// Simulators.
#include "stabilizer/chp_format.h"
#include "stabilizer/pauli_string.h"
#include "stabilizer/tableau.h"
#include "statevector/simulator.h"

// Pauli frames (the paper's contribution).
#include "core/arbiter.h"
#include "core/pauli_frame.h"
#include "core/pauli_record.h"
#include "core/schedule.h"

// Quantum error correction.
#include "qec/biased_noise.h"
#include "qec/depolarizing.h"
#include "qec/lattice_surgery.h"
#include "qec/lut_decoder.h"
#include "qec/ninja_star.h"
#include "qec/sc17.h"
#include "qec/steane.h"
#include "qec/surface_code.h"
#include "qec/surface_code_patch.h"

// QPDO architecture.
#include "arch/biased_error_layer.h"
#include "arch/chp_core.h"
#include "arch/control_stack.h"
#include "arch/core_interface.h"
#include "arch/counter_layer.h"
#include "arch/error_layer.h"
#include "arch/layer.h"
#include "arch/ninja_star_layer.h"
#include "arch/pauli_frame_layer.h"
#include "arch/qx_core.h"
#include "arch/steane_layer.h"
#include "arch/surface_code_experiment.h"
#include "arch/testbench.h"
#include "arch/timing_layer.h"

// Quantum Control Unit.
#include "qcu/compiler.h"
#include "qcu/isa.h"
#include "qcu/qcu.h"
#include "qcu/symbol_table.h"

// Statistics.
#include "stats/summary.h"
#include "stats/ttest.h"

// Pauli records: the 2-bit per-qubit state of a Pauli frame.
//
// A record R means the physical qubit state is R |psi_ideal>.  Paper
// §3.1 shows any tracked Pauli product compresses (up to global phase)
// to one of {I, X, Z, XZ}; we store the X and Z components as bits.
//
// Mapping rules implemented here are exactly the paper's tables:
//   Table 3.2 — measurement-result modification,
//   Table 3.3 — Pauli gate tracking,
//   Table 3.4 — H and S conjugation,
//   Table 3.5 — CNOT conjugation (plus CZ and SWAP analogues).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

#include "circuit/gate.h"

namespace qpf::pf {

/// One compressed Pauli record.  Encoding: bit0 = X component,
/// bit1 = Z component, so kXZ == kX | kZ.
enum class PauliRecord : std::uint8_t {
  kI = 0b00,
  kX = 0b01,
  kZ = 0b10,
  kXZ = 0b11,
};

[[nodiscard]] constexpr bool has_x(PauliRecord r) noexcept {
  return (static_cast<std::uint8_t>(r) & 0b01) != 0;
}

[[nodiscard]] constexpr bool has_z(PauliRecord r) noexcept {
  return (static_cast<std::uint8_t>(r) & 0b10) != 0;
}

[[nodiscard]] constexpr PauliRecord make_record(bool x, bool z) noexcept {
  return static_cast<PauliRecord>((x ? 0b01 : 0) | (z ? 0b10 : 0));
}

/// Table 3.2: an X component inverts a Z-basis measurement result.
/// `raw` is the classical bit read from the device; returns the
/// corrected bit.
[[nodiscard]] constexpr bool map_measurement(PauliRecord r, bool raw) noexcept {
  return raw != has_x(r);
}

/// Table 3.3: track a Pauli gate into the record (record := P * record,
/// global phase dropped; Y tracks as both components).
[[nodiscard]] constexpr PauliRecord track_pauli(PauliRecord r,
                                                GateType pauli) noexcept {
  switch (pauli) {
    case GateType::kI:
      return r;
    case GateType::kX:
      return make_record(!has_x(r), has_z(r));
    case GateType::kZ:
      return make_record(has_x(r), !has_z(r));
    case GateType::kY:
      return make_record(!has_x(r), !has_z(r));
    default:
      return r;  // non-Pauli gates are not tracked here
  }
}

/// Table 3.4 (H row): conjugation by Hadamard swaps X and Z components.
[[nodiscard]] constexpr PauliRecord map_h(PauliRecord r) noexcept {
  return make_record(has_z(r), has_x(r));
}

/// Table 3.4 (S row): S X S† = Y ~ XZ, S Z S† = Z.  At the record level
/// S and S† act identically (they differ only in dropped phases).
[[nodiscard]] constexpr PauliRecord map_s(PauliRecord r) noexcept {
  return make_record(has_x(r), has_z(r) != has_x(r));
}

/// Table 3.5: CNOT conjugation; X on the control propagates to the
/// target, Z on the target propagates to the control.
[[nodiscard]] constexpr std::pair<PauliRecord, PauliRecord> map_cnot(
    PauliRecord control, PauliRecord target) noexcept {
  const bool xc = has_x(control);
  const bool zc = has_z(control);
  const bool xt = has_x(target);
  const bool zt = has_z(target);
  return {make_record(xc, zc != zt), make_record(xt != xc, zt)};
}

/// CZ conjugation: X_c -> X_c Z_t and X_t -> Z_c X_t.
[[nodiscard]] constexpr std::pair<PauliRecord, PauliRecord> map_cz(
    PauliRecord control, PauliRecord target) noexcept {
  const bool xc = has_x(control);
  const bool zc = has_z(control);
  const bool xt = has_x(target);
  const bool zt = has_z(target);
  return {make_record(xc, zc != xt), make_record(xt, zt != xc)};
}

/// SWAP conjugation: exchange the records.
[[nodiscard]] constexpr std::pair<PauliRecord, PauliRecord> map_swap(
    PauliRecord a, PauliRecord b) noexcept {
  return {b, a};
}

/// "I", "X", "Z", or "XZ".
[[nodiscard]] constexpr std::string_view name(PauliRecord r) noexcept {
  switch (r) {
    case PauliRecord::kI:
      return "I";
    case PauliRecord::kX:
      return "X";
    case PauliRecord::kZ:
      return "Z";
    case PauliRecord::kXZ:
      return "XZ";
  }
  return "?";
}

/// All records, for exhaustive table-driven tests.
inline constexpr PauliRecord kAllRecords[] = {PauliRecord::kI, PauliRecord::kX,
                                              PauliRecord::kZ,
                                              PauliRecord::kXZ};

}  // namespace qpf::pf

// Hardware-level model of the Pauli Frame Unit and the Pauli arbiter
// (thesis §3.5.2, Figs 3.11 / 3.12).
//
// The arbiter sits between the Quantum Control Unit's execution
// controller and the Physical Execution Layer (PEL).  It receives one
// operation at a time, decides the route (Fig 3.12 a–e), drives the PFU
// record updates, and forwards the physical operations to a PEL sink.
// Measurement results travel the opposite way and are corrected by the
// PFU before reaching the rest of the QCU.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/pauli_frame.h"

namespace qpf::pf {

/// Routing decision for one submitted operation (Fig 3.12).
enum class Route : std::uint8_t {
  kResetBoth,      ///< (a) reset: forwarded to PEL, record set to I
  kMeasureToPel,   ///< (b) measurement: forwarded; result mapped on return
  kPauliToPfu,     ///< (c) Pauli gate: absorbed, nothing reaches the PEL
  kCliffordBoth,   ///< (d) Clifford: record mapped, gate forwarded
  kFlushThenPel,   ///< (e) non-Clifford: flush gates emitted, then the gate
};

[[nodiscard]] constexpr std::string_view name(Route r) noexcept {
  switch (r) {
    case Route::kResetBoth:
      return "reset-both";
    case Route::kMeasureToPel:
      return "measure-to-pel";
    case Route::kPauliToPfu:
      return "pauli-to-pfu";
    case Route::kCliffordBoth:
      return "clifford-both";
    case Route::kFlushThenPel:
      return "flush-then-pel";
  }
  return "?";
}

/// One arbiter decision, for datapath verification.
struct TraceEntry {
  Operation op;
  Route route;
  /// Operations actually sent to the PEL for this submission, in order
  /// (flush gates first for route kFlushThenPel).
  std::vector<Operation> forwarded;
};

/// The Pauli Frame Unit: PF data (the records) plus PF logic (the
/// mapping tables).  A thin facade over PauliFrame named to match the
/// architecture diagram.
class PauliFrameUnit {
 public:
  explicit PauliFrameUnit(std::size_t num_qubits) : frame_(num_qubits) {}

  [[nodiscard]] PauliFrame& frame() noexcept { return frame_; }
  [[nodiscard]] const PauliFrame& frame() const noexcept { return frame_; }

  /// Fig 3.12(a) step 3: the record of a freshly reset qubit becomes I.
  void process_reset(Qubit q) { frame_.set_record(q, PauliRecord::kI); }

  /// Fig 3.12(b) step 4: map a raw measurement result.
  [[nodiscard]] bool map_measurement_result(Qubit q, bool raw) const {
    return frame_.correct_measurement(q, raw);
  }

 private:
  PauliFrame frame_;
};

/// The arbiter (Fig 3.12).  The PEL is any callable receiving the
/// forwarded operations.
class PauliArbiter {
 public:
  using PelSink = std::function<void(const Operation&)>;

  /// trace_enabled controls whether every decision is recorded; disable
  /// it in long simulations.
  PauliArbiter(PauliFrameUnit& pfu, PelSink pel, bool trace_enabled = true);

  /// Submit one operation from the execution controller.  Returns the
  /// route taken.
  Route submit(const Operation& op);

  /// Submit a whole circuit in program order.
  void submit(const Circuit& circuit);

  /// Measurement-result return path: raw device bit in, corrected bit
  /// out (Fig 3.12(b) steps 3–5).
  [[nodiscard]] bool on_measurement_result(Qubit q, bool raw) const {
    return pfu_.map_measurement_result(q, raw);
  }

  [[nodiscard]] const std::vector<TraceEntry>& trace() const noexcept {
    return trace_;
  }
  void clear_trace() noexcept { trace_.clear(); }

 private:
  void forward(const Operation& op, std::vector<Operation>* record);

  PauliFrameUnit& pfu_;
  PelSink pel_;
  bool trace_enabled_;
  std::vector<TraceEntry> trace_;
};

}  // namespace qpf::pf

// The Pauli frame: one Pauli record per qubit plus the stream-rewriting
// logic of Table 3.1 / 5.7.
//
// process() consumes a circuit and produces the circuit that actually
// reaches the physical execution layer: Pauli gates are absorbed into
// records, Clifford gates map the records and pass through, preparation
// resets the record, measurement passes through (results are corrected
// afterwards via correct_measurement()), and non-Clifford gates force a
// flush of the pending records onto the qubits first.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/pauli_record.h"

namespace qpf::pf {

/// Counters describing what a frame absorbed while processing circuits
/// (the Fig 5.25 / 5.26 "saved gates / time slots" statistics).
struct FrameStats {
  std::size_t input_gates = 0;
  std::size_t output_gates = 0;
  std::size_t paulis_absorbed = 0;
  std::size_t flush_gates_emitted = 0;
  std::size_t input_slots = 0;
  std::size_t output_slots = 0;

  /// May be negative: flushes can emit more gates than were absorbed.
  [[nodiscard]] double gates_saved_fraction() const noexcept {
    return input_gates == 0
               ? 0.0
               : (static_cast<double>(input_gates) -
                  static_cast<double>(output_gates)) /
                     static_cast<double>(input_gates);
  }
  [[nodiscard]] double slots_saved_fraction() const noexcept {
    return input_slots == 0
               ? 0.0
               : (static_cast<double>(input_slots) -
                  static_cast<double>(output_slots)) /
                     static_cast<double>(input_slots);
  }
};

class PauliFrame {
 public:
  /// All records start at I.
  explicit PauliFrame(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const noexcept {
    return records_.size();
  }

  [[nodiscard]] PauliRecord record(Qubit q) const { return records_.at(q); }
  void set_record(Qubit q, PauliRecord r) { records_.at(q) = r; }

  /// Track a Pauli gate without touching hardware (Table 3.3).
  void track(GateType pauli, Qubit q);

  /// Conjugate the records through a Clifford gate (Tables 3.4 / 3.5);
  /// the caller still executes the gate on the qubits.
  void apply_clifford(const Operation& op);

  /// Rewrite a circuit per Table 3.1, updating records.  Slot structure
  /// is preserved where possible; slots that become empty are dropped
  /// (those are the "saved time slots").
  [[nodiscard]] Circuit process(const Circuit& circuit);

  /// Correct a raw measurement bit using qubit q's record (Table 3.2).
  [[nodiscard]] bool correct_measurement(Qubit q, bool raw) const {
    return map_measurement(records_.at(q), raw);
  }

  /// Pending Pauli gates for qubit q, as operations, and reset the
  /// record to I.  (X before Z when both are pending; order only affects
  /// global phase.)
  [[nodiscard]] std::vector<Operation> flush(Qubit q);

  /// Flush every record; returns the correction circuit to execute.
  [[nodiscard]] Circuit flush_all();

  /// True if every record is I.
  [[nodiscard]] bool clean() const noexcept;

  [[nodiscard]] const FrameStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// "0:I 1:XZ ..." rendering for diagnostics.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<PauliRecord> records_;
  FrameStats stats_;
};

}  // namespace qpf::pf

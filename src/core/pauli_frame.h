// The Pauli frame: one Pauli record per qubit plus the stream-rewriting
// logic of Table 3.1 / 5.7.
//
// process() consumes a circuit and produces the circuit that actually
// reaches the physical execution layer: Pauli gates are absorbed into
// records, Clifford gates map the records and pass through, preparation
// resets the record, measurement passes through (results are corrected
// afterwards via correct_measurement()), and non-Clifford gates force a
// flush of the pending records onto the qubits first.
//
// Classical-fault hardening: the record store can optionally be guarded
// against corruption of the frame memory itself (a *classical* fault,
// distinct from the quantum noise the frame exists to track):
//   Protection::kParity — one parity bit per record; detects any
//     single-bit record flip but cannot repair it,
//   Protection::kVote   — two shadow banks + majority vote; repairs any
//     single-bank corruption in place.
// A detected-but-uncorrectable record is recovered by resetting it to I
// (the record half of the Table 3.1 flush): the lost Pauli becomes an
// ordinary physical error for QEC to absorb instead of silently
// corrupting every downstream Clifford conjugation.  All verification
// traffic is counted in FrameHealth.  With Protection::kNone the frame
// is bit-identical to the unguarded implementation.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.h"
#include "core/pauli_record.h"
#include "journal/snapshot.h"

namespace qpf::pf {

/// Counters describing what a frame absorbed while processing circuits
/// (the Fig 5.25 / 5.26 "saved gates / time slots" statistics).
struct FrameStats {
  std::size_t input_gates = 0;
  std::size_t output_gates = 0;
  std::size_t paulis_absorbed = 0;
  std::size_t flush_gates_emitted = 0;
  std::size_t input_slots = 0;
  std::size_t output_slots = 0;

  /// May be negative: flushes can emit more gates than were absorbed.
  [[nodiscard]] double gates_saved_fraction() const noexcept {
    return input_gates == 0
               ? 0.0
               : (static_cast<double>(input_gates) -
                  static_cast<double>(output_gates)) /
                     static_cast<double>(input_gates);
  }
  [[nodiscard]] double slots_saved_fraction() const noexcept {
    return input_slots == 0
               ? 0.0
               : (static_cast<double>(input_slots) -
                  static_cast<double>(output_slots)) /
                     static_cast<double>(input_slots);
  }
};

/// Record-store protection scheme against classical memory faults.
enum class Protection : std::uint8_t {
  kNone,    ///< plain records, zero overhead
  kParity,  ///< parity-guarded records: detect-only
  kVote,    ///< triplicated records + majority vote: detect and correct
};

[[nodiscard]] constexpr std::string_view name(Protection p) noexcept {
  switch (p) {
    case Protection::kNone:
      return "none";
    case Protection::kParity:
      return "parity";
    case Protection::kVote:
      return "vote";
  }
  return "?";
}

/// Health report of a guarded record store.
struct FrameHealth {
  std::size_t checks = 0;           ///< guarded record verifications
  std::size_t detected = 0;         ///< corrupted records detected
  std::size_t corrected = 0;        ///< repaired by majority vote
  std::size_t uncorrectable = 0;    ///< detected but unrepairable
  std::size_t recovery_resets = 0;  ///< records recovered by reset to I
  std::size_t scrubs = 0;           ///< completed scrub() passes
};

class PauliFrame {
 public:
  /// All records start at I.
  explicit PauliFrame(std::size_t num_qubits,
                      Protection protection = Protection::kNone);

  [[nodiscard]] std::size_t num_qubits() const noexcept {
    return records_.size();
  }

  [[nodiscard]] Protection protection() const noexcept { return protection_; }

  /// Guarded read: under kParity / kVote this verifies (and may repair
  /// or recover) the record before returning it.
  [[nodiscard]] PauliRecord record(Qubit q) const { return load(q); }
  void set_record(Qubit q, PauliRecord r) { store(q, r); }

  /// Track a Pauli gate without touching hardware (Table 3.3).
  void track(GateType pauli, Qubit q);

  /// Conjugate the records through a Clifford gate (Tables 3.4 / 3.5);
  /// the caller still executes the gate on the qubits.
  void apply_clifford(const Operation& op);

  /// Rewrite a circuit per Table 3.1, updating records.  Slot structure
  /// is preserved where possible; slots that become empty are dropped
  /// (those are the "saved time slots").
  [[nodiscard]] Circuit process(const Circuit& circuit);

  /// Correct a raw measurement bit using qubit q's record (Table 3.2).
  [[nodiscard]] bool correct_measurement(Qubit q, bool raw) const {
    return map_measurement(load(q), raw);
  }

  /// Pending Pauli gates for qubit q, as operations, and reset the
  /// record to I.  (X before Z when both are pending; order only affects
  /// global phase.)
  [[nodiscard]] std::vector<Operation> flush(Qubit q);

  /// Flush every record; returns the correction circuit to execute.
  [[nodiscard]] Circuit flush_all();

  /// True if every record is I.
  [[nodiscard]] bool clean() const noexcept;

  /// Verify every record against its guard in one pass (a memory
  /// scrubbing sweep).  Returns the number of corrupted records
  /// detected during this pass.  No-op under Protection::kNone.
  std::size_t scrub();

  /// Fault injection: overwrite the *primary* record bank only, leaving
  /// guards and shadow banks stale — exactly what a bit flip in the
  /// frame memory does.  Used by tests and fault campaigns.
  void corrupt_record(Qubit q, PauliRecord r) { records_.at(q) = r; }

  [[nodiscard]] const FrameHealth& health() const noexcept { return health_; }
  void reset_health() noexcept { health_ = {}; }

  [[nodiscard]] const FrameStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// "0:I 1:XZ ..." rendering for diagnostics.
  [[nodiscard]] std::string str() const;

  // --- Snapshot / restore (crash-safe experiment engine) -------------
  /// Serialize every record bank, the guards, the protection mode, and
  /// the health / absorption counters.  The banks are saved verbatim
  /// (no verification pass), so even a frame carrying latent corruption
  /// round-trips bit-identically.
  void save(journal::SnapshotWriter& out) const;

  /// Rebuild a frame from a save() stream.  Throws qpf::CheckpointError
  /// on corruption, truncation, or an invalid protection byte.
  [[nodiscard]] static PauliFrame load(journal::SnapshotReader& in);

 private:
  /// Verified read.  Self-healing: under kVote a minority bank is
  /// rewritten, under kParity a mismatch resets the record to I.  The
  /// storage and health counters are mutable so guarded reads stay
  /// usable from const accessors.
  PauliRecord load(Qubit q) const;

  /// Write-through to every bank and guard.
  void store(Qubit q, PauliRecord r) const;

  Protection protection_;
  mutable std::vector<PauliRecord> records_;  ///< primary bank
  mutable std::vector<std::uint8_t> guard_;   ///< parity bits (kParity)
  mutable std::vector<PauliRecord> bank_b_;   ///< shadow banks (kVote)
  mutable std::vector<PauliRecord> bank_c_;
  mutable FrameHealth health_;
  FrameStats stats_;
};

}  // namespace qpf::pf

// Timing model for the QEC schedule with and without a Pauli frame
// (thesis Fig 3.3 and the analytical model of §5.3.2, Eqs 5.5–5.12).
#pragma once

#include <cstddef>

namespace qpf::pf {

/// Parameters of one QEC window.
struct ScheduleParams {
  std::size_t distance = 3;        ///< surface-code distance d
  std::size_t ts_esm = 8;          ///< time slots per ESM round (Table 5.8)
  std::size_t esm_rounds = 2;      ///< ESM rounds per window (d - 1 in §5.3)
  std::size_t decode_slots = 0;    ///< decoder latency, in time-slot units
  bool pauli_frame = false;        ///< corrections tracked classically?
};

/// Time slots consumed by one window (Eq 5.6–5.9).  Without a Pauli
/// frame a window with corrections spends one extra slot applying them;
/// with a Pauli frame tscorrections == 0 always.
[[nodiscard]] constexpr std::size_t window_slots(const ScheduleParams& p,
                                                 bool has_corrections) noexcept {
  const std::size_t rounds = p.esm_rounds * p.ts_esm;
  const std::size_t corrections =
      (!p.pauli_frame && has_corrections) ? 1 : 0;
  return rounds + corrections;
}

/// Wall-clock slots for one window including decoder stall (Fig 3.3).
/// Without a Pauli frame the decoder can only start once the window's
/// syndromes are in, and the corrections can only be applied after it
/// finishes: latency = ESM + decode + correction slot (Fig 3.3a).
/// With a Pauli frame the decoder works concurrently with the next
/// window's ESM, so the sustained window latency is
/// max(ESM, decode) (Fig 3.3b).
[[nodiscard]] constexpr std::size_t window_latency(const ScheduleParams& p,
                                                   bool has_corrections) noexcept {
  const std::size_t esm = p.esm_rounds * p.ts_esm;
  if (p.pauli_frame) {
    return p.decode_slots > esm ? p.decode_slots : esm;
  }
  return esm + p.decode_slots + (has_corrections ? 1 : 0);
}

/// Eq 5.5: the proportionality estimate P_L ∝ ts_window / d, with the
/// constant left to the caller.
[[nodiscard]] constexpr double ler_estimate(const ScheduleParams& p,
                                            bool has_corrections) noexcept {
  return static_cast<double>(window_slots(p, has_corrections)) /
         static_cast<double>(p.distance);
}

/// Eq 5.12: upper bound on the relative LER improvement a Pauli frame
/// can deliver, 1 / ((d-1) * tsESM + 1).  Converges to 0 for large d.
[[nodiscard]] constexpr double upper_bound_relative_improvement(
    std::size_t distance, std::size_t ts_esm) noexcept {
  return 1.0 /
         (static_cast<double>((distance - 1) * ts_esm) + 1.0);
}

// --- Deadline model (PR 4) -------------------------------------------
//
// The watchdog in arch/timing_layer.h checks *modeled* nanoseconds
// against per-slot and per-ESM-round budgets.  The helpers below tie
// those budgets to the schedule parameters above, so experiments can
// derive a budget ("the round deadline is the ESM duration plus 10 %
// slack") instead of hard-coding magic nanosecond counts.

/// Modeled duration of one ESM round: ts_esm slots, each bounded by the
/// slowest operation (`worst_slot_ns`, typically the measurement), plus
/// any classical stall debt accrued during the round.
[[nodiscard]] constexpr double esm_round_ns(std::size_t ts_esm,
                                            double worst_slot_ns,
                                            double stall_ns = 0.0) noexcept {
  return static_cast<double>(ts_esm) * worst_slot_ns + stall_ns;
}

/// A round budget with fractional slack over the fault-free round
/// duration: slack 0.1 tolerates 10 % of stall before the watchdog
/// trips.
[[nodiscard]] constexpr double round_budget_ns(std::size_t ts_esm,
                                               double worst_slot_ns,
                                               double slack) noexcept {
  return esm_round_ns(ts_esm, worst_slot_ns) * (1.0 + slack);
}

/// Headroom left in a budget after a round of the given duration;
/// negative means the deadline was missed (the watchdog counts an
/// overrun and the next decode is skipped).
[[nodiscard]] constexpr double deadline_headroom_ns(
    double budget_ns, double round_ns) noexcept {
  return budget_ns - round_ns;
}

/// Largest per-round stall the budget tolerates before a decode is
/// skipped — the chaos harness uses this to script storms that sit
/// just above or just below the degrade threshold.
[[nodiscard]] constexpr double max_tolerated_stall_ns(
    double budget_ns, std::size_t ts_esm, double worst_slot_ns) noexcept {
  return budget_ns - esm_round_ns(ts_esm, worst_slot_ns);
}

}  // namespace qpf::pf

#include "core/pauli_frame.h"

#include "circuit/bug_plant.h"
#include "circuit/error.h"

namespace qpf::pf {

namespace {

[[nodiscard]] constexpr std::uint8_t parity_of(PauliRecord r) noexcept {
  return static_cast<std::uint8_t>(has_x(r) != has_z(r) ? 1 : 0);
}

}  // namespace

PauliFrame::PauliFrame(std::size_t num_qubits, Protection protection)
    : protection_(protection), records_(num_qubits, PauliRecord::kI) {
  if (num_qubits == 0) {
    throw StackConfigError("PauliFrame", "zero qubits");
  }
  switch (protection_) {
    case Protection::kNone:
      break;
    case Protection::kParity:
      guard_.assign(num_qubits, 0);
      break;
    case Protection::kVote:
      bank_b_.assign(num_qubits, PauliRecord::kI);
      bank_c_.assign(num_qubits, PauliRecord::kI);
      break;
  }
}

PauliRecord PauliFrame::load(Qubit q) const {
  if (protection_ == Protection::kNone) {
    return records_.at(q);  // unguarded hot path
  }
  ++health_.checks;
  if (protection_ == Protection::kParity) {
    const PauliRecord r = records_.at(q);
    if (parity_of(r) == guard_[q]) {
      return r;
    }
    // Detected a record flip; parity cannot tell which bit, so recover
    // via the flush rule: the record becomes I and the lost Pauli turns
    // into a physical error for QEC.
    ++health_.detected;
    ++health_.uncorrectable;
    ++health_.recovery_resets;
    records_[q] = PauliRecord::kI;
    guard_[q] = 0;
    return PauliRecord::kI;
  }
  // Protection::kVote — majority over three banks.
  const PauliRecord a = records_.at(q);
  const PauliRecord b = bank_b_[q];
  const PauliRecord c = bank_c_[q];
  if (a == b && b == c) {
    return a;
  }
  ++health_.detected;
  if (a == b || a == c) {
    ++health_.corrected;
    bank_b_[q] = a;
    bank_c_[q] = a;
    return a;
  }
  if (b == c) {
    ++health_.corrected;
    records_[q] = b;
    return b;
  }
  // All three banks disagree: unrepairable, recover via reset to I.
  ++health_.uncorrectable;
  ++health_.recovery_resets;
  records_[q] = PauliRecord::kI;
  bank_b_[q] = PauliRecord::kI;
  bank_c_[q] = PauliRecord::kI;
  return PauliRecord::kI;
}

void PauliFrame::store(Qubit q, PauliRecord r) const {
  records_.at(q) = r;
  switch (protection_) {
    case Protection::kNone:
      break;
    case Protection::kParity:
      guard_[q] = parity_of(r);
      break;
    case Protection::kVote:
      bank_b_[q] = r;
      bank_c_[q] = r;
      break;
  }
}

std::size_t PauliFrame::scrub() {
  const std::size_t before = health_.detected;
  if (protection_ != Protection::kNone) {
    for (Qubit q = 0; q < records_.size(); ++q) {
      (void)load(q);
    }
    ++health_.scrubs;
  }
  return health_.detected - before;
}

void PauliFrame::track(GateType pauli, Qubit q) {
  if (!is_pauli(pauli)) {
    throw StackConfigError("PauliFrame", "track: not a Pauli gate");
  }
  store(q, track_pauli(load(q), pauli));
}

void PauliFrame::apply_clifford(const Operation& op) {
  switch (op.gate()) {
    case GateType::kH:
      if (plant::bug(1)) {  // mutation hook: drop the Table 3.4 H row
        store(op.qubit(0), load(op.qubit(0)));
        return;
      }
      store(op.qubit(0), map_h(load(op.qubit(0))));
      return;
    case GateType::kS:
    case GateType::kSdag:
      if (plant::bug(2)) {  // mutation hook: wrong Table 3.4 S row
        store(op.qubit(0), load(op.qubit(0)));
        return;
      }
      store(op.qubit(0), map_s(load(op.qubit(0))));
      return;
    case GateType::kCnot: {
      if (plant::bug(3)) {  // mutation hook: Table 3.5 operands reversed
        const auto [rt, rc] = map_cnot(load(op.target()), load(op.control()));
        store(op.control(), rc);
        store(op.target(), rt);
        return;
      }
      const auto [rc, rt] = map_cnot(load(op.control()), load(op.target()));
      store(op.control(), rc);
      store(op.target(), rt);
      return;
    }
    case GateType::kCz: {
      const auto [rc, rt] = map_cz(load(op.control()), load(op.target()));
      store(op.control(), rc);
      store(op.target(), rt);
      return;
    }
    case GateType::kSwap: {
      const auto [ra, rb] = map_swap(load(op.control()), load(op.target()));
      store(op.control(), ra);
      store(op.target(), rb);
      return;
    }
    default:
      throw StackConfigError("PauliFrame", "unsupported Clifford: " + op.str());
  }
}

std::vector<Operation> PauliFrame::flush(Qubit q) {
  std::vector<Operation> out;
  const PauliRecord r = load(q);
  if (has_x(r)) {
    out.emplace_back(GateType::kX, q);
  }
  if (has_z(r)) {
    out.emplace_back(GateType::kZ, q);
  }
  store(q, PauliRecord::kI);
  return out;
}

Circuit PauliFrame::flush_all() {
  Circuit out{"pauli-frame-flush"};
  for (Qubit q = 0; q < records_.size(); ++q) {
    for (const Operation& op : flush(q)) {
      out.append(op);
      ++stats_.flush_gates_emitted;
    }
  }
  return out;
}

bool PauliFrame::clean() const noexcept {
  for (Qubit q = 0; q < records_.size(); ++q) {
    if (load(q) != PauliRecord::kI) {
      return false;
    }
  }
  return true;
}

Circuit PauliFrame::process(const Circuit& circuit) {
  Circuit out{circuit.name()};
  stats_.input_slots += circuit.num_slots();
  stats_.input_gates += circuit.num_operations();
  for (const TimeSlot& slot : circuit) {
    // Flush operations for non-Clifford targets in this slot must land
    // on the qubits *before* the slot executes.
    Circuit flush_ops;
    TimeSlot forwarded;
    for (const Operation& op : slot) {
      switch (category(op.gate())) {
        case GateCategory::kInitialization:
          if (!plant::bug(5)) {  // mutation hook: reset keeps the record
            store(op.qubit(0), PauliRecord::kI);
          }
          forwarded.add(op);
          break;
        case GateCategory::kMeasurement:
          forwarded.add(op);
          break;
        case GateCategory::kPauli:
          if (op.gate() != GateType::kI) {
            track(op.gate(), op.qubit(0));
          }
          ++stats_.paulis_absorbed;
          break;
        case GateCategory::kClifford:
          apply_clifford(op);
          forwarded.add(op);
          break;
        case GateCategory::kNonClifford:
          if (plant::bug(4)) {  // mutation hook: skip the Table 3.1 flush
            forwarded.add(op);
            break;
          }
          for (int i = 0; i < op.arity(); ++i) {
            for (const Operation& pending : flush(op.qubit(i))) {
              flush_ops.append(pending);
              ++stats_.flush_gates_emitted;
            }
          }
          forwarded.add(op);
          break;
      }
    }
    out.append_circuit(flush_ops);
    out.append_slot(std::move(forwarded));
  }
  stats_.output_slots += out.num_slots();
  stats_.output_gates += out.num_operations();
  return out;
}

namespace {

void write_bank(journal::SnapshotWriter& out,
                const std::vector<PauliRecord>& bank) {
  out.write_size(bank.size());
  if (!bank.empty()) {
    static_assert(sizeof(PauliRecord) == 1);
    out.write_bytes(bank.data(), bank.size());
  }
}

std::vector<PauliRecord> read_bank(journal::SnapshotReader& in) {
  const std::size_t size = in.read_size();
  if (size > (std::size_t{1} << 32)) {
    throw CheckpointError("pauli frame snapshot: implausible bank size " +
                          std::to_string(size));
  }
  std::vector<PauliRecord> bank(size);
  if (size != 0) {
    in.read_bytes(bank.data(), size);
  }
  for (const PauliRecord r : bank) {
    if (static_cast<std::uint8_t>(r) > 0b11) {
      throw CheckpointError("pauli frame snapshot: invalid record byte");
    }
  }
  return bank;
}

}  // namespace

void PauliFrame::save(journal::SnapshotWriter& out) const {
  out.tag("pauli-frame");
  out.write_u8(static_cast<std::uint8_t>(protection_));
  if (plant::bug(10) && !records_.empty()) {
    // mutation hook: qubit 0's record is lost in the snapshot
    std::vector<PauliRecord> dropped = records_;
    dropped[0] = PauliRecord::kI;
    write_bank(out, dropped);
  } else {
    write_bank(out, records_);
  }
  out.write_size(guard_.size());
  if (!guard_.empty()) {
    out.write_bytes(guard_.data(), guard_.size());
  }
  write_bank(out, bank_b_);
  write_bank(out, bank_c_);
  out.write_size(health_.checks);
  out.write_size(health_.detected);
  out.write_size(health_.corrected);
  out.write_size(health_.uncorrectable);
  out.write_size(health_.recovery_resets);
  out.write_size(health_.scrubs);
  out.write_size(stats_.input_gates);
  out.write_size(stats_.output_gates);
  out.write_size(stats_.paulis_absorbed);
  out.write_size(stats_.flush_gates_emitted);
  out.write_size(stats_.input_slots);
  out.write_size(stats_.output_slots);
}

PauliFrame PauliFrame::load(journal::SnapshotReader& in) {
  in.expect_tag("pauli-frame");
  const std::uint8_t protection_byte = in.read_u8();
  if (protection_byte > static_cast<std::uint8_t>(Protection::kVote)) {
    throw CheckpointError("pauli frame snapshot: invalid protection byte " +
                          std::to_string(protection_byte));
  }
  const auto protection = static_cast<Protection>(protection_byte);
  std::vector<PauliRecord> records = read_bank(in);
  const std::size_t guard_size = in.read_size();
  std::vector<std::uint8_t> guard(guard_size);
  if (guard_size != 0) {
    if (guard_size > (std::size_t{1} << 32)) {
      throw CheckpointError("pauli frame snapshot: implausible guard size");
    }
    in.read_bytes(guard.data(), guard_size);
  }
  std::vector<PauliRecord> bank_b = read_bank(in);
  std::vector<PauliRecord> bank_c = read_bank(in);

  PauliFrame frame(records.size(), protection);
  if (guard.size() != frame.guard_.size() ||
      bank_b.size() != frame.bank_b_.size() ||
      bank_c.size() != frame.bank_c_.size()) {
    throw CheckpointError(
        "pauli frame snapshot: bank sizes inconsistent with protection mode");
  }
  frame.records_ = std::move(records);
  frame.guard_ = std::move(guard);
  frame.bank_b_ = std::move(bank_b);
  frame.bank_c_ = std::move(bank_c);
  frame.health_.checks = in.read_size();
  frame.health_.detected = in.read_size();
  frame.health_.corrected = in.read_size();
  frame.health_.uncorrectable = in.read_size();
  frame.health_.recovery_resets = in.read_size();
  frame.health_.scrubs = in.read_size();
  frame.stats_.input_gates = in.read_size();
  frame.stats_.output_gates = in.read_size();
  frame.stats_.paulis_absorbed = in.read_size();
  frame.stats_.flush_gates_emitted = in.read_size();
  frame.stats_.input_slots = in.read_size();
  frame.stats_.output_slots = in.read_size();
  return frame;
}

std::string PauliFrame::str() const {
  std::string out;
  for (std::size_t q = 0; q < records_.size(); ++q) {
    if (q != 0) {
      out += ' ';
    }
    out += std::to_string(q);
    out += ':';
    out += name(records_[q]);
  }
  return out;
}

}  // namespace qpf::pf

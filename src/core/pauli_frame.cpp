#include "core/pauli_frame.h"

#include <stdexcept>

namespace qpf::pf {

PauliFrame::PauliFrame(std::size_t num_qubits)
    : records_(num_qubits, PauliRecord::kI) {
  if (num_qubits == 0) {
    throw std::invalid_argument("PauliFrame: zero qubits");
  }
}

void PauliFrame::track(GateType pauli, Qubit q) {
  if (!is_pauli(pauli)) {
    throw std::invalid_argument("PauliFrame::track: not a Pauli gate");
  }
  records_.at(q) = track_pauli(records_.at(q), pauli);
}

void PauliFrame::apply_clifford(const Operation& op) {
  switch (op.gate()) {
    case GateType::kH:
      records_.at(op.qubit(0)) = map_h(records_.at(op.qubit(0)));
      return;
    case GateType::kS:
    case GateType::kSdag:
      records_.at(op.qubit(0)) = map_s(records_.at(op.qubit(0)));
      return;
    case GateType::kCnot: {
      const auto [rc, rt] =
          map_cnot(records_.at(op.control()), records_.at(op.target()));
      records_.at(op.control()) = rc;
      records_.at(op.target()) = rt;
      return;
    }
    case GateType::kCz: {
      const auto [rc, rt] =
          map_cz(records_.at(op.control()), records_.at(op.target()));
      records_.at(op.control()) = rc;
      records_.at(op.target()) = rt;
      return;
    }
    case GateType::kSwap: {
      const auto [ra, rb] =
          map_swap(records_.at(op.control()), records_.at(op.target()));
      records_.at(op.control()) = ra;
      records_.at(op.target()) = rb;
      return;
    }
    default:
      throw std::invalid_argument("PauliFrame: unsupported Clifford: " +
                                  op.str());
  }
}

std::vector<Operation> PauliFrame::flush(Qubit q) {
  std::vector<Operation> out;
  const PauliRecord r = records_.at(q);
  if (has_x(r)) {
    out.emplace_back(GateType::kX, q);
  }
  if (has_z(r)) {
    out.emplace_back(GateType::kZ, q);
  }
  records_.at(q) = PauliRecord::kI;
  return out;
}

Circuit PauliFrame::flush_all() {
  Circuit out{"pauli-frame-flush"};
  for (Qubit q = 0; q < records_.size(); ++q) {
    for (const Operation& op : flush(q)) {
      out.append(op);
      ++stats_.flush_gates_emitted;
    }
  }
  return out;
}

bool PauliFrame::clean() const noexcept {
  for (const PauliRecord r : records_) {
    if (r != PauliRecord::kI) {
      return false;
    }
  }
  return true;
}

Circuit PauliFrame::process(const Circuit& circuit) {
  Circuit out{circuit.name()};
  stats_.input_slots += circuit.num_slots();
  stats_.input_gates += circuit.num_operations();
  for (const TimeSlot& slot : circuit) {
    // Flush operations for non-Clifford targets in this slot must land
    // on the qubits *before* the slot executes.
    Circuit flush_ops;
    TimeSlot forwarded;
    for (const Operation& op : slot) {
      switch (category(op.gate())) {
        case GateCategory::kInitialization:
          records_.at(op.qubit(0)) = PauliRecord::kI;
          forwarded.add(op);
          break;
        case GateCategory::kMeasurement:
          forwarded.add(op);
          break;
        case GateCategory::kPauli:
          if (op.gate() != GateType::kI) {
            track(op.gate(), op.qubit(0));
          }
          ++stats_.paulis_absorbed;
          break;
        case GateCategory::kClifford:
          apply_clifford(op);
          forwarded.add(op);
          break;
        case GateCategory::kNonClifford:
          for (int i = 0; i < op.arity(); ++i) {
            for (const Operation& pending : flush(op.qubit(i))) {
              flush_ops.append(pending);
              ++stats_.flush_gates_emitted;
            }
          }
          forwarded.add(op);
          break;
      }
    }
    out.append_circuit(flush_ops);
    out.append_slot(std::move(forwarded));
  }
  stats_.output_slots += out.num_slots();
  stats_.output_gates += out.num_operations();
  return out;
}

std::string PauliFrame::str() const {
  std::string out;
  for (std::size_t q = 0; q < records_.size(); ++q) {
    if (q != 0) {
      out += ' ';
    }
    out += std::to_string(q);
    out += ':';
    out += name(records_[q]);
  }
  return out;
}

}  // namespace qpf::pf

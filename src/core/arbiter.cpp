#include "core/arbiter.h"

#include <stdexcept>

#include "circuit/bug_plant.h"
#include "circuit/error.h"
#include <utility>

namespace qpf::pf {

PauliArbiter::PauliArbiter(PauliFrameUnit& pfu, PelSink pel,
                           bool trace_enabled)
    : pfu_(pfu), pel_(std::move(pel)), trace_enabled_(trace_enabled) {
  if (!pel_) {
    throw StackConfigError("PauliArbiter", "null PEL sink");
  }
}

void PauliArbiter::forward(const Operation& op,
                           std::vector<Operation>* record) {
  pel_(op);
  if (record != nullptr) {
    record->push_back(op);
  }
}

Route PauliArbiter::submit(const Operation& op) {
  PauliFrame& frame = pfu_.frame();
  Route route;
  std::vector<Operation> forwarded;
  std::vector<Operation>* rec = trace_enabled_ ? &forwarded : nullptr;
  switch (category(op.gate())) {
    case GateCategory::kInitialization:
      // (a) Reset: forward to the PEL and clear the record.
      route = Route::kResetBoth;
      forward(op, rec);
      pfu_.process_reset(op.qubit(0));
      break;
    case GateCategory::kMeasurement:
      // (b) Measurement: forward; the result path maps the outcome.
      route = Route::kMeasureToPel;
      forward(op, rec);
      break;
    case GateCategory::kPauli:
      // (c) Pauli gate: absorb into the PFU, nothing reaches the PEL.
      route = Route::kPauliToPfu;
      if (op.gate() != GateType::kI) {
        frame.track(op.gate(), op.qubit(0));
      }
      if (plant::bug(11)) {  // mutation hook: absorbed gate leaks to PEL
        forward(op, rec);
      }
      break;
    case GateCategory::kClifford:
      // (d) Clifford: map the record(s) and forward the gate.
      route = Route::kCliffordBoth;
      frame.apply_clifford(op);
      forward(op, rec);
      break;
    case GateCategory::kNonClifford:
    default: {
      // (e) Non-Clifford: stall, flush the pending record(s) onto the
      // qubit(s), then forward the gate itself.
      route = Route::kFlushThenPel;
      for (int i = 0; i < op.arity(); ++i) {
        for (const Operation& pending : frame.flush(op.qubit(i))) {
          forward(pending, rec);
        }
      }
      forward(op, rec);
      break;
    }
  }
  if (trace_enabled_) {
    trace_.push_back(TraceEntry{op, route, std::move(forwarded)});
  }
  return route;
}

void PauliArbiter::submit(const Circuit& circuit) {
  for (const TimeSlot& slot : circuit) {
    for (const Operation& op : slot) {
      submit(op);
    }
  }
}

}  // namespace qpf::pf

// Portable word-level bit kernels shared by the packed-bit data
// structures (stabilizer tableau columns, sign words, LUT decoders).
//
// The hot loops in the word-parallel tableau kernels compile down to
// AND/XOR/POPCNT streams; this header hides the compiler-specific
// spelling of the popcount / count-trailing-zeros intrinsics behind
// constexpr functions (C++20 <bit> when available, MSVC intrinsics and
// a portable SWAR fallback otherwise).
#pragma once

#include <cstdint>

#if defined(__cpp_lib_bitops) || (defined(__has_include) && __has_include(<bit>))
#include <bit>
#define QPF_HAVE_STD_BIT 1
#elif defined(_MSC_VER)
#include <intrin.h>
#endif

namespace qpf {

/// Number of set bits in v.
[[nodiscard]] constexpr int popcount64(std::uint64_t v) noexcept {
#if defined(QPF_HAVE_STD_BIT)
  return std::popcount(v);
#elif defined(_MSC_VER) && defined(_M_X64)
  return static_cast<int>(__popcnt64(v));
#else
  // SWAR popcount (Hacker's Delight, fig. 5-2).
  v = v - ((v >> 1) & 0x5555555555555555ULL);
  v = (v & 0x3333333333333333ULL) + ((v >> 2) & 0x3333333333333333ULL);
  v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return static_cast<int>((v * 0x0101010101010101ULL) >> 56);
#endif
}

/// Index of the lowest set bit of v; 64 when v == 0.
[[nodiscard]] constexpr int countr_zero64(std::uint64_t v) noexcept {
#if defined(QPF_HAVE_STD_BIT)
  return std::countr_zero(v);
#elif defined(_MSC_VER) && defined(_M_X64)
  unsigned long index = 0;
  return _BitScanForward64(&index, v) ? static_cast<int>(index) : 64;
#else
  if (v == 0) {
    return 64;
  }
  int count = 0;
  while ((v & 1) == 0) {
    v >>= 1;
    ++count;
  }
  return count;
#endif
}

/// Parity (popcount mod 2) of v.
[[nodiscard]] constexpr bool parity64(std::uint64_t v) noexcept {
  return (popcount64(v) & 1) != 0;
}

}  // namespace qpf

#include "exec/executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "circuit/bug_plant.h"
#include "circuit/error.h"

namespace qpf::exec {

std::size_t resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) {
    return jobs;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

namespace detail {

/// A chunked work item: the half-open task-index range [begin, end).
struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Per-index completion marks in the sequenced buffer.
enum Mark : std::uint8_t {
  kPending = 0,   ///< not finished (queued or running)
  kComplete,      ///< TaskStatus::kDone; result awaits in-order commit
  kAbandonedMark, ///< TaskStatus::kAbandoned; partial result stashed
  kSkippedMark,   ///< never ran (cancellation reached it first)
  kErrorMark,     ///< threw a qpf::Error; parked in errors[index]
};

struct RunState {
  std::uint64_t generation = 0;
  std::size_t tasks = 0;
  std::uint64_t base_seed = 0;
  const std::function<bool()>* stop = nullptr;  // caller-owned, may be null
  const RunHooks* hooks = nullptr;

  // Everything below is guarded by `m` except `cancelled`, which is a
  // relaxed sticky flag so tasks can poll it without taking the lock.
  std::mutex m;
  std::condition_variable completion;
  std::vector<std::uint8_t> state;        // Mark per task index
  std::atomic<std::size_t> marked{0};     // count of non-kPending entries
  std::deque<std::size_t> arrivals;      // kComplete indices, arrival order
  std::vector<std::deque<Chunk>> deques; // per-worker work-stealing deques
  std::uint64_t steals = 0;
  std::vector<std::exception_ptr> errors;
  bool any_error = false;
  std::atomic<bool> cancelled{false};

  [[nodiscard]] bool external_stop() const {
    return stop != nullptr && (*stop)();
  }
};

/// Scheduler-internal factory for TaskContext (whose constructor is
/// private so user code cannot forge contexts).
struct TaskContextAccess {
  [[nodiscard]] static TaskContext make(std::size_t index, std::uint64_t seed,
                                        RunState* run) noexcept {
    return TaskContext(index, seed, run);
  }
};

}  // namespace detail

using detail::Chunk;
using detail::Mark;
using detail::RunState;

bool TaskContext::cancelled() const noexcept {
  return run_->cancelled.load(std::memory_order_relaxed) ||
         run_->external_stop();
}

void TaskContext::cancel() const noexcept {
  run_->cancelled.store(true, std::memory_order_relaxed);
}

std::size_t TaskContext::completed() const noexcept {
  return run_->marked.load(std::memory_order_acquire);
}

struct Executor::Impl {
  std::mutex mutex;                   // pool state below
  std::condition_variable wake;       // workers sleep here
  std::condition_variable run_exited; // run_erased waits for entrants
  std::deque<std::function<void()>> queue;
  RunState* run = nullptr;
  std::size_t run_entrants = 0;
  std::uint64_t run_generation = 0;
  bool stopping = false;
  bool stopped = false;
  std::mutex run_serial;  // one run_ordered at a time per pool
  std::vector<std::thread> workers;
};

namespace {

/// Identifies pool worker threads, so submit() can tell a service
/// closure re-arming during shutdown's drain from an outside caller
/// racing it.
thread_local bool tl_pool_worker = false;

[[noreturn]] void abort_on_foreign_exception(const char* where,
                                             const char* what) {
  std::fprintf(stderr,
               "qpf::exec::Executor: %s threw a non-qpf::Error exception"
               " (%s); aborting — an untyped exception cannot cross the"
               " commit sequence without deadlocking it\n",
               where, what == nullptr ? "unknown type" : what);
  std::abort();
}

void mark_index(RunState& run, std::size_t index, Mark mark) {
  {
    std::lock_guard<std::mutex> lock(run.m);
    run.state[index] = static_cast<std::uint8_t>(mark);
    run.marked.fetch_add(1, std::memory_order_release);
    if (mark == detail::kComplete) {
      run.arrivals.push_back(index);
    }
  }
  run.completion.notify_all();
}

/// Run (or skip) one task index and publish its completion mark.
void run_index(RunState& run, std::size_t index) {
  if (run.cancelled.load(std::memory_order_relaxed) || run.external_stop()) {
    // Sticky: once any worker observes a stop, the rest skip cheaply.
    run.cancelled.store(true, std::memory_order_relaxed);
    mark_index(run, index, detail::kSkippedMark);
    return;
  }
  const TaskContext ctx = detail::TaskContextAccess::make(
      index, task_seed(run.base_seed, index), &run);
  TaskStatus status;
  try {
    status = run.hooks->run_one(ctx);
  } catch (const Error&) {
    // Typed error: park it for the caller thread (lowest index wins),
    // cancel the rest of the run, and keep the commit sequence alive.
    {
      std::lock_guard<std::mutex> lock(run.m);
      run.errors[index] = std::current_exception();
      run.any_error = true;
      run.state[index] = static_cast<std::uint8_t>(detail::kErrorMark);
      run.marked.fetch_add(1, std::memory_order_release);
    }
    run.cancelled.store(true, std::memory_order_relaxed);
    run.completion.notify_all();
    return;
  } catch (const std::exception& e) {
    abort_on_foreign_exception("a task", e.what());
  } catch (...) {
    abort_on_foreign_exception("a task", nullptr);
  }
  if (status == TaskStatus::kAbandoned) {
    run.cancelled.store(true, std::memory_order_relaxed);
  }
  mark_index(run, index,
             status == TaskStatus::kDone ? detail::kComplete
                                         : detail::kAbandonedMark);
}

}  // namespace

Executor::Executor(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  const std::size_t count = resolve_jobs(threads);
  impl_->workers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    impl_->workers.emplace_back([this] { worker_main(); });
  }
}

Executor::~Executor() { shutdown(); }

std::size_t Executor::threads() const noexcept {
  return impl_->workers.size();
}

void Executor::submit(std::function<void()> work) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.stopped || (im.stopping && !tl_pool_worker)) {
      throw Error("executor is shut down; submit refused");
    }
    im.queue.push_back(std::move(work));
  }
  im.wake.notify_one();
}

void Executor::shutdown() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.stopped) {
      return;
    }
    im.stopping = true;
  }
  im.wake.notify_all();
  for (std::thread& worker : im.workers) {
    worker.join();
  }
  std::lock_guard<std::mutex> lock(im.mutex);
  im.stopped = true;
}

void Executor::worker_main() {
  tl_pool_worker = true;
  Impl& im = *impl_;
  std::uint64_t finished_generation = 0;
  std::unique_lock<std::mutex> lock(im.mutex);
  for (;;) {
    if (!im.queue.empty()) {
      std::function<void()> work = std::move(im.queue.front());
      im.queue.pop_front();
      lock.unlock();
      try {
        work();
      } catch (const std::exception& e) {
        abort_on_foreign_exception("a service closure", e.what());
      } catch (...) {
        abort_on_foreign_exception("a service closure", nullptr);
      }
      lock.lock();
      continue;
    }
    if (im.run != nullptr && im.run->generation != finished_generation) {
      RunState* run = im.run;
      ++im.run_entrants;
      lock.unlock();
      participate(*run);
      lock.lock();
      finished_generation = run->generation;
      if (--im.run_entrants == 0) {
        im.run_exited.notify_all();
      }
      continue;
    }
    if (im.stopping && im.queue.empty()) {
      return;
    }
    im.wake.wait(lock);
  }
}

void Executor::participate(RunState& run) {
  // Stable worker slot: hash the thread onto a deque.  Which deque a
  // worker "owns" affects scheduling only — never output bytes — so a
  // collision merely loses a little locality.
  const std::size_t self =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      run.deques.size();
  std::unique_lock<std::mutex> lock(run.m);
  for (;;) {
    Chunk chunk;
    bool have = false;
    std::deque<Chunk>& mine = run.deques[self];
    if (!mine.empty()) {
      chunk = mine.front();  // owner: oldest own work first
      mine.pop_front();
      have = true;
    } else {
      const std::size_t n = run.deques.size();
      for (std::size_t k = 1; k < n && !have; ++k) {
        std::deque<Chunk>& victim = run.deques[(self + k) % n];
        if (!victim.empty()) {
          chunk = victim.back();  // thief: victim's newest work
          victim.pop_back();
          ++run.steals;
          have = true;
        }
      }
    }
    if (!have) {
      return;
    }
    lock.unlock();
    for (std::size_t index = chunk.begin; index < chunk.end; ++index) {
      run_index(run, index);
    }
    lock.lock();
  }
}

RunReport Executor::run_erased(std::size_t tasks, const RunOptions& options,
                               const detail::RunHooks& hooks) {
  RunReport report;
  if (tasks == 0) {
    return report;
  }
  Impl& im = *impl_;
  std::lock_guard<std::mutex> serial(im.run_serial);

  RunState run;
  run.tasks = tasks;
  run.base_seed = options.seed;
  run.stop = options.stop ? &options.stop : nullptr;
  run.hooks = &hooks;
  run.state.assign(tasks, static_cast<std::uint8_t>(detail::kPending));
  run.errors.resize(tasks);
  const std::size_t chunk = options.chunk == 0 ? 1 : options.chunk;
  const std::size_t chunks = (tasks + chunk - 1) / chunk;
  run.deques.resize(im.workers.size());
  for (std::size_t c = 0; c < chunks; ++c) {
    run.deques[c % run.deques.size()].push_back(
        Chunk{c * chunk, std::min((c + 1) * chunk, tasks)});
  }

  {
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.stopping || im.stopped) {
      throw Error("executor is shut down; run_ordered refused");
    }
    run.generation = ++im.run_generation;
    im.run = &run;
  }
  im.wake.notify_all();

  // The sequenced commit loop: this (the caller's) thread is the only
  // one that ever invokes commit_one, and it does so strictly in index
  // order — that single-writer property is what makes journals,
  // reports, and reply streams byte-identical at every worker count.
  //
  // Planted bug 15 (executor-commit-reorder) deliberately breaks the
  // property by committing in completion-arrival order instead.
  const bool reorder = plant::bug(15);
  std::size_t next = 0;  // frontier: first index not committed
  Mark frontier_mark = detail::kPending;
  {
    std::unique_lock<std::mutex> lock(run.m);
    if (reorder) {
      for (;;) {
        run.completion.wait(lock, [&] {
          return !run.arrivals.empty() ||
                 run.marked.load(std::memory_order_acquire) == run.tasks;
        });
        if (run.arrivals.empty()) {
          break;
        }
        const std::size_t index = run.arrivals.front();
        run.arrivals.pop_front();
        lock.unlock();
        const bool keep = hooks.commit_one(index);
        lock.lock();
        ++report.committed;
        ++next;
        if (!keep) {
          run.cancelled.store(true, std::memory_order_relaxed);
          break;
        }
      }
    } else {
      while (next < tasks) {
        run.completion.wait(
            lock, [&] { return run.state[next] != detail::kPending; });
        if (run.state[next] != detail::kComplete) {
          break;  // abandoned / skipped / error: the commit frontier
        }
        lock.unlock();
        const bool keep = hooks.commit_one(next);
        lock.lock();
        ++next;
        ++report.committed;
        if (!keep) {
          // The commit side cancelled (e.g. a failure budget filled);
          // completed results past the frontier are discarded.
          run.cancelled.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
    // Drain: every index must carry a mark before the workers can stop
    // touching this stack frame's RunState.
    run.completion.wait(lock, [&] {
      return run.marked.load(std::memory_order_acquire) == run.tasks;
    });
    if (next < tasks) {
      frontier_mark = static_cast<Mark>(run.state[next]);
    }
    report.steals = run.steals;
  }

  // Deregister and wait for every participant to leave the run before
  // the RunState (a local) goes out of scope.
  {
    std::unique_lock<std::mutex> lock(im.mutex);
    im.run = nullptr;
    im.run_exited.wait(lock, [&] { return im.run_entrants == 0; });
  }

  if (run.any_error) {
    // The lowest-index parked error is the deterministic choice: it is
    // the first error an equivalent sequential run would have hit.
    for (const std::exception_ptr& error : run.errors) {
      if (error) {
        std::rethrow_exception(error);
      }
    }
  }

  if (next < tasks) {
    report.cancelled = true;
    report.frontier = next;
    hooks.frontier_one(next, frontier_mark == detail::kAbandonedMark
                                 ? FrontierKind::kAbandoned
                                 : FrontierKind::kSkipped);
  }
  return report;
}

}  // namespace qpf::exec

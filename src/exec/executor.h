// The unified deterministic executor: one work-stealing pool under
// every jobs-N surface in the repo (LER campaigns, the chaos scenario
// driver, the fuzz engine's --cases fan-out, and the qpf_serve
// executor stage).
//
// Two modes share the worker threads:
//
//   * run_ordered() — the deterministic batch mode.  N indexed tasks
//     are packed into chunked work items and dealt round-robin onto
//     per-worker deques; an owner pops its own deque from the front,
//     an idle worker steals from another deque's back.  Every deque
//     operation happens under the run's mutex (no lock-free
//     cleverness), so the engine is TSan-clean by construction.
//     Results are published into a sequenced completion buffer and the
//     *calling* thread commits them strictly in task-index order, so
//     anything the commit callback does (journal appends, report rows,
//     stdout) is byte-identical for every worker count.  Each task
//     gets a splitmix64 seed chained from the run seed and its index —
//     never from wall clock or scheduling — so task work is a pure
//     function of (run seed, index).
//
//   * submit() — the service mode used by qpf_serve: fire-and-forget
//     closures executed by the pool in FIFO order.  shutdown() drains
//     the queue (including closures enqueued by running closures, the
//     serve re-arm pattern) before joining the threads.
//
// Determinism contract of run_ordered():
//   - commit(i, result) is called for i = 0, 1, 2, ... with no gaps,
//     on the caller's thread, in index order, regardless of jobs,
//     chunk size, or steal schedule;
//   - a task that throws a qpf::Error parks the error; after the pool
//     drains, the lowest-index parked error is rethrown on the
//     caller's thread (a deterministic choice).  Results committed
//     below the error index stay committed;
//   - a task that throws anything *not* derived from qpf::Error aborts
//     the process with a diagnostic: swallowing an unknown exception
//     could deadlock the commit sequence, and handing it to another
//     thread would lose its type.  Typed errors are the API;
//   - cancellation (a task returning kAbandoned, ctx.cancel(), the
//     external stop callback, or commit returning false) stops the
//     commit sequence at a *frontier*: the first index whose result
//     was not committed.  Completed results beyond the frontier are
//     discarded — a deterministic re-run reproduces them exactly —
//     and the frontier hook receives the frontier task's partial
//     result (when it abandoned with one) so callers can checkpoint
//     it.  This is exactly the crash-safe campaign contract the LER
//     engine shipped in PR 3, now owned by the executor.
//
// Planted bug 15 (`executor-commit-reorder`, QPF_PLANT_BUG=15) commits
// completions in arrival order instead of index order — the scheduling
// bug this design exists to rule out — so the `executor-determinism`
// fuzz oracle can prove it observes commit-order violations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace qpf::exec {

/// The splitmix64 output function (Steele, Lea & Flood) — same fully
/// specified mixer the fuzz engine uses, so task seeds are portable
/// across standard libraries.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The per-task seed chain: task `index` of a run seeded with `base`
/// always draws this seed, independent of jobs and scheduling.
[[nodiscard]] constexpr std::uint64_t task_seed(std::uint64_t base,
                                                std::uint64_t index) noexcept {
  return splitmix64(base ^ splitmix64(index + 0x6a09e667f3bcc909ULL));
}

/// Resolve a --jobs value: 0 means "auto" (hardware_concurrency, at
/// least 1); anything else passes through.
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs) noexcept;

/// What a task reports back to the sequencer.
enum class TaskStatus : std::uint8_t {
  kDone,       ///< result is final; commit it in order
  kAbandoned,  ///< task stopped early (cancellation); result is partial
};

namespace detail {
struct RunState;
struct TaskContextAccess;
}  // namespace detail

/// Handed to every task: its index, its deterministic seed, and the
/// cooperative-cancellation surface.  cancelled() is cheap enough to
/// poll every loop iteration (one relaxed atomic load plus the
/// caller-supplied stop callback, when one was given).
class TaskContext {
 public:
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// True once any task abandoned, ctx.cancel() ran, commit returned
  /// false, or the run's external stop callback reports true.
  [[nodiscard]] bool cancelled() const noexcept;
  /// Request cancellation of the whole run (idempotent).
  void cancel() const noexcept;
  /// Tasks of this run that have finished so far (any status).
  /// Monotonic; lets tests and oracles force completion schedules
  /// (e.g. "finish last") without wall-clock dependence.
  [[nodiscard]] std::size_t completed() const noexcept;

 private:
  friend class Executor;
  friend struct detail::TaskContextAccess;
  TaskContext(std::size_t index, std::uint64_t seed,
              detail::RunState* run) noexcept
      : index_(index), seed_(seed), run_(run) {}

  std::size_t index_;
  std::uint64_t seed_;
  detail::RunState* run_;
};

/// Per-run knobs for run_ordered().
struct RunOptions {
  /// Base of the splitmix64 task-seed chain.
  std::uint64_t seed = 0;
  /// Task indices per work item.  1 (the default) sequences at task
  /// granularity; larger chunks amortize queue traffic for very short
  /// tasks.  0 is treated as 1.  Output bytes never depend on it.
  std::size_t chunk = 1;
  /// External cooperative stop (e.g. a SIGINT flag).  Polled by the
  /// workers between tasks and surfaced through ctx.cancelled(); must
  /// be thread-safe.  Empty = never stops.
  std::function<bool()> stop;
};

/// What actually happened, for callers that distinguish a completed
/// run from an interrupted one.
struct RunReport {
  /// Results committed (equals the task count iff the run finished).
  std::size_t committed = 0;
  /// True when the commit sequence stopped before the last task.
  bool cancelled = false;
  /// First uncommitted index; only meaningful when cancelled.
  std::size_t frontier = 0;
  /// Work items taken from another worker's deque (observability; the
  /// bit-identity contract makes it irrelevant to output).
  std::uint64_t steals = 0;
};

/// Why the frontier hook fired for the frontier index.
enum class FrontierKind : std::uint8_t {
  kAbandoned,  ///< the task ran and stopped early; a partial result exists
  kSkipped,    ///< the task never ran (or its completed result was discarded)
};

template <typename Result>
struct TaskResult {
  TaskStatus status = TaskStatus::kDone;
  Result value{};
};

namespace detail {
/// Type-erased hooks the templated front end hands to the scheduler
/// core.  run_one executes a task and stashes its result; commit_one
/// moves result `index` out to the caller (false = cancel the run);
/// frontier_one reports the first uncommitted index after a cancelled
/// run.
struct RunHooks {
  std::function<TaskStatus(const TaskContext&)> run_one;
  std::function<bool(std::size_t)> commit_one;
  std::function<void(std::size_t, FrontierKind)> frontier_one;
};
}  // namespace detail

class Executor {
 public:
  /// Spawns `threads` workers (0 = auto via resolve_jobs).
  explicit Executor(std::size_t threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept;

  // --- Service mode ---------------------------------------------------

  /// Enqueue a fire-and-forget closure (FIFO).  Closures may submit
  /// further closures — including during shutdown()'s drain, which is
  /// how qpf_serve re-arms a session queue.  Throws qpf::Error after
  /// shutdown() completed.  A closure that throws anything aborts the
  /// process with a diagnostic: service tasks own their error handling.
  void submit(std::function<void()> work);

  /// Drain the service queue (running everything already enqueued plus
  /// anything those closures enqueue) and join the workers.  Idempotent.
  /// Must not race with an active run_ordered().
  void shutdown();

  // --- Deterministic batch mode ---------------------------------------

  /// Run `tasks` indexed tasks over the pool and commit their results
  /// in index order on *this* (the calling) thread.  See the file
  /// comment for the full determinism contract.  `commit` returning
  /// false cancels the run.  `frontier` (optional) fires at most once,
  /// after the pool drained, with the first uncommitted index; when
  /// that task abandoned mid-flight its partial result is passed so
  /// the caller can checkpoint it, otherwise nullptr.
  template <typename Result>
  RunReport run_ordered(
      std::size_t tasks, const RunOptions& options,
      const std::function<TaskResult<Result>(const TaskContext&)>& task,
      const std::function<bool(std::size_t, Result&&)>& commit,
      const std::function<void(std::size_t, FrontierKind, Result*)>& frontier =
          nullptr) {
    std::vector<std::optional<Result>> slots(tasks);
    detail::RunHooks hooks;
    hooks.run_one = [&](const TaskContext& ctx) {
      TaskResult<Result> out = task(ctx);
      // Each slot is written by exactly one worker and read by the
      // caller only after the completion mark is published under the
      // run mutex, so the slot itself needs no lock.
      slots[ctx.index()] = std::move(out.value);
      return out.status;
    };
    hooks.commit_one = [&](std::size_t index) {
      Result value = std::move(*slots[index]);
      slots[index].reset();
      return commit(index, std::move(value));
    };
    hooks.frontier_one = [&](std::size_t index, FrontierKind kind) {
      if (frontier) {
        Result* partial = (kind == FrontierKind::kAbandoned &&
                           slots[index].has_value())
                              ? &*slots[index]
                              : nullptr;
        frontier(index, kind, partial);
      }
    };
    return run_erased(tasks, options, hooks);
  }

 private:
  RunReport run_erased(std::size_t tasks, const RunOptions& options,
                       const detail::RunHooks& hooks);
  void worker_main();
  void participate(detail::RunState& run);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qpf::exec

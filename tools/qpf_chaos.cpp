// qpf_chaos: deterministic chaos harness for the supervised control
// stack (PR 4).
//
// Runs the same crash-safe SC-17 LER campaign as qpf_ler, but under a
// scripted fault storm: seeded chaos events (crashes, stalls, bursts)
// injected by the ClassicalFaultLayer, recovered (or not) by the
// SupervisorLayer, and timed against the deadline watchdog.  Scenarios
// are named presets so tools/check_chaos.sh can assert the recovery
// invariant: every scenario either produces statistics bit-identical
// to the fault-free baseline, or exits nonzero with a typed
// escalation — never silent divergence.
//
// stdout carries exactly the qpf_ler statistics line (%.17g, so the
// harness can diff scenarios byte-for-byte); the chaos / supervision
// report goes to stderr.
//
// Exit codes: 0 success, 1 runtime error or typed escalation, 2 bad
// arguments, 130 interrupted (state saved; re-run to resume).
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/error.h"
#include "cli/stdio_guard.h"
#include "io/file_ops.h"
#include "ler_common.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

int usage(std::ostream& out) {
  out << "usage: qpf_chaos --scenario=NAME [options]\n"
         "scenarios:\n"
         "  baseline            fault-free reference run\n"
         "  crash-recover       crash storm, supervised: every crash is\n"
         "                      recovered (restore + replay); statistics\n"
         "                      must equal the baseline\n"
         "  crash-unsupervised  same storm, no supervisor: the first\n"
         "                      crash escapes as a typed error (exit 1)\n"
         "  crash-escalate      burst storm that exhausts the retry\n"
         "                      budget and the episode budget: typed\n"
         "                      SupervisionError with incident record\n"
         "                      (exit 1)\n"
         "  stall-degrade       stall storm under a round deadline: the\n"
         "                      watchdog skips decodes, the run degrades\n"
         "                      deterministically and completes (exit 0)\n"
         "  stall-escalate      same storm, supervised with an overrun\n"
         "                      budget: typed SupervisionError (exit 1)\n"
         "options:\n"
         "  --per=P               physical error rate (default 2e-3)\n"
         "  --runs=N              trials (default 2)\n"
         "  --errors=N            target logical errors per trial "
         "(default 4)\n"
         "  --max-windows=N       window cap per trial (default 4000)\n"
         "  --seed=S              campaign seed chain base (default 99)\n"
         "  --chaos-seed=S        chaos schedule seed (default 7)\n"
         "  --state-dir=DIR       durable journal + checkpoint (resume\n"
         "                        an existing journal)\n"
         "  --checkpoint-every=N  checkpoint the live trial every N\n"
         "                        windows (default 64)\n"
         "  --jobs=N              worker threads (default 1)\n";
  return 2;
}

// Apply a named scenario preset onto the campaign configuration.
// Returns false (and reports) on an unknown name.
bool apply_scenario(const std::string& name, qpf::bench::LerConfig& config) {
  using qpf::arch::ChaosConfig;
  if (name == "baseline") {
    return true;
  }
  if (name == "crash-recover") {
    // Sparse crashes with a generous retry budget: every fault must be
    // recovered by restore + replay, so the statistics stay equal to
    // the baseline.  The gap floor exceeds the longest replay window,
    // so retries can never exhaust.
    config.chaos.min_gap = 400;
    config.chaos.max_gap = 700;
    config.chaos.crash_weight = 1;
    config.supervise = true;
    config.supervisor.max_retries = 10;
    config.supervisor.escalate_after = 1'000'000;
    config.supervisor.rearm_after = 1;
    return true;
  }
  if (name == "crash-unsupervised") {
    config.chaos.min_gap = 400;
    config.chaos.max_gap = 700;
    config.chaos.crash_weight = 1;
    config.supervise = false;
    return true;
  }
  if (name == "crash-escalate") {
    // Bursts longer than the retry budget: recovery replays crash
    // again, the supervisor degrades, episodes accumulate, and the
    // default escalate_after budget blows.
    config.chaos.min_gap = 60;
    config.chaos.max_gap = 90;
    config.chaos.crash_weight = 0;
    config.chaos.burst_weight = 1;
    config.chaos.burst_length = 40;
    config.supervise = true;
    config.supervisor.max_retries = 2;
    config.supervisor.escalate_after = 3;
    return true;
  }
  if (name == "stall-degrade") {
    // Stalls blow the per-round deadline; the ninja-star layer skips
    // the decode and carries the syndrome.  Fully modeled time, so two
    // runs of this scenario are bit-identical.
    config.chaos.min_gap = 40;
    config.chaos.max_gap = 60;
    config.chaos.crash_weight = 0;
    config.chaos.stall_weight = 1;
    config.chaos.stall_ns = 1.0e6;
    config.deadline.round_budget_ns = 5.0e5;
    return true;
  }
  if (name == "stall-escalate") {
    config.chaos.min_gap = 40;
    config.chaos.max_gap = 60;
    config.chaos.crash_weight = 0;
    config.chaos.stall_weight = 1;
    config.chaos.stall_ns = 1.0e6;
    config.deadline.round_budget_ns = 5.0e5;
    config.supervise = true;
    config.supervisor.escalate_on_overruns = 5;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using qpf::bench::CampaignOptions;
  using qpf::bench::CampaignResult;

  qpf::cli::ignore_sigpipe();
  qpf::io::install_faultfs_from_environment();
  CampaignOptions options;
  options.config.physical_error_rate = 2e-3;
  options.config.target_logical_errors = 4;
  options.config.max_windows = 4000;
  options.config.seed = 99;
  options.config.chaos.seed = 7;
  options.runs = 2;
  options.checkpoint_every_windows = 64;
  std::string scenario;
  for (int i = 1; i < argc; ++i) {
    const std::string argument = argv[i];
    std::string value;
    try {
      if (consume_prefix(argument, "--scenario=", value)) {
        scenario = value;
      } else if (consume_prefix(argument, "--per=", value)) {
        options.config.physical_error_rate = std::stod(value);
      } else if (consume_prefix(argument, "--runs=", value)) {
        options.runs = std::stoull(value);
      } else if (consume_prefix(argument, "--errors=", value)) {
        options.config.target_logical_errors = std::stoull(value);
      } else if (consume_prefix(argument, "--max-windows=", value)) {
        options.config.max_windows = std::stoull(value);
      } else if (consume_prefix(argument, "--seed=", value)) {
        options.config.seed = std::stoull(value);
      } else if (consume_prefix(argument, "--chaos-seed=", value)) {
        options.config.chaos.seed = std::stoull(value);
      } else if (consume_prefix(argument, "--state-dir=", value)) {
        options.state_dir = value;
      } else if (consume_prefix(argument, "--checkpoint-every=", value)) {
        options.checkpoint_every_windows = std::stoull(value);
      } else if (consume_prefix(argument, "--jobs=", value)) {
        options.jobs = qpf::bench::resolve_jobs(std::stoull(value));
      } else if (argument == "--help") {
        usage(std::cout);
        return 0;
      } else {
        std::cerr << "qpf_chaos: unknown option '" << argument << "'\n";
        return usage(std::cerr);
      }
    } catch (const std::exception&) {
      std::cerr << "qpf_chaos: bad value in '" << argument << "'\n";
      return usage(std::cerr);
    }
  }
  if (scenario.empty()) {
    std::cerr << "qpf_chaos: --scenario is required\n";
    return usage(std::cerr);
  }
  if (!apply_scenario(scenario, options.config)) {
    std::cerr << "qpf_chaos: unknown scenario '" << scenario << "'\n";
    return usage(std::cerr);
  }
  if (options.runs == 0) {
    std::cerr << "qpf_chaos: --runs must be positive\n";
    return usage(std::cerr);
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  options.stop = &g_stop;

  // Both seeds announced so any failure is replayable from the log.
  qpf::bench::announce_seed("qpf_chaos campaign", options.config.seed);
  if (options.config.chaos.any()) {
    qpf::bench::announce_seed("qpf_chaos schedule",
                              options.config.chaos.seed);
  }
  std::cerr << "[chaos] scenario: " << scenario << "\n";

  CampaignResult result;
  try {
    result = qpf::bench::run_ler_campaign(options);
  } catch (const qpf::SupervisionError& error) {
    // The supervised stack gave up in a typed, auditable way: print the
    // incident record and fail loudly — the harness asserts this path.
    std::cerr << "qpf_chaos: supervision escalation: " << error.what()
              << "\n";
    if (!error.incident_report().empty()) {
      std::cerr << error.incident_report();
    }
    return 1;
  } catch (const qpf::TransientFaultError& error) {
    std::cerr << "qpf_chaos: unrecovered classical fault: " << error.what()
              << "\n";
    return 1;
  } catch (const qpf::Error& error) {
    std::cerr << "qpf_chaos: " << error.what() << "\n";
    return 1;
  }

  if (result.checkpoint_recovered) {
    std::cerr << "qpf_chaos: discarded unusable checkpoint ("
              << result.checkpoint_warning << "); resumed from the journal\n";
  }
  if (result.trials_from_journal != 0 || result.windows_resumed != 0) {
    std::cerr << "qpf_chaos: resumed " << result.trials_from_journal
              << " trial(s) from the journal, " << result.windows_resumed
              << " window(s) from the checkpoint\n";
  }
  std::cerr << "[chaos] recovered=" << result.faults_recovered
            << " episodes=" << result.fault_episodes
            << " overruns=" << result.deadline_overruns
            << " skipped_decodes=" << result.decodes_skipped << "\n";

  // Exactly the qpf_ler statistics line: the harness diffs scenario
  // stdout against the baseline byte-for-byte.
  std::printf("per=%.17g trials=%zu mean_ler=%.17g stddev_ler=%.17g "
              "window_cv=%.17g saved_gates=%.17g saved_slots=%.17g "
              "timed_out=%zu\n",
              result.point.physical_error_rate, result.trials_completed,
              result.point.mean_ler, result.point.stddev_ler,
              result.point.window_cv, result.point.saved_gates,
              result.point.saved_slots, result.trials_timed_out);
  try {
    qpf::cli::require_stdout_ok();
  } catch (const qpf::Error& error) {
    // Journal and checkpoint are already durable; only the report line
    // was lost to the closed pipe.
    std::cerr << "qpf_chaos: " << error.what() << "\n";
    return 1;
  }

  if (result.interrupted) {
    std::cerr << "qpf_chaos: interrupted after " << result.trials_completed
              << " of " << options.runs
              << " trial(s); state saved, re-run to resume\n";
    return 130;
  }
  return 0;
}

// qpf_run: execute QASM / CHP / QISA programs on QPF control stacks.
#include <iostream>
#include <string>
#include <vector>

#include "cli/runner.h"

int main(int argc, char** argv) {
  const std::vector<std::string> arguments(argv + 1, argv + argc);
  return qpf::cli::run_tool(arguments, std::cout, std::cerr);
}

// qpf_run: execute QASM / CHP / QISA programs on QPF control stacks.
//
// SIGINT/SIGTERM set a flag the shot loop polls: the in-flight shot is
// drained, the journal tail is fsync'd, and the process exits 130 — a
// journaled run (--checkpoint-dir) is then resumable with --resume.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "cli/runner.h"
#include "cli/stdio_guard.h"
#include "io/file_ops.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  qpf::cli::ignore_sigpipe();
  qpf::io::install_faultfs_from_environment();
  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  const std::vector<std::string> arguments(argv + 1, argv + argc);
  return qpf::cli::run_tool(arguments, std::cout, std::cerr, &g_stop);
}

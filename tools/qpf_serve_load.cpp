// qpf_serve_load: load generator and isolation witness for qpf_serve.
//
// Spawns --sessions concurrent client connections, each owning one
// session and running --requests lockstep QASM submissions.  The first
// --poison sessions are configured to die: a supervised stack with a
// one-strike escalation budget under a continuous chaos schedule, so
// the supervisor exhausts its retries and the server evicts the
// session with a typed `supervision` reply.
//
// Every connection's raw received byte stream can be dumped with
// --transcript-dir; check_serve.sh diffs healthy sessions' transcripts
// between a --poison=0 and a --poison=1 run to prove fault isolation
// bit-for-bit.
//
// --json emits the BENCH_serve.json report (schema
// qpf-serve-bench-v1): p50/p99/p999 request latency, requests/sec and
// sessions/sec, plus reply-code counters.
//
// Exit codes: 0 when every healthy session completed cleanly (poisoned
// sessions are REQUIRED to be evicted — a poisoned session that
// survives is a failure), 1 on contract violations, 2 on bad args.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/error.h"
#include "io/file_ops.h"
#include "serve/client.h"
#include "serve/retry_client.h"

namespace {

using qpf::serve::Client;
using qpf::serve::RetryClient;
using qpf::serve::RetryOptions;
using qpf::serve::SessionConfig;

struct LoadOptions {
  std::uint16_t port = 0;
  std::size_t sessions = 8;
  std::size_t requests = 16;
  std::size_t poison = 0;
  std::uint64_t qubits = 4;
  std::uint64_t hold_ms = 0;      ///< keep connections open before close
  bool resume = false;            ///< open sessions with resume=true
  bool close_sessions = true;
  bool retry = false;             ///< exactly-once RetryClient (v2)
  std::uint64_t heartbeat_ms = 0; ///< RetryClient lease heartbeats
  std::string prefix = "tenant";
  std::string transcript_dir;
  bool json = false;
};

struct SessionOutcome {
  bool ok = false;
  bool evicted = false;
  std::size_t replies_ok = 0;
  std::size_t replies_error = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::vector<double> latencies_ms;
  std::string failure;
  std::vector<std::uint8_t> transcript;
};

/// Deterministic per-(session, request) program: a Clifford mix over
/// the session register with a trailing measurement, derived only from
/// the indices so the traffic is identical run to run.
std::string make_qasm(std::uint64_t qubits, std::size_t session,
                      std::size_t request) {
  const std::uint64_t salt =
      (static_cast<std::uint64_t>(session) << 32) ^ request ^ 0x9e3779b9ull;
  std::string qasm = "qubits " + std::to_string(qubits) + "\n";
  const std::uint64_t a = salt % qubits;
  const std::uint64_t b = (salt / qubits) % qubits;
  qasm += "h q" + std::to_string(a) + "\n";
  if (a != b) {
    qasm += "cnot q" + std::to_string(a) + ",q" + std::to_string(b) + "\n";
  }
  qasm += "s q" + std::to_string(b) + "\n";
  if ((salt & 1) != 0) {
    qasm += "measure q" + std::to_string(a) + "\n";
  }
  return qasm;
}

SessionConfig make_config(const LoadOptions& options, std::size_t index) {
  SessionConfig config;
  config.name = options.prefix + "-" + std::to_string(index);
  config.seed = static_cast<std::uint64_t>(index) + 1;
  config.qubits = options.qubits;
  config.resume = options.resume;
  if (index < options.poison) {
    // A stack built to fail: every layer call draws a chaos event and
    // the supervisor escalates on the first abandoned operation.
    config.supervise = true;
    config.max_retries = 1;
    config.escalate_after = 1;
    config.chaos.seed = config.seed ^ 0xdeadull;
    config.chaos.min_gap = 1;
    config.chaos.max_gap = 1;
    config.chaos.crash_weight = 1;
  }
  return config;
}

void run_session(const LoadOptions& options, std::size_t index,
                 SessionOutcome& outcome) {
  const bool poisoned = index < options.poison;
  Client client;
  try {
    client.connect(options.port);
    Client::Result r = client.hello(options.prefix);
    if (r.error.has_value()) {
      outcome.failure = "hello refused: " + r.error->message;
      outcome.transcript = client.transcript();
      return;
    }
    r = client.open_session(make_config(options, index));
    if (r.error.has_value()) {
      outcome.failure = "open refused: " + r.error->code;
      outcome.transcript = client.transcript();
      return;
    }
    const qpf::serve::SessionOpened opened =
        qpf::serve::decode_session_opened(r.reply.payload);

    for (std::size_t request = 0; request < options.requests; ++request) {
      const std::string qasm =
          make_qasm(options.qubits, index, request);
      const auto t0 = std::chrono::steady_clock::now();
      r = client.submit_qasm(opened.session, qasm);
      const auto t1 = std::chrono::steady_clock::now();
      outcome.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (r.error.has_value()) {
        ++outcome.replies_error;
        if (r.error->code == "supervision" || r.error->code == "evicted") {
          outcome.evicted = true;
        }
      } else {
        ++outcome.replies_ok;
      }
    }

    if (options.hold_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.hold_ms));
    }
    if (options.close_sessions && !outcome.evicted) {
      r = client.close_session(opened.session);
      if (r.error.has_value()) {
        outcome.failure = "close refused: " + r.error->code;
        outcome.transcript = client.transcript();
        return;
      }
    }
    // Contract: healthy sessions answer everything; poisoned sessions
    // must have been evicted by the supervisor.
    outcome.ok = poisoned
                     ? outcome.evicted
                     : outcome.replies_error == 0 &&
                           outcome.replies_ok == options.requests;
    if (!outcome.ok && outcome.failure.empty()) {
      outcome.failure = poisoned ? "poisoned session was never evicted"
                                 : "healthy session saw error replies";
    }
  } catch (const qpf::Error& e) {
    // During a drain/hold test the server may vanish mid-conversation;
    // that is only a failure for sessions that still expected replies.
    outcome.failure = e.what();
    outcome.ok = options.hold_ms > 0 &&
                 (poisoned ? outcome.evicted
                           : outcome.replies_ok == options.requests);
  }
  outcome.transcript = client.transcript();
}

/// --retry variant: the exactly-once RetryClient drives the session, so
/// the run survives FaultNet schedules (resets, stalls, corruption,
/// blackholes) with a transcript byte-identical to a fault-free run.
void run_session_retry(const LoadOptions& options, std::size_t index,
                       SessionOutcome& outcome) {
  const bool poisoned = index < options.poison;
  RetryOptions retry;
  retry.client_name = options.prefix;
  retry.seed = static_cast<std::uint64_t>(index) + 1;
  retry.heartbeat_ms = options.heartbeat_ms;
  RetryClient client(options.port, make_config(options, index), retry);
  try {
    for (std::size_t request = 0; request < options.requests; ++request) {
      const std::string qasm = make_qasm(options.qubits, index, request);
      const auto t0 = std::chrono::steady_clock::now();
      const RetryClient::Result r = client.submit_qasm(qasm);
      const auto t1 = std::chrono::steady_clock::now();
      outcome.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (r.error.has_value()) {
        ++outcome.replies_error;
        if (r.error->code == "supervision" || r.error->code == "evicted") {
          outcome.evicted = true;
        }
      } else {
        ++outcome.replies_ok;
      }
    }

    if (options.hold_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.hold_ms));
    }
    if (options.close_sessions && !outcome.evicted) {
      const RetryClient::Result r = client.close();
      if (r.error.has_value()) {
        outcome.failure = "close refused: " + r.error->code;
        outcome.transcript = client.transcript();
        outcome.retries = client.retries();
        outcome.reconnects = client.reconnects();
        return;
      }
    }
    outcome.ok = poisoned
                     ? outcome.evicted
                     : outcome.replies_error == 0 &&
                           outcome.replies_ok == options.requests;
    if (!outcome.ok && outcome.failure.empty()) {
      outcome.failure = poisoned ? "poisoned session was never evicted"
                                 : "healthy session saw error replies";
    }
  } catch (const qpf::Error& e) {
    outcome.failure = e.what();
    outcome.ok = options.hold_ms > 0 &&
                 (poisoned ? outcome.evicted
                           : outcome.replies_ok == options.requests);
  }
  outcome.transcript = client.transcript();
  outcome.retries = client.retries();
  outcome.reconnects = client.reconnects();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

int usage(std::ostream& out) {
  out << "usage: qpf_serve_load --port=N [options]\n"
         "  --sessions=N        concurrent sessions (default 8)\n"
         "  --requests=N        lockstep requests per session (default 16)\n"
         "  --poison=K          first K sessions get a fatal chaos stack\n"
         "  --qubits=N          session register size (default 4)\n"
         "  --hold-ms=N         keep connections open N ms before close\n"
         "                      (drain tests; server death tolerated)\n"
         "  --resume            open sessions with resume=true\n"
         "  --no-close          leave sessions open (park/drain tests)\n"
         "  --retry             exactly-once RetryClient (protocol v2:\n"
         "                      reconnect + resend, dedup-safe)\n"
         "  --heartbeat-ms=N    RetryClient lease heartbeats (0=off)\n"
         "  --prefix=NAME       session name prefix (default tenant)\n"
         "  --transcript-dir=D  write DIR/<name>.transcript witnesses\n"
         "  --json              emit BENCH_serve.json on stdout\n"
         "  --help              this text\n";
  return &out == &std::cerr ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  qpf::io::install_faultfs_from_environment();
  qpf::io::install_faultnet_from_environment();
  LoadOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string value;
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout);
      } else if (arg == "--json") {
        options.json = true;
      } else if (arg == "--resume") {
        options.resume = true;
      } else if (arg == "--no-close") {
        options.close_sessions = false;
      } else if (arg == "--retry") {
        options.retry = true;
      } else if (consume_prefix(arg, "--heartbeat-ms=", value)) {
        options.heartbeat_ms = std::stoull(value);
      } else if (consume_prefix(arg, "--port=", value)) {
        options.port = static_cast<std::uint16_t>(std::stoul(value));
      } else if (consume_prefix(arg, "--sessions=", value)) {
        options.sessions = std::stoull(value);
      } else if (consume_prefix(arg, "--requests=", value)) {
        options.requests = std::stoull(value);
      } else if (consume_prefix(arg, "--poison=", value)) {
        options.poison = std::stoull(value);
      } else if (consume_prefix(arg, "--qubits=", value)) {
        options.qubits = std::stoull(value);
      } else if (consume_prefix(arg, "--hold-ms=", value)) {
        options.hold_ms = std::stoull(value);
      } else if (consume_prefix(arg, "--prefix=", value)) {
        options.prefix = value;
      } else if (consume_prefix(arg, "--transcript-dir=", value)) {
        options.transcript_dir = value;
      } else {
        std::cerr << "qpf_serve_load: unknown argument '" << arg << "'\n";
        return usage(std::cerr);
      }
    }
    if (options.port == 0) {
      std::cerr << "qpf_serve_load: --port is required\n";
      return 2;
    }
    if (options.poison > options.sessions) {
      std::cerr << "qpf_serve_load: --poison exceeds --sessions\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "qpf_serve_load: bad argument: " << e.what() << "\n";
    return 2;
  }

  std::vector<SessionOutcome> outcomes(options.sessions);
  const auto wall0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(options.sessions);
    for (std::size_t i = 0; i < options.sessions; ++i) {
      threads.emplace_back([&options, &outcomes, i] {
        if (options.retry) {
          run_session_retry(options, i, outcomes[i]);
        } else {
          run_session(options, i, outcomes[i]);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();

  if (!options.transcript_dir.empty()) {
    for (std::size_t i = 0; i < options.sessions; ++i) {
      const std::string path = options.transcript_dir + "/" + options.prefix +
                               "-" + std::to_string(i) + ".transcript";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(outcomes[i].transcript.data()),
                static_cast<std::streamsize>(outcomes[i].transcript.size()));
      if (!out) {
        std::cerr << "qpf_serve_load: cannot write " << path << "\n";
        return 1;
      }
    }
  }

  std::vector<double> healthy_latencies;
  std::size_t ok_sessions = 0;
  std::size_t evicted = 0;
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  for (std::size_t i = 0; i < options.sessions; ++i) {
    const SessionOutcome& o = outcomes[i];
    if (o.ok) {
      ++ok_sessions;
    } else {
      std::cerr << "qpf_serve_load: session " << i << " FAILED: " << o.failure
                << "\n";
    }
    if (o.evicted) {
      ++evicted;
    }
    replies_ok += o.replies_ok;
    replies_error += o.replies_error;
    retries += o.retries;
    reconnects += o.reconnects;
    if (i >= options.poison) {
      healthy_latencies.insert(healthy_latencies.end(),
                               o.latencies_ms.begin(), o.latencies_ms.end());
    }
  }

  // Server-side exactly-once counters, read over a throwaway v2 stats
  // connection.  Best-effort: a server that is already gone (drain
  // drills) just reports zeros.
  std::uint64_t dedup_hits = 0;
  std::uint64_t lease_expirations = 0;
  if (options.retry) {
    try {
      const qpf::serve::StatsReply stats =
          RetryClient::query_stats(options.port);
      dedup_hits = stats.dedup_hits;
      lease_expirations = stats.lease_expired;
    } catch (const qpf::Error&) {
    }
  }

  const double wall_s = wall_ms / 1000.0;
  const double p50 = percentile(healthy_latencies, 0.50);
  const double p99 = percentile(healthy_latencies, 0.99);
  const double p999 = percentile(healthy_latencies, 0.999);
  const double rps =
      wall_s > 0.0 ? static_cast<double>(healthy_latencies.size()) / wall_s
                   : 0.0;
  const double sps =
      wall_s > 0.0 ? static_cast<double>(options.sessions) / wall_s : 0.0;

  if (options.json) {
    std::cout << "{\n"
              << "  \"schema\": \"qpf-serve-bench-v2\",\n"
              << "  \"sessions\": " << options.sessions << ",\n"
              << "  \"requests_per_session\": " << options.requests << ",\n"
              << "  \"poisoned\": " << options.poison << ",\n"
              << "  \"sessions_ok\": " << ok_sessions << ",\n"
              << "  \"sessions_evicted\": " << evicted << ",\n"
              << "  \"replies_ok\": " << replies_ok << ",\n"
              << "  \"replies_error\": " << replies_error << ",\n"
              << "  \"retries\": " << retries << ",\n"
              << "  \"reconnects\": " << reconnects << ",\n"
              << "  \"dedup_hits\": " << dedup_hits << ",\n"
              << "  \"lease_expirations\": " << lease_expirations << ",\n"
              << "  \"wall_ms\": " << wall_ms << ",\n"
              << "  \"latency_ms\": {\"p50\": " << p50 << ", \"p99\": " << p99
              << ", \"p999\": " << p999 << "},\n"
              << "  \"requests_per_sec\": " << rps << ",\n"
              << "  \"sessions_per_sec\": " << sps << "\n"
              << "}\n";
    std::cout.flush();
    if (!std::cout) {
      std::cerr << "qpf_serve_load: error: stdout write failed\n";
      return 1;
    }
  }
  std::cerr << "qpf_serve_load: sessions=" << options.sessions << " ok="
            << ok_sessions << " evicted=" << evicted << " p50=" << p50
            << "ms p99=" << p99 << "ms\n";
  return ok_sessions == options.sessions ? 0 : 1;
}

#!/usr/bin/env bash
# Executor determinism over the real binaries (CTest target check_exec).
#
# The unified executor (src/exec/) promises byte-identical output for
# every --jobs value on every migrated surface.  The gtest battery
# proves it in-process; this harness proves it end-to-end through the
# shipped tools:
#
#   1. qpf_ler: a --jobs ∈ {2, 7, 16} sweep whose stdout statistics
#      line AND durable journal bytes must equal the jobs=1 reference;
#   2. qpf_chaos: a supervised crash-storm scenario at --jobs ∈ {2, 7}
#      whose stdout must equal its jobs=1 run (recovery included);
#   3. qpf_fuzz: --jobs ∈ {2, 8} JSON triage reports byte-equal to the
#      sequential report for the same seed.
#
# Usage: tools/check_exec.sh [build-dir]        (default: ./build)
set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
ler="$build_dir/tools/qpf_ler"
chaos="$build_dir/tools/qpf_chaos"
fuzz="$build_dir/tools/qpf_fuzz"

for bin in "$ler" "$chaos" "$fuzz"; do
    if [ ! -x "$bin" ]; then
        echo "check_exec.sh: $bin not built" >&2
        exit 1
    fi
done

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_exec.XXXXXX")
cleanup() {
    code=$?
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_exec.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

ler_args="--per=0.05 --pauli-frame --errors=3 --max-windows=5000 \
          --seed=77177 --runs=6"

# 1. qpf_ler: stdout and journal bytes across the jobs sweep.
echo "check_exec.sh: qpf_ler jobs sweep"
$ler $ler_args --jobs=1 --state-dir="$workdir/ler-ref" \
    > "$workdir/ler-ref.out" 2> /dev/null
[ -s "$workdir/ler-ref/journal.jsonl" ] || {
    echo "check_exec.sh: reference journal is empty" >&2
    exit 1
}
for jobs in 2 7 16; do
    $ler $ler_args --jobs=$jobs --state-dir="$workdir/ler-j$jobs" \
        > "$workdir/ler-j$jobs.out" 2> /dev/null
    cmp -s "$workdir/ler-ref.out" "$workdir/ler-j$jobs.out" || {
        echo "check_exec.sh: qpf_ler stdout diverges at --jobs=$jobs" >&2
        diff "$workdir/ler-ref.out" "$workdir/ler-j$jobs.out" >&2 || true
        exit 1
    }
    cmp -s "$workdir/ler-ref/journal.jsonl" \
           "$workdir/ler-j$jobs/journal.jsonl" || {
        echo "check_exec.sh: qpf_ler journal diverges at --jobs=$jobs" >&2
        exit 1
    }
done

# 2. qpf_chaos: a supervised recovery storm must aggregate identically
#    in parallel (stderr carries timing-ish recovery logs; stdout is
#    the bit-exact statistics contract).
echo "check_exec.sh: qpf_chaos jobs sweep"
chaos_args="--scenario=crash-recover --runs=4 --errors=3 \
            --max-windows=5000 --per=0.05 --seed=77177"
$chaos $chaos_args --jobs=1 > "$workdir/chaos-ref.out" 2> /dev/null
for jobs in 2 7; do
    $chaos $chaos_args --jobs=$jobs > "$workdir/chaos-j$jobs.out" 2> /dev/null
    cmp -s "$workdir/chaos-ref.out" "$workdir/chaos-j$jobs.out" || {
        echo "check_exec.sh: qpf_chaos stdout diverges at --jobs=$jobs" >&2
        diff "$workdir/chaos-ref.out" "$workdir/chaos-j$jobs.out" >&2 || true
        exit 1
    }
done

# 3. qpf_fuzz: the triage report is a pure function of the options.
echo "check_exec.sh: qpf_fuzz jobs sweep"
$fuzz --seed=7 --cases=12 --json --jobs=1 \
    > "$workdir/fuzz-ref.json" 2> /dev/null
for jobs in 2 8; do
    $fuzz --seed=7 --cases=12 --json --jobs=$jobs \
        > "$workdir/fuzz-j$jobs.json" 2> /dev/null
    cmp -s "$workdir/fuzz-ref.json" "$workdir/fuzz-j$jobs.json" || {
        echo "check_exec.sh: qpf_fuzz report diverges at --jobs=$jobs" >&2
        exit 1
    }
done

echo "check_exec.sh: PASS"

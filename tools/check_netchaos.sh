#!/usr/bin/env bash
# Network-chaos proof for qpf_serve + RetryClient, with real processes
# and deterministic FaultNet schedules (QPF_FAULTNET, injected into the
# LOAD process only — the server sees a hostile network, never a
# modified binary).
#
# The exactly-once contract under test:
#
#   1. isolation under fire: the PR 6 drill (9 tenants, tenant-0
#      poisoned into eviction) repeated under every FaultNet mode —
#      connection resets, seeded short sends, seeded stalls, single-bit
#      garble, and a silent blackhole with session leases armed.  Every
#      healthy tenant's reply transcript must stay byte-identical to
#      the fault-free reference: retries, reconnects, and replayed
#      replies are invisible in the byte stream.
#   2. lease reaping: the blackholed connection never sends a FIN, so
#      only the --lease-ms reaper can detect it; its sessions must be
#      PARKED (lease_expired >= 1) and transparently re-attached — not
#      evicted.
#   3. chaos drain: SIGTERM during a short-send run still checkpoints
#      every session and exits 130; a restarted server restores them
#      for a --resume client.
#   4. reset storm: a counting pass enumerates every socket op of a
#      single-tenant conversation, then reset@K is swept over the
#      ordinals (a window in quick mode, every K in storm mode).  Each
#      K must recover to a byte-identical transcript, and the summed
#      dedup_hits prove lost REPLIES were replayed from the idempotency
#      window rather than re-executed.
#
# Usage: tools/check_netchaos.sh [build-dir] [quick|storm]
#        (defaults: ./build, quick — CTest runs quick as tier1 and
#        storm under the slow label)
set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
mode=${2:-quick}
qpf_serve="$build_dir/tools/qpf_serve"
qpf_load="$build_dir/tools/qpf_serve_load"

for binary in "$qpf_serve" "$qpf_load"; do
    if [ ! -x "$binary" ]; then
        echo "check_netchaos.sh: $binary not built" >&2
        exit 1
    fi
done

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_netchaos.XXXXXX")
server_pid=""

cleanup() {
    code=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_netchaos.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# start_server <logfile> [extra flags...]: launch on an ephemeral port,
# export $server_pid and $port.
start_server() {
    log="$1"
    shift
    "$qpf_serve" --port=0 "$@" >"$log" 2>"$log.err" &
    server_pid=$!
    port=""
    tries=0
    while [ -z "$port" ]; do
        port=$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' "$log" \
            2>/dev/null || true)
        [ -n "$port" ] && break
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "check_netchaos.sh: server never reported its port" >&2
            cat "$log.err" >&2
            exit 1
        fi
        kill -0 "$server_pid" 2>/dev/null || {
            echo "check_netchaos.sh: server died on startup" >&2
            cat "$log.err" >&2
            exit 1
        }
        sleep 0.1
    done
}

stop_server() {
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null && server_exit=0 || server_exit=$?
    server_pid=""
}

# json_counter <file> <key>: pull one integer out of the --json summary.
json_counter() {
    sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

sessions=9      # 8 healthy + 1 poisoned in the perturbed runs
requests=8

echo "check_netchaos.sh: build $build_dir ($mode)"

# --- 1. fault-free --retry reference --------------------------------
start_server "$workdir/ref.log"
mkdir -p "$workdir/ref"
"$qpf_load" --port="$port" --sessions=$sessions --requests=$requests \
    --poison=0 --retry --json --transcript-dir="$workdir/ref" \
    >"$workdir/ref.json" 2>"$workdir/ref.load" \
    || { echo "check_netchaos.sh: reference load run failed" >&2;
         cat "$workdir/ref.load" >&2; exit 1; }
stop_server
grep -q '"schema": "qpf-serve-bench-v2"' "$workdir/ref.json" \
    || { echo "check_netchaos.sh: reference summary is not schema v2" >&2;
         cat "$workdir/ref.json" >&2; exit 1; }
echo "  reference: $sessions retry sessions clean (schema v2)"

# compare_healthy <dir> <label>: tenants 1..8 byte-identical to the
# reference, tenant-0 (poisoned) diverged and was evicted.
compare_healthy() {
    dir="$1"
    label="$2"
    i=1
    while [ "$i" -lt "$sessions" ]; do
        if ! cmp -s "$workdir/ref/tenant-$i.transcript" \
                   "$dir/tenant-$i.transcript"; then
            echo "check_netchaos.sh: tenant-$i transcript diverged under $label" >&2
            exit 1
        fi
        i=$((i + 1))
    done
    if cmp -s "$workdir/ref/tenant-0.transcript" "$dir/tenant-0.transcript"; then
        echo "check_netchaos.sh: poisoned tenant-0 did not diverge under $label" >&2
        exit 1
    fi
}

# --- 2. the PR 6 isolation drill under every wire-fault mode --------
for spec in "reset@12" "garble@9:bit=3" "short-send:seed=5" \
            "delay:ms=2:seed=5"; do
    tag=$(printf '%s' "$spec" | tr -c 'a-z0-9' '_')
    start_server "$workdir/$tag.log"
    mkdir -p "$workdir/$tag"
    QPF_FAULTNET="$spec" "$qpf_load" --port="$port" --sessions=$sessions \
        --requests=$requests --poison=1 --retry --json \
        --transcript-dir="$workdir/$tag" \
        >"$workdir/$tag.json" 2>"$workdir/$tag.load" \
        || { echo "check_netchaos.sh: load run failed under $spec" >&2;
             cat "$workdir/$tag.load" >&2; exit 1; }
    stop_server
    compare_healthy "$workdir/$tag" "$spec"
    grep -q 'evicted=1' "$workdir/$tag.load" \
        || { echo "check_netchaos.sh: no eviction under $spec" >&2;
             cat "$workdir/$tag.load" >&2; exit 1; }
    echo "  $spec: 8 healthy transcripts byte-identical, tenant-0 evicted"
done

# --- 3. blackhole + lease reaping -----------------------------------
# The swallowed connection never delivers a FIN; only the lease reaper
# can free its sessions, and it must PARK them for re-attach.
mkdir -p "$workdir/bh.state" "$workdir/bh"
start_server "$workdir/bh.log" --state-dir="$workdir/bh.state" --lease-ms=300
QPF_FAULTNET="blackhole@13" "$qpf_load" --port="$port" \
    --sessions=$sessions --requests=$requests --poison=1 --retry --json \
    --transcript-dir="$workdir/bh" \
    >"$workdir/bh.json" 2>"$workdir/bh.load" \
    || { echo "check_netchaos.sh: load run failed under blackhole@13" >&2;
         cat "$workdir/bh.load" >&2; exit 1; }
stop_server
compare_healthy "$workdir/bh" "blackhole@13"
leases=$(json_counter "$workdir/bh.json" lease_expirations)
if [ -z "$leases" ] || [ "$leases" -lt 1 ]; then
    echo "check_netchaos.sh: blackhole run reaped no lease (got '${leases:-0}')" >&2
    cat "$workdir/bh.json" >&2
    exit 1
fi
grep -q 'lease_expired=[1-9]' "$workdir/bh.log.err" \
    || { echo "check_netchaos.sh: drained server reported no lease expiry" >&2;
         cat "$workdir/bh.log.err" >&2; exit 1; }
echo "  blackhole@13: lease reaped ($leases), healthy transcripts intact"

# --- 4. chaos drain + transparent restore ---------------------------
mkdir -p "$workdir/drain.state" "$workdir/before"
start_server "$workdir/drain.log" --state-dir="$workdir/drain.state"
QPF_FAULTNET="short-send:seed=5" "$qpf_load" --port="$port" --sessions=4 \
    --requests=$requests --no-close --retry \
    --transcript-dir="$workdir/before" >"$workdir/before.load" 2>&1 \
    || { echo "check_netchaos.sh: pre-drain load run failed" >&2;
         cat "$workdir/before.load" >&2; exit 1; }
stop_server
if [ "$server_exit" -ne 130 ]; then
    echo "check_netchaos.sh: drained server exited $server_exit, want 130" >&2
    cat "$workdir/drain.log.err" >&2
    exit 1
fi
parked=$(ls "$workdir/drain.state" | grep -c '\.session$' || true)
if [ "$parked" -ne 4 ]; then
    echo "check_netchaos.sh: drain parked $parked of 4 sessions" >&2
    ls -la "$workdir/drain.state" >&2
    exit 1
fi
start_server "$workdir/restore.log" --state-dir="$workdir/drain.state"
"$qpf_load" --port="$port" --sessions=4 --requests=$requests --resume \
    --retry >"$workdir/restore.load" 2>&1 \
    || { echo "check_netchaos.sh: restore load run failed" >&2;
         cat "$workdir/restore.load" >&2; exit 1; }
stop_server
grep -q 'restored=4' "$workdir/restore.log.err" \
    || { echo "check_netchaos.sh: restart restored fewer than 4 sessions" >&2;
         cat "$workdir/restore.log.err" >&2; exit 1; }
echo "  drain: exit 130 with 4/4 parked under short sends, 4/4 restored"

# --- 5. reset storm over the op ordinals ----------------------------
# Counting pass: enumerate the socket ops of one tenant conversation
# (connection 1 of the load process; the stats query dials later).
start_server "$workdir/count.log"
QPF_FAULTNET="count:$workdir/ordinals.log" "$qpf_load" --port="$port" \
    --sessions=1 --requests=4 --retry >"$workdir/count.load" 2>&1 \
    || { echo "check_netchaos.sh: counting run failed" >&2;
         cat "$workdir/count.load" >&2; exit 1; }
stop_server
total=$(awk '$1 == 1 { n = $2 } END { print n + 0 }' "$workdir/ordinals.log")
if [ "$total" -lt 10 ]; then
    echo "check_netchaos.sh: counting pass saw only $total ops" >&2
    cat "$workdir/ordinals.log" >&2
    exit 1
fi

# Storm reference: the same single-tenant conversation, fault-free, on
# a fresh server (session ids and stack state must start clean for the
# byte-for-byte comparison).
start_server "$workdir/sweepref.log"
mkdir -p "$workdir/sweepref"
"$qpf_load" --port="$port" --sessions=1 --requests=4 --retry \
    --transcript-dir="$workdir/sweepref" >"$workdir/sweepref.load" 2>&1 \
    || { echo "check_netchaos.sh: storm reference run failed" >&2;
         cat "$workdir/sweepref.load" >&2; exit 1; }
stop_server

if [ "$mode" = "storm" ]; then
    ks=$(seq 1 "$total")
else
    # Quick window: both submit sends and both submit reply reads of
    # the first two requests (ordinals 5..8 of the fixed conversation).
    ks="5 6 7 8"
fi
dedup_sum=0
for k in $ks; do
    start_server "$workdir/sweep.log"
    mkdir -p "$workdir/sweep"
    rm -f "$workdir/sweep/tenant-0.transcript"
    QPF_FAULTNET="reset@$k" "$qpf_load" --port="$port" --sessions=1 \
        --requests=4 --retry --json --transcript-dir="$workdir/sweep" \
        >"$workdir/sweep.json" 2>"$workdir/sweep.load" \
        || { echo "check_netchaos.sh: reset@$k run failed" >&2;
             cat "$workdir/sweep.load" >&2; exit 1; }
    stop_server
    if ! cmp -s "$workdir/sweepref/tenant-0.transcript" \
               "$workdir/sweep/tenant-0.transcript"; then
        echo "check_netchaos.sh: reset@$k recovery transcript diverged" >&2
        exit 1
    fi
    hits=$(json_counter "$workdir/sweep.json" dedup_hits)
    dedup_sum=$((dedup_sum + ${hits:-0}))
done
if [ "$dedup_sum" -lt 1 ]; then
    echo "check_netchaos.sh: reset storm never replayed from the dedup window" >&2
    exit 1
fi
echo "  reset storm: K in {$(echo $ks | tr ' ' ',')} byte-identical, $dedup_sum dedup replays"

echo "check_netchaos.sh: PASS"

#!/bin/sh
# Build with ASan+UBSan (-DQPF_SANITIZE=ON) and run the robustness and
# classical-fault suites under the sanitizers.  Usage:
#
#   tools/check_sanitize.sh [build-dir]        (default: build-sanitize)
#
# Pass QPF_SANITIZE_FILTER to override the test selection; by default
# only the fault/robustness suites run, which keeps the sanitized run
# fast while still covering every new mutation path.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-sanitize"}
filter=${QPF_SANITIZE_FILTER:-'Robustness|ClassicalFault|FrameProtection|ValidatingLayer|LerStack|CliTool|CliCheckpoint|Snapshot|Journal|Resume|CheckpointFile'}

cmake -B "$build_dir" -S "$repo_root" -DQPF_SANITIZE=ON
cmake --build "$build_dir" --target qpf_tests -j "$(nproc 2>/dev/null || echo 4)"

export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}

"$build_dir/tests/qpf_tests" --gtest_filter="*$(printf '%s' "$filter" | sed 's/|/*:*/g')*"

echo "sanitized suites passed"

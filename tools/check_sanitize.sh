#!/usr/bin/env bash
# Build with sanitizers and run the relevant suites under them.  Usage:
#
#   tools/check_sanitize.sh [build-dir]          ASan+UBSan (default:
#                                                build-sanitize)
#   QPF_SANITIZE=thread tools/check_sanitize.sh [build-dir]
#                                                TSan over the parallel
#                                                campaign engine
#                                                (default: build-tsan)
#
# Pass QPF_SANITIZE_FILTER to override the test selection; by default
# only the fault/robustness and fuzz suites run (ASan) or the
# threaded-campaign and fuzz suites (TSan), which keeps the sanitized
# run fast while still covering every new mutation path.
set -euo pipefail

trap 'exit 130' INT
trap 'exit 143' TERM

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${QPF_SANITIZE:-ON}

if [ "$mode" = "thread" ]; then
  build_dir=${1:-"$repo_root/build-tsan"}
  filter=${QPF_SANITIZE_FILTER:-'Executor|ParallelCampaign|LerStack|Resume|Supervisor|Chaos|Fuzz|MutationSmoke|CorpusReplay|Serve|IoFault|FaultNet'}
else
  build_dir=${1:-"$repo_root/build-sanitize"}
  filter=${QPF_SANITIZE_FILTER:-'Executor|Robustness|ClassicalFault|FrameProtection|ValidatingLayer|LerStack|CliTool|CliCheckpoint|Snapshot|Journal|Resume|CheckpointFile|Supervisor|Chaos|Corruption|TimingLayer|Fuzz|MutationSmoke|CorpusReplay|Serve|IoFault|FaultNet'}
fi

cmake -B "$build_dir" -S "$repo_root" -DQPF_SANITIZE="$mode"
cmake --build "$build_dir" --target qpf_tests -j "$(nproc 2>/dev/null || echo 4)"

if [ "$mode" = "thread" ]; then
  export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
else
  export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}
fi

"$build_dir/tests/qpf_tests" --gtest_filter="*$(printf '%s' "$filter" | sed 's/|/*:*/g')*"

# Stress the work-stealing executor's scheduling surface: 20 repeats
# shuffle the thread interleavings under the sanitizer, which is where
# commit-order and RunState-lifetime races would show up.  Death tests
# are excluded — fork-under-sanitizer is slow and they race nothing.
"$build_dir/tests/qpf_tests" --gtest_filter='ExecutorTest.*' \
  --gtest_repeat=20 --gtest_brief=1

echo "sanitized suites passed ($mode)"

#!/usr/bin/env bash
# Deterministic chaos scenarios over the supervised control stack.
#
# Every scenario must end in exactly one of two ways — bit-identical
# statistics to the fault-free baseline, or a typed escalation with a
# nonzero exit — never silent divergence.  Scenarios:
#
#   1. baseline:           fault-free reference -> stats line R
#   2. crash-recover:      crash storm, supervised; recovered crashes
#                          leave the statistics equal to R
#   3. crash-unsupervised: the same storm with no supervisor dies with
#                          a typed TransientFaultError (exit 1)
#   4. crash-escalate:     a burst storm exhausts retries and episodes;
#                          typed SupervisionError + incident log (exit 1)
#   5. stall-degrade:      stalls blow the round deadline; decodes are
#                          skipped deterministically (two runs identical)
#   6. stall-escalate:     the same storm under an overrun budget dies
#                          with a typed SupervisionError (exit 1)
#   7. hard kill:          crash-recover SIGKILL'd mid-campaign resumes
#                          from PR 2's checkpoints to exactly R
#   8. corruption:         the mid-trial checkpoint is bit-flipped; the
#                          resume warns, falls back, and still prints R
#
# Usage: tools/check_chaos.sh [build-dir]     (default: ./build)
set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
qpf_chaos="$build_dir/tools/qpf_chaos"

if [ ! -x "$qpf_chaos" ]; then
    echo "check_chaos.sh: $qpf_chaos not built" >&2
    exit 1
fi

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_chaos.XXXXXX")

cleanup() {
    code=$?
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_chaos.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() {
    echo "check_chaos.sh: FAIL: $1" >&2
    exit 1
}

# One workload for every scenario, big enough (~1s) that the SIGKILL in
# scenario 7 lands mid-campaign.
args="--runs=4 --errors=10 --seed=20260806 --chaos-seed=7"

run_scenario() {
    # $1 scenario, $2 expected exit code; stdout -> $workdir/$1.out,
    # stderr -> $workdir/$1.err.  Extra args pass through.
    scenario="$1"
    want="$2"
    shift 2
    set +e
    $qpf_chaos --scenario="$scenario" $args "$@" \
        >"$workdir/$scenario.out" 2>"$workdir/$scenario.err"
    got=$?
    set -e
    [ "$got" -eq "$want" ] || {
        cat "$workdir/$scenario.err" >&2
        fail "$scenario exited $got (want $want)"
    }
}

echo "== 1. baseline (fault-free reference) =="
run_scenario baseline 0
reference=$(cat "$workdir/baseline.out")
printf '%s\n' "$reference"

echo "== 2. crash-recover: recovered storm is bit-identical =="
run_scenario crash-recover 0
[ "$(cat "$workdir/crash-recover.out")" = "$reference" ] || \
    fail "crash-recover statistics differ from the baseline
  baseline: $reference
  storm:    $(cat "$workdir/crash-recover.out")"
grep -q 'recovered=0 ' "$workdir/crash-recover.err" && \
    fail "crash-recover recovered no faults (storm never fired)"
grep -o 'recovered=[0-9]*' "$workdir/crash-recover.err"

echo "== 3. crash-unsupervised: typed fault, nonzero exit =="
run_scenario crash-unsupervised 1
grep -q 'unrecovered classical fault: classical-fault-layer' \
    "$workdir/crash-unsupervised.err" || \
    fail "crash-unsupervised died without the typed fault message"

echo "== 4. crash-escalate: typed escalation with incident record =="
run_scenario crash-escalate 1
grep -q 'supervision escalation: supervisor:' \
    "$workdir/crash-escalate.err" || \
    fail "crash-escalate died without a SupervisionError"
grep -q '^#1 ' "$workdir/crash-escalate.err" || \
    fail "crash-escalate escalated without an incident record"

echo "== 5. stall-degrade: deterministic skip-decode degradation =="
run_scenario stall-degrade 0
mv "$workdir/stall-degrade.out" "$workdir/stall-degrade.first"
grep -q 'overruns=0 ' "$workdir/stall-degrade.err" && \
    fail "stall-degrade saw no deadline overruns (storm never fired)"
grep -o 'overruns=[0-9]* skipped_decodes=[0-9]*' "$workdir/stall-degrade.err"
run_scenario stall-degrade 0
cmp -s "$workdir/stall-degrade.first" "$workdir/stall-degrade.out" || \
    fail "two stall-degrade runs differ (modeled time is not deterministic)"

echo "== 6. stall-escalate: overrun budget, typed escalation =="
run_scenario stall-escalate 1
grep -q 'supervision escalation: supervisor: deadline overrun budget' \
    "$workdir/stall-escalate.err" || \
    fail "stall-escalate died without the deadline escalation"

echo "== 7. hard kill: SIGKILL mid-storm, resume to the baseline =="
dir="$workdir/sigkill"
$qpf_chaos --scenario=crash-recover $args --state-dir="$dir" \
    --checkpoint-every=40 >/dev/null 2>&1 &
pid=$!
sleep 0.4
kill -KILL "$pid" 2>/dev/null || true
set +e
wait "$pid" 2>/dev/null
set -e
run_scenario crash-recover 0 --state-dir="$dir" --checkpoint-every=40
[ "$(cat "$workdir/crash-recover.out")" = "$reference" ] || \
    fail "post-SIGKILL resume differs from the baseline
  baseline: $reference
  resumed:  $(cat "$workdir/crash-recover.out")"

echo "== 8. corruption: bit-flipped checkpoint, resume to the baseline =="
dir="$workdir/corrupt"
$qpf_chaos --scenario=crash-recover $args --state-dir="$dir" \
    --checkpoint-every=40 >/dev/null 2>&1 &
pid=$!
sleep 0.4
kill -KILL "$pid" 2>/dev/null || true
set +e
wait "$pid" 2>/dev/null
set -e
if [ -f "$dir/stack.ckpt" ]; then
    size=$(wc -c < "$dir/stack.ckpt")
    printf '\377' | dd of="$dir/stack.ckpt" bs=1 seek=$((size / 2)) \
        count=1 conv=notrunc 2>/dev/null
    echo "(checkpoint bit-flipped at byte $((size / 2)) of $size)"
else
    echo "(no mid-trial checkpoint on disk at kill time; journal-only resume)"
fi
run_scenario crash-recover 0 --state-dir="$dir" --checkpoint-every=40
[ "$(cat "$workdir/crash-recover.out")" = "$reference" ] || \
    fail "post-corruption resume differs from the baseline
  baseline: $reference
  resumed:  $(cat "$workdir/crash-recover.out")"

echo "check_chaos.sh: PASS (8 scenarios: recovered storms bit-identical, failures typed)"

#!/usr/bin/env python3
"""Compare fresh --json bench reports against the committed baselines.

The bench binaries (bench/) write machine-readable reports; the repo
pins one blessed report per bench at the root (BENCH_micro.json,
BENCH_ler.json, BENCH_serve.json).  This tool re-reads a fresh report,
pairs it with its baseline by report shape, and flags performance
regressions beyond a relative threshold (default 30% — wide enough to
absorb machine-to-machine noise, tight enough to catch a lost
optimisation).

Only *performance* metrics are compared.  Physics results (LER values,
standard deviations) vary legitimately with seeds and trial counts and
are the province of tools/check_bench.sh, not this tool.

Usage:
  tools/bench_compare.py FRESH.json [FRESH2.json ...]
      [--baseline-dir DIR]   directory holding BENCH_*.json (default:
                             the repository root, next to tools/)
      [--threshold PCT]      relative regression threshold in percent
                             (default 30)
      [--against FILE]       explicit baseline report: compare every
                             FRESH.json against FILE instead of the
                             committed BENCH_*.json (the two must be
                             reports of the same kind)
      [--bless]              when every metric is within threshold,
                             overwrite the committed baseline with the
                             fresh report — the regeneration gate used
                             to re-pin BENCH_ler.json / BENCH_serve.json
                             after an engine change that must be proven
                             perf-neutral before the new numbers are
                             blessed

Exit codes: 0 all metrics within threshold, 1 regression found,
2 usage / malformed report.
"""

import argparse
import json
import os
import sys

# Metric tables: (json key path, direction).  "higher" means a drop is
# a regression; "lower" means growth is a regression.  Keys absent from
# either report are skipped (benches grow fields over time).
TOP_LEVEL_METRICS = {
    "bench_micro": [
        (("gate_ops_per_sec",), "higher"),
    ],
    "bench_ler": [
        (("trials_per_sec",), "higher"),
    ],
    # v1 and v2 serve reports gate the same four latency/throughput
    # metrics; the v2 robustness counters (retries, reconnects,
    # dedup_hits, lease_expirations) are workload descriptions, not
    # performance, and are deliberately not compared.
    "qpf-serve-bench": [
        (("requests_per_sec",), "higher"),
        (("sessions_per_sec",), "higher"),
        (("latency_ms", "p50"), "lower"),
        (("latency_ms", "p99"), "lower"),
    ],
}

BASELINE_FILES = {
    "bench_micro": "BENCH_micro.json",
    "bench_ler": "BENCH_ler.json",
    "qpf-serve-bench": "BENCH_serve.json",
}


def report_kind(report):
    """Identify which bench produced a report, or None."""
    if report.get("schema") in ("qpf-serve-bench-v1", "qpf-serve-bench-v2"):
        return "qpf-serve-bench"
    name = report.get("name")
    if name in ("bench_micro", "bench_ler"):
        return name
    return None


def lookup(report, path):
    value = report
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value if isinstance(value, (int, float)) else None


def relative_change(baseline, fresh, direction):
    """Signed regression fraction: positive means worse."""
    if baseline == 0:
        return 0.0
    if direction == "higher":
        return (baseline - fresh) / baseline
    return (fresh - baseline) / baseline


def micro_kernel_metrics(baseline, fresh):
    """Per-kernel ns/op pairs from bench_micro stats, keyed (kernel, n)."""
    def as_map(report):
        table = {}
        for row in report.get("stats", []):
            key = (row.get("kernel"), row.get("n"))
            value = row.get("word_parallel_ns_op")
            if None not in key and isinstance(value, (int, float)):
                table[key] = value
        return table

    base_map, fresh_map = as_map(baseline), as_map(fresh)
    for key in sorted(base_map.keys() & fresh_map.keys()):
        label = "word_parallel_ns_op[%s,n=%d]" % key
        yield label, base_map[key], fresh_map[key], "lower"


def compare(baseline, fresh, kind, threshold):
    """Yield (label, base, fresh, regression_fraction, is_regression)."""
    rows = []
    for path, direction in TOP_LEVEL_METRICS[kind]:
        base_value = lookup(baseline, path)
        fresh_value = lookup(fresh, path)
        if base_value is None or fresh_value is None:
            continue
        rows.append((".".join(path), base_value, fresh_value, direction))
    if kind == "bench_micro":
        rows.extend(micro_kernel_metrics(baseline, fresh))
    for label, base_value, fresh_value, direction in rows:
        change = relative_change(base_value, fresh_value, direction)
        yield label, base_value, fresh_value, change, change > threshold


def main(argv):
    parser = argparse.ArgumentParser(
        description="flag >threshold%% perf regressions vs BENCH_*.json")
    parser.add_argument("reports", nargs="+", metavar="FRESH.json")
    parser.add_argument("--baseline-dir",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)), os.pardir))
    parser.add_argument("--threshold", type=float, default=30.0,
                        help="regression threshold in percent (default 30)")
    parser.add_argument("--against", metavar="FILE",
                        help="explicit baseline report instead of the "
                             "committed BENCH_*.json")
    parser.add_argument("--bless", action="store_true",
                        help="on success, overwrite the committed baseline "
                             "with the fresh report (regeneration gate)")
    args = parser.parse_args(argv)
    threshold = args.threshold / 100.0

    regressions = 0
    compared = 0
    blessed = []
    for path in args.reports:
        try:
            with open(path) as handle:
                fresh = json.load(handle)
        except (OSError, ValueError) as error:
            print("bench_compare: cannot read %s: %s" % (path, error),
                  file=sys.stderr)
            return 2
        kind = report_kind(fresh)
        if kind is None:
            print("bench_compare: %s is not a recognised bench report"
                  % path, file=sys.stderr)
            return 2
        committed_path = os.path.join(args.baseline_dir, BASELINE_FILES[kind])
        baseline_path = args.against or committed_path
        try:
            with open(baseline_path) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print("bench_compare: cannot read baseline %s: %s"
                  % (baseline_path, error), file=sys.stderr)
            return 2
        if args.against and report_kind(baseline) != kind:
            print("bench_compare: --against %s is a %s report but %s is %s"
                  % (baseline_path, report_kind(baseline), path, kind),
                  file=sys.stderr)
            return 2
        blessed.append((path, committed_path))

        print("%s vs %s:" % (path, os.path.basename(baseline_path)))
        for label, base_value, fresh_value, change, regressed in \
                compare(baseline, fresh, kind, threshold):
            compared += 1
            marker = "REGRESSION" if regressed else "ok"
            print("  %-34s %14.6g -> %14.6g  %+7.1f%%  %s"
                  % (label, base_value, fresh_value, change * 100.0, marker))
            if regressed:
                regressions += 1

    if compared == 0:
        print("bench_compare: no comparable metrics found", file=sys.stderr)
        return 2
    if regressions:
        print("bench_compare: %d metric(s) regressed more than %.0f%%"
              % (regressions, args.threshold))
        return 1
    print("bench_compare: %d metric(s) within %.0f%% of baseline"
          % (compared, args.threshold))
    if args.bless:
        for fresh_path, committed_path in blessed:
            with open(fresh_path) as handle:
                body = handle.read()
            with open(committed_path, "w") as handle:
                handle.write(body)
            print("bench_compare: blessed %s <- %s"
                  % (os.path.basename(committed_path), fresh_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

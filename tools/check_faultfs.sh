#!/usr/bin/env bash
# Crash-point enumeration over the real binaries (ALICE/CrashMonkey
# style), driven by the QPF_FAULTFS fault-injecting I/O backend
# (src/io/fault_fs.*) that every tool installs from the environment.
#
# For each durable-I/O scenario the harness first runs a counting pass
# (QPF_FAULTFS=count:LOG) to record the exact sequence of durable ops
# — open-for-write, write, fsync, rename, truncate, unlink — then
# re-runs the scenario once per op k with QPF_FAULTFS=kill@k (SIGKILL
# semantics, exit 137), including torn final writes, and proves
# recovery:
#
#   1. qpf_run --checkpoint-dir: after every kill point (and a torn
#      variant of every write), --resume completes and the shot
#      journal is byte-identical to an uninterrupted reference.
#   2. qpf_ler --state-dir: after every kill point AND after every
#      sticky typed-failure point (fail@k:errno=ENOSPC:sticky, which
#      must exit with a typed error, never corrupt), re-running to
#      completion reproduces the reference statistics line exactly.
#   3. qpf_serve drain: killed at every durable op of the SIGTERM
#      park-everything drain, a restarted server restores exactly the
#      sessions whose park files landed (rename is the commit point)
#      and serves a --resume client cleanly.
#   4. sustained ENOSPC on the serve state dir
#      (QPF_FAULTFS=enospc-under=DIR): every tenant transcript stays
#      byte-identical to the fault-free reference, parking fails
#      (parked=0) and the drain still exits 130 — degraded, never
#      corrupt or hung.
#
# Usage: tools/check_faultfs.sh [build-dir]     (default: ./build)
set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
qpf_run="$build_dir/tools/qpf_run"
qpf_ler="$build_dir/tools/qpf_ler"
qpf_serve="$build_dir/tools/qpf_serve"
qpf_load="$build_dir/tools/qpf_serve_load"

for binary in "$qpf_run" "$qpf_ler" "$qpf_serve" "$qpf_load"; do
    if [ ! -x "$binary" ]; then
        echo "check_faultfs.sh: $binary not built" >&2
        exit 1
    fi
done

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_faultfs.XXXXXX")
server_pid=""

cleanup() {
    code=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_faultfs.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() {
    echo "check_faultfs.sh: $*" >&2
    exit 1
}

# Run "$@" expecting the fault-injected SIGKILL (exit 137).  Any other
# outcome means the kill point never fired or the process failed on
# its own — both enumeration bugs.
expect_killed() {
    local spec="$1"
    shift
    set +e
    QPF_FAULTFS="$spec" "$@" >/dev/null 2>&1
    local status=$?
    set -e
    [ "$status" -eq 137 ] || \
        fail "$spec: expected exit 137 (injected SIGKILL), got $status ($*)"
}

cat >"$workdir/program.qasm" <<'EOF'
qubits 4
h q0
cnot q0,q1
cnot q1,q2
cnot q2,q3
measure q0
measure q1
measure q2
measure q3
EOF

echo "check_faultfs.sh: build $build_dir"

# --- 1. qpf_run: kill at every durable journal/checkpoint op --------
run_args=(--shots=6 --seed=7 --pauli-frame)

"$qpf_run" "$workdir/program.qasm" "${run_args[@]}" \
    --checkpoint-dir="$workdir/run_ref" >/dev/null 2>&1 \
    || fail "qpf_run reference run failed"
[ -s "$workdir/run_ref/shots.jsonl" ] || fail "reference journal is empty"

QPF_FAULTFS="count:$workdir/run.oplog" \
    "$qpf_run" "$workdir/program.qasm" "${run_args[@]}" \
    --checkpoint-dir="$workdir/run_count" >/dev/null 2>&1 \
    || fail "qpf_run counting pass failed"
n_run=$(wc -l <"$workdir/run.oplog")
[ "$n_run" -ge 10 ] || fail "qpf_run counting pass saw only $n_run ops"

run_crash_points=0
for k in $(seq 1 "$n_run"); do
    kind=$(awk -v n="$k" 'NR == n { print $2 }' "$workdir/run.oplog")
    specs=("kill@$k")
    # Writes also get a torn variant: only a 2-byte prefix of the final
    # write reaches the disk before the kill.
    [ "$kind" = "write" ] && specs+=("kill@$k:torn=2")
    for spec in "${specs[@]}"; do
        dir="$workdir/run_kill"
        rm -rf "$dir"
        expect_killed "$spec" "$qpf_run" "$workdir/program.qasm" \
            "${run_args[@]}" --checkpoint-dir="$dir"
        "$qpf_run" "$workdir/program.qasm" "${run_args[@]}" \
            --resume="$dir" >/dev/null 2>&1 \
            || fail "$spec: qpf_run --resume failed"
        cmp -s "$dir/shots.jsonl" "$workdir/run_ref/shots.jsonl" \
            || fail "$spec: resumed shot journal differs from the reference"
        run_crash_points=$((run_crash_points + 1))
    done
done
echo "  qpf_run: $run_crash_points crash points over $n_run durable ops," \
    "every resume bit-identical"

# --- 2. qpf_ler: kill AND typed-failure at every durable op ---------
ler_args=(--per=2e-3 --runs=2 --errors=2 --max-windows=400 --seed=20260807
    --pauli-frame --checkpoint-every=25)

reference=$("$qpf_ler" "${ler_args[@]}" 2>/dev/null) \
    || fail "qpf_ler reference run failed"

# Re-run a state dir until the campaign reports success; every killed
# run must make progress from durable state, so a handful of attempts
# always suffices.
run_to_completion() {
    local dir="$1" attempt out status
    for attempt in 1 2 3 4 5; do
        set +e
        out=$("$qpf_ler" "${ler_args[@]}" --state-dir="$dir" 2>/dev/null)
        status=$?
        set -e
        if [ "$status" -eq 0 ]; then
            printf '%s\n' "$out"
            return 0
        fi
    done
    fail "campaign in $dir did not complete within 5 attempts"
}

QPF_FAULTFS="count:$workdir/ler.oplog" \
    "$qpf_ler" "${ler_args[@]}" --state-dir="$workdir/ler_count" \
    >/dev/null 2>&1 || fail "qpf_ler counting pass failed"
n_ler=$(wc -l <"$workdir/ler.oplog")
[ "$n_ler" -ge 10 ] || fail "qpf_ler counting pass saw only $n_ler ops"

for k in $(seq 1 "$n_ler"); do
    dir="$workdir/ler_kill"
    rm -rf "$dir"
    expect_killed "kill@$k" "$qpf_ler" "${ler_args[@]}" --state-dir="$dir"
    resumed=$(run_to_completion "$dir")
    [ "$resumed" = "$reference" ] || fail "kill@$k: resumed statistics differ
  reference: $reference
  resumed:   $resumed"

    # The same op failing with a typed errno instead of a crash: the
    # tool must exit 1 with a typed error (never 137, never corrupt),
    # and the state it left behind must still resume bit-identically.
    dir="$workdir/ler_fail"
    rm -rf "$dir"
    set +e
    QPF_FAULTFS="fail@$k:errno=ENOSPC:sticky" \
        "$qpf_ler" "${ler_args[@]}" --state-dir="$dir" >/dev/null 2>&1
    status=$?
    set -e
    [ "$status" -eq 1 ] || \
        fail "fail@$k: expected typed-error exit 1, got $status"
    resumed=$(run_to_completion "$dir")
    [ "$resumed" = "$reference" ] || fail "fail@$k: resumed statistics differ
  reference: $reference
  resumed:   $resumed"
done
echo "  qpf_ler: kill@k and sticky fail@k swept over $n_ler durable ops," \
    "every recovery bit-identical"

# --- serve helpers (check_serve.sh idiom) ---------------------------
# start_server <logfile> [flags...]: ephemeral port, exports
# $server_pid and $port.  $faultfs (may be empty) reaches only the
# server, never the load generator.
faultfs=""
start_server() {
    local log="$1"
    shift
    if [ -n "$faultfs" ]; then
        env QPF_FAULTFS="$faultfs" "$qpf_serve" --port=0 "$@" \
            >"$log" 2>"$log.err" &
    else
        "$qpf_serve" --port=0 "$@" >"$log" 2>"$log.err" &
    fi
    server_pid=$!
    port=""
    local tries=0
    while [ -z "$port" ]; do
        port=$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' "$log" \
            2>/dev/null || true)
        [ -n "$port" ] && break
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            cat "$log.err" >&2
            fail "server never reported its port"
        fi
        kill -0 "$server_pid" 2>/dev/null || {
            cat "$log.err" >&2
            fail "server died on startup"
        }
        sleep 0.1
    done
}

stop_server() {
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null && server_exit=0 || server_exit=$?
    server_pid=""
}

# --- 3. qpf_serve: kill at every durable op of the drain ------------
state="$workdir/serve_state"
mkdir -p "$state"
faultfs="count:$workdir/serve.oplog"
start_server "$workdir/serve_count.log" --state-dir="$state"
faultfs=""
"$qpf_load" --port="$port" --sessions=3 --requests=4 --no-close \
    >/dev/null 2>&1 || fail "qpf_serve counting load failed"
stop_server
[ "$server_exit" -eq 130 ] || \
    fail "counting-pass drain exited $server_exit (want 130)"
n_serve=$(wc -l <"$workdir/serve.oplog")
[ "$n_serve" -ge 10 ] || fail "qpf_serve counting pass saw only $n_serve ops"

for k in $(seq 1 "$n_serve"); do
    rm -rf "$state"
    mkdir -p "$state"
    faultfs="kill@$k"
    start_server "$workdir/serve_kill.log" --state-dir="$state"
    faultfs=""
    "$qpf_load" --port="$port" --sessions=3 --requests=4 --no-close \
        >/dev/null 2>&1 || fail "kill@$k: load before drain failed"
    stop_server
    [ "$server_exit" -eq 137 ] || \
        fail "kill@$k: drain exited $server_exit (want 137, injected SIGKILL)"

    # rename(2) is the park commit point: exactly the sessions whose
    # .session files landed must restore; the rest rebuild fresh.  The
    # stale .tmp the kill may have left must never confuse restore.
    parked=$(ls "$state" | grep -c '\.session$' || true)
    start_server "$workdir/serve_restore.log" --state-dir="$state"
    "$qpf_load" --port="$port" --sessions=3 --requests=4 --resume \
        >/dev/null 2>&1 \
        || fail "kill@$k: --resume load after restart failed"
    stop_server
    [ "$server_exit" -eq 130 ] || \
        fail "kill@$k: post-restart drain exited $server_exit (want 130)"
    restored=$(sed -n 's/.*restored=\([0-9][0-9]*\).*/\1/p' \
        "$workdir/serve_restore.log.err")
    [ "$restored" = "$parked" ] || \
        fail "kill@$k: $parked park file(s) on disk but restored=$restored"
done
echo "  qpf_serve: drain killed at each of $n_serve durable ops," \
    "restore always matched the parked set"

# --- 4. qpf_serve: sustained ENOSPC on the state dir ----------------
state_ref="$workdir/enospc_ref_state"
mkdir -p "$state_ref"
start_server "$workdir/enospc_ref.log" --state-dir="$state_ref" \
    --idle-evict-ms=100
mkdir -p "$workdir/enospc_ref"
"$qpf_load" --port="$port" --sessions=3 --requests=6 --no-close \
    --transcript-dir="$workdir/enospc_ref" >/dev/null 2>&1 \
    || fail "ENOSPC reference load failed"
sleep 0.5
stop_server
[ "$server_exit" -eq 130 ] || \
    fail "ENOSPC reference drain exited $server_exit (want 130)"

state="$workdir/enospc_state"
mkdir -p "$state"
faultfs="enospc-under=$state"
start_server "$workdir/enospc.log" --state-dir="$state" --idle-evict-ms=100
faultfs=""
mkdir -p "$workdir/enospc_fault"
"$qpf_load" --port="$port" --sessions=3 --requests=6 --no-close \
    --transcript-dir="$workdir/enospc_fault" >/dev/null 2>&1 \
    || fail "load against the ENOSPC-starved server failed"
sleep 0.5   # idle parking fires, every park hits ENOSPC
stop_server
[ "$server_exit" -eq 130 ] || \
    fail "ENOSPC drain exited $server_exit (want 130: degraded, not dead)"
grep -q 'parked=0' "$workdir/enospc.log.err" \
    || fail "ENOSPC run still parked sessions: $(cat "$workdir/enospc.log.err")"
for transcript in "$workdir/enospc_ref"/*; do
    name=$(basename "$transcript")
    cmp -s "$transcript" "$workdir/enospc_fault/$name" \
        || fail "tenant $name transcript diverged under state-dir ENOSPC"
done
echo "  qpf_serve: ENOSPC-starved state dir degraded cleanly," \
    "every tenant transcript bit-identical"

echo "check_faultfs.sh: PASS"

#!/usr/bin/env bash
# Smoke-run every bench binary at a tiny workload and validate the
# machine-readable report each one writes via --json.
#
# Two things are checked per binary:
#   1. it exits 0 with --json <path> (tiny trial counts via the QPF_LER_*
#      environment knobs, so the whole sweep stays in the seconds range);
#   2. the emitted JSON parses and matches the schema documented in
#      bench/bench_json.h: exactly the keys {name, config, wall_ms,
#      trials_per_sec, gate_ops_per_sec, stats}, with stats a list of
#      flat objects.
#
# Usage: tools/check_bench.sh [build-dir]     (default: ./build)
set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_dir="$build_dir/bench"

if [ ! -d "$bench_dir" ]; then
    echo "check_bench.sh: $bench_dir not built" >&2
    exit 1
fi

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_bench.XXXXXX")

# Cleanup always; report any nonzero exit (a crashed bench or a schema
# failure under set -e) so CTest can't see a green run with a dead
# child.  Signals re-raise through the standard codes.
server_pid=""
cleanup() {
    code=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2> /dev/null; then
        kill -KILL "$server_pid" 2> /dev/null || true
        wait "$server_pid" 2> /dev/null || true
    fi
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_bench.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# Tiny workloads: one run per point, stop at the first logical error,
# a handful of fault-injection circuits.  bench_micro ignores these and
# is kept honest by its own fixed-size kernel sweep.
export QPF_LER_RUNS=1
export QPF_LER_ERRORS=1
export QPF_FAULT_CIRCUITS=50

count=0
for bench in "$bench_dir"/bench_*; do
    [ -x "$bench" ] || continue
    [ -f "$bench" ] || continue
    name=$(basename "$bench")
    json="$workdir/$name.json"
    echo "check_bench.sh: $name"
    "$bench" --json "$json" --jobs 2 > "$workdir/$name.log" 2>&1 || {
        status=$?
        echo "check_bench.sh: $name FAILED (exit $status)" >&2
        tail -20 "$workdir/$name.log" >&2
        # Propagate the child's own exit code (139 for a segfault, not
        # a generic 1), so the CTest log tells the real story.
        exit "$status"
    }
    python3 - "$json" "$name" <<'EOF'
import json, sys
path, name = sys.argv[1], sys.argv[2]
with open(path) as f:
    report = json.load(f)
expected = {"name", "config", "wall_ms", "trials_per_sec",
            "gate_ops_per_sec", "stats"}
assert set(report) == expected, f"{name}: keys {sorted(report)}"
assert isinstance(report["name"], str) and report["name"], name
assert isinstance(report["config"], dict), name
assert isinstance(report["wall_ms"], (int, float)), name
assert report["wall_ms"] >= 0, name
for key in ("trials_per_sec", "gate_ops_per_sec"):
    assert report[key] is None or isinstance(report[key], (int, float)), name
assert isinstance(report["stats"], list), name
for row in report["stats"]:
    assert isinstance(row, dict) and row, f"{name}: stats row {row!r}"
EOF
    count=$((count + 1))
done

if [ "$count" -lt 10 ]; then
    echo "check_bench.sh: only $count bench binaries found" >&2
    exit 1
fi

# The fuzzer's --json triage report is the other machine-readable
# schema shipped by tools/: validate it the same way, once clean
# (verdict PASS, no failures) and once with a planted mutation
# (verdict FAIL, every failure row fully triaged and shrunk).
fuzz="$build_dir/tools/qpf_fuzz"
if [ ! -x "$fuzz" ]; then
    echo "check_bench.sh: $fuzz not built" >&2
    exit 1
fi
echo "check_bench.sh: qpf_fuzz triage schema"
"$fuzz" --seed=1 --cases=5 --json > "$workdir/fuzz-clean.json" 2> /dev/null
QPF_PLANT_BUG=2 "$fuzz" --seed=7 --cases=25 --max-failures=2 --json \
    > "$workdir/fuzz-planted.json" 2> /dev/null && {
    echo "check_bench.sh: planted fuzz run unexpectedly passed" >&2
    exit 1
}
python3 - "$workdir/fuzz-clean.json" "$workdir/fuzz-planted.json" <<'EOF'
import json, sys
expected = {"schema", "seed", "cases", "oracle_runs", "passes", "skips",
            "failures", "verdict"}
row_keys = {"oracle", "case_index", "case_seed", "detail", "original_gates",
            "shrunk_gates", "shrink_evaluations", "reproducer"}
for path, verdict in zip(sys.argv[1:3], ("PASS", "FAIL")):
    with open(path) as f:
        report = json.load(f)
    assert set(report) == expected, f"{path}: keys {sorted(report)}"
    assert report["schema"] == "qpf-fuzz-triage-v1", path
    assert report["verdict"] == verdict, f"{path}: {report['verdict']}"
    for key in ("seed", "cases", "oracle_runs", "passes", "skips"):
        assert isinstance(report[key], int) and report[key] >= 0, path
    assert report["oracle_runs"] == report["passes"] + report["skips"] + \
        len(report["failures"]), path
    assert isinstance(report["failures"], list), path
    assert bool(report["failures"]) == (verdict == "FAIL"), path
    for row in report["failures"]:
        assert set(row) == row_keys, f"{path}: failure keys {sorted(row)}"
        assert isinstance(row["oracle"], str) and row["oracle"], path
        assert isinstance(row["detail"], str) and row["detail"], path
        assert row["shrunk_gates"] <= max(row["original_gates"], 1), path
EOF

# The serve stack's load report (qpf_serve_load --json) is the third
# machine-readable schema: run a small resilient-client workload against
# a live server and validate the qpf-serve-bench-v2 key set, including
# the robustness counters (retries, reconnects, dedup_hits,
# lease_expirations) that bench_compare.py deliberately does not gate.
serve="$build_dir/tools/qpf_serve"
serve_load="$build_dir/tools/qpf_serve_load"
if [ ! -x "$serve" ] || [ ! -x "$serve_load" ]; then
    echo "check_bench.sh: $serve / $serve_load not built" >&2
    exit 1
fi
echo "check_bench.sh: qpf_serve_load report schema"
"$serve" --port=0 > "$workdir/serve.log" 2> "$workdir/serve.err" &
server_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
               "$workdir/serve.log" | head -n 1)
    [ -n "$port" ] && break
    if ! kill -0 "$server_pid" 2> /dev/null; then
        echo "check_bench.sh: qpf_serve died during startup" >&2
        cat "$workdir/serve.err" >&2
        exit 1
    fi
    sleep 0.05
done
if [ -z "$port" ]; then
    echo "check_bench.sh: qpf_serve never reported its port" >&2
    exit 1
fi
"$serve_load" --port="$port" --sessions=4 --requests=4 --retry --json \
    > "$workdir/serve-bench.json" 2> "$workdir/serve-load.log" || {
    status=$?
    echo "check_bench.sh: qpf_serve_load FAILED (exit $status)" >&2
    tail -20 "$workdir/serve-load.log" >&2
    exit "$status"
}
kill -TERM "$server_pid" 2> /dev/null || true
wait "$server_pid" 2> /dev/null || true
server_pid=""
python3 - "$workdir/serve-bench.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    report = json.load(f)
expected = {"schema", "sessions", "requests_per_session", "poisoned",
            "sessions_ok", "sessions_evicted", "replies_ok", "replies_error",
            "retries", "reconnects", "dedup_hits", "lease_expirations",
            "wall_ms", "latency_ms", "requests_per_sec", "sessions_per_sec"}
assert set(report) == expected, f"keys {sorted(report)}"
assert report["schema"] == "qpf-serve-bench-v2", report["schema"]
for key in ("sessions", "requests_per_session", "poisoned", "sessions_ok",
            "sessions_evicted", "replies_ok", "replies_error", "retries",
            "reconnects", "dedup_hits", "lease_expirations"):
    assert isinstance(report[key], int) and report[key] >= 0, key
assert report["sessions_ok"] == report["sessions"], "healthy run evicted"
assert report["replies_error"] == 0, "healthy run saw error replies"
assert isinstance(report["latency_ms"], dict), "latency_ms"
assert set(report["latency_ms"]) == {"p50", "p99", "p999"}, \
    sorted(report["latency_ms"])
for key, value in report["latency_ms"].items():
    assert isinstance(value, (int, float)) and value >= 0, key
for key in ("wall_ms", "requests_per_sec", "sessions_per_sec"):
    assert isinstance(report[key], (int, float)) and report[key] >= 0, key
EOF

echo "check_bench.sh: PASS ($count bench reports + fuzz triage + serve report validated)"

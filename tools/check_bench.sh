#!/bin/sh
# Smoke-run every bench binary at a tiny workload and validate the
# machine-readable report each one writes via --json.
#
# Two things are checked per binary:
#   1. it exits 0 with --json <path> (tiny trial counts via the QPF_LER_*
#      environment knobs, so the whole sweep stays in the seconds range);
#   2. the emitted JSON parses and matches the schema documented in
#      bench/bench_json.h: exactly the keys {name, config, wall_ms,
#      trials_per_sec, gate_ops_per_sec, stats}, with stats a list of
#      flat objects.
#
# Usage: tools/check_bench.sh [build-dir]     (default: ./build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_dir="$build_dir/bench"

if [ ! -d "$bench_dir" ]; then
    echo "check_bench.sh: $bench_dir not built" >&2
    exit 1
fi

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_bench.XXXXXX")

# Cleanup always; report any nonzero exit (a crashed bench or a schema
# failure under set -e) so CTest can't see a green run with a dead
# child.  Signals re-raise through the standard codes.
cleanup() {
    code=$?
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_bench.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# Tiny workloads: one run per point, stop at the first logical error,
# a handful of fault-injection circuits.  bench_micro ignores these and
# is kept honest by its own fixed-size kernel sweep.
export QPF_LER_RUNS=1
export QPF_LER_ERRORS=1
export QPF_FAULT_CIRCUITS=50

count=0
for bench in "$bench_dir"/bench_*; do
    [ -x "$bench" ] || continue
    [ -f "$bench" ] || continue
    name=$(basename "$bench")
    json="$workdir/$name.json"
    echo "check_bench.sh: $name"
    "$bench" --json "$json" --jobs 2 > "$workdir/$name.log" 2>&1 || {
        status=$?
        echo "check_bench.sh: $name FAILED (exit $status)" >&2
        tail -20 "$workdir/$name.log" >&2
        # Propagate the child's own exit code (139 for a segfault, not
        # a generic 1), so the CTest log tells the real story.
        exit "$status"
    }
    python3 - "$json" "$name" <<'EOF'
import json, sys
path, name = sys.argv[1], sys.argv[2]
with open(path) as f:
    report = json.load(f)
expected = {"name", "config", "wall_ms", "trials_per_sec",
            "gate_ops_per_sec", "stats"}
assert set(report) == expected, f"{name}: keys {sorted(report)}"
assert isinstance(report["name"], str) and report["name"], name
assert isinstance(report["config"], dict), name
assert isinstance(report["wall_ms"], (int, float)), name
assert report["wall_ms"] >= 0, name
for key in ("trials_per_sec", "gate_ops_per_sec"):
    assert report[key] is None or isinstance(report[key], (int, float)), name
assert isinstance(report["stats"], list), name
for row in report["stats"]:
    assert isinstance(row, dict) and row, f"{name}: stats row {row!r}"
EOF
    count=$((count + 1))
done

if [ "$count" -lt 10 ]; then
    echo "check_bench.sh: only $count bench binaries found" >&2
    exit 1
fi

echo "check_bench.sh: PASS ($count bench reports validated)"

// qpf_fuzz: differential fuzzing front-end for the Pauli-frame stack.
//
// Runs the seeded fuzzing engine (src/fuzz/) over the oracle set —
// conjugation tables, arbiter routing, frame semantics, mirror
// programs, sampling statistics, metamorphic injection, snapshot
// round-trips, chaos convergence, and LUT decode windows — shrinks any
// failing circuit to a minimal witness, and emits either a human
// summary or the deterministic JSON triage report
// (schema qpf-fuzz-triage-v1, validated by tools/check_bench.sh).
//
// The whole run is a pure function of the command line: identical
// arguments produce a byte-identical report.  --minutes turns the tool
// into a soak loop that keeps drawing fresh master seeds from the seed
// chain until the budget expires (the report then covers the last
// completed batch plus any accumulated failures).
//
// Exit codes: 0 clean run, 1 oracle failure(s), 2 bad arguments.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/bug_plant.h"
#include "circuit/error.h"
#include "cli/stdio_guard.h"
#include "fuzz/engine.h"
#include "fuzz/seeds.h"

namespace {

using qpf::fuzz::FuzzOptions;
using qpf::fuzz::FuzzReport;
using qpf::fuzz::OracleOutcome;
using qpf::fuzz::OracleSpec;

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

int usage(std::ostream& out) {
  out << "usage: qpf_fuzz [options]\n"
         "  --seed=N           master seed (default 1)\n"
         "  --cases=N          generated cases per run (default 25)\n"
         "  --oracle=NAME      run only this oracle (repeatable, or a\n"
         "                     comma-separated list); default: all\n"
         "  --json             emit the JSON triage report on stdout\n"
         "  --minimize         shrink failing circuits (default on)\n"
         "  --no-shrink        report failures without shrinking\n"
         "  --max-failures=N   stop after N failures (default 8, 0=never)\n"
         "  --jobs=N           worker threads for the case fan-out\n"
         "                     (default 1, 0=auto); the report is\n"
         "                     byte-identical for every value\n"
         "  --minutes=M        soak: loop over fresh seeds for ~M minutes\n"
         "  --no-qx            skip state-vector oracles (semantics,\n"
         "                     mirror-qx, backend-diff)\n"
         "  --no-chaos         skip the supervised chaos oracle\n"
         "  --shots=N          sampling-oracle shots (default 256)\n"
         "  --plant=N          activate planted bug N (mutation smoke)\n"
         "  --replay=FILE      replay one corpus reproducer and exit\n"
         "  --corpus=DIR       write each failure's reproducer into DIR\n"
         "  --list-oracles     print the oracle registry and exit\n"
         "  --list-bugs        print the planted-bug catalogue and exit\n"
         "  --help             this text\n";
  return &out == &std::cerr ? 2 : 0;
}

void split_names(const std::string& list, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name =
        list.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) {
      out.push_back(name);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
}

int list_oracles() {
  for (const OracleSpec& spec : qpf::fuzz::all_oracles()) {
    std::cout << spec.name << (spec.once_per_run ? "  (once per run)" : "")
              << "\n";
  }
  return 0;
}

int list_bugs() {
  for (int n = 1; n <= qpf::plant::kCount; ++n) {
    std::cout << n << "  " << qpf::plant::describe(n) << "\n";
  }
  return 0;
}

int replay_file(const std::string& path, const qpf::fuzz::OracleTuning& tuning) {
  const qpf::fuzz::Reproducer rep = qpf::fuzz::load_reproducer(path);
  const OracleOutcome outcome = qpf::fuzz::replay_reproducer(rep, tuning);
  std::cout << "replay " << path << "\n"
            << "  oracle:    " << rep.oracle << "\n"
            << "  case-seed: " << rep.case_seed << "\n"
            << "  gates:     " << rep.circuit.num_operations() << "\n"
            << "  verdict:   "
            << (outcome.skipped ? "SKIP" : outcome.passed ? "PASS" : "FAIL")
            << "\n";
  if (!outcome.detail.empty()) {
    std::cout << "  detail:    " << outcome.detail << "\n";
  }
  return outcome.passed ? 0 : 1;
}

void print_summary(const FuzzReport& report, std::ostream& out) {
  out << "qpf_fuzz seed=" << report.seed << " cases=" << report.cases
      << " oracle-runs=" << report.oracle_runs << " passes=" << report.passes
      << " skips=" << report.skips << " failures=" << report.failures.size()
      << "\n";
  for (const auto& f : report.failures) {
    out << "  FAIL " << f.oracle << " case=" << f.case_index
        << " case-seed=" << f.case_seed << " gates=" << f.original_gates
        << "->" << f.shrunk_gates << "\n    " << f.detail << "\n"
        << "    replay: qpf_fuzz --replay=<file>  (or --seed="
        << report.seed << " --oracle=" << f.oracle << ")\n";
  }
  out << "verdict: " << (report.pass() ? "PASS" : "FAIL") << "\n";
}

void save_failures(const FuzzReport& report, const std::string& dir) {
  for (const auto& f : report.failures) {
    if (f.reproducer.empty()) {
      continue;
    }
    const qpf::fuzz::Reproducer rep = qpf::fuzz::parse_reproducer(f.reproducer);
    const std::string path = dir + "/" + qpf::fuzz::corpus_file_name(rep);
    qpf::fuzz::save_reproducer(path, rep);
    std::cerr << "wrote " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  qpf::cli::ignore_sigpipe();
  FuzzOptions options;
  bool json = false;
  double minutes = 0.0;
  int plant = 0;
  std::string replay_path;
  std::string corpus_dir;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string value;
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout);
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--minimize") {
        options.shrink = true;
      } else if (arg == "--no-shrink") {
        options.shrink = false;
      } else if (arg == "--no-qx") {
        options.with_qx = false;
      } else if (arg == "--no-chaos") {
        options.with_chaos = false;
      } else if (arg == "--list-oracles") {
        return list_oracles();
      } else if (arg == "--list-bugs") {
        return list_bugs();
      } else if (consume_prefix(arg, "--seed=", value)) {
        options.seed = std::stoull(value);
      } else if (consume_prefix(arg, "--cases=", value)) {
        options.cases = std::stoull(value);
      } else if (consume_prefix(arg, "--oracle=", value)) {
        split_names(value, options.oracles);
      } else if (consume_prefix(arg, "--max-failures=", value)) {
        options.max_failures = std::stoull(value);
      } else if (consume_prefix(arg, "--jobs=", value)) {
        options.jobs = std::stoull(value);
      } else if (consume_prefix(arg, "--shots=", value)) {
        options.tuning.shots = std::stoull(value);
      } else if (consume_prefix(arg, "--minutes=", value)) {
        minutes = std::stod(value);
      } else if (consume_prefix(arg, "--plant=", value)) {
        plant = std::stoi(value);
      } else if (consume_prefix(arg, "--replay=", value)) {
        replay_path = value;
      } else if (consume_prefix(arg, "--corpus=", value)) {
        corpus_dir = value;
      } else {
        std::cerr << "qpf_fuzz: unknown argument '" << arg << "'\n";
        return usage(std::cerr);
      }
    }

    for (const std::string& name : options.oracles) {
      if (qpf::fuzz::find_oracle(name) == nullptr) {
        std::cerr << "qpf_fuzz: unknown oracle '" << name
                  << "' (see --list-oracles)\n";
        return 2;
      }
    }
    if (plant < 0 || plant > qpf::plant::kCount) {
      std::cerr << "qpf_fuzz: --plant must be in [0, " << qpf::plant::kCount
                << "]\n";
      return 2;
    }
    if (plant != 0) {
      qpf::plant::set_for_testing(plant);
      std::cerr << "planted bug " << plant << ": "
                << qpf::plant::describe(plant) << "\n";
    }

    if (!replay_path.empty()) {
      return replay_file(replay_path, options.tuning);
    }

    FuzzReport report;
    if (minutes > 0.0) {
      // Soak: keep drawing batch seeds from the chain until the budget
      // expires.  Failures accumulate across batches; counters cover
      // every completed batch.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::ratio<60>>(minutes));
      std::uint64_t batch = 0;
      report.seed = options.seed;
      do {
        FuzzOptions batch_options = options;
        batch_options.seed = qpf::fuzz::derive_seed(options.seed, batch);
        FuzzReport r = run_fuzz(batch_options);
        report.cases += r.cases;
        report.oracle_runs += r.oracle_runs;
        report.passes += r.passes;
        report.skips += r.skips;
        for (auto& f : r.failures) {
          report.failures.push_back(std::move(f));
        }
        ++batch;
        std::cerr << "soak batch " << batch << " seed=" << batch_options.seed
                  << " failures=" << report.failures.size() << "\n";
        if (options.max_failures != 0 &&
            report.failures.size() >= options.max_failures) {
          break;
        }
      } while (std::chrono::steady_clock::now() < deadline);
    } else {
      report = run_fuzz(options);
    }

    if (!corpus_dir.empty()) {
      save_failures(report, corpus_dir);
    }
    if (json) {
      std::cout << qpf::fuzz::to_json(report);
      print_summary(report, std::cerr);
    } else {
      print_summary(report, std::cout);
    }
    // A reader that exited early (| head) must not pass as a clean
    // run whose report nobody saw: surface the truncation as IoError.
    qpf::cli::require_stream_ok(std::cout, "stdout");
    return report.pass() ? 0 : 1;
  } catch (const qpf::Error& e) {
    std::cerr << "qpf_fuzz: error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "qpf_fuzz: error: " << e.what() << "\n";
    return 2;
  }
}

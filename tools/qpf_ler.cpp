// qpf_ler: crash-safe LER campaign runner (PR 2).
//
// Runs `--runs` LER trials at one physical error rate on the Fig 5.8
// stack, journaling every completed trial to --state-dir/journal.jsonl
// and checkpointing the in-progress trial every --checkpoint-every
// windows.  Killed (SIGINT/SIGTERM, or SIGKILL between fsyncs) and
// re-launched with the same arguments, it resumes where it stopped and
// produces aggregate statistics bit-identical to an uninterrupted run.
//
// Exit codes: 0 success, 1 runtime error, 2 bad arguments,
// 130 interrupted (state saved; re-run to resume).
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/error.h"
#include "cli/stdio_guard.h"
#include "io/file_ops.h"
#include "ler_common.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

bool consume_prefix(const std::string& argument, const std::string& prefix,
                    std::string& value) {
  if (argument.rfind(prefix, 0) != 0) {
    return false;
  }
  value = argument.substr(prefix.size());
  return true;
}

int usage(std::ostream& out) {
  out << "usage: qpf_ler [options]\n"
         "  --per=P                physical error rate (default 1e-3)\n"
         "  --runs=N               trials (default 3)\n"
         "  --errors=N             target logical errors per trial "
         "(default 10)\n"
         "  --max-windows=N        window cap per trial (default 2000000)\n"
         "  --seed=S               base seed of the trial seed chain "
         "(default 1)\n"
         "  --basis=z|x            logical basis watched (default z)\n"
         "  --pauli-frame          insert the Pauli frame layer\n"
         "  --state-dir=DIR        durable journal + checkpoint; an\n"
         "                         existing journal resumes the campaign\n"
         "  --checkpoint-every=N   checkpoint the live trial every N\n"
         "                         windows (default 256; 0 = only on\n"
         "                         interrupt)\n"
         "  --timeout-per-trial=MS watchdog per trial; a trial over\n"
         "                         budget is recorded timed_out and the\n"
         "                         campaign continues (default off)\n"
         "  --jobs=N               worker threads for trial fan-out\n"
         "                         (default 1; 0 = hardware_concurrency).\n"
         "                         Journal and statistics are\n"
         "                         bit-identical for every jobs value\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using qpf::bench::CampaignOptions;
  using qpf::bench::CampaignResult;

  qpf::cli::ignore_sigpipe();
  qpf::io::install_faultfs_from_environment();
  CampaignOptions options;
  options.checkpoint_every_windows = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string argument = argv[i];
    std::string value;
    try {
      if (consume_prefix(argument, "--per=", value)) {
        options.config.physical_error_rate = std::stod(value);
      } else if (consume_prefix(argument, "--runs=", value)) {
        options.runs = std::stoull(value);
      } else if (consume_prefix(argument, "--errors=", value)) {
        options.config.target_logical_errors = std::stoull(value);
      } else if (consume_prefix(argument, "--max-windows=", value)) {
        options.config.max_windows = std::stoull(value);
      } else if (consume_prefix(argument, "--seed=", value)) {
        options.config.seed = std::stoull(value);
      } else if (consume_prefix(argument, "--basis=", value)) {
        if (value == "z") {
          options.config.basis = qpf::qec::CheckType::kZ;
        } else if (value == "x") {
          options.config.basis = qpf::qec::CheckType::kX;
        } else {
          std::cerr << "qpf_ler: unknown basis '" << value << "'\n";
          return usage(std::cerr);
        }
      } else if (argument == "--pauli-frame") {
        options.config.with_pauli_frame = true;
      } else if (consume_prefix(argument, "--state-dir=", value)) {
        options.state_dir = value;
      } else if (consume_prefix(argument, "--checkpoint-every=", value)) {
        options.checkpoint_every_windows = std::stoull(value);
      } else if (consume_prefix(argument, "--timeout-per-trial=", value)) {
        options.config.timeout_per_trial_ms = std::stoull(value);
      } else if (consume_prefix(argument, "--jobs=", value)) {
        options.jobs = qpf::bench::resolve_jobs(std::stoull(value));
      } else if (argument == "--help") {
        usage(std::cout);
        return 0;
      } else {
        std::cerr << "qpf_ler: unknown option '" << argument << "'\n";
        return usage(std::cerr);
      }
    } catch (const std::exception&) {
      std::cerr << "qpf_ler: bad value in '" << argument << "'\n";
      return usage(std::cerr);
    }
  }
  if (options.runs == 0) {
    std::cerr << "qpf_ler: --runs must be positive\n";
    return usage(std::cerr);
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  options.stop = &g_stop;

  qpf::bench::announce_seed("qpf_ler campaign", options.config.seed);

  CampaignResult result;
  try {
    result = qpf::bench::run_ler_campaign(options);
  } catch (const qpf::Error& error) {
    std::cerr << "qpf_ler: " << error.what() << "\n";
    return 1;
  }

  if (result.checkpoint_recovered) {
    std::cerr << "qpf_ler: discarded unusable checkpoint ("
              << result.checkpoint_warning << "); resumed from the journal\n";
  }
  if (result.trials_from_journal != 0 || result.windows_resumed != 0) {
    std::cerr << "qpf_ler: resumed " << result.trials_from_journal
              << " trial(s) from the journal, " << result.windows_resumed
              << " window(s) from the checkpoint\n";
  }

  // %.17g everywhere: the printed aggregates are part of the
  // bit-identical resume guarantee (tools/check_resume.sh diffs them).
  std::printf("per=%.17g trials=%zu mean_ler=%.17g stddev_ler=%.17g "
              "window_cv=%.17g saved_gates=%.17g saved_slots=%.17g "
              "timed_out=%zu\n",
              result.point.physical_error_rate, result.trials_completed,
              result.point.mean_ler, result.point.stddev_ler,
              result.point.window_cv, result.point.saved_gates,
              result.point.saved_slots, result.trials_timed_out);
  try {
    qpf::cli::require_stdout_ok();
  } catch (const qpf::Error& error) {
    // Journal and checkpoint are already durable; only the report line
    // was lost to the closed pipe.
    std::cerr << "qpf_ler: " << error.what() << "\n";
    return 1;
  }

  if (result.interrupted) {
    std::cerr << "qpf_ler: interrupted after " << result.trials_completed
              << " of " << options.runs
              << " trial(s); state saved, re-run to resume\n";
    return 130;
  }
  return 0;
}

#!/usr/bin/env bash
# Deterministic fuzz smoke for the Pauli-frame stack (CTest target
# fuzz_smoke).  Runs tools/qpf_fuzz over a fixed seed list in three
# configurations — every oracle (chp + qx substrates, frame on/off
# inside each oracle), --no-qx (tableau substrate only), and
# --no-chaos — each within a bounded ~30 s budget, then asserts:
#
#   1. a clean build reports zero oracle failures in every config;
#   2. identical seeds produce byte-identical JSON triage reports;
#   3. a planted mutation (QPF_PLANT_BUG, the environment path) is
#      caught within the same budget, its witness shrinks to <= 8
#      gates, and the written reproducer replays to a failure;
#   4. every committed corpus reproducer replays cleanly.
#
# Usage: tools/check_fuzz.sh [build-dir]        (default: ./build)
#        tools/check_fuzz.sh --minutes M [dir]  nightly soak: loop over
#                                               fresh seeds for ~M min
#                                               per config instead of
#                                               the fixed seed list
set -euo pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
minutes=""
if [ "${1:-}" = "--minutes" ]; then
    minutes=$2
    shift 2
fi
build_dir=${1:-"$repo_root/build"}
fuzz="$build_dir/tools/qpf_fuzz"

if [ ! -x "$fuzz" ]; then
    echo "check_fuzz.sh: $fuzz not built" >&2
    exit 1
fi

workdir=$(mktemp -d "${TMPDIR:-/tmp}/qpf_fuzz.XXXXXX")
cleanup() {
    code=$?
    rm -rf "$workdir"
    [ "$code" -eq 0 ] || echo "check_fuzz.sh: FAIL (exit $code)" >&2
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

seeds="1 7 2026"
cases=25

run_config() {
    config_name=$1
    shift
    if [ -n "$minutes" ]; then
        echo "check_fuzz.sh: soak $config_name (~$minutes min)"
        "$fuzz" --seed=1 --cases=$cases --minutes="$minutes" "$@" \
            > /dev/null 2>> "$workdir/soak.log"
        return
    fi
    for seed in $seeds; do
        echo "check_fuzz.sh: $config_name seed=$seed"
        "$fuzz" --seed="$seed" --cases=$cases --json "$@" \
            > "$workdir/$config_name-$seed.json" 2> "$workdir/last.log" || {
            status=$?
            echo "check_fuzz.sh: $config_name seed=$seed FAILED" >&2
            cat "$workdir/last.log" >&2
            tail -40 "$workdir/$config_name-$seed.json" >&2
            exit "$status"
        }
        grep -q '"verdict": "PASS"' "$workdir/$config_name-$seed.json"
    done
}

# 1. Clean build, three configurations.
run_config all
run_config no-qx --no-qx
run_config no-chaos --no-chaos
[ -n "$minutes" ] && { echo "check_fuzz.sh: PASS (soak)"; exit 0; }

# 2. Determinism: same seed, byte-identical triage report — including
#    when the case fan-out runs on the parallel executor (--jobs).
"$fuzz" --seed=7 --cases=$cases --json > "$workdir/det-a.json" 2> /dev/null
cmp -s "$workdir/all-7.json" "$workdir/det-a.json" || {
    echo "check_fuzz.sh: triage report not deterministic for seed 7" >&2
    exit 1
}
for jobs in 2 8; do
    "$fuzz" --seed=7 --cases=$cases --jobs=$jobs --json \
        > "$workdir/det-j$jobs.json" 2> /dev/null
    cmp -s "$workdir/all-7.json" "$workdir/det-j$jobs.json" || {
        echo "check_fuzz.sh: triage report diverges at --jobs=$jobs" >&2
        exit 1
    }
done

# 3. Mutation path through the environment variable: plant a bug, the
#    fuzzer must catch it, shrink it small, and leave a replayable
#    reproducer.
mkdir -p "$workdir/corpus"
if QPF_PLANT_BUG=3 "$fuzz" --seed=7 --cases=$cases --max-failures=1 \
        --corpus="$workdir/corpus" --json \
        > "$workdir/planted.json" 2> /dev/null; then
    echo "check_fuzz.sh: planted bug 3 escaped the smoke budget" >&2
    exit 1
fi
grep -q '"verdict": "FAIL"' "$workdir/planted.json"
python3 - "$workdir/planted.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["failures"], "planted run reported no failures"
for f in report["failures"]:
    assert f["shrunk_gates"] <= 8, f"witness too big: {f['shrunk_gates']}"
EOF
for rep in "$workdir/corpus"/*.qasm; do
    [ -f "$rep" ] || continue
    # With the bug still planted the reproducer must fail ...
    if QPF_PLANT_BUG=3 "$fuzz" --replay="$rep" > /dev/null 2>&1; then
        echo "check_fuzz.sh: reproducer $rep lost its bite" >&2
        exit 1
    fi
    # ... and on the clean build it must pass.
    "$fuzz" --replay="$rep" > /dev/null 2> /dev/null
done

# 4. The committed corpus replays cleanly on this build.
corpus_count=0
for rep in "$repo_root"/tests/corpus/*.qasm; do
    [ -f "$rep" ] || continue
    "$fuzz" --replay="$rep" > /dev/null 2> /dev/null || {
        echo "check_fuzz.sh: committed reproducer $rep regressed" >&2
        exit 1
    }
    corpus_count=$((corpus_count + 1))
done
if [ "$corpus_count" -lt 3 ]; then
    echo "check_fuzz.sh: only $corpus_count committed reproducers" >&2
    exit 1
fi

# 5. The registry (`qpf_fuzz --list-oracles`) is the source of truth
#    for the oracle count; TESTING.md must cite the same number so the
#    docs can never drift stale again.
actual_oracles=$("$fuzz" --list-oracles | wc -l | tr -d ' ')
documented=$(tr -s '[:space:]' ' ' < "$repo_root/TESTING.md" \
    | grep -oE '[0-9]+ independent oracles' | head -1 | cut -d' ' -f1 || true)
if [ -z "$documented" ]; then
    echo "check_fuzz.sh: TESTING.md no longer states the oracle count" >&2
    exit 1
fi
if [ "$documented" != "$actual_oracles" ]; then
    echo "check_fuzz.sh: TESTING.md documents $documented oracles but" \
         "--list-oracles prints $actual_oracles" >&2
    exit 1
fi

echo "check_fuzz.sh: PASS"
